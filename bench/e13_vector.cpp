// E13 — vector arguments (open problem, Section 7).
//
// Two demonstrations:
//   1. The geometric obstruction: for coupled (radial) costs the vector
//      valid-optima set is NOT convex — we print a certified
//      counterexample (two valid optima with an invalid midpoint).
//   2. The coordinate-wise SBG heuristic: consensus still holds per
//      coordinate, and for separable costs it lands in the per-coordinate
//      valid boxes; for coupled costs no such guarantee exists — the
//      final distance to the average optimum is reported for both.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/step_size.hpp"
#include "vector/vector_sbg.hpp"
#include "vector/vector_valid.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E13: vector arguments (open problem)",
      "non-convex valid set certificate + coordinate-wise SBG heuristic");

  // ---- Part 1: non-convexity certificate.
  const std::vector<VectorFunctionPtr> radial{
      std::make_shared<RadialHuber>(Vec{0.0, 0.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{8.0, 0.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{4.0, 7.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{0.5, 0.5}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{7.5, 0.5}, 3.0, 1.0),
  };
  Rng rng(11);
  std::cout << "Searching for a convexity violation of the vector valid set\n"
               "(5 radial-Huber costs, f = 1)...\n";
  const auto ce = find_nonconvexity(radial, 1, rng, 150);
  if (ce) {
    Table table({"point", "x", "y", "valid optimum?"});
    auto add = [&](const std::string& name, const Vec& p, bool valid) {
      table.row().add(name).add(p[0], 4).add(p[1], 4).add(valid ? "yes" : "NO");
    };
    add("A", ce->a, true);
    add("B", ce->b, true);
    add("midpoint(A,B)", ce->midpoint, false);
    table.print(std::cout);
    std::cout << "\nY_k is non-convex for k >= 2 — the scalar convergence\n"
                 "proof's key lemma (Lemma 1) fails, which is why the vector\n"
                 "case is open (Section 7).\n";
  } else {
    std::cout << "no counterexample found in the sample budget\n";
  }

  // ---- Part 2: coordinate-wise SBG heuristic.
  std::cout << "\nCoordinate-wise SBG under split-brain attack (n=7, f=2):\n";
  const HarmonicStep schedule;

  Table run_table({"cost family", "final consensus diam",
                   "dist to honest avg optimum"});
  {
    const std::vector<VectorFunctionPtr> separable{
        std::make_shared<SeparableHuber>(Vec{-3.0, 1.0}, 2.0, 1.0),
        std::make_shared<SeparableHuber>(Vec{-1.0, -2.0}, 2.0, 1.0),
        std::make_shared<SeparableHuber>(Vec{0.0, 0.0}, 2.0, 1.0),
        std::make_shared<SeparableHuber>(Vec{2.0, 2.0}, 2.0, 1.0),
        std::make_shared<SeparableHuber>(Vec{4.0, -1.0}, 2.0, 1.0),
    };
    VectorSbgConfig config;
    config.n = 7;
    config.f = 2;
    config.dim = 2;
    VectorSplitBrain attack(2, 50.0, 5.0);
    std::vector<Vec> init;
    for (int i = 0; i < 5; ++i)
      init.push_back(Vec{-4.0 + 2.0 * i, 4.0 - 2.0 * i});
    const auto r = run_vector_sbg(config, separable, init, 2, &attack,
                                  schedule, 10000);
    run_table.row()
        .add("separable (per-coord guarantees)")
        .add(r.disagreement.back(), 5)
        .add(r.dist_to_average_optimum.back(), 4);
  }
  {
    VectorSbgConfig config;
    config.n = 7;
    config.f = 2;
    config.dim = 2;
    VectorSplitBrain attack(2, 50.0, 5.0);
    std::vector<Vec> init;
    for (int i = 0; i < 5; ++i)
      init.push_back(Vec{-4.0 + 2.0 * i, 4.0 - 2.0 * i});
    const auto r =
        run_vector_sbg(config, radial, init, 2, &attack, schedule, 10000);
    run_table.row()
        .add("radial/coupled (no guarantee)")
        .add(r.disagreement.back(), 5)
        .add(r.dist_to_average_optimum.back(), 4);
  }
  run_table.print(std::cout);
  std::cout << "\nConsensus holds in both cases (the scalar contraction works\n"
               "per coordinate); only the separable family inherits a formal\n"
               "optimality story.\n";
  return 0;
}
