// E4 — Theorem 1: gamma > |N| - f is impossible.
//
// The theorem says no algorithm can guarantee a (beta, gamma)-admissible
// weight vector with gamma > |N| - f and beta bounded away from 0. We
// exhibit its empirical shadow on SBG executions: for the realized trimmed
// values, the best achievable beta for gamma = m - f stays above the
// guaranteed 1/(2(m-f)) (Lemma 2's promise), while for gamma = m - f + 1
// the worst-case best-beta collapses toward 0 under the hull-edge attack —
// the trim output can coincide with an extreme honest value, which no
// weight vector with m - f + 1 large weights can reproduce.

#include <iostream>
#include <limits>
#include <memory>

#include "adversary/strategies.hpp"
#include "bench_util.hpp"
#include "core/sbg.hpp"
#include "core/step_size.hpp"
#include "lp/witness.hpp"
#include "trim/trim.hpp"
#include "net/sync.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E4: impossibility beyond gamma = m - f (Theorem 1)",
      "worst-case best-achievable beta vs gamma, over real SBG executions");

  const std::size_t n = 7, f = 2;
  const std::size_t m = n - f;  // 5 honest agents
  const std::size_t rounds = 80;

  const Scenario scenario =
      make_standard_scenario(n, f, 8.0, AttackKind::HullEdgeUp, rounds);
  const HarmonicStep schedule;
  SbgConfig config;
  config.n = n;
  config.f = f;

  std::vector<std::unique_ptr<SbgAgent>> agents;
  std::vector<std::unique_ptr<SbgAdversary>> adversaries;
  SyncEngine<SbgPayload> engine;
  Rng rng(scenario.seed);
  for (std::size_t i = 0; i < n; ++i) {
    if (scenario.is_faulty(i)) {
      adversaries.push_back(make_adversary(scenario.attack, rng.substream("a", i)));
      engine.add_byzantine(AgentId{static_cast<std::uint32_t>(i)},
                           adversaries.back().get());
    } else {
      agents.push_back(std::make_unique<SbgAgent>(
          AgentId{static_cast<std::uint32_t>(i)}, scenario.functions[i],
          scenario.initial_states[i], schedule, config));
      engine.add_honest(AgentId{static_cast<std::uint32_t>(i)},
                        agents.back().get());
    }
  }

  // Track worst-case best-beta per gamma over the whole execution.
  std::vector<std::size_t> gammas{m - f, m - f + 1, m};
  std::vector<double> worst(gammas.size(), std::numeric_limits<double>::infinity());

  const auto honest_fns = scenario.honest_functions();
  for (std::size_t t = 1; t <= rounds; ++t) {
    std::vector<double> pre_states, pre_gradients;
    for (std::size_t a = 0; a < agents.size(); ++a) {
      pre_states.push_back(agents[a]->state());
      pre_gradients.push_back(honest_fns[a]->derivative(agents[a]->state()));
    }
    engine.run_round(Round{static_cast<std::uint32_t>(t)});
    for (const auto& agent : agents) {
      for (std::size_t g = 0; g < gammas.size(); ++g) {
        for (const auto& [values, target] :
             {std::pair{&pre_states, agent->last_step().trimmed_state},
              std::pair{&pre_gradients, agent->last_step().trimmed_gradient}}) {
          lp::WitnessQuery q;
          q.values = *values;
          q.target = target;
          q.gamma = gammas[g];
          const double beta_star = lp::max_guaranteed_beta(q);
          worst[g] = std::min(worst[g], beta_star);
        }
      }
    }
  }

  Table table({"gamma", "worst-case best beta", "paper guarantee"});
  for (std::size_t g = 0; g < gammas.size(); ++g) {
    const std::string guarantee =
        gammas[g] == m - f
            ? format_double(1.0 / (2.0 * static_cast<double>(m - f)), 4)
            : "none (Theorem 1)";
    table.row().add(gammas[g]).add(worst[g], 4).add(guarantee);
  }
  table.print(std::cout);
  std::cout << "\nOn typical executions the probe stays benign; the bound binds\n"
               "on the adversarial instance below.\n";

  // ---- Worst-case instance (the indistinguishability core of Theorem 1's
  // proof): m - f honest agents hold value h, f honest agents hold 0, and
  // the f Byzantine agents collude just above h. Trim removes the f
  // low honest values and the f Byzantine values, leaving exactly the
  // h-cluster: the output equals h, which no weight vector can reproduce
  // while giving more than m - f agents weight bounded away from zero.
  std::cout << "\nAdversarial instance (h-cluster attack), m = " << m
            << ", f = " << f << ":\n";
  const double h = 1.0;
  std::vector<double> honest_vals;
  for (std::size_t i = 0; i < f; ++i) honest_vals.push_back(0.0);
  for (std::size_t i = 0; i < m - f; ++i) honest_vals.push_back(h);
  std::vector<double> multiset = honest_vals;
  for (std::size_t i = 0; i < f; ++i) multiset.push_back(h + 0.001);
  const double trimmed = trim_value(multiset, f);

  Table worst_case({"gamma", "best achievable beta", "interpretation"});
  for (std::size_t gamma : {m - f, m - f + 1}) {
    lp::WitnessQuery q;
    q.values = honest_vals;
    q.target = trimmed;
    q.gamma = gamma;
    const double beta_star = lp::max_guaranteed_beta(q);
    worst_case.row()
        .add(gamma)
        .add(beta_star, 4)
        .add(gamma == m - f ? "achievable (paper optimum)"
                            : "collapses to 0 (Theorem 1)");
  }
  worst_case.print(std::cout);
  std::cout << "\nTrim output = " << trimmed << " = the cluster value: any\n"
               "weight on a 0-valued honest agent breaks the combination, so\n"
               "gamma = m - f + 1 forces beta = 0 — the impossibility bound.\n";
  return 0;
}
