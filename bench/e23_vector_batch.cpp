// E23 — lane-packed batched vector-SBG performance (google-benchmark).
//
// The d-dimensional coordinate-wise engine packs replicas x coordinates
// into contiguous SoA lanes (lane(k, r) = k*B + r per agent row), so one
// trim/step kernel pass advances every seed and every coordinate at
// once, and the adversary's recipient-independent payloads are computed
// once per round instead of once per recipient. These benchmarks compare
// the scalar reference (run_vector_scenario per seed — per-agent Vec
// payloads, per-coordinate trims, virtual cost dispatch) against
// run_vector_sbg_batch over the same seed axis, per compiled-and-
// supported SIMD backend (custom main, as in E21/E22), across the
// dimension ladder d in {1, 2, 4, 8, 16}. Items processed = replica
// rounds, so items/sec is directly comparable across engines and dims.
// No paper counterpart; this is the harness's own hot path for the
// Section 7 vector experiments.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "sim/batch_vector_runner.hpp"
#include "sim/vector_scenario.hpp"
#include "simd/simd.hpp"

namespace {

using namespace ftmao;

std::vector<VectorScenario> seed_replicas(std::size_t n, std::size_t f,
                                          std::size_t dim, AttackKind attack,
                                          std::size_t rounds,
                                          std::size_t batch) {
  std::vector<VectorScenario> replicas;
  replicas.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r)
    replicas.push_back(make_standard_vector_scenario(n, f, 8.0, attack, rounds,
                                                     1 + r, dim));
  return replicas;
}

// Scalar reference: one full run_vector_sbg per seed.
void BM_VectorRounds_Scalar(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<AttackKind>(state.range(2));
  const std::size_t rounds = 200;
  const auto replicas = seed_replicas(7, 2, dim, kind, rounds, batch);
  for (auto _ : state) {
    for (const VectorScenario& s : replicas) {
      benchmark::DoNotOptimize(run_vector_scenario(s).disagreement.back());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * rounds));
}

// Batched engine: replicas x coordinates packed into SoA lanes, one
// kernel pass per round for the whole batch.
void BM_VectorRounds_Batched(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<AttackKind>(state.range(2));
  const std::size_t rounds = 200;
  const auto replicas = seed_replicas(7, 2, dim, kind, rounds, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_vector_sbg_batch(replicas).front().disagreement.back());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * rounds));
}

constexpr auto kSplitBrain = static_cast<int>(AttackKind::SplitBrain);
constexpr auto kSignFlip = static_cast<int>(AttackKind::SignFlip);

BENCHMARK(BM_VectorRounds_Scalar)
    ->Args({1, 8, kSplitBrain})
    ->Args({2, 8, kSplitBrain})
    ->Args({4, 8, kSplitBrain})
    ->Args({8, 8, kSplitBrain})
    ->Args({16, 8, kSplitBrain})
    ->Args({8, 8, kSignFlip});

// One instance of every batched benchmark per compiled-and-supported
// SIMD backend, name-tagged "<bench>/<isa>".
void register_per_backend() {
  for (const SimdIsa isa : simd_compiled()) {
    if (!simd_supported(isa)) continue;
    const std::string tag = std::string("/") + simd_isa_name(isa);
    benchmark::RegisterBenchmark(("BM_VectorRounds_Batched" + tag).c_str(),
                                 BM_VectorRounds_Batched, isa)
        ->Args({1, 8, kSplitBrain})
        ->Args({2, 8, kSplitBrain})
        ->Args({4, 8, kSplitBrain})
        ->Args({8, 8, kSplitBrain})
        ->Args({16, 8, kSplitBrain})
        ->Args({8, 8, kSignFlip});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_per_backend();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
