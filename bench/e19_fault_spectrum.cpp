// E19 — the fault-model spectrum (Section 7's crash-vs-Byzantine
// comparison, plus the hybrid in between).
//
// The paper: under crash faults the algorithm can skip trimming and give
// every surviving agent EQUAL weight (cost form (17)); under Byzantine
// faults trimming is mandatory and only the (1/(2(m-f)), m-f) guarantee is
// possible. This bench runs the same population under:
//   1. crash faults + no-trim averaging (the right tool),
//   2. crash faults + trimming SBG (safe but conservative),
//   3. Byzantine faults + trimming SBG (the only sound option),
//   4. Byzantine faults + no-trim averaging (unsound: captured),
//   5. hybrid crash+Byzantine + trimming SBG (budget shared).

#include <iostream>

#include "bench_util.hpp"
#include "func/library.hpp"
#include "sim/crash_runner.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E19: fault-model spectrum (crash | hybrid | Byzantine)",
      "matching algorithm strength to fault model; trim as the price of lies");

  constexpr std::size_t kRounds = 8000;
  const auto functions = make_spread_hubers(7, 8.0);
  std::vector<double> init;
  for (std::size_t i = 0; i < 7; ++i)
    init.push_back(-4.0 + 8.0 * static_cast<double>(i) / 6.0);

  Table table({"fault model", "algorithm", "final consensus", "disagr",
               "dist to its valid set"});

  // 1. crash + averaging (no trim): cost form (17).
  {
    CrashScenario s;
    s.n = 7;
    s.functions = functions;
    s.initial_states = init;
    s.crashes = {{5, 100, 0}, {6, 100, 0}};
    s.rounds = kRounds;
    const CrashRunMetrics m = run_crash(s);
    table.row()
        .add("2 crashes @100")
        .add("averaging (no trim)")
        .add(m.final_states.front(), 4)
        .add(m.disagreement.back(), 5)
        .add(m.max_dist_to_y.back(), 4);
  }
  // 2. crash + trimming SBG (hybrid machinery, zero Byzantine).
  {
    Scenario s;
    s.n = 7;
    s.f = 2;
    s.functions = functions;
    s.initial_states = init;
    s.crashes = {{5, 100}, {6, 100}};
    s.rounds = kRounds;
    const RunMetrics m = run_sbg(s);
    table.row()
        .add("2 crashes @100")
        .add("SBG (trim f=2)")
        .add(m.final_states.front(), 4)
        .add(m.final_disagreement(), 5)
        .add(m.final_max_dist(), 4);
  }
  // 3. Byzantine + trimming SBG.
  {
    Scenario s;
    s.n = 7;
    s.f = 2;
    s.faulty = {5, 6};
    s.functions = functions;
    s.initial_states = init;
    s.attack.kind = AttackKind::SplitBrain;
    s.rounds = kRounds;
    const RunMetrics m = run_sbg(s);
    table.row()
        .add("2 Byzantine (split-brain)")
        .add("SBG (trim f=2)")
        .add(m.final_states.front(), 4)
        .add(m.final_disagreement(), 5)
        .add(m.final_max_dist(), 4);
  }
  // 4. Byzantine + averaging: unsound.
  {
    Scenario s;
    s.n = 7;
    s.f = 2;
    s.faulty = {5, 6};
    s.functions = functions;
    s.initial_states = init;
    s.attack.kind = AttackKind::PullToTarget;
    s.attack.target = -60.0;
    s.attack.gradient_magnitude = 10.0;
    s.rounds = kRounds;
    const RunMetrics m = run_dgd(s);
    table.row()
        .add("2 Byzantine (pull)")
        .add("averaging (UNSOUND)")
        .add(m.final_states.front(), 4)
        .add(m.final_disagreement(), 5)
        .add(m.final_max_dist(), 4);
  }
  // 5. hybrid: 1 Byzantine + 1 crash, trimming SBG.
  {
    Scenario s;
    s.n = 7;
    s.f = 2;
    s.faulty = {6};
    s.crashes = {{5, 100}};
    s.functions = functions;
    s.initial_states = init;
    s.attack.kind = AttackKind::SplitBrain;
    s.rounds = kRounds;
    const RunMetrics m = run_sbg(s);
    table.row()
        .add("1 Byzantine + 1 crash @100")
        .add("SBG (trim f=2)")
        .add(m.final_states.front(), 4)
        .add(m.final_disagreement(), 5)
        .add(m.final_max_dist(), 4);
  }
  table.print(std::cout);

  std::cout
      << "\nCrash-only tolerates the cheap no-trim variant with EQUAL weights\n"
         "for all survivors (17); any Byzantine presence makes averaging\n"
         "unsound and forces the trim, whose price is the weight guarantee\n"
         "dropping from 1/|N| to 1/(2(|N|-f)). The hybrid run shows crash\n"
         "and Byzantine faults drawing from the same f budget.\n";
  return 0;
}
