// E20 — the time-varying global objective (Lemma 2 discussion).
//
// The paper stresses that the weights b_ji[t] in the effective gradient's
// admissible decomposition are TIME-DEPENDENT and AGENT-DEPENDENT: the
// Byzantine agents effectively re-weight the global cost every round, and
// differently for different honest agents. This bench extracts a witness
// weight vector per round (via the LP) for one honest agent and prints
// its drift, plus the per-round weight assigned to each honest agent —
// the concrete face of "the global cost function being optimized is
// time-varying".

#include <cmath>
#include <iostream>
#include <memory>

#include "adversary/strategies.hpp"
#include "bench_util.hpp"
#include "core/admissibility.hpp"
#include "core/sbg.hpp"
#include "core/step_size.hpp"
#include "net/sync.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E20: witness-weight drift (Lemma 2's time-varying objective)",
      "per-round admissible weights b_ji[t] for one honest agent");

  const std::size_t n = 7, f = 2;
  const std::size_t rounds = 60;
  const Scenario scenario =
      make_standard_scenario(n, f, 8.0, AttackKind::FlipFlop, rounds);
  const HarmonicStep schedule;
  SbgConfig config;
  config.n = n;
  config.f = f;

  std::vector<std::unique_ptr<SbgAgent>> agents;
  std::vector<std::unique_ptr<SbgAdversary>> adversaries;
  SyncEngine<SbgPayload> engine;
  Rng rng(scenario.seed);
  for (std::size_t i = 0; i < n; ++i) {
    if (scenario.is_faulty(i)) {
      adversaries.push_back(
          make_adversary(scenario.attack, rng.substream("a", i)));
      engine.add_byzantine(AgentId{static_cast<std::uint32_t>(i)},
                           adversaries.back().get());
    } else {
      agents.push_back(std::make_unique<SbgAgent>(
          AgentId{static_cast<std::uint32_t>(i)}, scenario.functions[i],
          scenario.initial_states[i], schedule, config));
      engine.add_honest(AgentId{static_cast<std::uint32_t>(i)},
                        agents.back().get());
    }
  }
  const auto honest_fns = scenario.honest_functions();
  const std::size_t m = honest_fns.size();

  Table table({"t", "b_0", "b_1", "b_2", "b_3", "b_4", "max drift vs t-1"});
  std::vector<double> prev_weights;
  double max_drift_seen = 0.0;
  for (std::size_t t = 1; t <= rounds; ++t) {
    std::vector<double> pre_gradients;
    for (std::size_t a = 0; a < m; ++a)
      pre_gradients.push_back(honest_fns[a]->derivative(agents[a]->state()));
    engine.run_round(Round{static_cast<std::uint32_t>(t)});

    // Witness for agent 0's effective gradient this round.
    const TrimAuditResult audit =
        audit_trim(pre_gradients, agents[0]->last_step().trimmed_gradient, f);
    if (!audit.witness_found) continue;  // never happens (Lemma 2); guard anyway

    double drift = 0.0;
    if (!prev_weights.empty()) {
      for (std::size_t i = 0; i < m; ++i)
        drift = std::max(drift, std::abs(audit.weights[i] - prev_weights[i]));
      max_drift_seen = std::max(max_drift_seen, drift);
    }
    if (t <= 10 || t % 10 == 0) {
      table.row().add(t);
      for (std::size_t i = 0; i < m; ++i) table.add(audit.weights[i], 3);
      table.add(prev_weights.empty() ? 0.0 : drift, 3);
    }
    prev_weights = audit.weights;
  }
  table.print(std::cout);

  std::cout << "\nMax per-round weight drift observed: "
            << format_double(max_drift_seen, 3)
            << "\nThe weight vector changes round to round under the flip-flop\n"
               "attack — the optimized global objective is genuinely time-\n"
               "varying (each vector is still (1/(2(m-f)), m-f)-admissible,\n"
               "so every round's objective is a valid one; that is Lemma 2).\n";

  // Agent-dependence: under an equivocating (per-recipient) attack, two
  // honest agents' effective gradients in the SAME round decompose with
  // different weight vectors — fresh run with the split-brain attack.
  std::cout << "\nAgent-dependence in one round under split-brain (different\n"
               "honest agents optimize DIFFERENT valid objectives at once):\n";
  {
    Scenario sb = make_standard_scenario(n, f, 8.0, AttackKind::SplitBrain, 3);
    // Offset the starts from the cost optima so the honest gradients are
    // varied (at the default layout every agent starts at its own optimum
    // and all gradients are ~0).
    sb.initial_states = {3.0, -2.0, 1.5, -3.5, 0.5, 2.5, -1.0};
    std::vector<std::unique_ptr<SbgAgent>> sb_agents;
    std::vector<std::unique_ptr<SbgAdversary>> sb_adv;
    SyncEngine<SbgPayload> sb_engine;
    Rng sb_rng(sb.seed);
    for (std::size_t i = 0; i < n; ++i) {
      if (sb.is_faulty(i)) {
        sb_adv.push_back(make_adversary(sb.attack, sb_rng.substream("a", i)));
        sb_engine.add_byzantine(AgentId{static_cast<std::uint32_t>(i)},
                                sb_adv.back().get());
      } else {
        sb_agents.push_back(std::make_unique<SbgAgent>(
            AgentId{static_cast<std::uint32_t>(i)}, sb.functions[i],
            sb.initial_states[i], schedule, config));
        sb_engine.add_honest(AgentId{static_cast<std::uint32_t>(i)},
                             sb_agents.back().get());
      }
    }
    const auto sb_fns = sb.honest_functions();
    std::vector<double> pre_gradients;
    for (std::size_t a = 0; a < m; ++a)
      pre_gradients.push_back(sb_fns[a]->derivative(sb_agents[a]->state()));
    sb_engine.run_round(Round{1});

    Table per_agent({"honest agent", "effective g~", "b_0", "b_1", "b_2",
                     "b_3", "b_4"});
    for (std::size_t a = 0; a < m; ++a) {
      const TrimAuditResult audit = audit_trim(
          pre_gradients, sb_agents[a]->last_step().trimmed_gradient, f);
      if (!audit.witness_found) continue;
      per_agent.row().add(a).add(sb_agents[a]->last_step().trimmed_gradient, 4);
      for (std::size_t i = 0; i < m; ++i) per_agent.add(audit.weights[i], 3);
    }
    per_agent.print(std::cout);
  }
  return 0;
}
