// bench_sweep_json — tracked performance baseline for the sweep engine.
//
// Times the default ftmao_sweep grid across a thread ladder (1, 2, 4,
// all cores — common/thread_pool's thread_ladder(), deduplicated and
// capped at the machine's concurrency) and writes BENCH_sweep.json
// (cells/sec, runs/sec, rounds/sec, agent-rounds/sec per rung, plus the
// best-vs-1-thread speedup and a `machine` block pinning the conditions
// the numbers were taken under: hardware concurrency, the detected and
// active SIMD ISA, compiler and flags). Committed at the repo root so
// future PRs have a trajectory to regress against; scripts/bench_check.sh
// compares a fresh run to the committed file. See docs/performance.md
// for how to read and refresh it.
//
// Each rung is timed as the best (minimum-wall-time) of --repeats grid
// passes, so a transient noisy neighbour cannot masquerade as a
// regression.
//
// The JSON also carries an `async` block: the async sweep grid (n > 5f
// sizes, same attacks/seeds) timed single-threaded through the scalar
// event-driven engine and the batched replay engine, with their ratio —
// the tracked batched-async speedup. scripts/bench_check.sh and
// scripts/bench_history.py read only the sync `results` array, so the
// block rides along without touching their schema. --async-rounds 0
// skips it (the JSON then has "async": null).
//
// A `vector` block does the same for the d-dimensional coordinate-wise
// engine: the sync sweep grid at --vector-dim (default 8), timed
// single-threaded through the scalar per-run path and the lane-packed
// batched engine (sim/batch_vector_runner.hpp), with their runs/sec
// ratio — the tracked vector-batch speedup. --vector-rounds 0 skips it
// ("vector": null).
//
// A `megabatch` block A/Bs the cross-cell megabatch scheduler
// (sim/megabatch.hpp) on the sync grid, single-threaded: runs/sec with
// megabatching off (independent per-cell batches, the legacy slicing) vs
// on (shape-keyed cross-cell packs), their ratio — the tracked megabatch
// speedup — and each mode's SIMD lane occupancy (useful lanes / padded
// lanes dispatched, from the engines' own counters).
//
// The top-level `ladder_collapsed` flag is true when the thread ladder
// degenerates to a single rung (a 1-core machine); scripts/bench_check.sh
// then *skips* the parallel-speedup gate — explicitly, not silently —
// instead of failing a comparison that cannot exist.
//
// A `cache` block times the content-addressed result cache
// (cache/result_cache.hpp) on the sync grid: one cold pass that fills a
// fresh in-memory cache, then the best of --repeats warm passes served
// entirely from it, with their runs/sec ratio (the tracked warm-path
// speedup) and the warm-pass hit ratio (must be 1).
//
// A `transcendental` block covers the cost families whose gradients are
// transcendental (LogCosh / SmoothAbs / SoftplusBasin). It times an
// all-transcendental family directly through run_sbg / run_sbg_batch
// (the sweep spec grammar pins the std-mixed family, so this cannot
// ride run_sweep) at three rungs: the scalar per-run engine (the fully
// virtual path such families used to be confined to), the batched
// engine with the deterministic kernels disabled (virtual derivative()
// per lane — func/functions.hpp:
// set_transcendental_batch_kernels_enabled), and the batched engine
// with the SIMD polynomial kernels on. All three produce bit-identical
// trajectories. `speedup` is kernel vs the scalar virtual path (the
// tracked number); `devirtualization_speedup` isolates the
// gradient-dispatch win within the batched engine.
// --transcendental-rounds 0 skips it ("transcendental": null).
//
//   bench_sweep_json [--rounds R] [--seeds K] [--engine batched|scalar]
//                    [--batch B] [--isa auto|scalar|sse2|avx2|avx512]
//                    [--repeats N] [--async-rounds R] [--vector-rounds R]
//                    [--vector-dim D] [--transcendental-rounds R]
//                    [--out FILE]

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "cli/args.hpp"
#include "cli/engine_flags.hpp"
#include "common/thread_pool.hpp"
#include "func/functions.hpp"
#include "func/library.hpp"
#include "sim/batch_runner.hpp"
#include "sim/megabatch.hpp"
#include "sim/runner.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"
#include "simd/simd.hpp"

// Baked in by bench/CMakeLists.txt so the JSON records how the binary
// was compiled; fall back to unknowns for out-of-tree builds.
#ifndef FTMAO_BENCH_COMPILER
#define FTMAO_BENCH_COMPILER "unknown"
#endif
#ifndef FTMAO_BENCH_CXX_FLAGS
#define FTMAO_BENCH_CXX_FLAGS "unknown"
#endif
#ifndef FTMAO_BENCH_BUILD_TYPE
#define FTMAO_BENCH_BUILD_TYPE "unknown"
#endif

namespace {

using namespace ftmao;

struct Throughput {
  std::size_t threads = 0;
  double seconds = 0.0;
  double cells_per_sec = 0.0;
  double runs_per_sec = 0.0;
  double rounds_per_sec = 0.0;
  double agent_rounds_per_sec = 0.0;
};

// One pass over the default grid takes ~25 ms single-threaded, which is
// far too short for a single sample: scheduler interference or a busy
// hypervisor neighbour can inflate one pass by 40%+. Interference only
// ever *adds* time, so the minimum wall time over `repeats` passes is
// the robust throughput estimator (same rationale as Google Benchmark's
// repetition aggregates).
Throughput measure(const SweepConfig& config, std::size_t threads,
                   std::size_t repeats) {
  SweepConfig timed = config;
  timed.num_threads = threads;

  double best_seconds = 0.0;
  std::vector<SweepCell> cells;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    cells = run_sweep(timed);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }

  const std::size_t runs = cells.size() * config.seeds.size();
  std::size_t agent_rounds = 0;
  for (const SweepCell& c : cells)
    agent_rounds += c.n * config.rounds * config.seeds.size();

  Throughput r;
  r.threads = threads;
  r.seconds = best_seconds;
  if (r.seconds > 0.0) {
    r.cells_per_sec = static_cast<double>(cells.size()) / r.seconds;
    r.runs_per_sec = static_cast<double>(runs) / r.seconds;
    r.rounds_per_sec = static_cast<double>(runs * config.rounds) / r.seconds;
    r.agent_rounds_per_sec = static_cast<double>(agent_rounds) / r.seconds;
  }
  return r;
}

// Best-of-repeats runs/sec over the transcendental replicas. One "run"
// is one replica trajectory, matching the sweep blocks' unit. `engine`
// selects the rung: the scalar per-run path (run_sbg per replica), or
// run_sbg_batch with the devirtualized kernels forced off or on.
enum class TranscendentalRung { kScalarVirtual, kBatchedVirtual, kBatchedKernel };

double measure_transcendental(const std::vector<Scenario>& replicas,
                              std::size_t repeats, TranscendentalRung rung) {
  set_transcendental_batch_kernels_enabled(rung ==
                                           TranscendentalRung::kBatchedKernel);
  double best_seconds = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    if (rung == TranscendentalRung::kScalarVirtual) {
      for (const Scenario& s : replicas) run_sbg(s);
    } else {
      if (run_sbg_batch(replicas).size() != replicas.size()) return 0.0;
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  set_transcendental_batch_kernels_enabled(true);
  return best_seconds > 0.0
             ? static_cast<double>(replicas.size()) / best_seconds
             : 0.0;
}

void emit(std::ostream& os, const Throughput& t) {
  os << "    {\"threads\": " << t.threads << ", \"seconds\": " << t.seconds
     << ", \"cells_per_sec\": " << t.cells_per_sec
     << ", \"runs_per_sec\": " << t.runs_per_sec
     << ", \"rounds_per_sec\": " << t.rounds_per_sec
     << ", \"agent_rounds_per_sec\": " << t.agent_rounds_per_sec << "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftmao;
  std::vector<cli::FlagSpec> specs = {
      {"rounds", "iterations per run", "1000", false},
      {"seeds", "seeds per cell (1..k)", "3", false},
      {"engine", "sweep engine: batched | scalar", "batched", false},
      {"batch", "replicas per batched-engine call (0 = whole seed axis)",
       "0", false},
      {"repeats", "grid passes per rung; best (min-time) pass is reported",
       "20", false},
      {"async-rounds", "rounds per run for the async block (0 = skip)",
       "1000", false},
      {"vector-rounds", "rounds per run for the vector block (0 = skip)",
       "1000", false},
      {"vector-dim", "state dimension for the vector block", "8", false},
      {"transcendental-rounds",
       "rounds per run for the transcendental block (0 = skip)", "1000",
       false},
      {"out", "output path", "BENCH_sweep.json", false},
      {"help", "show usage", "false", true},
  };
  specs.push_back(cli::isa_flag_spec("output"));
  cli::ArgParser parser(std::move(specs));
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (const auto error = parser.parse(args)) {
    std::cerr << "error: " << *error << "\n\nusage:\n" << parser.help_text();
    return 2;
  }
  if (parser.get_bool("help")) {
    std::cout << "bench_sweep_json — sweep-engine throughput baseline\n\n"
              << parser.help_text();
    return 0;
  }

  try {
    // The ftmao_sweep default grid (sizes and attacks), with the round
    // and seed counts trimmed so refreshing the baseline stays cheap.
    SweepConfig config;
    config.sizes = {{7, 2}, {10, 3}, {13, 4}};
    config.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip,
                      AttackKind::PullToTarget};
    const auto seed_count = static_cast<std::uint64_t>(parser.get_int("seeds"));
    for (std::uint64_t s = 1; s <= seed_count; ++s) config.seeds.push_back(s);
    config.rounds = static_cast<std::size_t>(parser.get_int("rounds"));

    const std::string engine = parser.get("engine");
    if (engine != "batched" && engine != "scalar") {
      std::cerr << "error: --engine must be 'batched' or 'scalar'\n";
      return 2;
    }
    config.scalar_engine = engine == "scalar";
    config.batch_size = static_cast<std::size_t>(parser.get_int("batch"));

    if (!cli::apply_isa_flag(parser, std::cerr)) return 2;

    const auto repeats =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, parser.get_int("repeats")));

    std::vector<Throughput> results;
    for (std::size_t threads : thread_ladder())
      results.push_back(measure(config, threads, repeats));

    // Megabatch block: the sync grid, single-threaded, through the
    // batched engines with cross-cell megabatching off (one batch per
    // cell — the legacy slicing) vs on (shape-keyed cross-cell packs).
    // The engines' own lane counters give each mode's occupancy: useful
    // lanes / padded lanes actually dispatched, accumulated over every
    // batched-engine call of the timed passes.
    SweepConfig mb_config = config;
    mb_config.scalar_engine = false;
    mb_config.megabatch = false;
    engine_stats_reset();
    const Throughput mb_per_cell = measure(mb_config, 1, repeats);
    const EngineStats mb_per_cell_stats = engine_stats_snapshot();
    mb_config.megabatch = true;
    engine_stats_reset();
    const Throughput mb_on = measure(mb_config, 1, repeats);
    const EngineStats mb_on_stats = engine_stats_snapshot();
    const double mb_speedup =
        mb_per_cell.runs_per_sec > 0.0
            ? mb_on.runs_per_sec / mb_per_cell.runs_per_sec
            : 1.0;

    // Async block: the n > 5f grid, single-threaded, scalar event loop vs
    // batched replay engine. Their runs/sec ratio is the tracked speedup.
    const auto async_rounds =
        static_cast<std::size_t>(parser.get_int("async-rounds"));
    Throughput async_scalar, async_batched;
    if (async_rounds > 0) {
      SweepConfig async_config;
      async_config.async_engine = true;
      async_config.sizes = {{6, 1}, {11, 2}};
      async_config.attacks = config.attacks;
      async_config.seeds = config.seeds;
      async_config.rounds = async_rounds;
      async_config.scalar_engine = true;
      async_scalar = measure(async_config, 1, repeats);
      async_config.scalar_engine = false;
      async_config.batch_size = config.batch_size;
      async_batched = measure(async_config, 1, repeats);
    }
    const double async_speedup =
        async_scalar.runs_per_sec > 0.0
            ? async_batched.runs_per_sec / async_scalar.runs_per_sec
            : 1.0;

    // Vector block: the sync grid at --vector-dim, single-threaded,
    // scalar per-run path vs the lane-packed batched engine. The seed
    // axis is widened to 8 so the pack (dim * seeds lanes per agent row)
    // fills whole SIMD registers at the default dim — the engine's
    // intended operating point — independent of the sync grid's --seeds.
    const auto vector_rounds =
        static_cast<std::size_t>(parser.get_int("vector-rounds"));
    const auto vector_dim =
        static_cast<std::size_t>(parser.get_int("vector-dim"));
    Throughput vector_scalar, vector_batched;
    if (vector_rounds > 0) {
      SweepConfig vector_config;
      vector_config.sizes = config.sizes;
      vector_config.dims = {vector_dim};
      vector_config.attacks = config.attacks;
      vector_config.seeds.clear();
      for (std::uint64_t s = 1; s <= 8; ++s) vector_config.seeds.push_back(s);
      vector_config.rounds = vector_rounds;
      vector_config.scalar_engine = true;
      vector_scalar = measure(vector_config, 1, repeats);
      vector_config.scalar_engine = false;
      vector_config.batch_size = config.batch_size;
      vector_batched = measure(vector_config, 1, repeats);
    }
    const double vector_speedup =
        vector_scalar.runs_per_sec > 0.0
            ? vector_batched.runs_per_sec / vector_scalar.runs_per_sec
            : 1.0;

    // Transcendental block: n=7, f=2, split-brain, 16 seed replicas over
    // the all-transcendental family, timed straight through
    // run_sbg_batch with the devirtualized kernels off (virtual
    // derivative() per lane) vs on (SIMD polynomial kernels per row).
    const auto transcendental_rounds =
        static_cast<std::size_t>(parser.get_int("transcendental-rounds"));
    double trans_virtual = 0.0, trans_bvirtual = 0.0, trans_kernel = 0.0;
    if (transcendental_rounds > 0) {
      const auto family = make_transcendental_family(7, 8.0);
      std::vector<Scenario> replicas;
      for (std::uint64_t s = 1; s <= 16; ++s) {
        Scenario scenario = make_standard_scenario(
            7, 2, 8.0, AttackKind::SplitBrain, transcendental_rounds, s);
        scenario.functions = family;
        replicas.push_back(std::move(scenario));
      }
      trans_virtual = measure_transcendental(
          replicas, repeats, TranscendentalRung::kScalarVirtual);
      trans_bvirtual = measure_transcendental(
          replicas, repeats, TranscendentalRung::kBatchedVirtual);
      trans_kernel = measure_transcendental(
          replicas, repeats, TranscendentalRung::kBatchedKernel);
    }
    const double trans_speedup =
        trans_virtual > 0.0 ? trans_kernel / trans_virtual : 1.0;
    const double trans_devirt_speedup =
        trans_bvirtual > 0.0 ? trans_kernel / trans_bvirtual : 1.0;

    // Cache block: the sync grid served through a fresh in-memory
    // ResultCache. The cold pass (one pass, lookups all miss, results
    // inserted) is timed on its own — measure()'s min-of-repeats would
    // blend cold and warm passes — then the warm path is the best of
    // `repeats` all-hit passes. Their runs/sec ratio is the tracked
    // warm-path speedup; the hit ratio over the warm passes must be 1.
    ResultCache cache{CacheConfig{}};
    SweepConfig cached_config = config;
    cached_config.cache = &cache;
    const Throughput cache_cold = measure(cached_config, 1, 1);
    const CacheStats after_cold = cache.stats();
    const Throughput cache_warm = measure(cached_config, 1, repeats);
    const CacheStats after_warm = cache.stats();
    const double cache_speedup =
        cache_cold.runs_per_sec > 0.0
            ? cache_warm.runs_per_sec / cache_cold.runs_per_sec
            : 1.0;
    const std::uint64_t warm_lookups =
        (after_warm.hits + after_warm.misses) -
        (after_cold.hits + after_cold.misses);
    const double warm_hit_ratio =
        warm_lookups > 0
            ? static_cast<double>(after_warm.hits - after_cold.hits) /
                  static_cast<double>(warm_lookups)
            : 0.0;

    const Throughput& serial = results.front();
    double best_runs_per_sec = serial.runs_per_sec;
    for (const Throughput& t : results)
      best_runs_per_sec = std::max(best_runs_per_sec, t.runs_per_sec);
    const double speedup = serial.runs_per_sec > 0.0
                               ? best_runs_per_sec / serial.runs_per_sec
                               : 1.0;

    std::ostringstream os;
    os.precision(6);
    os << "{\n"
       << "  \"benchmark\": \"sweep_default_grid\",\n"
       << "  \"engine\": \"" << engine << "\",\n"
       << "  \"batch_size\": " << config.batch_size << ",\n"
       << "  \"machine\": {\"hardware_concurrency\": "
       << std::thread::hardware_concurrency()
       << ", \"simd_isa_detected\": \"" << simd_isa_name(simd_detect())
       << "\", \"simd_isa_active\": \"" << simd_isa_name(simd_active())
       << "\", \"compiler\": \"" << FTMAO_BENCH_COMPILER
       << "\", \"cxx_flags\": \"" << FTMAO_BENCH_CXX_FLAGS
       << "\", \"build_type\": \"" << FTMAO_BENCH_BUILD_TYPE << "\"},\n"
       << "  \"grid\": {\"sizes\": \"7:2,10:3,13:4\", "
       << "\"attacks\": \"split-brain,sign-flip,pull\", "
       << "\"seeds\": " << config.seeds.size()
       << ", \"rounds\": " << config.rounds
       << ", \"repeats\": " << repeats << "},\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      emit(os, results[i]);
      os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "  ],\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"ladder_collapsed\": "
       << (results.size() == 1 ? "true" : "false") << ",\n"
       << "  \"megabatch\": {\n"
       << "    \"per_cell_runs_per_sec\": " << mb_per_cell.runs_per_sec
       << ",\n"
       << "    \"megabatch_runs_per_sec\": " << mb_on.runs_per_sec << ",\n"
       << "    \"speedup\": " << mb_speedup << ",\n"
       << "    \"per_cell_occupancy\": " << mb_per_cell_stats.occupancy()
       << ",\n"
       << "    \"megabatch_occupancy\": " << mb_on_stats.occupancy() << ",\n"
       << "    \"per_cell_batches\": " << mb_per_cell_stats.batches << ",\n"
       << "    \"megabatch_batches\": " << mb_on_stats.batches << "\n  },\n"
       << "  \"cache\": {\n"
       << "    \"cold_runs_per_sec\": " << cache_cold.runs_per_sec << ",\n"
       << "    \"warm_runs_per_sec\": " << cache_warm.runs_per_sec << ",\n"
       << "    \"speedup\": " << cache_speedup << ",\n"
       << "    \"warm_hit_ratio\": " << warm_hit_ratio << ",\n"
       << "    \"entries\": " << after_warm.entries << "\n  },\n";
    if (transcendental_rounds > 0) {
      os << "  \"transcendental\": {\n"
         << "    \"grid\": {\"n\": 7, \"f\": 2, \"attack\": \"split-brain\", "
         << "\"family\": \"transcendental\", \"seeds\": 16, \"rounds\": "
         << transcendental_rounds << "},\n"
         << "    \"virtual_runs_per_sec\": " << trans_virtual << ",\n"
         << "    \"batched_virtual_runs_per_sec\": " << trans_bvirtual
         << ",\n"
         << "    \"kernel_runs_per_sec\": " << trans_kernel << ",\n"
         << "    \"speedup\": " << trans_speedup << ",\n"
         << "    \"devirtualization_speedup\": " << trans_devirt_speedup
         << "\n  },\n";
    } else {
      os << "  \"transcendental\": null,\n";
    }
    if (async_rounds > 0) {
      os << "  \"async\": {\n"
         << "    \"grid\": {\"sizes\": \"6:1,11:2\", "
         << "\"attacks\": \"split-brain,sign-flip,pull\", "
         << "\"seeds\": " << config.seeds.size()
         << ", \"rounds\": " << async_rounds << "},\n"
         << "    \"scalar_runs_per_sec\": " << async_scalar.runs_per_sec
         << ",\n"
         << "    \"batched_runs_per_sec\": " << async_batched.runs_per_sec
         << ",\n"
         << "    \"speedup\": " << async_speedup << "\n  },\n";
    } else {
      os << "  \"async\": null,\n";
    }
    if (vector_rounds > 0) {
      os << "  \"vector\": {\n"
         << "    \"grid\": {\"sizes\": \"7:2,10:3,13:4\", "
         << "\"dim\": " << vector_dim
         << ", \"attacks\": \"split-brain,sign-flip,pull\", "
         << "\"seeds\": 8"
         << ", \"rounds\": " << vector_rounds << "},\n"
         << "    \"scalar_runs_per_sec\": " << vector_scalar.runs_per_sec
         << ",\n"
         << "    \"batched_runs_per_sec\": " << vector_batched.runs_per_sec
         << ",\n"
         << "    \"speedup\": " << vector_speedup << "\n  }\n}\n";
    } else {
      os << "  \"vector\": null\n}\n";
    }

    const std::string path = parser.get("out");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return 1;
    }
    out << os.str();
    std::cout << os.str();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
