// E10 — implementation performance (google-benchmark).
//
// Microbenchmarks of the primitives (Trim, envelopes, Y computation, LP
// witness) and whole-round costs vs n — the scaling a deployment would
// care about. No paper counterpart (the paper has no implementation);
// included for completeness of the harness.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "consensus/eig.hpp"
#include "graph/robustness.hpp"
#include "core/admissibility.hpp"
#include "core/valid_set.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"
#include "trim/trim.hpp"

namespace {

using namespace ftmao;

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-10.0, 10.0);
  return v;
}

void BM_Trim(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  const auto values = random_values(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trim_value(values, f));
  }
}
BENCHMARK(BM_Trim)->Arg(7)->Arg(31)->Arg(127)->Arg(1023)->Arg(8191);

void BM_TrimmedMean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  const auto values = random_values(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trimmed_mean(values, f));
  }
}
BENCHMARK(BM_TrimmedMean)->Arg(7)->Arg(127)->Arg(8191);

void BM_EnvelopeGradient(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const ValidFamily family(make_mixed_family(m, 10.0), (m - 1) / 3);
  double x = -5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.max_envelope_gradient(x));
    x += 1e-4;
  }
}
BENCHMARK(BM_EnvelopeGradient)->Arg(5)->Arg(21)->Arg(85);

void BM_OptimaSetY(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto fns = make_mixed_family(m, 10.0);
  for (auto _ : state) {
    const ValidFamily family(fns, (m - 1) / 3);
    benchmark::DoNotOptimize(family.optima_set());
  }
}
BENCHMARK(BM_OptimaSetY)->Arg(5)->Arg(21)->Arg(85);

void BM_WitnessAudit(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (m - 1) / 4;
  const auto honest = random_values(m, 11);
  std::vector<double> all = honest;
  all.push_back(100.0);
  const double trimmed = trim_value(all, f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit_trim(honest, trimmed, f));
  }
}
BENCHMARK(BM_WitnessAudit)->Arg(5)->Arg(8)->Arg(11);

void BM_SbgFullRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  // Pre-built outside the loop: per-iteration PauseTiming/ResumeTiming has
  // ~100ns+ overhead that dwarfs and distorts small-n timings. run_sbg
  // takes the scenario by const& and never mutates it, so one instance
  // serves every iteration.
  const Scenario s =
      make_standard_scenario(n, f, 8.0, AttackKind::SplitBrain, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sbg(s));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_SbgFullRound)->Arg(7)->Arg(31)->Arg(127)->Unit(benchmark::kMicrosecond);

void BM_DgdFullRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  Scenario s = make_standard_scenario(n, f, 8.0, AttackKind::SplitBrain, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_dgd(s));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_DgdFullRound)->Arg(7)->Arg(31)->Arg(127)->Unit(benchmark::kMicrosecond);

void BM_EigInstance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  EigConfig config;
  config.n = n;
  config.f = f;
  const std::vector<EigAttack*> attacks(n, nullptr);
  for (auto _ : state) {
    EigInstance instance(config, AgentId{0}, attacks);
    instance.run(1.0);
    benchmark::DoNotOptimize(instance.decision(AgentId{1}));
  }
}
BENCHMARK(BM_EigInstance)->Arg(4)->Arg(7)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_RobustnessCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Topology t = make_ring_lattice(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_r_robust(t, 3));
  }
}
BENCHMARK(BM_RobustnessCheck)->Arg(7)->Arg(9)->Arg(11)->Unit(benchmark::kMicrosecond);

void BM_ValidSetWitness(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const ValidFamily family(make_mixed_family(m, 10.0), (m - 1) / 3);
  const double x = family.optima_set().midpoint();
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.optimum_witness(x));
  }
}
BENCHMARK(BM_ValidSetWitness)->Arg(5)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
