// E2 — Theorem 2(ii): optimality.
//
// Claim: max_j Dist(x_j[t], Y) -> 0, where Y is the union of optima of the
// valid family C. Output: distance series under three attacks and three
// step schedules, plus where inside Y each run lands (the relaxation is
// real: different attacks select different valid optima).

#include <iostream>

#include "bench_util.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E2: optimality (Theorem 2(ii))",
      "max_j Dist(x_j[t], Y) -> 0; landing point varies within Y by attack");

  constexpr std::size_t kRounds = 20000;

  // --- distance series per attack (n=7, f=2, harmonic steps)
  std::vector<RunMetrics> runs;
  std::vector<std::string> names;
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, AttackKind>>{
           {"split-brain", AttackKind::SplitBrain},
           {"sign-flip", AttackKind::SignFlip},
           {"hull-edge-up", AttackKind::HullEdgeUp}}) {
    Scenario s = make_standard_scenario(7, 2, 8.0, kind, kRounds);
    // Start well outside Y so the approach trajectory is visible.
    s.initial_states = {-14.0, -10.0, -6.0, 6.0, 10.0, 14.0, 18.0};
    runs.push_back(run_sbg(s));
    names.push_back(name);
  }
  std::vector<const Series*> series;
  for (const auto& r : runs) series.push_back(&r.max_dist_to_y);
  std::cout << "Dist to Y over iterations (n=7, f=2):\n";
  bench::print_series_table(names, series, kRounds);
  std::cout << "Y = [" << format_double(runs[0].optima.lo()) << ", "
            << format_double(runs[0].optima.hi()) << "]\n";

  // --- landing points: attacks steer the answer WITHIN Y only
  std::cout << "\nFinal consensus value by attack (all inside Y):\n";
  Table land({"attack", "final state", "dist to Y"});
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, AttackKind>>{
           {"none", AttackKind::None},
           {"hull-edge-up", AttackKind::HullEdgeUp},
           {"hull-edge-down", AttackKind::HullEdgeDown},
           {"pull-to--30", AttackKind::PullToTarget}}) {
    Scenario s = make_standard_scenario(13, 4, 12.0, kind, kRounds);
    s.attack.target = -30.0;
    const RunMetrics m = run_sbg(s);
    land.row().add(name).add(m.final_states.front(), 4).add(m.final_max_dist(), 4);
  }
  land.print(std::cout);

  // --- step-schedule comparison
  std::cout << "\nStep-schedule comparison (n=7, f=2, split-brain):\n";
  Table sched({"schedule", "final dist", "final disagreement"});
  for (const auto& [name, cfg] : std::vector<std::pair<std::string, StepConfig>>{
           {"harmonic 1/t", {StepKind::Harmonic, 1.0, 0.0}},
           {"power t^-0.75", {StepKind::Power, 1.0, 0.75}},
           {"power t^-0.6", {StepKind::Power, 1.0, 0.6}},
           {"constant 0.05 (invalid)", {StepKind::Constant, 0.05, 0.0}}}) {
    Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, kRounds);
    s.step = cfg;
    const RunMetrics m = run_sbg(s);
    sched.row().add(name).add(m.final_max_dist(), 4).add(m.final_disagreement(), 4);
  }
  sched.print(std::cout);
  return 0;
}
