// E24 — deterministic transcendental kernel performance.
//
// Microbenchmarks of the three transcendental gradient kernels
// (gradient_tanh / gradient_smooth_abs / gradient_softplus_diff,
// simd/det_math_impl.hpp) against the per-value virtual derivative()
// path they replace, and of the whole batched round loop over an
// all-transcendental cost family (LogCosh / SmoothAbs / SoftplusBasin,
// func/library.hpp: make_transcendental_family) with the devirtualized
// kernels enabled vs disabled. Both round-loop variants compute
// bit-identical trajectories — the toggle
// (set_transcendental_batch_kernels_enabled) only switches the gradient
// dispatch — so the ratio is a pure devirtualization + SIMD win. Every
// batched benchmark is registered once per compiled-and-supported
// backend, like e21. No paper counterpart; harness hot path.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "func/functions.hpp"
#include "func/library.hpp"
#include "sim/batch_runner.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "simd/simd.hpp"

namespace {

using namespace ftmao;

std::vector<double> random_values(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(count);
  for (auto& v : x) v = rng.uniform(-10.0, 10.0);
  return x;
}

// Virtual baseline: one derivative() call per value, cycling the three
// transcendental families like a mixed lane row would.
void BM_TranscendentalGradient_Virtual(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto family = make_transcendental_family(3, 8.0);
  const auto x = random_values(count, 13);
  std::vector<double> g(count);
  for (auto _ : state) {
    for (std::size_t k = 0; k < count; ++k)
      g[k] = family[k % 3]->derivative(x[k]);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_TranscendentalGradient_Virtual)->Arg(16)->Arg(256);

// One uniform-kind lane row through each transcendental kernel.
void BM_Gradient_Tanh(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const SimdKernels& kernels = simd_kernels_for(isa);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto x = random_values(count, 13);
  const std::vector<double> c(count, 1.0), w(count, 1.5), scale(count, 0.75);
  std::vector<double> g(count);
  for (auto _ : state) {
    kernels.gradient_tanh(x.data(), c.data(), w.data(), scale.data(),
                          g.data(), count);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

void BM_Gradient_SmoothAbs(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const SimdKernels& kernels = simd_kernels_for(isa);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto x = random_values(count, 13);
  const std::vector<double> c(count, 1.0), eps(count, 0.5), scale(count, 1.0);
  std::vector<double> g(count);
  for (auto _ : state) {
    kernels.gradient_smooth_abs(x.data(), c.data(), eps.data(), scale.data(),
                                g.data(), count);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

void BM_Gradient_SoftplusDiff(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const SimdKernels& kernels = simd_kernels_for(isa);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto x = random_values(count, 13);
  const std::vector<double> a(count, -0.5), b(count, 0.5), w(count, 0.75),
      scale(count, 1.0);
  std::vector<double> g(count);
  for (auto _ : state) {
    kernels.gradient_softplus_diff(x.data(), a.data(), b.data(), w.data(),
                                   scale.data(), g.data(), count);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

std::vector<Scenario> transcendental_replicas(std::size_t n, std::size_t f,
                                              AttackKind attack,
                                              std::size_t rounds,
                                              std::size_t batch) {
  const auto family = make_transcendental_family(n, 8.0);
  std::vector<Scenario> replicas;
  replicas.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    Scenario s = make_standard_scenario(n, f, 8.0, attack, rounds, 1 + r);
    s.functions = family;
    replicas.push_back(std::move(s));
  }
  return replicas;
}

// Whole batched round loop over the all-transcendental family, with the
// devirtualized kernels on (state.range(3) = 1) or off (0). Off means
// every gradient goes through the virtual scalar derivative() — the
// pre-devirtualization behaviour — on the same engine, same trim
// kernels, same everything else.
void BM_RoundLoop_Transcendental(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<AttackKind>(state.range(2));
  const bool kernels_on = state.range(3) != 0;
  const std::size_t rounds = 200;
  const auto replicas =
      transcendental_replicas(n, (n - 1) / 3, kind, rounds, batch);
  set_transcendental_batch_kernels_enabled(kernels_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_sbg_batch(replicas).front().final_disagreement());
  }
  set_transcendental_batch_kernels_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * rounds));
}

constexpr auto kSplitBrain = static_cast<int>(AttackKind::SplitBrain);

void register_per_backend() {
  for (const SimdIsa isa : simd_compiled()) {
    if (!simd_supported(isa)) continue;
    const std::string tag = std::string("/") + simd_isa_name(isa);
    benchmark::RegisterBenchmark(("BM_Gradient_Tanh" + tag).c_str(),
                                 BM_Gradient_Tanh, isa)
        ->Arg(16)->Arg(256);
    benchmark::RegisterBenchmark(("BM_Gradient_SmoothAbs" + tag).c_str(),
                                 BM_Gradient_SmoothAbs, isa)
        ->Arg(16)->Arg(256);
    benchmark::RegisterBenchmark(("BM_Gradient_SoftplusDiff" + tag).c_str(),
                                 BM_Gradient_SoftplusDiff, isa)
        ->Arg(16)->Arg(256);
    benchmark::RegisterBenchmark(("BM_RoundLoop_Transcendental" + tag).c_str(),
                                 BM_RoundLoop_Transcendental, isa)
        ->Args({7, 16, kSplitBrain, 0})
        ->Args({7, 16, kSplitBrain, 1})
        ->Args({13, 16, kSplitBrain, 0})
        ->Args({13, 16, kSplitBrain, 1});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_per_backend();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
