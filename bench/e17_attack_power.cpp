// E17 — empirical strongest adversary and seed sensitivity.
//
// Theorem 2 bounds what ANY attack achieves: the output stays in Y. This
// bench (1) searches a grid of 20+ concrete attack configurations for the
// one displacing the consensus furthest from the attack-free outcome,
// checking that even the strongest never leaves Y; and (2) reports the
// across-seed variance of the headline metrics so single-run numbers in
// the other benches can be trusted.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sim/attack_search.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E17: strongest-attack search + seed sensitivity",
      "max realizable bias within Y; variance of metrics across seeds");

  Scenario base = make_standard_scenario(7, 2, 8.0, AttackKind::None, 5000);
  const AttackSearchResult search =
      find_strongest_attack(base, standard_attack_grid());

  std::cout << "Attack-free consensus: " << format_double(search.reference_state, 4)
            << "   Y = [" << format_double(search.optima.lo(), 4) << ", "
            << format_double(search.optima.hi(), 4) << "]\n\n";
  Table table({"attack", "final state", "bias", "dist to Y", "disagr"});
  for (const auto& o : search.outcomes) {
    table.row()
        .add(o.name)
        .add(o.final_state, 4)
        .add(o.bias, 4)
        .add(o.dist_to_y, 4)
        .add(o.disagreement, 4);
  }
  table.print(std::cout);
  std::cout << "\nStrongest: " << search.strongest().name << " (bias "
            << format_double(search.strongest().bias, 4)
            << "); max possible within Y from the reference is "
            << format_double(
                   std::max(search.reference_state - search.optima.lo(),
                            search.optima.hi() - search.reference_state),
                   4)
            << ". No attack leaves Y (all dist ~ 0) — Theorem 2's cap.\n";

  // ---- Seed sensitivity of the noise attack (the only seeded one).
  std::cout << "\nSeed sensitivity (noise attack, 20 seeds, n=7, f=2):\n";
  std::vector<double> final_disagr, final_dist, final_state;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario s =
        make_standard_scenario(7, 2, 8.0, AttackKind::RandomNoise, 5000, seed);
    const RunMetrics m = run_sbg(s);
    final_disagr.push_back(m.final_disagreement());
    final_dist.push_back(m.final_max_dist());
    final_state.push_back(m.final_states.front());
  }
  Table stats({"metric", "min", "median", "max", "mean", "stddev"});
  auto add_stat = [&](const std::string& name, const std::vector<double>& v) {
    const Summary s = summarize(v);
    stats.row().add(name).add(s.min, 4).add(s.median, 4).add(s.max, 4)
        .add(s.mean, 4).add(s.stddev, 4);
  };
  add_stat("final disagreement", final_disagr);
  add_stat("final dist to Y", final_dist);
  add_stat("final consensus value", final_state);
  stats.print(std::cout);
  std::cout << "\nThe consensus value varies slightly with the seed (the\n"
               "relaxation permits any point of Y) but dist-to-Y does not:\n"
               "the guarantee is seed-independent.\n";
  return 0;
}
