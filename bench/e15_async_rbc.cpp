// E15 — the two asynchronous constructions of Section 7, head to head:
//
//   A. SBG + Bracha reliable broadcast: tolerates n > 3f, three protocol
//      phases (INIT/ECHO/READY) per tuple -> ~3n^2 messages per round.
//   B. SBG + simple n-f quorum collection: needs n > 5f, a single
//      broadcast per round -> n^2 messages per round.
//
// The paper: "The two approaches will achieve a trade-off between
// communication cost and optimization performance." This bench quantifies
// that trade-off: resilience, messages, virtual completion time, and
// final consensus quality.

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "consensus/rbc_sbg.hpp"
#include "func/library.hpp"
#include "sim/async_runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E15: async SBG — reliable broadcast (n>3f) vs quorum (n>5f)",
      "resilience/communication trade-off of Section 7's two constructions");

  constexpr std::size_t kRounds = 300;
  const HarmonicStep schedule;

  Table table({"variant", "n", "f", "resilience bound", "measured msgs/round",
               "final disagr", "virtual time"});

  // --- A: RBC-based at n = 3f + 1 (quorum variant cannot run here).
  {
    const auto costs = make_spread_hubers(5, 8.0);
    const std::vector<double> init{-4.0, -2.0, 0.0, 2.0, 4.0};
    UniformDelay delays(0.5, 1.5, Rng(7));
    const auto r = run_rbc_sbg(
        [] {
          RbcSbgConfig c;
          c.n = 7;
          c.f = 2;
          c.max_rounds = kRounds;
          return c;
        }(),
        costs, init, 2, schedule, delays);
    table.row()
        .add("A: SBG + RBC")
        .add(std::size_t{7})
        .add(std::size_t{2})
        .add("n > 3f")
        .add(static_cast<std::size_t>(r.messages_delivered / kRounds))
        .add(r.disagreement.back(), 4)
        .add(r.virtual_time, 1);
  }

  // --- B: quorum-based needs n > 5f: n = 11 for f = 2.
  {
    AsyncScenario s;
    s.n = 11;
    s.f = 2;
    s.faulty = {9, 10};
    s.functions = make_spread_hubers(11, 8.0);
    s.initial_states.resize(11);
    for (std::size_t i = 0; i < 11; ++i)
      s.initial_states[i] = -4.0 + 8.0 * static_cast<double>(i) / 10.0;
    s.attack.kind = AttackKind::SplitBrain;
    s.rounds = kRounds;
    s.delay_kind = DelayKind::Uniform;
    const AsyncRunMetrics r = run_async_sbg(s);
    table.row()
        .add("B: SBG + n-f quorum")
        .add(std::size_t{11})
        .add(std::size_t{2})
        .add("n > 5f")
        .add(static_cast<std::size_t>(r.messages_delivered / kRounds))
        .add(r.disagreement.back(), 4)
        .add(r.virtual_time, 1);
  }

  // --- B at the same n = 7 it cannot tolerate f = 2; run it with f = 1 to
  //     show what it CAN promise with 7 agents.
  {
    AsyncScenario s;
    s.n = 7;
    s.f = 1;
    s.faulty = {6};
    s.functions = make_spread_hubers(7, 8.0);
    s.initial_states.resize(7);
    for (std::size_t i = 0; i < 7; ++i)
      s.initial_states[i] = -4.0 + 8.0 * static_cast<double>(i) / 6.0;
    s.attack.kind = AttackKind::SplitBrain;
    s.rounds = kRounds;
    const AsyncRunMetrics r = run_async_sbg(s);
    table.row()
        .add("B with 7 agents (f limited to 1)")
        .add(std::size_t{7})
        .add(std::size_t{1})
        .add("n > 5f")
        .add(static_cast<std::size_t>(r.messages_delivered / kRounds))
        .add(r.disagreement.back(), 4)
        .add(r.virtual_time, 1);
  }

  table.print(std::cout);
  std::cout << "\nWith 7 agents, variant A tolerates f = 2 where variant B\n"
               "caps out at f = 1 — paid for with ~5x the delivered messages and\n"
               "extra protocol latency visible in the virtual time.\n";
  return 0;
}
