// E9 — Proposition 1 and Lemma 4 numerics.
//
// Proposition 1: l(t) = sum_{r<t} lambda[r] b^{t-r} -> 0, and O(1/t) when
// lambda[t] = 1/t. (b = 1 - 1/(2(m-f)) is the consensus contraction
// factor.) Lemma 4: sum_t lambda[t] (M[t]-m[t]) < infinity. Both are
// printed as explicit numeric series.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/step_size.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header("E9: Proposition 1 and Lemma 4 numerics",
                      "l(t) decay and summability of lambda[t]*(M[t]-m[t])");

  constexpr std::size_t kT = 100000;

  // ---- Proposition 1: l(t) for the contraction factors of small systems.
  std::cout << "l(t) = sum_{r<t} lambda[r] * b^{t-r}, lambda harmonic:\n";
  const std::vector<double> bs{1.0 - 1.0 / 6.0,    // m=5, f=2 -> b = 1 - 1/(2*3)
                               1.0 - 1.0 / 22.0,   // m=26, f=15
                               0.5};
  const HarmonicStep lambda(1.0);
  std::vector<Series> ls(bs.size());
  for (std::size_t k = 0; k < bs.size(); ++k) {
    // l(t+1) = b * (l(t) + lambda[t]) — rolling evaluation, O(T).
    double l = 0.0;
    ls[k].push(0.0);
    for (std::size_t t = 0; t < kT; ++t) {
      l = bs[k] * (l + lambda.at(t));
      ls[k].push(l);
    }
  }
  {
    std::vector<std::string> names;
    std::vector<const Series*> ptrs;
    for (std::size_t k = 0; k < bs.size(); ++k) {
      names.push_back("b=" + format_double(bs[k], 4));
      ptrs.push_back(&ls[k]);
    }
    bench::print_series_table(names, ptrs, kT);
    Table fits({"b", "t*l(t) at tail (O(1/t) => flat)", "log-log slope"});
    for (std::size_t k = 0; k < bs.size(); ++k) {
      fits.row()
          .add(bs[k], 4)
          .add(static_cast<double>(kT) * ls[k].back(), 4)
          .add(fit_log_log_slope(ls[k], kT / 10), 3);
    }
    fits.print(std::cout);
  }

  // ---- Lemma 4 on an actual run.
  std::cout << "\nLemma 4: partial sums of lambda[t]*(M[t]-m[t]) must flatten\n"
               "(split-brain attack, n=7, f=2, 20000 rounds):\n";
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 20000);
  const RunMetrics m = run_sbg(s);
  std::vector<double> lambdas(m.disagreement.size());
  for (std::size_t t = 0; t < lambdas.size(); ++t) lambdas[t] = lambda.at(t);
  const auto sums = weighted_partial_sums(m.disagreement, lambdas);
  Table table({"t", "partial sum", "increment over last decade"});
  double prev = 0.0;
  for (std::size_t t : bench::log_spaced(sums.size() - 1)) {
    table.row().add(t).add(sums[t], 5).add(sums[t] - prev, 5);
    prev = sums[t];
  }
  table.print(std::cout);
  std::cout << "\nIncrements per decade shrink to ~0: the series converges\n"
               "(contrast: sum of lambda alone diverges ~ log t).\n";
  return 0;
}
