// E1 — Lemma 3 / Theorem 2(i): consensus.
//
// Claim: under SBG with the harmonic step size, the honest disagreement
// M[t] - m[t] decays to 0 at rate O(1/t), for every attack, at every legal
// (n, f). Output: disagreement series for three system sizes under the
// split-brain attack, plus the fitted log-log slope (expected ~ -1).

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/series.hpp"
#include "core/theory.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E1: consensus decay (Lemma 3 / Theorem 2(i))",
      "M[t]-m[t] under split-brain attack, harmonic steps; expect O(1/t)");

  constexpr std::size_t kRounds = 20000;
  struct Config {
    std::size_t n, f;
  };
  const std::vector<Config> configs{{7, 2}, {16, 5}, {31, 10}};

  std::vector<RunMetrics> runs;
  std::vector<std::string> names;
  for (const Config& c : configs) {
    Scenario s =
        make_standard_scenario(c.n, c.f, 8.0, AttackKind::SplitBrain, kRounds);
    s.attack.state_magnitude = 50.0;
    s.attack.gradient_magnitude = 5.0;
    runs.push_back(run_sbg(s));
    names.push_back("n=" + std::to_string(c.n) + ",f=" + std::to_string(c.f));
  }

  // Overlay the exact Lemma 3 upper bound (10) for the first config.
  {
    Scenario s =
        make_standard_scenario(configs[0].n, configs[0].f, 8.0,
                               AttackKind::SplitBrain, kRounds);
    const double L = family_gradient_bound(s.honest_functions());
    const HarmonicStep schedule;
    const Series bound = disagreement_upper_bound(
        runs[0].disagreement[0], L, schedule,
        configs[0].n - configs[0].f, configs[0].f, kRounds);
    std::vector<const Series*> series{&bound};
    std::vector<std::string> cols{"Lemma3 bound (n=7)"};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      series.push_back(&runs[i].disagreement);
      cols.push_back(names[i]);
    }
    bench::print_series_table(cols, series, kRounds);
  }

  std::cout << "\nFitted log-log slope of the tail (t >= 500); O(1/t) ~ -1:\n";
  Table fit({"config", "slope", "final disagreement"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    fit.row()
        .add(names[i])
        .add(fit_log_log_slope(runs[i].disagreement, 500), 3)
        .add(runs[i].final_disagreement(), 3);
  }
  fit.print(std::cout);

  std::cout << "\nSame system (n=7,f=2) across attacks, final disagreement:\n";
  Table attacks({"attack", "disagreement@" + std::to_string(kRounds), "slope"});
  const std::vector<std::pair<std::string, AttackKind>> kinds{
      {"none", AttackKind::None},        {"silent", AttackKind::Silent},
      {"fixed", AttackKind::FixedValue}, {"split-brain", AttackKind::SplitBrain},
      {"hull-edge", AttackKind::HullEdgeUp}, {"noise", AttackKind::RandomNoise},
      {"sign-flip", AttackKind::SignFlip},   {"pull", AttackKind::PullToTarget}};
  for (const auto& [name, kind] : kinds) {
    Scenario s = make_standard_scenario(7, 2, 8.0, kind, kRounds);
    const RunMetrics m = run_sbg(s);
    attacks.row()
        .add(name)
        .add(m.final_disagreement(), 3)
        .add(fit_log_log_slope(m.disagreement, 500), 3);
  }
  attacks.print(std::cout);
  return 0;
}
