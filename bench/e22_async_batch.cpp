// E22 — batched asynchronous engine performance (google-benchmark).
//
// The asynchronous hot path splits into a value-free scheduling replay
// (a per-replica event loop that only records sender bitmasks and trigger
// order) and a lockstep SoA numeric pass over the recorded schedules.
// These benchmarks compare the scalar event-driven reference
// (run_async_sbg per seed — heap events carrying payloads, std::map
// buffers, per-delivery virtual dispatch, per-round trim) against
// run_async_sbg_batch over the same seed axis, per compiled-and-supported
// SIMD backend (custom main, as in E21). Items processed = replica
// rounds, so items/sec is directly comparable across engines and sizes.
// No paper counterpart; this is the harness's own hot path.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "sim/async_runner.hpp"
#include "sim/batch_async_runner.hpp"
#include "simd/simd.hpp"

namespace {

using namespace ftmao;

std::vector<AsyncScenario> seed_replicas(std::size_t n, std::size_t f,
                                         AttackKind attack, DelayKind delays,
                                         std::size_t rounds,
                                         std::size_t batch) {
  std::vector<AsyncScenario> replicas;
  replicas.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    AsyncScenario s =
        make_standard_async_scenario(n, f, 8.0, attack, rounds, 1 + r);
    s.delay_kind = delays;
    replicas.push_back(std::move(s));
  }
  return replicas;
}

// Scalar reference: one full event-driven run per seed.
void BM_AsyncRounds_Scalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<AttackKind>(state.range(2));
  const std::size_t rounds = 200;
  const auto replicas = seed_replicas(n, (n - 1) / 5, kind,
                                      DelayKind::Uniform, rounds, batch);
  for (auto _ : state) {
    for (const AsyncScenario& s : replicas) {
      benchmark::DoNotOptimize(run_async_sbg(s).disagreement.back());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * rounds));
}

// Batched engine: per-replica scheduling replay, then the whole seed axis
// advances in lockstep through the SoA numeric pass.
void BM_AsyncRounds_Batched(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<AttackKind>(state.range(2));
  const std::size_t rounds = 200;
  const auto replicas = seed_replicas(n, (n - 1) / 5, kind,
                                      DelayKind::Uniform, rounds, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_async_sbg_batch(replicas).front().disagreement.back());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * rounds));
}

constexpr auto kNone = static_cast<int>(AttackKind::None);
constexpr auto kSplitBrain = static_cast<int>(AttackKind::SplitBrain);
constexpr auto kSignFlip = static_cast<int>(AttackKind::SignFlip);

BENCHMARK(BM_AsyncRounds_Scalar)
    ->Args({6, 8, kNone})->Args({6, 8, kSplitBrain})->Args({6, 8, kSignFlip})
    ->Args({11, 8, kNone})->Args({11, 8, kSplitBrain});

// One instance of every batched benchmark per compiled-and-supported
// SIMD backend, name-tagged "<bench>/<isa>".
void register_per_backend() {
  for (const SimdIsa isa : simd_compiled()) {
    if (!simd_supported(isa)) continue;
    const std::string tag = std::string("/") + simd_isa_name(isa);
    benchmark::RegisterBenchmark(("BM_AsyncRounds_Batched" + tag).c_str(),
                                 BM_AsyncRounds_Batched, isa)
        ->Args({6, 8, kNone})
        ->Args({6, 8, kSplitBrain})
        ->Args({6, 8, kSignFlip})
        ->Args({11, 8, kNone})
        ->Args({11, 8, kSplitBrain});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_per_backend();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
