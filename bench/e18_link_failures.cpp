// E18 — random link failures (the related-work setting of Duchi et al.
// [9] and Lobel-Ozdaglar [15], composed with Byzantine faults).
//
// SBG's Step 2 substitutes a default tuple for anything that fails to
// arrive, and the trim then removes up to f outliers per multiset. Lost
// honest messages therefore consume the same robustness budget as
// Byzantine lies: with drop probability p, a round where more than
// f - (actual Byzantine senders) honest tuples are lost at one agent can
// leak the default into the surviving window. This bench sweeps p and
// measures where the guarantees start eroding — with and without actual
// Byzantine agents sharing the budget.

#include <iostream>

#include "bench_util.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E18: random link failures x Byzantine faults",
      "drop-probability sweep; losses share the f-trim budget with lies");

  constexpr std::size_t kRounds = 8000;

  struct Case {
    std::string label;
    std::size_t byz;
    SbgPayload default_payload;
  };
  const std::vector<Case> cases{
      {"no Byzantine, benign default (0,0)", 0, SbgPayload{0.0, 0.0}},
      {"no Byzantine, hostile default (500,-500)", 0, SbgPayload{500.0, -500.0}},
      {"2 Byzantine (split-brain), benign default", 2, SbgPayload{0.0, 0.0}},
      {"2 Byzantine (split-brain), hostile default", 2,
       SbgPayload{500.0, -500.0}},
  };
  for (const auto& c : cases) {
    std::cout << "\n" << c.label << ":\n";
    Table table({"drop p", "final disagreement", "final dist to Y",
                 "dist tail max (500)"});
    for (double p : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
      Scenario s = make_standard_scenario(
          7, 2, 8.0, c.byz == 0 ? AttackKind::None : AttackKind::SplitBrain,
          kRounds);
      if (c.byz == 0) s.faulty.clear();
      s.drop_probability = p;
      s.default_payload = c.default_payload;
      const RunMetrics m = run_sbg(s);
      table.row()
          .add(p, 3)
          .add(m.final_disagreement(), 4)
          .add(m.final_max_dist(), 4)
          .add(m.max_dist_to_y.tail_max(500), 4);
    }
    table.print(std::cout);
  }

  std::cout << "\nLosses consume the same f-trim budget as lies: with a\n"
               "benign default the system shrugs off even heavy loss, but\n"
               "hostile defaults + f actual liars + losses push past the\n"
               "budget, and the guarantees erode with p. The paper's model\n"
               "assumes reliable links; [9]/[15] treat link failures as a\n"
               "separate problem for exactly this reason.\n";
  return 0;
}
