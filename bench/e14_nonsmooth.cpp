// E14 — non-smooth costs (open problem, Section 7).
//
// SBG run as a subgradient method on |x - c| and max-affine costs, which
// violate the paper's smoothness assumption (iii). Empirically: consensus
// is unaffected (it only needs bounded reported values), and the iterates
// still settle into the valid region, but the convergence is visibly
// rougher than the smooth case — quantified via the tail oscillation.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "func/functions.hpp"
#include "func/nonsmooth.hpp"
#include "sim/runner.hpp"

namespace {

ftmao::Scenario scenario_with(bool smooth, std::size_t rounds) {
  using namespace ftmao;
  Scenario s;
  s.n = 7;
  s.f = 2;
  s.faulty = {5, 6};
  s.rounds = rounds;
  s.attack.kind = AttackKind::SplitBrain;
  const std::vector<double> centers{-4.0, -2.0, 0.0, 2.0, 4.0, 0.0, 0.0};
  for (std::size_t i = 0; i < 7; ++i) {
    if (smooth) {
      s.functions.push_back(std::make_shared<SmoothAbs>(centers[i], 0.3, 1.0));
    } else {
      s.functions.push_back(std::make_shared<AbsValue>(centers[i], 1.0));
    }
    s.initial_states.push_back(centers[i]);
  }
  return s;
}

}  // namespace

int main() {
  using namespace ftmao;
  bench::print_header(
      "E14: non-smooth costs via subgradients (open problem)",
      "smooth |.|-surrogate vs true |.|: consensus, optimality, roughness");

  constexpr std::size_t kRounds = 20000;
  const RunMetrics smooth = run_sbg(scenario_with(true, kRounds));
  const RunMetrics nonsmooth = run_sbg(scenario_with(false, kRounds));

  std::cout << "Dist to Y over iterations:\n";
  bench::print_series_table({"smooth-abs (eps=0.3)", "abs (subgradient)"},
                            {&smooth.max_dist_to_y, &nonsmooth.max_dist_to_y},
                            kRounds);

  Table table({"cost family", "final disagr", "final dist",
               "dist tail max (last 500)"});
  table.row()
      .add("SmoothAbs (admissible)")
      .add(smooth.final_disagreement(), 5)
      .add(smooth.final_max_dist(), 5)
      .add(smooth.max_dist_to_y.tail_max(500), 5);
  table.row()
      .add("AbsValue (subgradient)")
      .add(nonsmooth.final_disagreement(), 5)
      .add(nonsmooth.final_max_dist(), 5)
      .add(nonsmooth.max_dist_to_y.tail_max(500), 5);
  table.print(std::cout);

  std::cout << "\nMixed max-affine family (piecewise-linear costs):\n";
  Scenario mixed;
  mixed.n = 7;
  mixed.f = 2;
  mixed.faulty = {5, 6};
  mixed.rounds = kRounds;
  mixed.attack.kind = AttackKind::SignFlip;
  for (std::size_t i = 0; i < 7; ++i) {
    const double c = -3.0 + static_cast<double>(i);
    mixed.functions.push_back(std::make_shared<MaxAffine>(
        std::vector<MaxAffine::Piece>{
            {-1.0, -c}, {-0.25, -0.25 * c + 0.1}, {1.0, c}}));
    mixed.initial_states.push_back(c);
  }
  const RunMetrics pw = run_sbg(mixed);
  Table t2({"metric", "value"});
  t2.row().add("final disagreement").add(pw.final_disagreement(), 5);
  t2.row().add("final dist to Y").add(pw.final_max_dist(), 5);
  t2.print(std::cout);
  std::cout << "\nConsensus is insensitive to smoothness; optimality holds\n"
               "empirically here but remains formally open (Section 7).\n";
  return 0;
}
