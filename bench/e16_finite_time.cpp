// E16 — the finite-time interpretation of Theorem 2.
//
// The paper: "after a sufficiently large number of iterations, the
// estimates ... become approximately equal (within some desired eps1),
// and the estimate of each agent is also approximately equal to the
// optimum (within some desired eps2)". With the harmonic schedule the
// consensus residual is Theta(1/t), so rounds-to-eps1 should scale like
// C/eps1. This bench measures rounds-to-epsilon for both residuals across
// an epsilon sweep and fits the scaling.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E16: finite-time approximation (eps1/eps2 interpretation of Thm 2)",
      "rounds to reach eps; harmonic steps predict rounds ~ C/eps");

  constexpr std::size_t kRounds = 200000;
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, kRounds);
  const RunMetrics m = run_sbg(s);

  Table table({"eps", "rounds to disagr<=eps", "eps * rounds (flat => 1/eps)",
               "rounds to dist<=eps"});
  for (double eps : {1.0, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001, 0.0003, 0.0001}) {
    const std::size_t t1 = m.disagreement.settled_below(eps);
    const std::size_t t2 = m.max_dist_to_y.settled_below(eps);
    table.row()
        .add(eps, 4)
        .add(t1 <= kRounds ? std::to_string(t1) : ">horizon")
        .add(t1 <= kRounds ? format_double(eps * static_cast<double>(t1), 3)
                           : "-")
        .add(t2 <= kRounds ? std::to_string(t2) : ">horizon");
  }
  table.print(std::cout);
  std::cout << "\nThe eps * rounds product settles to a constant (~the 2L/"
               "(1/(2(m-f))) constant of Lemma 3), i.e. rounds-to-eps ~ C/eps.\n"
               "Dist-to-Y hits 0 in finitely many rounds here because Y has\n"
               "positive width: once trapped (Thm 2's 'trapped in Y'), the\n"
               "distance is exactly 0, not merely small.\n";

  std::cout << "\nSchedule comparison: rounds to disagreement <= 0.01:\n";
  Table sched({"schedule", "rounds to 0.01", "rounds to 0.001"});
  for (const auto& [name, cfg] : std::vector<std::pair<std::string, StepConfig>>{
           {"harmonic 1/t", {StepKind::Harmonic, 1.0, 0.0}},
           {"power t^-0.75", {StepKind::Power, 1.0, 0.75}},
           {"power t^-0.6", {StepKind::Power, 1.0, 0.6}}}) {
    Scenario sc = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 60000);
    sc.step = cfg;
    const RunMetrics mm = run_sbg(sc);
    auto fmt = [&](double eps) {
      const std::size_t t = mm.disagreement.settled_below(eps);
      return t <= sc.rounds ? std::to_string(t) : std::string(">horizon");
    };
    sched.row().add(name).add(fmt(0.01)).add(fmt(0.001));
  }
  sched.print(std::cout);
  std::cout << "\nSlower-decaying (but valid) schedules converge slower in\n"
               "disagreement — the consensus floor tracks lambda[t].\n";
  return 0;
}
