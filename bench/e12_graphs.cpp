// E12 — incomplete networks (open problem; Part IV [25]).
//
// SBG with in-neighbourhood trims on non-complete topologies: which
// graphs preserve consensus, and how much optimality (distance to the
// complete-network Y) degrades. Output: a topology table under the
// split-brain attack plus a density sweep on ring lattices.

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "func/library.hpp"
#include "graph/graph_runner.hpp"
#include "graph/robustness.hpp"

namespace {

ftmao::GraphScenario scenario_on(ftmao::Topology topo, std::size_t f,
                                 std::size_t rounds) {
  using namespace ftmao;
  GraphScenario s;
  const std::size_t n = topo.n();
  s.topology = std::move(topo);
  s.f = f;
  for (std::size_t i = n - f; i < n; ++i) s.faulty.push_back(i);
  s.functions = make_mixed_family(n, 8.0);
  s.initial_states.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    s.initial_states[i] = -4.0 + 8.0 * static_cast<double>(i) /
                                      static_cast<double>(n - 1);
  s.attack.kind = AttackKind::SplitBrain;
  s.rounds = rounds;
  return s;
}

}  // namespace

int main() {
  using namespace ftmao;
  bench::print_header(
      "E12: SBG on incomplete networks (open problem, cf. [25])",
      "consensus and optimality gap by topology, split-brain attack, f=1");

  constexpr std::size_t kRounds = 12000;
  Rng rng(7);

  Table table({"topology", "n", "min in-deg", "robustness r", "needs 2f+1",
               "consensus (M-m)", "dist to complete-net Y"});
  struct Case {
    std::string name;
    Topology topo;
  };
  std::vector<Case> cases;
  cases.push_back({"complete", make_complete(9)});
  cases.push_back({"ring-lattice k=3", make_ring_lattice(9, 3)});
  cases.push_back({"ring-lattice k=2", make_ring_lattice(9, 2)});
  cases.push_back({"ring-lattice k=1", make_ring_lattice(9, 1)});
  cases.push_back({"random out-deg 4", make_random_out_regular(9, 4, rng)});
  cases.push_back({"barbell 2 bridges", make_barbell(5, 2)});

  for (auto& c : cases) {
    GraphScenario s = scenario_on(c.topo, 1, kRounds);
    const std::size_t r = max_robustness(c.topo);
    if (!s.topology.supports_trim(s.f)) {
      table.row().add(c.name).add(c.topo.n()).add(c.topo.min_in_degree())
          .add(r).add(required_robustness(1)).add("in-degree < 2f").add("-");
      continue;
    }
    const GraphRunMetrics m = run_graph_sbg(s);
    table.row()
        .add(c.name)
        .add(c.topo.n())
        .add(c.topo.min_in_degree())
        .add(r)
        .add(required_robustness(1))
        .add(m.disagreement.back(), 4)
        .add(m.max_dist_to_y.back(), 4);
  }
  table.print(std::cout);

  std::cout << "\nThe LeBlanc et al. [14] robustness column explains the\n"
               "transition: r >= 2f+1 guarantees worst-case consensus; below\n"
               "it the bare ring (r=1) fails outright while r=2 topologies\n"
               "happen to survive THIS attack without a worst-case guarantee\n"
               "— the gap the paper's incomplete-network open problem\n"
               "lives in.\n";

  std::cout << "\nDensity sweep: ring lattice n=13, f=1, growing k:\n";
  Table sweep({"k (in-degree 2k)", "robustness r", "consensus", "dist to Y"});
  for (std::size_t k = 1; k <= 6; ++k) {
    GraphScenario s = scenario_on(make_ring_lattice(13, k), 1, kRounds);
    const std::size_t r = max_robustness(s.topology);
    const GraphRunMetrics m = run_graph_sbg(s);
    sweep.row().add(k).add(r).add(m.disagreement.back(), 4)
        .add(m.max_dist_to_y.back(), 4);
  }
  sweep.print(std::cout);
  return 0;
}
