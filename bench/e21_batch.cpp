// E21 — batched-replica engine performance (google-benchmark).
//
// Microbenchmarks of the SoA kernels (trim_batch / trimmed_mean_batch vs
// their scalar counterparts applied per replica, and the devirtualized
// gradient kernel vs per-value virtual derivative() calls) and of the
// whole round loop (run_sbg per seed vs run_sbg_batch over the seed
// axis). Every batched benchmark is registered once per compiled-and-
// supported SIMD backend (scalar / sse2 / avx2 — a custom main below
// replaces BENCHMARK_MAIN), so a single run reports the per-backend
// kernel numbers side by side. The batched numbers divide by the batch
// size where it makes per-replica costs comparable. No paper
// counterpart; this is the harness's own hot path.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "func/functions.hpp"
#include "sim/batch_runner.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "simd/simd.hpp"
#include "trim/trim.hpp"
#include "trim/trim_batch.hpp"

namespace {

using namespace ftmao;

std::vector<double> random_matrix(std::size_t n, std::size_t batch,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(n * batch);
  for (auto& x : m) x = rng.uniform(-10.0, 10.0);
  return m;
}

// Scalar reference: trim each replica column independently, the work the
// batched kernel replaces.
void BM_TrimColumns_Scalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const std::size_t f = (n - 1) / 3;
  const auto matrix = random_matrix(n, batch, 7);
  std::vector<double> column(n);
  std::vector<double> scratch;
  for (auto _ : state) {
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t s = 0; s < n; ++s) column[s] = matrix[s * batch + r];
      benchmark::DoNotOptimize(trim_value(column, f, scratch));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_TrimColumns_Scalar)
    ->Args({7, 4})->Args({7, 16})->Args({13, 16})->Args({31, 16});

void BM_TrimColumns_Batched(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const std::size_t f = (n - 1) / 3;
  const auto matrix = random_matrix(n, batch, 7);
  std::vector<double> scratch(n * batch);
  std::vector<double> out(batch);
  for (auto _ : state) {
    scratch = matrix;  // trim_batch destroys its input
    trim_batch(scratch.data(), n, batch, f, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void BM_TrimmedMeanColumns_Batched(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const std::size_t f = (n - 1) / 3;
  const auto matrix = random_matrix(n, batch, 7);
  std::vector<double> scratch(n * batch);
  std::vector<double> out(batch);
  for (auto _ : state) {
    scratch = matrix;
    trimmed_mean_batch(scratch.data(), n, batch, f, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

// Gradient evaluation across a lane row: one virtual derivative() call
// per value (the path mixed-family rows keep)...
void BM_Gradient_Virtual(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const Huber h(1.5, 2.0, 0.75);
  const auto x = random_matrix(1, count, 11);
  std::vector<double> g(count);
  for (auto _ : state) {
    for (std::size_t k = 0; k < count; ++k) g[k] = h.derivative(x[k]);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_Gradient_Virtual)->Arg(16)->Arg(256);

// ...vs the devirtualized clamp kernel the batched engine uses for
// closed-form families.
void BM_Gradient_Kernel(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const SimdKernels& kernels = simd_kernels_for(isa);
  const auto count = static_cast<std::size_t>(state.range(0));
  const Huber h(1.5, 2.0, 0.75);
  const BatchGradientKernel d = h.batch_gradient_kernel();
  const auto x = random_matrix(1, count, 11);
  const std::vector<double> a(count, d.p0), b(count, d.p1), lo(count, d.p2),
      hi(count, d.p3), scale(count, d.scale);
  std::vector<double> g(count);
  for (auto _ : state) {
    kernels.gradient_clamp(x.data(), a.data(), b.data(), lo.data(), hi.data(),
                           scale.data(), g.data(), count);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

std::vector<Scenario> seed_replicas(std::size_t n, std::size_t f,
                                    AttackKind attack, std::size_t rounds,
                                    std::size_t batch) {
  std::vector<Scenario> replicas;
  replicas.reserve(batch);
  for (std::size_t r = 0; r < batch; ++r)
    replicas.push_back(
        make_standard_scenario(n, f, 8.0, attack, rounds, 1 + r));
  return replicas;
}

// Whole-round loop, scalar engine: one run_sbg per seed.
void BM_RoundLoop_Scalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<AttackKind>(state.range(2));
  const std::size_t rounds = 200;
  const auto replicas = seed_replicas(n, (n - 1) / 3, kind, rounds, batch);
  for (auto _ : state) {
    for (const Scenario& s : replicas) {
      benchmark::DoNotOptimize(run_sbg(s).final_disagreement());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * rounds));
}

// Whole-round loop, batched engine: the seed axis advances in lockstep.
void BM_RoundLoop_Batched(benchmark::State& state, SimdIsa isa) {
  simd_select(isa);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<AttackKind>(state.range(2));
  const std::size_t rounds = 200;
  const auto replicas = seed_replicas(n, (n - 1) / 3, kind, rounds, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sbg_batch(replicas).front().final_disagreement());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * rounds));
}

constexpr auto kNone = static_cast<int>(AttackKind::None);
constexpr auto kSplitBrain = static_cast<int>(AttackKind::SplitBrain);
constexpr auto kSignFlip = static_cast<int>(AttackKind::SignFlip);

BENCHMARK(BM_RoundLoop_Scalar)
    ->Args({7, 3, kNone})->Args({7, 3, kSplitBrain})->Args({7, 3, kSignFlip})
    ->Args({13, 8, kNone})->Args({13, 8, kSplitBrain});

// One instance of every batched benchmark per compiled-and-supported
// SIMD backend, name-tagged "<bench>/<isa>".
void register_per_backend() {
  for (const SimdIsa isa : simd_compiled()) {
    if (!simd_supported(isa)) continue;
    const std::string tag = std::string("/") + simd_isa_name(isa);
    benchmark::RegisterBenchmark(("BM_TrimColumns_Batched" + tag).c_str(),
                                 BM_TrimColumns_Batched, isa)
        ->Args({7, 4})->Args({7, 16})->Args({13, 16})->Args({31, 16});
    benchmark::RegisterBenchmark(
        ("BM_TrimmedMeanColumns_Batched" + tag).c_str(),
        BM_TrimmedMeanColumns_Batched, isa)
        ->Args({7, 16})->Args({13, 16});
    benchmark::RegisterBenchmark(("BM_Gradient_Kernel" + tag).c_str(),
                                 BM_Gradient_Kernel, isa)
        ->Arg(16)->Arg(256);
    benchmark::RegisterBenchmark(("BM_RoundLoop_Batched" + tag).c_str(),
                                 BM_RoundLoop_Batched, isa)
        ->Args({7, 3, kNone})
        ->Args({7, 3, kSplitBrain})
        ->Args({7, 3, kSignFlip})
        ->Args({13, 8, kNone})
        ->Args({13, 8, kSplitBrain});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_per_backend();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
