// E6 — Section 6: constrained (projected) SBG.
//
// Claim: with the update projected onto a closed interval X, Theorem 2
// still holds relative to argmin over X, and the per-iteration projection
// error e[t] -> 0. Output: distance + projection-error series for
// constraint sets where the optimum is interior, boundary-active, and
// strongly active; plus an X-sweep table.

#include <iostream>

#include "bench_util.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E6: constrained SBG (Section 6)",
      "states stay in X, projection error e[t] -> 0, consensus holds");

  constexpr std::size_t kRounds = 20000;

  struct Case {
    std::string name;
    Interval x;
  };
  const std::vector<Case> cases{
      {"interior optimum X=[-10,10]", Interval(-10.0, 10.0)},
      {"active boundary X=[-10,-1]", Interval(-10.0, -1.0)},
      {"strongly active X=[3,6]", Interval(3.0, 6.0)},
  };

  std::vector<RunMetrics> runs;
  std::vector<std::string> names;
  for (const Case& c : cases) {
    Scenario s =
        make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, kRounds);
    s.constraint = c.x;
    runs.push_back(run_sbg(s));
    names.push_back(c.name);
  }

  std::cout << "Projection error |e[t]| (max over honest agents):\n";
  std::vector<const Series*> err;
  for (const auto& r : runs) err.push_back(&r.max_projection_error);
  bench::print_series_table(names, err, kRounds);

  std::cout << "\nConsensus under constraints:\n";
  std::vector<const Series*> dis;
  for (const auto& r : runs) dis.push_back(&r.disagreement);
  bench::print_series_table(names, dis, kRounds);

  std::cout << "\nFinal summary (constrained optimum = projection of the\n"
               "unconstrained dynamics; states must sit inside X):\n";
  Table table({"case", "final state", "in X", "final disagr",
               "proj err tail max"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const double x = runs[i].final_states.front();
    table.row()
        .add(cases[i].name)
        .add(x, 4)
        .add(cases[i].x.contains(x) ? "yes" : "NO")
        .add(runs[i].final_disagreement(), 4)
        .add(runs[i].max_projection_error.tail_max(200), 6);
  }
  table.print(std::cout);
  return 0;
}
