// E8 — Section 7: asynchronous SBG with n > 5f.
//
// Claim: combining SBG's trimmed step with Dolev-style asynchronous
// iterative rounds (wait for n - f round-tagged tuples, trim f) tolerates
// f Byzantine agents when n > 5f, under arbitrary message delays. Output:
// disagreement/distance series per delay model and a size sweep.

#include <iostream>

#include "bench_util.hpp"
#include "func/library.hpp"
#include "sim/async_runner.hpp"

namespace {

ftmao::AsyncScenario base_scenario(std::size_t n, std::size_t f,
                                   std::size_t rounds) {
  using namespace ftmao;
  AsyncScenario s;
  s.n = n;
  s.f = f;
  for (std::size_t i = n - f; i < n; ++i) s.faulty.push_back(i);
  s.functions = make_spread_hubers(n, 8.0);
  s.initial_states.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    s.initial_states[i] = -4.0 + 8.0 * static_cast<double>(i) /
                                      static_cast<double>(n - 1);
  s.attack.kind = AttackKind::SplitBrain;
  s.rounds = rounds;
  return s;
}

}  // namespace

int main() {
  using namespace ftmao;
  bench::print_header(
      "E8: asynchronous SBG, n > 5f (Section 7)",
      "consensus + optimality under random and adversarial delays");

  constexpr std::size_t kRounds = 10000;

  std::cout << "Delay-model comparison (n=11, f=2):\n";
  std::vector<AsyncRunMetrics> runs;
  std::vector<std::string> names;
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, DelayKind>>{
           {"fixed", DelayKind::Fixed},
           {"uniform[0.5,1.5]", DelayKind::Uniform},
           {"targeted-slow x20", DelayKind::TargetedSlow}}) {
    AsyncScenario s = base_scenario(11, 2, kRounds);
    s.delay_kind = kind;
    s.slow_delay = 10.0;
    s.slow_count = 2;
    runs.push_back(run_async_sbg(s));
    names.push_back(name);
  }
  std::vector<const Series*> dis;
  for (const auto& r : runs) dis.push_back(&r.disagreement);
  bench::print_series_table(names, dis, kRounds);

  Table summary({"delay model", "final disagr", "final dist", "virtual time"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    summary.row()
        .add(names[i])
        .add(runs[i].disagreement.back(), 4)
        .add(runs[i].max_dist_to_y.back(), 4)
        .add(runs[i].virtual_time, 1);
  }
  summary.print(std::cout);

  std::cout << "\nSize sweep at the resilience boundary (uniform delays):\n";
  Table sizes({"n", "f", "n>5f", "final disagr", "final dist"});
  for (const auto& [n, f] : std::vector<std::pair<std::size_t, std::size_t>>{
           {6, 1}, {11, 2}, {16, 3}, {21, 4}}) {
    AsyncScenario s = base_scenario(n, f, kRounds);
    const AsyncRunMetrics m = run_async_sbg(s);
    sizes.row()
        .add(n)
        .add(f)
        .add(n > 5 * f ? "yes" : "no")
        .add(m.disagreement.back(), 4)
        .add(m.max_dist_to_y.back(), 4);
  }
  sizes.print(std::cout);
  return 0;
}
