#pragma once

// Thin adapters binding the tested reporting library (src/sim/report.hpp)
// to the bench binaries' std::cout convention.

#include <iostream>

#include "common/series.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"

namespace ftmao::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  print_experiment_header(std::cout, id, claim);
}

using ftmao::log_spaced;

inline void print_series_table(const std::vector<std::string>& series_names,
                               const std::vector<const Series*>& series,
                               std::size_t t_max) {
  ftmao::print_series_table(std::cout, series_names, series, t_max);
}

}  // namespace ftmao::bench
