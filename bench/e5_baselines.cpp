// E5 — robustness vs baselines ("who wins" table).
//
// Claim (the paper's motivation): without fault-tolerance a single
// Byzantine agent can drive distributed gradient descent arbitrarily far,
// while SBG stays inside the valid optima set Y; local-only GD is immune
// but sacrifices all collaboration. Output: final Dist-to-Y and
// disagreement for SBG / DGD / local GD across attacks and attack
// strengths, plus the reliable-broadcast (consistent adversary) variant.

#include <iostream>

#include "bench_util.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E5: SBG vs baselines",
      "final max Dist(x, Y) and disagreement; SBG bounded, DGD captured");

  constexpr std::size_t kRounds = 5000;

  std::cout << "Across attacks (n=7, f=2):\n";
  Table table({"attack", "SBG dist", "SBG disagr", "DGD dist", "DGD disagr",
               "Local dist", "Local disagr"});
  const std::vector<std::pair<std::string, AttackKind>> kinds{
      {"none", AttackKind::None},
      {"split-brain", AttackKind::SplitBrain},
      {"sign-flip", AttackKind::SignFlip},
      {"pull-to-target", AttackKind::PullToTarget},
      {"hull-edge", AttackKind::HullEdgeUp},
      {"noise", AttackKind::RandomNoise}};
  for (const auto& [name, kind] : kinds) {
    Scenario s = make_standard_scenario(7, 2, 8.0, kind, kRounds);
    s.attack.target = -60.0;
    s.attack.gradient_magnitude = 10.0;
    const RunMetrics sbg = run_sbg(s);
    const RunMetrics dgd = run_dgd(s);
    const RunMetrics local = run_local_gd(s);
    table.row()
        .add(name)
        .add(sbg.final_max_dist(), 3)
        .add(sbg.final_disagreement(), 3)
        .add(dgd.final_max_dist(), 3)
        .add(dgd.final_disagreement(), 3)
        .add(local.final_max_dist(), 3)
        .add(local.final_disagreement(), 3);
  }
  table.print(std::cout);

  std::cout << "\nAttack-strength sweep (pull-to-target, n=7, f=2):\n";
  Table sweep({"target distance", "SBG dist to Y", "DGD dist to Y"});
  for (double target : {-5.0, -10.0, -20.0, -40.0, -80.0, -160.0}) {
    Scenario s =
        make_standard_scenario(7, 2, 8.0, AttackKind::PullToTarget, kRounds);
    s.attack.target = target;
    s.attack.gradient_magnitude = 10.0;
    const RunMetrics sbg = run_sbg(s);
    const RunMetrics dgd = run_dgd(s);
    sweep.row().add(-target, 3).add(sbg.final_max_dist(), 3).add(dgd.final_max_dist(), 3);
  }
  sweep.print(std::cout);
  std::cout << "\nSBG's distance stays flat while DGD's grows linearly with the\n"
               "attacker's target: the fault-oblivious baseline is captured.\n";

  std::cout << "\nReliable-broadcast restriction (split-brain, n=7, f=2):\n";
  Table rb({"variant", "final dist", "final disagreement"});
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, kRounds);
  const RunMetrics plain = run_sbg(s);
  Scenario cs = s;
  cs.attack.consistent = true;
  const RunMetrics wrapped = run_sbg(cs);
  rb.row().add("SBG (duplicitous adversary)").add(plain.final_max_dist(), 4)
      .add(plain.final_disagreement(), 4);
  rb.row().add("SBG + reliable broadcast").add(wrapped.final_max_dist(), 4)
      .add(wrapped.final_disagreement(), 4);
  rb.print(std::cout);
  return 0;
}
