// E7 — Section 7: crash-fault model.
//
// Claim: with crash (not Byzantine) failures, the no-trim averaging
// variant optimizes cost form (17): every never-crashed agent gets equal
// weight, every crashed agent a partial weight alpha in [0, 1] reflecting
// how long it participated. Output: final consensus vs crash time, checked
// against the (17)-predicted optimum interval, and the recovered alpha for
// single-crash runs.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "func/library.hpp"
#include "sim/crash_runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E7: crash faults (Section 7, cost form (17))",
      "crash-time sweep; recovered partial weight alpha of the crashed agent");

  const std::size_t n = 5;
  const std::size_t rounds = 30000;
  const auto functions = make_spread_hubers(n, 8.0);  // optima -4,-2,0,2,4

  std::cout << "Agent 4 (optimum +4) crashes at round T_c; survivors'\n"
               "ideal optimum (alpha=0) is -1, full participation (alpha=1) is 0:\n\n";

  Table table({"crash round", "final consensus", "in (17) interval",
               "recovered alpha", "disagreement"});
  for (std::size_t crash_round : {1ul, 3ul, 10ul, 30ul, 100ul, 1000ul, 30001ul}) {
    CrashScenario s;
    s.n = n;
    s.functions = functions;
    s.initial_states = {-4.0, -2.0, 0.0, 2.0, 4.0};
    s.rounds = rounds;
    const bool never = crash_round > rounds;
    if (!never) s.crashes = {{4, crash_round, 0}};
    const CrashRunMetrics m = run_crash(s);
    const double x = m.final_states.front();

    // Recover alpha from (17)'s stationarity at the consensus.
    std::string alpha = "n/a";
    if (!never) {
      const std::vector<ScalarFunctionPtr> survivors(functions.begin(),
                                                     functions.end() - 1);
      if (const auto a =
              recover_single_crash_weight(survivors, *functions[4], x)) {
        alpha = format_double(*a, 3);
      }
    }
    table.row()
        .add(never ? std::string("never") : std::to_string(crash_round))
        .add(x, 4)
        .add(m.optima.inflate(0.05).contains(x) ? "yes" : "NO")
        .add(alpha)
        .add(m.disagreement.back(), 5);
  }
  table.print(std::cout);
  std::cout << "\nEarly crashes give alpha ~ 0 (agent barely represented);\n"
               "alpha grows monotonically with crash time and reaches 1 for\n"
               "an agent that never crashes — the partial-participation\n"
               "semantics of cost form (17).\n";

  std::cout << "\nTwo staggered crashes with partial final delivery:\n";
  Table table2({"crash pattern", "final consensus", "in (17) interval",
                "disagreement"});
  for (const auto& [name, crashes] :
       std::vector<std::pair<std::string, std::vector<CrashEvent>>>{
           {"4@50(serve 2), 0@200(serve 1)",
            {{4, 50, 2}, {0, 200, 1}}},
           {"4@10(serve 0), 3@10(serve 3)",
            {{4, 10, 0}, {3, 10, 3}}}}) {
    CrashScenario s;
    s.n = n;
    s.functions = functions;
    s.initial_states = {-4.0, -2.0, 0.0, 2.0, 4.0};
    s.rounds = rounds;
    s.crashes = crashes;
    const CrashRunMetrics m = run_crash(s);
    table2.row()
        .add(name)
        .add(m.final_states.front(), 4)
        .add(m.optima.inflate(0.05).contains(m.final_states.front()) ? "yes" : "NO")
        .add(m.disagreement.back(), 5);
  }
  table2.print(std::cout);
  return 0;
}
