// E3 — Lemma 2 / Corollary 1: admissible witnesses for every trim.
//
// Claim: every effective gradient g~ and trimmed state x~ computed by an
// honest agent equals a convex combination of honest gradients/states with
// a (1/(2(m-f)), m-f)-admissible weight vector. We verify this with LP
// feasibility certificates per iteration per agent, across attacks and
// system sizes, and report the observed minimum support weight against the
// guaranteed beta.

#include <iostream>

#include "bench_util.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E3: admissibility witnesses (Lemma 2 / Corollary 1)",
      "LP certificates per trim; failures must be 0; min weight >= beta");

  Table table({"n", "f", "attack", "checks", "failures", "min weight",
               "beta=1/(2(m-f))", "min support", "m-f"});

  const std::vector<std::pair<std::string, AttackKind>> kinds{
      {"split-brain", AttackKind::SplitBrain},
      {"sign-flip", AttackKind::SignFlip},
      {"hull-edge", AttackKind::HullEdgeUp},
      {"noise", AttackKind::RandomNoise},
      {"silent", AttackKind::Silent}};
  const std::vector<std::pair<std::size_t, std::size_t>> sizes{
      {7, 2}, {10, 3}, {13, 4}};

  for (const auto& [n, f] : sizes) {
    for (const auto& [name, kind] : kinds) {
      Scenario s = make_standard_scenario(n, f, 8.0, kind, 120);
      RunOptions opts;
      opts.audit_witnesses = true;
      const RunMetrics m = run_sbg(s, opts);
      const std::size_t honest = n - f;
      const double beta = 1.0 / (2.0 * static_cast<double>(honest - f));
      const std::size_t total_checks =
          m.state_witness.checks + m.gradient_witness.checks;
      const std::size_t total_failures =
          m.state_witness.failures + m.gradient_witness.failures;
      const double min_weight = std::min(m.state_witness.min_weight_seen,
                                         m.gradient_witness.min_weight_seen);
      const std::size_t min_support = std::min(
          m.state_witness.min_support_seen, m.gradient_witness.min_support_seen);
      table.row()
          .add(n)
          .add(f)
          .add(name)
          .add(total_checks)
          .add(total_failures)
          .add(min_weight, 4)
          .add(beta, 4)
          .add(min_support)
          .add(honest - f);
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery row must show failures = 0, min weight >= beta, and\n"
               "min support >= m-f: that is exactly the paper's guarantee.\n";
  return 0;
}
