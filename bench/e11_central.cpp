// E11 — centralized-equivalent SBG over Byzantine broadcast vs plain SBG
// (the trade-off discussed after Theorem 2 and in [26]).
//
// Claim: with reliable (EIG) broadcast, honest trajectories are identical
// and converge to a true limit, at Theta(n^f) message cost per round;
// plain SBG is cheap (O(n) messages per agent) but its trajectory may
// wander within Y forever under an equivocating adversary. Output: the
// tail movement (total variation) of both variants, the identity check,
// and the message-cost table.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "central/central_sbg.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;
  bench::print_header(
      "E11: centralized-equivalent SBG (reliable broadcast, [26])",
      "identical trajectories + settling vs plain SBG's bounded wander");

  constexpr std::size_t kRounds = 4000;

  CentralScenario cs;
  cs.n = 7;
  cs.f = 2;
  cs.faulty = {5, 6};
  cs.functions = make_spread_hubers(7, 8.0);
  cs.initial_states = {-4.0, -2.5, -1.0, 0.5, 2.0, 3.5, 4.0};
  cs.rounds = kRounds;
  EigEquivocateSender equiv(40.0);
  cs.attack.eig = &equiv;
  cs.attack.state = 40.0;
  cs.attack.gradient = 4.0;
  const HarmonicStep schedule;
  const CentralRunMetrics central = run_central_sbg(cs, schedule);

  Scenario ps = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, kRounds);
  ps.functions = cs.functions;
  ps.initial_states = cs.initial_states;
  const RunMetrics plain = run_sbg(ps);

  auto tail_variation = [](const Series& s, std::size_t from) {
    double tv = 0.0;
    for (std::size_t t = from; t + 1 < s.size(); ++t)
      tv += std::abs(s[t + 1] - s[t]);
    return tv;
  };

  Table table({"variant", "identical traj", "final dist to Y",
               "tail variation (last 25%)", "msgs/agent/round"});
  const std::size_t tree = 1 + 6 + 30;  // EIG tree nodes for n=7, f=2
  table.row()
      .add("central (EIG broadcast)")
      .add(central.identical_trajectories ? "yes" : "no")
      .add(central.max_dist_to_y.back(), 4)
      .add(tail_variation(central.common_trajectory, kRounds * 3 / 4), 4)
      .add(std::to_string(2 * 7 * tree) + " (2 scalars x n trees)");
  table.row()
      .add("plain SBG")
      .add("n/a (consensus only in the limit)")
      .add(plain.final_max_dist(), 4)
      .add("-")
      .add("12 (n-1 tuples out)");
  table.print(std::cout);

  std::cout << "\nDisagreement across rounds (central should be identically 0\n"
               "from round 1; plain decays as O(1/t)):\n";
  bench::print_series_table({"central", "plain"},
                            {&central.disagreement, &plain.disagreement},
                            kRounds);

  std::cout << "\nThe centralized variant buys a true limit and exact\n"
               "agreement at an exponential-in-f message cost — the paper's\n"
               "motivation for the cheap iterative SBG.\n";
  return 0;
}
