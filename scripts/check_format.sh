#!/usr/bin/env sh
# check_format.sh — clang-format conformance gate for the lint CI lane.
#
# Dry-runs clang-format (with the committed .clang-format) over every
# tracked C++ source and fails if any file would be rewritten. Skips with
# success when clang-format is not installed, so the script is safe to run
# in minimal local environments; CI installs the tool and gets the real
# check.
#
#   scripts/check_format.sh [clang-format-binary]

set -eu

cd "$(dirname "$0")/.."

CLANG_FORMAT=${1:-clang-format}

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not installed — skipping" >&2
  exit 0
fi

echo "check_format: $("$CLANG_FORMAT" --version)"

# Tracked sources only; build trees and related checkouts stay out.
git ls-files '*.cpp' '*.hpp' | xargs "$CLANG_FORMAT" --dry-run -Werror
echo "check_format: OK"
