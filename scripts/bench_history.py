#!/usr/bin/env python3
"""Append a BENCH_sweep.json refresh to the dated throughput history.

``docs/bench_history.csv`` is the self-maintaining backbone of the
README's performance-trajectory table: every refresh of the committed
baseline (or any fresh ``bench_sweep_json`` output) appends one dated
row, so the trajectory is reconstructable without archaeology through
git history. The informational perf CI lane runs this after the bench
gate and uploads the result, so the history grows on every main build.

Usage:
    scripts/bench_history.py BENCH_sweep.json [--history docs/bench_history.csv]
        [--label STAGE] [--date YYYY-MM-DD] [--rev REV] [--print-table]

Idempotent: an append whose (git_rev, threads1_runs_per_sec) pair equals
the last row's is skipped, so re-running on an unchanged build does not
duplicate rows. ``--print-table`` additionally emits the history as a
README-ready markdown table on stdout.
"""

import argparse
import csv
import datetime
import json
import pathlib
import subprocess
import sys

FIELDS = [
    "date",
    "git_rev",
    "label",
    "engine",
    "isa_active",
    "threads1_runs_per_sec",
    "cells_per_sec",
    "agent_rounds_per_sec",
    "hw_concurrency",
    "compiler",
    "megabatch_speedup",
    "megabatch_occupancy",
]


def git_rev(repo_root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def single_thread_entry(doc):
    for entry in doc["results"]:
        if entry["threads"] == 1:
            return entry
    raise SystemExit("bench_history: no threads=1 entry in results")


def row_from_bench(doc, rev, label, date):
    entry = single_thread_entry(doc)
    machine = doc.get("machine", {})
    megabatch = doc.get("megabatch") or {}
    return {
        "date": date,
        "git_rev": rev,
        "label": label,
        "engine": doc.get("engine", ""),
        "isa_active": machine.get("simd_isa_active", ""),
        "threads1_runs_per_sec": f"{float(entry['runs_per_sec']):.2f}",
        "cells_per_sec": f"{float(entry['cells_per_sec']):.2f}",
        "agent_rounds_per_sec": f"{float(entry['agent_rounds_per_sec']):.5g}",
        "hw_concurrency": str(machine.get("hardware_concurrency", "")),
        "compiler": machine.get("compiler", ""),
        "megabatch_speedup": (
            f"{float(megabatch['speedup']):.3f}" if "speedup" in megabatch
            else ""
        ),
        "megabatch_occupancy": (
            f"{float(megabatch['megabatch_occupancy']):.3f}"
            if "megabatch_occupancy" in megabatch
            else ""
        ),
    }


def load_history(path):
    if not path.exists():
        return []
    with path.open(newline="") as handle:
        return list(csv.DictReader(handle))


def save_history(path, rows):
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        # restval fills columns absent from rows written under an older
        # schema (e.g. pre-megabatch history entries).
        writer = csv.DictWriter(handle, fieldnames=FIELDS, restval="")
        writer.writeheader()
        writer.writerows(rows)


def print_table(rows):
    print("| Date | Rev | Stage | Engine | ISA | runs/sec (1 thread) |")
    print("|---|---|---|---|---|---|")
    for row in rows:
        print(
            f"| {row['date']} | {row['git_rev']} | {row['label']} "
            f"| {row['engine']} | {row['isa_active']} "
            f"| {row['threads1_runs_per_sec']} |"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_sweep.json to record")
    parser.add_argument(
        "--history",
        default=None,
        help="history CSV (default: docs/bench_history.csv next to scripts/)",
    )
    parser.add_argument("--label", default="", help="stage label for the row")
    parser.add_argument("--date", default=None, help="override row date")
    parser.add_argument("--rev", default=None, help="override git revision")
    parser.add_argument(
        "--print-table",
        action="store_true",
        help="emit the history as a markdown table on stdout",
    )
    args = parser.parse_args()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    history_path = (
        pathlib.Path(args.history)
        if args.history
        else repo_root / "docs" / "bench_history.csv"
    )

    with open(args.bench_json) as handle:
        doc = json.load(handle)

    rev = args.rev or git_rev(repo_root)
    date = args.date or datetime.date.today().isoformat()
    row = row_from_bench(doc, rev, args.label, date)

    rows = load_history(history_path)
    last = rows[-1] if rows else None
    if (
        last
        and last["git_rev"] == row["git_rev"]
        and last["threads1_runs_per_sec"] == row["threads1_runs_per_sec"]
    ):
        print(
            f"bench_history: last row already records {rev} at "
            f"{row['threads1_runs_per_sec']} runs/sec — skipping append"
        )
    else:
        rows.append(row)
        save_history(history_path, rows)
        print(
            f"bench_history: appended {rev} "
            f"({row['threads1_runs_per_sec']} runs/sec) to {history_path}"
        )

    if args.print_table:
        print_table(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
