#!/usr/bin/env sh
# shard_e2e.sh — end-to-end check of the sharded sweep subsystem.
#
# Runs the default grid once in a single process and once through
# ftmao_shardsweep across 4 worker subprocesses — with one injected
# worker failure that must be retried — and asserts that
#   1. the orchestrator actually exercised the retry path, and
#   2. the merged CSV is byte-identical to the single-process CSV.
#
# Registered as the ctest `shard_e2e` (label `shard`); also runnable
# directly:
#
#   scripts/shard_e2e.sh <ftmao_sweep> <ftmao_shardsweep> <ftmao_fabric> <workdir>

set -eu

if [ "$#" -ne 4 ]; then
  echo "usage: $0 <ftmao_sweep-binary> <ftmao_shardsweep-binary>" \
       "<ftmao_fabric-binary> <workdir>" >&2
  exit 2
fi

SWEEP=$1
SHARDSWEEP=$2
FABRIC=$3
WORK=$4

if [ ! -x "$SWEEP" ] || [ ! -x "$SHARDSWEEP" ] || [ ! -x "$FABRIC" ]; then
  echo "shard_e2e: worker, orchestrator, or fabric binary missing/not executable" >&2
  exit 2
fi

rm -rf "$WORK"
mkdir -p "$WORK"

echo "shard_e2e: single-process reference sweep ..."
"$SWEEP" --csv > "$WORK/single.csv"

echo "shard_e2e: 4-shard sweep with one injected worker failure ..."
# Shard 1 owns cells of the default grid; its first attempt exits 7 and
# must be retried. Exit status must still be 0 (full recovery).
"$SHARDSWEEP" --shards 4 --inject-fail-shard 1 --retries 2 --backoff-ms 50 \
  --workdir "$WORK/shards" --out "$WORK/merged.csv" \
  2> "$WORK/orchestrator.log"

if ! grep -q "retrying" "$WORK/orchestrator.log"; then
  echo "shard_e2e: FAIL — injected failure did not exercise the retry path" >&2
  cat "$WORK/orchestrator.log" >&2
  exit 1
fi

if ! cmp -s "$WORK/single.csv" "$WORK/merged.csv"; then
  echo "shard_e2e: FAIL — merged CSV differs from single-process CSV" >&2
  diff "$WORK/single.csv" "$WORK/merged.csv" >&2 || true
  exit 1
fi

echo "shard_e2e: engine-flag forwarding (--isa scalar --batch 2 --threads 2) ..."
# The orchestrator must hand its engine knobs through to the workers: run
# a small grid with a forced backend and assert (a) every worker manifest
# records that backend, and (b) the merged CSV still matches a
# single-process run of the same grid with default engine knobs — the
# engine flags select an implementation, never the output.
GRID="--sizes 7:2,10:3 --seeds 2 --rounds 500"
# shellcheck disable=SC2086  # word-splitting of $GRID is intended
"$SWEEP" $GRID --csv > "$WORK/single_small.csv"
# shellcheck disable=SC2086
"$SHARDSWEEP" $GRID --shards 2 --isa scalar --batch 2 --threads 2 \
  --workdir "$WORK/shards_fwd" --out "$WORK/merged_fwd.csv" \
  2> "$WORK/orchestrator_fwd.log"

for MANIFEST in "$WORK"/shards_fwd/shard_*.json; do
  if ! grep -q '"isa": "scalar"' "$MANIFEST"; then
    echo "shard_e2e: FAIL — $MANIFEST does not record the forwarded ISA" >&2
    cat "$MANIFEST" >&2
    exit 1
  fi
done

if ! cmp -s "$WORK/single_small.csv" "$WORK/merged_fwd.csv"; then
  echo "shard_e2e: FAIL — forwarded-flags merged CSV differs" >&2
  diff "$WORK/single_small.csv" "$WORK/merged_fwd.csv" >&2 || true
  exit 1
fi

echo "shard_e2e: vector dim axis (--dim 1,4) through the shard pipeline ..."
# The --dim grid axis must survive the orchestrator -> worker -> manifest
# -> merge round trip: worker manifests record the full dims axis, and the
# merged CSV is byte-identical to a single-process run of the same grid.
VGRID="--sizes 7:2 --dim 1,4 --seeds 2 --rounds 300"
# shellcheck disable=SC2086  # word-splitting of $VGRID is intended
"$SWEEP" $VGRID --csv > "$WORK/single_vec.csv"
# shellcheck disable=SC2086
"$SHARDSWEEP" $VGRID --shards 2 \
  --workdir "$WORK/shards_vec" --out "$WORK/merged_vec.csv" \
  2> "$WORK/orchestrator_vec.log"

for MANIFEST in "$WORK"/shards_vec/shard_*.json; do
  if ! grep -q '"dims": "1,4"' "$MANIFEST"; then
    echo "shard_e2e: FAIL — $MANIFEST does not record the dims axis" >&2
    cat "$MANIFEST" >&2
    exit 1
  fi
done

if ! cmp -s "$WORK/single_vec.csv" "$WORK/merged_vec.csv"; then
  echo "shard_e2e: FAIL — vector-dim merged CSV differs" >&2
  diff "$WORK/single_vec.csv" "$WORK/merged_vec.csv" >&2 || true
  exit 1
fi

echo "shard_e2e: megabatch A/B (--megabatch off vs default on) ..."
# Cross-cell megabatching is a scheduling lever, never an output lever:
# the same grid with --megabatch off (per-cell batches) must produce a
# byte-identical CSV, both single-process and through the orchestrator
# (which forwards the flag to every worker).
MGRID="--sizes 7:2,10:3 --dim 1,3 --seeds 3 --rounds 300"
# shellcheck disable=SC2086  # word-splitting of $MGRID is intended
"$SWEEP" $MGRID --csv > "$WORK/single_mb_on.csv"
# shellcheck disable=SC2086
"$SWEEP" $MGRID --megabatch off --csv > "$WORK/single_mb_off.csv"

if ! cmp -s "$WORK/single_mb_on.csv" "$WORK/single_mb_off.csv"; then
  echo "shard_e2e: FAIL — --megabatch off changed the sweep CSV" >&2
  diff "$WORK/single_mb_on.csv" "$WORK/single_mb_off.csv" >&2 || true
  exit 1
fi

# shellcheck disable=SC2086
"$SHARDSWEEP" $MGRID --shards 2 --megabatch off \
  --workdir "$WORK/shards_mb" --out "$WORK/merged_mb_off.csv" \
  2> "$WORK/orchestrator_mb.log"

if ! cmp -s "$WORK/single_mb_on.csv" "$WORK/merged_mb_off.csv"; then
  echo "shard_e2e: FAIL — sharded --megabatch off merged CSV differs" >&2
  diff "$WORK/single_mb_on.csv" "$WORK/merged_mb_off.csv" >&2 || true
  exit 1
fi

echo "shard_e2e: cache warm-start (shared --cache-dir across two runs) ..."
# The orchestrator forwards --cache-dir to every worker, so a second run
# over the same grid must be served from the first run's records: every
# worker reports hits and zero misses, and the merged CSV is still
# byte-identical — the cache can change wall-clock, never output.
CGRID="--sizes 7:2,10:3 --seeds 2 --rounds 400"
# shellcheck disable=SC2086  # word-splitting of $CGRID is intended
"$SWEEP" $CGRID --csv > "$WORK/single_cache.csv"
# shellcheck disable=SC2086
"$SHARDSWEEP" $CGRID --shards 2 --cache-dir "$WORK/cache" \
  --workdir "$WORK/shards_cold" --out "$WORK/merged_cold.csv" \
  2> "$WORK/orchestrator_cold.log"
# shellcheck disable=SC2086
"$SHARDSWEEP" $CGRID --shards 2 --cache-dir "$WORK/cache" \
  --workdir "$WORK/shards_warm" --out "$WORK/merged_warm.csv" \
  2> "$WORK/orchestrator_warm.log"

if [ "$(grep -c "cache: hits=" "$WORK/orchestrator_warm.log")" -lt 2 ]; then
  echo "shard_e2e: FAIL — warm workers did not report cache counters" >&2
  cat "$WORK/orchestrator_warm.log" >&2
  exit 1
fi
if grep "cache: hits=" "$WORK/orchestrator_warm.log" | grep -qv "misses=0 "; then
  echo "shard_e2e: FAIL — a warm worker recomputed cells (misses != 0)" >&2
  cat "$WORK/orchestrator_warm.log" >&2
  exit 1
fi
if grep -q "cache: hits=0 " "$WORK/orchestrator_warm.log"; then
  echo "shard_e2e: FAIL — a warm worker was not served from the cache" >&2
  cat "$WORK/orchestrator_warm.log" >&2
  exit 1
fi

if ! cmp -s "$WORK/single_cache.csv" "$WORK/merged_cold.csv" ||
   ! cmp -s "$WORK/single_cache.csv" "$WORK/merged_warm.csv"; then
  echo "shard_e2e: FAIL — cached merged CSV differs from single-process CSV" >&2
  diff "$WORK/single_cache.csv" "$WORK/merged_warm.csv" >&2 || true
  exit 1
fi

echo "shard_e2e: fabric — stale-lease steal + duplicate-claim rejection ..."
# The multi-node fabric's crash-fault path, end to end over real
# subprocesses: a worker SIGKILLs itself right after claiming a shard
# (frozen heartbeat), a probe for the same shard is refused while the
# lease is younger than the TTL (duplicate-claim rejection), then a
# rescuer with a short TTL steals the stale lease, finishes the grid, and
# the fabric merge is byte-identical to the single-process sweep.
FAB="$WORK/fabric"
FGRID="--sizes 7:2,10:3 --attacks split-brain,sign-flip --seeds 2 --rounds 300"
# shellcheck disable=SC2086  # word-splitting of $FGRID is intended
"$SWEEP" $FGRID --csv > "$WORK/single_fabric.csv"
# shellcheck disable=SC2086
"$FABRIC" --mode init --fabric-dir "$FAB" $FGRID --shards 4 \
  2> "$WORK/fabric_init.log"

DIE_STATUS=0
"$FABRIC" --mode work --fabric-dir "$FAB" --worker-id dier \
  --worker "$SWEEP" --inject-die-shard 2 \
  2> "$WORK/fabric_dier.log" || DIE_STATUS=$?
if [ "$DIE_STATUS" -ne 137 ]; then
  echo "shard_e2e: FAIL — dier exited $DIE_STATUS, expected 137 (SIGKILL)" >&2
  cat "$WORK/fabric_dier.log" >&2
  exit 1
fi

PROBE_STATUS=0
"$FABRIC" --mode claim --fabric-dir "$FAB" --claim-shard 2 \
  --worker-id prober > "$WORK/fabric_probe.log" || PROBE_STATUS=$?
if [ "$PROBE_STATUS" -ne 4 ] || ! grep -q "refused" "$WORK/fabric_probe.log"; then
  echo "shard_e2e: FAIL — duplicate claim of a live lease was not refused" \
       "(exit $PROBE_STATUS)" >&2
  cat "$WORK/fabric_probe.log" >&2
  exit 1
fi

"$FABRIC" --mode work --fabric-dir "$FAB" --worker-id rescuer \
  --worker "$SWEEP" --lease-ttl-ms 200 --wait-all \
  2> "$WORK/fabric_rescuer.log"

if ! grep -q "stole shard 2" "$WORK/fabric_rescuer.log"; then
  echo "shard_e2e: FAIL — rescuer did not steal the dead worker's shard" >&2
  cat "$WORK/fabric_rescuer.log" >&2
  exit 1
fi

# The acceptance property: the original lease and the completion record
# of the stolen shard name different workers.
if ! grep -q '"worker_id": "dier"' "$FAB/leases/shard_2.a1.lease" ||
   ! grep -q '"worker_id": "rescuer"' "$FAB/results/shard_2.done.json"; then
  echo "shard_e2e: FAIL — stolen shard's lease/completion worker ids wrong" >&2
  cat "$FAB/leases/shard_2.a1.lease" "$FAB/results/shard_2.done.json" >&2
  exit 1
fi

"$FABRIC" --mode merge --fabric-dir "$FAB" --out "$WORK/merged_fabric.csv" \
  2> "$WORK/fabric_merge.log"

if ! cmp -s "$WORK/single_fabric.csv" "$WORK/merged_fabric.csv"; then
  echo "shard_e2e: FAIL — fabric merged CSV differs from single-process CSV" >&2
  diff "$WORK/single_fabric.csv" "$WORK/merged_fabric.csv" >&2 || true
  exit 1
fi

echo "shard_e2e: OK — retry exercised, merged CSVs byte-identical, engine flags forwarded, dim axis round-trips, megabatch A/B identical, warm-start served from cache, fabric steal recovered"
