#!/usr/bin/env sh
# bench_check.sh — performance regression gate for the sweep engine.
#
# Runs bench_sweep_json and fails (exit 1) if the fresh single-thread
# runs_per_sec falls more than TOLERANCE below the committed
# BENCH_sweep.json baseline. Wired as the ctest `bench_check` with label
# `perf` (CONFIGURATIONS perf, so the default tier-1 `ctest` run skips it;
# run it with `ctest -C perf` or directly).
#
# Two further gates ride along, each with an explicit SKIP path so a
# missing comparison never silently passes:
#   - parallel speedup (best rung vs 1 thread) — SKIPPED with a message
#     when the fresh run reports ladder_collapsed (a 1-core machine has
#     one rung, so there is no parallel speedup to compare);
#   - megabatch speedup (cross-cell packing vs the per-cell baseline)
#     — SKIPPED with a message when either JSON predates the block.
#
#   scripts/bench_check.sh <bench_sweep_json-binary> <baseline.json> [tolerance]
#
# tolerance is the allowed fractional regression (default 0.10 = 10%).
# Precedence: positional argument > FTMAO_BENCH_TOLERANCE environment
# variable > default — so CI can loosen the gate on noisy shared runners
# (FTMAO_BENCH_TOLERANCE=0.25 ctest -C perf) without editing the ctest
# registration.

set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench_sweep_json-binary> <baseline.json> [tolerance]" >&2
  exit 2
fi

BENCH_BIN=$1
BASELINE=$2
TOLERANCE=${3:-${FTMAO_BENCH_TOLERANCE:-0.10}}

if [ ! -x "$BENCH_BIN" ]; then
  echo "bench_check: bench binary not found or not executable: $BENCH_BIN" >&2
  exit 2
fi
if [ ! -f "$BASELINE" ]; then
  echo "bench_check: baseline not found: $BASELINE" >&2
  exit 2
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_check: python3 not found (needed to compare the JSONs)" >&2
  exit 2
fi

# Plain mktemp: the GNU suffix-template form (prefix.XXXXXX.json) is not
# portable to BSD/busybox mktemp, and the bench binary does not care about
# the extension.
FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT

echo "bench_check: running $BENCH_BIN ..."
"$BENCH_BIN" --out "$FRESH" > /dev/null

python3 - "$BASELINE" "$FRESH" "$TOLERANCE" <<'EOF'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])


def load(path):
    with open(path) as handle:
        return json.load(handle)


def single_thread_runs_per_sec(doc, path):
    for entry in doc["results"]:
        if entry["threads"] == 1:
            return float(entry["runs_per_sec"])
    raise SystemExit(f"bench_check: no threads=1 entry in {path}")


baseline_doc = load(baseline_path)
fresh_doc = load(fresh_path)
failed = False

baseline = single_thread_runs_per_sec(baseline_doc, baseline_path)
fresh = single_thread_runs_per_sec(fresh_doc, fresh_path)
floor = baseline * (1.0 - tolerance)

print(f"bench_check: baseline {baseline:.1f} runs/sec, fresh {fresh:.1f} "
      f"runs/sec, floor {floor:.1f} (tolerance {tolerance:.0%})")
if fresh < floor:
    print("bench_check: FAIL — single-thread sweep throughput regressed")
    failed = True

# Parallel-speedup gate: the best-rung-vs-1-thread ratio must not decay.
# A collapsed ladder (1-core machine: one rung) has no parallel speedup
# to measure, so the gate is skipped — explicitly, never silently.
collapsed = bool(
    fresh_doc.get("ladder_collapsed", len(fresh_doc["results"]) == 1))
if collapsed:
    print("bench_check: SKIP parallel-speedup gate — thread ladder "
          "collapsed to a single rung (1-core machine)")
else:
    base_speedup = float(baseline_doc.get("speedup", 1.0))
    fresh_speedup = float(fresh_doc.get("speedup", 1.0))
    speedup_floor = base_speedup * (1.0 - tolerance)
    print(f"bench_check: parallel speedup baseline {base_speedup:.2f}x, "
          f"fresh {fresh_speedup:.2f}x, floor {speedup_floor:.2f}x")
    if fresh_speedup < speedup_floor:
        print("bench_check: FAIL — parallel speedup regressed")
        failed = True

# Megabatch gate: cross-cell packing must stay ahead of the per-cell
# baseline by at least the committed ratio (less tolerance). Skipped when
# either JSON predates the megabatch block.
base_mb = baseline_doc.get("megabatch")
fresh_mb = fresh_doc.get("megabatch")
if not isinstance(base_mb, dict) or not isinstance(fresh_mb, dict):
    print("bench_check: SKIP megabatch gate — no megabatch block in "
          "baseline or fresh JSON")
else:
    base_ratio = float(base_mb["speedup"])
    fresh_ratio = float(fresh_mb["speedup"])
    ratio_floor = base_ratio * (1.0 - tolerance)
    print(f"bench_check: megabatch speedup baseline {base_ratio:.2f}x, "
          f"fresh {fresh_ratio:.2f}x, floor {ratio_floor:.2f}x "
          f"(occupancy {float(fresh_mb['per_cell_occupancy']):.3f} -> "
          f"{float(fresh_mb['megabatch_occupancy']):.3f})")
    if fresh_ratio < ratio_floor:
        print("bench_check: FAIL — megabatch speedup regressed")
        failed = True

if failed:
    raise SystemExit(1)
delta = (fresh - baseline) / baseline
print(f"bench_check: OK ({delta:+.1%} vs baseline)")
EOF
