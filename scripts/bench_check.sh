#!/usr/bin/env sh
# bench_check.sh — performance regression gate for the sweep engine.
#
# Runs bench_sweep_json and fails (exit 1) if the fresh single-thread
# runs_per_sec falls more than TOLERANCE below the committed
# BENCH_sweep.json baseline. Wired as the ctest `bench_check` with label
# `perf` (CONFIGURATIONS perf, so the default tier-1 `ctest` run skips it;
# run it with `ctest -C perf` or directly).
#
#   scripts/bench_check.sh <bench_sweep_json-binary> <baseline.json> [tolerance]
#
# tolerance is the allowed fractional regression (default 0.10 = 10%).
# Precedence: positional argument > FTMAO_BENCH_TOLERANCE environment
# variable > default — so CI can loosen the gate on noisy shared runners
# (FTMAO_BENCH_TOLERANCE=0.25 ctest -C perf) without editing the ctest
# registration.

set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench_sweep_json-binary> <baseline.json> [tolerance]" >&2
  exit 2
fi

BENCH_BIN=$1
BASELINE=$2
TOLERANCE=${3:-${FTMAO_BENCH_TOLERANCE:-0.10}}

if [ ! -x "$BENCH_BIN" ]; then
  echo "bench_check: bench binary not found or not executable: $BENCH_BIN" >&2
  exit 2
fi
if [ ! -f "$BASELINE" ]; then
  echo "bench_check: baseline not found: $BASELINE" >&2
  exit 2
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_check: python3 not found (needed to compare the JSONs)" >&2
  exit 2
fi

# Plain mktemp: the GNU suffix-template form (prefix.XXXXXX.json) is not
# portable to BSD/busybox mktemp, and the bench binary does not care about
# the extension.
FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT

echo "bench_check: running $BENCH_BIN ..."
"$BENCH_BIN" --out "$FRESH" > /dev/null

python3 - "$BASELINE" "$FRESH" "$TOLERANCE" <<'EOF'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])


def single_thread_runs_per_sec(path):
    with open(path) as handle:
        doc = json.load(handle)
    for entry in doc["results"]:
        if entry["threads"] == 1:
            return float(entry["runs_per_sec"])
    raise SystemExit(f"bench_check: no threads=1 entry in {path}")


baseline = single_thread_runs_per_sec(baseline_path)
fresh = single_thread_runs_per_sec(fresh_path)
floor = baseline * (1.0 - tolerance)

print(f"bench_check: baseline {baseline:.1f} runs/sec, fresh {fresh:.1f} "
      f"runs/sec, floor {floor:.1f} (tolerance {tolerance:.0%})")
if fresh < floor:
    print("bench_check: FAIL — single-thread sweep throughput regressed")
    raise SystemExit(1)
delta = (fresh - baseline) / baseline
print(f"bench_check: OK ({delta:+.1%} vs baseline)")
EOF
