file(REMOVE_RECURSE
  "CMakeFiles/ftmao_sweep.dir/ftmao_sweep.cpp.o"
  "CMakeFiles/ftmao_sweep.dir/ftmao_sweep.cpp.o.d"
  "ftmao_sweep"
  "ftmao_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
