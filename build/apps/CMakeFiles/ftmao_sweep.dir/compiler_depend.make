# Empty compiler generated dependencies file for ftmao_sweep.
# This may be replaced when dependencies are built.
