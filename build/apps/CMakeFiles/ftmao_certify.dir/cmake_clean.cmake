file(REMOVE_RECURSE
  "CMakeFiles/ftmao_certify.dir/ftmao_certify.cpp.o"
  "CMakeFiles/ftmao_certify.dir/ftmao_certify.cpp.o.d"
  "ftmao_certify"
  "ftmao_certify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
