# Empty compiler generated dependencies file for ftmao_certify.
# This may be replaced when dependencies are built.
