file(REMOVE_RECURSE
  "CMakeFiles/ftmao.dir/ftmao_cli.cpp.o"
  "CMakeFiles/ftmao.dir/ftmao_cli.cpp.o.d"
  "ftmao"
  "ftmao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
