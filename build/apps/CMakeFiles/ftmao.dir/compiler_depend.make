# Empty compiler generated dependencies file for ftmao.
# This may be replaced when dependencies are built.
