file(REMOVE_RECURSE
  "CMakeFiles/tsan_pool_check.dir/__/src/common/thread_pool.cpp.o"
  "CMakeFiles/tsan_pool_check.dir/__/src/common/thread_pool.cpp.o.d"
  "CMakeFiles/tsan_pool_check.dir/tsan_pool_check.cpp.o"
  "CMakeFiles/tsan_pool_check.dir/tsan_pool_check.cpp.o.d"
  "tsan_pool_check"
  "tsan_pool_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsan_pool_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
