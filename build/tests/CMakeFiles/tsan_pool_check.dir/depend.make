# Empty dependencies file for tsan_pool_check.
# This may be replaced when dependencies are built.
