
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/test_thread_pool.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_thread_pool.dir/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftmao_common.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/ftmao_func.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ftmao_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ftmao_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/trim/CMakeFiles/ftmao_trim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ftmao_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftmao_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/ftmao_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ftmao_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftmao_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/ftmao_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/central/CMakeFiles/ftmao_central.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftmao_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/ftmao_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/ftmao_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
