# Empty dependencies file for test_equivariance.
# This may be replaced when dependencies are built.
