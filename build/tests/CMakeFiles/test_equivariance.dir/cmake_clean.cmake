file(REMOVE_RECURSE
  "CMakeFiles/test_equivariance.dir/equivariance_test.cpp.o"
  "CMakeFiles/test_equivariance.dir/equivariance_test.cpp.o.d"
  "test_equivariance"
  "test_equivariance.pdb"
  "test_equivariance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equivariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
