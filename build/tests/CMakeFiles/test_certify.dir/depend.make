# Empty dependencies file for test_certify.
# This may be replaced when dependencies are built.
