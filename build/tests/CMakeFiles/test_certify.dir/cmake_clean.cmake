file(REMOVE_RECURSE
  "CMakeFiles/test_certify.dir/certify_test.cpp.o"
  "CMakeFiles/test_certify.dir/certify_test.cpp.o.d"
  "test_certify"
  "test_certify.pdb"
  "test_certify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
