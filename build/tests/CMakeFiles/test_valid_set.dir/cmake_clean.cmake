file(REMOVE_RECURSE
  "CMakeFiles/test_valid_set.dir/valid_set_test.cpp.o"
  "CMakeFiles/test_valid_set.dir/valid_set_test.cpp.o.d"
  "test_valid_set"
  "test_valid_set.pdb"
  "test_valid_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_valid_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
