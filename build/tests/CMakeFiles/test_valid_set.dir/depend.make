# Empty dependencies file for test_valid_set.
# This may be replaced when dependencies are built.
