# Empty dependencies file for test_attack_search.
# This may be replaced when dependencies are built.
