file(REMOVE_RECURSE
  "CMakeFiles/test_attack_search.dir/attack_search_test.cpp.o"
  "CMakeFiles/test_attack_search.dir/attack_search_test.cpp.o.d"
  "test_attack_search"
  "test_attack_search.pdb"
  "test_attack_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
