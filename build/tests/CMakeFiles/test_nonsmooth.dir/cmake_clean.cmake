file(REMOVE_RECURSE
  "CMakeFiles/test_nonsmooth.dir/nonsmooth_test.cpp.o"
  "CMakeFiles/test_nonsmooth.dir/nonsmooth_test.cpp.o.d"
  "test_nonsmooth"
  "test_nonsmooth.pdb"
  "test_nonsmooth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonsmooth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
