# Empty compiler generated dependencies file for test_nonsmooth.
# This may be replaced when dependencies are built.
