file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_parallel.dir/sweep_parallel_test.cpp.o"
  "CMakeFiles/test_sweep_parallel.dir/sweep_parallel_test.cpp.o.d"
  "test_sweep_parallel"
  "test_sweep_parallel.pdb"
  "test_sweep_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
