# Empty dependencies file for test_sweep_parallel.
# This may be replaced when dependencies are built.
