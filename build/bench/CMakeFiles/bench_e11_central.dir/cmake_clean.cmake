file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_central.dir/e11_central.cpp.o"
  "CMakeFiles/bench_e11_central.dir/e11_central.cpp.o.d"
  "bench_e11_central"
  "bench_e11_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
