# Empty dependencies file for bench_e11_central.
# This may be replaced when dependencies are built.
