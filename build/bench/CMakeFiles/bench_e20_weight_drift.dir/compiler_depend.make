# Empty compiler generated dependencies file for bench_e20_weight_drift.
# This may be replaced when dependencies are built.
