file(REMOVE_RECURSE
  "CMakeFiles/bench_e20_weight_drift.dir/e20_weight_drift.cpp.o"
  "CMakeFiles/bench_e20_weight_drift.dir/e20_weight_drift.cpp.o.d"
  "bench_e20_weight_drift"
  "bench_e20_weight_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e20_weight_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
