file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_constrained.dir/e6_constrained.cpp.o"
  "CMakeFiles/bench_e6_constrained.dir/e6_constrained.cpp.o.d"
  "bench_e6_constrained"
  "bench_e6_constrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
