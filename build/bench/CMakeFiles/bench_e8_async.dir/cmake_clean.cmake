file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_async.dir/e8_async.cpp.o"
  "CMakeFiles/bench_e8_async.dir/e8_async.cpp.o.d"
  "bench_e8_async"
  "bench_e8_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
