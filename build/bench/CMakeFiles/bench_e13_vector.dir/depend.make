# Empty dependencies file for bench_e13_vector.
# This may be replaced when dependencies are built.
