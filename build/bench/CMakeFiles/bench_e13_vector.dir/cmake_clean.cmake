file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_vector.dir/e13_vector.cpp.o"
  "CMakeFiles/bench_e13_vector.dir/e13_vector.cpp.o.d"
  "bench_e13_vector"
  "bench_e13_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
