# Empty dependencies file for bench_e4_impossibility.
# This may be replaced when dependencies are built.
