file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_impossibility.dir/e4_impossibility.cpp.o"
  "CMakeFiles/bench_e4_impossibility.dir/e4_impossibility.cpp.o.d"
  "bench_e4_impossibility"
  "bench_e4_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
