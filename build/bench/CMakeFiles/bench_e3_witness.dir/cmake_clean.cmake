file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_witness.dir/e3_witness.cpp.o"
  "CMakeFiles/bench_e3_witness.dir/e3_witness.cpp.o.d"
  "bench_e3_witness"
  "bench_e3_witness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_witness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
