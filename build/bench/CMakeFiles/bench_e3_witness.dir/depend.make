# Empty dependencies file for bench_e3_witness.
# This may be replaced when dependencies are built.
