# Empty dependencies file for bench_e7_crash.
# This may be replaced when dependencies are built.
