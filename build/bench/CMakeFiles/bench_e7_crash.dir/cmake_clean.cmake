file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_crash.dir/e7_crash.cpp.o"
  "CMakeFiles/bench_e7_crash.dir/e7_crash.cpp.o.d"
  "bench_e7_crash"
  "bench_e7_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
