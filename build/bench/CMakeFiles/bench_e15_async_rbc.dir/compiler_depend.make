# Empty compiler generated dependencies file for bench_e15_async_rbc.
# This may be replaced when dependencies are built.
