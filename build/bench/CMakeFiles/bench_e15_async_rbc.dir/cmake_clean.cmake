file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_async_rbc.dir/e15_async_rbc.cpp.o"
  "CMakeFiles/bench_e15_async_rbc.dir/e15_async_rbc.cpp.o.d"
  "bench_e15_async_rbc"
  "bench_e15_async_rbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_async_rbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
