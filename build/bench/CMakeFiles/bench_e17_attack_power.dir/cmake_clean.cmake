file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_attack_power.dir/e17_attack_power.cpp.o"
  "CMakeFiles/bench_e17_attack_power.dir/e17_attack_power.cpp.o.d"
  "bench_e17_attack_power"
  "bench_e17_attack_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_attack_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
