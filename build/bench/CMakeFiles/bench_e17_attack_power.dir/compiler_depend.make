# Empty compiler generated dependencies file for bench_e17_attack_power.
# This may be replaced when dependencies are built.
