# Empty dependencies file for bench_e1_consensus.
# This may be replaced when dependencies are built.
