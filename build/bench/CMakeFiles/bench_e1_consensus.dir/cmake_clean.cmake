file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_consensus.dir/e1_consensus.cpp.o"
  "CMakeFiles/bench_e1_consensus.dir/e1_consensus.cpp.o.d"
  "bench_e1_consensus"
  "bench_e1_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
