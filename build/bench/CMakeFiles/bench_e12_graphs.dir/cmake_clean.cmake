file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_graphs.dir/e12_graphs.cpp.o"
  "CMakeFiles/bench_e12_graphs.dir/e12_graphs.cpp.o.d"
  "bench_e12_graphs"
  "bench_e12_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
