file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_link_failures.dir/e18_link_failures.cpp.o"
  "CMakeFiles/bench_e18_link_failures.dir/e18_link_failures.cpp.o.d"
  "bench_e18_link_failures"
  "bench_e18_link_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_link_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
