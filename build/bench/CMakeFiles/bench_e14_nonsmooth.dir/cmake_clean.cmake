file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_nonsmooth.dir/e14_nonsmooth.cpp.o"
  "CMakeFiles/bench_e14_nonsmooth.dir/e14_nonsmooth.cpp.o.d"
  "bench_e14_nonsmooth"
  "bench_e14_nonsmooth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_nonsmooth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
