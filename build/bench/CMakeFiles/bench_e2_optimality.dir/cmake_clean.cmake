file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_optimality.dir/e2_optimality.cpp.o"
  "CMakeFiles/bench_e2_optimality.dir/e2_optimality.cpp.o.d"
  "bench_e2_optimality"
  "bench_e2_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
