# Empty dependencies file for bench_e2_optimality.
# This may be replaced when dependencies are built.
