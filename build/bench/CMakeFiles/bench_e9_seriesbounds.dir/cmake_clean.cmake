file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_seriesbounds.dir/e9_seriesbounds.cpp.o"
  "CMakeFiles/bench_e9_seriesbounds.dir/e9_seriesbounds.cpp.o.d"
  "bench_e9_seriesbounds"
  "bench_e9_seriesbounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_seriesbounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
