# Empty dependencies file for bench_e9_seriesbounds.
# This may be replaced when dependencies are built.
