file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_json.dir/bench_sweep_json.cpp.o"
  "CMakeFiles/bench_sweep_json.dir/bench_sweep_json.cpp.o.d"
  "bench_sweep_json"
  "bench_sweep_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
