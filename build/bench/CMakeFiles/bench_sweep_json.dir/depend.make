# Empty dependencies file for bench_sweep_json.
# This may be replaced when dependencies are built.
