# Empty dependencies file for bench_e16_finite_time.
# This may be replaced when dependencies are built.
