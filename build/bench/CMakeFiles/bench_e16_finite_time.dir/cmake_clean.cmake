file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_finite_time.dir/e16_finite_time.cpp.o"
  "CMakeFiles/bench_e16_finite_time.dir/e16_finite_time.cpp.o.d"
  "bench_e16_finite_time"
  "bench_e16_finite_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_finite_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
