file(REMOVE_RECURSE
  "CMakeFiles/bench_e19_fault_spectrum.dir/e19_fault_spectrum.cpp.o"
  "CMakeFiles/bench_e19_fault_spectrum.dir/e19_fault_spectrum.cpp.o.d"
  "bench_e19_fault_spectrum"
  "bench_e19_fault_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e19_fault_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
