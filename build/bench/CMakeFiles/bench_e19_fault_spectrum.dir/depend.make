# Empty dependencies file for bench_e19_fault_spectrum.
# This may be replaced when dependencies are built.
