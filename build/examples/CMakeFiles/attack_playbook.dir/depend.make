# Empty dependencies file for attack_playbook.
# This may be replaced when dependencies are built.
