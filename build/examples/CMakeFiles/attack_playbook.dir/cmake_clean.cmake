file(REMOVE_RECURSE
  "CMakeFiles/attack_playbook.dir/attack_playbook.cpp.o"
  "CMakeFiles/attack_playbook.dir/attack_playbook.cpp.o.d"
  "attack_playbook"
  "attack_playbook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_playbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
