# Empty compiler generated dependencies file for async_sensors.
# This may be replaced when dependencies are built.
