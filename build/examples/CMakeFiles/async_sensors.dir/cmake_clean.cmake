file(REMOVE_RECURSE
  "CMakeFiles/async_sensors.dir/async_sensors.cpp.o"
  "CMakeFiles/async_sensors.dir/async_sensors.cpp.o.d"
  "async_sensors"
  "async_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
