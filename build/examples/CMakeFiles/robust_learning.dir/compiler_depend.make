# Empty compiler generated dependencies file for robust_learning.
# This may be replaced when dependencies are built.
