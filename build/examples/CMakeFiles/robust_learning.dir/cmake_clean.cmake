file(REMOVE_RECURSE
  "CMakeFiles/robust_learning.dir/robust_learning.cpp.o"
  "CMakeFiles/robust_learning.dir/robust_learning.cpp.o.d"
  "robust_learning"
  "robust_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
