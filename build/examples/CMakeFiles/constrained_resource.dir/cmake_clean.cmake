file(REMOVE_RECURSE
  "CMakeFiles/constrained_resource.dir/constrained_resource.cpp.o"
  "CMakeFiles/constrained_resource.dir/constrained_resource.cpp.o.d"
  "constrained_resource"
  "constrained_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
