# Empty compiler generated dependencies file for constrained_resource.
# This may be replaced when dependencies are built.
