# Empty dependencies file for robot_rendezvous.
# This may be replaced when dependencies are built.
