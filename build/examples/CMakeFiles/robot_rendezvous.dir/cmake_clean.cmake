file(REMOVE_RECURSE
  "CMakeFiles/robot_rendezvous.dir/robot_rendezvous.cpp.o"
  "CMakeFiles/robot_rendezvous.dir/robot_rendezvous.cpp.o.d"
  "robot_rendezvous"
  "robot_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
