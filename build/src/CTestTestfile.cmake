# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("func")
subdirs("opt")
subdirs("lp")
subdirs("trim")
subdirs("net")
subdirs("adversary")
subdirs("core")
subdirs("consensus")
subdirs("central")
subdirs("baseline")
subdirs("sim")
subdirs("graph")
subdirs("vector")
subdirs("cli")
