file(REMOVE_RECURSE
  "CMakeFiles/ftmao_consensus.dir/eig.cpp.o"
  "CMakeFiles/ftmao_consensus.dir/eig.cpp.o.d"
  "CMakeFiles/ftmao_consensus.dir/iterative.cpp.o"
  "CMakeFiles/ftmao_consensus.dir/iterative.cpp.o.d"
  "CMakeFiles/ftmao_consensus.dir/rbc_sbg.cpp.o"
  "CMakeFiles/ftmao_consensus.dir/rbc_sbg.cpp.o.d"
  "libftmao_consensus.a"
  "libftmao_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
