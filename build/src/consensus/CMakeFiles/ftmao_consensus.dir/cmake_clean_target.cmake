file(REMOVE_RECURSE
  "libftmao_consensus.a"
)
