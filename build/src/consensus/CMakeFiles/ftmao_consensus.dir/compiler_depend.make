# Empty compiler generated dependencies file for ftmao_consensus.
# This may be replaced when dependencies are built.
