# Empty dependencies file for ftmao_baseline.
# This may be replaced when dependencies are built.
