file(REMOVE_RECURSE
  "CMakeFiles/ftmao_baseline.dir/consistent.cpp.o"
  "CMakeFiles/ftmao_baseline.dir/consistent.cpp.o.d"
  "CMakeFiles/ftmao_baseline.dir/dgd.cpp.o"
  "CMakeFiles/ftmao_baseline.dir/dgd.cpp.o.d"
  "CMakeFiles/ftmao_baseline.dir/local_gd.cpp.o"
  "CMakeFiles/ftmao_baseline.dir/local_gd.cpp.o.d"
  "libftmao_baseline.a"
  "libftmao_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
