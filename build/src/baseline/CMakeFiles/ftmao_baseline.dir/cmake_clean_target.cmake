file(REMOVE_RECURSE
  "libftmao_baseline.a"
)
