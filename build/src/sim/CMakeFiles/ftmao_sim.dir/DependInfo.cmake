
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_runner.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/async_runner.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/async_runner.cpp.o.d"
  "/root/repo/src/sim/attack_search.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/attack_search.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/attack_search.cpp.o.d"
  "/root/repo/src/sim/certify.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/certify.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/certify.cpp.o.d"
  "/root/repo/src/sim/crash_runner.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/crash_runner.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/crash_runner.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/runner.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/runner.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/scenario_io.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/scenario_io.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/scenario_io.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/sweep.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/sweep.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/ftmao_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ftmao_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftmao_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftmao_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ftmao_net.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/ftmao_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ftmao_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/ftmao_func.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ftmao_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/trim/CMakeFiles/ftmao_trim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ftmao_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
