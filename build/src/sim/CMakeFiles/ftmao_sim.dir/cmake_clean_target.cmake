file(REMOVE_RECURSE
  "libftmao_sim.a"
)
