file(REMOVE_RECURSE
  "CMakeFiles/ftmao_sim.dir/async_runner.cpp.o"
  "CMakeFiles/ftmao_sim.dir/async_runner.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/attack_search.cpp.o"
  "CMakeFiles/ftmao_sim.dir/attack_search.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/certify.cpp.o"
  "CMakeFiles/ftmao_sim.dir/certify.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/crash_runner.cpp.o"
  "CMakeFiles/ftmao_sim.dir/crash_runner.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/report.cpp.o"
  "CMakeFiles/ftmao_sim.dir/report.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/runner.cpp.o"
  "CMakeFiles/ftmao_sim.dir/runner.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/scenario.cpp.o"
  "CMakeFiles/ftmao_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/scenario_io.cpp.o"
  "CMakeFiles/ftmao_sim.dir/scenario_io.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/sweep.cpp.o"
  "CMakeFiles/ftmao_sim.dir/sweep.cpp.o.d"
  "CMakeFiles/ftmao_sim.dir/trace.cpp.o"
  "CMakeFiles/ftmao_sim.dir/trace.cpp.o.d"
  "libftmao_sim.a"
  "libftmao_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
