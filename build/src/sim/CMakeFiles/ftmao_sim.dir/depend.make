# Empty dependencies file for ftmao_sim.
# This may be replaced when dependencies are built.
