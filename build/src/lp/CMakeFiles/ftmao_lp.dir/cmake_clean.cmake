file(REMOVE_RECURSE
  "CMakeFiles/ftmao_lp.dir/simplex.cpp.o"
  "CMakeFiles/ftmao_lp.dir/simplex.cpp.o.d"
  "CMakeFiles/ftmao_lp.dir/witness.cpp.o"
  "CMakeFiles/ftmao_lp.dir/witness.cpp.o.d"
  "libftmao_lp.a"
  "libftmao_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
