# Empty compiler generated dependencies file for ftmao_lp.
# This may be replaced when dependencies are built.
