file(REMOVE_RECURSE
  "libftmao_lp.a"
)
