file(REMOVE_RECURSE
  "libftmao_cli.a"
)
