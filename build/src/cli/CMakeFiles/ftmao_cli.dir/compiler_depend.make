# Empty compiler generated dependencies file for ftmao_cli.
# This may be replaced when dependencies are built.
