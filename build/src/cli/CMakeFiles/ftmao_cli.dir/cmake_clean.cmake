file(REMOVE_RECURSE
  "CMakeFiles/ftmao_cli.dir/args.cpp.o"
  "CMakeFiles/ftmao_cli.dir/args.cpp.o.d"
  "CMakeFiles/ftmao_cli.dir/cli_app.cpp.o"
  "CMakeFiles/ftmao_cli.dir/cli_app.cpp.o.d"
  "libftmao_cli.a"
  "libftmao_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
