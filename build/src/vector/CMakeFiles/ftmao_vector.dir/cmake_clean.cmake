file(REMOVE_RECURSE
  "CMakeFiles/ftmao_vector.dir/vec.cpp.o"
  "CMakeFiles/ftmao_vector.dir/vec.cpp.o.d"
  "CMakeFiles/ftmao_vector.dir/vector_function.cpp.o"
  "CMakeFiles/ftmao_vector.dir/vector_function.cpp.o.d"
  "CMakeFiles/ftmao_vector.dir/vector_sbg.cpp.o"
  "CMakeFiles/ftmao_vector.dir/vector_sbg.cpp.o.d"
  "CMakeFiles/ftmao_vector.dir/vector_valid.cpp.o"
  "CMakeFiles/ftmao_vector.dir/vector_valid.cpp.o.d"
  "libftmao_vector.a"
  "libftmao_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
