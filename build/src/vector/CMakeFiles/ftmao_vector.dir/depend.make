# Empty dependencies file for ftmao_vector.
# This may be replaced when dependencies are built.
