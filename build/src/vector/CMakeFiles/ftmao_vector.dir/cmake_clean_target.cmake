file(REMOVE_RECURSE
  "libftmao_vector.a"
)
