file(REMOVE_RECURSE
  "CMakeFiles/ftmao_trim.dir/trim.cpp.o"
  "CMakeFiles/ftmao_trim.dir/trim.cpp.o.d"
  "libftmao_trim.a"
  "libftmao_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
