file(REMOVE_RECURSE
  "libftmao_trim.a"
)
