# Empty compiler generated dependencies file for ftmao_trim.
# This may be replaced when dependencies are built.
