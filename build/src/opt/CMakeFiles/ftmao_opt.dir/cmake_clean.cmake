file(REMOVE_RECURSE
  "CMakeFiles/ftmao_opt.dir/bisection.cpp.o"
  "CMakeFiles/ftmao_opt.dir/bisection.cpp.o.d"
  "CMakeFiles/ftmao_opt.dir/brent.cpp.o"
  "CMakeFiles/ftmao_opt.dir/brent.cpp.o.d"
  "CMakeFiles/ftmao_opt.dir/golden.cpp.o"
  "CMakeFiles/ftmao_opt.dir/golden.cpp.o.d"
  "libftmao_opt.a"
  "libftmao_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
