file(REMOVE_RECURSE
  "libftmao_opt.a"
)
