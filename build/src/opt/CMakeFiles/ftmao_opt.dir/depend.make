# Empty dependencies file for ftmao_opt.
# This may be replaced when dependencies are built.
