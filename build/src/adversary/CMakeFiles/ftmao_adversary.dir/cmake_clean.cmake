file(REMOVE_RECURSE
  "CMakeFiles/ftmao_adversary.dir/strategies.cpp.o"
  "CMakeFiles/ftmao_adversary.dir/strategies.cpp.o.d"
  "libftmao_adversary.a"
  "libftmao_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
