# Empty dependencies file for ftmao_adversary.
# This may be replaced when dependencies are built.
