file(REMOVE_RECURSE
  "libftmao_adversary.a"
)
