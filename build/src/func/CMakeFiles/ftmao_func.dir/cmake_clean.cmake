file(REMOVE_RECURSE
  "CMakeFiles/ftmao_func.dir/combination.cpp.o"
  "CMakeFiles/ftmao_func.dir/combination.cpp.o.d"
  "CMakeFiles/ftmao_func.dir/functions.cpp.o"
  "CMakeFiles/ftmao_func.dir/functions.cpp.o.d"
  "CMakeFiles/ftmao_func.dir/library.cpp.o"
  "CMakeFiles/ftmao_func.dir/library.cpp.o.d"
  "CMakeFiles/ftmao_func.dir/nonsmooth.cpp.o"
  "CMakeFiles/ftmao_func.dir/nonsmooth.cpp.o.d"
  "CMakeFiles/ftmao_func.dir/spec.cpp.o"
  "CMakeFiles/ftmao_func.dir/spec.cpp.o.d"
  "CMakeFiles/ftmao_func.dir/validate.cpp.o"
  "CMakeFiles/ftmao_func.dir/validate.cpp.o.d"
  "libftmao_func.a"
  "libftmao_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
