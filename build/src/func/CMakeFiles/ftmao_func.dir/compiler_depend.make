# Empty compiler generated dependencies file for ftmao_func.
# This may be replaced when dependencies are built.
