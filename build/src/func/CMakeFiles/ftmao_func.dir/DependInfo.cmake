
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/func/combination.cpp" "src/func/CMakeFiles/ftmao_func.dir/combination.cpp.o" "gcc" "src/func/CMakeFiles/ftmao_func.dir/combination.cpp.o.d"
  "/root/repo/src/func/functions.cpp" "src/func/CMakeFiles/ftmao_func.dir/functions.cpp.o" "gcc" "src/func/CMakeFiles/ftmao_func.dir/functions.cpp.o.d"
  "/root/repo/src/func/library.cpp" "src/func/CMakeFiles/ftmao_func.dir/library.cpp.o" "gcc" "src/func/CMakeFiles/ftmao_func.dir/library.cpp.o.d"
  "/root/repo/src/func/nonsmooth.cpp" "src/func/CMakeFiles/ftmao_func.dir/nonsmooth.cpp.o" "gcc" "src/func/CMakeFiles/ftmao_func.dir/nonsmooth.cpp.o.d"
  "/root/repo/src/func/spec.cpp" "src/func/CMakeFiles/ftmao_func.dir/spec.cpp.o" "gcc" "src/func/CMakeFiles/ftmao_func.dir/spec.cpp.o.d"
  "/root/repo/src/func/validate.cpp" "src/func/CMakeFiles/ftmao_func.dir/validate.cpp.o" "gcc" "src/func/CMakeFiles/ftmao_func.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftmao_common.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ftmao_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
