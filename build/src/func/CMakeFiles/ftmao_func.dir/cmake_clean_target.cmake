file(REMOVE_RECURSE
  "libftmao_func.a"
)
