file(REMOVE_RECURSE
  "CMakeFiles/ftmao_graph.dir/graph_runner.cpp.o"
  "CMakeFiles/ftmao_graph.dir/graph_runner.cpp.o.d"
  "CMakeFiles/ftmao_graph.dir/robustness.cpp.o"
  "CMakeFiles/ftmao_graph.dir/robustness.cpp.o.d"
  "CMakeFiles/ftmao_graph.dir/topology.cpp.o"
  "CMakeFiles/ftmao_graph.dir/topology.cpp.o.d"
  "libftmao_graph.a"
  "libftmao_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
