# Empty dependencies file for ftmao_graph.
# This may be replaced when dependencies are built.
