file(REMOVE_RECURSE
  "libftmao_graph.a"
)
