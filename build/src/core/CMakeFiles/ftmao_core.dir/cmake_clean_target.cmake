file(REMOVE_RECURSE
  "libftmao_core.a"
)
