# Empty dependencies file for ftmao_core.
# This may be replaced when dependencies are built.
