file(REMOVE_RECURSE
  "CMakeFiles/ftmao_core.dir/admissibility.cpp.o"
  "CMakeFiles/ftmao_core.dir/admissibility.cpp.o.d"
  "CMakeFiles/ftmao_core.dir/async_sbg.cpp.o"
  "CMakeFiles/ftmao_core.dir/async_sbg.cpp.o.d"
  "CMakeFiles/ftmao_core.dir/crash_sbg.cpp.o"
  "CMakeFiles/ftmao_core.dir/crash_sbg.cpp.o.d"
  "CMakeFiles/ftmao_core.dir/sbg.cpp.o"
  "CMakeFiles/ftmao_core.dir/sbg.cpp.o.d"
  "CMakeFiles/ftmao_core.dir/step_size.cpp.o"
  "CMakeFiles/ftmao_core.dir/step_size.cpp.o.d"
  "CMakeFiles/ftmao_core.dir/theory.cpp.o"
  "CMakeFiles/ftmao_core.dir/theory.cpp.o.d"
  "CMakeFiles/ftmao_core.dir/valid_set.cpp.o"
  "CMakeFiles/ftmao_core.dir/valid_set.cpp.o.d"
  "libftmao_core.a"
  "libftmao_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
