
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admissibility.cpp" "src/core/CMakeFiles/ftmao_core.dir/admissibility.cpp.o" "gcc" "src/core/CMakeFiles/ftmao_core.dir/admissibility.cpp.o.d"
  "/root/repo/src/core/async_sbg.cpp" "src/core/CMakeFiles/ftmao_core.dir/async_sbg.cpp.o" "gcc" "src/core/CMakeFiles/ftmao_core.dir/async_sbg.cpp.o.d"
  "/root/repo/src/core/crash_sbg.cpp" "src/core/CMakeFiles/ftmao_core.dir/crash_sbg.cpp.o" "gcc" "src/core/CMakeFiles/ftmao_core.dir/crash_sbg.cpp.o.d"
  "/root/repo/src/core/sbg.cpp" "src/core/CMakeFiles/ftmao_core.dir/sbg.cpp.o" "gcc" "src/core/CMakeFiles/ftmao_core.dir/sbg.cpp.o.d"
  "/root/repo/src/core/step_size.cpp" "src/core/CMakeFiles/ftmao_core.dir/step_size.cpp.o" "gcc" "src/core/CMakeFiles/ftmao_core.dir/step_size.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/ftmao_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/ftmao_core.dir/theory.cpp.o.d"
  "/root/repo/src/core/valid_set.cpp" "src/core/CMakeFiles/ftmao_core.dir/valid_set.cpp.o" "gcc" "src/core/CMakeFiles/ftmao_core.dir/valid_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftmao_common.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/ftmao_func.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ftmao_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/trim/CMakeFiles/ftmao_trim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ftmao_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ftmao_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
