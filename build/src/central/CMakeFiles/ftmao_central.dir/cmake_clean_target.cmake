file(REMOVE_RECURSE
  "libftmao_central.a"
)
