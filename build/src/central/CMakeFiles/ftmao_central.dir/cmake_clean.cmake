file(REMOVE_RECURSE
  "CMakeFiles/ftmao_central.dir/central_sbg.cpp.o"
  "CMakeFiles/ftmao_central.dir/central_sbg.cpp.o.d"
  "libftmao_central.a"
  "libftmao_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
