# Empty compiler generated dependencies file for ftmao_central.
# This may be replaced when dependencies are built.
