file(REMOVE_RECURSE
  "CMakeFiles/ftmao_common.dir/rng.cpp.o"
  "CMakeFiles/ftmao_common.dir/rng.cpp.o.d"
  "CMakeFiles/ftmao_common.dir/series.cpp.o"
  "CMakeFiles/ftmao_common.dir/series.cpp.o.d"
  "CMakeFiles/ftmao_common.dir/stats.cpp.o"
  "CMakeFiles/ftmao_common.dir/stats.cpp.o.d"
  "CMakeFiles/ftmao_common.dir/table.cpp.o"
  "CMakeFiles/ftmao_common.dir/table.cpp.o.d"
  "CMakeFiles/ftmao_common.dir/thread_pool.cpp.o"
  "CMakeFiles/ftmao_common.dir/thread_pool.cpp.o.d"
  "libftmao_common.a"
  "libftmao_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
