file(REMOVE_RECURSE
  "libftmao_common.a"
)
