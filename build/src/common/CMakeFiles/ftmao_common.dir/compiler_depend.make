# Empty compiler generated dependencies file for ftmao_common.
# This may be replaced when dependencies are built.
