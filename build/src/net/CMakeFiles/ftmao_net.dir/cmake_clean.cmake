file(REMOVE_RECURSE
  "CMakeFiles/ftmao_net.dir/delay.cpp.o"
  "CMakeFiles/ftmao_net.dir/delay.cpp.o.d"
  "libftmao_net.a"
  "libftmao_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftmao_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
