# Empty dependencies file for ftmao_net.
# This may be replaced when dependencies are built.
