file(REMOVE_RECURSE
  "libftmao_net.a"
)
