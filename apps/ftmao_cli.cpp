// Thin entry point for the ftmao experiment driver; all logic lives in
// src/cli so it can be unit tested.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli_app.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return ftmao::cli::run_cli(args, std::cout, std::cerr);
}
