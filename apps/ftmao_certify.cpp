// ftmao_certify — one-command verification barrage for a system size:
// Theorem 2 across ten attacks, Lemma 2 LP witness audits, execution
// invariants, theory-bound domination, and an attack-liveness contrast.
//
//   ftmao_certify --n 7 --f 2           # exit code 0 iff everything holds

#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/result_cache.hpp"
#include "cli/args.hpp"
#include "cli/engine_flags.hpp"
#include "common/table.hpp"
#include "sim/certify.hpp"
#include "simd/simd.hpp"

int main(int argc, char** argv) {
  using namespace ftmao;
  std::vector<cli::FlagSpec> specs = {
      {"n", "total number of agents", "7", false},
      {"f", "fault bound (n > 3f)", "2", false},
      {"rounds", "iterations per run", "4000", false},
      {"seed", "rng seed", "1", false},
      {"spread", "cost-optima layout width", "8", false},
      {"consensus-eps", "final-disagreement acceptance", "0.05", false},
      {"optimality-eps", "final Dist-to-Y acceptance", "0.1", false},
      {"async-n", "agents for the asynchronous section (n > 5f)", "11",
       false},
      {"async-f", "fault bound for the asynchronous section", "2", false},
      {"async-rounds", "async iterations per run (0 = skip the section)",
       "800", false},
      {"async-consensus-eps", "async final-disagreement acceptance", "0.1",
       false},
      {"async-optimality-eps", "async final Dist-to-Y acceptance", "0.3",
       false},
      {"vector-dim", "state dimension for the coordinate-wise vector "
                     "section", "8", false},
      {"vector-rounds", "vector iterations per run (0 = skip the section)",
       "800", false},
      {"vector-consensus-eps", "vector final-disagreement acceptance", "0.1",
       false},
      {"vector-optimality-eps", "vector bounded-drift acceptance (loose on "
                                "purpose: consensus is guaranteed, optimality "
                                "is not)", "10.0", false},
      {"help", "show usage", "false", true},
  };
  cli::append_flags(specs, cli::engine_flag_specs("report", "attacks"));
  cli::append_flags(specs, cli::cache_flag_specs());
  cli::ArgParser parser(std::move(specs));
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (const auto error = parser.parse(args)) {
    std::cerr << "error: " << *error << "\n\nusage:\n" << parser.help_text();
    return 2;
  }
  if (parser.get_bool("help")) {
    std::cout << "ftmao_certify — run the full verification barrage\n\n"
              << parser.help_text();
    return 0;
  }

  try {
    if (!cli::apply_isa_flag(parser, std::cerr)) return 2;
    CertifyOptions options;
    options.n = static_cast<std::size_t>(parser.get_int("n"));
    options.f = static_cast<std::size_t>(parser.get_int("f"));
    options.rounds = static_cast<std::size_t>(parser.get_int("rounds"));
    options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    options.spread = parser.get_double("spread");
    options.consensus_eps = parser.get_double("consensus-eps");
    options.optimality_eps = parser.get_double("optimality-eps");
    options.num_threads = static_cast<std::size_t>(parser.get_int("threads"));
    options.batch_size = static_cast<std::size_t>(parser.get_int("batch"));
    options.scalar_engine = parser.get_bool("scalar");
    options.megabatch = cli::megabatch_flag(parser);
    options.async_n = static_cast<std::size_t>(parser.get_int("async-n"));
    options.async_f = static_cast<std::size_t>(parser.get_int("async-f"));
    options.async_rounds =
        static_cast<std::size_t>(parser.get_int("async-rounds"));
    options.async_consensus_eps = parser.get_double("async-consensus-eps");
    options.async_optimality_eps = parser.get_double("async-optimality-eps");
    options.vector_dim = static_cast<std::size_t>(parser.get_int("vector-dim"));
    options.vector_rounds =
        static_cast<std::size_t>(parser.get_int("vector-rounds"));
    options.vector_consensus_eps = parser.get_double("vector-consensus-eps");
    options.vector_optimality_eps = parser.get_double("vector-optimality-eps");
    const std::unique_ptr<ResultCache> cache = cli::cache_from(parser);
    options.cache = cache.get();

    std::cout << "certifying SBG at n=" << options.n << ", f=" << options.f
              << " over 10 attacks, " << options.rounds << " rounds...\n\n";
    const CertificationReport report = certify_sbg(options);
    if (cache != nullptr)
      std::cerr << "ftmao_certify: " << cache_stats_line(cache->stats())
                << "\n";

    Table table({"check", "result", "detail"});
    for (const auto& check : report.checks) {
      table.row()
          .add(check.name)
          .add(check.passed ? "PASS" : "FAIL")
          .add(check.detail);
    }
    table.print(std::cout);
    std::cout << "\n" << (report.passed ? "CERTIFIED" : "FAILED") << "\n";
    return report.passed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
