// ftmao_sweep — grid evaluation tool: runs SBG over a cartesian grid of
// system sizes, attacks, and seeds, and emits an aggregate CSV. The quick
// way to regenerate robustness tables for a new cost family or schedule.
//
//   ftmao_sweep --sizes 7:2,10:3,13:4 --attacks split-brain,sign-flip \
//               --seeds 5 --rounds 4000 [--csv]
//
// Shard-worker mode: --shard-index i --shard-count K runs only the cells
// the stable partition (sim/shard.hpp) assigns to shard i, and --out /
// --manifest write the per-shard CSV and JSON manifest the merge stage
// (ftmao_shardsweep) verifies and recombines. The merged K-shard CSV is
// byte-identical to the single-process run.

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/result_cache.hpp"
#include "cli/args.hpp"
#include "cli/engine_flags.hpp"
#include "common/table.hpp"
#include "sim/scenario_io.hpp"
#include "sim/shard.hpp"
#include "sim/sweep.hpp"
#include "simd/simd.hpp"

namespace {

using namespace ftmao;

SweepConfig config_from(const cli::ArgParser& parser) {
  SweepConfig config;
  config.sizes = parse_sizes(parser.get("sizes"));
  config.dims = parse_dims(parser.get("dim"));
  config.attacks = parse_attacks(parser.get("attacks"));
  const auto seed_count = static_cast<std::uint64_t>(parser.get_int("seeds"));
  for (std::uint64_t s = 1; s <= seed_count; ++s) config.seeds.push_back(s);
  config.rounds = static_cast<std::size_t>(parser.get_int("rounds"));
  config.spread = parser.get_double("spread");
  config.step.kind = parse_step_kind(parser.get("step"));
  config.step.scale = parser.get_double("step-scale");
  config.step.exponent = parser.get_double("step-exp");
  config.num_threads = static_cast<std::size_t>(parser.get_int("threads"));
  config.batch_size = static_cast<std::size_t>(parser.get_int("batch"));
  config.scalar_engine = parser.get_bool("scalar");
  config.megabatch = cli::megabatch_flag(parser);
  const std::string engine = parser.get("engine");
  if (engine == "async") {
    config.async_engine = true;
    config.delay_kind = parse_delay_kind(parser.get("delay"));
    config.delay_lo = parser.get_double("delay-lo");
    config.delay_hi = parser.get_double("delay-hi");
  } else if (engine != "sync") {
    throw ContractViolation("unknown engine '" + engine +
                            "' (expected sync|async)");
  }
  return config;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ContractViolation("cannot open '" + path + "' for writing");
  os << text;
  if (!os.flush()) throw ContractViolation("write to '" + path + "' failed");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftmao;
  std::vector<cli::FlagSpec> specs = {
      {"sizes", "comma list of n:f pairs", "7:2,10:3,13:4", false},
      {"dim", "comma list of state dimensions (1 = scalar SBG; d >= 2 runs "
              "the coordinate-wise vector engine)", "1", false},
      {"attacks", "comma list of attack names", "split-brain,sign-flip,pull",
       false},
      {"seeds", "number of seeds per cell (1..k)", "3", false},
      {"rounds", "iterations per run", "4000", false},
      {"spread", "cost-optima layout width", "8", false},
      {"step", "harmonic | power | constant", "harmonic", false},
      {"step-scale", "step size scale", "1", false},
      {"step-exp", "exponent for --step power", "0.75", false},
      {"engine", "sync | async (event-driven rounds, requires n > 5f)",
       "sync", false},
      {"delay", "async delay model: fixed | uniform | targeted-slow",
       "uniform", false},
      {"delay-lo", "async delay lower bound (fixed delay value)", "0.5",
       false},
      {"delay-hi", "async delay upper bound (uniform model)", "1.5", false},
      {"shard-index", "run only this shard of the grid (< --shard-count)",
       "0", false},
      {"shard-count", "number of disjoint shards the grid is split into",
       "1", false},
      {"out", "write the CSV to this file instead of stdout", "", false},
      {"manifest", "write a shard manifest JSON to this file", "", false},
      {"inject-fail", "exit 7 before running (orchestrator retry testing)",
       "false", true},
      {"csv", "emit CSV instead of the table", "false", true},
      {"help", "show usage", "false", true},
  };
  cli::append_flags(specs, cli::engine_flag_specs("output", "seeds"));
  cli::append_flags(specs, cli::cache_flag_specs());
  cli::ArgParser parser(std::move(specs));
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (const auto error = parser.parse(args)) {
    std::cerr << "error: " << *error << "\n\nusage:\n" << parser.help_text();
    return 2;
  }
  if (parser.get_bool("help")) {
    std::cout << "ftmao_sweep — grid evaluation over sizes x attacks x seeds\n\n"
              << parser.help_text();
    return 0;
  }

  try {
    if (!cli::apply_isa_flag(parser, std::cerr)) return 2;
    if (parser.get_bool("inject-fail")) {
      std::cerr << "ftmao_sweep: --inject-fail — exiting before the run\n";
      return 7;
    }
    SweepConfig config = config_from(parser);
    const std::unique_ptr<ResultCache> cache = cli::cache_from(parser);
    config.cache = cache.get();
    const auto shard_index =
        static_cast<std::size_t>(parser.get_int("shard-index"));
    const auto shard_count =
        static_cast<std::size_t>(parser.get_int("shard-count"));
    if (shard_count < 1 || shard_index >= shard_count) {
      std::cerr << "error: need 0 <= --shard-index < --shard-count\n";
      return 2;
    }
    // Shard manifests do not (yet) record the async-engine knobs, so a
    // merge could silently combine shards run under different engines;
    // refuse the combination instead.
    if (config.async_engine &&
        (shard_count > 1 || !parser.get("manifest").empty())) {
      std::cerr << "error: --engine async does not support sharding "
                   "(--shard-count > 1 / --manifest)\n";
      return 2;
    }

    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepCell> cells =
        run_sweep_shard(config, shard_index, shard_count);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Counters go to stderr so --csv stdout stays byte-identical with and
    // without a cache (and cold vs warm).
    if (cache != nullptr)
      std::cerr << "ftmao_sweep: " << cache_stats_line(cache->stats()) << "\n";

    const std::string out_path = parser.get("out");
    if (!out_path.empty()) {
      write_file(out_path, sweep_to_csv(cells));
    } else if (parser.get_bool("csv")) {
      std::cout << sweep_to_csv(cells);
    } else {
      Table table({"n", "f", "dim", "attack", "disagr median", "disagr max",
                   "dist median", "dist max"});
      for (const SweepCell& c : cells) {
        table.row()
            .add(c.n)
            .add(c.f)
            .add(c.dim)
            .add(attack_kind_name(c.attack))
            .add(c.disagreement.median, 4)
            .add(c.disagreement.max, 4)
            .add(c.dist_to_y.median, 4)
            .add(c.dist_to_y.max, 4);
      }
      table.print(std::cout);
    }

    const std::string manifest_path = parser.get("manifest");
    if (!manifest_path.empty()) {
      ShardManifest manifest =
          make_shard_manifest(config, shard_index, shard_count);
      manifest.isa = simd_isa_name(simd_active());
      manifest.wall_ms = wall_ms;
      write_file(manifest_path, manifest_to_json(manifest));
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
