// ftmao_shardsweep — multi-process sweep orchestrator: splits the grid
// into K disjoint shards (sim/shard.hpp's stable partition), spawns one
// ftmao_sweep worker subprocess per shard, babysits them (per-shard
// timeout, bounded retries with jittered backoff — fabric/backoff.hpp,
// shared with the multi-node fabric), and recombines the
// per-shard CSVs through the verifying merge stage (sim/shard_merge.hpp).
//
//   ftmao_shardsweep --shards 4 --out merged.csv --workdir shards/
//
// Worker failures degrade gracefully: a shard that keeps failing is
// reported (and its cells listed as missing) instead of aborting the
// grid; everything that did arrive is still merged, in canonical order,
// byte-identical to the rows a single-process run would have produced.
// Exit status: 0 = complete merge, 3 = degraded (unrecoverable shards or
// merge inconsistencies), 2 = usage/setup error.
//
// This mirrors the paper's fault model one level up: Su & Vaidya's SBG
// tolerates f Byzantine agents out of n > 3f by redundancy and trimming;
// the sweep survives crashed or wedged workers by re-execution and a
// merge that cross-checks any overlapping work bit-for-bit.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/engine_flags.hpp"
#include "fabric/backoff.hpp"
#include "sim/shard.hpp"
#include "sim/shard_merge.hpp"
#include "simd/simd.hpp"

namespace {

using namespace ftmao;
using Clock = std::chrono::steady_clock;

struct ShardJob {
  enum class State { Pending, Running, Done, Failed };

  std::size_t index = 0;
  State state = State::Pending;
  int attempts = 0;         ///< attempts started so far
  pid_t pid = -1;
  Clock::time_point started;
  Clock::time_point eligible;  ///< earliest next spawn (backoff)
  std::string last_error;
};

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ContractViolation("cannot read '" + path + "'");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string shard_csv_path(const std::string& workdir, std::size_t i) {
  return workdir + "/shard_" + std::to_string(i) + ".csv";
}

std::string shard_manifest_path(const std::string& workdir, std::size_t i) {
  return workdir + "/shard_" + std::to_string(i) + ".json";
}

/// Sibling ftmao_sweep next to this binary; bare name as a fallback.
std::string default_worker_path(const char* argv0) {
  const std::filesystem::path self(argv0);
  if (self.has_parent_path())
    return (self.parent_path() / "ftmao_sweep").string();
  return "ftmao_sweep";
}

pid_t spawn_worker(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    execv(argv[0], argv.data());
    // Only reached when exec itself failed (bad worker path).
    std::cerr << "shardsweep: exec '" << args[0] << "' failed: "
              << std::strerror(errno) << "\n";
    _exit(127);
  }
  return pid;  // -1 on fork failure
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftmao;
  std::vector<cli::FlagSpec> specs = {
      {"sizes", "comma list of n:f pairs", "7:2,10:3,13:4", false},
      {"dim", "comma list of state dimensions (1 = scalar SBG; d >= 2 runs "
              "the coordinate-wise vector engine)", "1", false},
      {"attacks", "comma list of attack names", "split-brain,sign-flip,pull",
       false},
      {"seeds", "number of seeds per cell (1..k)", "3", false},
      {"rounds", "iterations per run", "4000", false},
      {"spread", "cost-optima layout width", "8", false},
      {"step", "harmonic | power | constant", "harmonic", false},
      {"step-scale", "step size scale", "1", false},
      {"step-exp", "exponent for --step power", "0.75", false},
      {"shards", "number of worker processes to split the grid across", "4",
       false},
      {"parallel", "max concurrent workers (0 = all shards at once)", "0",
       false},
      {"worker", "path to the ftmao_sweep worker binary (default: sibling "
                 "of this binary)", "", false},
      {"workdir", "directory for per-shard CSVs and manifests",
       ".ftmao_shards", false},
      {"timeout-sec", "per-attempt wall-clock limit before the worker is "
                      "killed", "300", false},
      {"retries", "re-execution budget per shard after a failed/timed-out "
                  "attempt", "2", false},
      {"backoff-ms", "retry k waits k * this + deterministic per-shard "
                     "jitter in [0, this)", "200", false},
      {"inject-fail-shard", "force the first attempt of this shard to fail "
                            "(retry-path testing); -1 = off", "-1", false},
      {"merge-only", "skip spawning; verify and merge existing workdir "
                     "artifacts", "false", true},
      {"out", "write the merged CSV to this file instead of stdout", "",
       false},
      {"help", "show usage", "false", true},
  };
  cli::append_flags(specs, cli::engine_flag_specs("merged output", "seeds"));
  cli::append_flags(specs, cli::cache_flag_specs());
  cli::ArgParser parser(std::move(specs));
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (const auto error = parser.parse(args)) {
    std::cerr << "error: " << *error << "\n\nusage:\n" << parser.help_text();
    return 2;
  }
  if (parser.get_bool("help")) {
    std::cout << "ftmao_shardsweep — crash-tolerant multi-process sweep "
                 "orchestrator\n\n"
              << parser.help_text();
    return 0;
  }

  try {
    const auto shards = static_cast<std::size_t>(parser.get_int("shards"));
    if (shards < 1) {
      std::cerr << "error: --shards must be >= 1\n";
      return 2;
    }
    const std::string workdir = parser.get("workdir");
    const long inject_fail_shard = parser.get_int("inject-fail-shard");
    const int retries = static_cast<int>(parser.get_int("retries"));
    const auto timeout = std::chrono::duration<double>(
        parser.get_double("timeout-sec"));
    fabric::BackoffPolicy backoff;
    backoff.base_ms = parser.get_int("backoff-ms");
    std::size_t parallel = static_cast<std::size_t>(parser.get_int("parallel"));
    if (parallel == 0) parallel = shards;

    std::vector<ShardJob> jobs(shards);
    for (std::size_t i = 0; i < shards; ++i) jobs[i].index = i;

    if (!parser.get_bool("merge-only")) {
      std::filesystem::create_directories(workdir);
      std::string worker = parser.get("worker");
      if (worker.empty()) worker = default_worker_path(argv[0]);

      // Flags forwarded verbatim: every worker must see the same grid so
      // every worker computes the same partition. Forwarding --cache-dir
      // warm-starts shards from a prior run's cache (each worker serves
      // its cells from the shared directory before simulating).
      const std::vector<std::string> pass_through = {
          "sizes", "dim", "attacks",    "seeds", "rounds",   "spread", "step",
          "step-scale", "step-exp", "threads", "batch", "isa", "megabatch",
          "cache-dir", "cache-mem-mb"};

      auto worker_args = [&](const ShardJob& job) {
        std::vector<std::string> wargs = {worker};
        for (const std::string& flag : pass_through) {
          wargs.push_back("--" + flag);
          wargs.push_back(parser.get(flag));
        }
        if (parser.get_bool("scalar")) wargs.push_back("--scalar");
        wargs.push_back("--shard-index");
        wargs.push_back(std::to_string(job.index));
        wargs.push_back("--shard-count");
        wargs.push_back(std::to_string(shards));
        wargs.push_back("--out");
        wargs.push_back(shard_csv_path(workdir, job.index));
        wargs.push_back("--manifest");
        wargs.push_back(shard_manifest_path(workdir, job.index));
        // attempts is already incremented for the attempt being spawned,
        // so the first attempt sees attempts == 1.
        if (inject_fail_shard >= 0 &&
            job.index == static_cast<std::size_t>(inject_fail_shard) &&
            job.attempts == 1)
          wargs.push_back("--inject-fail");
        return wargs;
      };

      auto fail_attempt = [&](ShardJob& job, const std::string& why) {
        job.state = ShardJob::State::Pending;
        job.pid = -1;
        job.last_error = why;
        if (job.attempts > retries) {
          job.state = ShardJob::State::Failed;
          std::cerr << "shardsweep: shard " << job.index
                    << " unrecoverable after " << job.attempts
                    << " attempts (" << why << ")\n";
        } else {
          const auto delay = std::chrono::milliseconds(fabric::retry_delay_ms(
              backoff, fabric::shard_backoff_seed(job.index), job.attempts));
          job.eligible = Clock::now() + delay;
          std::cerr << "shardsweep: shard " << job.index << " attempt "
                    << job.attempts << "/" << (retries + 1) << " failed ("
                    << why << ") — retrying in " << delay.count() << " ms\n";
        }
      };

      bool work_left = true;
      while (work_left) {
        work_left = false;
        std::size_t running = 0;
        for (const ShardJob& job : jobs)
          if (job.state == ShardJob::State::Running) ++running;

        for (ShardJob& job : jobs) {
          if (job.state == ShardJob::State::Pending && running < parallel &&
              Clock::now() >= job.eligible) {
            ++job.attempts;
            const pid_t pid = spawn_worker(worker_args(job));
            if (pid < 0) {
              fail_attempt(job, "fork failed");
              continue;
            }
            job.pid = pid;
            job.started = Clock::now();
            job.state = ShardJob::State::Running;
            ++running;
          }
        }

        for (ShardJob& job : jobs) {
          if (job.state == ShardJob::State::Running) {
            int status = 0;
            const pid_t r = waitpid(job.pid, &status, WNOHANG);
            if (r == 0) {
              if (Clock::now() - job.started > timeout) {
                kill(job.pid, SIGKILL);
                waitpid(job.pid, &status, 0);
                fail_attempt(job, "timed out");
              }
            } else if (r == job.pid) {
              if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                job.state = ShardJob::State::Done;
                std::cerr << "shardsweep: shard " << job.index << " done ("
                          << "attempt " << job.attempts << ")\n";
              } else {
                std::ostringstream why;
                if (WIFEXITED(status))
                  why << "exit status " << WEXITSTATUS(status);
                else if (WIFSIGNALED(status))
                  why << "killed by signal " << WTERMSIG(status);
                else
                  why << "unknown wait status";
                fail_attempt(job, why.str());
              }
            } else {
              fail_attempt(job, "waitpid failed");
            }
          }
          if (job.state == ShardJob::State::Pending ||
              job.state == ShardJob::State::Running)
            work_left = true;
        }
        if (work_left)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }

    // Merge every shard whose artifacts exist and parse — in merge-only
    // mode that is whatever a previous (possibly partial) run left behind.
    std::vector<ShardArtifact> artifacts;
    std::vector<std::string> artifact_errors;
    for (const ShardJob& job : jobs) {
      if (!parser.get_bool("merge-only") &&
          job.state != ShardJob::State::Done)
        continue;
      const std::string csv_path = shard_csv_path(workdir, job.index);
      const std::string manifest_path =
          shard_manifest_path(workdir, job.index);
      if (!std::filesystem::exists(csv_path) ||
          !std::filesystem::exists(manifest_path)) {
        if (!parser.get_bool("merge-only"))
          artifact_errors.push_back("shard " + std::to_string(job.index) +
                                    ": worker exited 0 but artifacts are "
                                    "missing");
        continue;
      }
      try {
        ShardArtifact artifact;
        artifact.manifest = manifest_from_json(read_file(manifest_path));
        artifact.csv = read_file(csv_path);
        artifacts.push_back(std::move(artifact));
      } catch (const std::exception& e) {
        artifact_errors.push_back("shard " + std::to_string(job.index) +
                                  ": unreadable artifacts: " + e.what());
      }
    }

    MergeReport report = merge_shards(artifacts);
    report.errors.insert(report.errors.end(), artifact_errors.begin(),
                         artifact_errors.end());

    const std::string out_path = parser.get("out");
    if (!out_path.empty()) {
      std::ofstream os(out_path, std::ios::binary);
      if (!os) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
      }
      os << report.csv;
    } else {
      std::cout << report.csv;
    }

    std::cerr << "shardsweep: merged " << report.merged_cells << "/"
              << report.expected_cells << " cells from " << artifacts.size()
              << " shard artifact(s)\n";
    for (const std::string& error : report.errors)
      std::cerr << "shardsweep: error: " << error << "\n";
    if (!report.missing_cells.empty()) {
      std::cerr << "shardsweep: missing cells:";
      for (const std::string& key : report.missing_cells)
        std::cerr << ' ' << key;
      std::cerr << "\n";
    }
    return report.ok() ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
