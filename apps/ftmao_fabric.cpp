// ftmao_fabric — multi-node sweep fabric driver. Where ftmao_shardsweep
// spawns all its workers itself, the fabric inverts control: any number
// of independent worker processes — on one machine or on separate CI
// runners exchanging the fabric directory as an artifact — coordinate
// purely through atomic lease files (src/fabric/lease.hpp) and a
// first-wins completion protocol, stealing work from stale leases, and a
// final verifying merge reproduces the single-process sweep CSV
// byte-for-byte.
//
//   ftmao_fabric --mode init  --fabric-dir fab --shards 8 [grid flags]
//   ftmao_fabric --mode work  --fabric-dir fab --worker-id w0 &
//   ftmao_fabric --mode work  --fabric-dir fab --worker-id w1 &
//   wait
//   ftmao_fabric --mode merge --fabric-dir fab --out merged.csv
//
// Modes:
//   init    pin the grid (idempotent for an identical grid)
//   work    claim/steal shards and run them via `ftmao_sweep --shard-index`
//   claim   probe-claim one shard and exit (protocol testing): 0 =
//           claimed (lease left in place), 4 = refused (live holder or
//           already completed)
//   status  print the lease/completion table
//   merge   audit completion records + order-free verifying merge
//
// Exit status: 0 = success, 3 = degraded (incomplete work / merge
// inconsistencies), 4 = claim refused, 2 = usage/setup error.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/engine_flags.hpp"
#include "fabric/fabric.hpp"
#include "sim/scenario_io.hpp"
#include "simd/simd.hpp"

namespace {

using namespace ftmao;

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

SweepConfig grid_config_from(const cli::ArgParser& parser) {
  SweepConfig config;
  config.sizes = parse_sizes(parser.get("sizes"));
  config.dims = parse_dims(parser.get("dim"));
  config.attacks = parse_attacks(parser.get("attacks"));
  const auto seed_count = static_cast<std::uint64_t>(parser.get_int("seeds"));
  for (std::uint64_t s = 1; s <= seed_count; ++s) config.seeds.push_back(s);
  config.rounds = static_cast<std::size_t>(parser.get_int("rounds"));
  config.spread = parser.get_double("spread");
  config.step.kind = parse_step_kind(parser.get("step"));
  config.step.scale = parser.get_double("step-scale");
  config.step.exponent = parser.get_double("step-exp");
  return config;
}

std::string default_worker_path(const char* argv0) {
  const std::filesystem::path self(argv0);
  if (self.has_parent_path())
    return (self.parent_path() / "ftmao_sweep").string();
  return "ftmao_sweep";
}

pid_t spawn_worker(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv(argv[0], argv.data());
    std::cerr << "fabric: exec '" << args[0]
              << "' failed: " << std::strerror(errno) << "\n";
    _exit(127);
  }
  return pid;  // -1 on fork failure
}

/// The subprocess shard runner: `ftmao_sweep --shard-index` with the
/// fabric grid and the operator's engine/cache knobs, killed past the
/// per-attempt timeout. Lease heartbeats run on the fabric worker's side
/// thread, so a slow shard never looks stale while this blocks.
fabric::ShardRunner make_subprocess_runner(const cli::ArgParser& parser,
                                           const std::string& worker_bin,
                                           long inject_fail_shard) {
  // Spawn counter per shard: --inject-fail is forwarded only on the first
  // attempt, so the worker's own jittered retry recovers.
  auto spawns = std::make_shared<std::map<std::size_t, int>>();
  const double timeout_sec = parser.get_double("timeout-sec");
  std::vector<std::string> engine_args;
  for (const std::string& flag :
       {std::string("threads"), std::string("batch"), std::string("isa"),
        std::string("cache-dir"), std::string("cache-mem-mb")}) {
    engine_args.push_back("--" + flag);
    engine_args.push_back(parser.get(flag));
  }
  if (parser.get_bool("scalar")) engine_args.push_back("--scalar");

  return [=](const SweepConfig& config, std::size_t shard,
             std::size_t shard_count, const std::string& csv_scratch,
             const std::string& manifest_scratch) -> int {
    std::vector<std::string> args = {worker_bin,
                                     "--sizes",
                                     format_sizes(config.sizes),
                                     "--dim",
                                     format_dims(config.dims),
                                     "--attacks",
                                     format_attacks(config.attacks),
                                     "--seeds",
                                     std::to_string(config.seeds.size()),
                                     "--rounds",
                                     std::to_string(config.rounds),
                                     "--spread",
                                     format_double(config.spread),
                                     "--step",
                                     step_kind_name(config.step.kind),
                                     "--step-scale",
                                     format_double(config.step.scale),
                                     "--step-exp",
                                     format_double(config.step.exponent),
                                     "--shard-index",
                                     std::to_string(shard),
                                     "--shard-count",
                                     std::to_string(shard_count),
                                     "--out",
                                     csv_scratch,
                                     "--manifest",
                                     manifest_scratch};
    args.insert(args.end(), engine_args.begin(), engine_args.end());
    const int spawn_count = ++(*spawns)[shard];
    if (inject_fail_shard >= 0 &&
        shard == static_cast<std::size_t>(inject_fail_shard) &&
        spawn_count == 1)
      args.push_back("--inject-fail");

    const pid_t pid = spawn_worker(args);
    if (pid < 0) return -1;
    const auto started = std::chrono::steady_clock::now();
    const auto timeout = std::chrono::duration<double>(timeout_sec);
    while (true) {
      int status = 0;
      const pid_t r = waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        if (WIFEXITED(status)) return WEXITSTATUS(status);
        if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
        return -1;
      }
      if (r != 0) return -1;  // waitpid failed
      if (std::chrono::steady_clock::now() - started > timeout) {
        kill(pid, SIGKILL);
        waitpid(pid, &status, 0);
        return 124;  // timeout, in coreutils convention
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };
}

int run_claim_probe(fabric::LeaseDir& dir, std::size_t shard,
                    const std::string& worker_id, std::uint64_t ttl_ms) {
  const fabric::FabricGrid grid = dir.load_grid();
  if (shard >= grid.shard_count) {
    std::cerr << "error: --claim-shard " << shard << " >= --shards "
              << grid.shard_count << "\n";
    return 2;
  }
  if (dir.completed(shard)) {
    std::cout << "refused: shard " << shard << " is already completed\n";
    return 4;
  }
  const auto current = dir.current_lease(shard);
  const std::uint64_t now_ms = fabric::wall_clock_ms();
  fabric::ShardLease lease;
  lease.shard_index = shard;
  lease.shard_count = grid.shard_count;
  lease.attempt = 1;
  if (current) {
    if (!fabric::lease_expired(*current, now_ms, ttl_ms)) {
      std::cout << "refused: shard " << shard << " is leased by '"
                << current->worker_id << "' (attempt " << current->attempt
                << ", heartbeat "
                << (now_ms - std::min(now_ms, current->heartbeat_ms))
                << " ms old)\n";
      return 4;
    }
    lease.attempt = current->attempt + 1;
  }
  lease.worker_id = worker_id;
  lease.git_rev = build_git_revision();
  lease.isa = simd_isa_name(simd_active());
  lease.heartbeat_ms = now_ms;
  if (!dir.try_claim(lease)) {
    std::cout << "refused: lost the claim race for shard " << shard << "\n";
    return 4;
  }
  std::cout << "claimed: shard " << shard << " attempt " << lease.attempt
            << " as '" << worker_id << "'\n";
  return 0;
}

void print_status(fabric::LeaseDir& dir) {
  const fabric::FabricGrid grid = dir.load_grid();
  std::vector<std::string> errors;
  std::map<std::size_t, fabric::CompletionRecord> done;
  for (const fabric::CompletionRecord& r : dir.completions(errors))
    done.emplace(r.shard_index, r);
  const std::uint64_t now_ms = fabric::wall_clock_ms();
  std::cout << "fabric " << dir.root() << ": " << grid.shard_count
            << " shards, grid sizes=" << grid.sizes
            << " attacks=" << grid.attacks << " dims=" << grid.dims
            << " seeds=" << grid.seeds << " rounds=" << grid.rounds
            << " rev=" << grid.git_rev << "\n";
  for (std::size_t i = 0; i < grid.shard_count; ++i) {
    std::cout << "  shard " << i << ": ";
    if (const auto it = done.find(i); it != done.end()) {
      std::cout << "done by '" << it->second.worker_id << "' (attempt "
                << it->second.attempt << ", " << it->second.wall_ms
                << " ms, isa " << it->second.isa << ")";
    } else if (const auto lease = dir.current_lease(i)) {
      std::cout << "leased by '" << lease->worker_id << "' (attempt "
                << lease->attempt << ", heartbeat "
                << (now_ms - std::min(now_ms, lease->heartbeat_ms))
                << " ms old)";
    } else {
      std::cout << "unclaimed";
    }
    std::cout << "\n";
  }
  for (const std::string& error : errors)
    std::cout << "  error: " << error << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftmao;
  std::vector<cli::FlagSpec> specs = {
      {"mode", "init | work | claim | status | merge", "work", false},
      {"fabric-dir", "shared fabric directory (leases, results, grid pin)",
       ".ftmao_fabric", false},
      {"sizes", "comma list of n:f pairs (init)", "7:2,10:3,13:4", false},
      {"dim", "comma list of state dimensions (init)", "1", false},
      {"attacks", "comma list of attack names (init)",
       "split-brain,sign-flip,pull", false},
      {"seeds", "number of seeds per cell (1..k) (init)", "3", false},
      {"rounds", "iterations per run (init)", "4000", false},
      {"spread", "cost-optima layout width (init)", "8", false},
      {"step", "harmonic | power | constant (init)", "harmonic", false},
      {"step-scale", "step size scale (init)", "1", false},
      {"step-exp", "exponent for --step power (init)", "0.75", false},
      {"shards", "number of disjoint shards the grid is split into (init)",
       "8", false},
      {"worker-id", "unique id recorded in leases and completion records "
                    "(default: w<pid>)", "", false},
      {"worker", "path to the ftmao_sweep worker binary (default: sibling "
                 "of this binary)", "", false},
      {"lease-ttl-ms", "heartbeat age after which a lease counts as stale "
                       "and its shard may be stolen", "60000", false},
      {"timeout-sec", "per-attempt wall-clock limit before the sweep "
                      "subprocess is killed", "300", false},
      {"retries", "re-execution budget per shard after a failed/timed-out "
                  "attempt (worker-local, same lease)", "2", false},
      {"backoff-ms", "retry k waits k * this + deterministic per-shard "
                     "jitter in [0, this)", "200", false},
      {"wait-all", "keep polling (and stealing stragglers) until every "
                   "shard is completed", "false", true},
      {"max-wall-sec", "overall deadline for --wait-all (0 = none)", "0",
       false},
      {"fleet-index", "claim only shards with index %% --fleet-size == "
                      "this (CI matrix slice); -1 = claim anything", "-1",
       false},
      {"fleet-size", "number of fleet slices (0 = slicing off)", "0", false},
      {"inject-die-shard", "raise SIGKILL right after claiming this shard "
                           "(stale-lease/work-stealing testing); -1 = off",
       "-1", false},
      {"inject-fail-shard", "forward --inject-fail to the first sweep "
                            "attempt of this shard (retry-path testing); "
                            "-1 = off", "-1", false},
      {"claim-shard", "shard index for --mode claim", "-1", false},
      {"allow-isa-mix", "merge completion records from different SIMD "
                        "backends (heterogeneous fleets)", "false", true},
      {"out", "write the merged CSV to this file instead of stdout", "",
       false},
      {"help", "show usage", "false", true},
  };
  cli::append_flags(specs, cli::engine_flag_specs("merged output", "seeds"));
  cli::append_flags(specs, cli::cache_flag_specs());
  cli::ArgParser parser(std::move(specs));
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (const auto error = parser.parse(args)) {
    std::cerr << "error: " << *error << "\n\nusage:\n" << parser.help_text();
    return 2;
  }
  if (parser.get_bool("help")) {
    std::cout << "ftmao_fabric — multi-node sweep fabric (lease directory + "
                 "work-stealing workers + verifying merge)\n\n"
              << parser.help_text();
    return 0;
  }

  try {
    if (!cli::apply_isa_flag(parser, std::cerr)) return 2;
    const std::string mode = parser.get("mode");
    fabric::LeaseDir dir(parser.get("fabric-dir"));
    std::string worker_id = parser.get("worker-id");
    if (worker_id.empty()) worker_id = "w" + std::to_string(getpid());
    const auto ttl_ms =
        static_cast<std::uint64_t>(parser.get_int("lease-ttl-ms"));

    if (mode == "init") {
      const SweepConfig config = grid_config_from(parser);
      config.validate();
      const auto shards = static_cast<std::size_t>(parser.get_int("shards"));
      if (shards < 1) {
        std::cerr << "error: --shards must be >= 1\n";
        return 2;
      }
      dir.init(fabric::make_fabric_grid(config, shards));
      std::cerr << "fabric: initialized '" << dir.root() << "' with "
                << shards << " shards\n";
      return 0;
    }
    if (mode == "claim") {
      const long shard = parser.get_int("claim-shard");
      if (shard < 0) {
        std::cerr << "error: --mode claim needs --claim-shard\n";
        return 2;
      }
      return run_claim_probe(dir, static_cast<std::size_t>(shard), worker_id,
                             ttl_ms);
    }
    if (mode == "status") {
      print_status(dir);
      return 0;
    }
    if (mode == "merge") {
      fabric::FabricMergeOptions options;
      options.fabric_dir = dir.root();
      options.allow_isa_mix = parser.get_bool("allow-isa-mix");
      const fabric::FabricMergeReport report = fabric::collect_and_merge(options);

      const std::string out_path = parser.get("out");
      if (!out_path.empty()) {
        std::ofstream os(out_path, std::ios::binary);
        if (!os) {
          std::cerr << "error: cannot open '" << out_path
                    << "' for writing\n";
          return 2;
        }
        os << report.merge.csv;
      } else {
        std::cout << report.merge.csv;
      }
      std::cerr << "fabric: merged " << report.merge.merged_cells << "/"
                << report.merge.expected_cells << " cells from "
                << report.completions.size() << " completed shard(s)\n";
      for (const std::string& error : report.errors)
        std::cerr << "fabric: error: " << error << "\n";
      for (const std::string& error : report.merge.errors)
        std::cerr << "fabric: merge error: " << error << "\n";
      if (!report.merge.missing_cells.empty()) {
        std::cerr << "fabric: missing cells:";
        for (const std::string& key : report.merge.missing_cells)
          std::cerr << ' ' << key;
        std::cerr << "\n";
      }
      return report.ok() ? 0 : 3;
    }
    if (mode != "work") {
      std::cerr << "error: unknown --mode '" << mode
                << "' (init | work | claim | status | merge)\n";
      return 2;
    }

    std::string worker_bin = parser.get("worker");
    if (worker_bin.empty()) worker_bin = default_worker_path(argv[0]);

    fabric::WorkerOptions options;
    options.fabric_dir = dir.root();
    options.worker_id = worker_id;
    options.runner = make_subprocess_runner(
        parser, worker_bin, parser.get_int("inject-fail-shard"));
    options.lease_ttl_ms = ttl_ms;
    options.retries = static_cast<int>(parser.get_int("retries"));
    options.backoff.base_ms = parser.get_int("backoff-ms");
    options.fleet_index = parser.get_int("fleet-index");
    options.fleet_size = parser.get_int("fleet-size");
    options.wait_all = parser.get_bool("wait-all");
    options.max_wall_sec = parser.get_double("max-wall-sec");
    options.inject_die_shard = parser.get_int("inject-die-shard");
    options.log = &std::cerr;

    const fabric::WorkerReport report = fabric::run_fabric_worker(options);
    std::cerr << "fabric: worker '" << worker_id << "' claimed "
              << report.claimed << " lease(s) (" << report.stolen
              << " stolen), completed " << report.completed << " shard(s); "
              << (report.all_done ? "grid complete"
                                  : "grid still incomplete")
              << "\n";
    for (const std::string& error : report.errors)
      std::cerr << "fabric: error: " << error << "\n";
    return report.ok(options.wait_all) ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
