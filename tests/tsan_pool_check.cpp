// Race check for the thread pool, compiled with -fsanitize=thread as a
// standalone binary (ctest label "tsan"). It is built from the pool's
// source directly so the synchronization under test is fully instrumented
// — linking an uninstrumented libftmao_common would blind the sanitizer
// (and risk false positives at the boundary). gtest is deliberately not
// used for the same reason.
//
// Exercises the patterns the grid drivers rely on: many tasks writing to
// disjoint slots, repeated wait cycles, exception propagation, and
// destructor drain. Exit code 0 = no data races reported (tsan aborts the
// process on a report by default).

#include <atomic>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

int main() {
  using ftmao::ThreadPool;
  using ftmao::parallel_for_each;

  // Disjoint-slot writes, the sweep engine's access pattern.
  {
    ThreadPool pool(4);
    std::vector<double> out(512, 0.0);
    for (int cycle = 0; cycle < 10; ++cycle) {
      parallel_for_each(pool, out.size(),
                        [&out](std::size_t i) { out[i] += static_cast<double>(i); });
    }
    const double sum = std::accumulate(out.begin(), out.end(), 0.0);
    const double want = 10.0 * (511.0 * 512.0 / 2.0);
    if (sum != want) {
      std::fprintf(stderr, "slot sum mismatch: %f != %f\n", sum, want);
      return 1;
    }
  }

  // Exception propagation across threads.
  {
    ThreadPool pool(4);
    bool threw = false;
    try {
      parallel_for_each(pool, 64, [](std::size_t i) {
        if (i == 17) throw std::runtime_error("expected");
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    if (!threw) {
      std::fprintf(stderr, "exception was not propagated\n");
      return 1;
    }
  }

  // Destructor drain with no wait().
  {
    std::atomic<int> counter{0};
    {
      ThreadPool pool(3);
      for (int i = 0; i < 200; ++i) pool.submit([&counter] { ++counter; });
    }
    if (counter.load() != 200) {
      std::fprintf(stderr, "destructor dropped tasks: %d\n", counter.load());
      return 1;
    }
  }

  std::puts("tsan_pool_check: ok");
  return 0;
}
