// Unit tests for src/common: contracts, ids, intervals, rng, series, table.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"
#include "common/series.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace ftmao {
namespace {

// ------------------------------------------------------------- contracts

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(FTMAO_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(FTMAO_EXPECTS(1 == 1));
}

TEST(Contracts, EnsuresThrowsOnViolation) {
  EXPECT_THROW(FTMAO_ENSURES(false), ContractViolation);
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
  try {
    FTMAO_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

// ----------------------------------------------------------------- types

TEST(Types, AgentIdComparesByValue) {
  EXPECT_EQ(AgentId{3}, AgentId{3});
  EXPECT_NE(AgentId{3}, AgentId{4});
  EXPECT_LT(AgentId{3}, AgentId{4});
}

TEST(Types, RoundNextIncrements) {
  EXPECT_EQ(Round{5}.next(), Round{6});
  EXPECT_LT(Round{5}, Round{6});
}

TEST(Types, AgentIdHashable) {
  EXPECT_EQ(std::hash<AgentId>{}(AgentId{7}), std::hash<AgentId>{}(AgentId{7}));
}

// -------------------------------------------------------------- interval

TEST(Interval, PointInterval) {
  const Interval p(2.5);
  EXPECT_TRUE(p.is_point());
  EXPECT_EQ(p.lo(), 2.5);
  EXPECT_EQ(p.hi(), 2.5);
  EXPECT_EQ(p.length(), 0.0);
}

TEST(Interval, RejectsInvertedBounds) {
  EXPECT_THROW(Interval(1.0, 0.0), ContractViolation);
}

TEST(Interval, ContainsAndDistance) {
  const Interval iv(-1.0, 2.0);
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_TRUE(iv.contains(-1.0));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(2.1));
  EXPECT_DOUBLE_EQ(iv.distance_to(0.5), 0.0);
  EXPECT_DOUBLE_EQ(iv.distance_to(-3.0), 2.0);
  EXPECT_DOUBLE_EQ(iv.distance_to(5.0), 3.0);
}

TEST(Interval, ProjectClamps) {
  const Interval iv(0.0, 1.0);
  EXPECT_DOUBLE_EQ(iv.project(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(iv.project(0.4), 0.4);
  EXPECT_DOUBLE_EQ(iv.project(9.0), 1.0);
}

TEST(Interval, HullAndInflate) {
  const Interval a(0.0, 1.0);
  const Interval b(3.0, 4.0);
  EXPECT_EQ(a.hull(b), Interval(0.0, 4.0));
  EXPECT_EQ(a.inflate(0.5), Interval(-0.5, 1.5));
  EXPECT_THROW(a.inflate(-0.1), ContractViolation);
}

TEST(Interval, ContainsInterval) {
  EXPECT_TRUE(Interval(0.0, 10.0).contains(Interval(2.0, 3.0)));
  EXPECT_FALSE(Interval(0.0, 10.0).contains(Interval(2.0, 11.0)));
}

TEST(Interval, MidpointCentered) {
  EXPECT_DOUBLE_EQ(Interval(-2.0, 4.0).midpoint(), 1.0);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i)
    any_diff |= a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SubstreamsIndependentOfDrawOrder) {
  Rng a(7);
  Rng b(7);
  a.uniform(0.0, 1.0);  // perturb a's main stream only
  Rng sub_a = a.substream("tag", 3);
  Rng sub_b = b.substream("tag", 3);
  EXPECT_EQ(sub_a.uniform(0.0, 1.0), sub_b.uniform(0.0, 1.0));
}

TEST(Rng, SubstreamsDifferByTagAndIndex) {
  Rng base(7);
  EXPECT_NE(base.substream("x", 0).uniform(0.0, 1.0),
            base.substream("y", 0).uniform(0.0, 1.0));
  EXPECT_NE(base.substream("x", 0).uniform(0.0, 1.0),
            base.substream("x", 1).uniform(0.0, 1.0));
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntRespectsRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, InvalidArgsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Mix64, AvalanchesSingleBit) {
  // Flipping one input bit should change many output bits.
  const std::uint64_t a = mix64(0x1234);
  const std::uint64_t b = mix64(0x1235);
  EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

// ---------------------------------------------------------------- series

TEST(Series, PushAndAccess) {
  Series s;
  EXPECT_TRUE(s.empty());
  s.push(1.0);
  s.push(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 1.0);
  EXPECT_EQ(s.back(), 2.0);
}

TEST(Series, TailStats) {
  Series s({5.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.tail_max(2), 3.0);
  EXPECT_DOUBLE_EQ(s.tail_mean(2), 2.5);
  EXPECT_DOUBLE_EQ(s.tail_max(100), 5.0);  // clamped to size
}

TEST(Series, LogLogSlopeRecoversPowerLaw) {
  Series s;
  s.push(0.0);  // index 0 unused by the fit
  for (int t = 1; t <= 2000; ++t)
    s.push(3.0 / static_cast<double>(t));  // exactly 1/t decay
  EXPECT_NEAR(fit_log_log_slope(s, 10), -1.0, 1e-6);
}

TEST(Series, LogLogSlopeRecoversSqrtLaw) {
  Series s;
  s.push(0.0);
  for (int t = 1; t <= 2000; ++t) s.push(1.0 / std::sqrt(t));
  EXPECT_NEAR(fit_log_log_slope(s, 10), -0.5, 1e-6);
}

TEST(Series, LogLogSlopeSkipsZeros) {
  Series s;
  s.push(0.0);
  for (int t = 1; t <= 100; ++t) s.push(t % 7 == 0 ? 0.0 : 1.0 / t);
  EXPECT_NEAR(fit_log_log_slope(s, 5), -1.0, 1e-6);
}

TEST(Series, SettledBelowFindsStablePrefix) {
  // Dips below then pops back out: only the final descent counts.
  Series s({5.0, 0.5, 3.0, 0.9, 0.4, 0.2});
  EXPECT_EQ(s.settled_below(1.0), 3u);
  EXPECT_EQ(s.settled_below(0.45), 4u);
  EXPECT_EQ(s.settled_below(0.1), s.size());  // never settles
  EXPECT_EQ(s.settled_below(100.0), 0u);      // settled from the start
}

TEST(Series, WeightedPartialSums) {
  Series s({1.0, 2.0, 3.0});
  const std::vector<double> w{1.0, 0.5, 2.0};
  const auto sums = weighted_partial_sums(s, w);
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_DOUBLE_EQ(sums[0], 1.0);
  EXPECT_DOUBLE_EQ(sums[1], 2.0);
  EXPECT_DOUBLE_EQ(sums[2], 8.0);
}

TEST(Series, WeightedPartialSumsSizeMismatchThrows) {
  Series s({1.0});
  const std::vector<double> w{1.0, 2.0};
  EXPECT_THROW(weighted_partial_sums(s, w), ContractViolation);
}

// ----------------------------------------------------------------- table

TEST(Table, AlignedOutputContainsCells) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5);
  t.row().add("beta").add(std::size_t{7});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.row().add("x").add(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2\n");
}

TEST(Table, OverfullRowThrows) {
  Table t({"only"});
  t.row().add("one");
  EXPECT_THROW(t.add("two"), ContractViolation);
}

TEST(Table, IncompletePreviousRowThrows) {
  Table t({"a", "b"});
  t.row().add("x");
  EXPECT_THROW(t.row(), ContractViolation);
}

}  // namespace
}  // namespace ftmao
