// End-to-end checks of the paper's main claims on full SBG executions:
// Theorem 2 (consensus + optimality) under every attack, Lemma 3's O(1/t)
// rate, Section 6's constrained variant, and the centralized/consistent
// comparison.

#include <gtest/gtest.h>

#include <cmath>

#include "common/series.hpp"
#include "core/valid_set.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

// Theorem 2 under a given attack: honest agents reach (approximate)
// consensus and land (approximately) in Y.
class Theorem2UnderAttack : public ::testing::TestWithParam<AttackKind> {};

TEST_P(Theorem2UnderAttack, ConsensusAndOptimality) {
  Scenario s = make_standard_scenario(7, 2, 8.0, GetParam(), 5000);
  s.attack.state_magnitude = 60.0;
  s.attack.gradient_magnitude = 8.0;
  s.attack.target = -30.0;
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.05) << "consensus failed";
  EXPECT_LT(m.final_max_dist(), 0.1) << "optimality failed";
  // Sanity: the disagreement tail is monotonically small, not oscillating
  // back out of consensus.
  EXPECT_LT(m.disagreement.tail_max(100), 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, Theorem2UnderAttack,
    ::testing::Values(AttackKind::None, AttackKind::Silent,
                      AttackKind::FixedValue, AttackKind::SplitBrain,
                      AttackKind::HullEdgeUp, AttackKind::HullEdgeDown,
                      AttackKind::RandomNoise, AttackKind::SignFlip,
                      AttackKind::PullToTarget, AttackKind::FlipFlop,
                      AttackKind::DelayedStrike));

TEST(DelayedStrike, LateActivationGainsNothing) {
  // SBG keeps no reputation state, so striking after 2000 "trustworthy"
  // rounds gives the adversary no more leverage than striking at round 1:
  // both runs must end inside Y.
  Scenario early = make_standard_scenario(7, 2, 8.0, AttackKind::DelayedStrike, 6000);
  early.attack.activation_round = 1;
  early.attack.target = -50.0;
  Scenario late = early;
  late.attack.activation_round = 2000;
  const RunMetrics m_early = run_sbg(early);
  const RunMetrics m_late = run_sbg(late);
  EXPECT_LT(m_early.final_max_dist(), 0.1);
  EXPECT_LT(m_late.final_max_dist(), 0.1);
}

TEST(FlipFlop, OscillationCannotPreventConsensus) {
  for (std::size_t period : {1ul, 7ul, 50ul}) {
    Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::FlipFlop, 6000);
    s.attack.flip_period = period;
    const RunMetrics m = run_sbg(s);
    EXPECT_LT(m.final_disagreement(), 0.05) << "period " << period;
    EXPECT_LT(m.final_max_dist(), 0.1) << "period " << period;
  }
}

TEST(Theorem2, HoldsAtTightResilienceBound) {
  // n = 3f + 1 = 7, f = 2 is the hardest legal configuration.
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 6000);
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.05);
  EXPECT_LT(m.final_max_dist(), 0.1);
}

TEST(Theorem2, HoldsWithGenerousResilienceMargin) {
  Scenario s = make_standard_scenario(16, 2, 8.0, AttackKind::SplitBrain, 4000);
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.05);
  EXPECT_LT(m.final_max_dist(), 0.1);
}

TEST(Lemma3, HarmonicStepGivesRoughlyOneOverTDecay) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 8000);
  s.step = {StepKind::Harmonic, 1.0, 0.0};
  const RunMetrics m = run_sbg(s);
  // Fit the tail of log(M[t]-m[t]) vs log t; O(1/t) means slope <= ~-0.8
  // (allowing constants and pre-asymptotic bend).
  const double slope = fit_log_log_slope(m.disagreement, 500);
  EXPECT_LT(slope, -0.8);
  EXPECT_GT(slope, -2.0);  // and not absurdly fast (sanity on the fit)
}

TEST(Lemma4, WeightedDisagreementSumConverges) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 8000);
  const RunMetrics m = run_sbg(s);
  std::vector<double> lambdas(m.disagreement.size());
  const HarmonicStep h(1.0);
  for (std::size_t t = 0; t < lambdas.size(); ++t) lambdas[t] = h.at(t);
  const auto sums = weighted_partial_sums(m.disagreement, lambdas);
  // Partial sums flatten: the last quarter adds < 5% of the total.
  const double total = sums.back();
  const double at_three_quarters = sums[sums.size() * 3 / 4];
  EXPECT_LT(total - at_three_quarters, 0.05 * total + 1e-9);
}

TEST(ConstantStep, BreaksConsensusToZeroAblation) {
  // Ablation: a constant step violates the square-summability condition
  // and the disagreement floor stays bounded away from 0 under attack.
  Scenario harmonic = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 4000);
  Scenario constant = harmonic;
  constant.step = {StepKind::Constant, 0.05, 0.0};
  const double floor_h = run_sbg(harmonic).disagreement.tail_mean(200);
  const double floor_c = run_sbg(constant).disagreement.tail_mean(200);
  EXPECT_LT(floor_h, 0.05);
  EXPECT_GT(floor_c, 5.0 * floor_h);
}

TEST(Section6, ConstrainedRunConvergesInsideX) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 5000);
  s.constraint = Interval(-0.5, 0.25);
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.05);
  for (double x : m.final_states) {
    EXPECT_GE(x, -0.5 - 1e-12);
    EXPECT_LE(x, 0.25 + 1e-12);
  }
  // Projection error vanishes (eq. 16 discussion).
  EXPECT_LT(m.max_projection_error.tail_max(100), 1e-3);
}

TEST(Section6, InactiveConstraintMatchesUnconstrained) {
  Scenario s = make_standard_scenario(7, 1, 6.0, AttackKind::HullEdgeUp, 3000);
  Scenario c = s;
  c.constraint = Interval(-100.0, 100.0);  // never binds
  const RunMetrics unconstrained = run_sbg(s);
  const RunMetrics constrained = run_sbg(c);
  ASSERT_EQ(unconstrained.final_states.size(), constrained.final_states.size());
  for (std::size_t i = 0; i < unconstrained.final_states.size(); ++i)
    EXPECT_NEAR(unconstrained.final_states[i], constrained.final_states[i], 1e-9);
}

TEST(Impossibility, PullToTargetOutsideYNeverSucceeds) {
  // Theorem 1 / Theorem 2 corollary: no attack can drag honest agents to
  // an attacker target outside Y.
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::PullToTarget, 5000);
  s.attack.target = -40.0;
  s.attack.gradient_magnitude = 10.0;
  const RunMetrics m = run_sbg(s);
  for (double x : m.final_states) EXPECT_GT(x, -10.0);
  EXPECT_LT(m.final_max_dist(), 0.1);
}

TEST(AttackDoesBiasWithinY, HullEdgeShiftsOutputInsideY) {
  // The relaxation is real: attacks CAN move the answer within Y. HullEdge
  // up vs down should land at measurably different points, both inside Y.
  Scenario up = make_standard_scenario(13, 4, 12.0, AttackKind::HullEdgeUp, 5000);
  Scenario down = up;
  down.attack.kind = AttackKind::HullEdgeDown;
  const RunMetrics m_up = run_sbg(up);
  const RunMetrics m_down = run_sbg(down);
  EXPECT_LT(m_up.final_max_dist(), 0.1);
  EXPECT_LT(m_down.final_max_dist(), 0.1);
  EXPECT_GT(m_up.final_states.front(), m_down.final_states.front() + 0.3);
}

TEST(Lemma2, WitnessesHoldOverFullRunAllAttacks) {
  for (AttackKind kind : {AttackKind::SplitBrain, AttackKind::SignFlip,
                          AttackKind::HullEdgeUp, AttackKind::RandomNoise}) {
    Scenario s = make_standard_scenario(7, 2, 8.0, kind, 60);
    RunOptions opts;
    opts.audit_witnesses = true;
    const RunMetrics m = run_sbg(s, opts);
    EXPECT_TRUE(m.state_witness.all_passed());
    EXPECT_TRUE(m.gradient_witness.all_passed());
    EXPECT_EQ(m.state_witness.inexact, 0u);
    // Corollary 1 quantitative part: support >= m - f with weights >= beta.
    const std::size_t m_honest = 5, f = 2;
    EXPECT_GE(m.state_witness.min_support_seen, m_honest - f);
    EXPECT_GE(m.state_witness.min_weight_seen,
              1.0 / (2.0 * (m_honest - f)) - 1e-6);
  }
}

TEST(InitialConditions, ConsensusFromFarStarts) {
  // Far initial states need a travel budget: with bounded gradients the
  // states can move at most L * sum(lambda[t]) in T rounds, so the test
  // uses the slower-decaying valid schedule t^{-0.6} whose partial sums
  // grow polynomially (L ~ 2, sum_{t<8000} t^{-0.6} ~ 90 -> reach ~ 180).
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 8000);
  s.initial_states = {60.0, -50.0, 0.0, 25.0, -1.0, 49.0, -49.0};
  s.step = {StepKind::Power, 1.0, 0.6};
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.1);
  EXPECT_LT(m.final_max_dist(), 0.3);
}

TEST(InitialConditions, TravelBudgetLimitsFiniteTimeReach) {
  // The flip side: from a start far beyond L * sum(lambda), finite-time
  // optimality CANNOT hold (the asymptotic claim of Theorem 2 is intact —
  // sum(lambda) diverges). This documents the constant's role.
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::None, 2000);
  for (auto& x : s.initial_states) x = 1000.0;
  const RunMetrics m = run_sbg(s);
  const double budget = 2.5 * (1.0 + std::log(2000.0));  // L * sum harmonic
  EXPECT_GT(m.final_max_dist(), 1000.0 - budget - 10.0);
}

}  // namespace
}  // namespace ftmao
