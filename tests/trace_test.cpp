// Tests for execution traces and the theory-derived invariant checker —
// including failure injection: deliberately corrupted traces and a
// deliberately broken algorithm (DGD under attack) must be flagged.

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"
#include "sim/report.hpp"
#include "sim/trace.hpp"

namespace ftmao {
namespace {

RunMetrics traced_run(AttackKind kind, std::size_t rounds = 500) {
  Scenario s = make_standard_scenario(7, 2, 8.0, kind, rounds);
  RunOptions opts;
  opts.record_trace = true;
  return run_sbg(s, opts);
}

TEST(Trace, RecordedWhenRequested) {
  const RunMetrics m = traced_run(AttackKind::SplitBrain, 100);
  ASSERT_TRUE(m.trace.has_value());
  EXPECT_EQ(m.trace->rounds.size(), 101u);
  EXPECT_EQ(m.trace->honest_ids.size(), 5u);
  EXPECT_EQ(m.trace->num_rounds(), 100u);
}

TEST(Trace, AbsentByDefault) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::None, 10);
  EXPECT_FALSE(run_sbg(s).trace.has_value());
}

TEST(Trace, CsvRoundTripShape) {
  const RunMetrics m = traced_run(AttackKind::SplitBrain, 5);
  std::ostringstream os;
  m.trace->write_csv(os);
  const std::string out = os.str();
  // header + 6 data rows (initial + 5 rounds)
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 7);
  EXPECT_EQ(out.rfind("t,agent_0", 0), 0u);
}

class InvariantsUnderAttack : public ::testing::TestWithParam<AttackKind> {};

TEST_P(InvariantsUnderAttack, HoldOverWholeExecution) {
  Scenario s = make_standard_scenario(7, 2, 8.0, GetParam(), 800);
  RunOptions opts;
  opts.record_trace = true;
  const RunMetrics m = run_sbg(s, opts);
  const double L = family_gradient_bound(s.honest_functions());
  const HarmonicStep schedule;
  const InvariantReport report =
      check_sbg_invariants(*m.trace, s.f, L, schedule);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    Attacks, InvariantsUnderAttack,
    ::testing::Values(AttackKind::None, AttackKind::SplitBrain,
                      AttackKind::SignFlip, AttackKind::HullEdgeUp,
                      AttackKind::RandomNoise, AttackKind::FlipFlop,
                      AttackKind::PullToTarget));

// ------------------------------------------------------ failure injection

TEST(Invariants, CorruptedTraceIsFlagged) {
  const RunMetrics m = traced_run(AttackKind::SplitBrain, 200);
  ExecutionTrace corrupted = *m.trace;
  corrupted.rounds[100][2] += 50.0;  // teleporting agent: breaks I1/I2
  const HarmonicStep schedule;
  const InvariantReport report =
      check_sbg_invariants(corrupted, 2, 2.0, schedule);
  EXPECT_FALSE(report.ok);
}

TEST(Invariants, UnderstatedGradientBoundIsFlagged) {
  // Claiming L far smaller than the real bound makes the real movement
  // look like a violation — the checker is actually sensitive to L.
  const RunMetrics m = traced_run(AttackKind::SplitBrain, 200);
  const HarmonicStep schedule;
  const InvariantReport report =
      check_sbg_invariants(*m.trace, 2, /*gradient_bound=*/0.001, schedule);
  EXPECT_FALSE(report.ok);
}

TEST(Invariants, DgdUnderCoordinatedAttackViolatesHullDrift) {
  // The un-trimmed baseline is dragged outside the honest hull faster
  // than lambda*L allows — the checker exposes the missing trim.
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::PullToTarget, 400);
  s.attack.target = -80.0;
  s.attack.gradient_magnitude = 20.0;
  const RunMetrics m = run_dgd(s);
  // Build a trace from the DGD run by re-running with recording through
  // run_sbg is wrong; instead simulate: DGD has no trace hook, so we
  // construct the trace from its per-round disagreement... Simplest
  // faithful check: DGD's final states sit ~75 beyond the initial hull,
  // which even the summed budget cannot explain.
  double max_abs = 0.0;
  for (double x : m.final_states) max_abs = std::max(max_abs, std::abs(x));
  const double L = family_gradient_bound(s.honest_functions());
  double budget = 0.0;
  const HarmonicStep h;
  for (std::size_t t = 0; t < s.rounds; ++t) budget += h.at(t) * L;
  EXPECT_GT(max_abs, 4.0 + budget);  // impossible for any trim-respecting run
}

TEST(Invariants, ContractionBoundIsTightEnoughToBeMeaningful) {
  // The I3 bound must not be vacuous: for the first rounds the measured
  // contraction should consume a visible fraction of the allowance.
  const RunMetrics m = traced_run(AttackKind::SplitBrain, 50);
  const auto& trace = *m.trace;
  const double rho = 1.0 - 1.0 / 6.0;  // m=5, f=2
  const auto& r0 = trace.rounds[0];
  const auto& r1 = trace.rounds[1];
  const auto [lo0, hi0] = std::minmax_element(r0.begin(), r0.end());
  const auto [lo1, hi1] = std::minmax_element(r1.begin(), r1.end());
  EXPECT_GT(*hi1 - *lo1, 0.0);
  EXPECT_LE(*hi1 - *lo1, rho * (*hi0 - *lo0) + 1e-9 + 2.0 * 2.0 * 1.0 * rho);
}

// ------------------------------------------------------------- reporting

TEST(Report, LogSpacedCoversRangeStrictlyIncreasing) {
  const auto grid = log_spaced(20000);
  ASSERT_FALSE(grid.empty());
  EXPECT_EQ(grid.front(), 1u);
  EXPECT_EQ(grid.back(), 20000u);
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_GT(grid[i], grid[i - 1]);
  // ~4 points per decade over 4.3 decades.
  EXPECT_GE(grid.size(), 15u);
  EXPECT_LE(grid.size(), 25u);
}

TEST(Report, LogSpacedTinyRange) {
  EXPECT_EQ(log_spaced(1), (std::vector<std::size_t>{1}));
  const auto grid = log_spaced(3);
  EXPECT_EQ(grid.front(), 1u);
  EXPECT_EQ(grid.back(), 3u);
}

TEST(Report, SeriesTableShapeAndPadding) {
  Series a({1.0, 0.5, 0.25});       // shorter than t_max: padded with back()
  Series b({9.0, 8.0, 7.0, 6.0, 5.0, 4.0});
  std::ostringstream os;
  print_series_table(os, {"a", "b"}, {&a, &b}, 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("t"), std::string::npos);
  // t = 5 row shows a padded to 0.25 and b[5] = 4.
  EXPECT_NE(out.find("0.25"), std::string::npos);
  EXPECT_NE(out.find("4"), std::string::npos);
}

TEST(Report, SeriesTableValidatesInputs) {
  Series a({1.0});
  std::ostringstream os;
  EXPECT_THROW(print_series_table(os, {"a", "b"}, {&a}, 5), ContractViolation);
  Series empty;
  EXPECT_THROW(print_series_table(os, {"e"}, {&empty}, 5), ContractViolation);
}

TEST(Report, HeaderContainsIdAndClaim) {
  std::ostringstream os;
  print_experiment_header(os, "EX: test", "a claim");
  EXPECT_NE(os.str().find("EX: test"), std::string::npos);
  EXPECT_NE(os.str().find("a claim"), std::string::npos);
}

}  // namespace
}  // namespace ftmao
