// Tests for topologies and SBG on incomplete networks.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "func/library.hpp"
#include "graph/graph_runner.hpp"
#include "graph/robustness.hpp"
#include "graph/topology.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

// ---------------------------------------------------------------- topology

TEST(Topology, CompleteGraphProperties) {
  const Topology t = make_complete(5);
  EXPECT_TRUE(t.is_complete());
  EXPECT_TRUE(t.strongly_connected());
  EXPECT_EQ(t.min_in_degree(), 4u);
  EXPECT_TRUE(t.supports_trim(2));
}

TEST(Topology, SelfLoopsIgnored) {
  Topology t(3);
  t.add_edge(1, 1);
  EXPECT_FALSE(t.has_edge(1, 1));
  EXPECT_EQ(t.in_degree(1), 0u);
}

TEST(Topology, RingLatticeDegrees) {
  const Topology t = make_ring_lattice(8, 2);
  for (std::size_t v = 0; v < 8; ++v) {
    EXPECT_EQ(t.in_degree(v), 4u);
    EXPECT_EQ(t.out_degree(v), 4u);
  }
  EXPECT_TRUE(t.strongly_connected());
  EXPECT_FALSE(t.is_complete());
  EXPECT_TRUE(t.supports_trim(2));
  EXPECT_FALSE(t.supports_trim(3));
}

TEST(Topology, RingLatticeRejectsOversizedK) {
  EXPECT_THROW(make_ring_lattice(6, 3), ContractViolation);
}

TEST(Topology, RandomOutRegularDegrees) {
  Rng rng(4);
  const Topology t = make_random_out_regular(10, 4, rng);
  for (std::size_t v = 0; v < 10; ++v) EXPECT_EQ(t.out_degree(v), 4u);
}

TEST(Topology, RandomOutRegularDeterministic) {
  Rng a(9), b(9);
  const Topology ta = make_random_out_regular(8, 3, a);
  const Topology tb = make_random_out_regular(8, 3, b);
  for (std::size_t u = 0; u < 8; ++u)
    for (std::size_t v = 0; v < 8; ++v)
      EXPECT_EQ(ta.has_edge(u, v), tb.has_edge(u, v));
}

TEST(Topology, BarbellStructure) {
  const Topology t = make_barbell(4, 1);
  EXPECT_EQ(t.n(), 8u);
  EXPECT_TRUE(t.strongly_connected());
  EXPECT_TRUE(t.has_edge(0, 4));
  EXPECT_TRUE(t.has_edge(4, 0));
  EXPECT_FALSE(t.has_edge(1, 5));
  // Clique interior: in-degree 3 (+1 bridge for the bridge endpoints).
  EXPECT_EQ(t.in_degree(1), 3u);
  EXPECT_EQ(t.in_degree(0), 4u);
}

TEST(Topology, DisconnectedDetected) {
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 0);
  t.add_edge(2, 3);
  t.add_edge(3, 2);
  EXPECT_FALSE(t.strongly_connected());
}

// ------------------------------------------------------------- robustness

TEST(Robustness, CompleteGraphIsCeilHalfRobust) {
  // Known: K_n is ceil(n/2)-robust and no more.
  for (std::size_t n : {4u, 5u, 7u, 8u}) {
    const Topology t = make_complete(n);
    EXPECT_EQ(max_robustness(t), (n + 1) / 2) << "n=" << n;
  }
}

TEST(Robustness, BareRingIsExactlyOneRobust) {
  const Topology t = make_ring_lattice(8, 1);
  EXPECT_TRUE(is_r_robust(t, 1));
  EXPECT_FALSE(is_r_robust(t, 2));
}

TEST(Robustness, DenserLatticesAreMoreRobust) {
  // Measured ladder on n = 9: k=1 -> 1, k=2 -> 2, k=3 -> 3, k=4 -> 5.
  // The f=1 worst-case guarantee needs 2f+1 = 3, reached at k = 3. Note
  // k = 2 converges under E12's specific attack despite lacking the
  // worst-case guarantee — robustness is about ALL adversaries.
  EXPECT_EQ(max_robustness(make_ring_lattice(9, 1)), 1u);
  EXPECT_EQ(max_robustness(make_ring_lattice(9, 2)), 2u);
  EXPECT_EQ(max_robustness(make_ring_lattice(9, 3)), 3u);
  EXPECT_GE(max_robustness(make_ring_lattice(9, 3)), required_robustness(1));
}

TEST(Robustness, DisconnectedGraphIsNotRobust) {
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 0);
  t.add_edge(2, 3);
  t.add_edge(3, 2);
  EXPECT_FALSE(is_r_robust(t, 1));
  EXPECT_EQ(max_robustness(t), 0u);
}

TEST(Robustness, ZeroRobustnessIsTrivial) {
  EXPECT_TRUE(is_r_robust(Topology(3), 0));
}

TEST(Robustness, MonotoneInR) {
  Rng rng(5);
  const Topology t = make_random_out_regular(7, 4, rng);
  const std::size_t r_max = max_robustness(t);
  for (std::size_t r = 1; r <= r_max; ++r) EXPECT_TRUE(is_r_robust(t, r));
  EXPECT_FALSE(is_r_robust(t, r_max + 1));
}

TEST(Robustness, SizeGuard) {
  EXPECT_THROW(is_r_robust(Topology(21), 1), ContractViolation);
}

// -------------------------------------------------------------- graph SBG

GraphScenario scenario_on(Topology topo, std::size_t f,
                          std::vector<std::size_t> faulty,
                          std::size_t rounds = 4000) {
  GraphScenario s;
  const std::size_t n = topo.n();
  s.topology = std::move(topo);
  s.f = f;
  s.faulty = std::move(faulty);
  s.functions = make_mixed_family(n, 8.0);
  s.initial_states.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    s.initial_states[i] = -4.0 + 8.0 * static_cast<double>(i) /
                                      static_cast<double>(n - 1);
  s.attack.kind = AttackKind::SplitBrain;
  s.rounds = rounds;
  return s;
}

TEST(GraphSbg, CompleteTopologyMatchesPlainSbg) {
  GraphScenario gs = scenario_on(make_complete(7), 2, {5, 6}, 1000);
  const GraphRunMetrics gm = run_graph_sbg(gs);

  Scenario ps = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 1000);
  ps.initial_states = gs.initial_states;
  const RunMetrics pm = run_sbg(ps);

  ASSERT_EQ(gm.final_states.size(), pm.final_states.size());
  for (std::size_t i = 0; i < gm.final_states.size(); ++i)
    EXPECT_NEAR(gm.final_states[i], pm.final_states[i], 1e-9);
}

TEST(GraphSbg, DenseRingLatticeStillConverges) {
  // n=9, k=3 -> in-degree 6 >= 2f with f=1; dense enough in practice.
  GraphScenario gs = scenario_on(make_ring_lattice(9, 3), 1, {8}, 6000);
  const GraphRunMetrics m = run_graph_sbg(gs);
  EXPECT_LT(m.disagreement.back(), 0.1);
}

TEST(GraphSbg, SparseRingDegradesConsensusOrOptimality) {
  // Minimal in-degree (exactly 2f): the trim leaves a single survivor per
  // round, so robustness margins vanish. We don't assert failure — we
  // assert the measured gap is no better than the dense case, documenting
  // the open-problem territory.
  GraphScenario sparse = scenario_on(make_ring_lattice(9, 1), 1, {8}, 6000);
  GraphScenario dense = scenario_on(make_ring_lattice(9, 3), 1, {8}, 6000);
  const GraphRunMetrics ms = run_graph_sbg(sparse);
  const GraphRunMetrics md = run_graph_sbg(dense);
  EXPECT_GE(ms.max_dist_to_y.back() + 1e-9, md.max_dist_to_y.back());
}

TEST(GraphSbg, FaultFreeRingAgrees) {
  GraphScenario gs = scenario_on(make_ring_lattice(8, 1), 0, {}, 4000);
  gs.attack.kind = AttackKind::None;
  const GraphRunMetrics m = run_graph_sbg(gs);
  EXPECT_LT(m.disagreement.back(), 0.05);
}

TEST(GraphSbg, InsufficientInDegreeRejected) {
  // ring k=1 has in-degree 2 < 2f for f=2.
  GraphScenario gs = scenario_on(make_ring_lattice(9, 1), 2, {7, 8}, 100);
  EXPECT_THROW(run_graph_sbg(gs), ContractViolation);
}

TEST(GraphSbg, ByzantineCannotUseMissingLinks) {
  // The faulty agent has out-edges only within its clique; the other
  // clique must still converge (the attack cannot reach it directly).
  Topology t = make_barbell(4, 2);  // agents 0..3 and 4..7
  GraphScenario gs;
  gs.topology = t;
  gs.f = 1;
  gs.faulty = {3};
  gs.functions = make_spread_hubers(8, 8.0);
  gs.initial_states = {-4, -3, -2, -1, 1, 2, 3, 4};
  gs.attack.kind = AttackKind::FixedValue;
  gs.attack.state_magnitude = 1e6;
  gs.attack.gradient_magnitude = 1e6;
  gs.rounds = 4000;
  const GraphRunMetrics m = run_graph_sbg(gs);
  // All honest states must remain bounded (trim + topology confine the
  // attack), and the far clique converges internally.
  for (double x : m.final_states) EXPECT_LT(std::abs(x), 50.0);
}

}  // namespace
}  // namespace ftmao
