// Unit + property tests for src/func: each concrete family's values,
// derivatives, bounds, argmins; weighted sums; the admissibility
// validator; and the deterministic/random family factories.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "func/combination.hpp"
#include "func/functions.hpp"
#include "func/library.hpp"
#include "func/validate.hpp"
#include "simd/det_math.hpp"

namespace ftmao {
namespace {

// ------------------------------------------------------------------ Huber

TEST(Huber, QuadraticCore) {
  const Huber h(1.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(h.value(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.value(2.0), 0.5);
  EXPECT_DOUBLE_EQ(h.derivative(2.0), 1.0);
}

TEST(Huber, LinearTails) {
  const Huber h(0.0, 1.0, 2.0);
  // outside |r| > delta: value = scale*delta*(|r| - delta/2), slope = +-scale*delta
  EXPECT_DOUBLE_EQ(h.value(3.0), 2.0 * 1.0 * (3.0 - 0.5));
  EXPECT_DOUBLE_EQ(h.derivative(3.0), 2.0);
  EXPECT_DOUBLE_EQ(h.derivative(-3.0), -2.0);
}

TEST(Huber, GradientBoundTight) {
  const Huber h(0.0, 1.5, 2.0);
  EXPECT_DOUBLE_EQ(h.gradient_bound(), 3.0);
  EXPECT_DOUBLE_EQ(h.derivative(100.0), 3.0);
}

TEST(Huber, ArgminIsCenter) {
  EXPECT_EQ(Huber(-4.0, 1.0, 1.0).argmin(), Interval(-4.0));
}

TEST(Huber, RejectsBadParams) {
  EXPECT_THROW(Huber(0.0, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(Huber(0.0, 1.0, -1.0), ContractViolation);
}

// ---------------------------------------------------------------- LogCosh

TEST(LogCosh, ZeroAtCenter) {
  const LogCosh h(2.0, 1.0, 1.0);
  EXPECT_NEAR(h.value(2.0), 0.0, 1e-12);
  EXPECT_NEAR(h.derivative(2.0), 0.0, 1e-12);
}

TEST(LogCosh, DerivativeIsTanh) {
  const LogCosh h(0.0, 2.0, 3.0);
  EXPECT_NEAR(h.derivative(2.0), 3.0 * std::tanh(1.0), 1e-12);
}

TEST(LogCosh, NoOverflowFarOut) {
  const LogCosh h(0.0, 1.0, 1.0);
  const double v = h.value(1e6);
  EXPECT_TRUE(std::isfinite(v));
  // asymptotically |x| - log 2
  EXPECT_NEAR(v, 1e6 - std::log(2.0), 1e-6);
  EXPECT_NEAR(h.derivative(1e6), 1.0, 1e-12);
}

TEST(LogCosh, DeterministicSaturationAttainsGradientBound) {
  // det_tanh returns exactly +/-1 for |z| >= 20, so far-out derivatives
  // hit the gradient bound bit-for-bit instead of approaching it from
  // below -- gradient_bound() is attained, not just a supremum.
  const LogCosh h(0.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(h.derivative(64.0), 3.0);  // z = 32
  EXPECT_DOUBLE_EQ(h.derivative(-64.0), -3.0);
  EXPECT_DOUBLE_EQ(h.derivative(64.0), h.gradient_bound());
}

// -------------------------------------------------------------- SmoothAbs

TEST(SmoothAbs, ZeroAtCenterAndAsymptoticSlope) {
  const SmoothAbs h(1.0, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(h.value(1.0), 0.0);
  EXPECT_NEAR(h.derivative(1000.0), 2.0, 1e-5);
  EXPECT_NEAR(h.derivative(-1000.0), -2.0, 1e-5);
}

TEST(SmoothAbs, SymmetricValue) {
  const SmoothAbs h(0.0, 0.3, 1.0);
  EXPECT_DOUBLE_EQ(h.value(2.0), h.value(-2.0));
}

TEST(SmoothAbs, GradientBoundReachedToTheLastUlp) {
  // |h'| = scale * |r| / sqrt(r^2 + eps^2) < scale everywhere, but at
  // r = 2^40 (r^2 and sqrt(r^2) both exact, eps^2 rounds away) the
  // quotient is exactly 1 and the bound is met bit-for-bit.
  const SmoothAbs h(0.0, 0.5, 2.0);
  EXPECT_LT(std::abs(h.derivative(3.0)), h.gradient_bound());
  const double r = 1099511627776.0;  // 2^40
  EXPECT_DOUBLE_EQ(h.derivative(r), 2.0);
  EXPECT_DOUBLE_EQ(h.derivative(-r), -2.0);
  EXPECT_DOUBLE_EQ(h.derivative(r), h.gradient_bound());
}

// -------------------------------------------------------------- FlatHuber

TEST(FlatHuber, ZeroOnFlatRegion) {
  const FlatHuber h(Interval(-1.0, 2.0), 1.0, 1.0);
  EXPECT_DOUBLE_EQ(h.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.value(2.0), 0.0);
  EXPECT_DOUBLE_EQ(h.derivative(0.5), 0.0);
}

TEST(FlatHuber, GrowsOutside) {
  const FlatHuber h(Interval(-1.0, 2.0), 1.0, 1.0);
  EXPECT_DOUBLE_EQ(h.value(3.0), 0.5);       // quadratic zone
  EXPECT_DOUBLE_EQ(h.derivative(3.0), 1.0);
  EXPECT_DOUBLE_EQ(h.derivative(-2.5), -1.0);  // saturated left
}

TEST(FlatHuber, ArgminIsFlatInterval) {
  const FlatHuber h(Interval(-1.0, 2.0), 1.0, 1.0);
  EXPECT_EQ(h.argmin(), Interval(-1.0, 2.0));
}

// -------------------------------------------------------- AsymmetricHuber

TEST(AsymmetricHuber, DifferentSaturationSlopes) {
  const AsymmetricHuber h(0.0, 1.0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(h.derivative(-10.0), -2.0);  // scale * delta_neg
  EXPECT_DOUBLE_EQ(h.derivative(10.0), 6.0);    // scale * delta_pos
  EXPECT_DOUBLE_EQ(h.derivative(0.5), 1.0);     // quadratic zone
  EXPECT_DOUBLE_EQ(h.gradient_bound(), 6.0);
}

TEST(AsymmetricHuber, ValueContinuousAtKinks) {
  const AsymmetricHuber h(1.0, 0.5, 2.0, 1.0);
  for (double kink : {1.0 - 0.5, 1.0 + 2.0}) {
    const double below = h.value(kink - 1e-9);
    const double above = h.value(kink + 1e-9);
    EXPECT_NEAR(below, above, 1e-7);
  }
  EXPECT_DOUBLE_EQ(h.value(1.0), 0.0);
}

TEST(AsymmetricHuber, ArgminIsCenter) {
  EXPECT_EQ(AsymmetricHuber(3.0, 1.0, 2.0, 1.0).argmin(), Interval(3.0));
}

TEST(AsymmetricHuber, RejectsBadParams) {
  EXPECT_THROW(AsymmetricHuber(0.0, 0.0, 1.0, 1.0), ContractViolation);
  EXPECT_THROW(AsymmetricHuber(0.0, 1.0, -1.0, 1.0), ContractViolation);
}

// ---------------------------------------------------------- SoftplusBasin

TEST(SoftplusBasin, MinimizerAtMidpoint) {
  const SoftplusBasin h(1.0, 3.0, 0.5, 1.0);
  EXPECT_EQ(h.argmin(), Interval(2.0));
  EXPECT_NEAR(h.derivative(2.0), 0.0, 1e-12);
}

TEST(SoftplusBasin, BoundedSlopes) {
  const SoftplusBasin h(-1.0, 1.0, 0.5, 2.0);
  EXPECT_NEAR(h.derivative(100.0), 2.0, 1e-9);
  EXPECT_NEAR(h.derivative(-100.0), -2.0, 1e-9);
  EXPECT_LT(std::abs(h.derivative(0.0)), 2.0);
}

TEST(SoftplusBasin, LipschitzBoundIsTighterThanGenericQuarter) {
  // L = scale/width * (1/4 + sigma'(gap/2)) with gap = (b-a)/width:
  // strictly below the generic scale/(2 width) whenever the basin has
  // width (sigma'(gap/2) < 1/4 for gap > 0), while staying a sound bound
  // on |h''| -- the finite-difference admissibility check covers that.
  const SoftplusBasin h(-1.0, 1.0, 0.5, 2.0);
  const double gap = (1.0 - -1.0) / 0.5;
  EXPECT_DOUBLE_EQ(
      h.lipschitz_bound(),
      2.0 / 0.5 * (0.25 + detmath::det_sigmoid_prime(gap / 2.0)));
  EXPECT_LT(h.lipschitz_bound(), 2.0 / (2.0 * 0.5));
  EXPECT_GT(h.lipschitz_bound(), 0.0);
}

TEST(SoftplusBasin, RejectsInvertedWalls) {
  EXPECT_THROW(SoftplusBasin(2.0, 1.0, 0.5, 1.0), ContractViolation);
}

// ----------------------------------------------- admissibility validation

class AdmissibleFamilies : public ::testing::TestWithParam<ScalarFunctionPtr> {};

TEST_P(AdmissibleFamilies, PassesFullValidation) {
  const ValidationReport report = validate_admissible(*GetParam());
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllConcreteTypes, AdmissibleFamilies,
    ::testing::Values(
        std::make_shared<Huber>(0.0, 2.0, 1.0),
        std::make_shared<Huber>(-7.5, 0.5, 3.0),
        std::make_shared<LogCosh>(1.0, 1.0, 1.0),
        std::make_shared<LogCosh>(5.0, 0.25, 2.0),
        std::make_shared<SmoothAbs>(0.0, 0.5, 1.0),
        std::make_shared<SmoothAbs>(-3.0, 1.0, 0.5),
        std::make_shared<FlatHuber>(Interval(-2.0, 2.0), 1.0, 1.0),
        std::make_shared<FlatHuber>(Interval(3.0, 3.5), 2.0, 0.7),
        std::make_shared<SoftplusBasin>(-1.0, 1.0, 0.5, 1.0),
        std::make_shared<SoftplusBasin>(2.0, 2.0, 1.0, 2.0),
        std::make_shared<AsymmetricHuber>(0.0, 1.0, 3.0, 1.0),
        std::make_shared<AsymmetricHuber>(-4.0, 2.5, 0.5, 2.0)));

TEST(Validate, CatchesWrongGradientBound) {
  // A liar: claims gradient bound 0.1 but has slope up to 1.
  class Liar final : public ScalarFunction {
   public:
    double value(double x) const override { return std::abs(x) < 1 ? x * x / 2 : std::abs(x) - 0.5; }
    double derivative(double x) const override { return std::clamp(x, -1.0, 1.0); }
    double gradient_bound() const override { return 0.1; }
    double lipschitz_bound() const override { return 1.0; }
    Interval argmin() const override { return Interval(0.0); }
  };
  EXPECT_FALSE(validate_admissible(Liar{}).ok);
}

TEST(Validate, CatchesNonConvexity) {
  class Sine final : public ScalarFunction {
   public:
    double value(double x) const override { return std::sin(x); }
    double derivative(double x) const override { return std::cos(x); }
    double gradient_bound() const override { return 1.0; }
    double lipschitz_bound() const override { return 1.0; }
    Interval argmin() const override { return Interval(-M_PI / 2.0); }
  };
  const ValidationReport report = validate_admissible(Sine{});
  EXPECT_FALSE(report.ok);
}

TEST(Validate, CatchesWrongArgmin) {
  class WrongMin final : public ScalarFunction {
   public:
    double value(double x) const override { return std::hypot(x, 0.5) - 0.5; }
    double derivative(double x) const override { return x / std::hypot(x, 0.5); }
    double gradient_bound() const override { return 1.0; }
    double lipschitz_bound() const override { return 2.0; }
    Interval argmin() const override { return Interval(3.0); }  // lie: true min 0
  };
  EXPECT_FALSE(validate_admissible(WrongMin{}).ok);
}

// ------------------------------------------------------------ WeightedSum

TEST(WeightedSum, ValueAndDerivativeAreLinear) {
  const auto a = std::make_shared<Huber>(-1.0, 2.0, 1.0);
  const auto b = std::make_shared<Huber>(3.0, 2.0, 1.0);
  const WeightedSum sum({{0.25, a}, {0.75, b}});
  EXPECT_DOUBLE_EQ(sum.value(0.5), 0.25 * a->value(0.5) + 0.75 * b->value(0.5));
  EXPECT_DOUBLE_EQ(sum.derivative(0.5),
                   0.25 * a->derivative(0.5) + 0.75 * b->derivative(0.5));
}

TEST(WeightedSum, BoundsAreWeightedSums) {
  const auto a = std::make_shared<Huber>(0.0, 2.0, 1.0);  // L=2, lip=1
  const auto b = std::make_shared<LogCosh>(0.0, 1.0, 3.0);  // L=3, lip=3
  const WeightedSum sum({{0.5, a}, {0.5, b}});
  EXPECT_DOUBLE_EQ(sum.gradient_bound(), 0.5 * 2.0 + 0.5 * 3.0);
  EXPECT_DOUBLE_EQ(sum.lipschitz_bound(), 0.5 * 1.0 + 0.5 * 3.0);
}

TEST(WeightedSum, ArgminOfSymmetricPairIsMidpoint) {
  const auto a = std::make_shared<Huber>(-2.0, 10.0, 1.0);
  const auto b = std::make_shared<Huber>(2.0, 10.0, 1.0);
  const WeightedSum sum({{0.5, a}, {0.5, b}});
  EXPECT_NEAR(sum.argmin().midpoint(), 0.0, 1e-8);
}

TEST(WeightedSum, ArgminOfSmoothAbsPairIsFlat) {
  // Two equal-weight smooth-abs around distinct centers: between the
  // centers the derivative nearly cancels; true argmin of the exact |.|
  // pair is the whole segment, the smoothed version has a point near the
  // middle. Sanity: argmin lies between the centers.
  const auto a = std::make_shared<SmoothAbs>(-1.0, 0.1, 1.0);
  const auto b = std::make_shared<SmoothAbs>(1.0, 0.1, 1.0);
  const WeightedSum sum({{0.5, a}, {0.5, b}});
  EXPECT_GE(sum.argmin().lo(), -1.0 - 1e-9);
  EXPECT_LE(sum.argmin().hi(), 1.0 + 1e-9);
}

TEST(WeightedSum, SkewedWeightsMoveArgmin) {
  const auto a = std::make_shared<Huber>(-2.0, 10.0, 1.0);
  const auto b = std::make_shared<Huber>(2.0, 10.0, 1.0);
  const WeightedSum sum({{0.9, a}, {0.1, b}});
  // derivative: 0.9(x+2) + 0.1(x-2) = x + 1.6 -> argmin -1.6
  EXPECT_NEAR(sum.argmin().midpoint(), -1.6, 1e-8);
}

TEST(WeightedSum, ZeroWeightTermIgnoredInArgmin) {
  const auto a = std::make_shared<Huber>(1.0, 2.0, 1.0);
  const auto b = std::make_shared<Huber>(100.0, 2.0, 1.0);
  const WeightedSum sum({{1.0, a}, {0.0, b}});
  EXPECT_NEAR(sum.argmin().midpoint(), 1.0, 1e-8);
}

TEST(WeightedSum, RejectsDegenerateInputs) {
  const auto a = std::make_shared<Huber>(0.0, 1.0, 1.0);
  EXPECT_THROW(WeightedSum({}), ContractViolation);
  EXPECT_THROW(WeightedSum({{-0.5, a}}), ContractViolation);
  EXPECT_THROW(WeightedSum({{0.0, a}}), ContractViolation);  // zero total mass
}

TEST(WeightedSum, IsItselfAdmissible) {
  const auto a = std::make_shared<Huber>(-3.0, 2.0, 1.0);
  const auto b = std::make_shared<LogCosh>(1.0, 1.0, 2.0);
  const auto c = std::make_shared<FlatHuber>(Interval(0.0, 1.0), 1.0, 1.0);
  const WeightedSum sum({{0.2, a}, {0.5, b}, {0.3, c}});
  EXPECT_TRUE(validate_admissible(sum).ok);
}

TEST(UniformAverage, EqualWeights) {
  const auto a = std::make_shared<Huber>(-2.0, 10.0, 1.0);
  const auto b = std::make_shared<Huber>(0.0, 10.0, 1.0);
  const auto c = std::make_shared<Huber>(2.0, 10.0, 1.0);
  const WeightedSum avg = uniform_average({a, b, c});
  EXPECT_NEAR(avg.argmin().midpoint(), 0.0, 1e-8);
  for (const auto& term : avg.terms()) EXPECT_DOUBLE_EQ(term.weight, 1.0 / 3.0);
}

// ---------------------------------------------------------------- library

TEST(Library, SpreadHubersLayout) {
  const auto fns = make_spread_hubers(5, 8.0);
  ASSERT_EQ(fns.size(), 5u);
  EXPECT_DOUBLE_EQ(fns.front()->argmin().midpoint(), -4.0);
  EXPECT_DOUBLE_EQ(fns.back()->argmin().midpoint(), 4.0);
  EXPECT_DOUBLE_EQ(fns[2]->argmin().midpoint(), 0.0);
}

TEST(Library, SingleFunctionCentered) {
  const auto fns = make_spread_hubers(1, 8.0);
  EXPECT_DOUBLE_EQ(fns.front()->argmin().midpoint(), 0.0);
}

TEST(Library, MixedFamilyAllAdmissible) {
  for (const auto& fn : make_mixed_family(8, 10.0))
    EXPECT_TRUE(validate_admissible(*fn).ok);
}

TEST(Library, TranscendentalFamilyAdmissibleWithClosedFormDescriptors) {
  const auto family = make_transcendental_family(6, 8.0);
  ASSERT_EQ(family.size(), 6u);
  for (const auto& fn : family) {
    EXPECT_TRUE(validate_admissible(*fn).ok);
    const BatchGradientKernel d = fn->batch_gradient_kernel();
    ASSERT_TRUE(d.valid());
    for (double x : {-5.0, -0.5, 0.0, 1.25, 7.0}) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(fn->derivative(x)),
                std::bit_cast<std::uint64_t>(d.evaluate(x)));
    }
  }
}

TEST(Library, RandomFamilyDeterministicPerSeed) {
  Rng r1(99);
  Rng r2(99);
  const auto f1 = make_random_family(6, r1);
  const auto f2 = make_random_family(6, r2);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_DOUBLE_EQ(f1[i]->value(0.37), f2[i]->value(0.37));
    EXPECT_DOUBLE_EQ(f1[i]->derivative(-1.2), f2[i]->derivative(-1.2));
  }
}

TEST(Library, RandomFamilyAllAdmissible) {
  Rng rng(7);
  for (const auto& fn : make_random_family(12, rng))
    EXPECT_TRUE(validate_admissible(*fn).ok);
}

TEST(Library, FamilyGradientBoundIsMax) {
  const auto a = std::make_shared<Huber>(0.0, 2.0, 1.0);   // L = 2
  const auto b = std::make_shared<LogCosh>(0.0, 1.0, 5.0); // L = 5
  EXPECT_DOUBLE_EQ(family_gradient_bound({a, b}), 5.0);
}

}  // namespace
}  // namespace ftmao
