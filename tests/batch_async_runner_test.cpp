// Bit-identity of the batched asynchronous engine against the scalar
// event-loop reference: run_async_sbg_batch must reproduce run_async_sbg
// per replica, field for field, at the bit level — for every delay model,
// crash schedule, attack in the menu, and batch size (including B = 1 and
// B > the active backend's lane width). Run under each backend via the
// `ctest -L simd` matrix.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "func/library.hpp"
#include "sim/async_runner.hpp"
#include "sim/attack_search.hpp"
#include "sim/batch_async_runner.hpp"
#include "sim/sweep.hpp"

namespace ftmao {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_series_identical(const Series& a, const Series& b,
                             const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t t = 0; t < a.size(); ++t)
    ASSERT_EQ(bits(a[t]), bits(b[t])) << what << " t=" << t;
}

// Every field, bitwise. EXPECT_DOUBLE_EQ would hide signed-zero and ULP
// differences; the batched engine claims exact replay.
void expect_identical(const AsyncRunMetrics& a, const AsyncRunMetrics& b) {
  expect_series_identical(a.disagreement, b.disagreement, "disagreement");
  expect_series_identical(a.max_dist_to_y, b.max_dist_to_y, "max_dist_to_y");
  ASSERT_EQ(a.final_states.size(), b.final_states.size());
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    ASSERT_EQ(bits(a.final_states[i]), bits(b.final_states[i])) << i;
  ASSERT_EQ(bits(a.optima.lo()), bits(b.optima.lo()));
  ASSERT_EQ(bits(a.optima.hi()), bits(b.optima.hi()));
  ASSERT_EQ(bits(a.virtual_time), bits(b.virtual_time));
  ASSERT_EQ(a.messages_delivered, b.messages_delivered);
}

void expect_batch_matches_scalar(const std::vector<AsyncScenario>& batch) {
  const std::vector<AsyncRunMetrics> got = run_async_sbg_batch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    SCOPED_TRACE("replica " + std::to_string(r));
    expect_identical(got[r], run_async_sbg(batch[r]));
  }
}

AsyncScenario base_scenario(std::uint64_t seed, AttackKind kind,
                            std::size_t rounds = 120) {
  AsyncScenario s = make_standard_async_scenario(6, 1, 6.0, kind, rounds,
                                                 seed);
  return s;
}

TEST(BatchAsyncRunner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(run_async_sbg_batch({}).empty());
}

TEST(BatchAsyncRunner, SingleReplicaUniformDelays) {
  expect_batch_matches_scalar({base_scenario(7, AttackKind::SplitBrain)});
}

TEST(BatchAsyncRunner, WideBatchBeyondLaneWidth) {
  // 9 replicas exceeds every backend's lane width (scalar 1 .. avx512 8),
  // exercising full vectors plus a tail in one batch.
  std::vector<AsyncScenario> batch;
  for (std::uint64_t seed = 1; seed <= 9; ++seed)
    batch.push_back(base_scenario(seed, AttackKind::SplitBrain));
  expect_batch_matches_scalar(batch);
}

TEST(BatchAsyncRunner, EveryDelayKind) {
  for (const DelayKind kind :
       {DelayKind::Fixed, DelayKind::Uniform, DelayKind::TargetedSlow}) {
    std::vector<AsyncScenario> batch;
    for (std::uint64_t seed = 11; seed <= 15; ++seed) {
      AsyncScenario s = base_scenario(seed, AttackKind::HullEdgeUp);
      s.delay_kind = kind;
      s.slow_delay = 8.0;
      s.slow_count = 2;
      batch.push_back(s);
    }
    SCOPED_TRACE(static_cast<int>(kind));
    expect_batch_matches_scalar(batch);
  }
}

TEST(BatchAsyncRunner, EveryAttackKind) {
  for (const AttackKind kind :
       {AttackKind::None, AttackKind::Silent, AttackKind::FixedValue,
        AttackKind::SplitBrain, AttackKind::HullEdgeUp,
        AttackKind::HullEdgeDown, AttackKind::RandomNoise,
        AttackKind::SignFlip, AttackKind::PullToTarget, AttackKind::FlipFlop,
        AttackKind::DelayedStrike}) {
    std::vector<AsyncScenario> batch;
    for (std::uint64_t seed = 3; seed <= 6; ++seed)
      batch.push_back(base_scenario(seed, kind, 80));
    SCOPED_TRACE(static_cast<int>(kind));
    expect_batch_matches_scalar(batch);
  }
}

TEST(BatchAsyncRunner, MixedPresencePerLane) {
  // Lanes whose adversaries omit payloads (Silent), always send
  // (SplitBrain), send randomly-valued payloads (RandomNoise), and go
  // dormant-then-active (DelayedStrike) advance side by side: the
  // per-lane sender masks must select exactly the payloads the scalar
  // engine's per-replica buffers held.
  std::vector<AsyncScenario> batch;
  const AttackKind kinds[] = {AttackKind::Silent, AttackKind::SplitBrain,
                              AttackKind::RandomNoise,
                              AttackKind::DelayedStrike,
                              AttackKind::Silent};
  std::uint64_t seed = 21;
  for (const AttackKind kind : kinds)
    batch.push_back(base_scenario(seed++, kind));
  expect_batch_matches_scalar(batch);
}

TEST(BatchAsyncRunner, CrashSchedules) {
  // Mid-run send-crash: the crashed agent keeps advancing locally but its
  // tuples vanish from everyone's multisets after the crash time.
  std::vector<AsyncScenario> batch;
  for (std::uint64_t seed = 31; seed <= 36; ++seed) {
    AsyncScenario s = make_standard_async_scenario(11, 2, 8.0,
                                                   AttackKind::SplitBrain,
                                                   100, seed);
    s.faulty = {10};  // one Byzantine + one crash inside the f = 2 budget
    s.crashes = {{4, 25.0}};
    batch.push_back(s);
  }
  expect_batch_matches_scalar(batch);
}

TEST(BatchAsyncRunner, CrashAtTimeZeroSuppressesInitialBroadcast) {
  std::vector<AsyncScenario> batch;
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    AsyncScenario s = make_standard_async_scenario(11, 2, 8.0,
                                                   AttackKind::HullEdgeDown,
                                                   90, seed);
    s.faulty.clear();  // both f slots spent on crashes
    s.crashes = {{0, 0.0}, {7, 10.0}};
    batch.push_back(s);
  }
  expect_batch_matches_scalar(batch);
}

TEST(BatchAsyncRunner, HeterogeneousStepAndDelayParameters) {
  // Shape (n, f, faulty, crashes, rounds) is shared; everything else —
  // seed, delay window, step schedule, attack knobs — varies per lane.
  std::vector<AsyncScenario> batch;
  for (std::uint64_t seed = 51; seed <= 57; ++seed) {
    AsyncScenario s = base_scenario(seed, AttackKind::PullToTarget);
    s.delay_lo = 0.2 + 0.1 * static_cast<double>(seed - 51);
    s.delay_hi = s.delay_lo + 1.0;
    s.attack.target = static_cast<double>(seed % 3) - 1.0;
    s.step.scale = 0.4 + 0.05 * static_cast<double>(seed % 4);
    batch.push_back(s);
  }
  expect_batch_matches_scalar(batch);
}

TEST(BatchAsyncRunner, RejectsMismatchedShapes) {
  std::vector<AsyncScenario> batch = {base_scenario(1, AttackKind::None),
                                      base_scenario(2, AttackKind::None)};
  batch[1].rounds += 1;
  EXPECT_THROW(run_async_sbg_batch(batch), ContractViolation);
  batch = {base_scenario(1, AttackKind::None),
           make_standard_async_scenario(11, 2, 6.0, AttackKind::None, 120, 2)};
  EXPECT_THROW(run_async_sbg_batch(batch), ContractViolation);
}

TEST(BatchAsyncRunner, SweepEngineIdentity) {
  // The async sweep path must produce byte-identical CSV whichever engine
  // (scalar event loop vs batched replay), batch size, or thread count
  // runs the cells.
  SweepConfig config;
  config.async_engine = true;
  config.sizes = {{6, 1}, {11, 2}};
  config.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip};
  config.seeds = {1, 2, 3, 4, 5};
  config.rounds = 60;
  const std::string batched = sweep_to_csv(run_sweep(config));
  SweepConfig scalar = config;
  scalar.scalar_engine = true;
  EXPECT_EQ(batched, sweep_to_csv(run_sweep(scalar)));
  SweepConfig chunked = config;
  chunked.batch_size = 2;
  chunked.num_threads = 4;
  EXPECT_EQ(batched, sweep_to_csv(run_sweep(chunked)));
}

TEST(BatchAsyncRunner, SweepValidationRequiresNGreaterThan5F) {
  SweepConfig config;
  config.async_engine = true;
  config.sizes = {{7, 2}};  // fine for sync (n > 3f), too tight for async
  config.attacks = {AttackKind::None};
  config.seeds = {1};
  EXPECT_THROW(run_sweep(config), ContractViolation);
}

TEST(BatchAsyncRunner, AttackSearchEngineIdentity) {
  const AsyncScenario base =
      base_scenario(5, AttackKind::None, 80);
  const std::vector<AttackCandidate> grid = standard_attack_grid();
  const AttackSearchResult batched = find_strongest_attack_async(base, grid);
  const AttackSearchResult scalar =
      find_strongest_attack_async(base, grid, 1, 0, true);
  ASSERT_EQ(batched.outcomes.size(), scalar.outcomes.size());
  EXPECT_EQ(bits(batched.reference_state), bits(scalar.reference_state));
  for (std::size_t i = 0; i < batched.outcomes.size(); ++i) {
    EXPECT_EQ(batched.outcomes[i].name, scalar.outcomes[i].name);
    EXPECT_EQ(bits(batched.outcomes[i].bias), bits(scalar.outcomes[i].bias));
    EXPECT_EQ(bits(batched.outcomes[i].dist_to_y),
              bits(scalar.outcomes[i].dist_to_y));
  }
}

TEST(BatchAsyncRunner, StandardFactoryMirrorsSyncConventions) {
  const AsyncScenario s =
      make_standard_async_scenario(6, 1, 6.0, AttackKind::SplitBrain, 200, 9);
  EXPECT_EQ(s.faulty, (std::vector<std::size_t>{5}));
  EXPECT_EQ(s.functions.size(), 6u);
  EXPECT_EQ(bits(s.initial_states.front()), bits(-3.0));
  EXPECT_EQ(bits(s.initial_states.back()), bits(3.0));
  EXPECT_EQ(s.rounds, 200u);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_NO_THROW(s.validate());
}

}  // namespace
}  // namespace ftmao
