// Whole-pipeline algebraic property tests: SBG commutes with translation
// and positive scaling of the problem, and is invariant to relabeling the
// agents. These exercise every layer at once (functions, trim, agents,
// engine, adversaries, metrics) — a symmetry violation anywhere breaks
// them.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "func/functions.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

// A scenario built from explicit Hubers so we can transform it precisely.
Scenario huber_scenario(const std::vector<double>& centers,
                        const std::vector<double>& initials, std::size_t f,
                        AttackKind kind, double attack_target) {
  Scenario s;
  s.n = centers.size();
  s.f = f;
  for (std::size_t i = s.n - f; i < s.n; ++i) s.faulty.push_back(i);
  for (double c : centers)
    s.functions.push_back(std::make_shared<Huber>(c, 2.0, 1.0));
  s.initial_states = initials;
  s.attack.kind = kind;
  s.attack.target = attack_target;
  s.attack.state_magnitude = 40.0;
  s.attack.gradient_magnitude = 4.0;
  s.rounds = 1500;
  return s;
}

const std::vector<double> kCenters{-4.0, -1.5, 0.0, 2.0, 4.0, 0.0, 0.0};
const std::vector<double> kInitials{-3.0, -1.0, 0.5, 1.5, 3.5, 0.0, 0.0};

// -------------------------------------------------------------- translation

// Shifting every cost center, every initial state, and the attack's
// absolute parameters by c must shift every honest trajectory by exactly c.
TEST(Equivariance, TranslationCommutesWithSbg) {
  const double shift = 17.25;
  for (AttackKind kind : {AttackKind::PullToTarget, AttackKind::HullEdgeUp,
                          AttackKind::SignFlip}) {
    const Scenario base = huber_scenario(kCenters, kInitials, 2, kind, -30.0);

    std::vector<double> centers = kCenters, initials = kInitials;
    for (double& c : centers) c += shift;
    for (double& x : initials) x += shift;
    Scenario moved = huber_scenario(centers, initials, 2, kind, -30.0 + shift);

    const RunMetrics a = run_sbg(base);
    const RunMetrics b = run_sbg(moved);
    ASSERT_EQ(a.final_states.size(), b.final_states.size());
    for (std::size_t i = 0; i < a.final_states.size(); ++i) {
      EXPECT_NEAR(b.final_states[i], a.final_states[i] + shift, 1e-9)
          << "attack " << static_cast<int>(kind);
    }
    EXPECT_NEAR(b.optima.lo(), a.optima.lo() + shift, 1e-6);
    EXPECT_NEAR(b.optima.hi(), a.optima.hi() + shift, 1e-6);
  }
}

// Note on scaling: SBG does NOT commute with scaling the argument alone —
// the step size schedule is fixed, so x -> cx changes the dynamics (the
// gradients scale too but lambda does not). That asymmetry is real and
// documented by this (intentionally) weaker check: scaling by c while
// ALSO scaling lambda by c preserves trajectories for Hubers whose delta
// scales with c.
TEST(Equivariance, JointScalingOfProblemAndStepCommutes) {
  const double c = 3.0;
  const Scenario base =
      huber_scenario(kCenters, kInitials, 2, AttackKind::HullEdgeUp, 0.0);

  Scenario scaled;
  scaled.n = base.n;
  scaled.f = base.f;
  scaled.faulty = base.faulty;
  for (double center : kCenters) {
    // h_c(x) = scale * phi_delta(x - center): scaling delta and center by c
    // (keeping "scale" fixed) makes h'_scaled(c x) = c * h'(x) / ... — with
    // step scale multiplied by c the update map conjugates exactly.
    scaled.functions.push_back(std::make_shared<Huber>(center * c, 2.0 * c, 1.0));
  }
  scaled.initial_states = kInitials;
  for (double& x : scaled.initial_states) x *= c;
  scaled.attack = base.attack;
  scaled.attack.state_magnitude *= c;
  scaled.attack.gradient_magnitude *= c;
  scaled.rounds = base.rounds;
  scaled.step.scale = base.step.scale;  // lambda unchanged...
  // gradient of scaled huber at c*x: clamp(c x - c center, +-c delta) =
  // c * clamp(x - center, +-delta): gradients scale by c. Step lambda
  // unchanged => dx_scaled = c * dx. Trajectories scale exactly.

  const RunMetrics a = run_sbg(base);
  const RunMetrics b = run_sbg(scaled);
  ASSERT_EQ(a.final_states.size(), b.final_states.size());
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    EXPECT_NEAR(b.final_states[i], c * a.final_states[i], 1e-8);
}

// -------------------------------------------------------------- relabeling

// Permuting the HONEST agents (their costs and initial states together)
// must permute the final states identically — no agent is special.
TEST(Equivariance, HonestRelabelingPermutesOutcomes) {
  const Scenario base =
      huber_scenario(kCenters, kInitials, 2, AttackKind::SignFlip, 0.0);

  // Swap honest agents 1 and 3 wholesale.
  std::vector<double> centers = kCenters, initials = kInitials;
  std::swap(centers[1], centers[3]);
  std::swap(initials[1], initials[3]);
  const Scenario swapped =
      huber_scenario(centers, initials, 2, AttackKind::SignFlip, 0.0);

  const RunMetrics a = run_sbg(base);
  const RunMetrics b = run_sbg(swapped);
  ASSERT_EQ(a.final_states.size(), 5u);
  EXPECT_NEAR(b.final_states[1], a.final_states[3], 1e-12);
  EXPECT_NEAR(b.final_states[3], a.final_states[1], 1e-12);
  EXPECT_NEAR(b.final_states[0], a.final_states[0], 1e-12);
  // Aggregate metrics unchanged.
  EXPECT_NEAR(a.final_disagreement(), b.final_disagreement(), 1e-12);
  EXPECT_NEAR(a.optima.lo(), b.optima.lo(), 1e-9);
}

// -------------------------------------------------------------- reflection

// Mirroring the whole problem (x -> -x) must mirror the outcome, provided
// the attack is mirrored too. SplitBrain(-magnitude) is its own mirror
// only up to recipient parity, so use the silent attack for exactness.
TEST(Equivariance, ReflectionCommutesWithSbg) {
  const Scenario base =
      huber_scenario(kCenters, kInitials, 2, AttackKind::Silent, 0.0);
  std::vector<double> centers = kCenters, initials = kInitials;
  for (double& c : centers) c = -c;
  for (double& x : initials) x = -x;
  const Scenario mirrored =
      huber_scenario(centers, initials, 2, AttackKind::Silent, 0.0);

  const RunMetrics a = run_sbg(base);
  const RunMetrics b = run_sbg(mirrored);
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    EXPECT_NEAR(b.final_states[i], -a.final_states[i], 1e-10);
  EXPECT_NEAR(b.optima.lo(), -a.optima.hi(), 1e-6);
  EXPECT_NEAR(b.optima.hi(), -a.optima.lo(), 1e-6);
}

}  // namespace
}  // namespace ftmao
