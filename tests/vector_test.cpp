// Tests for the vector extension: Vec algebra, vector cost functions,
// coordinate-wise SBG behaviour, and the non-convexity of the vector
// valid-optima set (the paper's core obstruction for k >= 2).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/step_size.hpp"
#include "vector/vector_sbg.hpp"
#include "vector/vector_valid.hpp"

namespace ftmao {
namespace {

// --------------------------------------------------------------------- Vec

TEST(Vec, Arithmetic) {
  const Vec a{1.0, 2.0};
  const Vec b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vec{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
}

TEST(Vec, Norms) {
  const Vec v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(v.distance_to(Vec{0.0, 0.0}), 5.0);
}

TEST(Vec, DimMismatchThrows) {
  Vec a{1.0, 2.0};
  const Vec b{1.0};
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW(a.dot(b), ContractViolation);
}

// --------------------------------------------------------- cost functions

TEST(SeparableHuber, GradientPerCoordinate) {
  const SeparableHuber h(Vec{1.0, -1.0}, 2.0, 1.0);
  const Vec g = h.gradient(Vec{2.0, -1.0});
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 0.0);
  EXPECT_DOUBLE_EQ(h.value(Vec{1.0, -1.0}), 0.0);
}

TEST(RadialHuber, RotationInvariantValue) {
  const RadialHuber h(Vec{0.0, 0.0}, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(h.value(Vec{3.0, 0.0}), h.value(Vec{0.0, 3.0}));
  EXPECT_DOUBLE_EQ(h.value(Vec{3.0, 4.0}), 1.0 * (5.0 - 0.5));
}

TEST(RadialHuber, GradientPointsAwayFromCenterBounded) {
  const RadialHuber h(Vec{1.0, 1.0}, 1.0, 2.0);
  const Vec g = h.gradient(Vec{4.0, 1.0});
  EXPECT_DOUBLE_EQ(g[0], 2.0);  // saturated slope scale*delta
  EXPECT_DOUBLE_EQ(g[1], 0.0);
  EXPECT_EQ(h.gradient(Vec{1.0, 1.0}), (Vec{0.0, 0.0}));
}

TEST(DirectionalHuber, GradientAlongDirection) {
  const DirectionalHuber h(Vec{3.0, 4.0}, 0.0, 1.0, 1.0);  // normalized inside
  const Vec g = h.gradient(Vec{10.0, 10.0});
  // gradient parallel to (0.6, 0.8)
  EXPECT_NEAR(g[0] / g[1], 0.6 / 0.8, 1e-12);
}

TEST(VectorWeightedSum, MinimizerOfSymmetricPair) {
  const auto a = std::make_shared<SeparableHuber>(Vec{-2.0, 0.0}, 5.0, 1.0);
  const auto b = std::make_shared<SeparableHuber>(Vec{2.0, 0.0}, 5.0, 1.0);
  const VectorWeightedSum sum({{0.5, a}, {0.5, b}});
  const Vec m = sum.a_minimizer();
  EXPECT_NEAR(m[0], 0.0, 1e-5);
  EXPECT_NEAR(m[1], 0.0, 1e-5);
}

// ----------------------------------------------------- coordinate-wise SBG

VectorSbgConfig cfg(std::size_t n, std::size_t f, std::size_t dim) {
  VectorSbgConfig c;
  c.n = n;
  c.f = f;
  c.dim = dim;
  return c;
}

std::vector<VectorFunctionPtr> separable_costs() {
  return {
      std::make_shared<SeparableHuber>(Vec{-3.0, 1.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{-1.0, -2.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{0.0, 0.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{2.0, 2.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{4.0, -1.0}, 2.0, 1.0),
  };
}

std::vector<Vec> spread_initial(std::size_t count) {
  std::vector<Vec> out;
  for (std::size_t i = 0; i < count; ++i) {
    const double v = -4.0 + 8.0 * static_cast<double>(i) /
                                 static_cast<double>(count - 1);
    out.push_back(Vec{v, -v});
  }
  return out;
}

TEST(VectorSbg, ConsensusPerCoordinateUnderSplitBrain) {
  const HarmonicStep schedule;
  VectorSplitBrain attack(2, 50.0, 5.0);
  const auto r = run_vector_sbg(cfg(7, 2, 2), separable_costs(),
                                spread_initial(5), 2, &attack, schedule, 6000);
  EXPECT_LT(r.disagreement.back(), 0.05);
}

TEST(VectorSbg, SeparableCostsLandNearAverageOptimumRegion) {
  // For separable costs, each coordinate independently satisfies the
  // scalar Theorem 2, so the final point sits inside the per-coordinate
  // valid boxes — within a modest distance of the average optimum.
  const HarmonicStep schedule;
  VectorSplitBrain attack(2, 50.0, 5.0);
  const auto r = run_vector_sbg(cfg(7, 2, 2), separable_costs(),
                                spread_initial(5), 2, &attack, schedule, 6000);
  EXPECT_LT(r.dist_to_average_optimum.back(), 4.0);
}

TEST(VectorSbg, FaultFreeWithPositiveFConverges) {
  // No actual faults, but the algorithm still trims for f = 1.
  const HarmonicStep schedule;
  const auto r = run_vector_sbg(cfg(5, 1, 2), separable_costs(),
                                spread_initial(5), 0, nullptr, schedule, 4000);
  EXPECT_LT(r.disagreement.back(), 0.05);
  EXPECT_LT(r.dist_to_average_optimum.back(), 0.5);
}

TEST(VectorSbg, DimMismatchRejected) {
  const HarmonicStep schedule;
  VectorSbgConfig c = cfg(4, 1, 3);  // functions are 2-D
  EXPECT_THROW(VectorSbgAgent(AgentId{0}, separable_costs()[0], Vec{0, 0, 0},
                              schedule, c),
               ContractViolation);
}

TEST(VectorSbg, BoxConstraintKeepsStatesInside) {
  const HarmonicStep schedule;
  VectorSbgConfig c = cfg(7, 2, 2);
  c.constraint = {Interval(-1.0, 0.5), Interval(0.0, 2.0)};
  VectorSplitBrain attack(2, 50.0, 5.0);
  const auto r = run_vector_sbg(c, separable_costs(), spread_initial(5), 2,
                                &attack, schedule, 3000);
  for (const Vec& x : r.final_states) {
    EXPECT_GE(x[0], -1.0 - 1e-12);
    EXPECT_LE(x[0], 0.5 + 1e-12);
    EXPECT_GE(x[1], 0.0 - 1e-12);
    EXPECT_LE(x[1], 2.0 + 1e-12);
  }
  EXPECT_LT(r.disagreement.back(), 0.05);
}

TEST(VectorSbg, ConstraintDimMismatchRejected) {
  const HarmonicStep schedule;
  VectorSbgConfig c = cfg(7, 2, 2);
  c.constraint = {Interval(-1.0, 1.0)};  // only one interval for dim 2
  EXPECT_THROW(VectorSbgAgent(AgentId{0}, separable_costs()[0], Vec{0.0, 0.0},
                              schedule, c),
               ContractViolation);
}

TEST(VectorSbg, InactiveBoxMatchesUnconstrained) {
  const HarmonicStep schedule;
  VectorSbgConfig unconstrained = cfg(7, 2, 2);
  VectorSbgConfig boxed = cfg(7, 2, 2);
  boxed.constraint = {Interval(-100.0, 100.0), Interval(-100.0, 100.0)};
  VectorSplitBrain attack_a(2, 50.0, 5.0), attack_b(2, 50.0, 5.0);
  const auto a = run_vector_sbg(unconstrained, separable_costs(),
                                spread_initial(5), 2, &attack_a, schedule, 500);
  const auto b = run_vector_sbg(boxed, separable_costs(), spread_initial(5), 2,
                                &attack_b, schedule, 500);
  ASSERT_EQ(a.final_states.size(), b.final_states.size());
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    EXPECT_EQ(a.final_states[i], b.final_states[i]);
}

// ------------------------------------------------- vector valid set Y_k

std::vector<VectorFunctionPtr> radial_triangle() {
  // Three radial hubers at the corners of a triangle + two repeats to get
  // m = 5 > 2f with f = 1. Coupled (rotation-invariant) costs.
  return {
      std::make_shared<RadialHuber>(Vec{0.0, 0.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{8.0, 0.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{4.0, 7.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{0.5, 0.5}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{7.5, 0.5}, 3.0, 1.0),
  };
}

TEST(VectorValid, UniformAverageOptimumIsValid) {
  const auto fns = radial_triangle();
  std::vector<VectorWeightedSum::Term> terms;
  for (const auto& fn : fns) terms.push_back({0.2, fn});
  const Vec opt = VectorWeightedSum(std::move(terms)).a_minimizer();
  EXPECT_TRUE(is_valid_vector_optimum(opt, fns, 1, 1e-3));
}

TEST(VectorValid, FarawayPointIsNotValid) {
  const auto fns = radial_triangle();
  EXPECT_FALSE(is_valid_vector_optimum(Vec{100.0, 100.0}, fns, 1, 1e-3));
}

TEST(VectorValid, RandomValidOptimaAreMembers) {
  const auto fns = radial_triangle();
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const Vec x = random_valid_optimum(fns, 1, rng);
    EXPECT_TRUE(is_valid_vector_optimum(x, fns, 1, 1e-3)) << "sample " << i;
  }
}

TEST(VectorValid, SeparableFamilyMidpointsStayValid) {
  // For separable costs the valid set is (coordinate-wise) convex-ish: the
  // counterexample search should come up empty.
  const std::vector<VectorFunctionPtr> fns{
      std::make_shared<SeparableHuber>(Vec{0.0, 0.0}, 3.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{1.0, 1.0}, 3.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{2.0, -1.0}, 3.0, 1.0),
  };
  Rng rng(5);
  EXPECT_FALSE(find_nonconvexity(fns, 0, rng, 40).has_value());
}

TEST(VectorValid, CoupledFamilyExhibitsNonconvexity) {
  // The paper's obstruction: for coupled (radial) costs the valid-optima
  // set is NOT convex — two valid optima whose midpoint is not valid.
  const auto fns = radial_triangle();
  Rng rng(11);
  const auto counterexample = find_nonconvexity(fns, 1, rng, 120);
  ASSERT_TRUE(counterexample.has_value());
  EXPECT_TRUE(is_valid_vector_optimum(counterexample->a, fns, 1, 1e-3));
  EXPECT_TRUE(is_valid_vector_optimum(counterexample->b, fns, 1, 1e-3));
  EXPECT_FALSE(is_valid_vector_optimum(counterexample->midpoint, fns, 1, 1e-5));
}

}  // namespace
}  // namespace ftmao
