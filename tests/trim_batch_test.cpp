// Bit-identity tests for the batched SoA trim kernels (trim/trim_batch)
// against the scalar reducers in trim/trim.hpp. The batched engine's
// determinism contract rests on these kernels selecting exactly the same
// doubles as the scalar nth_element / sort paths, so every comparison here
// is bitwise (EXPECT_EQ on doubles), never approximate.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "simd/simd.hpp"
#include "trim/trim.hpp"
#include "trim/trim_batch.hpp"

namespace ftmao {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Runs `body` once per compiled-and-supported SIMD backend, with that
// backend forced active; restores the previously active backend after.
void for_each_backend(const std::function<void(const char*)>& body) {
  const SimdIsa prev = simd_active();
  for (const SimdIsa isa : simd_compiled()) {
    if (!simd_supported(isa)) continue;
    ASSERT_TRUE(simd_select(isa));
    body(simd_isa_name(isa));
  }
  ASSERT_TRUE(simd_select(prev));
}

// Column r of an n x batch SoA matrix.
std::vector<double> column_of(const std::vector<double>& matrix, std::size_t n,
                              std::size_t batch, std::size_t r) {
  std::vector<double> column(n);
  for (std::size_t s = 0; s < n; ++s) column[s] = matrix[s * batch + r];
  return column;
}

std::vector<double> random_matrix(std::size_t n, std::size_t batch, Rng& rng,
                                  bool with_ties) {
  std::vector<double> m(n * batch);
  for (auto& x : m) {
    x = with_ties ? std::floor(rng.uniform(-4.0, 4.0))
                  : rng.uniform(-100.0, 100.0);
  }
  return m;
}

TEST(SortingNetwork, SortsEveryZeroOnePattern) {
  // 0-1 principle: a comparator network sorts all inputs iff it sorts
  // every 0/1 vector. Exhaustive up to n = 16.
  for (std::size_t n = 2; n <= 16; ++n) {
    const auto network = sorting_network(n);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = (mask >> i) & 1u ? 1.0 : 0.0;
      for (const auto& [i, j] : network) {
        if (v[i] > v[j]) std::swap(v[i], v[j]);
      }
      ASSERT_TRUE(std::is_sorted(v.begin(), v.end()))
          << "network n=" << n << " fails on mask " << mask;
    }
  }
}

TEST(SortingNetwork, ComparatorsAreInBoundsAndOrdered) {
  for (std::size_t n = 2; n <= kMaxSortingNetworkN; ++n) {
    for (const auto& [i, j] : sorting_network(n)) {
      EXPECT_LT(i, j);
      EXPECT_LT(j, n);
    }
  }
}

TEST(SortColumns, MatchesStdSortPerColumn) {
  Rng rng(11);
  for (std::size_t n : {2u, 3u, 5u, 8u, 13u, 27u, 32u, 33u, 40u}) {
    for (std::size_t batch : {1u, 3u, 4u, 7u}) {
      auto matrix = random_matrix(n, batch, rng, n % 2 == 0);
      const auto original = matrix;
      sort_columns(matrix.data(), n, batch);
      for (std::size_t r = 0; r < batch; ++r) {
        auto expected = column_of(original, n, batch, r);
        std::sort(expected.begin(), expected.end());
        const auto got = column_of(matrix, n, batch, r);
        EXPECT_EQ(expected, got) << "n=" << n << " batch=" << batch
                                 << " column=" << r;
      }
    }
  }
}

TEST(TrimBatch, BitIdenticalToScalarTrim) {
  // Randomized cross-check over every fan-in the engine can see (network
  // path up to 32, scalar fallback at 33) and every valid f, with and
  // without ties.
  Rng rng(7);
  for (std::size_t n = 2; n <= 33; ++n) {
    for (std::size_t f = 0; 2 * f + 1 <= n; ++f) {
      for (std::size_t batch : {1u, 3u, 8u}) {
        for (bool ties : {false, true}) {
          auto matrix = random_matrix(n, batch, rng, ties);
          const auto original = matrix;
          std::vector<double> value(batch), y_s(batch), y_l(batch);
          trim_batch(matrix.data(), n, batch, f, value.data(), y_s.data(),
                     y_l.data());
          for (std::size_t r = 0; r < batch; ++r) {
            const TrimResult expected = trim(column_of(original, n, batch, r), f);
            // Bitwise: the whole point of the batched kernel.
            EXPECT_EQ(expected.value, value[r])
                << "n=" << n << " f=" << f << " batch=" << batch << " r=" << r;
            EXPECT_EQ(expected.y_s, y_s[r]);
            EXPECT_EQ(expected.y_l, y_l[r]);
          }
        }
      }
    }
  }
}

TEST(TrimBatch, OptionalExtremesMayBeNull) {
  Rng rng(3);
  const std::size_t n = 7, f = 2, batch = 4;
  auto matrix = random_matrix(n, batch, rng, false);
  const auto original = matrix;
  std::vector<double> value(batch);
  trim_batch(matrix.data(), n, batch, f, value.data());
  for (std::size_t r = 0; r < batch; ++r) {
    EXPECT_EQ(trim(column_of(original, n, batch, r), f).value, value[r]);
  }
}

TEST(TrimBatch, TooFewValuesThrows) {
  std::vector<double> matrix(2, 0.0);
  std::vector<double> out(1);
  EXPECT_THROW(trim_batch(matrix.data(), 2, 1, 1, out.data()),
               ContractViolation);
}

TEST(TrimmedMeanBatch, BitIdenticalToScalarTrimmedMean) {
  Rng rng(19);
  for (std::size_t n = 2; n <= 33; ++n) {
    for (std::size_t f = 0; 2 * f + 1 <= n; ++f) {
      for (std::size_t batch : {1u, 5u}) {
        auto matrix = random_matrix(n, batch, rng, n % 3 == 0);
        const auto original = matrix;
        std::vector<double> mean(batch);
        trimmed_mean_batch(matrix.data(), n, batch, f, mean.data());
        for (std::size_t r = 0; r < batch; ++r) {
          EXPECT_EQ(trimmed_mean(column_of(original, n, batch, r), f), mean[r])
              << "n=" << n << " f=" << f << " batch=" << batch << " r=" << r;
        }
      }
    }
  }
}

TEST(TrimBatch, ZeroBatchIsANoOp) {
  double out = 0.0;
  trim_batch(nullptr, 7, 0, 2, &out);
  trimmed_mean_batch(nullptr, 7, 0, 2, &out);
  EXPECT_EQ(out, 0.0);
}

TEST(SortColumns, PreservesSignedZeroMultisetOnEveryBackend) {
  // The comparator is a conditional swap, so the network output must be a
  // true permutation of the input *bit patterns*: a column mixing +0.0
  // and -0.0 keeps exactly as many of each. (min/max-style comparators
  // fail this — they duplicate one zero and destroy the other.)
  for_each_backend([&](const char* isa) {
    for (std::size_t n : {2u, 3u, 4u, 7u, 8u, 16u, 32u}) {
      for (std::size_t batch : {1u, 3u, 4u, 5u}) {
        std::vector<double> matrix(n * batch);
        for (std::size_t s = 0; s < n; ++s)
          for (std::size_t r = 0; r < batch; ++r)
            matrix[s * batch + r] = ((s + r) % 2 == 0) ? 0.0 : -0.0;
        std::map<std::uint64_t, std::size_t> before;
        for (double v : matrix) ++before[bits(v)];
        sort_columns(matrix.data(), n, batch);
        std::map<std::uint64_t, std::size_t> after;
        for (double v : matrix) ++after[bits(v)];
        EXPECT_EQ(before, after) << isa << " n=" << n << " batch=" << batch;
        // And each column is sorted.
        for (std::size_t r = 0; r < batch; ++r) {
          for (std::size_t s = 0; s + 1 < n; ++s) {
            EXPECT_LE(matrix[s * batch + r], matrix[(s + 1) * batch + r]);
          }
        }
      }
    }
  });
}

// Adversarial IEEE-754 values through the full trim/trimmed-mean paths.
std::vector<double> special_matrix(std::size_t n, std::size_t batch,
                                   Rng& rng) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<double> pool = {
      0.0,     -0.0,     kInf,
      -kInf,   DBL_MIN,  -DBL_MIN,
      DBL_MAX, -DBL_MAX, std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min()};
  std::vector<double> m(n * batch);
  for (auto& x : m) {
    x = rng.uniform(0.0, 1.0) < 0.5
            ? pool[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(pool.size()) - 1))]
            : rng.uniform(-10.0, 10.0);
  }
  return m;
}

TEST(TrimBatch, SpecialValuesBitIdenticalToScalarTrimOnEveryBackend) {
  // Signed zeros, +/-inf, denormals and magnitude extremes: the batched
  // midpoint must match the scalar trim() bit-for-bit on every backend.
  // (y_s / y_l may legitimately differ in the *sign of zero* when a
  // selection boundary falls inside a run of mixed-sign zeros — ordering
  // among equal-comparing values is unspecified — so those compare by
  // double equality; the midpoint value itself is bit-compared.)
  Rng rng(23);
  for (std::size_t n : {3u, 7u, 13u, 31u, 32u}) {
    for (std::size_t f = 0; 2 * f + 1 <= n && f <= 4; ++f) {
      for (std::size_t batch : {1u, 3u, 4u, 6u}) {
        const auto original = special_matrix(n, batch, rng);
        for_each_backend([&](const char* isa) {
          auto matrix = original;
          std::vector<double> value(batch), y_s(batch), y_l(batch);
          trim_batch(matrix.data(), n, batch, f, value.data(), y_s.data(),
                     y_l.data());
          for (std::size_t r = 0; r < batch; ++r) {
            const TrimResult expected =
                trim(column_of(original, n, batch, r), f);
            EXPECT_EQ(bits(expected.value), bits(value[r]))
                << isa << " n=" << n << " f=" << f << " r=" << r;
            EXPECT_EQ(expected.y_s, y_s[r]) << isa;
            EXPECT_EQ(expected.y_l, y_l[r]) << isa;
          }
        });
      }
    }
  }
}

TEST(TrimBatch, NetworkFallbackBoundaryParityOnEveryBackend) {
  // n = 32 runs the sorting network, n = 33 the nth_element fallback; the
  // two paths must agree bitwise with the scalar reference on either side
  // of the boundary, on every backend, including with special values.
  Rng rng(29);
  for (std::size_t n : {kMaxSortingNetworkN, kMaxSortingNetworkN + 1}) {
    for (std::size_t f : {0u, 2u, 10u}) {
      const std::size_t batch = 5;
      const auto original = special_matrix(n, batch, rng);
      for_each_backend([&](const char* isa) {
        auto matrix = original;
        std::vector<double> value(batch);
        trim_batch(matrix.data(), n, batch, f, value.data());
        auto mean_matrix = original;
        std::vector<double> mean(batch);
        trimmed_mean_batch(mean_matrix.data(), n, batch, f, mean.data());
        for (std::size_t r = 0; r < batch; ++r) {
          const auto column = column_of(original, n, batch, r);
          EXPECT_EQ(bits(trim(column, f).value), bits(value[r]))
              << isa << " n=" << n << " f=" << f << " r=" << r;
          EXPECT_EQ(bits(trimmed_mean(column, f)), bits(mean[r]))
              << isa << " n=" << n << " f=" << f << " r=" << r;
        }
      });
    }
  }
}

}  // namespace
}  // namespace ftmao
