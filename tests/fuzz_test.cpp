// Randomized differential and fuzz tests: every randomized check compares
// an optimized implementation against an independent (naive) reference or
// a mathematical invariant, across many seeded cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "consensus/eig.hpp"
#include "func/combination.hpp"
#include "func/functions.hpp"
#include "func/library.hpp"
#include "core/step_size.hpp"
#include "lp/simplex.hpp"
#include "opt/golden.hpp"
#include "trim/trim.hpp"

namespace ftmao {
namespace {

// ------------------------------------------------ trim vs naive reference

// Reference implementation straight from the paper's prose: full sort,
// drop f head and f tail, midpoint of the remainder's extremes.
TrimResult reference_trim(std::vector<double> values, std::size_t f) {
  std::sort(values.begin(), values.end());
  const double y_s = values[f];
  const double y_l = values[values.size() - 1 - f];
  return {y_s + (y_l - y_s) / 2.0, y_s, y_l};
}

TEST(Fuzz, TrimMatchesNaiveReference) {
  Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t f = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const std::size_t size =
        2 * f + 1 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    std::vector<double> values(size);
    for (auto& v : values) {
      // Mix scales and exact duplicates to stress tie handling.
      v = rng.bernoulli(0.3) ? std::floor(rng.uniform(-3.0, 3.0))
                             : rng.uniform(-1e6, 1e6);
    }
    const TrimResult fast = trim(values, f);
    const TrimResult ref = reference_trim(values, f);
    EXPECT_DOUBLE_EQ(fast.y_s, ref.y_s) << "trial " << trial;
    EXPECT_DOUBLE_EQ(fast.y_l, ref.y_l) << "trial " << trial;
    EXPECT_DOUBLE_EQ(fast.value, ref.value) << "trial " << trial;
  }
}

TEST(Fuzz, TrimmedMeanMatchesNaiveReference) {
  Rng rng(102);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t f = static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t size =
        2 * f + 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    std::vector<double> values(size);
    for (auto& v : values) v = rng.uniform(-100.0, 100.0);

    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (std::size_t i = f; i < sorted.size() - f; ++i) sum += sorted[i];
    const double ref = sum / static_cast<double>(sorted.size() - 2 * f);
    EXPECT_NEAR(trimmed_mean(values, f), ref, 1e-9);
  }
}

// -------------------------------------------- simplex vs 2-var brute force

// For 2-variable LPs, the optimum lies at a vertex: intersect every pair
// of active constraint boundaries (including the axes) and take the best
// feasible point. Independent of the simplex code path.
struct Line {
  // ax + by = c
  double a, b, c;
};

std::optional<std::pair<double, double>> intersect(const Line& p, const Line& q) {
  const double det = p.a * q.b - p.b * q.a;
  if (std::abs(det) < 1e-12) return std::nullopt;
  return std::make_pair((p.c * q.b - p.b * q.c) / det,
                        (p.a * q.c - p.c * q.a) / det);
}

TEST(Fuzz, SimplexMatchesVertexEnumerationIn2D) {
  Rng rng(103);
  for (int trial = 0; trial < 300; ++trial) {
    lp::Problem problem;
    problem.num_vars = 2;
    problem.objective = {rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    problem.sense = lp::Sense::Minimize;

    std::vector<Line> lines{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};  // axes
    const int m = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < m; ++i) {
      const double a = rng.uniform(-2.0, 2.0);
      const double b = rng.uniform(-2.0, 2.0);
      const double c = rng.uniform(0.5, 6.0);  // keeps origin feasible
      problem.add({a, b}, lp::Relation::LessEq, c);
      lines.push_back({a, b, c});
    }
    // Boundedness: cap both variables.
    problem.add({1.0, 0.0}, lp::Relation::LessEq, 50.0);
    problem.add({0.0, 1.0}, lp::Relation::LessEq, 50.0);
    lines.push_back({1.0, 0.0, 50.0});
    lines.push_back({0.0, 1.0, 50.0});

    auto feasible = [&](double x, double y) {
      if (x < -1e-7 || y < -1e-7) return false;
      for (std::size_t i = 2; i < lines.size(); ++i) {
        if (lines[i].a * x + lines[i].b * y > lines[i].c + 1e-7) return false;
      }
      return true;
    };

    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (std::size_t j = i + 1; j < lines.size(); ++j) {
        const auto pt = intersect(lines[i], lines[j]);
        if (!pt || !feasible(pt->first, pt->second)) continue;
        best = std::min(best, problem.objective[0] * pt->first +
                                  problem.objective[1] * pt->second);
      }
    }

    const lp::Solution sol = lp::solve(problem);
    ASSERT_EQ(sol.status, lp::Status::Optimal) << "trial " << trial;
    EXPECT_NEAR(sol.objective_value, best, 1e-6) << "trial " << trial;
  }
}

// ---------------------------------------- argmin vs golden-section search

TEST(Fuzz, WeightedSumArgminMatchesGoldenSection) {
  Rng rng(104);
  for (int trial = 0; trial < 100; ++trial) {
    Rng sub = rng.substream("family", static_cast<std::uint64_t>(trial));
    const auto fns = make_random_family(4, sub);
    std::vector<WeightedTerm> terms;
    double total = 0.0;
    for (const auto& fn : fns) {
      const double w = sub.uniform(0.1, 1.0);
      terms.push_back({w, fn});
      total += w;
    }
    for (auto& t : terms) t.weight /= total;
    const WeightedSum sum(terms);

    const double golden = golden_section_min(
        [&](double x) { return sum.value(x); }, -40.0, 40.0);
    // golden finds some minimizer; it must be inside (or extremely near)
    // the derivative-based argmin interval.
    EXPECT_LE(sum.argmin().distance_to(golden), 1e-4) << "trial " << trial;
  }
}

// --------------------------------------------------- EIG randomized lies

// An attack that answers every query with seeded random garbage — the
// "fuzzer adversary". Agreement must survive anything it does.
class RandomEigAttack final : public EigAttack {
 public:
  explicit RandomEigAttack(std::uint64_t seed) : seed_(seed) {}

  double initial_value(AgentId self, AgentId recipient) override {
    return hash_to_value(mix64(seed_ ^ (self.value * 1000003ULL + recipient.value)));
  }

  double relay_value(AgentId self, AgentId recipient, const EigPath& path,
                     double) override {
    std::uint64_t h = seed_ ^ (self.value * 1000003ULL + recipient.value);
    for (std::uint32_t p : path) h = mix64(h ^ p);
    return hash_to_value(h);
  }

 private:
  static double hash_to_value(std::uint64_t h) {
    return static_cast<double>(h % 2001) - 1000.0;
  }
  std::uint64_t seed_;
};

TEST(Fuzz, EigAgreementSurvivesRandomLies) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomEigAttack a(seed), b(seed + 1000);
    std::vector<EigAttack*> attacks(7, nullptr);
    const std::size_t slot_a = seed % 7;
    const std::size_t slot_b = (slot_a + 3) % 7;  // always distinct mod 7
    attacks[slot_a] = &a;
    attacks[slot_b] = &b;

    EigConfig config;
    config.n = 7;
    config.f = 2;
    for (std::uint32_t sender = 0; sender < 7; ++sender) {
      EigInstance instance(config, AgentId{sender}, attacks);
      instance.run(3.0);
      std::optional<double> first;
      for (std::uint32_t obs = 0; obs < 7; ++obs) {
        if (attacks[obs] != nullptr) continue;
        const double d = instance.decision(AgentId{obs});
        if (!first) first = d;
        EXPECT_DOUBLE_EQ(d, *first) << "seed " << seed << " sender " << sender;
      }
      if (attacks[sender] == nullptr) {
        // Validity for honest senders.
        EXPECT_DOUBLE_EQ(*first, 3.0);
      }
    }
  }
}

// --------------------------------------------- end-to-end SBG state fuzz

TEST(Fuzz, SbgHonestStatesAlwaysFiniteAndBounded) {
  // Wild random attacks for a short horizon: no honest state may become
  // NaN/inf or escape the initial hull by more than the step budget.
  Rng rng(105);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<double> honest{-2.0, -1.0, 0.0, 1.0, 2.0};
    std::vector<double> states = honest;
    const std::size_t f = 1;
    const HarmonicStep schedule;
    double budget = 2.0 * 4.0;  // initial hull width 4, L <= 2 baked below

    for (std::uint32_t t = 1; t <= 100; ++t) {
      std::vector<double> next(states.size());
      for (std::size_t j = 0; j < states.size(); ++j) {
        std::vector<double> sv = states;
        std::vector<double> gv;
        for (double x : states) gv.push_back(std::tanh(x));  // |g| <= 1
        // One Byzantine entry of unrestricted garbage per agent view.
        sv.push_back(rng.uniform(-1e12, 1e12));
        gv.push_back(rng.uniform(-1e12, 1e12));
        next[j] = trim_value(sv, f) - schedule.at(t - 1) * trim_value(gv, f);
      }
      states = next;
      for (double x : states) {
        ASSERT_TRUE(std::isfinite(x));
        ASSERT_LE(std::abs(x), budget + 10.0);
      }
    }
  }
}

}  // namespace
}  // namespace ftmao
