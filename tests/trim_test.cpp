// Unit + property tests for the Trim function (Section 4) and companion
// reducers. The key safety property: with at most f adversarial entries in
// a multiset of size >= 2f+1, the trimmed midpoint always lies within the
// convex hull of the honest entries.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "trim/trim.hpp"

namespace ftmao {
namespace {

TEST(Trim, NoRemovalWithFZero) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  const TrimResult r = trim(v, 0);
  EXPECT_DOUBLE_EQ(r.y_s, 1.0);
  EXPECT_DOUBLE_EQ(r.y_l, 3.0);
  EXPECT_DOUBLE_EQ(r.value, 2.0);
}

TEST(Trim, RemovesExtremes) {
  const std::vector<double> v{-100.0, 1.0, 2.0, 3.0, 100.0};
  const TrimResult r = trim(v, 1);
  EXPECT_DOUBLE_EQ(r.y_s, 1.0);
  EXPECT_DOUBLE_EQ(r.y_l, 3.0);
  EXPECT_DOUBLE_EQ(r.value, 2.0);
}

TEST(Trim, MinimumSizeExactly2fPlus1) {
  const std::vector<double> v{5.0, -7.0, 1.0};
  const TrimResult r = trim(v, 1);  // one value survives: y_s == y_l == 1
  EXPECT_DOUBLE_EQ(r.y_s, 1.0);
  EXPECT_DOUBLE_EQ(r.y_l, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 1.0);
}

TEST(Trim, TooFewValuesThrows) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(trim(v, 1), ContractViolation);
}

TEST(Trim, DuplicatesCountAsMultiset) {
  const std::vector<double> v{2.0, 2.0, 2.0, 2.0, 9.0};
  const TrimResult r = trim(v, 1);
  EXPECT_DOUBLE_EQ(r.y_s, 2.0);
  EXPECT_DOUBLE_EQ(r.y_l, 2.0);
}

TEST(Trim, OrderInvariant) {
  std::vector<double> v{5.0, -3.0, 7.0, 0.0, 2.0, 9.0, -8.0};
  const double a = trim_value(v, 2);
  std::sort(v.begin(), v.end(), std::greater<>());
  EXPECT_DOUBLE_EQ(trim_value(v, 2), a);
}

TEST(Trim, TranslationEquivariant) {
  Rng rng(3);
  std::vector<double> v(9);
  for (auto& x : v) x = rng.uniform(-5.0, 5.0);
  const double base = trim_value(v, 2);
  for (auto& x : v) x += 10.0;
  EXPECT_NEAR(trim_value(v, 2), base + 10.0, 1e-12);
}

TEST(Trim, ScaleEquivariant) {
  Rng rng(4);
  std::vector<double> v(9);
  for (auto& x : v) x = rng.uniform(-5.0, 5.0);
  const double base = trim_value(v, 2);
  for (auto& x : v) x *= 3.0;
  EXPECT_NEAR(trim_value(v, 2), 3.0 * base, 1e-12);
}

// The paper's core robustness property: Trim's output is sandwiched by
// honest values when at most f entries are adversarial.
TEST(Trim, OutputInsideHonestHullProperty) {
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t f = static_cast<std::size_t>(rng.uniform_int(1, 3));
    const std::size_t honest = 2 * f + 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    std::vector<double> values;
    double h_lo = 1e300, h_hi = -1e300;
    for (std::size_t i = 0; i < honest; ++i) {
      const double x = rng.uniform(-10.0, 10.0);
      values.push_back(x);
      h_lo = std::min(h_lo, x);
      h_hi = std::max(h_hi, x);
    }
    const std::size_t byz = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(f)));
    for (std::size_t i = 0; i < byz; ++i)
      values.push_back(rng.uniform(-1e6, 1e6));  // arbitrary adversarial junk
    const TrimResult r = trim(values, f);
    EXPECT_GE(r.value, h_lo) << "trial " << trial;
    EXPECT_LE(r.value, h_hi) << "trial " << trial;
    EXPECT_GE(r.y_s, h_lo);
    EXPECT_LE(r.y_l, h_hi);
  }
}

// Without trimming (f = 0) a single adversarial value escapes the hull —
// the contrast that motivates the algorithm.
TEST(Trim, NoTrimIsNotRobust) {
  const std::vector<double> v{1.0, 2.0, 3.0, 1e6};
  EXPECT_GT(minmax_midpoint(v), 3.0);
  EXPECT_LE(trim_value(v, 1), 3.0);
}

// ----------------------------------------------------------- trimmed mean

TEST(TrimmedMean, DropsExtremesAndAverages) {
  const std::vector<double> v{-100.0, 1.0, 2.0, 3.0, 100.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 1), 2.0);
}

TEST(TrimmedMean, FZeroIsMean) {
  const std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(v, 0), 3.0);
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(TrimmedMean, AlsoInsideHonestHull) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t f = 2;
    std::vector<double> values;
    double h_lo = 1e300, h_hi = -1e300;
    for (std::size_t i = 0; i < 7; ++i) {
      const double x = rng.uniform(0.0, 1.0);
      values.push_back(x);
      h_lo = std::min(h_lo, x);
      h_hi = std::max(h_hi, x);
    }
    values.push_back(1e9);
    values.push_back(-1e9);
    const double tm = trimmed_mean(values, f);
    EXPECT_GE(tm, h_lo);
    EXPECT_LE(tm, h_hi);
  }
}

// ------------------------------------------------------------------ means

TEST(Mean, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW(mean(v), ContractViolation);
  EXPECT_THROW(minmax_midpoint(v), ContractViolation);
}

TEST(MinmaxMidpoint, Midrange) {
  const std::vector<double> v{4.0, -2.0, 1.0};
  EXPECT_DOUBLE_EQ(minmax_midpoint(v), 1.0);
}

// Parameterized sweep: trim on sorted sequences 0..n-1 has a closed form.
class TrimSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrimSweep, ClosedFormOnArithmeticSequence) {
  const auto [n, f] = GetParam();
  if (n < 2 * f + 1) GTEST_SKIP();
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  const TrimResult r = trim(v, static_cast<std::size_t>(f));
  EXPECT_DOUBLE_EQ(r.y_s, f);
  EXPECT_DOUBLE_EQ(r.y_l, n - 1 - f);
  EXPECT_DOUBLE_EQ(r.value, (n - 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, TrimSweep,
                         ::testing::Combine(::testing::Values(3, 5, 8, 13, 21, 40),
                                            ::testing::Values(0, 1, 2, 3, 6)));

}  // namespace
}  // namespace ftmao
