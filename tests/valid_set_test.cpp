// Tests for the valid family C, the gradient envelopes r/s, the optima set
// Y (Lemma 1 / Appendix A), and admissibility checks — including
// brute-force cross-validation of the envelope-based Y computation.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/admissibility.hpp"
#include "core/valid_set.hpp"
#include "func/functions.hpp"
#include "func/library.hpp"
#include "trim/trim.hpp"

namespace ftmao {
namespace {

ScalarFunctionPtr huber_at(double center, double delta = 5.0,
                           double scale = 1.0) {
  return std::make_shared<Huber>(center, delta, scale);
}

// --------------------------------------------------- is_admissible_weights

TEST(AdmissibleWeights, AcceptsValidVector) {
  // m=4, gamma=3, beta=1/6: three weights at 1/6 + slack on one.
  const std::vector<double> w{0.5, 1.0 / 6, 1.0 / 6, 1.0 / 6};
  EXPECT_TRUE(is_admissible_weights(w, 1.0 / 6, 3));
}

TEST(AdmissibleWeights, RejectsNegativeWeight) {
  const std::vector<double> w{1.2, -0.2};
  EXPECT_FALSE(is_admissible_weights(w, 0.1, 1));
}

TEST(AdmissibleWeights, RejectsWrongSum) {
  const std::vector<double> w{0.4, 0.4};
  EXPECT_FALSE(is_admissible_weights(w, 0.1, 2));
}

TEST(AdmissibleWeights, RejectsTooFewBoundedWeights) {
  const std::vector<double> w{0.9, 0.05, 0.05};
  EXPECT_FALSE(is_admissible_weights(w, 0.1, 2));
  EXPECT_TRUE(is_admissible_weights(w, 0.1, 1));
}

// ------------------------------------------------------------- ValidFamily

TEST(ValidFamily, BetaGammaMatchPaper) {
  const ValidFamily family({huber_at(0), huber_at(1), huber_at(2),
                            huber_at(3), huber_at(4)},
                           /*f=*/1);
  EXPECT_EQ(family.gamma(), 4u);  // m - f = 5 - 1
  EXPECT_DOUBLE_EQ(family.beta(), 1.0 / 8.0);
}

TEST(ValidFamily, RequiresMGreaterThan2F) {
  EXPECT_THROW(ValidFamily({huber_at(0), huber_at(1)}, 1), ContractViolation);
}

TEST(ValidFamily, FZeroYEqualsUniformArgminHull) {
  // With f = 0 the family still spans admissible weight vectors (all
  // weights >= 1/(2m)); Y contains the uniform average's argmin.
  const ValidFamily family({huber_at(-2), huber_at(0), huber_at(2)}, 0);
  const Interval y = family.optima_set();
  EXPECT_TRUE(y.contains(0.0));  // uniform average optimum
  // Y is inside the hull of local optima.
  EXPECT_GE(y.lo(), -2.0 - 1e-6);
  EXPECT_LE(y.hi(), 2.0 + 1e-6);
}

TEST(ValidFamily, EnvelopesBracketAllValidGradients) {
  Rng rng(13);
  const ValidFamily family(
      {huber_at(-3), huber_at(-1), huber_at(0), huber_at(2), huber_at(5)}, 1);
  for (int i = 0; i < 50; ++i) {
    const auto w = family.random_admissible_weights(rng);
    const WeightedSum p = family.member(w);
    const double x = rng.uniform(-8.0, 8.0);
    EXPECT_LE(p.derivative(x), family.max_envelope_gradient(x) + 1e-9);
    EXPECT_GE(p.derivative(x), family.min_envelope_gradient(x) - 1e-9);
  }
}

TEST(ValidFamily, EnvelopeIsAttainedByEnvelopeFunction) {
  const ValidFamily family(
      {huber_at(-3), huber_at(-1), huber_at(0), huber_at(2), huber_at(5)}, 1);
  for (double x : {-6.0, -1.5, 0.0, 1.0, 4.0}) {
    const WeightedSum q_max = family.envelope_function_at(x, true);
    EXPECT_NEAR(q_max.derivative(x), family.max_envelope_gradient(x), 1e-9);
    const WeightedSum q_min = family.envelope_function_at(x, false);
    EXPECT_NEAR(q_min.derivative(x), family.min_envelope_gradient(x), 1e-9);
  }
}

TEST(ValidFamily, EnvelopeRIsNonDecreasingAndContinuous) {
  // Proposition 2, checked on a grid.
  const ValidFamily family(make_mixed_family(7, 10.0), 2);
  double prev = family.max_envelope_gradient(-20.0);
  for (double x = -20.0; x <= 20.0; x += 0.01) {
    const double r = family.max_envelope_gradient(x);
    EXPECT_GE(r, prev - 1e-9);
    EXPECT_LE(std::abs(r - prev), 1.0);  // crude continuity bound on the grid
    prev = r;
  }
}

TEST(ValidFamily, MemberArgminInsideY) {
  Rng rng(21);
  const ValidFamily family(make_mixed_family(6, 8.0), 1);
  const Interval y = family.optima_set();
  for (int i = 0; i < 100; ++i) {
    const auto w = family.random_admissible_weights(rng);
    const Interval am = family.member(w).argmin();
    EXPECT_GE(am.lo(), y.lo() - 1e-6);
    EXPECT_LE(am.hi(), y.hi() + 1e-6);
  }
}

TEST(ValidFamily, SampledHullApproachesYFromInside) {
  Rng rng(31);
  const ValidFamily family({huber_at(-4), huber_at(-1), huber_at(1),
                            huber_at(3), huber_at(6)},
                           1);
  const Interval y = family.optima_set();
  const Interval sampled = family.sampled_optima_hull(rng, 400);
  EXPECT_GE(sampled.lo(), y.lo() - 1e-6);
  EXPECT_LE(sampled.hi(), y.hi() + 1e-6);
  // The random sampler covers a decent fraction of Y.
  EXPECT_GT(sampled.length(), 0.3 * y.length());
}

TEST(ValidFamily, YEndpointsMatchEnvelopeArgmins) {
  // min Y is a minimizer of the max-side envelope function anchored at
  // min Y itself (Appendix A's construction), symmetrically for max Y.
  const ValidFamily family(
      {huber_at(-3), huber_at(0), huber_at(1), huber_at(4)}, 1);
  const Interval y = family.optima_set();
  const WeightedSum q_lo = family.envelope_function_at(y.lo(), true);
  EXPECT_NEAR(q_lo.derivative(y.lo()), 0.0, 1e-6);
  const WeightedSum q_hi = family.envelope_function_at(y.hi(), false);
  EXPECT_NEAR(q_hi.derivative(y.hi()), 0.0, 1e-6);
}

TEST(ValidFamily, IdenticalFunctionsGiveTheirArgmin) {
  const ValidFamily family({huber_at(2), huber_at(2), huber_at(2),
                            huber_at(2)},
                           1);
  const Interval y = family.optima_set();
  EXPECT_NEAR(y.lo(), 2.0, 1e-6);
  EXPECT_NEAR(y.hi(), 2.0, 1e-6);
}

TEST(ValidFamily, FlatArgminWidensY) {
  const auto flat = std::make_shared<FlatHuber>(Interval(-1.0, 1.0), 2.0, 1.0);
  const ValidFamily family({flat, flat, flat}, 0);
  const Interval y = family.optima_set();
  EXPECT_NEAR(y.lo(), -1.0, 1e-6);
  EXPECT_NEAR(y.hi(), 1.0, 1e-6);
}

TEST(ValidFamily, LargerFWidensY) {
  const std::vector<ScalarFunctionPtr> fns{
      huber_at(-4), huber_at(-2), huber_at(0), huber_at(2), huber_at(4),
      huber_at(6), huber_at(8)};
  const Interval y1 = ValidFamily(fns, 1).optima_set();
  const Interval y2 = ValidFamily(fns, 2).optima_set();
  EXPECT_LE(y2.lo(), y1.lo() + 1e-6);  // grows left
  EXPECT_GE(y2.hi(), y1.hi() - 1e-6);  // grows right
  EXPECT_GE(y2.length(), y1.length() - 1e-9);
}

TEST(ValidFamily, DistanceToOptima) {
  const ValidFamily family({huber_at(0), huber_at(0), huber_at(0)}, 0);
  EXPECT_NEAR(family.distance_to_optima(3.0), 3.0, 1e-6);
  EXPECT_NEAR(family.distance_to_optima(0.0), 0.0, 1e-6);
}

TEST(ValidFamily, MemberRejectsInadmissibleWeights) {
  const ValidFamily family({huber_at(0), huber_at(1), huber_at(2)}, 0);
  const std::vector<double> bad{1.0, 0.0, 0.0};  // only 1 weight >= beta, gamma=3
  EXPECT_THROW(family.member(bad), ContractViolation);
}

TEST(ValidFamily, RandomWeightsAlwaysAdmissible) {
  Rng rng(77);
  const ValidFamily family(make_mixed_family(9, 12.0), 2);
  for (int i = 0; i < 200; ++i) {
    const auto w = family.random_admissible_weights(rng);
    EXPECT_TRUE(is_admissible_weights(w, family.beta(), family.gamma()));
  }
}

TEST(ValidFamily, MembershipAgreesWithDistance) {
  const ValidFamily family(
      {huber_at(-3), huber_at(-1), huber_at(0), huber_at(2), huber_at(5)}, 1);
  const Interval y = family.optima_set();
  EXPECT_TRUE(family.contains_optimum(y.midpoint()));
  EXPECT_TRUE(family.contains_optimum(y.lo(), 1e-6));
  EXPECT_FALSE(family.contains_optimum(y.hi() + 1.0));
}

TEST(ValidFamily, OptimumWitnessExistsInsideYOnly) {
  const ValidFamily family(
      {huber_at(-3), huber_at(-1), huber_at(0), huber_at(2), huber_at(5)}, 1);
  const Interval y = family.optima_set();

  const auto inside = family.optimum_witness(y.midpoint());
  ASSERT_TRUE(inside.has_value());
  EXPECT_TRUE(is_admissible_weights(*inside, family.beta(), family.gamma()));
  // The witness really is stationary at the point.
  double g = 0.0;
  for (std::size_t i = 0; i < inside->size(); ++i)
    g += (*inside)[i] * family.functions()[i]->derivative(y.midpoint());
  EXPECT_NEAR(g, 0.0, 1e-6);

  EXPECT_FALSE(family.optimum_witness(y.hi() + 0.5).has_value());
  EXPECT_FALSE(family.optimum_witness(y.lo() - 0.5).has_value());
}

// ------------------------------------------------------------- audit_trim

TEST(AuditTrim, PassesForActualTrimOutputs) {
  // Values held by honest agents plus Byzantine entries; Lemma 2 promises
  // a witness for the trimmed result w.r.t. honest values only.
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t f = 1 + static_cast<std::size_t>(rng.uniform_int(0, 1));
    const std::size_t n = 3 * f + 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t m = n - f;  // honest agents
    std::vector<double> honest(m);
    for (auto& v : honest) v = rng.uniform(-5.0, 5.0);
    std::vector<double> all = honest;
    for (std::size_t b = 0; b < f; ++b) all.push_back(rng.uniform(-50.0, 50.0));
    const double trimmed = trim_value(all, f);
    const TrimAuditResult audit = audit_trim(honest, trimmed, f);
    EXPECT_TRUE(audit.witness_found) << "trial " << trial;
    if (audit.witness_found) {
      EXPECT_GE(audit.support_size, m - f);
      EXPECT_GE(audit.min_support_weight,
                1.0 / (2.0 * static_cast<double>(m - f)) - 1e-6);
    }
  }
}

TEST(AuditTrim, FailsForValueOutsideHull) {
  const std::vector<double> honest{0.0, 1.0, 2.0, 3.0};
  EXPECT_FALSE(audit_trim(honest, 10.0, 1).witness_found);
}

TEST(BestAchievableBeta, AtLeastPaperGuaranteeOnTrimOutputs) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t f = 1;
    const std::size_t m = 4;
    std::vector<double> honest(m);
    for (auto& v : honest) v = rng.uniform(-3.0, 3.0);
    std::vector<double> all = honest;
    all.push_back(rng.uniform(-30.0, 30.0));  // one Byzantine
    const double trimmed = trim_value(all, f);
    const double beta_star = best_achievable_beta(honest, trimmed, f);
    EXPECT_GE(beta_star, 1.0 / (2.0 * static_cast<double>(m - f)) - 1e-6)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace ftmao
