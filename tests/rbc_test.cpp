// Tests for Bracha reliable broadcast (validity, agreement, totality) and
// the RBC-based asynchronous SBG (the n > 3f asynchronous construction).

#include <gtest/gtest.h>

#include <memory>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "consensus/rbc.hpp"
#include "consensus/rbc_sbg.hpp"
#include "func/library.hpp"
#include "net/proto_engine.hpp"

namespace ftmao {
namespace {

using Tuple = RbcSbgTuple;
using Msg = RbcSbgMessage;

// ----------------------------------------------------- RbcProcess (unit)

TEST(RbcProcess, Thresholds) {
  RbcProcess<Tuple> p(7, 2, AgentId{0});
  EXPECT_EQ(p.echo_quorum(), 5u);    // ceil((7+2+1)/2)
  EXPECT_EQ(p.ready_amplify(), 3u);  // f+1
  EXPECT_EQ(p.deliver_quorum(), 5u); // 2f+1
}

TEST(RbcProcess, HappyPathDelivery) {
  // Feed a full honest execution into one process by hand.
  RbcProcess<Tuple> p(4, 1, AgentId{0});
  const RbcInstanceId inst{AgentId{3}, 7};
  const Tuple v{1.5, -2.0};

  // INIT from the origin triggers our echo.
  auto out = p.on_message(AgentId{3}, {RbcKind::Init, inst, v});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, RbcKind::Echo);

  // Echo quorum for n=4,f=1 is ceil(6/2)=3: echoes from 3 distinct agents.
  p.on_message(AgentId{0}, {RbcKind::Echo, inst, v});
  p.on_message(AgentId{1}, {RbcKind::Echo, inst, v});
  out = p.on_message(AgentId{2}, {RbcKind::Echo, inst, v});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, RbcKind::Ready);

  // Deliver quorum 2f+1 = 3 readies.
  p.on_message(AgentId{0}, {RbcKind::Ready, inst, v});
  p.on_message(AgentId{1}, {RbcKind::Ready, inst, v});
  EXPECT_FALSE(p.delivered(inst).has_value());
  p.on_message(AgentId{2}, {RbcKind::Ready, inst, v});
  ASSERT_TRUE(p.delivered(inst).has_value());
  EXPECT_EQ(*p.delivered(inst), v);
}

TEST(RbcProcess, DuplicateVotesIgnored) {
  RbcProcess<Tuple> p(4, 1, AgentId{0});
  const RbcInstanceId inst{AgentId{3}, 1};
  const Tuple v{1.0, 1.0};
  // The same sender echoing 10 times counts once.
  for (int i = 0; i < 10; ++i) p.on_message(AgentId{1}, {RbcKind::Echo, inst, v});
  const auto out = p.on_message(AgentId{2}, {RbcKind::Echo, inst, v});
  EXPECT_TRUE(out.empty());  // 2 < 3 quorum
}

TEST(RbcProcess, NonOriginInitIgnored) {
  RbcProcess<Tuple> p(4, 1, AgentId{0});
  const RbcInstanceId inst{AgentId{3}, 1};
  const auto out = p.on_message(AgentId{2}, {RbcKind::Init, inst, {9.0, 9.0}});
  EXPECT_TRUE(out.empty());
}

TEST(RbcProcess, ReadyAmplification) {
  // f+1 readies trigger our own ready even without an echo quorum.
  RbcProcess<Tuple> p(7, 2, AgentId{0});
  const RbcInstanceId inst{AgentId{6}, 1};
  const Tuple v{2.0, 0.0};
  p.on_message(AgentId{1}, {RbcKind::Ready, inst, v});
  p.on_message(AgentId{2}, {RbcKind::Ready, inst, v});
  const auto out = p.on_message(AgentId{3}, {RbcKind::Ready, inst, v});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, RbcKind::Ready);
}

TEST(RbcProcess, ConflictingEchoesNeverReachQuorum) {
  // n=7, f=2, echo quorum 5: 3 echoes of v1 and 3 of v2 deliver nothing.
  RbcProcess<Tuple> p(7, 2, AgentId{0});
  const RbcInstanceId inst{AgentId{6}, 1};
  for (std::uint32_t s = 0; s < 3; ++s)
    p.on_message(AgentId{s}, {RbcKind::Echo, inst, {1.0, 0.0}});
  for (std::uint32_t s = 3; s < 6; ++s)
    p.on_message(AgentId{s}, {RbcKind::Echo, inst, {-1.0, 0.0}});
  EXPECT_FALSE(p.delivered(inst).has_value());
}

// --------------------------------------- full protocol over ProtoEngine

// A plain RBC participant (no SBG): broadcasts nothing of its own, just
// follows the protocol; used to test the primitive end to end.
class PlainRbcNode final : public ProtoNode<Msg> {
 public:
  PlainRbcNode(AgentId id, std::size_t n, std::size_t f,
               std::optional<Tuple> own_broadcast = std::nullopt)
      : id_(id), n_(n), rbc_(n, f, id), own_(own_broadcast) {}

  std::vector<Unicast<Msg>> boot() override {
    if (!own_) return {};
    return expand(rbc_.broadcast(1, *own_));
  }

  std::vector<Unicast<Msg>> on_receive(AgentId from, const Msg& msg) override {
    return expand(rbc_.on_message(from, msg));
  }

  std::optional<Tuple> delivered(AgentId origin, std::uint32_t tag) const {
    return rbc_.delivered({origin, tag});
  }

 private:
  std::vector<Unicast<Msg>> expand(std::vector<Msg> msgs) const {
    std::vector<Unicast<Msg>> out;
    for (const auto& m : msgs)
      for (std::uint32_t k = 0; k < n_; ++k) out.push_back({AgentId{k}, m});
    return out;
  }

  AgentId id_;
  std::size_t n_;
  RbcProcess<Tuple> rbc_;
  std::optional<Tuple> own_;
};

TEST(RbcProtocol, ValidityUnderRandomDelays) {
  UniformDelay delays(0.2, 3.0, Rng(5));
  ProtoEngine<Msg> engine(delays);
  std::vector<std::unique_ptr<PlainRbcNode>> nodes;
  for (std::uint32_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<PlainRbcNode>(
        AgentId{i}, 4, 1,
        i == 0 ? std::optional<Tuple>({4.5, -1.0}) : std::nullopt));
    engine.add_node(AgentId{i}, nodes.back().get());
  }
  engine.run(nullptr);
  for (const auto& node : nodes) {
    const auto d = node->delivered(AgentId{0}, 1);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, Tuple(4.5, -1.0));
  }
}

// Byzantine origin that equivocates its INIT per recipient parity.
class EquivocatingOrigin final : public ProtoNode<Msg> {
 public:
  EquivocatingOrigin(AgentId id, std::size_t n) : id_(id), n_(n) {}

  std::vector<Unicast<Msg>> boot() override {
    std::vector<Unicast<Msg>> out;
    for (std::uint32_t k = 0; k < n_; ++k) {
      const Tuple v = k % 2 == 0 ? Tuple{10.0, 0.0} : Tuple{-10.0, 0.0};
      out.push_back({AgentId{k}, Msg{RbcKind::Init, {id_, 1}, v}});
    }
    return out;
  }

  std::vector<Unicast<Msg>> on_receive(AgentId, const Msg&) override {
    return {};
  }

 private:
  AgentId id_;
  std::size_t n_;
};

TEST(RbcProtocol, AgreementUnderEquivocation) {
  // The equivocating origin either gets ONE value delivered everywhere or
  // nothing delivered anywhere — never different values.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    UniformDelay delays(0.2, 3.0, Rng(seed));
    ProtoEngine<Msg> engine(delays);
    std::vector<std::unique_ptr<PlainRbcNode>> honest;
    for (std::uint32_t i = 0; i < 6; ++i) {
      honest.push_back(std::make_unique<PlainRbcNode>(AgentId{i}, 7, 2));
      engine.add_node(AgentId{i}, honest.back().get());
    }
    EquivocatingOrigin byz(AgentId{6}, 7);
    engine.add_node(AgentId{6}, &byz);
    engine.run(nullptr);

    std::optional<Tuple> first;
    for (const auto& node : honest) {
      const auto d = node->delivered(AgentId{6}, 1);
      if (d) {
        if (!first) first = d;
        EXPECT_EQ(*d, *first) << "seed " << seed;
      }
    }
  }
}

// Byzantine that spams fake READY messages for an honest origin with a
// wrong value: with only f < 2f+1 byzantine readies, no honest agent may
// deliver the forged value.
class ReadyForger final : public ProtoNode<Msg> {
 public:
  ReadyForger(AgentId id, std::size_t n) : id_(id), n_(n) {}

  std::vector<Unicast<Msg>> boot() override {
    std::vector<Unicast<Msg>> out;
    for (int rep = 0; rep < 5; ++rep) {
      for (std::uint32_t k = 0; k < n_; ++k) {
        out.push_back(
            {AgentId{k}, Msg{RbcKind::Ready, {AgentId{0}, 1}, {666.0, 0.0}}});
      }
    }
    return out;
  }
  std::vector<Unicast<Msg>> on_receive(AgentId, const Msg&) override {
    return {};
  }

 private:
  AgentId id_;
  std::size_t n_;
};

TEST(RbcProtocol, ForgedReadiesCannotCauseWrongDelivery) {
  UniformDelay delays(0.2, 1.0, Rng(3));
  ProtoEngine<Msg> engine(delays);
  std::vector<std::unique_ptr<PlainRbcNode>> honest;
  for (std::uint32_t i = 0; i < 5; ++i) {
    honest.push_back(std::make_unique<PlainRbcNode>(
        AgentId{i}, 7, 2,
        i == 0 ? std::optional<Tuple>({1.0, 1.0}) : std::nullopt));
    engine.add_node(AgentId{i}, honest.back().get());
  }
  ReadyForger f1(AgentId{5}, 7), f2(AgentId{6}, 7);
  engine.add_node(AgentId{5}, &f1);
  engine.add_node(AgentId{6}, &f2);
  engine.run(nullptr);
  for (const auto& node : honest) {
    const auto d = node->delivered(AgentId{0}, 1);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, Tuple(1.0, 1.0));  // the true value, never 666
  }
}

// ---------------------------------------------------------- RBC-SBG

RbcSbgConfig rbc_config(std::size_t n, std::size_t f, std::size_t rounds) {
  RbcSbgConfig c;
  c.n = n;
  c.f = f;
  c.max_rounds = rounds;
  return c;
}

TEST(RbcSbg, ResilienceNGreaterThan3FAccepted) {
  EXPECT_NO_THROW(rbc_config(7, 2, 10).validate());
  EXPECT_THROW(rbc_config(6, 2, 10).validate(), ContractViolation);
}

TEST(RbcSbg, ConvergesWithEquivocatingByzantineAtN3FPlus1) {
  // n = 7 = 3f + 1 with f = 2: BELOW the quorum variant's n > 5f bound —
  // the whole point of the RBC construction.
  const auto costs = make_spread_hubers(5, 8.0);
  const std::vector<double> init{-4.0, -2.0, 0.0, 2.0, 4.0};
  const HarmonicStep schedule;
  UniformDelay delays(0.5, 1.5, Rng(7));
  const auto r = run_rbc_sbg(rbc_config(7, 2, 400), costs, init, 2, schedule,
                             delays);
  EXPECT_EQ(r.final_states.size(), 5u);
  EXPECT_LT(r.disagreement.back(), 0.1);
  EXPECT_GT(r.virtual_time, 0.0);
}

TEST(RbcSbg, DeterministicPerSeed) {
  const auto costs = make_spread_hubers(5, 8.0);
  const std::vector<double> init{-4.0, -2.0, 0.0, 2.0, 4.0};
  const HarmonicStep schedule;
  auto run_once = [&] {
    UniformDelay delays(0.5, 1.5, Rng(9));
    return run_rbc_sbg(rbc_config(7, 2, 100), costs, init, 2, schedule, delays)
        .final_states;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RbcSbg, FaultFreeAgreesTightly) {
  const auto costs = make_spread_hubers(7, 8.0);
  std::vector<double> init;
  for (std::size_t i = 0; i < 7; ++i) init.push_back(-4.0 + 8.0 * i / 6.0);
  const HarmonicStep schedule;
  UniformDelay delays(0.5, 1.5, Rng(3));
  const auto r =
      run_rbc_sbg(rbc_config(7, 2, 400), costs, init, 0, schedule, delays);
  EXPECT_LT(r.disagreement.back(), 0.05);
}

TEST(RbcSbg, StatesStayInReasonableRangeUnderAttack) {
  // The equivocating adversary advertises +-60; trimming + RBC's
  // no-equivocation guarantee keep honest states near the honest hull.
  const auto costs = make_spread_hubers(5, 8.0);
  const std::vector<double> init{-4.0, -2.0, 0.0, 2.0, 4.0};
  const HarmonicStep schedule;
  UniformDelay delays(0.5, 1.5, Rng(17));
  const auto r =
      run_rbc_sbg(rbc_config(7, 2, 300), costs, init, 2, schedule, delays);
  for (double x : r.final_states) EXPECT_LT(std::abs(x), 10.0);
}

}  // namespace
}  // namespace ftmao
