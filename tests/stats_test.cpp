// Tests for the descriptive-statistics helpers.

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ftmao {
namespace {

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, SingleValue) {
  const std::vector<double> v{3.5};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Stats, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW(summarize(v), ContractViolation);
  EXPECT_THROW(quantile(v, 0.5), ContractViolation);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(Stats, QuantileRangeChecked) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, -0.1), ContractViolation);
  EXPECT_THROW(quantile(v, 1.1), ContractViolation);
}

TEST(Stats, CorrelationPerfectAndInverse) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
}

TEST(Stats, CorrelationNearZeroForIndependentSamples) {
  Rng rng(12);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(0.0, 1.0);
    y[i] = rng.uniform(0.0, 1.0);
  }
  EXPECT_LT(std::abs(correlation(x, y)), 0.05);
}

TEST(Stats, CorrelationRequiresVariance) {
  const std::vector<double> flat{1.0, 1.0, 1.0};
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_THROW(correlation(flat, x), ContractViolation);
}

}  // namespace
}  // namespace ftmao
