// Tests for the strongest-attack search utility.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "sim/attack_search.hpp"

namespace ftmao {
namespace {

TEST(AttackGrid, NonEmptyAndNamed) {
  const auto grid = standard_attack_grid();
  EXPECT_GE(grid.size(), 15u);
  for (const auto& c : grid) EXPECT_FALSE(c.name.empty());
}

TEST(AttackSearch, OutcomesSortedByBias) {
  Scenario base = make_standard_scenario(7, 2, 8.0, AttackKind::None, 800);
  const auto result = find_strongest_attack(base, standard_attack_grid());
  ASSERT_FALSE(result.outcomes.empty());
  for (std::size_t i = 1; i < result.outcomes.size(); ++i)
    EXPECT_GE(result.outcomes[i - 1].bias, result.outcomes[i].bias);
  EXPECT_DOUBLE_EQ(result.strongest().bias, result.outcomes.front().bias);
}

TEST(AttackSearch, NoAttackEverLeavesY) {
  Scenario base = make_standard_scenario(7, 2, 8.0, AttackKind::None, 2000);
  const auto result = find_strongest_attack(base, standard_attack_grid());
  for (const auto& o : result.outcomes) {
    EXPECT_LT(o.dist_to_y, 0.1) << o.name;
  }
}

TEST(AttackSearch, BiasBoundedByYGeometry) {
  // No attack can displace the answer further than the reference's
  // distance to the far end of Y.
  Scenario base = make_standard_scenario(7, 2, 8.0, AttackKind::None, 2000);
  const auto result = find_strongest_attack(base, standard_attack_grid());
  const double cap =
      std::max(result.reference_state - result.optima.lo(),
               result.optima.hi() - result.reference_state) +
      0.1;
  for (const auto& o : result.outcomes) EXPECT_LE(o.bias, cap) << o.name;
}

TEST(AttackSearch, SilentIsWeakerThanPull) {
  Scenario base = make_standard_scenario(7, 2, 8.0, AttackKind::None, 1500);
  std::vector<AttackCandidate> candidates;
  {
    AttackCandidate silent;
    silent.name = "silent";
    silent.config.kind = AttackKind::Silent;
    candidates.push_back(silent);
    AttackCandidate pull;
    pull.name = "pull";
    pull.config.kind = AttackKind::PullToTarget;
    pull.config.target = 100.0;
    pull.config.gradient_magnitude = 10.0;
    candidates.push_back(pull);
  }
  const auto result = find_strongest_attack(base, candidates);
  EXPECT_EQ(result.strongest().name, "pull");
}

TEST(AttackSearch, EmptyCandidatesRejected) {
  Scenario base = make_standard_scenario(7, 2, 8.0, AttackKind::None, 10);
  EXPECT_THROW(find_strongest_attack(base, {}), ContractViolation);
}

}  // namespace
}  // namespace ftmao
