// Bit-identity tests for the batched vector engine (sim/batch_vector
// _runner): run_vector_sbg_batch must produce exactly the VectorRunResult
// run_vector_scenario produces per replica — every series entry, final
// state coordinate, and the failure-free optimum — compared bitwise, for
// whichever SIMD backend the FTMAO_ISA matrix selects. Also pins the
// dim == 1 collapse onto the scalar batched engine via ScalarAsVector.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "func/functions.hpp"
#include "sim/batch_runner.hpp"
#include "sim/batch_vector_runner.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "sim/vector_scenario.hpp"
#include "vector/vector_function.hpp"

namespace ftmao {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

void expect_series_bits(const Series& a, const Series& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(bits(a[i]), bits(b[i]))
        << what << " diverges at index " << i << ": " << a[i] << " vs "
        << b[i];
}

void expect_vec_bits(const Vec& a, const Vec& b, const char* what) {
  ASSERT_EQ(a.dim(), b.dim()) << what;
  for (std::size_t k = 0; k < a.dim(); ++k)
    ASSERT_EQ(bits(a[k]), bits(b[k]))
        << what << " diverges at coordinate " << k << ": " << a[k] << " vs "
        << b[k];
}

void expect_result_identical(const VectorRunResult& scalar,
                             const VectorRunResult& batched) {
  expect_series_bits(scalar.disagreement, batched.disagreement,
                     "disagreement");
  expect_series_bits(scalar.dist_to_average_optimum,
                     batched.dist_to_average_optimum,
                     "dist_to_average_optimum");
  expect_vec_bits(scalar.failure_free_optimum, batched.failure_free_optimum,
                  "failure_free_optimum");
  ASSERT_EQ(scalar.final_states.size(), batched.final_states.size());
  for (std::size_t j = 0; j < scalar.final_states.size(); ++j)
    expect_vec_bits(scalar.final_states[j], batched.final_states[j],
                    "final_states");
}

void expect_batch_matches_scalar(const std::vector<VectorScenario>& replicas) {
  const std::vector<VectorRunResult> batched = run_vector_sbg_batch(replicas);
  ASSERT_EQ(batched.size(), replicas.size());
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    SCOPED_TRACE("replica " + std::to_string(i));
    expect_result_identical(run_vector_scenario(replicas[i]), batched[i]);
  }
}

std::vector<VectorScenario> seed_axis(std::size_t n, std::size_t f,
                                      std::size_t dim, AttackKind kind,
                                      std::size_t rounds, std::size_t seeds) {
  std::vector<VectorScenario> replicas;
  for (std::size_t s = 0; s < seeds; ++s)
    replicas.push_back(make_standard_vector_scenario(n, f, 8.0, kind, rounds,
                                                     1 + s, dim));
  return replicas;
}

TEST(BatchVectorRunner, EveryAttackKindMatchesScalar) {
  // Covers the shared-trims fast path (recipient-independent strategies),
  // the per-recipient slow path (SplitBrain), per-replica RNG streams
  // (RandomNoise), and the round-dependent strategies.
  for (AttackKind kind :
       {AttackKind::None, AttackKind::Silent, AttackKind::FixedValue,
        AttackKind::SplitBrain, AttackKind::HullEdgeUp,
        AttackKind::HullEdgeDown, AttackKind::RandomNoise,
        AttackKind::SignFlip, AttackKind::PullToTarget, AttackKind::FlipFlop,
        AttackKind::DelayedStrike}) {
    SCOPED_TRACE(static_cast<int>(kind));
    expect_batch_matches_scalar(seed_axis(7, 2, 2, kind, 40, 3));
  }
}

TEST(BatchVectorRunner, LaneBoundaryDimsMatchScalar) {
  // d = 7 / 8 / 9 straddle the widest register width; d = 1 with B = 1 is
  // the minimal single-lane batch. SplitBrain keeps the per-recipient
  // (non-uniform) path exercised at every width.
  for (std::size_t dim : {1u, 2u, 7u, 8u, 9u}) {
    for (std::size_t seeds : {1u, 3u}) {
      SCOPED_TRACE("dim=" + std::to_string(dim) +
                   " seeds=" + std::to_string(seeds));
      expect_batch_matches_scalar(
          seed_axis(7, 2, dim, AttackKind::SplitBrain, 30, seeds));
      expect_batch_matches_scalar(
          seed_axis(7, 2, dim, AttackKind::SignFlip, 30, seeds));
    }
  }
}

TEST(BatchVectorRunner, ConstraintDefaultsAndPartialByzMatchScalar) {
  auto replicas = seed_axis(7, 2, 3, AttackKind::Silent, 40, 3);
  for (VectorScenario& s : replicas) {
    s.constraint = {Interval{-3.0, 3.0}, Interval{-1.5, 2.5},
                    Interval{0.0, 4.0}};
    s.default_payload = VecPayload{Vec{1.5, -0.5, 2.0}, Vec{-0.25, 0.5, 0.0}};
    // Fewer actual faults than the f budget: one Byzantine slot becomes a
    // sixth honest agent.
    s.byzantine_count = 1;
    s.honest_costs.push_back(
        std::make_shared<SeparableHuber>(Vec{1.0, -1.0, 0.5}, 1.0, 1.0));
    s.honest_initial.push_back(Vec{1.0, -1.0, 0.5});
  }
  expect_batch_matches_scalar(replicas);
}

TEST(BatchVectorRunner, HeterogeneousReplicasMatchScalar) {
  // Same shape (n, f, dim, rounds, byzantine_count), everything else
  // different per replica: attack, step schedule, seed, constraint,
  // default payload. Forces the non-uniform payload path in mixed rounds.
  auto replicas = seed_axis(7, 2, 4, AttackKind::None, 30, 4);
  replicas[1].attack.kind = AttackKind::PullToTarget;
  replicas[1].attack.target = -11.0;
  replicas[1].step.kind = StepKind::Power;
  replicas[2].attack.kind = AttackKind::RandomNoise;
  replicas[2].default_payload =
      VecPayload{Vec{1.5, -0.5, 0.25, -0.125}, Vec{0.5, -0.5, 0.5, -0.5}};
  replicas[3].attack.kind = AttackKind::SplitBrain;
  replicas[3].constraint = {Interval{-6.0, 6.0}, Interval{-6.0, 6.0},
                            Interval{-6.0, 6.0}, Interval{-6.0, 6.0}};
  replicas[3].seed = 99;
  expect_batch_matches_scalar(replicas);
}

TEST(BatchVectorRunner, MixedSplitBrainSignFlipClassesMatchScalar) {
  // Cross-attack pack: split-brain (per-recipient-half payloads, two view
  // classes) mixed with sign-flip and pull in one lane-packed batch must
  // stay bit-identical to the scalar engine.
  auto replicas = seed_axis(7, 2, 3, AttackKind::SplitBrain, 40, 4);
  replicas[1].attack.kind = AttackKind::SignFlip;
  replicas[1].attack.amplification = 4.0;
  replicas[2].attack.kind = AttackKind::PullToTarget;
  replicas[2].attack.target = 20.0;
  replicas[2].attack.gradient_magnitude = 10.0;
  replicas[3].seed = 77;
  expect_batch_matches_scalar(replicas);
}

TEST(BatchVectorRunner, SpecialValuesMatchScalar) {
  // Signed zeros, denormals, and huge coordinates flow through the trim
  // networks and fused step with the same bits on every backend.
  std::vector<VectorScenario> replicas;
  for (std::uint64_t seed : {1u, 2u}) {
    VectorScenario s;
    s.n = 7;
    s.f = 2;
    s.dim = 3;
    s.byzantine_count = 2;
    s.attack.kind = AttackKind::FixedValue;
    s.attack.state_magnitude = 1e300;
    s.attack.gradient_magnitude = 5e-324;  // denormal payload gradient
    s.rounds = 25;
    s.seed = seed;
    s.default_payload = VecPayload{Vec{-0.0, 0.0, -0.0}, Vec{0.0, -0.0, 0.0}};
    const double denormal = std::numeric_limits<double>::denorm_min();
    const std::vector<Vec> centers = {Vec{-0.0, 1.0, -1.0},
                                      Vec{denormal, -denormal, 0.0},
                                      Vec{4.0, -4.0, 1e8},
                                      Vec{-2.0, 2.0, -1e8},
                                      Vec{0.5, -0.5, 0.25}};
    for (const Vec& c : centers) {
      s.honest_costs.push_back(std::make_shared<SeparableHuber>(c, 0.5, 1.0));
      s.honest_initial.push_back(c);
    }
    replicas.push_back(std::move(s));
  }
  expect_batch_matches_scalar(replicas);
}

TEST(BatchVectorRunner, DimOneCollapsesOntoScalarBatchEngine) {
  // The same population expressed as dim-1 vector scenarios (scalar costs
  // wrapped in ScalarAsVector) and as scalar Scenarios must land on
  // bitwise-identical final states through their respective batched
  // engines. Restricted to attacks whose payloads do not depend on the
  // adversary RNG stream or per-sender instancing (the two engines seed
  // their adversaries differently).
  constexpr std::size_t kN = 7, kF = 2, kRounds = 50;
  for (AttackKind kind :
       {AttackKind::Silent, AttackKind::FixedValue, AttackKind::SplitBrain,
        AttackKind::SignFlip, AttackKind::PullToTarget}) {
    SCOPED_TRACE(static_cast<int>(kind));
    std::vector<Scenario> scalar_replicas;
    std::vector<VectorScenario> vector_replicas;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      Scenario s;
      s.n = kN;
      s.f = kF;
      for (std::size_t b = 0; b < kF; ++b) s.faulty.push_back(kN - 1 - b);
      VectorScenario v;
      v.n = kN;
      v.f = kF;
      v.dim = 1;
      v.byzantine_count = kF;
      for (std::size_t i = 0; i < kN; ++i) {
        const double center =
            -4.0 + 8.0 * static_cast<double>(i) / static_cast<double>(kN - 1);
        auto cost = std::make_shared<Huber>(center, 2.0, 1.0);
        s.functions.push_back(cost);
        s.initial_states.push_back(center);
        if (i < kN - kF) {
          v.honest_costs.push_back(std::make_shared<ScalarAsVector>(cost));
          v.honest_initial.push_back(Vec(1, center));
        }
      }
      s.attack.kind = kind;
      s.rounds = kRounds;
      s.seed = seed;
      v.attack.kind = kind;
      v.rounds = kRounds;
      v.seed = seed;
      scalar_replicas.push_back(std::move(s));
      vector_replicas.push_back(std::move(v));
    }
    const std::vector<RunMetrics> scalar = run_sbg_batch(scalar_replicas);
    const std::vector<VectorRunResult> vector =
        run_vector_sbg_batch(vector_replicas);
    ASSERT_EQ(scalar.size(), vector.size());
    for (std::size_t r = 0; r < scalar.size(); ++r) {
      SCOPED_TRACE("replica " + std::to_string(r));
      ASSERT_EQ(scalar[r].final_states.size(), vector[r].final_states.size());
      for (std::size_t j = 0; j < scalar[r].final_states.size(); ++j) {
        ASSERT_EQ(vector[r].final_states[j].dim(), 1u);
        ASSERT_EQ(bits(scalar[r].final_states[j]),
                  bits(vector[r].final_states[j][0]))
            << "agent " << j;
      }
    }
  }
}

TEST(BatchVectorRunner, MismatchedShapeThrows) {
  std::vector<VectorScenario> replicas =
      seed_axis(7, 2, 2, AttackKind::None, 10, 1);
  replicas.push_back(
      make_standard_vector_scenario(7, 2, 8.0, AttackKind::None, 10, 2, 3));
  EXPECT_THROW(run_vector_sbg_batch(replicas), ContractViolation);
}

TEST(BatchVectorRunner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(run_vector_sbg_batch({}).empty());
}

TEST(SweepVector, DimAxisEnumeratesDimsMiddle) {
  SweepConfig config;
  config.sizes = {{7, 2}, {10, 3}};
  config.dims = {1, 4};
  config.attacks = {AttackKind::Silent, AttackKind::SignFlip};
  config.seeds = {1};
  const auto specs = sweep_cell_specs(config);
  ASSERT_EQ(specs.size(), 8u);
  // sizes-major, dims-middle, attacks-minor.
  EXPECT_EQ(specs[0], (CellSpec{7, 2, 1, AttackKind::Silent}));
  EXPECT_EQ(specs[1], (CellSpec{7, 2, 1, AttackKind::SignFlip}));
  EXPECT_EQ(specs[2], (CellSpec{7, 2, 4, AttackKind::Silent}));
  EXPECT_EQ(specs[3], (CellSpec{7, 2, 4, AttackKind::SignFlip}));
  EXPECT_EQ(specs[4], (CellSpec{10, 3, 1, AttackKind::Silent}));
}

TEST(SweepVector, CsvIdenticalAcrossEnginesAndBatchSizes) {
  // The --dim grid axis routes d >= 2 cells through the vector engines;
  // the CSV must be bit-identical between the scalar reference path and
  // the batched path at every batch size, with dim = 1 rows untouched.
  SweepConfig config;
  config.sizes = {{7, 2}};
  config.dims = {1, 2, 8};
  config.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip};
  config.seeds = {1, 2, 3};
  config.rounds = 60;

  config.scalar_engine = true;
  const std::string reference = sweep_to_csv(run_sweep(config));
  config.scalar_engine = false;
  for (std::size_t batch_size : {0u, 1u, 2u}) {
    config.batch_size = batch_size;
    EXPECT_EQ(reference, sweep_to_csv(run_sweep(config)))
        << "batch_size=" << batch_size;
  }
}

TEST(SweepVector, AsyncEngineRejectsVectorDims) {
  SweepConfig config;
  config.sizes = {{11, 2}};
  config.dims = {2};
  config.attacks = {AttackKind::Silent};
  config.seeds = {1};
  config.async_engine = true;
  EXPECT_THROW(config.validate(), ContractViolation);
}

}  // namespace
}  // namespace ftmao
