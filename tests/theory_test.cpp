// Tests for the theoretical-bound calculators, including the strongest
// theory-vs-practice check in the suite: the measured disagreement of
// every round of every attacked run must sit below the exact bound (10).

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "core/theory.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

TEST(Theory, ContractionFactorValues) {
  EXPECT_DOUBLE_EQ(contraction_factor(5, 2), 1.0 - 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(contraction_factor(3, 0), 1.0 - 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(contraction_factor(2, 1), 0.5);
  EXPECT_THROW(contraction_factor(2, 2), ContractViolation);
}

TEST(Theory, BoundSeriesDecaysToZeroWithHarmonic) {
  const HarmonicStep schedule;
  const Series bound = disagreement_upper_bound(10.0, 2.0, schedule, 5, 2, 50000);
  EXPECT_LT(bound.back(), 0.01);
  // And it is monotone after the transient.
  for (std::size_t t = 100; t < bound.size(); ++t)
    EXPECT_LE(bound[t], bound[t - 1] + 1e-15);
}

TEST(Theory, BoundSeriesMatchesClosedFormFirstSteps) {
  // D[1] = rho*D0 + 2 L lambda[0] rho, by hand for rho = 5/6, L = 1.
  const HarmonicStep schedule;  // lambda[0] = 1
  const Series bound = disagreement_upper_bound(6.0, 1.0, schedule, 5, 2, 2);
  const double rho = 5.0 / 6.0;
  EXPECT_DOUBLE_EQ(bound[0], 6.0);
  EXPECT_DOUBLE_EQ(bound[1], rho * 6.0 + 2.0 * rho);
  EXPECT_DOUBLE_EQ(bound[2], rho * bound[1] + 2.0 * 1.0 * rho);
}

TEST(Theory, Proposition1MatchesDirectSummation) {
  const HarmonicStep schedule;
  const double b = 0.8;
  const Series l = proposition1_series(b, schedule, 60);
  // Direct double loop for l(t) = sum_{r=0}^{t-1} lambda[r] b^{t-r}.
  for (std::size_t t : {1ul, 5ul, 20ul, 60ul}) {
    double direct = 0.0;
    for (std::size_t r = 0; r < t; ++r)
      direct += schedule.at(r) * std::pow(b, static_cast<double>(t - r));
    EXPECT_NEAR(l[t], direct, 1e-12);
  }
}

TEST(Theory, Proposition1GoesToZero) {
  const HarmonicStep schedule;
  const Series l = proposition1_series(0.9, schedule, 100000);
  EXPECT_LT(l.back(), 1e-3);
  // O(1/t): t * l(t) bounded.
  EXPECT_LT(100000.0 * l.back(), 50.0);
}

TEST(Theory, TravelBudgetHarmonicIsLogarithmic) {
  const HarmonicStep schedule;
  const double b1 = travel_budget(1.0, schedule, 100);
  const double b2 = travel_budget(1.0, schedule, 10000);
  // 1 + H_{T-1} ~ ln T: quadrupling e-folds adds ~ log factor.
  EXPECT_NEAR(b2 - b1, std::log(10000.0 / 100.0), 0.1);
  EXPECT_DOUBLE_EQ(travel_budget(2.0, schedule, 100), 2.0 * b1);
}

TEST(Theory, BoundRoundsToEpsilonConsistentWithSeries) {
  const HarmonicStep schedule;
  const double eps = 0.05;
  const std::size_t t =
      bound_rounds_to_epsilon(eps, 8.0, 2.0, schedule, 5, 2, 200000);
  const Series bound = disagreement_upper_bound(8.0, 2.0, schedule, 5, 2, t);
  EXPECT_LE(bound.back(), eps);
  const Series before = disagreement_upper_bound(8.0, 2.0, schedule, 5, 2, t - 1);
  EXPECT_GT(before.back(), eps);
}

// --------------------------------------------- measured <= bound, always

class BoundDominatesMeasurement : public ::testing::TestWithParam<AttackKind> {};

TEST_P(BoundDominatesMeasurement, EveryRoundUnderEveryAttack) {
  Scenario s = make_standard_scenario(7, 2, 8.0, GetParam(), 2000);
  const RunMetrics m = run_sbg(s);
  const double L = family_gradient_bound(s.honest_functions());
  const HarmonicStep schedule;
  const Series bound = disagreement_upper_bound(
      m.disagreement[0], L, schedule, 5, 2, s.rounds);
  ASSERT_EQ(bound.size(), m.disagreement.size());
  for (std::size_t t = 0; t < bound.size(); ++t) {
    ASSERT_LE(m.disagreement[t], bound[t] + 1e-9)
        << "round " << t << " violates the Lemma 3 bound";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Attacks, BoundDominatesMeasurement,
    ::testing::Values(AttackKind::None, AttackKind::SplitBrain,
                      AttackKind::SignFlip, AttackKind::HullEdgeUp,
                      AttackKind::RandomNoise, AttackKind::PullToTarget,
                      AttackKind::FlipFlop));

TEST(Theory, MeasuredRoundsToEpsNeverExceedsBoundPrediction) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 100000);
  const RunMetrics m = run_sbg(s);
  const double L = family_gradient_bound(s.honest_functions());
  const HarmonicStep schedule;
  for (double eps : {0.1, 0.01, 0.001}) {
    const std::size_t measured = m.disagreement.settled_below(eps);
    const std::size_t predicted = bound_rounds_to_epsilon(
        eps, m.disagreement[0], L, schedule, 5, 2, s.rounds);
    EXPECT_LE(measured, predicted) << "eps " << eps;
  }
}

}  // namespace
}  // namespace ftmao
