// Fabric lease protocol + worker/merge policy: versioned codecs, atomic
// first-wins claims, heartbeat expiry and stealing, first-wins
// completion, and the merge-side audits (double completion, build and
// ISA disagreement). The in-process end-to-end at the bottom drives
// run_fabric_worker with a lambda runner, so the whole claim → run →
// publish → steal → merge loop is exercised without subprocesses; the
// subprocess transport is covered by scripts/shard_e2e.sh.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "fabric/backoff.hpp"
#include "fabric/fabric.hpp"
#include "fabric/lease.hpp"
#include "sim/shard.hpp"
#include "sim/shard_merge.hpp"
#include "sim/sweep.hpp"
#include "simd/simd.hpp"

namespace ftmao::fabric {
namespace {

SweepConfig grid_config() {
  SweepConfig c;
  c.sizes = {{7, 2}, {10, 3}};
  c.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip};
  c.seeds = {1, 2};
  c.rounds = 120;
  return c;
}

/// Fresh fabric directory under the test's scratch space.
class FabricDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("ftmao_fabric_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()))
                .string();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
};

ShardLease make_lease(std::size_t shard, int attempt,
                      const std::string& worker) {
  ShardLease lease;
  lease.shard_index = shard;
  lease.shard_count = 4;
  lease.attempt = attempt;
  lease.worker_id = worker;
  lease.git_rev = build_git_revision();
  lease.isa = simd_isa_name(simd_active());
  lease.heartbeat_ms = wall_clock_ms();
  return lease;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  ASSERT_TRUE(os) << path;
  os << text;
}

/// A runner computing real shard artifacts in-process — the fabric's
/// contract is transport-agnostic, so a lambda stands in for ftmao_sweep.
ShardRunner in_process_runner() {
  return [](const SweepConfig& config, std::size_t shard,
            std::size_t shard_count, const std::string& csv_scratch,
            const std::string& manifest_scratch) -> int {
    std::ofstream csv(csv_scratch, std::ios::binary);
    csv << sweep_to_csv(run_sweep_shard(config, shard, shard_count));
    std::ofstream manifest(manifest_scratch, std::ios::binary);
    manifest << manifest_to_json(
        make_shard_manifest(config, shard, shard_count));
    return 0;
  };
}

TEST(FabricCodec, GridRoundTrip) {
  const FabricGrid grid = make_fabric_grid(grid_config(), 4);
  EXPECT_EQ(grid.version, kFabricProtocolVersion);
  EXPECT_EQ(grid.shard_count, 4u);
  EXPECT_EQ(grid.seeds, "1,2");
  EXPECT_EQ(grid.git_rev, build_git_revision());
  EXPECT_EQ(grid_from_json(grid_to_json(grid)), grid);

  // The grid → config → grid loop is lossless, so every worker
  // re-derives the identical cell partition from the pinned JSON.
  const SweepConfig config = config_from_grid(grid);
  EXPECT_EQ(make_fabric_grid(config, 4), grid);
}

TEST(FabricCodec, GridRequiresCanonicalSeeds) {
  // The fabric re-expresses seeds through ftmao_sweep's `--seeds <count>`
  // flag, which always yields 1..k — any other list cannot ride the
  // subprocess transport and must be refused at init.
  SweepConfig config = grid_config();
  config.seeds = {3, 5};
  EXPECT_THROW(make_fabric_grid(config, 4), ContractViolation);
}

TEST(FabricCodec, LeaseRoundTrip) {
  const ShardLease lease = make_lease(2, 3, "worker-7");
  EXPECT_EQ(lease_from_json(lease_to_json(lease)), lease);
}

TEST(FabricCodec, CompletionRoundTrip) {
  CompletionRecord record;
  record.shard_index = 1;
  record.attempt = 2;
  record.worker_id = "w1";
  record.git_rev = "abc1234";
  record.isa = "avx2";
  record.wall_ms = 1234.5;
  EXPECT_EQ(completion_from_json(completion_to_json(record)), record);
}

TEST(FabricCodec, VersionMismatchRejected) {
  // A future protocol bump must not be silently misread by old readers.
  const FabricGrid grid = make_fabric_grid(grid_config(), 2);
  std::string json = grid_to_json(grid);
  const auto bump = [](std::string text) {
    const std::string needle = "\"version\": 1";
    const auto pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos);
    return text.replace(pos, needle.size(), "\"version\": 2");
  };
  EXPECT_THROW(grid_from_json(bump(json)), ContractViolation);
  EXPECT_THROW(lease_from_json(bump(lease_to_json(make_lease(0, 1, "w")))),
               ContractViolation);
  EXPECT_THROW(
      completion_from_json(bump(completion_to_json(CompletionRecord{}))),
      ContractViolation);
}

TEST_F(FabricDirTest, InitIsIdempotentForIdenticalGridOnly) {
  LeaseDir dir(root_);
  EXPECT_FALSE(dir.initialized());
  const FabricGrid grid = make_fabric_grid(grid_config(), 4);
  dir.init(grid);
  EXPECT_TRUE(dir.initialized());
  dir.init(grid);  // same grid: no-op
  EXPECT_EQ(dir.load_grid(), grid);

  FabricGrid other = grid;
  other.rounds += 1;
  EXPECT_THROW(dir.init(other), ContractViolation);
}

TEST_F(FabricDirTest, ClaimRenewExpireRoundTrip) {
  LeaseDir dir(root_);
  dir.init(make_fabric_grid(grid_config(), 4));
  EXPECT_FALSE(dir.current_lease(0).has_value());

  ShardLease lease = make_lease(0, 1, "w0");
  ASSERT_TRUE(dir.try_claim(lease));
  const auto current = dir.current_lease(0);
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(*current, lease);

  // Renewal advances the heartbeat in place; the same attempt stays the
  // current lease.
  const std::uint64_t before = lease.heartbeat_ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dir.renew(lease);
  EXPECT_GT(lease.heartbeat_ms, before);
  EXPECT_EQ(dir.current_lease(0)->heartbeat_ms, lease.heartbeat_ms);

  // Expiry is pure arithmetic on the recorded heartbeat.
  EXPECT_FALSE(lease_expired(lease, lease.heartbeat_ms + 10, 100));
  EXPECT_TRUE(lease_expired(lease, lease.heartbeat_ms + 101, 100));

  // A steal claims attempt 2; the highest attempt becomes current.
  ShardLease steal = make_lease(0, 2, "w1");
  ASSERT_TRUE(dir.try_claim(steal));
  EXPECT_EQ(dir.current_lease(0)->worker_id, "w1");
  EXPECT_EQ(dir.current_lease(0)->attempt, 2);
}

TEST_F(FabricDirTest, DuplicateClaimRejected) {
  LeaseDir dir(root_);
  dir.init(make_fabric_grid(grid_config(), 4));
  ASSERT_TRUE(dir.try_claim(make_lease(1, 1, "w0")));
  EXPECT_FALSE(dir.try_claim(make_lease(1, 1, "w1")));
  // The loser did not clobber the winner's lease.
  EXPECT_EQ(dir.current_lease(1)->worker_id, "w0");
}

TEST_F(FabricDirTest, ConcurrentClaimHasExactlyOneWinner) {
  LeaseDir dir(root_);
  dir.init(make_fabric_grid(grid_config(), 4));
  constexpr int kWorkers = 8;
  std::vector<int> won(kWorkers, 0);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&dir, &won, w] {
      won[w] = dir.try_claim(make_lease(2, 1, "w" + std::to_string(w)))
                   ? 1
                   : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  int winners = 0;
  for (int w : won) winners += w;
  EXPECT_EQ(winners, 1);
}

TEST_F(FabricDirTest, CompletionIsFirstWins) {
  LeaseDir dir(root_);
  dir.init(make_fabric_grid(grid_config(), 4));

  CompletionRecord first;
  first.shard_index = 0;
  first.worker_id = "w0";
  const std::string csv0 = dir.scratch_path("w0", "s.csv");
  const std::string man0 = dir.scratch_path("w0", "s.json");
  write_file(csv0, "csv-w0");
  write_file(man0, "manifest-w0");
  EXPECT_FALSE(dir.completed(0));
  EXPECT_TRUE(dir.publish_completion(first, csv0, man0));
  EXPECT_TRUE(dir.completed(0));

  // A presumed-dead worker finishing late loses the race; its scratch
  // artifacts are discarded and the canonical files stay the winner's.
  CompletionRecord late = first;
  late.worker_id = "w1";
  late.attempt = 2;
  const std::string csv1 = dir.scratch_path("w1", "s.csv");
  const std::string man1 = dir.scratch_path("w1", "s.json");
  write_file(csv1, "csv-w1");
  write_file(man1, "manifest-w1");
  EXPECT_FALSE(dir.publish_completion(late, csv1, man1));
  EXPECT_FALSE(std::filesystem::exists(csv1));
  std::ifstream kept(dir.csv_path(0));
  std::string text;
  std::getline(kept, text);
  EXPECT_EQ(text, "csv-w0");

  std::vector<std::string> errors;
  const std::vector<CompletionRecord> records = dir.completions(errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].worker_id, "w0");
}

TEST(FabricBackoff, JitterIsDeterministicBoundedAndPerShard) {
  BackoffPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 450;
  const std::uint64_t seed = shard_backoff_seed(3);
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const std::int64_t delay = retry_delay_ms(policy, seed, attempt);
    // Linear ramp plus jitter strictly inside one base interval.
    EXPECT_GE(delay, policy.base_ms * attempt);
    EXPECT_LT(delay, policy.base_ms * (attempt + 1));
    // Deterministic: same shard + attempt always waits the same time.
    EXPECT_EQ(delay, retry_delay_ms(policy, seed, attempt));
  }
  // Distinct shards desynchronize: across a few shards the jitter must
  // not collapse to one value (that was the thundering-herd bug).
  std::set<std::int64_t> delays;
  for (std::size_t shard = 0; shard < 16; ++shard)
    delays.insert(retry_delay_ms(policy, shard_backoff_seed(shard), 1));
  EXPECT_GT(delays.size(), 1u);
  // The cap clamps the ramp.
  EXPECT_EQ(retry_delay_ms(policy, seed, 1000), policy.max_ms);
  // A zero base disables waiting entirely.
  policy.base_ms = 0;
  EXPECT_EQ(retry_delay_ms(policy, seed, 2), 0);
}

TEST_F(FabricDirTest, WorkerEndToEndMergesByteIdentical) {
  LeaseDir dir(root_);
  const SweepConfig config = grid_config();
  dir.init(make_fabric_grid(config, 3));

  WorkerOptions options;
  options.fabric_dir = root_;
  options.worker_id = "solo";
  options.runner = in_process_runner();
  options.log = nullptr;
  const WorkerReport report = run_fabric_worker(options);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.all_done);
  EXPECT_EQ(report.claimed, 3u);
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.stolen, 0u);

  FabricMergeOptions merge_options;
  merge_options.fabric_dir = root_;
  const FabricMergeReport merged = collect_and_merge(merge_options);
  EXPECT_TRUE(merged.ok()) << (merged.errors.empty()
                                   ? std::string("merge errors")
                                   : merged.errors.front());
  EXPECT_EQ(merged.merge.csv, sweep_to_csv(run_sweep(config)));
}

TEST_F(FabricDirTest, FleetSlicesPartitionTheGrid) {
  LeaseDir dir(root_);
  const SweepConfig config = grid_config();
  dir.init(make_fabric_grid(config, 4));

  for (long slice = 0; slice < 2; ++slice) {
    WorkerOptions options;
    options.fabric_dir = root_;
    options.worker_id = "fleet" + std::to_string(slice);
    options.runner = in_process_runner();
    options.fleet_index = slice;
    options.fleet_size = 2;
    options.log = nullptr;
    const WorkerReport report = run_fabric_worker(options);
    EXPECT_TRUE(report.errors.empty());
    EXPECT_TRUE(report.slice_done);
    EXPECT_EQ(report.completed, 2u) << "slice " << slice;
  }
  std::vector<std::string> errors;
  EXPECT_EQ(dir.completions(errors).size(), 4u);
}

TEST_F(FabricDirTest, StaleLeaseIsStolenAndRecorded) {
  LeaseDir dir(root_);
  const SweepConfig config = grid_config();
  dir.init(make_fabric_grid(config, 2));

  // A worker claimed shard 0 and died: its heartbeat never advances.
  ShardLease dead = make_lease(0, 1, "dead-worker");
  dead.shard_count = 2;
  dead.heartbeat_ms = wall_clock_ms() - 10'000;
  ASSERT_TRUE(dir.try_claim(dead));

  WorkerOptions options;
  options.fabric_dir = root_;
  options.worker_id = "rescuer";
  options.runner = in_process_runner();
  options.lease_ttl_ms = 200;
  options.wait_all = true;
  options.log = nullptr;
  const WorkerReport report = run_fabric_worker(options);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.all_done);
  EXPECT_EQ(report.stolen, 1u);

  // The acceptance property: the stolen shard's completion names a
  // different worker than the original lease, on a later attempt.
  std::vector<std::string> errors;
  for (const CompletionRecord& record : dir.completions(errors)) {
    if (record.shard_index != 0) continue;
    EXPECT_EQ(record.worker_id, "rescuer");
    EXPECT_NE(record.worker_id, dead.worker_id);
    EXPECT_EQ(record.attempt, 2);
  }
  FabricMergeOptions merge_options;
  merge_options.fabric_dir = root_;
  EXPECT_TRUE(collect_and_merge(merge_options).ok());
}

TEST_F(FabricDirTest, FailedAttemptsRetryWithBackoffThenSucceed) {
  LeaseDir dir(root_);
  const SweepConfig config = grid_config();
  dir.init(make_fabric_grid(config, 2));

  std::map<std::size_t, int> calls;
  ShardRunner flaky = [&calls](const SweepConfig& cfg, std::size_t shard,
                               std::size_t shard_count,
                               const std::string& csv_scratch,
                               const std::string& manifest_scratch) -> int {
    if (++calls[shard] == 1 && shard == 1) return 7;  // first attempt fails
    return in_process_runner()(cfg, shard, shard_count, csv_scratch,
                               manifest_scratch);
  };

  WorkerOptions options;
  options.fabric_dir = root_;
  options.worker_id = "flaky";
  options.runner = flaky;
  options.retries = 2;
  options.backoff.base_ms = 1;  // keep the test fast
  options.log = nullptr;
  const WorkerReport report = run_fabric_worker(options);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.all_done);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(calls[1], 2);

  // Worker-local retries reuse the lease: still attempt 1, no steal.
  std::vector<std::string> errors;
  for (const CompletionRecord& record : dir.completions(errors))
    EXPECT_EQ(record.attempt, 1);
  EXPECT_EQ(report.stolen, 0u);
}

TEST_F(FabricDirTest, MergeRejectsDoubleCompletion) {
  LeaseDir dir(root_);
  const SweepConfig config = grid_config();
  dir.init(make_fabric_grid(config, 2));
  WorkerOptions options;
  options.fabric_dir = root_;
  options.worker_id = "w0";
  options.runner = in_process_runner();
  options.log = nullptr;
  ASSERT_TRUE(run_fabric_worker(options).all_done);

  // Within one directory the link(2) protocol makes double completion
  // impossible; overlaid CI artifact directories can still carry two done
  // records for one shard. The merge must refuse that shard.
  CompletionRecord rogue;
  rogue.shard_index = 0;
  rogue.attempt = 2;
  rogue.worker_id = "rogue";
  rogue.git_rev = build_git_revision();
  write_file(dir.root() + "/results/shard_0.done.overlay.json",
             completion_to_json(rogue));

  FabricMergeOptions merge_options;
  merge_options.fabric_dir = root_;
  const FabricMergeReport merged = collect_and_merge(merge_options);
  EXPECT_FALSE(merged.ok());
  ASSERT_FALSE(merged.errors.empty());
  EXPECT_NE(merged.errors.front().find("double completion"),
            std::string::npos)
      << merged.errors.front();
}

TEST_F(FabricDirTest, MergeRejectsForeignBuildAndIsaDisagreement) {
  LeaseDir dir(root_);
  const SweepConfig config = grid_config();
  dir.init(make_fabric_grid(config, 2));
  WorkerOptions options;
  options.fabric_dir = root_;
  options.worker_id = "w0";
  options.runner = in_process_runner();
  options.log = nullptr;
  ASSERT_TRUE(run_fabric_worker(options).all_done);

  std::vector<std::string> errors;
  std::vector<CompletionRecord> records = dir.completions(errors);
  ASSERT_EQ(records.size(), 2u);

  // Rewrite shard 1's record as if a different build produced it.
  CompletionRecord foreign = records[1];
  foreign.git_rev = "deadbee";
  write_file(dir.done_path(foreign.shard_index),
             completion_to_json(foreign));
  FabricMergeOptions merge_options;
  merge_options.fabric_dir = root_;
  FabricMergeReport merged = collect_and_merge(merge_options);
  EXPECT_FALSE(merged.ok());
  ASSERT_FALSE(merged.errors.empty());
  EXPECT_NE(merged.errors.front().find("mixing binaries"), std::string::npos)
      << merged.errors.front();

  // Now the right build but a different SIMD backend: rejected by
  // default, accepted under --allow-isa-mix (the merge's bitwise overlap
  // cross-check is then the only identity guarantee).
  foreign.git_rev = build_git_revision();
  foreign.isa = records[1].isa == "scalar" ? "avx2" : "scalar";
  write_file(dir.done_path(foreign.shard_index),
             completion_to_json(foreign));
  merged = collect_and_merge(merge_options);
  EXPECT_FALSE(merged.ok());
  ASSERT_FALSE(merged.errors.empty());
  EXPECT_NE(merged.errors.front().find("--allow-isa-mix"),
            std::string::npos)
      << merged.errors.front();

  merge_options.allow_isa_mix = true;
  merged = collect_and_merge(merge_options);
  EXPECT_TRUE(merged.ok()) << (merged.errors.empty()
                                   ? std::string("merge errors")
                                   : merged.errors.front());
  EXPECT_EQ(merged.merge.csv, sweep_to_csv(run_sweep(config)));
}

}  // namespace
}  // namespace ftmao::fabric
