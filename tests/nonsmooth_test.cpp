// Tests for the non-smooth cost functions (subgradient open problem):
// subgradient correctness, MaxAffine argmin geometry, and SBG-as-
// subgradient-method behaviour (empirical — the paper's guarantees assume
// smoothness).

#include <gtest/gtest.h>

#include <memory>

#include "common/contracts.hpp"
#include "func/nonsmooth.hpp"
#include "func/validate.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

// ---------------------------------------------------------------- AbsValue

TEST(AbsValue, ValueAndSubgradient) {
  const AbsValue h(1.0, 2.0);
  EXPECT_DOUBLE_EQ(h.value(3.0), 4.0);
  EXPECT_DOUBLE_EQ(h.derivative(3.0), 2.0);
  EXPECT_DOUBLE_EQ(h.derivative(-1.0), -2.0);
  EXPECT_DOUBLE_EQ(h.derivative(1.0), 0.0);  // minimal-norm at the kink
  EXPECT_EQ(h.argmin(), Interval(1.0));
}

TEST(AbsValue, FailsSmoothValidationAsExpected) {
  // It is convex with bounded subgradients but NOT C^1 — the validator
  // must flag the Lipschitz/continuity violation at the kink.
  const ValidationReport report = validate_admissible(AbsValue(0.0, 1.0));
  EXPECT_FALSE(report.ok);
}

// --------------------------------------------------------------- MaxAffine

TEST(MaxAffine, VShape) {
  const MaxAffine h({{-1.0, 0.0}, {1.0, 0.0}});  // |x|
  EXPECT_DOUBLE_EQ(h.value(2.0), 2.0);
  EXPECT_DOUBLE_EQ(h.value(-3.0), 3.0);
  EXPECT_DOUBLE_EQ(h.derivative(2.0), 1.0);
  EXPECT_DOUBLE_EQ(h.derivative(-2.0), -1.0);
  EXPECT_EQ(h.argmin(), Interval(0.0));
}

TEST(MaxAffine, FlatBottom) {
  // max(-x - 1, 0*x + 0, x - 2) has a flat bottom... 0-slope piece is at
  // height 0 between the crossings x = -1 and x = 2.
  const MaxAffine h({{-1.0, -1.0}, {0.0, 0.0}, {1.0, -2.0}});
  EXPECT_NEAR(h.argmin().lo(), -1.0, 1e-9);
  EXPECT_NEAR(h.argmin().hi(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.derivative(0.5), 0.0);
}

TEST(MaxAffine, AsymmetricKink) {
  const MaxAffine h({{-0.5, 1.0}, {2.0, 0.0}});  // kink at x = 0.4
  EXPECT_NEAR(h.argmin().midpoint(), 0.4, 1e-9);
  EXPECT_DOUBLE_EQ(h.derivative(1.0), 2.0);
  EXPECT_DOUBLE_EQ(h.derivative(0.0), -0.5);
}

TEST(MaxAffine, RequiresBothSlopesSigns) {
  EXPECT_THROW(MaxAffine({{1.0, 0.0}, {2.0, 0.0}}), ContractViolation);
  EXPECT_THROW(MaxAffine({{1.0, 0.0}}), ContractViolation);
}

TEST(MaxAffine, GradientBoundIsMaxSlope) {
  const MaxAffine h({{-3.0, 0.0}, {0.5, 1.0}, {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(h.gradient_bound(), 3.0);
}

// --------------------------------------------- SBG as subgradient method

Scenario nonsmooth_scenario(std::size_t rounds) {
  Scenario s;
  s.n = 7;
  s.f = 2;
  s.faulty = {5, 6};
  s.rounds = rounds;
  s.attack.kind = AttackKind::SplitBrain;
  const std::vector<double> centers{-4.0, -2.0, 0.0, 2.0, 4.0, 0.0, 0.0};
  for (std::size_t i = 0; i < 7; ++i) {
    if (i % 2 == 0) {
      s.functions.push_back(std::make_shared<AbsValue>(centers[i], 1.0));
    } else {
      s.functions.push_back(std::make_shared<MaxAffine>(
          std::vector<MaxAffine::Piece>{{-1.0, -centers[i]},
                                        {1.0, centers[i]}}));
    }
    s.initial_states.push_back(centers[i]);
  }
  return s;
}

TEST(NonsmoothSbg, ConsensusStillHoldsEmpirically) {
  // Consensus only needs bounded reported gradients, which subgradients
  // provide — Lemma 3's argument goes through unchanged.
  const RunMetrics m = run_sbg(nonsmooth_scenario(6000));
  EXPECT_LT(m.final_disagreement(), 0.05);
}

TEST(NonsmoothSbg, LandsNearValidOptimaEmpirically) {
  // Optimality is formally open for non-smooth costs; empirically the
  // subgradient variant still settles into the valid region (computed
  // from the chosen-subgradient envelopes, which coincide with the true
  // envelope a.e.).
  const RunMetrics m = run_sbg(nonsmooth_scenario(10000));
  EXPECT_LT(m.final_max_dist(), 0.3);
}

}  // namespace
}  // namespace ftmao
