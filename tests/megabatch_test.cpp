// Tests for the grid-level megabatch planner (sim/megabatch.hpp) and the
// bit-identity contract of the megabatched drivers: sweep, certify, and
// attack-search results must be byte/bit-identical with megabatching on,
// off, and against the scalar reference engine — the plan changes lane
// occupancy and wall-clock, never output. Planner arithmetic is pinned
// with an injected lane-width function so the expectations hold on any
// machine and under any FTMAO_ISA override.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "sim/attack_search.hpp"
#include "sim/certify.hpp"
#include "sim/megabatch.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"

namespace ftmao {
namespace {

// The width-aware dispatch rule of an 8-lane (AVX-512) machine: widest
// width whose padding waste stays under half a register. Injected so the
// planner tests are independent of the host's actual SIMD support.
std::size_t mock_width8(std::size_t lanes) {
  for (std::size_t w : {std::size_t{8}, std::size_t{4}, std::size_t{2}}) {
    const std::size_t pad = (lanes + w - 1) / w * w;
    if (2 * (pad - lanes) < w) return w;
  }
  return 1;
}

std::vector<MegabatchItem> uniform_items(std::size_t count,
                                         const MegabatchKey& key) {
  std::vector<MegabatchItem> items(count);
  for (std::size_t i = 0; i < count; ++i) {
    items[i].key = key;
    items[i].cell = i;
  }
  return items;
}

TEST(MegabatchPlan, EmptyItemsGiveEmptyPlan) {
  const MegabatchPlan plan = plan_megabatches({}, 0, 100, mock_width8);
  EXPECT_TRUE(plan.items.empty());
  EXPECT_TRUE(plan.tasks.empty());
  EXPECT_EQ(plan.stats.batches, 0u);
}

TEST(MegabatchPlan, GroupsInterleavedShapesByFirstAppearance) {
  // Items alternate between two shapes; the plan must stable-group them
  // (first-appearance group order, caller order within a group) so each
  // task's range is shape-homogeneous.
  const MegabatchKey a{MegabatchEngine::kSync, 7, 2, 1};
  const MegabatchKey b{MegabatchEngine::kSync, 10, 3, 1};
  std::vector<MegabatchItem> items;
  for (std::size_t i = 0; i < 6; ++i) {
    items.push_back({i % 2 == 0 ? a : b, i, 0});
  }
  const MegabatchPlan plan = plan_megabatches(items, 0, 100, mock_width8);
  ASSERT_EQ(plan.items.size(), 6u);
  // a-items (cells 0, 2, 4) first, then b-items (cells 1, 3, 5).
  EXPECT_EQ(plan.items[0].cell, 0u);
  EXPECT_EQ(plan.items[1].cell, 2u);
  EXPECT_EQ(plan.items[2].cell, 4u);
  EXPECT_EQ(plan.items[3].cell, 1u);
  EXPECT_EQ(plan.items[5].cell, 5u);
  for (const MegabatchTask& task : plan.tasks) {
    for (std::size_t i = task.first; i < task.first + task.count; ++i)
      EXPECT_EQ(plan.items[i].key, task.key);
  }
}

TEST(MegabatchPlan, AutoSlicingIsRegisterAlignedWithOneTail) {
  // dim 1 on an 8-lane machine: q = 8 replicas per full register, capped
  // at 32 lanes. Nine replicas slice into one aligned chunk of 8 plus a
  // tail of 1 — never one 9-lane batch, which would dispatch scalar.
  const MegabatchKey key{MegabatchEngine::kSync, 7, 2, 1};
  const MegabatchPlan plan =
      plan_megabatches(uniform_items(9, key), 0, 100, mock_width8);
  ASSERT_EQ(plan.tasks.size(), 2u);
  EXPECT_EQ(plan.tasks[0].count, 8u);
  EXPECT_EQ(plan.tasks[1].count, 1u);
  EXPECT_EQ(plan.tasks[0].first, 0u);
  EXPECT_EQ(plan.tasks[1].first, 8u);
}

TEST(MegabatchPlan, OccupancyArithmeticPinned) {
  // 27 dim-1 replicas of one shape: slices [24, 3] (24 = largest multiple
  // of q=8 under the remaining count after no full 32-cap chunk fits).
  // Padding: 24 lanes fill w=8 exactly; the 3-lane tail pads to 4 at w=4.
  // Occupancy = 27 useful / 28 padded.
  const MegabatchKey key{MegabatchEngine::kSync, 7, 2, 1};
  const MegabatchPlan plan =
      plan_megabatches(uniform_items(27, key), 0, 100, mock_width8);
  ASSERT_EQ(plan.tasks.size(), 2u);
  EXPECT_EQ(plan.tasks[0].count, 24u);
  EXPECT_EQ(plan.tasks[1].count, 3u);
  EXPECT_EQ(plan.stats.replicas, 27u);
  EXPECT_EQ(plan.stats.lanes, 27u);
  EXPECT_EQ(plan.stats.padded_lanes, 28u);
  EXPECT_NEAR(plan.stats.occupancy(), 27.0 / 28.0, 1e-12);
  EXPECT_GE(plan.stats.occupancy(), 0.9);
}

TEST(MegabatchPlan, BatchSizePinsChunksExactly) {
  const MegabatchKey key{MegabatchEngine::kSync, 7, 2, 1};
  const MegabatchPlan plan =
      plan_megabatches(uniform_items(9, key), 4, 100, mock_width8);
  ASSERT_EQ(plan.tasks.size(), 3u);
  EXPECT_EQ(plan.tasks[0].count, 4u);
  EXPECT_EQ(plan.tasks[1].count, 4u);
  EXPECT_EQ(plan.tasks[2].count, 1u);
}

TEST(MegabatchPlan, DimAwareChunking) {
  // dim 3: q = w / gcd(3, 8) = 8 replicas = 24 lanes per aligned chunk
  // (already past the 32-lane cap, so one q-block per chunk). Ten
  // replicas slice into [8, 2].
  const MegabatchKey d3{MegabatchEngine::kVector, 7, 2, 3};
  const MegabatchPlan plan3 =
      plan_megabatches(uniform_items(10, d3), 0, 100, mock_width8);
  ASSERT_EQ(plan3.tasks.size(), 2u);
  EXPECT_EQ(plan3.tasks[0].count, 8u);
  EXPECT_EQ(plan3.tasks[1].count, 2u);

  // dim 8: q = 1 replica fills a register; the 32-lane cap packs 4
  // replicas per chunk. Six replicas slice into [4, 2].
  const MegabatchKey d8{MegabatchEngine::kVector, 7, 2, 8};
  const MegabatchPlan plan8 =
      plan_megabatches(uniform_items(6, d8), 0, 100, mock_width8);
  ASSERT_EQ(plan8.tasks.size(), 2u);
  EXPECT_EQ(plan8.tasks[0].count, 4u);
  EXPECT_EQ(plan8.tasks[1].count, 2u);
}

TEST(MegabatchPlan, TasksAreCostOrderedLongestFirst) {
  // A big shape appearing after a small one must still be submitted
  // first; equal costs keep input (first-index) order.
  const MegabatchKey small{MegabatchEngine::kSync, 7, 2, 1};
  const MegabatchKey big{MegabatchEngine::kSync, 13, 4, 1};
  std::vector<MegabatchItem> items;
  for (std::size_t i = 0; i < 3; ++i) items.push_back({small, i, 0});
  for (std::size_t i = 0; i < 3; ++i) items.push_back({big, 3 + i, 0});
  const MegabatchPlan plan = plan_megabatches(items, 0, 100, mock_width8);
  ASSERT_EQ(plan.tasks.size(), 2u);
  EXPECT_EQ(plan.tasks[0].key, big);
  EXPECT_EQ(plan.tasks[1].key, small);
  EXPECT_GT(plan.tasks[0].cost, plan.tasks[1].cost);
}

TEST(MegabatchPlan, UniformSlicesCoverTheRangeInOrder) {
  const MegabatchKey key{MegabatchEngine::kAsync, 11, 2, 1};
  const std::vector<MegabatchTask> tasks =
      plan_uniform_slices(11, 0, 100, key, mock_width8);
  std::size_t next = 0;
  std::size_t total = 0;
  for (const MegabatchTask& task : tasks) {
    total += task.count;
    EXPECT_EQ(task.key, key);
  }
  EXPECT_EQ(total, 11u);
  // Tasks are cost-ordered, but their ranges must tile [0, 11) exactly.
  std::vector<MegabatchTask> sorted = tasks;
  std::sort(sorted.begin(), sorted.end(),
            [](const MegabatchTask& a, const MegabatchTask& b) {
              return a.first < b.first;
            });
  for (const MegabatchTask& task : sorted) {
    EXPECT_EQ(task.first, next);
    next += task.count;
  }
  EXPECT_EQ(next, 11u);
}

TEST(MegabatchStats, GlobalAccumulatorSumsRecords) {
  engine_stats_reset();
  engine_stats_record(3, 3, 4);
  engine_stats_record(8, 8, 8);
  const EngineStats stats = engine_stats_snapshot();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.replicas, 11u);
  EXPECT_EQ(stats.lanes, 11u);
  EXPECT_EQ(stats.padded_lanes, 12u);
  EXPECT_NEAR(stats.occupancy(), 11.0 / 12.0, 1e-12);
  engine_stats_reset();
  EXPECT_EQ(engine_stats_snapshot().batches, 0u);
}

// ---------------------------------------------------------------------------
// Driver bit-identity: megabatch on / off / scalar engine.

SweepConfig matrix_config() {
  SweepConfig c;
  c.sizes = {{7, 2}, {10, 3}};
  c.dims = {1, 3};
  c.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip,
               AttackKind::PullToTarget, AttackKind::RandomNoise};
  c.seeds = {1, 2, 3, 4, 5};
  c.rounds = 120;
  return c;
}

TEST(MegabatchSweep, CsvIdenticalAcrossModesBatchSizesAndThreads) {
  SweepConfig config = matrix_config();
  config.scalar_engine = true;
  const std::string reference = sweep_to_csv(run_sweep(config));
  config.scalar_engine = false;
  for (bool megabatch : {true, false}) {
    for (std::size_t batch : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        config.megabatch = megabatch;
        config.batch_size = batch;
        config.num_threads = threads;
        EXPECT_EQ(sweep_to_csv(run_sweep(config)), reference)
            << "megabatch=" << megabatch << " batch=" << batch
            << " threads=" << threads;
      }
    }
  }
}

TEST(MegabatchSweep, AsyncCsvIdenticalAcrossModes) {
  SweepConfig config;
  config.async_engine = true;
  config.sizes = {{6, 1}, {11, 2}};
  config.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip,
                    AttackKind::PullToTarget};
  config.seeds = {1, 2, 3, 4, 5};
  config.rounds = 150;
  config.scalar_engine = true;
  const std::string reference = sweep_to_csv(run_sweep(config));
  config.scalar_engine = false;
  for (bool megabatch : {true, false}) {
    for (std::size_t batch : {std::size_t{0}, std::size_t{2}}) {
      config.megabatch = megabatch;
      config.batch_size = batch;
      EXPECT_EQ(sweep_to_csv(run_sweep(config)), reference)
          << "megabatch=" << megabatch << " batch=" << batch;
    }
  }
}

std::string report_text(const CertificationReport& report) {
  std::string text = report.passed ? "PASS\n" : "FAIL\n";
  for (const CertifyCheck& check : report.checks) {
    text += check.name + "|" + (check.passed ? "1" : "0") + "|" +
            check.detail + "\n";
  }
  return text;
}

TEST(MegabatchCertify, ReportIdenticalAcrossModes) {
  CertifyOptions options;
  options.rounds = 300;
  options.async_rounds = 150;
  options.vector_rounds = 150;
  options.scalar_engine = true;
  const std::string reference = report_text(certify_sbg(options));
  options.scalar_engine = false;
  for (bool megabatch : {true, false}) {
    options.megabatch = megabatch;
    EXPECT_EQ(report_text(certify_sbg(options)), reference)
        << "megabatch=" << megabatch;
  }
}

void expect_outcomes_identical(const AttackSearchResult& a,
                               const AttackSearchResult& b) {
  EXPECT_EQ(a.reference_state, b.reference_state);
  EXPECT_EQ(a.optima, b.optima);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].name, b.outcomes[i].name);
    EXPECT_EQ(a.outcomes[i].final_state, b.outcomes[i].final_state);
    EXPECT_EQ(a.outcomes[i].bias, b.outcomes[i].bias);
    EXPECT_EQ(a.outcomes[i].dist_to_y, b.outcomes[i].dist_to_y);
    EXPECT_EQ(a.outcomes[i].disagreement, b.outcomes[i].disagreement);
  }
}

TEST(MegabatchAttackSearch, RankingIdenticalAcrossModes) {
  const Scenario base =
      make_standard_scenario(7, 2, 8.0, AttackKind::None, 200, 1);
  const auto candidates = standard_attack_grid();
  const AttackSearchResult scalar = find_strongest_attack(
      base, candidates, 1, 0, /*scalar_engine=*/true, nullptr);
  const AttackSearchResult on = find_strongest_attack(
      base, candidates, 1, 0, false, nullptr, /*megabatch=*/true);
  const AttackSearchResult off = find_strongest_attack(
      base, candidates, 1, 0, false, nullptr, /*megabatch=*/false);
  expect_outcomes_identical(scalar, on);
  expect_outcomes_identical(scalar, off);
}

}  // namespace
}  // namespace ftmao
