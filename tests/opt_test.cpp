// Unit tests for src/opt: bisection, bracket expansion, Brent, golden
// section, and the convex argmin helper.

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "opt/argmin.hpp"
#include "opt/bisection.hpp"
#include "opt/brent.hpp"
#include "opt/golden.hpp"

namespace ftmao {
namespace {

// -------------------------------------------------------------- bisection

TEST(Bisection, FindsStepThreshold) {
  const MonotonePredicate pred = [](double x) { return x >= 3.25; };
  const double x = bisect_threshold(pred, 0.0, 10.0);
  EXPECT_NEAR(x, 3.25, 1e-9);
  EXPECT_TRUE(pred(x));
}

TEST(Bisection, ReturnedPointSatisfiesPredicate) {
  const MonotonePredicate pred = [](double x) { return x > 0.0; };
  const double x = bisect_threshold(pred, -1.0, 1.0);
  EXPECT_TRUE(pred(x));
  EXPECT_NEAR(x, 0.0, 1e-9);
}

TEST(Bisection, RequiresFlippedEndpoints) {
  const MonotonePredicate pred = [](double x) { return x >= 0.0; };
  EXPECT_THROW(bisect_threshold(pred, 1.0, 2.0), ContractViolation);   // both true
  EXPECT_THROW(bisect_threshold(pred, -2.0, -1.0), ContractViolation); // both false
}

TEST(Bisection, HonorsTolerance) {
  const MonotonePredicate pred = [](double x) { return x >= M_PI; };
  BisectOptions opts;
  opts.tolerance = 1e-3;
  const double x = bisect_threshold(pred, 0.0, 10.0, opts);
  EXPECT_NEAR(x, M_PI, 1e-3);
}

TEST(ExpandBracket, GrowsUntilFlip) {
  const MonotonePredicate pred = [](double x) { return x >= 1000.0; };
  const Bracket b = expand_bracket(pred, 0.0, 1.0);
  EXPECT_FALSE(pred(b.lo));
  EXPECT_TRUE(pred(b.hi));
}

TEST(ExpandBracket, GrowsLeftToo) {
  const MonotonePredicate pred = [](double x) { return x >= -500.0; };
  const Bracket b = expand_bracket(pred, 0.0, 1.0);
  EXPECT_FALSE(pred(b.lo));
  EXPECT_TRUE(pred(b.hi));
}

TEST(ExpandBracket, ThrowsOnConstantPredicate) {
  const MonotonePredicate always = [](double) { return true; };
  EXPECT_THROW(expand_bracket(always, 0.0, 1.0, 20), std::runtime_error);
}

// ------------------------------------------------------------------ brent

TEST(Brent, FindsPolynomialRoot) {
  const auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const double root = brent_root(f, 2.0, 3.0);
  EXPECT_NEAR(f(root), 0.0, 1e-9);
  EXPECT_NEAR(root, 2.0945514815423265, 1e-9);
}

TEST(Brent, ExactRootAtEndpoint) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(brent_root(f, 1.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(brent_root(f, -3.0, 1.0), 1.0);
}

TEST(Brent, RequiresSignChange) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(brent_root(f, -1.0, 1.0), ContractViolation);
}

TEST(Brent, TranscendentalRoot) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const double root = brent_root(f, 0.0, 1.0);
  EXPECT_NEAR(root, 0.7390851332151607, 1e-9);
}

// ----------------------------------------------------------------- golden

TEST(Golden, MinimizesQuadratic) {
  const auto f = [](double x) { return (x - 1.5) * (x - 1.5); };
  EXPECT_NEAR(golden_section_min(f, -10.0, 10.0), 1.5, 1e-7);
}

TEST(Golden, MinimizesAsymmetricUnimodal) {
  const auto f = [](double x) { return std::abs(x - 2.0) + 0.5 * x; };
  EXPECT_NEAR(golden_section_min(f, -10.0, 10.0), 2.0, 1e-6);
}

TEST(Golden, DegenerateBracket) {
  const auto f = [](double x) { return x * x; };
  EXPECT_DOUBLE_EQ(golden_section_min(f, 3.0, 3.0), 3.0);
}

// ----------------------------------------------------------------- argmin

TEST(Argmin, PointMinimumFromDerivative) {
  const auto deriv = [](double x) { return std::tanh(x - 2.0); };
  const Interval am = argmin_from_derivative(deriv);
  EXPECT_NEAR(am.lo(), 2.0, 1e-8);
  EXPECT_NEAR(am.hi(), 2.0, 1e-8);
}

TEST(Argmin, FlatMinimumInterval) {
  // Derivative zero on [1, 4]: clamp-style.
  const auto deriv = [](double x) {
    if (x < 1.0) return x - 1.0;
    if (x > 4.0) return x - 4.0;
    return 0.0;
  };
  const Interval am = argmin_from_derivative(deriv);
  EXPECT_NEAR(am.lo(), 1.0, 1e-8);
  EXPECT_NEAR(am.hi(), 4.0, 1e-8);
}

TEST(Argmin, FarFromSeed) {
  const auto deriv = [](double x) { return std::tanh((x - 500.0) / 10.0); };
  const Interval am = argmin_from_derivative(deriv);
  EXPECT_NEAR(am.midpoint(), 500.0, 1e-6);
}

}  // namespace
}  // namespace ftmao
