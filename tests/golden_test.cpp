// Golden-master regression tests: canonical scenarios pinned to their
// exact floating-point outcomes. Everything in the simulator is
// deterministic, so any diff here means behaviour changed — intentionally
// (update the constants, explain in the commit) or not (a bug).
//
// The pinned values were produced by the current implementation and
// cross-checked against the theory tests (bounds, witnesses, invariants),
// so they are known-good anchors, not mere snapshots.

#include <gtest/gtest.h>

#include "consensus/iterative.hpp"
#include "core/valid_set.hpp"
#include "sim/runner.hpp"
#include "trim/trim.hpp"

namespace ftmao {
namespace {

TEST(Golden, TrimCanonicalCases) {
  const std::vector<double> v{-3.0, -1.0, 0.0, 2.0, 5.0, 8.0, 13.0};
  EXPECT_DOUBLE_EQ(trim_value(v, 0), 5.0);    // (-3+13)/2
  EXPECT_DOUBLE_EQ(trim_value(v, 1), 3.5);    // (-1+8)/2
  EXPECT_DOUBLE_EQ(trim_value(v, 2), 2.5);    // (0+5)/2
  EXPECT_DOUBLE_EQ(trim_value(v, 3), 2.0);    // single survivor
}

TEST(Golden, StandardScenarioYInterval) {
  // Y of the standard 7/2 mixed family — pinned to 6 decimals.
  const Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::None, 1);
  const ValidFamily family(s.honest_functions(), s.f);
  EXPECT_NEAR(family.optima_set().lo(), -3.500457, 1e-5);
  EXPECT_NEAR(family.optima_set().hi(), 0.971214, 1e-5);
}

TEST(Golden, SbgSplitBrain500Rounds) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 500);
  const RunMetrics m = run_sbg(s);
  // All five honest agents, exact to double round-off.
  ASSERT_EQ(m.final_states.size(), 5u);
  for (double x : m.final_states) EXPECT_NEAR(x, -1.7311, 3e-3);
  EXPECT_NEAR(m.final_disagreement(), 0.0026704, 1e-4);
}

TEST(Golden, DgdFaultFree500Rounds) {
  Scenario s = make_standard_scenario(7, 0, 8.0, AttackKind::None, 500);
  s.faulty.clear();
  const RunMetrics m = run_dgd(s);
  for (double x : m.final_states) EXPECT_NEAR(x, -0.356543, 1e-4);
  EXPECT_LT(m.final_disagreement(), 1e-10);
}

TEST(Golden, IterativeConsensusHullEdge) {
  // Documented in consensus_test: the hull-edge attack on {0..4} with
  // n=7, f=2 converges to exactly 3 in one round.
  const IterativeConsensusConfig config{7, 2, 0.0};
  const auto r = run_iterative_consensus(
      config, {0, 1, 2, 3, 4}, 2,
      [](AgentId, AgentId, const RoundView<double>& view) -> std::optional<double> {
        double hi = view.honest_broadcasts.front().payload;
        for (const auto& m : view.honest_broadcasts) hi = std::max(hi, m.payload);
        return hi;
      },
      5);
  for (double v : r.final_values) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Golden, NoiseAttackSeededTrajectory) {
  // Pins the RNG plumbing end to end: any change to seeding, substream
  // derivation, or draw order shows up here.
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::RandomNoise, 100, 7);
  const RunMetrics m = run_sbg(s);
  EXPECT_NEAR(m.final_states.front(), -1.491553, 1e-4);
  const RunMetrics again = run_sbg(s);
  EXPECT_DOUBLE_EQ(m.final_states.front(), again.final_states.front());
}

}  // namespace
}  // namespace ftmao
