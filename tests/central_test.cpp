// Tests for the centralized-equivalent SBG over EIG broadcast: identical
// honest trajectories, existence of a limit (the property plain SBG lacks
// under equivocation), and Theorem 2 guarantees.

#include <gtest/gtest.h>

#include <cmath>

#include "central/central_sbg.hpp"
#include "common/contracts.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

CentralScenario base_scenario(std::size_t rounds = 400) {
  CentralScenario s;
  s.n = 7;
  s.f = 2;
  s.faulty = {5, 6};
  s.functions = make_spread_hubers(7, 8.0);
  s.initial_states = {-4.0, -2.5, -1.0, 0.5, 2.0, 3.5, 4.0};
  s.rounds = rounds;
  return s;
}

TEST(CentralSbg, TrajectoriesIdenticalFromRoundOne) {
  CentralScenario s = base_scenario();
  EigEquivocateSender equiv(50.0);
  s.attack.eig = &equiv;
  s.attack.state = 50.0;
  s.attack.gradient = -5.0;
  const HarmonicStep schedule;
  const CentralRunMetrics m = run_central_sbg(s, schedule);
  EXPECT_TRUE(m.identical_trajectories);
  for (std::size_t t = 1; t < m.disagreement.size(); ++t)
    EXPECT_LT(m.disagreement[t], 1e-12);
}

TEST(CentralSbg, ConvergesIntoY) {
  CentralScenario s = base_scenario(2000);
  EigChaoticRelay chaos(30.0);
  s.attack.eig = &chaos;
  s.attack.state = 30.0;
  s.attack.gradient = 5.0;
  const HarmonicStep schedule;
  const CentralRunMetrics m = run_central_sbg(s, schedule);
  EXPECT_LT(m.max_dist_to_y.back(), 0.1);
}

TEST(CentralSbg, TrajectoryHasALimitUnlikePlainSbg) {
  // The headline qualitative difference (discussion after Theorem 2): the
  // centralized variant's common state settles — consecutive-iterate
  // movement beyond the lambda*L budget dies out — while plain SBG under
  // an equivocating adversary keeps sloshing within Y at the lambda scale.
  // We check the centralized trajectory is Cauchy-like: the tail total
  // variation is bounded by the tail step budget.
  CentralScenario s = base_scenario(3000);
  EigEquivocateSender equiv(40.0);
  s.attack.eig = &equiv;
  s.attack.state = 40.0;
  s.attack.gradient = 4.0;
  const HarmonicStep schedule;
  const CentralRunMetrics m = run_central_sbg(s, schedule);

  double tail_variation = 0.0;
  for (std::size_t t = 2500; t + 1 < m.common_trajectory.size(); ++t)
    tail_variation +=
        std::abs(m.common_trajectory[t + 1] - m.common_trajectory[t]);
  // sum_{2500..3000} lambda[t] * L with L = 2: ~ 2 * ln(3000/2500) ~ 0.36.
  EXPECT_LT(tail_variation, 0.4);
}

TEST(CentralSbg, FaultFreeMatchesPlainSbg) {
  // With no faults the centralized and plain algorithms follow the same
  // recursion (all tuples delivered verbatim).
  CentralScenario cs = base_scenario(500);
  cs.faulty.clear();
  const HarmonicStep schedule;
  const CentralRunMetrics central = run_central_sbg(cs, schedule);

  Scenario ps;
  ps.n = 7;
  ps.f = 2;
  ps.functions = cs.functions;
  ps.initial_states = cs.initial_states;
  ps.rounds = 500;
  const RunMetrics plain = run_sbg(ps);

  ASSERT_EQ(central.final_states.size(), plain.final_states.size());
  for (std::size_t i = 0; i < central.final_states.size(); ++i)
    EXPECT_NEAR(central.final_states[i], plain.final_states[i], 1e-9);
}

TEST(CentralSbg, EquivocationCollapsesToOneAgreedValue) {
  // The Byzantine agent tries to send +50 to half the agents and -50 to
  // the rest; EIG agreement forces a single agreed tuple, so the honest
  // disagreement stays exactly 0 — the equivocation is neutralized, not
  // merely tolerated.
  CentralScenario s = base_scenario(50);
  EigEquivocateSender equiv(50.0);
  s.attack.eig = &equiv;
  const HarmonicStep schedule;
  const CentralRunMetrics m = run_central_sbg(s, schedule);
  EXPECT_TRUE(m.identical_trajectories);
}

TEST(CentralSbg, ValidationCatchesBadConfig) {
  CentralScenario s = base_scenario(10);
  s.n = 6;  // violates n > 3f with functions/initial sized 7
  const HarmonicStep schedule;
  EXPECT_THROW(run_central_sbg(s, schedule), ContractViolation);
}

}  // namespace
}  // namespace ftmao
