// Tests for the baselines: fault-oblivious DGD (correct without faults,
// broken with them), local-only GD, and behaviour under the consistent
// (reliable-broadcast) wrapper.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baseline/dgd.hpp"
#include "baseline/local_gd.hpp"
#include "common/contracts.hpp"
#include "func/combination.hpp"
#include "func/functions.hpp"
#include "func/library.hpp"
#include "net/sync.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

ScalarFunctionPtr huber_at(double center) {
  return std::make_shared<Huber>(center, 5.0, 1.0);
}

// ------------------------------------------------------------- unit level

TEST(DgdAgent, AveragesStatesAndGradients) {
  const HarmonicStep schedule;  // lambda[0] = 1
  DgdAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, 3);
  std::vector<Received<SbgPayload>> inbox{
      {AgentId{1}, {3.0, 1.0}},
      {AgentId{2}, {6.0, 2.0}},
  };
  // own (0, h'(0)=0): mean state 3, mean gradient 1 -> 3 - 1 = 2.
  agent.step(Round{1}, inbox);
  EXPECT_DOUBLE_EQ(agent.state(), 2.0);
}

TEST(DgdAgent, MissingTuplesUseDefault) {
  const HarmonicStep schedule;
  DgdAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, 3,
                 SbgPayload{9.0, 0.0});
  agent.step(Round{1}, {});  // two defaults: states {0, 9, 9} -> mean 6
  EXPECT_DOUBLE_EQ(agent.state(), 6.0);
}

TEST(LocalGdAgent, IgnoresInboxEntirely) {
  const HarmonicStep schedule;
  LocalGdAgent agent(AgentId{0}, huber_at(2.0), 0.0, schedule);
  std::vector<Received<SbgPayload>> junk{{AgentId{1}, {1e9, 1e9}}};
  agent.step(Round{1}, junk);
  // h'(0) = -2 (huber delta 5): 0 - 1*(-2) = 2.
  EXPECT_DOUBLE_EQ(agent.state(), 2.0);
}

TEST(LocalGdAgent, ConvergesToOwnOptimum) {
  const HarmonicStep schedule;
  LocalGdAgent agent(AgentId{0}, huber_at(3.0), -10.0, schedule);
  for (std::uint32_t t = 1; t <= 3000; ++t) agent.step(Round{t}, {});
  EXPECT_NEAR(agent.state(), 3.0, 0.01);
}

// --------------------------------------------------------- scenario level

TEST(Dgd, FaultFreeConvergesToUniformAverageOptimum) {
  Scenario s = make_standard_scenario(7, 0, 8.0, AttackKind::None, 12000);
  s.faulty.clear();
  const RunMetrics metrics = run_dgd(s);
  // The uniform average over all 7 functions is the true objective here.
  const WeightedSum avg = uniform_average(s.functions);
  for (double x : metrics.final_states)
    EXPECT_NEAR(avg.argmin().distance_to(x), 0.0, 0.1);
  EXPECT_LT(metrics.final_disagreement(), 0.01);
}

TEST(Dgd, SingleByzantineDrivesItFar) {
  // A single attacker that anchors its reported state at its target and
  // poisons gradients toward it drags fault-oblivious averaging out of
  // the honest optima hull entirely.
  Scenario s = make_standard_scenario(7, 1, 8.0, AttackKind::FixedValue, 2000);
  s.attack.state_magnitude = 100.0;   // reported state far away
  s.attack.gradient_magnitude = -10.0;  // negative gradient pushes up too
  const RunMetrics metrics = run_dgd(s);
  // Hull of honest optima is within [-4, 4]; DGD is dragged well out.
  double max_abs = 0.0;
  for (double x : metrics.final_states) max_abs = std::max(max_abs, std::abs(x));
  EXPECT_GT(max_abs, 10.0);
}

TEST(Dgd, GradientPoisonWithHonestLookingStateSelfAnchors) {
  // Notable dynamics: a gradient-only poison (attacker reports state 0)
  // does NOT break averaging with diminishing steps — the attacker's own
  // state report anchors the average back. This is why real attacks must
  // also lie about states, and why the robust literature focuses on
  // coordinated attacks.
  Scenario s = make_standard_scenario(7, 1, 8.0, AttackKind::FixedValue, 2000);
  s.attack.state_magnitude = 0.0;
  s.attack.gradient_magnitude = 50.0;
  const RunMetrics metrics = run_dgd(s);
  double max_abs = 0.0;
  for (double x : metrics.final_states) max_abs = std::max(max_abs, std::abs(x));
  EXPECT_LT(max_abs, 5.0);
}

TEST(Dgd, SbgResistsWhereDgdFails) {
  Scenario s = make_standard_scenario(7, 1, 8.0, AttackKind::PullToTarget, 3000);
  s.attack.target = -50.0;
  s.attack.gradient_magnitude = 10.0;
  const RunMetrics sbg = run_sbg(s);
  const RunMetrics dgd = run_dgd(s);
  EXPECT_LT(sbg.final_max_dist(), 0.2);
  EXPECT_GT(dgd.final_max_dist(), 5.0);
}

TEST(LocalGd, ConvergesToLocalOptimaNotConsensus) {
  Scenario s = make_standard_scenario(7, 0, 8.0, AttackKind::None, 3000);
  s.faulty.clear();
  const RunMetrics metrics = run_local_gd(s);
  // Each agent sits near its own optimum: disagreement ~ spread.
  EXPECT_GT(metrics.final_disagreement(), 6.0);
  for (std::size_t i = 0; i < metrics.final_states.size(); ++i) {
    EXPECT_NEAR(
        s.functions[i]->argmin().distance_to(metrics.final_states[i]), 0.0,
        0.05);
  }
}

TEST(Consistent, ReliableBroadcastTamesSplitBrain) {
  // Same attack, with and without the reliable-broadcast wrapper. Under
  // the wrapper the Byzantine agent cannot equivocate; honest trajectories
  // settle (difference between consecutive tail iterates shrinks).
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 3000);
  s.attack.state_magnitude = 50.0;
  s.attack.gradient_magnitude = 5.0;
  Scenario consistent = s;
  consistent.attack.consistent = true;

  const RunMetrics plain = run_sbg(s);
  const RunMetrics wrapped = run_sbg(consistent);
  // Both satisfy Theorem 2.
  EXPECT_LT(plain.final_max_dist(), 0.3);
  EXPECT_LT(wrapped.final_max_dist(), 0.3);
  EXPECT_LT(wrapped.final_disagreement(), plain.final_disagreement() + 1e-6);
}

}  // namespace
}  // namespace ftmao
