// Sharded sweeps: the stable partition, the manifest codec, and the
// verifying merge. The headline property — a K-shard sweep merges
// byte-identical to the single-process CSV, with every coverage and
// bit-identity violation detected — is what lets CI split grids across
// processes and runners without trusting any worker.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/shard.hpp"
#include "sim/shard_merge.hpp"
#include "sim/sweep.hpp"

namespace ftmao {
namespace {

SweepConfig grid_config() {
  SweepConfig c;
  c.sizes = {{7, 2}, {10, 3}, {13, 4}};
  c.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip,
               AttackKind::PullToTarget};
  c.seeds = {1, 2, 3};
  c.rounds = 200;
  return c;
}

/// The K shard artifacts a fully healthy run of `config` would produce.
std::vector<ShardArtifact> healthy_artifacts(const SweepConfig& config,
                                             std::size_t shard_count) {
  std::vector<ShardArtifact> artifacts;
  for (std::size_t i = 0; i < shard_count; ++i) {
    ShardArtifact a;
    a.manifest = make_shard_manifest(config, i, shard_count);
    a.csv = sweep_to_csv(run_sweep_shard(config, i, shard_count));
    artifacts.push_back(std::move(a));
  }
  return artifacts;
}

TEST(ShardPartition, DisjointAndComplete) {
  const SweepConfig config = grid_config();
  const std::vector<CellSpec> all = sweep_cell_specs(config);
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{7}, std::size_t{32}}) {
    std::map<std::string, std::size_t> owner;
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < k; ++i) {
      for (const CellSpec& cell : shard_cell_specs(config, i, k)) {
        const auto [it, inserted] = owner.emplace(cell_key(cell), i);
        EXPECT_TRUE(inserted) << cell_key(cell) << " owned by shards "
                              << it->second << " and " << i;
        ++assigned;
      }
    }
    EXPECT_EQ(assigned, all.size()) << "k=" << k;
    for (const CellSpec& cell : all)
      EXPECT_TRUE(owner.count(cell_key(cell))) << cell_key(cell);
  }
}

TEST(ShardPartition, AssignmentIndependentOfEnumerationOrder) {
  // The same cell must land in the same shard however the grid's sizes
  // and attacks are ordered — workers enumerating the grid differently
  // still agree on the partition.
  const SweepConfig config = grid_config();
  SweepConfig permuted = config;
  std::reverse(permuted.sizes.begin(), permuted.sizes.end());
  std::reverse(permuted.attacks.begin(), permuted.attacks.end());

  for (std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{5}}) {
    std::map<std::string, std::size_t> canonical;
    for (std::size_t i = 0; i < k; ++i)
      for (const CellSpec& cell : shard_cell_specs(config, i, k))
        canonical[cell_key(cell)] = i;
    for (std::size_t i = 0; i < k; ++i)
      for (const CellSpec& cell : shard_cell_specs(permuted, i, k))
        EXPECT_EQ(canonical.at(cell_key(cell)), i) << cell_key(cell);
  }
}

TEST(ShardPartition, AssignmentSurvivesGridGrowth) {
  // Adding unrelated cells must not move existing cells between shards:
  // shard_of_cell is a pure function of the cell identity.
  const SweepConfig small = grid_config();
  SweepConfig grown = small;
  grown.sizes.push_back({16, 5});
  grown.attacks.push_back(AttackKind::RandomNoise);

  std::map<std::string, std::size_t> before;
  for (std::size_t i = 0; i < 4; ++i)
    for (const CellSpec& cell : shard_cell_specs(small, i, 4))
      before[cell_key(cell)] = i;
  for (std::size_t i = 0; i < 4; ++i) {
    for (const CellSpec& cell : shard_cell_specs(grown, i, 4)) {
      if (before.count(cell_key(cell))) {
        EXPECT_EQ(before.at(cell_key(cell)), i) << cell_key(cell);
      }
    }
  }
}

TEST(ShardPartition, DefaultGridSpreadsAcrossFourShards) {
  // Regression guard for the hash finalizer: the 9-cell default grid must
  // not clump into a near-empty partition at the CI shard count.
  const SweepConfig config = grid_config();
  std::size_t empty = 0;
  for (std::size_t i = 0; i < 4; ++i)
    if (shard_cell_specs(config, i, 4).empty()) ++empty;
  EXPECT_LE(empty, 1u);
}

TEST(GridSpecCodec, RoundTrips) {
  const SweepConfig config = grid_config();
  EXPECT_EQ(parse_sizes(format_sizes(config.sizes)), config.sizes);
  EXPECT_EQ(parse_attacks(format_attacks(config.attacks)), config.attacks);
  EXPECT_EQ(parse_seeds(format_seeds(config.seeds)), config.seeds);

  StepConfig step;
  step.kind = StepKind::Power;
  step.scale = 1.25;
  step.exponent = 0.6180339887498949;
  const StepConfig back = parse_step(format_step(step));
  EXPECT_EQ(back.kind, step.kind);
  EXPECT_EQ(back.scale, step.scale);
  EXPECT_EQ(back.exponent, step.exponent);
}

TEST(ShardManifestJson, RoundTrips) {
  ShardManifest m = make_shard_manifest(grid_config(), 2, 4);
  m.isa = "avx2";
  m.wall_ms = 12.345678901234567;
  m.exit_status = 0;
  const ShardManifest back = manifest_from_json(manifest_to_json(m));
  EXPECT_EQ(back, m);
}

TEST(ShardManifestJson, RejectsMalformedDocuments) {
  const std::string good = manifest_to_json(make_shard_manifest(
      grid_config(), 0, 2));
  EXPECT_THROW(manifest_from_json("{}"), ContractViolation);
  EXPECT_THROW(manifest_from_json(""), ContractViolation);

  std::string wrong_schema = good;
  const auto at = wrong_schema.find("\"schema\": 1");
  wrong_schema.replace(at, 11, "\"schema\": 9");
  EXPECT_THROW(manifest_from_json(wrong_schema), ContractViolation);
}

TEST(ShardManifestJson, ConfigRoundTripsThroughManifest) {
  const SweepConfig config = grid_config();
  const ShardManifest m = make_shard_manifest(config, 1, 3);
  const SweepConfig back = config_from_manifest(m);
  EXPECT_EQ(back.sizes, config.sizes);
  EXPECT_EQ(back.attacks, config.attacks);
  EXPECT_EQ(back.seeds, config.seeds);
  EXPECT_EQ(back.rounds, config.rounds);
  EXPECT_EQ(back.spread, config.spread);
  EXPECT_EQ(sweep_cell_specs(back), sweep_cell_specs(config));
}

TEST(ShardSweep, ShardZeroOfOneIsTheWholeGrid) {
  const SweepConfig config = grid_config();
  EXPECT_EQ(sweep_to_csv(run_sweep_shard(config, 0, 1)),
            sweep_to_csv(run_sweep(config)));
}

TEST(ShardMerge, FourShardsMergeByteIdenticalToSingleProcess) {
  const SweepConfig config = grid_config();
  const std::string reference = sweep_to_csv(run_sweep(config));
  const MergeReport report = merge_shards(healthy_artifacts(config, 4));
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "missing cells"
                                                     : report.errors.front());
  EXPECT_EQ(report.csv, reference);
  EXPECT_EQ(report.merged_cells, report.expected_cells);
}

TEST(ShardMerge, MissingShardReportedNotFatal) {
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  // Drop a shard that owns at least one cell.
  const auto victim = std::find_if(
      artifacts.begin(), artifacts.end(),
      [](const ShardArtifact& a) { return !a.manifest.cells.empty(); });
  ASSERT_NE(victim, artifacts.end());
  const std::vector<std::string> dropped = victim->manifest.cells;
  artifacts.erase(victim);

  const MergeReport report = merge_shards(artifacts);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.errors.empty());
  EXPECT_EQ(report.missing_cells, dropped);
  // Degraded, not aborted: every surviving row is still merged.
  EXPECT_EQ(report.merged_cells, report.expected_cells - dropped.size());
}

TEST(ShardMerge, IdenticalOverlapAccepted) {
  // The same shard merged twice (a retried worker whose first artifact
  // survived) is fine as long as the bits agree.
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  artifacts.push_back(artifacts.front());
  const MergeReport report = merge_shards(artifacts);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.csv, sweep_to_csv(run_sweep(config)));
}

TEST(ShardMerge, MismatchedOverlapRejected) {
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  ShardArtifact tampered = artifacts.front();
  ASSERT_FALSE(tampered.manifest.cells.empty());
  // Perturb one digit of the duplicate's first data row.
  const std::size_t row = tampered.csv.find('\n') + 1;
  const std::size_t digit = tampered.csv.find_last_of("0123456789");
  ASSERT_GT(digit, row);
  tampered.csv[digit] = tampered.csv[digit] == '5' ? '6' : '5';
  artifacts.push_back(tampered);

  const MergeReport report = merge_shards(artifacts);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("different bits"), std::string::npos);
}

TEST(ShardMerge, ForeignRowRejected) {
  // A row for a cell the partition does not assign to that shard.
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  ASSERT_GE(artifacts.size(), 2u);
  // Find two shards with rows and graft a row from one into the other.
  std::string foreign_row;
  for (const ShardArtifact& a : artifacts)
    if (!a.manifest.cells.empty()) {
      const std::size_t nl = a.csv.find('\n');
      foreign_row = a.csv.substr(nl + 1, a.csv.find('\n', nl + 1) - nl);
      break;
    }
  ASSERT_FALSE(foreign_row.empty());
  for (ShardArtifact& a : artifacts)
    if (a.csv.find(foreign_row) == std::string::npos) {
      a.csv += foreign_row;
      break;
    }
  const MergeReport report = merge_shards(artifacts);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
}

TEST(ShardMerge, MissingAssignedRowRejected) {
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  for (ShardArtifact& a : artifacts)
    if (a.manifest.cells.size() >= 2) {
      // Truncate the CSV after its first data row.
      const std::size_t first = a.csv.find('\n');
      const std::size_t second = a.csv.find('\n', first + 1);
      a.csv = a.csv.substr(0, second + 1);
      const MergeReport report = merge_shards(artifacts);
      EXPECT_FALSE(report.ok());
      ASSERT_FALSE(report.errors.empty());
      EXPECT_NE(report.errors.front().find("lacks a row"), std::string::npos);
      return;
    }
  FAIL() << "no shard with >= 2 cells in the 4-way partition";
}

TEST(ShardMerge, GridMismatchRejected) {
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  artifacts.back().manifest.rounds += 1;
  const MergeReport report = merge_shards(artifacts);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("disagrees"), std::string::npos);
}

TEST(ShardMerge, GitRevMismatchRejected) {
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  artifacts.back().manifest.git_rev = "deadbee";
  const MergeReport report = merge_shards(artifacts);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("git rev"), std::string::npos);
}

TEST(ShardMerge, FailedShardArtifactRejected) {
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  artifacts.front().manifest.exit_status = 7;
  const MergeReport report = merge_shards(artifacts);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("exit status 7"), std::string::npos);
}

TEST(ShardMerge, NoArtifactsIsAnError) {
  const MergeReport report = merge_shards({});
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
}

TEST(ShardMerge, WrongCellListRejected) {
  // A manifest claiming cells the partition does not assign to it.
  const SweepConfig config = grid_config();
  std::vector<ShardArtifact> artifacts = healthy_artifacts(config, 4);
  // Swap the cell lists of two shards with different assignments.
  std::size_t a = artifacts.size(), b = artifacts.size();
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    if (artifacts[i].manifest.cells.empty()) continue;
    if (a == artifacts.size()) {
      a = i;
    } else if (artifacts[i].manifest.cells != artifacts[a].manifest.cells) {
      b = i;
      break;
    }
  }
  ASSERT_LT(b, artifacts.size());
  std::swap(artifacts[a].manifest.cells, artifacts[b].manifest.cells);
  const MergeReport report = merge_shards(artifacts);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("assignment"), std::string::npos);
}

}  // namespace
}  // namespace ftmao
