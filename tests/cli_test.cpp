// Tests for the flag parser and the CLI driver end-to-end (string in,
// string out — no process spawning needed).

#include <gtest/gtest.h>

#include <sstream>

#include "cli/args.hpp"
#include "cli/cli_app.hpp"
#include "common/contracts.hpp"

namespace ftmao::cli {
namespace {

// ---------------------------------------------------------------- parser

ArgParser test_parser() {
  return ArgParser({
      {"count", "a number", "3", false},
      {"name", "a string", "default", false},
      {"verbose", "a boolean", "false", true},
  });
}

TEST(ArgParser, DefaultsApplyWhenAbsent) {
  ArgParser p = test_parser();
  EXPECT_FALSE(p.parse({}).has_value());
  EXPECT_EQ(p.get_int("count"), 3);
  EXPECT_EQ(p.get("name"), "default");
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(ArgParser, SpaceAndEqualsSyntax) {
  ArgParser p = test_parser();
  EXPECT_FALSE(p.parse({"--count", "7", "--name=zed"}).has_value());
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_EQ(p.get("name"), "zed");
}

TEST(ArgParser, BooleanPresenceMeansTrue) {
  ArgParser p = test_parser();
  EXPECT_FALSE(p.parse({"--verbose"}).has_value());
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, BooleanExplicitValue) {
  ArgParser p = test_parser();
  EXPECT_FALSE(p.parse({"--verbose", "false"}).has_value());
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagRejected) {
  ArgParser p = test_parser();
  const auto err = p.parse({"--nope", "1"});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("--nope"), std::string::npos);
}

TEST(ArgParser, MissingValueRejected) {
  ArgParser p = test_parser();
  EXPECT_TRUE(p.parse({"--count"}).has_value());
}

TEST(ArgParser, DuplicateFlagRejected) {
  ArgParser p = test_parser();
  EXPECT_TRUE(p.parse({"--count", "1", "--count", "2"}).has_value());
}

TEST(ArgParser, PositionalRejected) {
  ArgParser p = test_parser();
  EXPECT_TRUE(p.parse({"stray"}).has_value());
}

TEST(ArgParser, BadNumberThrowsOnAccess) {
  ArgParser p = test_parser();
  EXPECT_FALSE(p.parse({"--count", "soon"}).has_value());
  EXPECT_THROW(p.get_int("count"), ContractViolation);
  EXPECT_THROW(p.get_double("count"), ContractViolation);
}

TEST(ArgParser, HasDistinguishesExplicit) {
  ArgParser p = test_parser();
  EXPECT_FALSE(p.parse({"--count", "3"}).has_value());
  EXPECT_TRUE(p.has("count"));
  EXPECT_FALSE(p.has("name"));
}

TEST(ArgParser, HelpTextListsFlags) {
  const std::string help = test_parser().help_text();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

// ------------------------------------------------------------------- CLI

int run(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

TEST(Cli, HelpExitsZero) {
  std::string out;
  EXPECT_EQ(run({"--help"}, &out), 0);
  EXPECT_NE(out.find("--algorithm"), std::string::npos);
}

TEST(Cli, DefaultRunPrintsSummary) {
  std::string out;
  EXPECT_EQ(run({"--rounds", "200"}, &out), 0);
  EXPECT_NE(out.find("final disagreement"), std::string::npos);
  EXPECT_NE(out.find("valid optima set Y"), std::string::npos);
}

TEST(Cli, CsvModeEmitsHeaderAndRows) {
  std::string out;
  EXPECT_EQ(run({"--rounds", "50", "--csv"}, &out), 0);
  EXPECT_EQ(out.rfind("t,disagreement,max_dist_to_y,max_projection_error", 0), 0u);
  // 50 rounds + initial row + header.
  EXPECT_EQ(static_cast<int>(std::count(out.begin(), out.end(), '\n')), 52);
}

TEST(Cli, UnknownFlagFailsWithUsage) {
  std::string err;
  EXPECT_EQ(run({"--bogus", "1"}, nullptr, &err), 2);
  EXPECT_NE(err.find("usage"), std::string::npos);
}

TEST(Cli, BadAlgorithmFails) {
  std::string err;
  EXPECT_EQ(run({"--algorithm", "magic"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown algorithm"), std::string::npos);
}

TEST(Cli, BadResilienceFails) {
  std::string err;
  EXPECT_EQ(run({"--n", "6", "--f", "2"}, nullptr, &err), 1);
}

TEST(Cli, DgdAndLocalRun) {
  EXPECT_EQ(run({"--algorithm", "dgd", "--rounds", "100"}), 0);
  EXPECT_EQ(run({"--algorithm", "local", "--rounds", "100"}), 0);
}

TEST(Cli, AsyncRunsWithValidResilience) {
  std::string out;
  EXPECT_EQ(run({"--algorithm", "async", "--n", "6", "--f", "1", "--rounds",
                 "100"},
                &out),
            0);
  EXPECT_NE(out.find("virtual time"), std::string::npos);
}

TEST(Cli, ConstraintFlagsMustComeTogether) {
  std::string err;
  EXPECT_EQ(run({"--constraint-lo", "-1"}, nullptr, &err), 1);
  EXPECT_NE(err.find("together"), std::string::npos);
}

TEST(Cli, ConstrainedRunRespectsInterval) {
  std::string out;
  EXPECT_EQ(run({"--rounds", "500", "--constraint-lo", "-0.5",
                 "--constraint-hi", "0.5"},
                &out),
            0);
  EXPECT_EQ(run({"--rounds", "200", "--audit"}, &out), 0);
  EXPECT_NE(out.find("witness audits"), std::string::npos);
}

TEST(Cli, SaveAndLoadScenarioRoundTrip) {
  const std::string path = "/tmp/ftmao_cli_scenario_test.txt";
  std::string out;
  EXPECT_EQ(run({"--rounds", "150", "--attack", "pull", "--target", "-20",
                 "--save-scenario", path},
                &out),
            0);
  EXPECT_NE(out.find("scenario written"), std::string::npos);

  std::string direct, via_file;
  EXPECT_EQ(run({"--rounds", "150", "--attack", "pull", "--target", "-20"},
                &direct),
            0);
  EXPECT_EQ(run({"--scenario", path}, &via_file), 0);
  EXPECT_EQ(direct, via_file);
}

TEST(Cli, MissingScenarioFileFails) {
  std::string err;
  EXPECT_EQ(run({"--scenario", "/nonexistent/nope.txt"}, nullptr, &err), 1);
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(Cli, GraphAlgorithmReportsRobustness) {
  std::string out;
  EXPECT_EQ(run({"--algorithm", "graph", "--topology", "ring:2", "--n", "9",
                 "--f", "1", "--rounds", "500"},
                &out),
            0);
  EXPECT_NE(out.find("robustness r"), std::string::npos);
  EXPECT_NE(out.find("min in-degree"), std::string::npos);
}

TEST(Cli, GraphBadTopologyFails) {
  std::string err;
  EXPECT_EQ(run({"--algorithm", "graph", "--topology", "moebius"}, nullptr,
                &err),
            1);
  EXPECT_NE(err.find("unknown topology"), std::string::npos);
}

TEST(Cli, CrashAlgorithmRuns) {
  std::string out;
  EXPECT_EQ(run({"--algorithm", "crash", "--n", "5", "--f", "1", "--attack",
                 "none", "--crash-at", "4@100", "--rounds", "1000"},
                &out),
            0);
  EXPECT_NE(out.find("survivors"), std::string::npos);
  EXPECT_NE(out.find("(17)-optimum interval"), std::string::npos);
}

TEST(Cli, CrashBadSpecFails) {
  std::string err;
  EXPECT_EQ(run({"--algorithm", "crash", "--crash-at", "4:100"}, nullptr, &err),
            1);
}

TEST(Cli, DeterministicOutputPerSeed) {
  std::string a, b, c;
  run({"--rounds", "200", "--attack", "noise", "--seed", "9"}, &a);
  run({"--rounds", "200", "--attack", "noise", "--seed", "9"}, &b);
  run({"--rounds", "200", "--attack", "noise", "--seed", "10"}, &c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace ftmao::cli
