// Bit-identity tests for the batched replica engine (sim/batch_runner):
// run_sbg_batch must produce exactly the RunMetrics run_sbg produces per
// scenario — every series entry, final state, witness counter, and trace
// snapshot, compared bitwise. Exercised across attacks (including
// randomized and consistent-broadcast ones), crashes, link drops,
// constraints, and audit options, plus end-to-end through the sweep /
// attack-search / certify drivers at several batch sizes.

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"
#include "sim/attack_search.hpp"
#include "sim/batch_runner.hpp"
#include "sim/certify.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace ftmao {
namespace {

void expect_series_identical(const Series& a, const Series& b,
                             const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise equality — the engine's determinism contract.
    ASSERT_EQ(a[i], b[i]) << what << " diverges at index " << i;
  }
}

void expect_witness_identical(const WitnessStats& a, const WitnessStats& b) {
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.inexact, b.inexact);
  EXPECT_EQ(a.min_weight_seen, b.min_weight_seen);
  EXPECT_EQ(a.min_support_seen, b.min_support_seen);
}

void expect_metrics_identical(const RunMetrics& scalar,
                              const RunMetrics& batched) {
  expect_series_identical(scalar.disagreement, batched.disagreement,
                          "disagreement");
  expect_series_identical(scalar.max_dist_to_y, batched.max_dist_to_y,
                          "max_dist_to_y");
  expect_series_identical(scalar.max_projection_error,
                          batched.max_projection_error,
                          "max_projection_error");
  EXPECT_EQ(scalar.final_states, batched.final_states);
  EXPECT_EQ(scalar.optima, batched.optima);
  expect_witness_identical(scalar.state_witness, batched.state_witness);
  expect_witness_identical(scalar.gradient_witness, batched.gradient_witness);
  ASSERT_EQ(scalar.trace.has_value(), batched.trace.has_value());
  if (scalar.trace) {
    EXPECT_EQ(scalar.trace->honest_ids, batched.trace->honest_ids);
    ASSERT_EQ(scalar.trace->rounds.size(), batched.trace->rounds.size());
    for (std::size_t t = 0; t < scalar.trace->rounds.size(); ++t)
      ASSERT_EQ(scalar.trace->rounds[t], batched.trace->rounds[t])
          << "trace diverges at round " << t;
  }
}

void expect_batch_matches_scalar(const std::vector<Scenario>& replicas,
                                 const RunOptions& options = {}) {
  const std::vector<RunMetrics> batched = run_sbg_batch(replicas, options);
  ASSERT_EQ(batched.size(), replicas.size());
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    SCOPED_TRACE("replica " + std::to_string(i));
    expect_metrics_identical(run_sbg(replicas[i], options), batched[i]);
  }
}

std::vector<Scenario> seed_axis(std::size_t n, std::size_t f, AttackKind kind,
                                std::size_t rounds, std::size_t seeds) {
  std::vector<Scenario> replicas;
  for (std::size_t s = 0; s < seeds; ++s)
    replicas.push_back(
        make_standard_scenario(n, f, 8.0, kind, rounds, 1 + s));
  return replicas;
}

TEST(BatchRunner, EveryAttackKindMatchesScalar) {
  // Covers the uniform fast path (recipient-independent strategies), the
  // per-recipient slow path (SplitBrain), and randomized per-recipient RNG
  // streams (RandomNoise).
  for (AttackKind kind :
       {AttackKind::None, AttackKind::Silent, AttackKind::FixedValue,
        AttackKind::SplitBrain, AttackKind::HullEdgeUp,
        AttackKind::HullEdgeDown, AttackKind::RandomNoise,
        AttackKind::SignFlip, AttackKind::PullToTarget, AttackKind::FlipFlop,
        AttackKind::DelayedStrike}) {
    SCOPED_TRACE(static_cast<int>(kind));
    expect_batch_matches_scalar(seed_axis(7, 2, kind, 60, 3));
  }
}

TEST(BatchRunner, SingleReplicaBatchMatchesScalar) {
  expect_batch_matches_scalar(seed_axis(10, 3, AttackKind::SignFlip, 50, 1));
}

TEST(BatchRunner, ConsistentBroadcastWrapperMatchesScalar) {
  auto replicas = seed_axis(7, 2, AttackKind::SplitBrain, 50, 3);
  for (Scenario& s : replicas) s.attack.consistent = true;
  expect_batch_matches_scalar(replicas);
}

TEST(BatchRunner, LinkDropsMatchScalar) {
  auto replicas = seed_axis(7, 2, AttackKind::PullToTarget, 60, 3);
  for (std::size_t i = 0; i < replicas.size(); ++i)
    replicas[i].drop_probability = 0.1 + 0.1 * static_cast<double>(i);
  expect_batch_matches_scalar(replicas);
}

TEST(BatchRunner, CrashesMatchScalar) {
  auto replicas = seed_axis(8, 2, AttackKind::SignFlip, 60, 3);
  for (Scenario& s : replicas) {
    s.faulty = {7};  // one Byzantine + one crash, within the f = 2 budget
    s.crashes = {{0, 20}};
  }
  expect_batch_matches_scalar(replicas);
}

TEST(BatchRunner, ConstraintAndProjectionErrorsMatchScalar) {
  auto replicas = seed_axis(7, 2, AttackKind::HullEdgeUp, 60, 3);
  for (Scenario& s : replicas) s.constraint = Interval{-1.0, 1.0};
  expect_batch_matches_scalar(replicas);
}

TEST(BatchRunner, AuditAndTraceMatchScalar) {
  RunOptions options;
  options.audit_witnesses = true;
  options.audit_every = 3;
  options.audit_max_rounds = 30;
  options.record_trace = true;
  expect_batch_matches_scalar(seed_axis(7, 2, AttackKind::SplitBrain, 40, 2),
                              options);
  expect_batch_matches_scalar(seed_axis(7, 2, AttackKind::SignFlip, 40, 2),
                              options);
}

TEST(BatchRunner, HeterogeneousReplicasMatchScalar) {
  // Same shape, everything else different: attack, step schedule, drops,
  // constraint, default payload.
  std::vector<Scenario> replicas = seed_axis(7, 2, AttackKind::None, 50, 4);
  replicas[1].attack.kind = AttackKind::PullToTarget;
  replicas[1].attack.target = -11.0;
  replicas[1].step.kind = StepKind::Power;
  replicas[2].attack.kind = AttackKind::RandomNoise;
  replicas[2].drop_probability = 0.2;
  replicas[2].default_payload = SbgPayload{1.5, -0.5};
  replicas[3].constraint = Interval{-2.0, 2.0};
  replicas[3].seed = 99;
  // A shared fault/crash schedule keeps the shape identical across
  // replicas; the crash counts against f, so one Byzantine agent remains.
  for (Scenario& s : replicas) {
    s.faulty = {6};
    s.crashes = {{1, 25}};
  }
  expect_batch_matches_scalar(replicas);
}

TEST(BatchRunner, MixedSplitBrainSignFlipClassesMatchScalar) {
  // Split-brain payloads differ per recipient half (two view classes);
  // sign-flip and pull are recipient-uniform. A batch mixing them must
  // resolve trims through exactly the two shared classes per round and
  // stay bit-identical to the scalar engine — the cross-attack pack the
  // megabatch scheduler produces.
  std::vector<Scenario> replicas =
      seed_axis(7, 2, AttackKind::SplitBrain, 60, 3);
  replicas[1].attack.kind = AttackKind::SignFlip;
  replicas[1].attack.amplification = 5.0;
  replicas[2].attack.kind = AttackKind::PullToTarget;
  replicas[2].attack.target = 20.0;
  replicas[2].attack.gradient_magnitude = 10.0;
  expect_batch_matches_scalar(replicas);
}

TEST(BatchRunner, MismatchedShapeThrows) {
  std::vector<Scenario> replicas = seed_axis(7, 2, AttackKind::None, 20, 1);
  replicas.push_back(make_standard_scenario(10, 3, 8.0, AttackKind::None, 20, 2));
  EXPECT_THROW(run_sbg_batch(replicas), ContractViolation);
}

TEST(BatchRunner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(run_sbg_batch({}).empty());
}

TEST(SweepBatched, CsvIdenticalAcrossEnginesAndBatchSizes) {
  SweepConfig config;
  config.sizes = {{7, 2}, {10, 3}};
  config.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip};
  config.seeds = {1, 2, 3, 4, 5};
  config.rounds = 120;

  config.scalar_engine = true;
  const std::string reference = sweep_to_csv(run_sweep(config));
  config.scalar_engine = false;
  for (std::size_t batch_size : {0u, 1u, 3u, 5u, 7u}) {
    config.batch_size = batch_size;
    EXPECT_EQ(reference, sweep_to_csv(run_sweep(config)))
        << "batch_size=" << batch_size;
  }
}

TEST(AttackSearchBatched, RankingIdenticalAcrossEnginesAndBatchSizes) {
  const Scenario base =
      make_standard_scenario(7, 2, 8.0, AttackKind::None, 150, 5);
  const auto grid = standard_attack_grid();
  const AttackSearchResult reference =
      find_strongest_attack(base, grid, 1, 0, /*scalar_engine=*/true);
  for (std::size_t batch_size : {0u, 1u, 4u}) {
    const AttackSearchResult batched =
        find_strongest_attack(base, grid, 1, batch_size);
    ASSERT_EQ(reference.outcomes.size(), batched.outcomes.size());
    EXPECT_EQ(reference.reference_state, batched.reference_state);
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      EXPECT_EQ(reference.outcomes[i].name, batched.outcomes[i].name);
      EXPECT_EQ(reference.outcomes[i].final_state,
                batched.outcomes[i].final_state);
      EXPECT_EQ(reference.outcomes[i].bias, batched.outcomes[i].bias);
    }
  }
}

TEST(CertifyBatched, ReportIdenticalAcrossEngines) {
  CertifyOptions options;
  options.n = 7;
  options.f = 2;
  options.rounds = 150;

  options.scalar_engine = true;
  const CertificationReport reference = certify_sbg(options);
  options.scalar_engine = false;
  for (std::size_t batch_size : {0u, 3u}) {
    options.batch_size = batch_size;
    const CertificationReport batched = certify_sbg(options);
    EXPECT_EQ(reference.passed, batched.passed);
    ASSERT_EQ(reference.checks.size(), batched.checks.size());
    for (std::size_t i = 0; i < reference.checks.size(); ++i) {
      EXPECT_EQ(reference.checks[i].name, batched.checks[i].name);
      EXPECT_EQ(reference.checks[i].passed, batched.checks[i].passed);
      EXPECT_EQ(reference.checks[i].detail, batched.checks[i].detail);
    }
  }
}

}  // namespace
}  // namespace ftmao
