// Tests for the common thread pool and parallel_for_each.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace ftmao {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // must not deadlock
  pool.wait();  // and must stay reusable
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&completed, i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      ++completed;
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // Independent tasks keep running after one fails.
  EXPECT_EQ(completed.load(), 9);
  // The error does not stick to later, healthy batches.
  pool.submit([&completed] { ++completed; });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(completed.load(), 10);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    // No wait(): destruction must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  parallel_for_each(pool, hits.size(),
                    [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ParallelForEach, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  parallel_for_each(pool, 0, [](std::size_t) { FAIL(); });
  parallel_for_each(/*threads=*/8, /*count=*/0, [](std::size_t) { FAIL(); });
}

TEST(ParallelForEach, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for_each(/*threads=*/1, /*count=*/5,
                    [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForEach, ConveniencePropagatesExceptions) {
  EXPECT_THROW(parallel_for_each(/*threads=*/4, /*count=*/8,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("boom");
                                 }),
               std::logic_error);
  EXPECT_THROW(parallel_for_each(/*threads=*/1, /*count=*/8,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("boom");
                                 }),
               std::logic_error);
}

TEST(ParallelForEach, MoreTasksThanThreads) {
  std::atomic<long> sum{0};
  parallel_for_each(/*threads=*/3, /*count=*/1000,
                    [&sum](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 999L * 1000L / 2);
}

TEST(ThreadLadder, ClipsAndDeduplicates) {
  // {1, 2, 4, max}, clipped to max and deduplicated — a single-core box
  // gets one rung, not four copies of rung 1.
  EXPECT_EQ(thread_ladder(1), (std::vector<std::size_t>{1}));
  EXPECT_EQ(thread_ladder(2), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(thread_ladder(3), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(thread_ladder(4), (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_EQ(thread_ladder(8), (std::vector<std::size_t>{1, 2, 4, 8}));
  EXPECT_EQ(thread_ladder(5), (std::vector<std::size_t>{1, 2, 4, 5}));
}

TEST(ThreadLadder, ZeroResolvesToHardwareConcurrency) {
  const auto ladder = thread_ladder(0);
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.front(), 1u);
  EXPECT_TRUE(std::is_sorted(ladder.begin(), ladder.end()));
  EXPECT_EQ(ladder.back(), ThreadPool::resolve_threads(0));
}

}  // namespace
}  // namespace ftmao
