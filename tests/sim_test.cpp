// Tests for the sim layer: scenario construction/validation, runner
// metric shapes and determinism, the crash runner, and the async runner.

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "func/library.hpp"
#include "sim/async_runner.hpp"
#include "sim/crash_runner.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

// --------------------------------------------------------------- scenario

TEST(Scenario, StandardFactoryShape) {
  const Scenario s = make_standard_scenario(7, 2, 10.0, AttackKind::SplitBrain, 100);
  EXPECT_EQ(s.n, 7u);
  EXPECT_EQ(s.f, 2u);
  EXPECT_EQ(s.faulty.size(), 2u);
  EXPECT_EQ(s.functions.size(), 7u);
  EXPECT_EQ(s.initial_states.size(), 7u);
  EXPECT_NO_THROW(s.validate());
}

TEST(Scenario, HonestViewsExcludeFaulty) {
  const Scenario s = make_standard_scenario(7, 2, 10.0, AttackKind::None, 10);
  EXPECT_EQ(s.honest_functions().size(), 5u);
  const auto idx = s.honest_indices();
  EXPECT_EQ(idx.size(), 5u);
  for (std::size_t i : idx) EXPECT_FALSE(s.is_faulty(i));
}

TEST(Scenario, ValidationCatchesTooManyFaulty) {
  Scenario s = make_standard_scenario(7, 2, 10.0, AttackKind::None, 10);
  s.faulty = {0, 1, 2};  // more than f = 2
  EXPECT_THROW(s.validate(), ContractViolation);
}

TEST(Scenario, ValidationCatchesResilienceViolation) {
  EXPECT_THROW(make_standard_scenario(6, 2, 10.0, AttackKind::None, 10),
               ContractViolation);
}

TEST(Scenario, FewerActualFaultsThanFAllowed) {
  Scenario s = make_standard_scenario(7, 2, 10.0, AttackKind::SplitBrain, 200);
  s.faulty = {6};  // only one of the allowed two
  EXPECT_NO_THROW(s.validate());
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 1.0);
}

TEST(MakeSchedule, BuildsEachKind) {
  EXPECT_NE(make_schedule({StepKind::Harmonic, 1.0, 0.75}), nullptr);
  EXPECT_NE(make_schedule({StepKind::Power, 1.0, 0.75}), nullptr);
  EXPECT_NE(make_schedule({StepKind::Constant, 0.1, 0.75}), nullptr);
}

TEST(MakeAdversary, BuildsEachKind) {
  Rng rng(1);
  for (AttackKind kind :
       {AttackKind::None, AttackKind::Silent, AttackKind::FixedValue,
        AttackKind::SplitBrain, AttackKind::HullEdgeUp, AttackKind::HullEdgeDown,
        AttackKind::RandomNoise, AttackKind::SignFlip, AttackKind::PullToTarget}) {
    AttackConfig cfg;
    cfg.kind = kind;
    EXPECT_NE(make_adversary(cfg, rng.substream("a")), nullptr);
  }
}

// ----------------------------------------------------------------- runner

TEST(Runner, SeriesLengthsMatchRounds) {
  const Scenario s = make_standard_scenario(7, 1, 6.0, AttackKind::SplitBrain, 50);
  const RunMetrics m = run_sbg(s);
  EXPECT_EQ(m.disagreement.size(), 51u);  // index 0 + 50 iterations
  EXPECT_EQ(m.max_dist_to_y.size(), 51u);
  EXPECT_EQ(m.max_projection_error.size(), 51u);
  EXPECT_EQ(m.final_states.size(), 6u);  // honest agents only
}

TEST(Runner, DeterministicAcrossCalls) {
  const Scenario s =
      make_standard_scenario(7, 2, 6.0, AttackKind::RandomNoise, 200, 77);
  const RunMetrics a = run_sbg(s);
  const RunMetrics b = run_sbg(s);
  ASSERT_EQ(a.final_states.size(), b.final_states.size());
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    EXPECT_DOUBLE_EQ(a.final_states[i], b.final_states[i]);
}

TEST(Runner, SeedChangesRandomAttackTrajectory) {
  Scenario s1 = make_standard_scenario(7, 2, 6.0, AttackKind::RandomNoise, 200, 1);
  Scenario s2 = s1;
  s2.seed = 2;
  const RunMetrics a = run_sbg(s1);
  const RunMetrics b = run_sbg(s2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    any_diff |= a.final_states[i] != b.final_states[i];
  EXPECT_TRUE(any_diff);
}

TEST(Runner, WitnessAuditsPopulateStats) {
  Scenario s = make_standard_scenario(7, 1, 6.0, AttackKind::SplitBrain, 30);
  RunOptions opts;
  opts.audit_witnesses = true;
  const RunMetrics m = run_sbg(s, opts);
  EXPECT_GT(m.state_witness.checks, 0u);
  EXPECT_GT(m.gradient_witness.checks, 0u);
  EXPECT_TRUE(m.state_witness.all_passed());
  EXPECT_TRUE(m.gradient_witness.all_passed());
}

TEST(Runner, AuditEveryThinsChecks) {
  Scenario s = make_standard_scenario(7, 1, 6.0, AttackKind::SplitBrain, 30);
  RunOptions every, sparse;
  every.audit_witnesses = true;
  sparse.audit_witnesses = true;
  sparse.audit_every = 10;
  EXPECT_GT(run_sbg(s, every).state_witness.checks,
            run_sbg(s, sparse).state_witness.checks);
}

TEST(Runner, ConstraintKeepsStatesInside) {
  Scenario s = make_standard_scenario(7, 1, 6.0, AttackKind::FixedValue, 500);
  s.constraint = Interval(-1.0, 0.5);
  const RunMetrics m = run_sbg(s);
  for (double x : m.final_states) {
    EXPECT_GE(x, -1.0 - 1e-12);
    EXPECT_LE(x, 0.5 + 1e-12);
  }
}

// ------------------------------------------------------------ link drops

TEST(Drops, ZeroProbabilityMatchesNoFilter) {
  Scenario a = make_standard_scenario(7, 2, 6.0, AttackKind::SplitBrain, 300);
  Scenario b = a;
  b.drop_probability = 0.0;
  const RunMetrics ma = run_sbg(a);
  const RunMetrics mb = run_sbg(b);
  for (std::size_t i = 0; i < ma.final_states.size(); ++i)
    EXPECT_DOUBLE_EQ(ma.final_states[i], mb.final_states[i]);
}

TEST(Drops, DeterministicPerSeed) {
  Scenario s = make_standard_scenario(7, 2, 6.0, AttackKind::SplitBrain, 300);
  s.drop_probability = 0.2;
  const RunMetrics a = run_sbg(s);
  const RunMetrics b = run_sbg(s);
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    EXPECT_DOUBLE_EQ(a.final_states[i], b.final_states[i]);
}

TEST(Drops, ActuallyDropMessages) {
  // With a hostile default and heavy loss, the trajectory must differ
  // from the lossless run (defaults leak into some views).
  Scenario clean = make_standard_scenario(7, 2, 6.0, AttackKind::None, 300);
  clean.faulty.clear();
  clean.default_payload = SbgPayload{100.0, 0.0};
  Scenario lossy = clean;
  lossy.drop_probability = 0.4;
  const RunMetrics a = run_sbg(clean);
  const RunMetrics b = run_sbg(lossy);
  bool differs = false;
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    differs |= a.final_states[i] != b.final_states[i];
  EXPECT_TRUE(differs);
}

TEST(Drops, ModerateLossWithBenignDefaultStillConverges) {
  Scenario s = make_standard_scenario(7, 2, 6.0, AttackKind::SplitBrain, 4000);
  s.drop_probability = 0.1;
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.05);
  EXPECT_LT(m.final_max_dist(), 0.1);
}

TEST(Drops, InvalidProbabilityRejected) {
  Scenario s = make_standard_scenario(7, 2, 6.0, AttackKind::None, 10);
  s.drop_probability = 1.0;
  EXPECT_THROW(run_sbg(s), ContractViolation);
  s.drop_probability = -0.1;
  EXPECT_THROW(run_sbg(s), ContractViolation);
}

// ----------------------------------------------------- hybrid fault model

TEST(Hybrid, CrashPlusByzantineWithinBudgetConverges) {
  // f = 2 budget split: one Byzantine equivocator + one mid-run crash.
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 5000);
  s.faulty = {6};
  s.crashes = {{5, 500}};
  const RunMetrics m = run_sbg(s);
  EXPECT_EQ(m.final_states.size(), 5u);  // survivors only
  EXPECT_LT(m.final_disagreement(), 0.05);
  EXPECT_LT(m.final_max_dist(), 0.1);
}

TEST(Hybrid, CrashedAgentParticipatesUntilCrash) {
  // A crash at round 1 vs a very late crash give different outcomes: the
  // late-crasher's cost function influenced the trajectory for longer.
  Scenario early = make_standard_scenario(7, 2, 8.0, AttackKind::None, 3000);
  early.faulty.clear();
  early.crashes = {{6, 1}};
  Scenario late = early;
  late.crashes = {{6, 2500}};
  const double x_early = run_sbg(early).final_states.front();
  const double x_late = run_sbg(late).final_states.front();
  EXPECT_NE(x_early, x_late);
}

TEST(Hybrid, BudgetOverflowRejected) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 100);
  s.faulty = {5, 6};
  s.crashes = {{4, 10}};  // 3 faults > f = 2
  EXPECT_THROW(run_sbg(s), ContractViolation);
}

TEST(Hybrid, CrashAndByzantineMutuallyExclusive) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 100);
  s.faulty = {6};
  s.crashes = {{6, 10}};
  EXPECT_THROW(run_sbg(s), ContractViolation);
}

TEST(Hybrid, MetricsExcludeCrashedAgents) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::None, 200);
  s.faulty.clear();
  s.crashes = {{0, 50}, {6, 50}};
  const RunMetrics m = run_sbg(s);
  EXPECT_EQ(m.final_states.size(), 5u);
  // The valid family is over the 5 survivors (indices 1..5).
  EXPECT_EQ(s.honest_indices(),
            (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

// ----------------------------------------------------------- crash runner

CrashScenario small_crash_scenario(std::size_t rounds = 2000) {
  CrashScenario s;
  s.n = 5;
  s.functions = make_spread_hubers(5, 8.0);
  s.initial_states = {-4.0, -2.0, 0.0, 2.0, 4.0};
  s.rounds = rounds;
  return s;
}

TEST(CrashRunner, NoCrashesMatchesUniformOptimum) {
  const CrashScenario s = small_crash_scenario();
  const CrashRunMetrics m = run_crash(s);
  EXPECT_EQ(m.final_states.size(), 5u);
  EXPECT_LT(m.disagreement.back(), 0.01);
  // spread hubers are symmetric around 0.
  for (double x : m.final_states) EXPECT_NEAR(x, 0.0, 0.05);
  EXPECT_TRUE(m.optima.is_point() || m.optima.length() < 1e-6);
}

TEST(CrashRunner, EarlyCrashLeavesWeightNearZero) {
  CrashScenario s = small_crash_scenario();
  s.crashes = {{4, 1, 0}};  // agent 4 (optimum at +4) dies before sending
  const CrashRunMetrics m = run_crash(s);
  // Survivors' objective is centered at mean of {-4,-2,0,2} = -1.
  for (double x : m.final_states) EXPECT_NEAR(x, -1.0, 0.1);
}

TEST(CrashRunner, FinalStatesInsideCrashOptimaSet) {
  CrashScenario s = small_crash_scenario();
  s.crashes = {{4, 50, 2}, {0, 200, 1}};
  const CrashRunMetrics m = run_crash(s);
  for (double x : m.final_states)
    EXPECT_LE(m.optima.distance_to(x), 0.1);
  EXPECT_LT(m.disagreement.back(), 0.02);
}

TEST(CrashRunner, PartialDeliveryIsPerRecipient) {
  // Crash with recipients_served = 2: exactly the two lowest-indexed other
  // agents hear the final broadcast. Smoke-level: run completes and the
  // survivors still agree.
  CrashScenario s = small_crash_scenario(1500);
  s.crashes = {{2, 3, 2}};
  const CrashRunMetrics m = run_crash(s);
  EXPECT_LT(m.disagreement.back(), 0.05);
}

TEST(CrashRunner, ValidationCatchesBadEvents) {
  CrashScenario s = small_crash_scenario(10);
  s.crashes = {{9, 1, 0}};  // no such agent
  EXPECT_THROW(run_crash(s), ContractViolation);
  s.crashes = {{0, 1, 0}, {0, 2, 0}};  // duplicate agent
  EXPECT_THROW(run_crash(s), ContractViolation);
  s.crashes = {{0, 1, 0}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}, {4, 1, 0}};
  EXPECT_THROW(run_crash(s), ContractViolation);  // nobody survives
}

TEST(CrashOptimaSet, IntervalSpansCrashWeightRange) {
  // One crashed agent with optimum at +4 among survivors centered at -1:
  // alpha in [0,1] sweeps the optimum from -1 (alpha 0) toward higher.
  const auto fns = make_spread_hubers(5, 8.0);
  const std::vector<ScalarFunctionPtr> survivors(fns.begin(), fns.end() - 1);
  const std::vector<ScalarFunctionPtr> crashed{fns.back()};
  const Interval y = crash_optima_set(survivors, crashed);
  const Interval y_none = crash_optima_set(survivors, {});
  EXPECT_LT(y_none.length(), 1e-6);
  EXPECT_NEAR(y.lo(), y_none.lo(), 1e-6);  // alpha=0 endpoint
  EXPECT_GT(y.hi(), y.lo() + 0.1);         // alpha=1 pulls right
}

TEST(CrashWeightRecovery, MonotoneInCrashTime) {
  CrashScenario s = small_crash_scenario(20000);
  const std::vector<ScalarFunctionPtr> survivors(s.functions.begin(),
                                                 s.functions.end() - 1);
  double prev_alpha = -1.0;
  for (std::size_t crash_round : {1ul, 10ul, 100ul, 1000ul}) {
    s.crashes = {{4, crash_round, 0}};
    const CrashRunMetrics m = run_crash(s);
    const auto alpha = recover_single_crash_weight(
        survivors, *s.functions.back(), m.final_states.front());
    ASSERT_TRUE(alpha.has_value()) << "crash round " << crash_round;
    EXPECT_GE(*alpha, -0.01);
    EXPECT_LE(*alpha, 1.01);
    EXPECT_GT(*alpha, prev_alpha) << "crash round " << crash_round;
    prev_alpha = *alpha;
  }
}

TEST(CrashWeightRecovery, UninformativeAtCrashedOptimum) {
  const auto fns = make_spread_hubers(5, 8.0);
  const std::vector<ScalarFunctionPtr> survivors(fns.begin(), fns.end() - 1);
  // At the crashed agent's own optimum its gradient vanishes.
  EXPECT_FALSE(recover_single_crash_weight(survivors, *fns.back(), 4.0)
                   .has_value());
}

// ----------------------------------------------------------- async runner

AsyncScenario small_async_scenario(std::size_t rounds = 800) {
  AsyncScenario s;
  s.n = 6;
  s.f = 1;
  s.faulty = {5};
  s.functions = make_spread_hubers(6, 6.0);
  s.initial_states = {-3.0, -1.8, -0.6, 0.6, 1.8, 3.0};
  s.attack.kind = AttackKind::SplitBrain;
  s.rounds = rounds;
  return s;
}

TEST(AsyncRunner, ConvergesUnderUniformDelays) {
  const AsyncRunMetrics m = run_async_sbg(small_async_scenario());
  EXPECT_LT(m.disagreement.back(), 0.1);
  EXPECT_LT(m.max_dist_to_y.back(), 0.2);
  EXPECT_GT(m.virtual_time, 0.0);
}

TEST(AsyncRunner, SeriesCoverRequestedRounds) {
  AsyncScenario s = small_async_scenario(100);
  const AsyncRunMetrics m = run_async_sbg(s);
  EXPECT_GE(m.disagreement.size(), 101u);
}

TEST(AsyncRunner, DeterministicPerSeed) {
  const AsyncScenario s = small_async_scenario(150);
  const AsyncRunMetrics a = run_async_sbg(s);
  const AsyncRunMetrics b = run_async_sbg(s);
  ASSERT_EQ(a.final_states.size(), b.final_states.size());
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    EXPECT_DOUBLE_EQ(a.final_states[i], b.final_states[i]);
}

TEST(AsyncRunner, ToleratesTargetedSlowdown) {
  AsyncScenario s = small_async_scenario(600);
  s.delay_kind = DelayKind::TargetedSlow;
  s.delay_lo = 0.5;
  s.slow_delay = 25.0;
  s.slow_count = 1;
  const AsyncRunMetrics m = run_async_sbg(s);
  EXPECT_LT(m.disagreement.back(), 0.15);
}

TEST(AsyncRunner, HybridCrashPlusByzantineConverges) {
  // f = 2 budget: one Byzantine + one send-crash at virtual time 100.
  AsyncScenario s;
  s.n = 11;
  s.f = 2;
  s.faulty = {10};
  s.crashes = {{9, 100.0}};
  s.functions = make_spread_hubers(11, 8.0);
  s.initial_states.resize(11);
  for (std::size_t i = 0; i < 11; ++i)
    s.initial_states[i] = -4.0 + 0.8 * static_cast<double>(i);
  s.attack.kind = AttackKind::SplitBrain;
  s.rounds = 800;
  const AsyncRunMetrics m = run_async_sbg(s);
  EXPECT_EQ(m.final_states.size(), 9u);  // survivors only
  EXPECT_LT(m.disagreement.back(), 0.1);
}

TEST(AsyncRunner, CrashBudgetEnforced) {
  AsyncScenario s = small_async_scenario(10);
  s.crashes = {{0, 1.0}};  // faulty(1) + crash(1) > f = 1
  EXPECT_THROW(run_async_sbg(s), ContractViolation);
  s = small_async_scenario(10);
  s.faulty.clear();
  s.crashes = {{5, 1.0}};  // 5 is fine now (not faulty), within budget
  EXPECT_NO_THROW(run_async_sbg(s));
}

TEST(AsyncRunner, ValidationRequiresNGreaterThan5F) {
  AsyncScenario s = small_async_scenario(10);
  s.n = 5;
  s.functions.resize(5);
  s.initial_states.resize(5);
  s.faulty = {4};
  EXPECT_THROW(run_async_sbg(s), ContractViolation);
}

}  // namespace
}  // namespace ftmao
