// Pins the bench-E13 demonstration as a regression test: the vector
// valid-optima set Y_k is NOT convex for the coupled (radial-Huber)
// family — the geometric obstruction that keeps coordinate-wise SBG a
// heuristic (Section 7) — while the separable family's Y_k stays a box.
// Also pins the caveat the heuristic inherits: consensus per coordinate,
// but no optimality guarantee for coupled costs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/step_size.hpp"
#include "vector/vector_sbg.hpp"
#include "vector/vector_valid.hpp"

namespace ftmao {
namespace {

// The exact E13 family: five radial Hubers, f = 1.
std::vector<VectorFunctionPtr> radial_family() {
  return {
      std::make_shared<RadialHuber>(Vec{0.0, 0.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{8.0, 0.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{4.0, 7.0}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{0.5, 0.5}, 3.0, 1.0),
      std::make_shared<RadialHuber>(Vec{7.5, 0.5}, 3.0, 1.0),
  };
}

std::vector<VectorFunctionPtr> separable_family() {
  return {
      std::make_shared<SeparableHuber>(Vec{-3.0, 1.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{-1.0, -2.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{0.0, 0.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{2.0, 2.0}, 2.0, 1.0),
      std::make_shared<SeparableHuber>(Vec{4.0, -1.0}, 2.0, 1.0),
  };
}

TEST(VectorValid, RadialFamilyYieldsNonConvexityCertificate) {
  const auto fns = radial_family();
  Rng rng(11);  // the E13 seed and budget, so the bench demo stays pinned
  const auto ce = find_nonconvexity(fns, 1, rng, 150);
  ASSERT_TRUE(ce.has_value())
      << "the radial family must certify a non-convex valid set";

  // Re-verify the certificate through the membership test itself: both
  // endpoints valid, the midpoint not.
  EXPECT_TRUE(is_valid_vector_optimum(ce->a, fns, 1, 1e-5));
  EXPECT_TRUE(is_valid_vector_optimum(ce->b, fns, 1, 1e-5));
  EXPECT_FALSE(is_valid_vector_optimum(ce->midpoint, fns, 1, 1e-5));

  // And the midpoint really is the midpoint of the segment.
  ASSERT_EQ(ce->midpoint.dim(), 2u);
  for (std::size_t k = 0; k < 2; ++k)
    EXPECT_DOUBLE_EQ(ce->midpoint[k], ce->a[k] + (ce->b[k] - ce->a[k]) / 2.0);
}

TEST(VectorValid, SeparableFamilyHasConvexValidBox) {
  // Per-coordinate the scalar valid set is an interval, so the separable
  // Y_k is a box: no midpoint of valid optima can fail membership.
  const auto fns = separable_family();
  Rng rng(11);
  EXPECT_FALSE(find_nonconvexity(fns, 1, rng, 60).has_value());
}

TEST(VectorValid, HeuristicKeepsConsensusButNotOptimalityForCoupledCosts) {
  // Coordinate-wise SBG on the radial family under split-brain: the
  // scalar contraction applies per coordinate, so the honest diameter
  // shrinks by orders of magnitude — but the consensus point is NOT
  // certified as a valid optimum (that guarantee is exactly what the
  // non-convexity above forfeits).
  VectorSbgConfig config;
  config.n = 7;
  config.f = 2;
  config.dim = 2;
  VectorSplitBrain attack(2, 50.0, 5.0);
  std::vector<Vec> init;
  for (int i = 0; i < 5; ++i) init.push_back(Vec{-4.0 + 2.0 * i, 4.0 - 2.0 * i});
  const HarmonicStep schedule;
  const auto r =
      run_vector_sbg(config, radial_family(), init, 2, &attack, schedule, 3000);
  EXPECT_GT(r.disagreement[0], 1.0);
  EXPECT_LT(r.disagreement.back(), 0.2);
  // The distance to the honest average optimum stays bounded but need not
  // vanish; assert it is finite and recorded.
  EXPECT_EQ(r.dist_to_average_optimum.size(), 3001u);
  EXPECT_LT(r.dist_to_average_optimum.back(), 10.0);
}

}  // namespace
}  // namespace ftmao
