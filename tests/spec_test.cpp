// Tests for function spec parsing/rendering and scenario file round-trips.

#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"
#include "func/functions.hpp"
#include "func/nonsmooth.hpp"
#include "func/spec.hpp"
#include "sim/runner.hpp"
#include "sim/scenario_io.hpp"

namespace ftmao {
namespace {

// ----------------------------------------------------------- function spec

TEST(FunctionSpec, ParsesEveryType) {
  for (const char* spec :
       {"huber(0, 2, 1)", "logcosh(1, 0.5, 2)", "smoothabs(-3, 0.5, 1)",
        "flathuber(-1, 1, 2, 1)", "softplus(0, 2, 0.5, 1)",
        "asymhuber(0, 1, 3, 1)", "abs(2, 1)"}) {
    EXPECT_NE(parse_function(spec), nullptr) << spec;
  }
}

TEST(FunctionSpec, WhitespaceInsensitive) {
  const auto a = parse_function("huber(1,2,3)");
  const auto b = parse_function("  huber ( 1 , 2 , 3 ) ");
  EXPECT_DOUBLE_EQ(a->value(5.0), b->value(5.0));
}

TEST(FunctionSpec, RoundTripsExactly) {
  for (const char* spec :
       {"huber(0.25, 2, 1.5)", "logcosh(-1.125, 0.5, 2)",
        "smoothabs(-3, 0.5, 1)", "flathuber(-1, 1.5, 2, 1)",
        "softplus(0, 2, 0.5, 1)", "asymhuber(0.5, 1, 3, 1)", "abs(2, 1)"}) {
    const auto fn = parse_function(spec);
    const auto again = parse_function(to_spec(*fn));
    for (double x : {-7.3, -1.0, 0.0, 0.6, 4.2}) {
      EXPECT_DOUBLE_EQ(fn->value(x), again->value(x)) << spec;
      EXPECT_DOUBLE_EQ(fn->derivative(x), again->derivative(x)) << spec;
    }
  }
}

TEST(FunctionSpec, ParsedBehaviourMatchesDirectConstruction) {
  const auto parsed = parse_function("huber(1, 2, 3)");
  const Huber direct(1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(parsed->value(4.0), direct.value(4.0));
  EXPECT_DOUBLE_EQ(parsed->derivative(-2.0), direct.derivative(-2.0));
}

TEST(FunctionSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_function("huber"), ContractViolation);
  EXPECT_THROW(parse_function("huber(1, 2"), ContractViolation);
  EXPECT_THROW(parse_function("(1, 2, 3)"), ContractViolation);
  EXPECT_THROW(parse_function("waffles(1, 2, 3)"), ContractViolation);
  EXPECT_THROW(parse_function("huber(1, 2)"), ContractViolation);       // arity
  EXPECT_THROW(parse_function("huber(1, 2, 3, 4)"), ContractViolation); // arity
  EXPECT_THROW(parse_function("huber(1, two, 3)"), ContractViolation);
  EXPECT_THROW(parse_function("huber(0, -1, 1)"), ContractViolation);   // params
  EXPECT_THROW(parse_function("flathuber(2, 1, 1, 1)"), ContractViolation);
}

TEST(FunctionSpec, ToSpecRejectsUnsupportedTypes) {
  const MaxAffine fn({{-1.0, 0.0}, {1.0, 0.0}});
  EXPECT_THROW(to_spec(fn), ContractViolation);
}

// ------------------------------------------------------------ name tables

TEST(Names, AttackKindsRoundTrip) {
  for (AttackKind kind :
       {AttackKind::None, AttackKind::Silent, AttackKind::FixedValue,
        AttackKind::SplitBrain, AttackKind::HullEdgeUp, AttackKind::HullEdgeDown,
        AttackKind::RandomNoise, AttackKind::SignFlip, AttackKind::PullToTarget,
        AttackKind::FlipFlop, AttackKind::DelayedStrike}) {
    EXPECT_EQ(parse_attack_kind(attack_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_attack_kind("nope"), ContractViolation);
}

TEST(Names, StepKindsRoundTrip) {
  for (StepKind kind : {StepKind::Harmonic, StepKind::Power, StepKind::Constant})
    EXPECT_EQ(parse_step_kind(step_kind_name(kind)), kind);
  EXPECT_THROW(parse_step_kind("geometric"), ContractViolation);
}

// ----------------------------------------------------------- scenario file

Scenario rich_scenario() {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::PullToTarget, 321, 17);
  s.attack.target = -42.5;
  s.attack.gradient_magnitude = 7.25;
  s.attack.consistent = true;
  s.step = {StepKind::Power, 0.5, 0.6};
  s.constraint = Interval(-3.0, 2.5);
  s.default_payload = SbgPayload{1.5, -0.25};
  s.drop_probability = 0.125;
  s.faulty = {6};
  s.crashes = {{5, 40}};
  return s;
}

TEST(ScenarioIo, RoundTripPreservesEveryField) {
  const Scenario original = rich_scenario();
  std::stringstream buffer;
  save_scenario(original, buffer);
  const Scenario loaded = load_scenario(buffer);

  EXPECT_EQ(loaded.n, original.n);
  EXPECT_EQ(loaded.f, original.f);
  EXPECT_EQ(loaded.faulty, original.faulty);
  EXPECT_EQ(loaded.rounds, original.rounds);
  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.attack.kind, original.attack.kind);
  EXPECT_DOUBLE_EQ(loaded.attack.target, original.attack.target);
  EXPECT_DOUBLE_EQ(loaded.attack.gradient_magnitude,
                   original.attack.gradient_magnitude);
  EXPECT_EQ(loaded.attack.consistent, original.attack.consistent);
  EXPECT_EQ(loaded.step.kind, original.step.kind);
  EXPECT_DOUBLE_EQ(loaded.step.scale, original.step.scale);
  EXPECT_DOUBLE_EQ(loaded.step.exponent, original.step.exponent);
  ASSERT_TRUE(loaded.constraint.has_value());
  EXPECT_EQ(*loaded.constraint, *original.constraint);
  EXPECT_DOUBLE_EQ(loaded.default_payload.state, original.default_payload.state);
  EXPECT_DOUBLE_EQ(loaded.drop_probability, original.drop_probability);
  EXPECT_EQ(loaded.crashes, original.crashes);
  EXPECT_EQ(loaded.initial_states, original.initial_states);
  ASSERT_EQ(loaded.functions.size(), original.functions.size());
}

TEST(ScenarioIo, LoadedScenarioRunsIdenticallyToOriginal) {
  Scenario original = rich_scenario();
  original.attack.consistent = false;  // exercise the plainest path
  std::stringstream buffer;
  save_scenario(original, buffer);
  const Scenario loaded = load_scenario(buffer);

  const RunMetrics a = run_sbg(original);
  const RunMetrics b = run_sbg(loaded);
  ASSERT_EQ(a.final_states.size(), b.final_states.size());
  for (std::size_t i = 0; i < a.final_states.size(); ++i)
    EXPECT_DOUBLE_EQ(a.final_states[i], b.final_states[i]);
}

TEST(ScenarioIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a scenario\n"
      "n = 4\n"
      "\n"
      "f = 1   # fault bound\n"
      "rounds = 10\n"
      "function = huber(-1, 2, 1)\n"
      "function = huber(0, 2, 1)\n"
      "function = huber(1, 2, 1)\n"
      "function = huber(2, 2, 1)\n"
      "initial = 0, 0, 0, 0\n");
  const Scenario s = load_scenario(in);
  EXPECT_EQ(s.n, 4u);
  EXPECT_EQ(s.f, 1u);
  EXPECT_EQ(s.functions.size(), 4u);
}

TEST(ScenarioIo, ErrorsArePointed) {
  std::stringstream bad_key("n = 4\nwat = 9\n");
  EXPECT_THROW(load_scenario(bad_key), ContractViolation);
  std::stringstream bad_line("n = 4\njust words\n");
  EXPECT_THROW(load_scenario(bad_line), ContractViolation);
  std::stringstream bad_crash("n = 4\ncrash = 1 : 5\n");
  EXPECT_THROW(load_scenario(bad_crash), ContractViolation);
  std::stringstream invalid(
      "n = 6\nf = 2\nrounds = 1\n"  // violates n > 3f at validate()
      "function = huber(0,1,1)\nfunction = huber(0,1,1)\n"
      "function = huber(0,1,1)\nfunction = huber(0,1,1)\n"
      "function = huber(0,1,1)\nfunction = huber(0,1,1)\n"
      "initial = 0,0,0,0,0,0\n");
  EXPECT_THROW(load_scenario(invalid), ContractViolation);
}

}  // namespace
}  // namespace ftmao
