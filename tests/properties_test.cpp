// Property-style parameterized sweeps: Theorem 2 across the (n, f) grid
// and random cost families/seeds; the trim-hull invariant through whole
// executions; and schedule-family behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "core/valid_set.hpp"
#include "func/library.hpp"
#include "sim/runner.hpp"

namespace ftmao {
namespace {

// ------------------------------------------------ (n, f) resilience sweep

class ResilienceGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ResilienceGrid, Theorem2HoldsAcrossGrid) {
  const auto [n, f] = GetParam();
  Scenario s = make_standard_scenario(n, f, 8.0, AttackKind::SplitBrain, 4000);
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.1) << "n=" << n << " f=" << f;
  EXPECT_LT(m.final_max_dist(), 0.15) << "n=" << n << " f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Grid, ResilienceGrid,
                         ::testing::Values(std::tuple{4u, 1u}, std::tuple{5u, 1u},
                                           std::tuple{7u, 2u}, std::tuple{10u, 3u},
                                           std::tuple{13u, 4u}, std::tuple{16u, 5u},
                                           std::tuple{25u, 8u}));

// --------------------------------------------- random families and seeds

class RandomFamilySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFamilySweep, Theorem2OnRandomCosts) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Scenario s;
  s.n = 10;
  s.f = 3;
  s.faulty = {2, 5, 8};  // non-contiguous fault pattern
  s.functions = make_random_family(s.n, rng);
  s.initial_states.resize(s.n);
  for (auto& x : s.initial_states) x = rng.uniform(-12.0, 12.0);
  s.attack.kind = AttackKind::SignFlip;
  // Random families can have small gradient scales (slow travel), so use
  // the slower-decaying valid schedule and a longer horizon.
  s.step = {StepKind::Power, 1.0, 0.6};
  s.rounds = 8000;
  s.seed = seed;
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.1) << "seed " << seed;
  EXPECT_LT(m.final_max_dist(), 0.3) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFamilySweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ------------------------------------------------- honest-hull invariant

// Honest states never leave the interval spanned by the initial honest
// states inflated by the total gradient budget: |x_j[t]| stays within
// hull + sum(lambda)*L at all times. We check the much tighter empirical
// invariant that states never exceed the initial hull inflated by the
// partial step sums — the engine-level consequence of the trim-hull
// property of Step 3.
TEST(HonestHullInvariant, StatesBoundedByStepBudget) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::FixedValue, 1000);
  s.attack.state_magnitude = 1e6;  // wild outliers
  s.attack.gradient_magnitude = 1e6;
  const RunMetrics m = run_sbg(s);
  const double L = family_gradient_bound(s.honest_functions());
  double budget = 0.0;
  const HarmonicStep h(1.0);
  for (std::size_t t = 0; t < s.rounds; ++t) budget += h.at(t) * L;
  const double hull_hi = 4.0 + budget;  // initial honest states within [-4, 4]
  for (double x : m.final_states) {
    EXPECT_LE(std::abs(x), hull_hi);
    EXPECT_LT(std::abs(x), 100.0);  // far tighter in practice
  }
}

// ------------------------------------------------------- schedule family

class ValidScheduleSweep : public ::testing::TestWithParam<StepConfig> {};

TEST_P(ValidScheduleSweep, ConsensusAndOptimalityForValidSchedules) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::SplitBrain, 8000);
  s.step = GetParam();
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.15);
  EXPECT_LT(m.final_max_dist(), 0.4);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ValidScheduleSweep,
    ::testing::Values(StepConfig{StepKind::Harmonic, 1.0, 0.0},
                      StepConfig{StepKind::Harmonic, 0.5, 0.0},
                      StepConfig{StepKind::Power, 1.0, 0.75},
                      StepConfig{StepKind::Power, 1.0, 0.9},
                      StepConfig{StepKind::Power, 0.5, 0.6}));

// ------------------------------------------------------ trim-only ablation

// Ablation: the trimmed reduce is what separates SBG from plain averaging.
// A coordinated attack (fabricated states at the target plus poisoned
// gradients) captures DGD completely while SBG remains inside Y.
TEST(TrimAblation, CoordinatedAttackDefeatsAveragingNotSbg) {
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::PullToTarget, 3000);
  s.attack.target = 40.0;
  s.attack.gradient_magnitude = 10.0;
  const RunMetrics dgd = run_dgd(s);
  const RunMetrics sbg = run_sbg(s);
  EXPECT_GT(dgd.final_max_dist(), 5.0);
  EXPECT_LT(sbg.final_max_dist(), 0.1);
}

// -------------------------------------------- Y sampling cross-validation

class YConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YConsistency, EnvelopeYContainsAndNearlyMatchesSampledHull) {
  Rng rng(GetParam());
  const auto fns = make_random_family(7, rng);
  const ValidFamily family(fns, 2);
  const Interval y = family.optima_set();
  Rng sampler = rng.substream("sample");
  const Interval hull = family.sampled_optima_hull(sampler, 800);
  EXPECT_GE(hull.lo(), y.lo() - 1e-6);
  EXPECT_LE(hull.hi(), y.hi() + 1e-6);
  // The envelope endpoints are attainable: targeted envelope functions at
  // the endpoints have argmins touching them.
  const Interval lo_argmin = family.envelope_function_at(y.lo(), true).argmin();
  const Interval hi_argmin = family.envelope_function_at(y.hi(), false).argmin();
  EXPECT_LE(std::abs(lo_argmin.lo() - y.lo()), 1e-5);
  EXPECT_LE(std::abs(hi_argmin.hi() - y.hi()), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, YConsistency,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ------------------------------------------------------------ chaos test

// Everything at once: Byzantine equivocation + an honest crash + random
// link loss, all inside the f budget and the loss-tolerance envelope.
// Theorem 2's guarantees must survive the combination.
TEST(Chaos, ByzantinePlusCrashPlusLossStillConverges) {
  Scenario s = make_standard_scenario(10, 3, 8.0, AttackKind::SplitBrain, 6000);
  s.faulty = {8, 9};        // 2 Byzantine
  s.crashes = {{7, 300}};   // +1 crash = budget f = 3 exactly
  s.drop_probability = 0.02;
  const RunMetrics m = run_sbg(s);
  EXPECT_EQ(m.final_states.size(), 7u);
  EXPECT_LT(m.final_disagreement(), 0.1);
  EXPECT_LT(m.final_max_dist(), 0.3);
}

// ------------------------------------------------------ default payloads

TEST(DefaultPayload, SilentAttackWithBiasedDefaultStillConverges) {
  // Step 2's default substitution is adversary-relevant: even a biased
  // default tuple is trimmed away like any outlier.
  Scenario s = make_standard_scenario(7, 2, 8.0, AttackKind::Silent, 4000);
  s.default_payload = SbgPayload{500.0, -500.0};
  const RunMetrics m = run_sbg(s);
  EXPECT_LT(m.final_disagreement(), 0.05);
  EXPECT_LT(m.final_max_dist(), 0.1);
}

}  // namespace
}  // namespace ftmao
