// Tests for the Byzantine strategy implementations: each attack's payload
// shape, determinism, and its observed interaction with the round view.

#include <gtest/gtest.h>

#include <vector>

#include "adversary/strategies.hpp"
#include "baseline/consistent.hpp"
#include "common/rng.hpp"

namespace ftmao {
namespace {

std::vector<Received<SbgPayload>> honest_msgs(
    std::initializer_list<std::pair<std::uint32_t, SbgPayload>> items) {
  std::vector<Received<SbgPayload>> out;
  for (const auto& [id, payload] : items) out.push_back({AgentId{id}, payload});
  return out;
}

TEST(Silent, AlwaysOmits) {
  SilentAdversary adv;
  const auto msgs = honest_msgs({{0, {1.0, 1.0}}});
  const RoundView<SbgPayload> view{Round{1}, msgs};
  EXPECT_FALSE(adv.send_to(AgentId{9}, AgentId{0}, view).has_value());
}

TEST(FixedValue, AlwaysSendsSamePayload) {
  FixedValueAdversary adv(SbgPayload{4.0, -2.0});
  const RoundView<SbgPayload> view{Round{1}, {}};
  for (std::uint32_t r = 0; r < 5; ++r) {
    const auto p = adv.send_to(AgentId{9}, AgentId{r}, view);
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(p->state, 4.0);
    EXPECT_DOUBLE_EQ(p->gradient, -2.0);
  }
}

TEST(SplitBrain, ParityDeterminesSign) {
  SplitBrainAdversary adv(10.0, 2.0);
  const RoundView<SbgPayload> view{Round{1}, {}};
  const auto even = adv.send_to(AgentId{9}, AgentId{2}, view);
  const auto odd = adv.send_to(AgentId{9}, AgentId{3}, view);
  ASSERT_TRUE(even && odd);
  EXPECT_DOUBLE_EQ(even->state, 10.0);
  EXPECT_DOUBLE_EQ(odd->state, -10.0);
  EXPECT_DOUBLE_EQ(even->gradient, 2.0);
  EXPECT_DOUBLE_EQ(odd->gradient, -2.0);
}

TEST(HullEdge, TracksHonestExtremes) {
  HullEdgeAdversary up(/*push_up=*/true);
  HullEdgeAdversary down(/*push_up=*/false);
  const auto msgs =
      honest_msgs({{0, {1.0, -3.0}}, {1, {5.0, 2.0}}, {2, {-2.0, 0.5}}});
  const RoundView<SbgPayload> view{Round{1}, msgs};
  // push_up: max state with MIN gradient (both bias the update upward).
  const auto hi = up.send_to(AgentId{9}, AgentId{0}, view);
  ASSERT_TRUE(hi);
  EXPECT_DOUBLE_EQ(hi->state, 5.0);
  EXPECT_DOUBLE_EQ(hi->gradient, -3.0);
  const auto lo = down.send_to(AgentId{9}, AgentId{0}, view);
  ASSERT_TRUE(lo);
  EXPECT_DOUBLE_EQ(lo->state, -2.0);
  EXPECT_DOUBLE_EQ(lo->gradient, 2.0);
}

TEST(HullEdge, StaysInsideHonestRangeByConstruction) {
  // The attack value always equals an honest value, so trimming can never
  // prove it faulty — yet it maximally biases the reduce.
  HullEdgeAdversary adv(true);
  const auto msgs = honest_msgs({{0, {1.0, 0.0}}, {1, {2.0, 0.0}}});
  const RoundView<SbgPayload> view{Round{1}, msgs};
  const auto p = adv.send_to(AgentId{9}, AgentId{0}, view);
  ASSERT_TRUE(p);
  EXPECT_GE(p->state, 1.0);
  EXPECT_LE(p->state, 2.0);
}

TEST(HullEdge, OmitsWithNoObservations) {
  HullEdgeAdversary adv(true);
  const RoundView<SbgPayload> view{Round{1}, {}};
  EXPECT_FALSE(adv.send_to(AgentId{9}, AgentId{0}, view).has_value());
}

TEST(RandomNoise, DeterministicPerSeedAndBounded) {
  RandomNoiseAdversary a(Rng(3), 5.0, 1.0);
  RandomNoiseAdversary b(Rng(3), 5.0, 1.0);
  const RoundView<SbgPayload> view{Round{1}, {}};
  for (int i = 0; i < 50; ++i) {
    const auto pa = a.send_to(AgentId{9}, AgentId{0}, view);
    const auto pb = b.send_to(AgentId{9}, AgentId{0}, view);
    ASSERT_TRUE(pa && pb);
    EXPECT_DOUBLE_EQ(pa->state, pb->state);
    EXPECT_LE(std::abs(pa->state), 5.0);
    EXPECT_LE(std::abs(pa->gradient), 1.0);
  }
}

TEST(SignFlip, InvertsAndAmplifiesMeanGradient) {
  SignFlipAdversary adv(3.0);
  const auto msgs = honest_msgs({{0, {0.0, 1.0}}, {1, {2.0, 3.0}}});
  const RoundView<SbgPayload> view{Round{1}, msgs};
  const auto p = adv.send_to(AgentId{9}, AgentId{0}, view);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->gradient, -3.0 * 2.0);  // mean gradient = 2
  // state = median of {0, 2} (upper median) = 2
  EXPECT_DOUBLE_EQ(p->state, 2.0);
}

TEST(PullToTarget, PointsGradientTowardTarget) {
  PullToTargetAdversary adv(-10.0, 5.0);
  const auto msgs = honest_msgs({{0, {0.0, 0.0}}, {1, {2.0, 0.0}}, {2, {4.0, 0.0}}});
  const RoundView<SbgPayload> view{Round{1}, msgs};
  const auto p = adv.send_to(AgentId{9}, AgentId{0}, view);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->state, -10.0);
  EXPECT_DOUBLE_EQ(p->gradient, 5.0);  // median 2 > target: push down
}

TEST(PullToTarget, FlipsWhenMedianBelowTarget) {
  PullToTargetAdversary adv(10.0, 5.0);
  const auto msgs = honest_msgs({{0, {0.0, 0.0}}});
  const RoundView<SbgPayload> view{Round{1}, msgs};
  const auto p = adv.send_to(AgentId{9}, AgentId{0}, view);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->gradient, -5.0);
}

TEST(DelayedActivation, MimicsHonestThenStrikes) {
  PullToTargetAdversary late(-100.0, 5.0);
  DelayedActivationAdversary adv(Round{10}, late);
  const auto msgs = honest_msgs({{0, {1.0, 0.5}}, {1, {3.0, 1.5}}});
  const RoundView<SbgPayload> dormant{Round{5}, msgs};
  const auto p1 = adv.send_to(AgentId{9}, AgentId{0}, dormant);
  ASSERT_TRUE(p1);
  EXPECT_DOUBLE_EQ(p1->state, 3.0);     // upper median of honest states
  EXPECT_DOUBLE_EQ(p1->gradient, 1.5);  // upper median of honest gradients
  const RoundView<SbgPayload> active{Round{10}, msgs};
  const auto p2 = adv.send_to(AgentId{9}, AgentId{0}, active);
  ASSERT_TRUE(p2);
  EXPECT_DOUBLE_EQ(p2->state, -100.0);  // now pulling to target
}

TEST(DelayedActivation, OwningConstructorWorks) {
  DelayedActivationAdversary adv(
      Round{1}, std::make_unique<PullToTargetAdversary>(7.0, 1.0));
  const auto msgs = honest_msgs({{0, {0.0, 0.0}}});
  const RoundView<SbgPayload> view{Round{3}, msgs};
  const auto p = adv.send_to(AgentId{9}, AgentId{0}, view);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->state, 7.0);
}

TEST(FlipFlopAttack, AlternatesDirectionByPeriod) {
  FlipFlopAdversary adv(2);
  const auto msgs = honest_msgs({{0, {1.0, -1.0}}, {1, {5.0, 2.0}}});
  // rounds 0,1 -> high phase; rounds 2,3 -> low phase (period 2).
  const auto hi = adv.send_to(AgentId{9}, AgentId{0}, {Round{1}, msgs});
  const auto lo = adv.send_to(AgentId{9}, AgentId{0}, {Round{2}, msgs});
  ASSERT_TRUE(hi && lo);
  EXPECT_DOUBLE_EQ(hi->state, 5.0);
  EXPECT_DOUBLE_EQ(hi->gradient, -1.0);  // min gradient drags upward
  EXPECT_DOUBLE_EQ(lo->state, 1.0);
  EXPECT_DOUBLE_EQ(lo->gradient, 2.0);
}

// ----------------------------------------------------- ConsistentWrapper

TEST(ConsistentWrapper, ForcesIdenticalPayloadsWithinRound) {
  SplitBrainAdversary inner(10.0, 2.0);
  ConsistentWrapper wrapped(inner);
  const RoundView<SbgPayload> view{Round{1}, {}};
  const auto p0 = wrapped.send_to(AgentId{9}, AgentId{0}, view);
  const auto p1 = wrapped.send_to(AgentId{9}, AgentId{1}, view);
  ASSERT_TRUE(p0 && p1);
  EXPECT_DOUBLE_EQ(p0->state, p1->state);  // split-brain neutralized
  EXPECT_DOUBLE_EQ(p0->gradient, p1->gradient);
}

TEST(ConsistentWrapper, RefreshesAcrossRounds) {
  // An adversary whose payload depends on the round would be frozen within
  // a round but must be re-queried on the next round.
  class RoundEcho final : public SbgAdversary {
   public:
    std::optional<SbgPayload> send_to(AgentId, AgentId,
                                      const RoundView<SbgPayload>& view) override {
      return SbgPayload{static_cast<double>(view.round.value), 0.0};
    }
  };
  RoundEcho inner;
  ConsistentWrapper wrapped(inner);
  const RoundView<SbgPayload> v1{Round{1}, {}};
  const RoundView<SbgPayload> v2{Round{2}, {}};
  EXPECT_DOUBLE_EQ(wrapped.send_to(AgentId{9}, AgentId{0}, v1)->state, 1.0);
  EXPECT_DOUBLE_EQ(wrapped.send_to(AgentId{9}, AgentId{1}, v1)->state, 1.0);
  EXPECT_DOUBLE_EQ(wrapped.send_to(AgentId{9}, AgentId{0}, v2)->state, 2.0);
}

TEST(ConsistentWrapper, PreservesOmissions) {
  SilentAdversary inner;
  ConsistentWrapper wrapped(inner);
  const RoundView<SbgPayload> view{Round{1}, {}};
  EXPECT_FALSE(wrapped.send_to(AgentId{9}, AgentId{0}, view).has_value());
}

}  // namespace
}  // namespace ftmao
