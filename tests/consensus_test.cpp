// Tests for the consensus substrate: EIG Byzantine broadcast (validity +
// agreement under sender equivocation and chaotic relays) and iterative
// approximate consensus (validity + exponential contraction).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "consensus/eig.hpp"
#include "consensus/iterative.hpp"

namespace ftmao {
namespace {

// ---------------------------------------------------------------- EIG

EigConfig eig_config(std::size_t n, std::size_t f, double def = -999.0) {
  EigConfig c;
  c.n = n;
  c.f = f;
  c.default_value = def;
  return c;
}

std::vector<double> all_honest_decisions(const EigInstance& instance,
                                         const std::vector<EigAttack*>& attacks) {
  std::vector<double> out;
  for (std::uint32_t i = 0; i < attacks.size(); ++i)
    if (attacks[i] == nullptr) out.push_back(instance.decision(AgentId{i}));
  return out;
}

TEST(Eig, HonestSenderValidity) {
  // No faults at all: everyone decides the sender's value.
  const std::vector<EigAttack*> attacks(4, nullptr);
  EigInstance instance(eig_config(4, 1), AgentId{2}, attacks);
  instance.run(3.25);
  for (double d : all_honest_decisions(instance, attacks))
    EXPECT_DOUBLE_EQ(d, 3.25);
}

TEST(Eig, HonestSenderValidityDespiteFaultyRelayer) {
  // The sender is honest; one chaotic relayer cannot change the decision.
  EigChaoticRelay chaos(100.0);
  std::vector<EigAttack*> attacks(4, nullptr);
  attacks[3] = &chaos;
  EigInstance instance(eig_config(4, 1), AgentId{0}, attacks);
  instance.run(-1.5);
  for (double d : all_honest_decisions(instance, attacks))
    EXPECT_DOUBLE_EQ(d, -1.5);
}

TEST(Eig, EquivocatingSenderStillYieldsAgreement) {
  EigEquivocateSender equiv(42.0);
  std::vector<EigAttack*> attacks(4, nullptr);
  attacks[1] = &equiv;
  EigInstance instance(eig_config(4, 1), AgentId{1}, attacks);
  instance.run(0.0);
  const auto decisions = all_honest_decisions(instance, attacks);
  ASSERT_EQ(decisions.size(), 3u);
  for (double d : decisions) EXPECT_DOUBLE_EQ(d, decisions.front());
}

TEST(Eig, TwoFaultsNeedTwoRelayRounds) {
  // n = 7, f = 2: sender equivocates AND a relayer lies chaotically;
  // agreement must still hold among the 5 honest agents.
  EigEquivocateSender equiv(10.0);
  EigChaoticRelay chaos(50.0);
  std::vector<EigAttack*> attacks(7, nullptr);
  attacks[0] = &equiv;
  attacks[4] = &chaos;
  EigInstance instance(eig_config(7, 2), AgentId{0}, attacks);
  instance.run(0.0);
  const auto decisions = all_honest_decisions(instance, attacks);
  ASSERT_EQ(decisions.size(), 5u);
  for (double d : decisions) EXPECT_DOUBLE_EQ(d, decisions.front());
}

TEST(Eig, HonestSenderWithTwoChaoticRelayers) {
  EigChaoticRelay chaos_a(50.0);
  EigChaoticRelay chaos_b(77.0);
  std::vector<EigAttack*> attacks(7, nullptr);
  attacks[5] = &chaos_a;
  attacks[6] = &chaos_b;
  EigInstance instance(eig_config(7, 2), AgentId{1}, attacks);
  instance.run(2.0);
  for (double d : all_honest_decisions(instance, attacks))
    EXPECT_DOUBLE_EQ(d, 2.0);  // validity with f=2 faulty relayers
}

TEST(Eig, AgreementAcrossManySeedsAndFaultPositions) {
  for (std::uint32_t sender = 0; sender < 7; ++sender) {
    for (std::uint32_t byz = 0; byz < 7; ++byz) {
      EigEquivocateSender equiv(13.0);
      EigChaoticRelay chaos(99.0);
      std::vector<EigAttack*> attacks(7, nullptr);
      attacks[byz] = byz == sender ? static_cast<EigAttack*>(&equiv)
                                   : static_cast<EigAttack*>(&chaos);
      EigInstance instance(eig_config(7, 2), AgentId{sender}, attacks);
      instance.run(1.0);
      const auto decisions = all_honest_decisions(instance, attacks);
      for (double d : decisions)
        EXPECT_DOUBLE_EQ(d, decisions.front())
            << "sender=" << sender << " byz=" << byz;
      if (byz != sender) {
        // Honest sender: validity too.
        for (double d : decisions) EXPECT_DOUBLE_EQ(d, 1.0);
      }
    }
  }
}

TEST(Eig, ResilienceBoundEnforced) {
  const std::vector<EigAttack*> attacks(6, nullptr);
  EXPECT_THROW(EigInstance(eig_config(6, 2), AgentId{0}, attacks),
               ContractViolation);
}

TEST(Eig, TooManyAttackersRejected) {
  EigChaoticRelay chaos(1.0);
  std::vector<EigAttack*> attacks(4, nullptr);
  attacks[0] = &chaos;
  attacks[1] = &chaos;
  EXPECT_THROW(EigInstance(eig_config(4, 1), AgentId{0}, attacks),
               ContractViolation);
}

TEST(Eig, TreeSizeMatchesTheory) {
  // f=2, n=7: levels sizes 1 + 6 + 30 = 37 per agent.
  const std::vector<EigAttack*> attacks(7, nullptr);
  EigInstance instance(eig_config(7, 2), AgentId{0}, attacks);
  instance.run(0.0);
  EXPECT_EQ(instance.tree_size(), 37u);
}

TEST(Eig, BroadcastAllAgreesForAllObservers) {
  EigEquivocateSender equiv(31.0);
  std::vector<EigAttack*> attacks(4, nullptr);
  attacks[2] = &equiv;
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  const EigConfig config = eig_config(4, 1);

  std::vector<std::vector<double>> views;
  for (std::uint32_t obs = 0; obs < 4; ++obs) {
    if (attacks[obs] != nullptr) continue;
    views.push_back(eig_broadcast_all(config, values, attacks, AgentId{obs}));
  }
  for (const auto& v : views) {
    EXPECT_EQ(v, views.front());      // agreement on the whole vector
    EXPECT_DOUBLE_EQ(v[0], 1.0);      // validity for honest senders
    EXPECT_DOUBLE_EQ(v[1], 2.0);
    EXPECT_DOUBLE_EQ(v[3], 4.0);
  }
}

// ------------------------------------------------- iterative consensus

IterativeConsensusConfig icc(std::size_t n, std::size_t f) {
  IterativeConsensusConfig c;
  c.n = n;
  c.f = f;
  return c;
}

TEST(IterativeConsensus, FaultFreeConvergesInsideHull) {
  const auto r = run_iterative_consensus(icc(4, 1), {0.0, 1.0, 2.0, 9.0}, 0,
                                         nullptr, 100);
  EXPECT_TRUE(r.validity_held);
  EXPECT_LT(r.disagreement.back(), 1e-9);
  for (double v : r.final_values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 9.0);
  }
}

TEST(IterativeConsensus, SplitBrainByzantineTolerated) {
  const FunctionalByzantine::Behaviour split =
      [](AgentId, AgentId to, const RoundView<double>&) -> std::optional<double> {
    return to.value % 2 == 0 ? 1e6 : -1e6;
  };
  const auto r = run_iterative_consensus(icc(7, 2), {0, 1, 2, 3, 4}, 2, split, 200);
  EXPECT_TRUE(r.validity_held);
  EXPECT_LT(r.disagreement.back(), 1e-9);
}

TEST(IterativeConsensus, HullEdgeByzantineBiasesButConverges) {
  const FunctionalByzantine::Behaviour edge =
      [](AgentId, AgentId, const RoundView<double>& view) -> std::optional<double> {
    double hi = view.honest_broadcasts.front().payload;
    for (const auto& m : view.honest_broadcasts) hi = std::max(hi, m.payload);
    return hi;
  };
  const auto r = run_iterative_consensus(icc(7, 2), {0, 1, 2, 3, 4}, 2, edge, 200);
  EXPECT_TRUE(r.validity_held);
  EXPECT_LT(r.disagreement.back(), 1e-9);
  // The attack drags the agreement upward, but never outside the hull.
  EXPECT_GT(r.final_values.front(), 2.0);
  EXPECT_LE(r.final_values.front(), 4.0 + 1e-12);
}

TEST(IterativeConsensus, ContractionAtLeastTheoreticalRate) {
  // Lemma 3's factor: spread contracts by (1 - 1/(2(m-f))) per round.
  const std::size_t n = 7, f = 2, m = 5;
  const auto r =
      run_iterative_consensus(icc(n, f), {0, 1, 2, 3, 10}, 2,
                              [](AgentId, AgentId to,
                                 const RoundView<double>&) -> std::optional<double> {
                                return to.value % 2 == 0 ? 50.0 : -50.0;
                              },
                              60);
  const double rho = 1.0 - 1.0 / (2.0 * (m - f));
  for (std::size_t t = 1; t < r.disagreement.size(); ++t) {
    EXPECT_LE(r.disagreement[t], rho * r.disagreement[t - 1] + 1e-9)
        << "round " << t;
  }
}

TEST(IterativeConsensus, SilentFaultsUseDefaults) {
  IterativeConsensusConfig config = icc(4, 1);
  config.default_value = 1e9;  // hostile default, must be trimmed away
  const auto r = run_iterative_consensus(config, {1.0, 2.0, 3.0}, 1, nullptr, 50);
  EXPECT_TRUE(r.validity_held);
  EXPECT_LT(r.disagreement.back(), 1e-9);
}

TEST(IterativeConsensus, ExactlyExponentialForCleanRun) {
  const auto r = run_iterative_consensus(icc(4, 1), {0.0, 4.0, 8.0}, 1,
                                         nullptr, 40);
  // log-linear decay: ratio of consecutive disagreements roughly constant.
  ASSERT_GT(r.disagreement.size(), 10u);
  for (std::size_t t = 2; t < 10; ++t) {
    if (r.disagreement[t] <= 0) break;
    EXPECT_LT(r.disagreement[t], r.disagreement[t - 1]);
  }
}

}  // namespace
}  // namespace ftmao
