// Tests for the certification barrage.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "sim/certify.hpp"

namespace ftmao {
namespace {

TEST(Certify, StandardSystemPasses) {
  CertifyOptions options;
  options.rounds = 1500;
  const CertificationReport report = certify_sbg(options);
  EXPECT_TRUE(report.passed);
  ASSERT_EQ(report.checks.size(), 10u);
  for (const auto& check : report.checks)
    EXPECT_TRUE(check.passed) << check.name << ": " << check.detail;
  EXPECT_EQ(report.checks[5].name, "async-consensus");
  EXPECT_EQ(report.checks[6].name, "async-optimality");
  EXPECT_EQ(report.checks[7].name, "vector-consensus");
  EXPECT_EQ(report.checks[8].name, "vector-optimality");
}

TEST(Certify, AsyncAndVectorSectionsCanBeDisabled) {
  CertifyOptions options;
  options.rounds = 300;
  options.async_rounds = 0;
  options.vector_rounds = 0;
  const CertificationReport report = certify_sbg(options);
  ASSERT_EQ(report.checks.size(), 6u);
  for (const auto& check : report.checks) {
    EXPECT_TRUE(check.name.find("async") == std::string::npos) << check.name;
    EXPECT_TRUE(check.name.find("vector") == std::string::npos) << check.name;
  }
}

TEST(Certify, TightResilienceBoundPasses) {
  CertifyOptions options;
  options.n = 4;
  options.f = 1;
  options.rounds = 2000;
  options.async_rounds = 0;   // the sync resilience edge is the subject here
  options.vector_rounds = 0;  // (vector/async sections have their own tests)
  const CertificationReport report = certify_sbg(options);
  EXPECT_TRUE(report.passed);
}

TEST(Certify, UnreasonableEpsilonFails) {
  CertifyOptions options;
  options.rounds = 50;            // far too short...
  options.consensus_eps = 1e-12;  // ...for an absurd acceptance threshold
  options.async_rounds = 0;
  options.vector_rounds = 0;
  const CertificationReport report = certify_sbg(options);
  EXPECT_FALSE(report.passed);
  // Specifically the consensus check must be the failure.
  EXPECT_FALSE(report.checks.front().passed);
}

TEST(Certify, RejectsBadResilience) {
  CertifyOptions options;
  options.n = 6;
  options.f = 2;
  EXPECT_THROW(certify_sbg(options), ContractViolation);
}

TEST(Certify, Deterministic) {
  CertifyOptions options;
  options.rounds = 500;
  options.async_rounds = 200;
  options.vector_rounds = 200;
  const auto a = certify_sbg(options);
  const auto b = certify_sbg(options);
  ASSERT_EQ(a.checks.size(), b.checks.size());
  for (std::size_t i = 0; i < a.checks.size(); ++i)
    EXPECT_EQ(a.checks[i].detail, b.checks[i].detail);
}

}  // namespace
}  // namespace ftmao
