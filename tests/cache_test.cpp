// Content-addressed result cache: golden key stability, payload codec,
// LRU eviction, the persistent disk tier (including corrupt / truncated /
// mismatched records degrading to misses), and the end-to-end guarantee
// that cached sweep / certify / attack-search results are byte-identical
// cold vs warm vs mixed.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/cell_key.hpp"
#include "cache/result_cache.hpp"
#include "common/contracts.hpp"
#include "sim/attack_search.hpp"
#include "sim/certify.hpp"
#include "sim/sweep.hpp"

namespace ftmao {
namespace {

// --- helpers ----------------------------------------------------------

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("ftmao_cache_test_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
}

SweepConfig small_grid() {
  SweepConfig config;
  config.sizes = {{7, 2}, {10, 3}};
  config.dims = {1, 3};
  config.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip};
  config.seeds = {1, 2, 3};
  config.rounds = 200;
  return config;
}

SweepConfig small_async_grid() {
  SweepConfig config;
  config.sizes = {{6, 1}, {11, 2}};
  config.attacks = {AttackKind::SplitBrain, AttackKind::PullToTarget};
  config.seeds = {1, 2};
  config.rounds = 200;
  config.async_engine = true;
  return config;
}

std::string sweep_csv(const SweepConfig& config) {
  return sweep_to_csv(run_sweep(config));
}

// --- key golden values ------------------------------------------------
//
// These hashes pin the canonical spec grammar AND kEngineSchemaRev. If
// either changes deliberately, bump kEngineSchemaRev and re-pin; if this
// test fails without such a bump, stale cache entries would be served
// across a numeric change.

TEST(CellKey, GoldenHashesArePinned) {
  // Default-rev pin (currently rev 2: deterministic transcendental
  // derivatives) plus an explicit future-rev pin so the grammar itself
  // stays covered independently of the default.
  static_assert(kEngineSchemaRev == 2);
  EXPECT_EQ(make_cell_key("golden-spec-a").hex(),
            "d0b2426f24d8ace9c66a898094951d99");
  EXPECT_EQ(make_cell_key("golden-spec-a", 3).hex(),
            "98d6c23e5acf9884c0db568c834d1e7e");
}

TEST(CellKey, HexIs32LowercaseChars) {
  const std::string hex = make_cell_key("anything").hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(CellKey, SchemaRevisionSeparatesKeys) {
  const CellKey v1 = make_cell_key("spec", 1);
  const CellKey v2 = make_cell_key("spec", 2);
  EXPECT_FALSE(v1 == v2);
  EXPECT_NE(v1.spec, v2.spec);  // the rev is part of the identity, not
                                // just the hash
  EXPECT_NE(v1.hex(), v2.hex());
}

TEST(CellKey, SweepSpecGrammarIsPinned) {
  SweepConfig config;
  config.sizes = {{7, 2}};
  config.attacks = {AttackKind::SplitBrain};
  config.seeds = {1, 2, 3};
  config.rounds = 4000;
  const CellSpec cell{7, 2, 1, AttackKind::SplitBrain};
  const std::string spec = sweep_cell_cache_spec(config, cell);
  EXPECT_EQ(spec,
            "sweep;family=std-mixed;n=7;f=2;dim=1;attack=split-brain;"
            "spread=8;rounds=4000;step=harmonic:1:0.75;seeds=1,2,3;"
            "constraint=none;engine=sync");
  EXPECT_EQ(make_cell_key(spec).hex(), "ba6fde6b609b0e291b3ec2e794e12ab5");

  SweepConfig async_config = config;
  async_config.sizes = {{11, 2}};
  async_config.async_engine = true;
  const CellSpec async_cell{11, 2, 1, AttackKind::SplitBrain};
  const std::string async_spec =
      sweep_cell_cache_spec(async_config, async_cell);
  EXPECT_EQ(async_spec,
            "sweep;family=std-mixed;n=11;f=2;dim=1;attack=split-brain;"
            "spread=8;rounds=4000;step=harmonic:1:0.75;seeds=1,2,3;"
            "constraint=none;engine=async;delay=uniform:0.5:1.5");
  EXPECT_EQ(make_cell_key(async_spec).hex(),
            "1b45fc458d3f63e01adc22e7ef2252b1");
}

TEST(CellKey, CanonDoubleRoundTripsShortest) {
  EXPECT_EQ(cache_canon_double(8.0), "8");
  EXPECT_EQ(cache_canon_double(0.75), "0.75");
  EXPECT_EQ(cache_canon_double(0.1), "0.1");
  // A value with no short decimal form keeps full round-trip precision.
  EXPECT_EQ(std::stod(cache_canon_double(1.0 / 3.0)), 1.0 / 3.0);
}

// --- payload codec ----------------------------------------------------

TEST(PayloadCodec, RoundTripsAllFieldTypes) {
  PayloadWriter writer;
  writer.put_u64(0);
  writer.put_u64(~0ull);
  writer.put_double(1.0 / 3.0);
  writer.put_double(-0.0);
  writer.put_bool(true);
  writer.put_bool(false);
  const std::string with_nul("hello\0world", 11);
  writer.put_string(with_nul);
  writer.put_string("");

  PayloadReader reader(writer.bytes());
  EXPECT_EQ(reader.get_u64(), 0u);
  EXPECT_EQ(reader.get_u64(), ~0ull);
  EXPECT_EQ(reader.get_double(), 1.0 / 3.0);
  const double neg_zero = reader.get_double();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit-exact, not value-equal
  EXPECT_TRUE(reader.get_bool());
  EXPECT_FALSE(reader.get_bool());
  EXPECT_EQ(reader.get_string(), with_nul);
  EXPECT_EQ(reader.get_string(), "");
  EXPECT_TRUE(reader.exhausted());
}

TEST(PayloadCodec, TruncationThrowsContractViolation) {
  PayloadWriter writer;
  writer.put_double(42.0);
  const std::string bytes = writer.bytes().substr(0, 4);
  PayloadReader reader(bytes);
  EXPECT_THROW(reader.get_double(), ContractViolation);

  const std::string nothing;
  PayloadReader empty(nothing);
  EXPECT_THROW(empty.get_u64(), ContractViolation);
}

TEST(PayloadCodec, ExhaustedDetectsTrailingGarbage) {
  PayloadWriter writer;
  writer.put_u64(7);
  writer.put_u64(8);
  PayloadReader reader(writer.bytes());
  reader.get_u64();
  EXPECT_FALSE(reader.exhausted());
  reader.get_u64();
  EXPECT_TRUE(reader.exhausted());
}

// --- in-memory tier ---------------------------------------------------

TEST(ResultCache, MemoryHitAndMissCounters) {
  ResultCache cache{CacheConfig{}};
  const CellKey key = make_cell_key("mem-spec");
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, "payload");
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.disk_errors, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(ResultCache, InsertIsIdempotent) {
  ResultCache cache{CacheConfig{}};
  const CellKey key = make_cell_key("idempotent");
  cache.insert(key, "v");
  cache.insert(key, "v");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, LruEvictionRespectsByteBudget) {
  CacheConfig config;
  config.max_memory_bytes = 4096;  // 256 bytes per shard
  ResultCache cache{std::move(config)};
  const std::string payload(100, 'x');
  for (int i = 0; i < 500; ++i) {
    cache.insert(make_cell_key("evict-spec-" + std::to_string(i)), payload);
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 500u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 500u);
  EXPECT_EQ(stats.entries + stats.evictions, stats.inserts);
  // Each entry exceeds half a shard budget, yet the budget holds: the
  // just-inserted entry is never evicted, but everything older goes.
  EXPECT_LE(stats.memory_bytes, 16u * 256u);
}

// --- disk tier --------------------------------------------------------

TEST(ResultCache, DiskRoundTripAcrossInstances) {
  const auto dir = fresh_dir("roundtrip");
  const CellKey key = make_cell_key("disk-spec");

  {
    ResultCache writer{CacheConfig{dir.string(), 256 << 20}};
    writer.insert(key, "disk-payload");
  }

  ResultCache reader{CacheConfig{dir.string(), 256 << 20}};
  const auto hit = reader.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "disk-payload");
  const CacheStats stats = reader.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.disk_errors, 0u);

  // Faulted in: a second lookup is served from memory.
  ASSERT_TRUE(reader.lookup(key).has_value());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
}

TEST(ResultCache, RecordFileIsNamedByKeyHex) {
  const auto dir = fresh_dir("naming");
  const CellKey key = make_cell_key("named-spec");
  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  cache.insert(key, "p");
  EXPECT_TRUE(std::filesystem::exists(dir / (key.hex() + ".ftc")));
}

TEST(ResultCache, AbsentRecordIsAPlainMiss) {
  const auto dir = fresh_dir("absent");
  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  EXPECT_FALSE(cache.lookup(make_cell_key("never-stored")).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.disk_errors, 0u);  // missing != corrupt
}

TEST(ResultCache, CrossRevisionRecordIsAMiss) {
  const auto dir = fresh_dir("crossrev");
  {
    ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
    cache.insert(make_cell_key("rev-spec", 1), "old-revision");
  }
  // A schema bump changes the spec ("rev=2;...") and therefore the key;
  // the old record is simply never addressed.
  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  EXPECT_FALSE(cache.lookup(make_cell_key("rev-spec", 2)).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 0u);
}

TEST(ResultCache, PreBumpDiskRecordIsAMissUnderCurrentDefault) {
  // The rev-1 → rev-2 bump (deterministic transcendental derivatives)
  // specifically: a disk tier populated before the bump serves nothing
  // to a post-bump binary, without a single disk error — stale results
  // age out silently rather than poisoning the new numerics.
  const auto dir = fresh_dir("prebump");
  const CellKey old_key = make_cell_key("prebump-spec", kEngineSchemaRev - 1);
  {
    ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
    cache.insert(old_key, "pre-bump-bits");
  }
  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  EXPECT_FALSE(cache.lookup(make_cell_key("prebump-spec")).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.disk_errors, 0u);
  // The old record itself is intact and still addressable by its own key.
  ASSERT_TRUE(cache.lookup(old_key).has_value());
}

TEST(ResultCache, TruncatedRecordIsAMissNotAnError) {
  const auto dir = fresh_dir("truncated");
  const CellKey key = make_cell_key("trunc-spec");
  {
    ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
    cache.insert(key, "truncate-me");
  }
  const auto path = dir / (key.hex() + ".ftc");
  write_file(path, read_file(path).substr(0, 10));

  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  EXPECT_FALSE(cache.lookup(key).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.disk_errors, 1u);
}

TEST(ResultCache, CorruptPayloadFailsChecksumAndMisses) {
  const auto dir = fresh_dir("corrupt");
  const CellKey key = make_cell_key("corrupt-spec");
  {
    ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
    cache.insert(key, "corrupt-me-corrupt-me");
  }
  const auto path = dir / (key.hex() + ".ftc");
  std::string bytes = read_file(path);
  bytes[bytes.size() - 12] ^= 0x5a;  // flip a payload byte
  write_file(path, bytes);

  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 1u);
}

TEST(ResultCache, WrongMagicIsAMiss) {
  const auto dir = fresh_dir("magic");
  const CellKey key = make_cell_key("magic-spec");
  {
    ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
    cache.insert(key, "payload");
  }
  const auto path = dir / (key.hex() + ".ftc");
  std::string bytes = read_file(path);
  bytes[0] = 'X';
  write_file(path, bytes);

  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 1u);
}

TEST(ResultCache, MismatchedKeyEchoIsAMiss) {
  // Simulate a hash collision / misplaced file: the record for key A
  // sits under key B's filename. The key echo inside the record must
  // reject it.
  const auto dir = fresh_dir("mismatch");
  const CellKey key_a = make_cell_key("mismatch-spec-a");
  const CellKey key_b = make_cell_key("mismatch-spec-b");
  {
    ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
    cache.insert(key_a, "payload-a");
  }
  std::filesystem::copy_file(dir / (key_a.hex() + ".ftc"),
                             dir / (key_b.hex() + ".ftc"));

  ResultCache cache{CacheConfig{dir.string(), 256 << 20}};
  EXPECT_FALSE(cache.lookup(key_b).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 1u);
}

TEST(ResultCache, StatsLineMentionsEveryCounter) {
  const std::string line = cache_stats_line(CacheStats{});
  for (const char* field : {"hits=", "misses=", "inserts=", "evictions=",
                            "mem_bytes=", "entries=", "disk_hits=",
                            "disk_errors="}) {
    EXPECT_NE(line.find(field), std::string::npos) << field;
  }
}

// --- cached sweep: byte-identical cold vs warm vs mixed ---------------

TEST(CachedSweep, ColdWarmMixedAreByteIdentical) {
  SweepConfig config = small_grid();
  const std::string reference = sweep_csv(config);  // no cache

  ResultCache cache{CacheConfig{}};
  config.cache = &cache;
  const std::string cold = sweep_csv(config);
  const CacheStats after_cold = cache.stats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_GT(after_cold.inserts, 0u);

  const std::string warm = sweep_csv(config);
  const CacheStats after_warm = cache.stats();
  EXPECT_EQ(after_warm.hits, after_cold.inserts);  // every cell served
  EXPECT_EQ(after_warm.inserts, after_cold.inserts);

  // Mixed: a fresh cache pre-warmed with only a subset of the grid.
  ResultCache mixed_cache{CacheConfig{}};
  SweepConfig mixed_config = config;
  mixed_config.cache = &mixed_cache;
  const std::vector<CellSpec> all = sweep_cell_specs(mixed_config);
  const std::vector<CellSpec> subset(all.begin(),
                                     all.begin() + all.size() / 2);
  run_sweep_cells(mixed_config, subset);
  const std::string mixed = sweep_csv(mixed_config);
  EXPECT_GT(mixed_cache.stats().hits, 0u);

  EXPECT_EQ(cold, reference);
  EXPECT_EQ(warm, reference);
  EXPECT_EQ(mixed, reference);
}

TEST(CachedSweep, WarmHitsAreIdenticalAcrossThreadAndBatchKnobs) {
  SweepConfig config = small_grid();
  ResultCache cache{CacheConfig{}};
  config.cache = &cache;
  const std::string cold = sweep_csv(config);

  SweepConfig threaded = config;
  threaded.num_threads = 4;
  threaded.batch_size = 2;
  EXPECT_EQ(sweep_csv(threaded), cold);

  SweepConfig scalar = config;
  scalar.scalar_engine = true;
  EXPECT_EQ(sweep_csv(scalar), cold);
}

TEST(CachedSweep, AsyncEngineColdWarmAreByteIdentical) {
  SweepConfig config = small_async_grid();
  const std::string reference = sweep_csv(config);

  ResultCache cache{CacheConfig{}};
  config.cache = &cache;
  EXPECT_EQ(sweep_csv(config), reference);
  EXPECT_EQ(sweep_csv(config), reference);
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(CachedSweep, PoisonedDiskCacheStillByteIdentical) {
  const auto dir = fresh_dir("poisoned_sweep");
  SweepConfig config = small_grid();
  config.dims = {1};  // 2 sizes x 2 attacks = 4 cells; 2 get poisoned

  ResultCache cold_cache{CacheConfig{dir.string(), 256 << 20}};
  config.cache = &cold_cache;
  const std::string reference = sweep_csv(config);

  // Poison the directory: truncate one record, corrupt another, add junk.
  std::vector<std::filesystem::path> records;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    records.push_back(entry.path());
  }
  ASSERT_EQ(records.size(), 4u);
  write_file(records[0], read_file(records[0]).substr(0, 10));
  std::string bytes = read_file(records[1]);
  bytes[bytes.size() / 2] ^= 0xff;
  write_file(records[1], bytes);
  write_file(dir / "not-a-record.ftc", "garbage");

  ResultCache warm_cache{CacheConfig{dir.string(), 256 << 20}};
  config.cache = &warm_cache;
  EXPECT_EQ(sweep_csv(config), reference);
  const CacheStats stats = warm_cache.stats();
  EXPECT_EQ(stats.disk_errors, 2u);  // the junk file's key is never looked up
  EXPECT_EQ(stats.hits, 2u);    // the intact records still serve
  EXPECT_EQ(stats.misses, 2u);  // both poisoned cells recomputed
}

// --- cached certify ---------------------------------------------------

TEST(CachedCertify, ColdAndWarmReportsMatchUncached) {
  CertifyOptions options;
  options.rounds = 150;
  options.async_rounds = 100;
  options.vector_rounds = 100;
  options.vector_dim = 2;
  const CertificationReport reference = certify_sbg(options);

  ResultCache cache{CacheConfig{}};
  options.cache = &cache;
  const CertificationReport cold = certify_sbg(options);
  const CacheStats after_cold = cache.stats();
  EXPECT_GT(after_cold.inserts, 0u);

  const CertificationReport warm = certify_sbg(options);
  EXPECT_GT(cache.stats().hits, after_cold.hits);

  for (const CertificationReport* report : {&cold, &warm}) {
    EXPECT_EQ(report->passed, reference.passed);
    ASSERT_EQ(report->checks.size(), reference.checks.size());
    for (std::size_t i = 0; i < reference.checks.size(); ++i) {
      EXPECT_EQ(report->checks[i].name, reference.checks[i].name);
      EXPECT_EQ(report->checks[i].passed, reference.checks[i].passed);
      EXPECT_EQ(report->checks[i].detail, reference.checks[i].detail) << i;
    }
  }
}

// --- cached attack search ---------------------------------------------

TEST(CachedAttackSearch, ColdAndWarmMatchUncached) {
  const Scenario base = make_standard_scenario(7, 2, 8.0, AttackKind::None,
                                               300, 1);
  const std::vector<AttackCandidate> candidates = standard_attack_grid();
  const AttackSearchResult reference =
      find_strongest_attack(base, candidates);

  ResultCache cache{CacheConfig{}};
  const AttackSearchResult cold =
      find_strongest_attack(base, candidates, 1, 0, false, &cache);
  const CacheStats after_cold = cache.stats();
  EXPECT_EQ(after_cold.inserts, candidates.size() + 1);  // + reference run

  const AttackSearchResult warm =
      find_strongest_attack(base, candidates, 1, 0, false, &cache);
  EXPECT_EQ(cache.stats().hits, candidates.size() + 1);

  for (const AttackSearchResult* result : {&cold, &warm}) {
    EXPECT_EQ(result->reference_state, reference.reference_state);
    EXPECT_EQ(result->optima.lo(), reference.optima.lo());
    EXPECT_EQ(result->optima.hi(), reference.optima.hi());
    ASSERT_EQ(result->outcomes.size(), reference.outcomes.size());
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      EXPECT_EQ(result->outcomes[i].name, reference.outcomes[i].name);
      EXPECT_EQ(result->outcomes[i].final_state,
                reference.outcomes[i].final_state);
      EXPECT_EQ(result->outcomes[i].bias, reference.outcomes[i].bias);
      EXPECT_EQ(result->outcomes[i].dist_to_y,
                reference.outcomes[i].dist_to_y);
      EXPECT_EQ(result->outcomes[i].disagreement,
                reference.outcomes[i].disagreement);
    }
  }
}

TEST(CachedAttackSearch, AsyncColdAndWarmMatchUncached) {
  const AsyncScenario base =
      make_standard_async_scenario(11, 2, 8.0, AttackKind::None, 200, 1);
  const std::vector<AttackCandidate> candidates = standard_attack_grid();
  const AttackSearchResult reference =
      find_strongest_attack_async(base, candidates);

  ResultCache cache{CacheConfig{}};
  const AttackSearchResult cold =
      find_strongest_attack_async(base, candidates, 1, 0, false, &cache);
  const AttackSearchResult warm =
      find_strongest_attack_async(base, candidates, 1, 0, false, &cache);
  EXPECT_GT(cache.stats().hits, 0u);

  for (const AttackSearchResult* result : {&cold, &warm}) {
    EXPECT_EQ(result->reference_state, reference.reference_state);
    ASSERT_EQ(result->outcomes.size(), reference.outcomes.size());
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      EXPECT_EQ(result->outcomes[i].name, reference.outcomes[i].name);
      EXPECT_EQ(result->outcomes[i].final_state,
                reference.outcomes[i].final_state);
      EXPECT_EQ(result->outcomes[i].bias, reference.outcomes[i].bias);
    }
  }
}

}  // namespace
}  // namespace ftmao
