// Tests for the synchronous round engine, the asynchronous event engine,
// and the delay models, using minimal instrumented node types.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/contracts.hpp"
#include "net/async.hpp"
#include "net/delay.hpp"
#include "net/sync.hpp"

namespace ftmao {
namespace {

// A node that records everything it sees and broadcasts its id + round.
class RecordingNode final : public SyncNode<int> {
 public:
  explicit RecordingNode(AgentId id) : id_(id) {}

  int broadcast(Round t) override {
    return static_cast<int>(id_.value * 1000 + t.value);
  }

  void step(Round, std::span<const Received<int>> inbox) override {
    inboxes_.emplace_back(inbox.begin(), inbox.end());
  }

  const std::vector<std::vector<Received<int>>>& inboxes() const {
    return inboxes_;
  }

 private:
  AgentId id_;
  std::vector<std::vector<Received<int>>> inboxes_;
};

// Byzantine node sending recipient-dependent values.
class PerRecipientByz final : public ByzantineNode<int> {
 public:
  std::optional<int> send_to(AgentId, AgentId recipient,
                             const RoundView<int>&) override {
    return static_cast<int>(recipient.value) * 7;
  }
};

class OmittingByz final : public ByzantineNode<int> {
 public:
  std::optional<int> send_to(AgentId, AgentId,
                             const RoundView<int>&) override {
    return std::nullopt;
  }
};

// Byzantine node that proves it can see honest broadcasts of the round.
class EchoingByz final : public ByzantineNode<int> {
 public:
  std::optional<int> send_to(AgentId, AgentId,
                             const RoundView<int>& view) override {
    int sum = 0;
    for (const auto& msg : view.honest_broadcasts) sum += msg.payload;
    return sum;
  }
};

TEST(SyncEngine, DeliversAllHonestBroadcasts) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}}, c{AgentId{2}};
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_honest(AgentId{2}, &c);
  engine.run_round(Round{1});

  ASSERT_EQ(a.inboxes().size(), 1u);
  const auto& inbox = a.inboxes()[0];
  ASSERT_EQ(inbox.size(), 2u);  // from b and c, not from itself
  std::set<std::uint32_t> senders;
  for (const auto& msg : inbox) senders.insert(msg.from.value);
  EXPECT_EQ(senders, (std::set<std::uint32_t>{1, 2}));
}

TEST(SyncEngine, OwnBroadcastNotDelivered) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}};
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.run_round(Round{1});
  for (const auto& msg : a.inboxes()[0]) EXPECT_NE(msg.from, AgentId{0});
}

TEST(SyncEngine, ByzantineSendsPerRecipientValues) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}};
  PerRecipientByz byz;
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_byzantine(AgentId{9}, &byz);
  engine.run_round(Round{1});

  auto find_from = [](const std::vector<Received<int>>& inbox, AgentId id) {
    for (const auto& msg : inbox)
      if (msg.from == id) return msg.payload;
    ADD_FAILURE() << "message not found";
    return -1;
  };
  EXPECT_EQ(find_from(a.inboxes()[0], AgentId{9}), 0 * 7);
  EXPECT_EQ(find_from(b.inboxes()[0], AgentId{9}), 1 * 7);
}

TEST(SyncEngine, OmissionDeliversNothing) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}};
  OmittingByz byz;
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_byzantine(AgentId{5}, &byz);
  engine.run_round(Round{1});
  EXPECT_EQ(a.inboxes()[0].size(), 1u);  // only from b
}

TEST(SyncEngine, ByzantineObservesCurrentRoundHonestBroadcasts) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}};
  EchoingByz byz;
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_byzantine(AgentId{2}, &byz);
  engine.run_round(Round{3});
  // honest broadcasts in round 3: 0*1000+3 and 1*1000+3 -> sum = 1006 + ... = 3 + 1003
  const int expected = (0 * 1000 + 3) + (1 * 1000 + 3);
  bool found = false;
  for (const auto& msg : a.inboxes()[0]) {
    if (msg.from == AgentId{2}) {
      EXPECT_EQ(msg.payload, expected);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SyncEngine, RunExecutesRequestedRounds) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}};
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.run(5);
  EXPECT_EQ(a.inboxes().size(), 5u);
  EXPECT_EQ(b.inboxes().size(), 5u);
}

TEST(SyncEngine, DuplicateIdRejected) {
  RecordingNode a{AgentId{0}}, b{AgentId{0}};
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  EXPECT_THROW(engine.add_honest(AgentId{0}, &b), ContractViolation);
  PerRecipientByz byz;
  EXPECT_THROW(engine.add_byzantine(AgentId{0}, &byz), ContractViolation);
}

TEST(SyncEngine, DeliveryFilterBlocksSelectedLinks) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}}, c{AgentId{2}};
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_honest(AgentId{2}, &c);
  // Block everything from agent 1.
  engine.set_delivery_filter(
      [](AgentId from, AgentId, Round) { return from != AgentId{1}; });
  engine.run_round(Round{1});
  for (const auto& msg : a.inboxes()[0]) EXPECT_NE(msg.from, AgentId{1});
  EXPECT_EQ(a.inboxes()[0].size(), 1u);
  // Agent 1 still receives (only its sends are blocked).
  EXPECT_EQ(b.inboxes()[0].size(), 2u);
}

TEST(SyncEngine, MessageCounterCountsDeliveredOnly) {
  RecordingNode a{AgentId{0}}, b{AgentId{1}}, c{AgentId{2}};
  SyncEngine<int> engine;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_honest(AgentId{2}, &c);
  engine.run_round(Round{1});
  EXPECT_EQ(engine.messages_delivered(), 6u);  // 3 recipients x 2 senders
  engine.set_delivery_filter(
      [](AgentId from, AgentId, Round) { return from != AgentId{1}; });
  engine.run_round(Round{2});
  EXPECT_EQ(engine.messages_delivered(), 6u + 4u);  // agent 1's sends dropped
}

// ------------------------------------------------------------ delay models

TEST(Delay, FixedAlwaysSame) {
  FixedDelay d(2.5);
  EXPECT_DOUBLE_EQ(d.delay(AgentId{0}, AgentId{1}, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(d.delay(AgentId{3}, AgentId{2}, 17.0), 2.5);
  EXPECT_THROW(FixedDelay(0.0), ContractViolation);
}

TEST(Delay, UniformWithinRangeAndDeterministic) {
  UniformDelay d1(1.0, 2.0, Rng(5));
  UniformDelay d2(1.0, 2.0, Rng(5));
  for (int i = 0; i < 100; ++i) {
    const double v = d1.delay(AgentId{0}, AgentId{1}, 0.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 2.0);
    EXPECT_DOUBLE_EQ(v, d2.delay(AgentId{0}, AgentId{1}, 0.0));
  }
}

TEST(Delay, TargetedSlowdownSlowsSelectedSenders) {
  TargetedSlowdown d({AgentId{1}}, 0.5, 9.0);
  EXPECT_DOUBLE_EQ(d.delay(AgentId{1}, AgentId{0}, 0.0), 9.0);
  EXPECT_DOUBLE_EQ(d.delay(AgentId{0}, AgentId{1}, 0.0), 0.5);
}

// ------------------------------------------------------------ async engine

// Minimal async node: waits for `quorum` round-tagged messages (self
// included), then sums them and advances.
class QuorumSummer final : public AsyncNode<int> {
 public:
  QuorumSummer(int seed, std::size_t quorum) : value_(seed), quorum_(quorum) {}

  int initial_broadcast() override { return value_; }

  std::optional<int> on_message(const TaggedMessage<int>& msg) override {
    if (msg.round < round_) return std::nullopt;
    auto& bucket = buffer_[msg.round.value];
    bucket.emplace(msg.from, msg.payload);
    const auto it = buffer_.find(round_.value);
    if (it == buffer_.end() || it->second.size() < quorum_) return std::nullopt;
    int sum = 0;
    for (const auto& [from, v] : it->second) sum += v;
    value_ = sum;
    history_.push_back(sum);
    buffer_.erase(it);
    round_ = round_.next();
    return value_;
  }

  Round current_round() const override { return round_; }
  const std::vector<int>& history() const { return history_; }

 private:
  int value_;
  std::size_t quorum_;
  Round round_{1};
  std::map<std::uint32_t, std::map<AgentId, int>> buffer_;
  std::vector<int> history_;
};

TEST(AsyncEngine, AllNodesCompleteRoundsWithUniformDelays) {
  UniformDelay delays(0.5, 1.5, Rng(3));
  AsyncEngine<int> engine(delays);
  QuorumSummer a(1, 3), b(2, 3), c(4, 3);
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_honest(AgentId{2}, &c);
  const double time = engine.run_until_round(Round{4});
  EXPECT_GT(time, 0.0);
  EXPECT_GT(a.current_round().value, 4u);
  EXPECT_GT(b.current_round().value, 4u);
  EXPECT_GT(c.current_round().value, 4u);
  // Full quorum of 3 means everyone sums all values: round 1 -> 7 for all.
  ASSERT_GE(a.history().size(), 1u);
  EXPECT_EQ(a.history()[0], 7);
  EXPECT_EQ(b.history()[0], 7);
  EXPECT_EQ(c.history()[0], 7);
}

TEST(AsyncEngine, DeterministicAcrossRuns) {
  auto run = [] {
    UniformDelay delays(0.1, 2.0, Rng(11));
    AsyncEngine<int> engine(delays);
    QuorumSummer a(1, 2), b(2, 2), c(5, 2);
    engine.add_honest(AgentId{0}, &a);
    engine.add_honest(AgentId{1}, &b);
    engine.add_honest(AgentId{2}, &c);
    engine.run_until_round(Round{6});
    return std::tuple{a.history(), b.history(), c.history()};
  };
  EXPECT_EQ(run(), run());
}

// Async Byzantine that sends different values to different recipients.
class AsyncSplitByz final : public AsyncByzantineNode<int> {
 public:
  std::optional<int> send_to(AgentId, AgentId recipient,
                             const RoundView<int>&) override {
    return recipient.value == 0 ? 100 : -100;
  }
};

TEST(AsyncEngine, ByzantineMessagesReachHonestNodes) {
  FixedDelay delays(1.0);
  AsyncEngine<int> engine(delays);
  // Quorum 3 out of {2 honest + 1 byz}: the byz message is required.
  QuorumSummer a(1, 3), b(2, 3);
  AsyncSplitByz byz;
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_byzantine(AgentId{2}, &byz);
  engine.run_until_round(Round{1});
  ASSERT_GE(a.history().size(), 1u);
  ASSERT_GE(b.history().size(), 1u);
  EXPECT_EQ(a.history()[0], 1 + 2 + 100);
  EXPECT_EQ(b.history()[0], 1 + 2 - 100);
}

TEST(AsyncEngine, SlowSenderDoesNotBlockQuorumProgress) {
  TargetedSlowdown delays({AgentId{2}}, 0.5, 50.0);
  AsyncEngine<int> engine(delays);
  // Quorum 2 of 3: the two fast nodes can advance without the slow one.
  QuorumSummer a(1, 2), b(2, 2), c(4, 2);
  engine.add_honest(AgentId{0}, &a);
  engine.add_honest(AgentId{1}, &b);
  engine.add_honest(AgentId{2}, &c);
  const double time = engine.run_until_round(Round{3});
  EXPECT_GT(a.current_round().value, 3u);
  EXPECT_GT(b.current_round().value, 3u);
  EXPECT_LT(time, 200.0);
}

}  // namespace
}  // namespace ftmao
