// Unit tests for core algorithm components: step schedules, the SBG agent
// state machine (Steps 1-3), the crash-model averaging agent, and the
// asynchronous agent's quorum logic.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/contracts.hpp"
#include "core/async_sbg.hpp"
#include "core/crash_sbg.hpp"
#include "core/sbg.hpp"
#include "core/step_size.hpp"
#include "func/functions.hpp"

namespace ftmao {
namespace {

ScalarFunctionPtr huber_at(double center) {
  return std::make_shared<Huber>(center, 2.0, 1.0);
}

// ------------------------------------------------------------- step sizes

TEST(StepSize, HarmonicValues) {
  const HarmonicStep s(1.0);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(2), 0.5);
  EXPECT_DOUBLE_EQ(s.at(10), 0.1);
}

TEST(StepSize, HarmonicScale) {
  const HarmonicStep s(2.0);
  EXPECT_DOUBLE_EQ(s.at(4), 0.5);
}

TEST(StepSize, PowerValues) {
  const PowerStep s(1.0, 0.75);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(15), std::pow(16.0, -0.75));
}

TEST(StepSize, HarmonicPassesConditions) {
  EXPECT_TRUE(check_schedule(HarmonicStep(1.0)).all_ok());
}

TEST(StepSize, ValidPowerPassesConditions) {
  EXPECT_TRUE(check_schedule(PowerStep(1.0, 0.75)).all_ok());
}

TEST(StepSize, ConstantFailsSquareSummability) {
  const ScheduleCheck c = check_schedule(ConstantStep(0.1));
  EXPECT_TRUE(c.non_increasing);
  EXPECT_FALSE(c.sum_squares_converges);
}

TEST(StepSize, FastDecayFailsDivergence) {
  const ScheduleCheck c = check_schedule(PowerStep(1.0, 1.5));
  EXPECT_TRUE(c.non_increasing);
  EXPECT_FALSE(c.sum_diverges);
}

TEST(StepSize, SlowDecayFailsSquareSummability) {
  const ScheduleCheck c = check_schedule(PowerStep(1.0, 0.4));
  EXPECT_FALSE(c.sum_squares_converges);
}

TEST(StepSize, InvalidParamsThrow) {
  EXPECT_THROW(HarmonicStep(0.0), ContractViolation);
  EXPECT_THROW(PowerStep(1.0, 0.0), ContractViolation);
  EXPECT_THROW(ConstantStep(-1.0), ContractViolation);
}

// -------------------------------------------------------------- SbgConfig

TEST(SbgConfig, RequiresNGreaterThan3F) {
  SbgConfig c;
  c.n = 6;
  c.f = 2;
  EXPECT_THROW(c.validate(), ContractViolation);  // 6 = 3f, not > 3f
  c.n = 7;
  EXPECT_NO_THROW(c.validate());
}

// --------------------------------------------------------------- SbgAgent

SbgConfig small_config() {
  SbgConfig c;
  c.n = 4;
  c.f = 1;
  return c;
}

std::vector<Received<SbgPayload>> inbox_of(
    std::initializer_list<std::pair<std::uint32_t, SbgPayload>> items) {
  std::vector<Received<SbgPayload>> out;
  for (const auto& [id, payload] : items) out.push_back({AgentId{id}, payload});
  return out;
}

TEST(SbgAgent, BroadcastsStateAndGradient) {
  const HarmonicStep schedule;
  SbgAgent agent(AgentId{0}, huber_at(1.0), 3.0, schedule, small_config());
  const SbgPayload p = agent.broadcast(Round{1});
  EXPECT_DOUBLE_EQ(p.state, 3.0);
  EXPECT_DOUBLE_EQ(p.gradient, huber_at(1.0)->derivative(3.0));
}

TEST(SbgAgent, StepImplementsTrimmedUpdateExactly) {
  const HarmonicStep schedule;  // lambda[0] = 1
  SbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, small_config());
  // Inbox from 3 other agents. States {0 (own), 1, 2, 100}: after f=1 trim,
  // y_s=1, y_l=2 -> x~ = 1.5. Gradients: own h'(0)=0, others {1, -1, 50}:
  // trim -> survivors {0, 1} -> g~ = 0.5. Update: 1.5 - 1*0.5 = 1.0.
  agent.step(Round{1}, inbox_of({{1, {1.0, 1.0}},
                                 {2, {2.0, -1.0}},
                                 {3, {100.0, 50.0}}}));
  EXPECT_DOUBLE_EQ(agent.last_step().trimmed_state, 1.5);
  EXPECT_DOUBLE_EQ(agent.last_step().trimmed_gradient, 0.5);
  EXPECT_DOUBLE_EQ(agent.state(), 1.0);
}

TEST(SbgAgent, UsesLambdaOfPreviousIndex) {
  const HarmonicStep schedule;  // lambda[2] = 0.5
  SbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, small_config());
  // All agents agree: states 0, gradients 1 -> x~=0, g~=1.
  const auto inbox = inbox_of({{1, {0.0, 1.0}}, {2, {0.0, 1.0}}, {3, {0.0, 1.0}}});
  agent.step(Round{3}, inbox);  // uses lambda[2] = 1/2
  EXPECT_DOUBLE_EQ(agent.state(), -0.5);
}

TEST(SbgAgent, MissingTuplesGetDefaultPayload) {
  const HarmonicStep schedule;
  SbgConfig config = small_config();
  config.default_payload = SbgPayload{0.0, 0.0};
  SbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, config);
  // Only one message arrives; two defaults (0,0) are substituted.
  // States {0, 4, 0, 0}: trim f=1 -> survivors {0, 0} -> wait, sorted
  // {0,0,0,4}, drop one smallest and one largest -> {0,0} -> x~ = 0.
  agent.step(Round{1}, inbox_of({{1, {4.0, 2.0}}}));
  EXPECT_EQ(agent.last_step().missing_tuples, 2u);
  EXPECT_DOUBLE_EQ(agent.last_step().trimmed_state, 0.0);
}

TEST(SbgAgent, OversizedInboxThrows) {
  const HarmonicStep schedule;
  SbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, small_config());
  const auto inbox = inbox_of({{1, {0.0, 0.0}},
                               {2, {0.0, 0.0}},
                               {3, {0.0, 0.0}},
                               {4, {0.0, 0.0}}});
  EXPECT_THROW(agent.step(Round{1}, inbox), ContractViolation);
}

TEST(SbgAgent, MessageFromSelfThrows) {
  const HarmonicStep schedule;
  SbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, small_config());
  const auto inbox = inbox_of({{0, {0.0, 0.0}}});
  EXPECT_THROW(agent.step(Round{1}, inbox), ContractViolation);
}

TEST(SbgAgent, ConstrainedUpdateProjectsAndRecordsError) {
  const HarmonicStep schedule;
  SbgConfig config = small_config();
  config.constraint = Interval(-1.0, 1.0);
  SbgAgent agent(AgentId{0}, huber_at(0.0), 0.5, schedule, config);
  // Everyone reports state 5 (gradient 0): states {0.5, 5, 5, 5} -> trim
  // -> {5,5} -> x~ = 5; g~ = 0; unprojected 5 -> projected 1; error -4.
  agent.step(Round{1}, inbox_of({{1, {5.0, 0.0}}, {2, {5.0, 0.0}}, {3, {5.0, 0.0}}}));
  EXPECT_DOUBLE_EQ(agent.state(), 1.0);
  EXPECT_DOUBLE_EQ(agent.last_step().projection_error, -4.0);
}

TEST(SbgAgent, InitialStateProjectedIntoConstraint) {
  const HarmonicStep schedule;
  SbgConfig config = small_config();
  config.constraint = Interval(0.0, 1.0);
  SbgAgent agent(AgentId{0}, huber_at(0.0), 7.0, schedule, config);
  EXPECT_DOUBLE_EQ(agent.state(), 1.0);
}

// ---------------------------------------------------------- CrashSbgAgent

TEST(CrashSbgAgent, AveragesOwnPlusReceived) {
  const HarmonicStep schedule;  // lambda[0] = 1
  CrashSbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule);
  // Own (0, 0); received (3, 1) and (6, 2): mean state 3, mean gradient 1.
  agent.step(Round{1}, inbox_of({{1, {3.0, 1.0}}, {2, {6.0, 2.0}}}));
  EXPECT_DOUBLE_EQ(agent.state(), 3.0 - 1.0 * 1.0);
}

TEST(CrashSbgAgent, EmptyInboxReducesToLocalGradientStep) {
  const HarmonicStep schedule;
  CrashSbgAgent agent(AgentId{0}, huber_at(0.0), 1.0, schedule);
  agent.step(Round{1}, {});
  // h'(1) = 1 (huber delta 2): 1 - 1*1 = 0.
  EXPECT_DOUBLE_EQ(agent.state(), 0.0);
}

// ---------------------------------------------------------- AsyncSbgAgent

AsyncSbgConfig async_config() {
  AsyncSbgConfig c;
  c.n = 6;
  c.f = 1;
  return c;
}

TaggedMessage<SbgPayload> tagged(std::uint32_t from, std::uint32_t round,
                                 double state, double gradient) {
  return {AgentId{from}, Round{round}, SbgPayload{state, gradient}};
}

TEST(AsyncSbgConfig, RequiresNGreaterThan5F) {
  AsyncSbgConfig c;
  c.n = 5;
  c.f = 1;
  EXPECT_THROW(c.validate(), ContractViolation);
  c.n = 6;
  EXPECT_NO_THROW(c.validate());
}

TEST(AsyncSbgAgent, AdvancesExactlyAtQuorum) {
  const HarmonicStep schedule;
  AsyncSbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, async_config());
  // Quorum is n - f = 5 distinct senders.
  EXPECT_FALSE(agent.on_message(tagged(0, 1, 0.0, 0.0)).has_value());
  EXPECT_FALSE(agent.on_message(tagged(1, 1, 1.0, 0.0)).has_value());
  EXPECT_FALSE(agent.on_message(tagged(2, 1, 2.0, 0.0)).has_value());
  EXPECT_FALSE(agent.on_message(tagged(3, 1, 3.0, 0.0)).has_value());
  const auto next = agent.on_message(tagged(4, 1, 4.0, 0.0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(agent.current_round(), Round{2});
  // States {0,1,2,3,4}, f=1 trim -> {1,2,3} -> 2; gradients all 0.
  EXPECT_DOUBLE_EQ(agent.state(), 2.0);
}

TEST(AsyncSbgAgent, DuplicateSenderDoesNotCount) {
  const HarmonicStep schedule;
  AsyncSbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, async_config());
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(agent.on_message(tagged(1, 1, static_cast<double>(i), 0.0))
                     .has_value());
  EXPECT_EQ(agent.current_round(), Round{1});
}

TEST(AsyncSbgAgent, FirstPayloadPerSenderWins) {
  const HarmonicStep schedule;
  AsyncSbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, async_config());
  agent.on_message(tagged(1, 1, 100.0, 0.0));
  agent.on_message(tagged(1, 1, -100.0, 0.0));  // ignored
  agent.on_message(tagged(0, 1, 0.0, 0.0));
  agent.on_message(tagged(2, 1, 0.0, 0.0));
  agent.on_message(tagged(3, 1, 0.0, 0.0));
  const auto next = agent.on_message(tagged(4, 1, 0.0, 0.0));
  ASSERT_TRUE(next.has_value());
  // States {100, 0, 0, 0, 0}: trim f=1 -> {0,0,0} -> 0 (the +100 dropped;
  // had -100 replaced it the answer would differ).
  EXPECT_DOUBLE_EQ(agent.state(), 0.0);
}

TEST(AsyncSbgAgent, BuffersFutureRounds) {
  const HarmonicStep schedule;
  AsyncSbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, async_config());
  // Round-2 messages arrive before round 1 completes.
  for (std::uint32_t s = 0; s < 5; ++s)
    agent.on_message(tagged(s, 2, 1.0, 0.0));
  EXPECT_EQ(agent.current_round(), Round{1});
  // Now complete round 1; round 2 completes at the next delivery.
  for (std::uint32_t s = 0; s < 4; ++s)
    agent.on_message(tagged(s, 1, 0.0, 0.0));
  const auto next1 = agent.on_message(tagged(4, 1, 0.0, 0.0));
  ASSERT_TRUE(next1.has_value());
  EXPECT_EQ(agent.current_round(), Round{2});
  // Any round-2+ delivery triggers the already-buffered quorum.
  const auto next2 = agent.on_message(tagged(5, 2, 1.0, 0.0));
  ASSERT_TRUE(next2.has_value());
  EXPECT_EQ(agent.current_round(), Round{3});
}

TEST(AsyncSbgAgent, StaleRoundsIgnored) {
  const HarmonicStep schedule;
  AsyncSbgAgent agent(AgentId{0}, huber_at(0.0), 0.0, schedule, async_config());
  for (std::uint32_t s = 0; s < 5; ++s) agent.on_message(tagged(s, 1, 0.0, 0.0));
  EXPECT_EQ(agent.current_round(), Round{2});
  EXPECT_FALSE(agent.on_message(tagged(5, 1, 9.0, 9.0)).has_value());
  EXPECT_EQ(agent.current_round(), Round{2});
}

TEST(AsyncSbgAgent, HistoryRecordsPerRoundStates) {
  const HarmonicStep schedule;
  AsyncSbgAgent agent(AgentId{0}, huber_at(0.0), 7.0, schedule, async_config());
  EXPECT_EQ(agent.history().size(), 1u);
  EXPECT_DOUBLE_EQ(agent.history()[0], 7.0);
  for (std::uint32_t s = 0; s < 5; ++s) agent.on_message(tagged(s, 1, 7.0, 0.0));
  ASSERT_EQ(agent.history().size(), 2u);
  EXPECT_DOUBLE_EQ(agent.history()[1], agent.state());
}

}  // namespace
}  // namespace ftmao
