// Accuracy + determinism harness for the deterministic transcendental
// kernels (src/simd/det_math*). Three layers of guarantee:
//
//  1. Accuracy: max ULP distance to a long-double libm reference over
//     dense grids (including the tanh small/large crossover, where
//     cancellation is worst) stays under pinned bounds.
//  2. Determinism: selected outputs are pinned as exact bit patterns.
//     These pins must hold on EVERY platform (the arm64 CI lane runs
//     them too) — they are the cross-platform reproducibility contract.
//  3. Backend identity: every compiled-and-supported SIMD backend's
//     gradient_{tanh,smooth_abs,softplus_diff} kernel produces the same
//     bits as the scalar detmath helpers, lane for lane, for
//     heterogeneous parameters and every count/tail combination.
//
// Special values (±0, ±inf, NaN, denormals, saturation tails) are pinned
// explicitly; the documented deviations from libm (det_exp saturating at
// [-708, 709] instead of producing denormals) are asserted, not skipped.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "simd/det_math.hpp"
#include "simd/simd.hpp"

namespace ftmao {
namespace {

using detmath::det_exp;
using detmath::det_log1p01;
using detmath::det_sigmoid;
using detmath::det_tanh;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Maps a finite double onto the integers so that adjacent representable
// values differ by 1 (two's-complement trick over the sign-magnitude
// encoding); the ULP distance is then a plain integer difference.
std::int64_t ordered(double x) {
  const std::uint64_t b = bits(x);
  const std::int64_t mag = static_cast<std::int64_t>(b & 0x7fffffffffffffffull);
  return (b >> 63) ? -mag : mag;
}

std::int64_t ulp_distance(double a, double b) {
  return std::llabs(ordered(a) - ordered(b));
}

// Worst ULP distance of f vs reference over a dense inclusive grid.
std::int64_t max_ulp_on_grid(double lo, double hi, int n,
                             double (*f)(double),
                             long double (*reference)(long double)) {
  std::int64_t worst = 0;
  for (int i = 0; i <= n; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n);
    const double ref = static_cast<double>(reference(static_cast<long double>(x)));
    worst = std::max(worst, ulp_distance(f(x), ref));
  }
  return worst;
}

long double ref_sigmoid(long double z) { return 1.0L / (1.0L + expl(-z)); }

// ---------------------------------------------------------------- accuracy

TEST(DetMath, ExpUlpBoundOverFullRange) {
  // Measured worst ≈ 1.2 ulp; pinned with headroom. The grid spans the
  // whole non-saturating domain.
  EXPECT_LE(max_ulp_on_grid(-708.0, 709.0, 200000, det_exp, expl), 2);
}

TEST(DetMath, TanhUlpBound) {
  // Measured worst ≈ 2.3 ulp, just above the |z| = 0.25 series/exp
  // crossover where (e - 1) cancels ~1.4 bits; both the global grid and
  // a dense window around the crossover are checked.
  EXPECT_LE(max_ulp_on_grid(-25.0, 25.0, 200000, det_tanh, tanhl), 4);
  EXPECT_LE(max_ulp_on_grid(0.24, 0.26, 50000, det_tanh, tanhl), 4);
  EXPECT_LE(max_ulp_on_grid(-0.26, -0.24, 50000, det_tanh, tanhl), 4);
}

TEST(DetMath, SigmoidUlpBound) {
  EXPECT_LE(max_ulp_on_grid(-50.0, 50.0, 200000, det_sigmoid, ref_sigmoid),
            4);
}

TEST(DetMath, Log1p01UlpBound) {
  EXPECT_LE(max_ulp_on_grid(0.0, 1.0, 200000, det_log1p01, log1pl), 4);
}

// ---------------------------------------------------------- special values

TEST(DetMath, ExpSpecialValuesAndSaturationTails) {
  EXPECT_EQ(bits(det_exp(0.0)), bits(1.0));
  EXPECT_EQ(bits(det_exp(-0.0)), bits(1.0));
  EXPECT_EQ(bits(det_exp(kInf)), bits(kInf));
  EXPECT_EQ(bits(det_exp(-kInf)), bits(0.0));  // +0, not -0
  EXPECT_TRUE(std::isnan(det_exp(kNaN)));
  // exp of a denormal rounds to exactly 1.
  EXPECT_EQ(bits(det_exp(std::numeric_limits<double>::denorm_min())),
            bits(1.0));
  // Saturation boundaries: 709 is still on the polynomial path (finite),
  // anything above goes straight to +inf; -708 is finite (normal),
  // anything below flushes to +0 (no denormal outputs, by design).
  EXPECT_TRUE(std::isfinite(det_exp(709.0)));
  EXPECT_GT(det_exp(709.0), 8.2e307);
  EXPECT_EQ(bits(det_exp(709.5)), bits(kInf));
  EXPECT_GT(det_exp(-708.0), 0.0);
  EXPECT_TRUE(std::isnormal(det_exp(-708.0)));
  EXPECT_EQ(bits(det_exp(-708.5)), bits(0.0));
}

TEST(DetMath, TanhSpecialValuesAndExactSaturation) {
  // Signed zero preserved bit-for-bit.
  EXPECT_EQ(bits(det_tanh(0.0)), bits(0.0));
  EXPECT_EQ(bits(det_tanh(-0.0)), bits(-0.0));
  EXPECT_EQ(bits(det_tanh(kInf)), bits(1.0));
  EXPECT_EQ(bits(det_tanh(-kInf)), bits(-1.0));
  EXPECT_TRUE(std::isnan(det_tanh(kNaN)));
  // Exact ±1 saturation from |z| = 20 on.
  EXPECT_EQ(bits(det_tanh(20.0)), bits(1.0));
  EXPECT_EQ(bits(det_tanh(-20.0)), bits(-1.0));
  EXPECT_EQ(bits(det_tanh(345.0)), bits(1.0));
  // tanh(z) = z exactly for tiny z: denormals round-trip unchanged.
  const double d = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(bits(det_tanh(d)), bits(d));
  EXPECT_EQ(bits(det_tanh(-d)), bits(-d));
}

TEST(DetMath, SigmoidSpecialValues) {
  EXPECT_EQ(bits(det_sigmoid(0.0)), bits(0.5));
  EXPECT_EQ(bits(det_sigmoid(-0.0)), bits(0.5));
  EXPECT_EQ(bits(det_sigmoid(kInf)), bits(1.0));
  EXPECT_EQ(bits(det_sigmoid(-kInf)), bits(0.0));
  EXPECT_TRUE(std::isnan(det_sigmoid(kNaN)));
}

// --------------------------------------------------- cross-platform pins

TEST(DetMath, OutputBitsArePinnedAcrossPlatforms) {
  // These exact bit patterns were produced by the straight-line IEEE
  // sequence in det_math_impl.hpp and must reproduce on every platform
  // and backend (x86 scalar/SSE2/AVX2/AVX-512 and arm64 all run this).
  // A failure here means a non-IEEE-pinned operation (fused contraction,
  // a libm call, an approximate reciprocal) crept into the kernels.
  EXPECT_EQ(bits(det_exp(1.0)), 0x4005bf0a8b14576aull);
  EXPECT_EQ(bits(det_exp(-1.0)), 0x3fd78b56362cef38ull);
  EXPECT_EQ(bits(det_exp(10.5)), 0x40e1bb7015e84d3bull);
  EXPECT_EQ(bits(det_exp(-345.25)), 0x20ce0e19f745027eull);
  EXPECT_EQ(bits(det_tanh(0.125)), 0x3fbfd5992bc4b835ull);
  EXPECT_EQ(bits(det_tanh(1.5)), 0x3fecf6f9786df577ull);
  EXPECT_EQ(bits(det_tanh(-3.75)), 0xbfeff6f17a754772ull);
  EXPECT_EQ(bits(det_tanh(0.25)), 0x3fcf597ea69a1c86ull);  // crossover lane
  EXPECT_EQ(bits(det_sigmoid(2.5)), 0x3fed9291ddb596f8ull);
  EXPECT_EQ(bits(det_sigmoid(-0.75)), 0x3fd4885610b9b827ull);
}

// ----------------------------------------------------- backend identity

// Runs `body` once per compiled-and-supported backend, forced active.
void for_each_backend(const std::function<void(const SimdKernels&)>& body) {
  const SimdIsa prev = simd_active();
  for (const SimdIsa isa : simd_compiled()) {
    if (!simd_supported(isa)) continue;
    ASSERT_TRUE(simd_select(isa));
    body(simd_kernels());
  }
  simd_select(prev);
}

std::vector<double> probe_values(std::size_t count, Rng& rng) {
  const double pool[] = {0.0,  -0.0, kInf, -kInf,
                         std::numeric_limits<double>::denorm_min(),
                         -std::numeric_limits<double>::denorm_min(),
                         25.0, -25.0, 0.25, -0.25, 1e-8};
  std::vector<double> x(count);
  for (std::size_t i = 0; i < count; ++i) {
    x[i] = (i % 3 == 0) ? pool[i % (sizeof(pool) / sizeof(pool[0]))]
                        : rng.uniform(-30.0, 30.0);
  }
  return x;
}

TEST(DetMathBackends, GradientTanhBitIdenticalEverywhere) {
  Rng rng(211);
  for (const std::size_t count : {1u, 2u, 3u, 4u, 7u, 16u, 33u}) {
    const std::vector<double> x = probe_values(count, rng);
    std::vector<double> c(count), w(count), scale(count), expected(count);
    for (std::size_t i = 0; i < count; ++i) {
      c[i] = rng.uniform(-5.0, 5.0);
      w[i] = rng.uniform(0.25, 4.0);
      scale[i] = rng.uniform(0.25, 3.0);
      expected[i] = detmath::grad_tanh(x[i], c[i], w[i], scale[i]);
    }
    for_each_backend([&](const SimdKernels& k) {
      std::vector<double> g(count, kNaN);
      k.gradient_tanh(x.data(), c.data(), w.data(), scale.data(), g.data(),
                      count);
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(bits(expected[i]), bits(g[i]))
            << k.name << " count=" << count << " i=" << i << " x=" << x[i];
    });
  }
}

TEST(DetMathBackends, GradientSmoothAbsBitIdenticalEverywhere) {
  Rng rng(223);
  for (const std::size_t count : {1u, 2u, 3u, 4u, 7u, 16u, 33u}) {
    const std::vector<double> x = probe_values(count, rng);
    std::vector<double> c(count), eps(count), scale(count), expected(count);
    for (std::size_t i = 0; i < count; ++i) {
      c[i] = rng.uniform(-5.0, 5.0);
      eps[i] = rng.uniform(0.05, 2.0);
      scale[i] = rng.uniform(0.25, 3.0);
      expected[i] = detmath::grad_smooth_abs(x[i], c[i], eps[i], scale[i]);
    }
    for_each_backend([&](const SimdKernels& k) {
      std::vector<double> g(count, kNaN);
      k.gradient_smooth_abs(x.data(), c.data(), eps.data(), scale.data(),
                            g.data(), count);
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(bits(expected[i]), bits(g[i]))
            << k.name << " count=" << count << " i=" << i << " x=" << x[i];
    });
  }
}

TEST(DetMathBackends, GradientSoftplusDiffBitIdenticalEverywhere) {
  Rng rng(227);
  for (const std::size_t count : {1u, 2u, 3u, 4u, 7u, 16u, 33u}) {
    const std::vector<double> x = probe_values(count, rng);
    std::vector<double> a(count), b(count), w(count), scale(count),
        expected(count);
    for (std::size_t i = 0; i < count; ++i) {
      a[i] = rng.uniform(-5.0, 0.0);
      b[i] = a[i] + rng.uniform(0.0, 5.0);
      w[i] = rng.uniform(0.25, 4.0);
      scale[i] = rng.uniform(0.25, 3.0);
      expected[i] =
          detmath::grad_softplus_diff(x[i], a[i], b[i], w[i], scale[i]);
    }
    for_each_backend([&](const SimdKernels& k) {
      std::vector<double> g(count, kNaN);
      k.gradient_softplus_diff(x.data(), a.data(), b.data(), w.data(),
                               scale.data(), g.data(), count);
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(bits(expected[i]), bits(g[i]))
            << k.name << " count=" << count << " i=" << i << " x=" << x[i];
    });
  }
}

}  // namespace
}  // namespace ftmao
