// Unit tests for the dense two-phase simplex and the admissibility witness
// queries built on top of it.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "lp/simplex.hpp"
#include "lp/witness.hpp"

namespace ftmao::lp {
namespace {

// ---------------------------------------------------------------- simplex

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), value 36.
  Problem p;
  p.num_vars = 2;
  p.objective = {3.0, 5.0};
  p.sense = Sense::Maximize;
  p.add({1.0, 0.0}, Relation::LessEq, 4.0);
  p.add({0.0, 2.0}, Relation::LessEq, 12.0);
  p.add({3.0, 2.0}, Relation::LessEq, 18.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective_value, 36.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
}

TEST(Simplex, SolvesMinimizationWithGreaterEq) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> (4, 0), value 8.
  Problem p;
  p.num_vars = 2;
  p.objective = {2.0, 3.0};
  p.add({1.0, 1.0}, Relation::GreaterEq, 4.0);
  p.add({1.0, 0.0}, Relation::GreaterEq, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective_value, 8.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + y s.t. x + 2y = 3, x - y = 0 -> x = y = 1, value 2.
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.add({1.0, 2.0}, Relation::Eq, 3.0);
  p.add({1.0, -1.0}, Relation::Eq, 0.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p;
  p.num_vars = 1;
  p.add({1.0}, Relation::LessEq, 1.0);
  p.add({1.0}, Relation::GreaterEq, 2.0);
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, DetectsInfeasibilityWithEqualities) {
  // x + y = 1, x + y = 2 cannot hold together.
  Problem p;
  p.num_vars = 2;
  p.add({1.0, 1.0}, Relation::Eq, 1.0);
  p.add({1.0, 1.0}, Relation::Eq, 2.0);
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.sense = Sense::Maximize;
  p.add({-1.0}, Relation::LessEq, 0.0);  // -x <= 0, i.e. x >= 0: unbounded above
  EXPECT_EQ(solve(p).status, Status::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -2  <=>  x >= 2; minimize x -> 2.
  Problem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.add({-1.0}, Relation::LessEq, -2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemNoCycle) {
  // Classic degeneracy-prone instance; Bland's rule must terminate.
  Problem p;
  p.num_vars = 4;
  p.objective = {-0.75, 150.0, -0.02, 6.0};
  p.add({0.25, -60.0, -0.04, 9.0}, Relation::LessEq, 0.0);
  p.add({0.5, -90.0, -0.02, 3.0}, Relation::LessEq, 0.0);
  p.add({0.0, 0.0, 1.0, 0.0}, Relation::LessEq, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective_value, -0.05, 1e-9);
}

TEST(Simplex, FeasibilityOnlyNoObjective) {
  Problem p;
  p.num_vars = 3;
  p.add({1.0, 1.0, 1.0}, Relation::Eq, 1.0);
  p.add({1.0, 2.0, 3.0}, Relation::Eq, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0] + s.x[1] + s.x[2], 1.0, 1e-9);
  EXPECT_NEAR(s.x[0] + 2 * s.x[1] + 3 * s.x[2], 2.0, 1e-9);
}

TEST(Simplex, RedundantConstraintsHarmless) {
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.add({1.0, 1.0}, Relation::Eq, 2.0);
  p.add({2.0, 2.0}, Relation::Eq, 4.0);  // same hyperplane
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective_value, 2.0, 1e-9);
}

TEST(Simplex, RandomFeasibleConvexCombinationProblems) {
  // alpha >= 0, sum = 1, sum alpha v = y with y inside the hull: always
  // feasible; outside the hull: infeasible.
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 3 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    std::vector<double> v(m);
    for (auto& x : v) x = rng.uniform(-10.0, 10.0);
    const auto [mn, mx] = std::minmax_element(v.begin(), v.end());

    Problem inside;
    inside.num_vars = m;
    inside.add(std::vector<double>(m, 1.0), Relation::Eq, 1.0);
    inside.add(v, Relation::Eq, rng.uniform(*mn, *mx));
    EXPECT_EQ(solve(inside).status, Status::Optimal);

    Problem outside = inside;
    outside.constraints[1].rhs = *mx + 1.0;
    EXPECT_EQ(solve(outside).status, Status::Infeasible);
  }
}

// ---------------------------------------------------------------- witness

TEST(Witness, UniformMidpointHasFullSupportWitness) {
  // target = mean of 4 values; gamma = 4, beta = 1/8 is satisfiable by the
  // uniform weights.
  WitnessQuery q;
  q.values = {0.0, 1.0, 2.0, 3.0};
  q.target = 1.5;
  q.beta = 1.0 / 8.0;
  q.gamma = 4;
  const WitnessResult w = find_admissible_witness(q);
  ASSERT_TRUE(w.found);
  EXPECT_TRUE(w.exact);
  EXPECT_GE(w.support.size(), 4u);
  double sum = std::accumulate(w.weights.begin(), w.weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Witness, TargetOutsideHullFails) {
  WitnessQuery q;
  q.values = {0.0, 1.0, 2.0};
  q.target = 5.0;
  q.beta = 0.1;
  q.gamma = 2;
  EXPECT_FALSE(find_admissible_witness(q).found);
}

TEST(Witness, ExtremeTargetLimitsSupport) {
  // target equals the max value: only weight-1-on-max works, so requiring
  // 2 weights >= 0.25 must fail, while gamma = 1 succeeds.
  WitnessQuery q;
  q.values = {0.0, 1.0, 2.0};
  q.target = 2.0;
  q.beta = 0.25;
  q.gamma = 2;
  EXPECT_FALSE(find_admissible_witness(q).found);
  q.gamma = 1;
  EXPECT_TRUE(find_admissible_witness(q).found);
}

TEST(Witness, NearExtremeTargetNeedsSmallBeta) {
  // target close to the max: a second weight can only be tiny.
  WitnessQuery q;
  q.values = {0.0, 10.0};
  q.target = 9.9;
  q.gamma = 2;
  q.beta = 0.009;  // needs alpha_0 = 0.01 >= beta: ok
  EXPECT_TRUE(find_admissible_witness(q).found);
  q.beta = 0.02;  // alpha_0 = 0.01 < 0.02: impossible
  EXPECT_FALSE(find_admissible_witness(q).found);
}

TEST(Witness, ToleranceAbsorbsFloatNoise) {
  WitnessQuery q;
  q.values = {1.0, 2.0};
  q.target = 1.5 + 1e-9;  // off by less than tolerance
  q.beta = 0.4;
  q.gamma = 2;
  q.tolerance = 1e-7;
  EXPECT_TRUE(find_admissible_witness(q).found);
}

TEST(Witness, WitnessWeightsActuallyAdmissible) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 5;
    WitnessQuery q;
    q.values.resize(m);
    for (auto& v : q.values) v = rng.uniform(-5.0, 5.0);
    // A target generated by an actual admissible combination.
    std::vector<double> alpha(m, 0.15);
    alpha[0] = 0.4;
    q.target = 0.0;
    for (std::size_t i = 0; i < m; ++i) q.target += alpha[i] * q.values[i];
    q.beta = 0.1;
    q.gamma = 4;
    const WitnessResult w = find_admissible_witness(q);
    ASSERT_TRUE(w.found) << "trial " << trial;
    double sum = 0.0;
    double dot = 0.0;
    std::size_t big = 0;
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_GE(w.weights[i], -1e-9);
      sum += w.weights[i];
      dot += w.weights[i] * q.values[i];
      if (w.weights[i] >= q.beta - 1e-7) ++big;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_NEAR(dot, q.target, 1e-5);
    EXPECT_GE(big, q.gamma);
  }
}

TEST(MaxGuaranteedBeta, MeanOfTwoIsHalf) {
  WitnessQuery q;
  q.values = {0.0, 2.0};
  q.target = 1.0;
  q.gamma = 2;
  EXPECT_NEAR(max_guaranteed_beta(q), 0.5, 1e-7);
}

TEST(MaxGuaranteedBeta, SkewedTarget) {
  // target 0.5 on {0, 2}: alpha = (0.75, 0.25) -> best min weight 0.25.
  WitnessQuery q;
  q.values = {0.0, 2.0};
  q.target = 0.5;
  q.gamma = 2;
  EXPECT_NEAR(max_guaranteed_beta(q), 0.25, 1e-7);
}

TEST(MaxGuaranteedBeta, InfeasibleTargetNegative) {
  WitnessQuery q;
  q.values = {0.0, 1.0};
  q.target = 4.0;
  q.gamma = 1;
  EXPECT_LT(max_guaranteed_beta(q), 0.0);
}

TEST(MaxGuaranteedBeta, GammaOneIsUnconstrainedByBeta) {
  // With gamma = 1 the best beta is the largest single weight over
  // combinations hitting the target; for target = a value itself, 1.0.
  WitnessQuery q;
  q.values = {0.0, 1.0, 2.0};
  q.target = 1.0;
  q.gamma = 1;
  EXPECT_NEAR(max_guaranteed_beta(q), 1.0, 1e-7);
}

}  // namespace
}  // namespace ftmao::lp
