// Determinism of the parallel grid drivers: every thread count must
// reproduce the serial path byte for byte. This is the contract that lets
// CI sweep wide grids on all cores without losing reproducibility.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "sim/attack_search.hpp"
#include "sim/certify.hpp"
#include "sim/sweep.hpp"

namespace ftmao {
namespace {

SweepConfig grid_config() {
  SweepConfig c;
  c.sizes = {{7, 2}, {10, 3}};
  c.attacks = {AttackKind::SplitBrain, AttackKind::SignFlip,
               AttackKind::PullToTarget};
  c.seeds = {1, 2, 3};
  c.rounds = 200;
  return c;
}

std::string csv_at(std::size_t threads) {
  SweepConfig c = grid_config();
  c.num_threads = threads;
  return sweep_to_csv(run_sweep(c));
}

TEST(SweepParallel, CsvByteIdenticalAcrossThreadCounts) {
  const std::string serial = csv_at(1);
  EXPECT_EQ(csv_at(2), serial);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(csv_at(hw), serial);
  EXPECT_EQ(csv_at(0), serial);  // 0 = auto must behave like hw
}

TEST(SweepParallel, OversubscribedStillIdentical) {
  // More threads than grid cells: workers idle, output unchanged.
  const std::string serial = csv_at(1);
  EXPECT_EQ(csv_at(64), serial);
}

TEST(AttackSearchParallel, RankingIdenticalAcrossThreadCounts) {
  const Scenario base =
      make_standard_scenario(7, 2, 8.0, AttackKind::None, 300, 5);
  const auto candidates = standard_attack_grid();
  const AttackSearchResult serial = find_strongest_attack(base, candidates, 1);
  const AttackSearchResult parallel =
      find_strongest_attack(base, candidates, 4);

  EXPECT_DOUBLE_EQ(parallel.reference_state, serial.reference_state);
  ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(parallel.outcomes[i].name, serial.outcomes[i].name);
    EXPECT_DOUBLE_EQ(parallel.outcomes[i].bias, serial.outcomes[i].bias);
    EXPECT_DOUBLE_EQ(parallel.outcomes[i].final_state,
                     serial.outcomes[i].final_state);
  }
}

TEST(CertifyParallel, ReportIdenticalAcrossThreadCounts) {
  CertifyOptions options;
  options.n = 7;
  options.f = 2;
  options.rounds = 150;
  options.consensus_eps = 1.0;  // generous: this test is about determinism,
  options.optimality_eps = 1.0; // not about the acceptance thresholds
  const CertificationReport serial = certify_sbg(options);
  options.num_threads = 3;
  const CertificationReport parallel = certify_sbg(options);

  EXPECT_EQ(parallel.passed, serial.passed);
  ASSERT_EQ(parallel.checks.size(), serial.checks.size());
  for (std::size_t i = 0; i < serial.checks.size(); ++i) {
    EXPECT_EQ(parallel.checks[i].name, serial.checks[i].name);
    EXPECT_EQ(parallel.checks[i].passed, serial.checks[i].passed);
    EXPECT_EQ(parallel.checks[i].detail, serial.checks[i].detail);
  }
}

}  // namespace
}  // namespace ftmao
