// API smoke test: the umbrella header compiles standalone and the
// README's quickstart snippet works verbatim.

#include <gtest/gtest.h>

#include "ftmao.hpp"

namespace ftmao {
namespace {

TEST(Api, ReadmeQuickstartWorksVerbatim) {
  Scenario s = make_standard_scenario(/*n=*/7, /*f=*/2, /*spread=*/8.0,
                                      AttackKind::SplitBrain, /*rounds=*/5000);
  RunMetrics m = run_sbg(s);

  EXPECT_GT(m.optima.length(), 0.0);
  EXPECT_LT(m.final_disagreement(), 0.05);
  EXPECT_LT(m.final_max_dist(), 0.1);
}

TEST(Api, OneTypeFromEveryModuleIsReachable) {
  // A compile-and-touch pass over the breadth of the API.
  const Interval iv(0.0, 1.0);
  Rng rng(1);
  const Huber h(0.0, 1.0, 1.0);
  const auto parsed = parse_function("huber(0, 1, 1)");
  const std::vector<double> vals{1.0, 2.0, 3.0};
  const double trimmed = trim_value(vals, 1);
  const HarmonicStep schedule;
  const Topology topo = make_complete(4);
  const Vec v{1.0, 2.0};
  lp::Problem lp_problem;
  lp_problem.num_vars = 1;
  lp_problem.add({1.0}, lp::Relation::LessEq, 1.0);

  EXPECT_TRUE(iv.contains(0.5));
  EXPECT_NE(parsed, nullptr);
  EXPECT_DOUBLE_EQ(trimmed, 2.0);
  EXPECT_DOUBLE_EQ(schedule.at(2), 0.5);
  EXPECT_TRUE(topo.is_complete());
  EXPECT_DOUBLE_EQ(v.norm_inf(), 2.0);
  EXPECT_EQ(lp::solve(lp_problem).status, lp::Status::Optimal);
  EXPECT_DOUBLE_EQ(contraction_factor(5, 2), 1.0 - 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.value(0.0), 0.0);
  EXPECT_GT(rng.uniform(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace ftmao
