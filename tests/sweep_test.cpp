// Tests for the sweep aggregation module.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"

namespace ftmao {
namespace {

SweepConfig small_config() {
  SweepConfig c;
  c.sizes = {{7, 2}};
  c.attacks = {AttackKind::SplitBrain, AttackKind::Silent};
  c.seeds = {1, 2};
  c.rounds = 300;
  return c;
}

TEST(Sweep, ProducesOneCellPerSizeAttackPair) {
  SweepConfig c = small_config();
  c.sizes = {{7, 2}, {10, 3}};
  const auto cells = run_sweep(c);
  EXPECT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].n, 7u);
  EXPECT_EQ(cells[0].attack, AttackKind::SplitBrain);
  EXPECT_EQ(cells[3].n, 10u);
  EXPECT_EQ(cells[3].attack, AttackKind::Silent);
}

TEST(Sweep, AggregatesOverAllSeeds) {
  const auto cells = run_sweep(small_config());
  for (const auto& c : cells) {
    EXPECT_EQ(c.disagreement.count, 2u);
    EXPECT_EQ(c.dist_to_y.count, 2u);
    EXPECT_GE(c.disagreement.max, c.disagreement.median);
  }
}

TEST(Sweep, Deterministic) {
  const auto a = run_sweep(small_config());
  const auto b = run_sweep(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].disagreement.median, b[i].disagreement.median);
    EXPECT_DOUBLE_EQ(a[i].dist_to_y.max, b[i].dist_to_y.max);
  }
}

TEST(Sweep, CsvShape) {
  const auto cells = run_sweep(small_config());
  const std::string csv = sweep_to_csv(cells);
  EXPECT_EQ(csv.rfind("n,f,dim,attack,seeds,dist_count,", 0), 0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(cells.size()) + 1);
  EXPECT_NE(csv.find("split-brain"), std::string::npos);
}

TEST(Sweep, CsvHandlesEmptyCells) {
  // Hand-built cells with empty summaries must emit zeros, not garbage
  // from dividing an empty sample.
  SweepCell empty;
  empty.n = 7;
  empty.f = 2;
  empty.attack = AttackKind::Silent;
  const std::string csv = sweep_to_csv({empty});
  EXPECT_NE(csv.find("7,2,1,silent,0,0,0,0,0,0"), std::string::npos);
}

TEST(Sweep, ValidationCatchesBadGrid) {
  SweepConfig c = small_config();
  c.sizes = {{6, 2}};  // violates n > 3f
  EXPECT_THROW(run_sweep(c), ContractViolation);
  c = small_config();
  c.seeds.clear();
  EXPECT_THROW(run_sweep(c), ContractViolation);
}

}  // namespace
}  // namespace ftmao
