// Equivalence tests for the SIMD lane backends (src/simd). The dispatch
// contract is that every compiled-and-supported backend — scalar, SSE2,
// AVX2, AVX-512 — produces bit-identical output to the scalar backend for every
// kernel, including on signed zeros, infinities, and denormals; and that
// the batched engine under any forced backend reproduces the scalar
// reference engine exactly. Comparisons are on bit patterns
// (std::bit_cast), not double equality, so +0.0 vs -0.0 divergence is
// caught.

#include <gtest/gtest.h>

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "func/functions.hpp"
#include "sim/batch_runner.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "simd/simd.hpp"
#include "trim/trim_batch.hpp"

namespace ftmao {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

constexpr double kInf = std::numeric_limits<double>::infinity();

// Adversarial values: both zero signs, both infinities, denormals, and
// magnitude extremes, interleaved with ordinary values.
std::vector<double> special_pool() {
  return {0.0,
          -0.0,
          kInf,
          -kInf,
          std::numeric_limits<double>::denorm_min(),
          -std::numeric_limits<double>::denorm_min(),
          DBL_MIN,
          -DBL_MIN,
          DBL_MAX,
          -DBL_MAX,
          1.5,
          -2.25,
          3.0,
          -0.0,
          0.0,
          7.125};
}

std::vector<double> mixed_matrix(std::size_t n, std::size_t batch, Rng& rng) {
  const auto pool = special_pool();
  std::vector<double> m(n * batch);
  for (std::size_t i = 0; i < m.size(); ++i) {
    // Every third value from the special pool, the rest random.
    m[i] = (i % 3 == 0)
               ? pool[static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(pool.size()) - 1))]
               : rng.uniform(-50.0, 50.0);
  }
  return m;
}

// Runs `body` once per compiled-and-supported backend, with that backend
// forced active; restores the previously active backend afterwards.
void for_each_backend(
    const std::function<void(const SimdKernels&)>& body) {
  const SimdIsa prev = simd_active();
  for (const SimdIsa isa : simd_compiled()) {
    if (!simd_supported(isa)) continue;
    ASSERT_TRUE(simd_select(isa));
    body(simd_kernels());
  }
  ASSERT_TRUE(simd_select(prev));
}

TEST(SimdDispatch, ScalarAlwaysPresent) {
  bool has_scalar = false;
  for (const SimdIsa isa : simd_compiled())
    has_scalar = has_scalar || isa == SimdIsa::kScalar;
  EXPECT_TRUE(has_scalar);
  EXPECT_TRUE(simd_supported(SimdIsa::kScalar));
  EXPECT_EQ(simd_kernels_for(SimdIsa::kScalar).width, 1u);
}

TEST(SimdDispatch, DetectedBackendIsSupported) {
  EXPECT_TRUE(simd_supported(simd_detect()));
  // The active table always matches the active ISA tier.
  EXPECT_EQ(simd_kernels().isa, simd_active());
}

TEST(SimdDispatch, WidthAwareDetectObeysWasteRule) {
  // simd_detect_for_lanes picks the widest supported backend whose padded
  // waste stays under half a register: 2 * (roundup(L, w) - L) < w. Zero
  // lanes means "unknown", which falls back to plain detection.
  EXPECT_EQ(simd_detect_for_lanes(0), simd_detect());
  for (std::size_t lanes = 1; lanes <= 40; ++lanes) {
    const SimdIsa picked = simd_detect_for_lanes(lanes);
    EXPECT_TRUE(simd_supported(picked)) << "lanes=" << lanes;
    const std::size_t w = simd_kernels_for(picked).width;
    const std::size_t waste = (lanes + w - 1) / w * w - lanes;
    EXPECT_TRUE(picked == SimdIsa::kScalar || 2 * waste < w)
        << "lanes=" << lanes;
    // No wider supported backend also satisfies the rule.
    for (const SimdIsa isa : simd_compiled()) {
      if (!simd_supported(isa)) continue;
      const std::size_t w2 = simd_kernels_for(isa).width;
      if (w2 <= w) continue;
      const std::size_t waste2 = (lanes + w2 - 1) / w2 * w2 - lanes;
      EXPECT_FALSE(2 * waste2 < w2) << "lanes=" << lanes << " skipped wider "
                                    << simd_isa_name(isa);
    }
  }
}

TEST(SimdDispatch, WidthAwareDetectKnownLaneCounts) {
  // One lane can never fill more than half of any vector register.
  EXPECT_EQ(simd_detect_for_lanes(1), SimdIsa::kScalar);
  if (simd_supported(SimdIsa::kSse2)) {
    // Two lanes exactly fill SSE2; AVX2 would waste half its register.
    EXPECT_EQ(simd_detect_for_lanes(2), SimdIsa::kSse2);
  }
  if (simd_supported(SimdIsa::kAvx2)) {
    // Three lanes: SSE2 pads one of two (half wasted, rejected), AVX2
    // pads one of four (accepted). Four lanes fill AVX2 exactly; an
    // AVX-512 register would run half empty, so AVX2 wins even when
    // AVX-512 is supported — the seeds=3 scalar-batch regression.
    EXPECT_EQ(simd_detect_for_lanes(3), SimdIsa::kAvx2);
    EXPECT_EQ(simd_detect_for_lanes(4), SimdIsa::kAvx2);
  }
  if (simd_supported(SimdIsa::kAvx512)) {
    // Five lanes pad three of eight (under half), and multiples of eight
    // fill AVX-512 exactly — e.g. the d=8, B=3 vector batch (24 lanes).
    EXPECT_EQ(simd_detect_for_lanes(5), SimdIsa::kAvx512);
    EXPECT_EQ(simd_detect_for_lanes(8), SimdIsa::kAvx512);
    EXPECT_EQ(simd_detect_for_lanes(24), SimdIsa::kAvx512);
  }
}

TEST(SimdDispatch, KernelsForLanesHonoursExplicitOverride) {
  // Once an explicit selection is made (simd_select or a successful
  // FTMAO_ISA override), width-aware auto-dispatch defers to it.
  const SimdIsa prev = simd_active();
  ASSERT_TRUE(simd_select(SimdIsa::kScalar));
  EXPECT_EQ(simd_kernels_for_lanes(64).isa, SimdIsa::kScalar);
  ASSERT_TRUE(simd_select(prev));
  EXPECT_EQ(simd_kernels_for_lanes(64).isa, prev);
}

TEST(SimdDispatch, ParseIsaNames) {
  EXPECT_EQ(parse_simd_isa("scalar"), SimdIsa::kScalar);
  EXPECT_EQ(parse_simd_isa("sse2"), SimdIsa::kSse2);
  EXPECT_EQ(parse_simd_isa("avx2"), SimdIsa::kAvx2);
  EXPECT_EQ(parse_simd_isa("avx512"), SimdIsa::kAvx512);
  EXPECT_EQ(parse_simd_isa("auto"), simd_detect());
  EXPECT_THROW(parse_simd_isa("avx1024"), ContractViolation);
  EXPECT_THROW(parse_simd_isa(""), ContractViolation);
  for (const SimdIsa isa : simd_compiled())
    EXPECT_EQ(parse_simd_isa(simd_isa_name(isa)), isa);
}

TEST(SimdDispatch, SelectSwitchesActiveBackend) {
  const SimdIsa prev = simd_active();
  ASSERT_TRUE(simd_select(SimdIsa::kScalar));
  EXPECT_EQ(simd_active(), SimdIsa::kScalar);
  EXPECT_EQ(std::string(simd_kernels().name), "scalar");
  ASSERT_TRUE(simd_select(prev));
  EXPECT_EQ(simd_active(), prev);
}

TEST(SimdKernels, SortNetworkBitIdenticalAcrossBackends) {
  const SimdKernels& scalar = simd_kernels_for(SimdIsa::kScalar);
  Rng rng(101);
  for (std::size_t n : {2u, 3u, 7u, 13u, 31u, 32u}) {
    const auto network = sorting_network(n);
    for (std::size_t batch : {1u, 2u, 3u, 4u, 5u, 8u, 11u}) {
      const auto input = mixed_matrix(n, batch, rng);
      auto expected = input;
      scalar.sort_network(expected.data(), batch, network.data(),
                          network.size(), batch);
      for_each_backend([&](const SimdKernels& k) {
        auto got = input;
        k.sort_network(got.data(), batch, network.data(), network.size(),
                       batch);
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(bits(expected[i]), bits(got[i]))
              << k.name << " n=" << n << " batch=" << batch << " i=" << i;
        }
      });
    }
  }
}

TEST(SimdKernels, RowKernelsBitIdenticalAcrossBackends) {
  const SimdKernels& scalar = simd_kernels_for(SimdIsa::kScalar);
  Rng rng(103);
  for (std::size_t count : {1u, 2u, 3u, 4u, 7u, 16u, 33u}) {
    const auto ys = mixed_matrix(1, count, rng);
    const auto yl = mixed_matrix(1, count, rng);
    std::vector<double> mid_expected(count), acc_expected(count),
        div_expected(count);
    scalar.trim_midpoint(ys.data(), yl.data(), mid_expected.data(), count);
    acc_expected = ys;
    scalar.accumulate_rows(acc_expected.data(), yl.data(), count);
    div_expected = ys;
    scalar.divide_rows(div_expected.data(), 3.0, count);

    for_each_backend([&](const SimdKernels& k) {
      std::vector<double> mid(count), acc(ys), divr(ys);
      k.trim_midpoint(ys.data(), yl.data(), mid.data(), count);
      k.accumulate_rows(acc.data(), yl.data(), count);
      k.divide_rows(divr.data(), 3.0, count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(bits(mid_expected[i]), bits(mid[i])) << k.name;
        ASSERT_EQ(bits(acc_expected[i]), bits(acc[i])) << k.name;
        ASSERT_EQ(bits(div_expected[i]), bits(divr[i])) << k.name;
      }
    });
  }
}

TEST(SimdKernels, GradientClampMatchesVirtualDerivativeBitwise) {
  // Three descriptor-bearing families; the descriptor must equal the
  // virtual derivative bit-for-bit on every probe (including +/-0, +/-inf
  // and denormals), and every backend's kernel must equal the descriptor.
  const Huber huber(1.5, 2.0, 0.75);
  const FlatHuber flat(Interval(-1.0, 2.0), 1.5, 1.25);
  const AsymmetricHuber asym(-0.5, 1.0, 3.0, 0.5);
  const ScalarFunction* fns[] = {&huber, &flat, &asym};

  std::vector<double> probes = special_pool();
  Rng rng(107);
  for (int i = 0; i < 64; ++i) probes.push_back(rng.uniform(-20.0, 20.0));

  for (const ScalarFunction* fn : fns) {
    const BatchGradientKernel d = fn->batch_gradient_kernel();
    ASSERT_TRUE(d.valid());
    for (double x : probes)
      ASSERT_EQ(bits(fn->derivative(x)), bits(d.evaluate(x)));
  }

  // Heterogeneous descriptors across one row, as batch_runner lays out
  // per-lane parameters.
  const std::size_t count = probes.size();
  std::vector<double> a(count), b(count), lo(count), hi(count), scale(count),
      expected(count);
  for (std::size_t i = 0; i < count; ++i) {
    const BatchGradientKernel d = fns[i % 3]->batch_gradient_kernel();
    a[i] = d.p0;
    b[i] = d.p1;
    lo[i] = d.p2;
    hi[i] = d.p3;
    scale[i] = d.scale;
    expected[i] = fns[i % 3]->derivative(probes[i]);
  }
  for_each_backend([&](const SimdKernels& k) {
    std::vector<double> g(count);
    k.gradient_clamp(probes.data(), a.data(), b.data(), lo.data(), hi.data(),
                     scale.data(), g.data(), count);
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(bits(expected[i]), bits(g[i])) << k.name << " i=" << i;
  });
}

TEST(SimdKernels, FusedStepMatchesScalarUpdateBitwise) {
  Rng rng(109);
  const std::size_t count = 23;
  std::vector<double> tx = mixed_matrix(1, count, rng);
  std::vector<double> tg = mixed_matrix(1, count, rng);
  std::vector<double> lambda(count), clo(count), chi(count), mask(count);
  const double all_bits = std::bit_cast<double>(~std::uint64_t{0});
  for (std::size_t i = 0; i < count; ++i) {
    lambda[i] = rng.uniform(0.0, 0.5);
    if (i % 2 == 0) {  // constrained lane
      clo[i] = -3.0;
      chi[i] = 4.0;
      mask[i] = all_bits;
    } else {  // unconstrained lane
      clo[i] = -kInf;
      chi[i] = kInf;
      mask[i] = 0.0;
    }
  }

  // The scalar engine's update, verbatim (sim/runner step + projection).
  std::vector<double> x_expected(count), pe_expected(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = tx[i] - lambda[i] * tg[i];
    if (i % 2 == 0) {
      const double next = std::clamp(u, clo[i], chi[i]);
      x_expected[i] = next;
      pe_expected[i] = next - u;
    } else {
      x_expected[i] = u;
      pe_expected[i] = 0.0;
    }
  }

  for_each_backend([&](const SimdKernels& k) {
    std::vector<double> x(count), pe(count);
    k.fused_step(tx.data(), tg.data(), lambda.data(), clo.data(), chi.data(),
                 mask.data(), x.data(), pe.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(bits(x_expected[i]), bits(x[i])) << k.name << " i=" << i;
      ASSERT_EQ(bits(pe_expected[i]), bits(pe[i])) << k.name << " i=" << i;
    }
  });
}

TEST(SimdKernels, MaskedBlendSelectsExactBitPatterns) {
  // The delivery-filter substitution: mask lanes are stored
  // all-ones/all-zeros doubles; taken lanes must reproduce the payload's
  // exact bit pattern (signed zeros, infinities, denormals included) and
  // dropped lanes the default's.
  Rng rng(113);
  const double all_bits = std::bit_cast<double>(~std::uint64_t{0});
  for (std::size_t count : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 16u, 33u}) {
    const auto px = mixed_matrix(1, count, rng);
    const auto pg = mixed_matrix(1, count, rng);
    const auto dx = mixed_matrix(1, count, rng);
    const auto dg = mixed_matrix(1, count, rng);
    std::vector<double> mask(count);
    for (std::size_t i = 0; i < count; ++i)
      mask[i] = (i % 3 == 0) ? all_bits : 0.0;

    for_each_backend([&](const SimdKernels& k) {
      std::vector<double> outx(count), outg(count);
      k.masked_blend(mask.data(), px.data(), pg.data(), dx.data(), dg.data(),
                     outx.data(), outg.data(), count);
      for (std::size_t i = 0; i < count; ++i) {
        const bool take = (i % 3 == 0);
        ASSERT_EQ(bits(take ? px[i] : dx[i]), bits(outx[i]))
            << k.name << " count=" << count << " i=" << i;
        ASSERT_EQ(bits(take ? pg[i] : dg[i]), bits(outg[i]))
            << k.name << " count=" << count << " i=" << i;
      }
    });
  }
}

TEST(SimdEngine, BatchedEngineMatchesScalarEngineUnderEveryBackend) {
  // End-to-end: the batched engine forced onto each backend reproduces
  // the scalar reference engine bit-for-bit, final state by final state.
  for (const AttackKind kind :
       {AttackKind::None, AttackKind::SplitBrain, AttackKind::SignFlip}) {
    std::vector<Scenario> replicas;
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
      replicas.push_back(make_standard_scenario(7, 2, 8.0, kind, 60, seed));

    std::vector<RunMetrics> expected;
    for (const Scenario& s : replicas) expected.push_back(run_sbg(s));

    for_each_backend([&](const SimdKernels& k) {
      const std::vector<RunMetrics> got = run_sbg_batch(replicas);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].final_states.size(), expected[r].final_states.size());
        for (std::size_t j = 0; j < got[r].final_states.size(); ++j) {
          ASSERT_EQ(bits(expected[r].final_states[j]),
                    bits(got[r].final_states[j]))
              << k.name << " attack=" << static_cast<int>(kind) << " r=" << r
              << " j=" << j;
        }
      }
    });
  }
}

}  // namespace
}  // namespace ftmao
