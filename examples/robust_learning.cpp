// Robust distributed learning: estimate a shared scalar model parameter
// from data scattered across workers, some of which are compromised.
//
// Each worker holds noisy observations of an unknown location parameter
// theta* and uses a Huber loss centered at its local sample mean — the
// classic robust-regression setup that motivated Byzantine-tolerant ML.
// Compromised workers run the gradient sign-flip attack (the standard
// poisoning strategy from the Byzantine-ML literature). We compare:
//   * SBG           — the paper's algorithm,
//   * DGD           — fault-oblivious averaging,
//   * local-only GD — no collaboration.
//
// Build & run:  ./build/examples/robust_learning

#include <cmath>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "func/functions.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;

  constexpr double kThetaStar = 2.5;   // ground-truth parameter
  constexpr std::size_t kWorkers = 10;
  constexpr std::size_t kF = 3;        // tolerated compromised workers
  constexpr std::size_t kSamples = 40; // observations per worker

  Rng rng(2016);

  // Each worker's local cost: Huber loss centered at its sample mean of
  // noisy observations theta* + N(0, 1.5^2). The average of these costs is
  // minimized near theta*, but each individual optimum is off by the
  // worker's sampling noise — collaboration genuinely helps.
  Scenario s;
  s.n = kWorkers;
  s.f = kF;
  s.faulty = {1, 4, 7};  // compromised workers, identity unknown to others
  s.rounds = 8000;
  s.seed = 2016;
  s.attack.kind = AttackKind::SignFlip;
  s.attack.amplification = 4.0;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    Rng worker_rng = rng.substream("worker", w);
    double mean = 0.0;
    for (std::size_t i = 0; i < kSamples; ++i)
      mean += worker_rng.normal(kThetaStar, 1.5);
    mean /= kSamples;
    s.functions.push_back(std::make_shared<Huber>(mean, /*delta=*/1.0,
                                                  /*scale=*/1.0));
    s.initial_states.push_back(worker_rng.uniform(-5.0, 10.0));
  }

  const RunMetrics sbg = run_sbg(s);
  const RunMetrics dgd = run_dgd(s);
  const RunMetrics local = run_local_gd(s);

  auto error_of = [&](const RunMetrics& m) {
    double worst = 0.0;
    for (double x : m.final_states)
      worst = std::max(worst, std::abs(x - kThetaStar));
    return worst;
  };

  std::cout << "Estimating theta* = " << kThetaStar << " with " << kWorkers
            << " workers, " << s.faulty.size() << " compromised (sign-flip x"
            << s.attack.amplification << ")\n\n";
  Table table({"algorithm", "worst |theta - theta*|", "disagreement"});
  table.row().add("SBG (this paper)").add(error_of(sbg), 4)
      .add(sbg.final_disagreement(), 4);
  table.row().add("DGD (fault-oblivious)").add(error_of(dgd), 4)
      .add(dgd.final_disagreement(), 4);
  table.row().add("local-only GD").add(error_of(local), 4)
      .add(local.final_disagreement(), 4);
  table.print(std::cout);

  std::cout << "\nSBG aggregates the honest workers' evidence (small error,\n"
               "consensus) despite the poisoned gradients; DGD absorbs the\n"
               "poison; local-only forgoes the variance reduction entirely.\n";
  return 0;
}
