// Asynchronous sensor fusion (Section 7's asynchronous extensions).
//
// A field of sensors estimates a common physical quantity (say, a
// temperature). Messages cross a congested network with unpredictable
// delays, and some sensor nodes are compromised. Two deployments:
//
//   * plenty of sensors (n > 5f): the lightweight quorum variant
//     (core/async_sbg) — one message per neighbour per round;
//   * scarce sensors (n = 3f + 1): the reliable-broadcast variant
//     (consensus/rbc_sbg) — three protocol phases per tuple but maximal
//     resilience.
//
// Build & run:  ./build/examples/async_sensors

#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "consensus/rbc_sbg.hpp"
#include "func/functions.hpp"
#include "sim/async_runner.hpp"

int main() {
  using namespace ftmao;

  constexpr double kTrueTemperature = 21.5;
  Rng rng(42);

  auto sensor_cost = [&](std::size_t i) -> ScalarFunctionPtr {
    // Each sensor's reading is the truth plus calibration noise; its local
    // cost is a Huber loss around its own reading.
    Rng s = rng.substream("sensor", i);
    return std::make_shared<Huber>(s.normal(kTrueTemperature, 0.8),
                                   /*delta=*/1.0, /*scale=*/1.0);
  };

  std::cout << "True temperature: " << kTrueTemperature << " C\n\n";
  Table table({"deployment", "n", "f", "estimate", "abs error",
               "virtual time"});

  // --- Deployment A: 11 sensors, 2 compromised, quorum variant.
  {
    AsyncScenario s;
    s.n = 11;
    s.f = 2;
    s.faulty = {9, 10};
    for (std::size_t i = 0; i < s.n; ++i) {
      s.functions.push_back(sensor_cost(i));
      s.initial_states.push_back(rng.uniform(15.0, 28.0));
    }
    s.attack.kind = AttackKind::SplitBrain;
    s.attack.state_magnitude = 100.0;
    s.attack.gradient_magnitude = 10.0;
    s.rounds = 3000;
    s.delay_kind = DelayKind::Uniform;
    const AsyncRunMetrics m = run_async_sbg(s);
    const double estimate = m.final_states.front();
    table.row()
        .add("A: quorum (n > 5f)")
        .add(s.n)
        .add(s.f)
        .add(estimate, 4)
        .add(std::abs(estimate - kTrueTemperature), 4)
        .add(m.virtual_time, 1);
  }

  // --- Deployment B: only 7 sensors, still 2 compromised -> RBC variant.
  {
    RbcSbgConfig config;
    config.n = 7;
    config.f = 2;
    config.max_rounds = 300;
    std::vector<ScalarFunctionPtr> costs;
    std::vector<double> init;
    for (std::size_t i = 0; i < 5; ++i) {
      costs.push_back(sensor_cost(100 + i));
      init.push_back(rng.uniform(15.0, 28.0));
    }
    const HarmonicStep schedule;
    UniformDelay delays(0.5, 1.5, rng.substream("delays"));
    const RbcSbgRunResult r =
        run_rbc_sbg(config, costs, init, 2, schedule, delays);
    const double estimate = r.final_states.front();
    table.row()
        .add("B: reliable broadcast (n > 3f)")
        .add(config.n)
        .add(config.f)
        .add(estimate, 4)
        .add(std::abs(estimate - kTrueTemperature), 4)
        .add(r.virtual_time, 1);
  }

  table.print(std::cout);
  std::cout << "\nBoth deployments land within the honest sensors' calibration\n"
               "spread of the truth despite compromised nodes and arbitrary\n"
               "delays. With only 3f+1 sensors, only the RBC variant applies.\n";
  return 0;
}
