// Robot rendezvous on a line: a team of robots must agree on a single
// meeting coordinate that keeps everyone's travel acceptable, while some
// robots are hijacked and try to drag the rendezvous away.
//
// Each robot i at position p_i uses the smoothed travel cost
// h_i(x) = smooth_abs(x - p_i) (admissible: bounded, Lipschitz gradient).
// The hijacked robots mount a pull-to-target attack toward a far-away
// ambush point. SBG guarantees the agreed point is an optimum of a
// weighted travel cost in which at least |N| - f genuine robots carry
// weight >= 1/(2(|N|-f)) — the ambush point is unreachable for the
// attacker.
//
// Build & run:  ./build/examples/robot_rendezvous

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/valid_set.hpp"
#include "func/functions.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;

  const std::vector<double> positions{-6.0, -2.5, -1.0, 0.5, 2.0, 4.5, 7.0};
  const std::size_t n = positions.size();
  const std::size_t f = 2;
  constexpr double kAmbush = -80.0;

  Scenario s;
  s.n = n;
  s.f = f;
  s.faulty = {0, 6};  // the two outermost robots are hijacked
  s.rounds = 6000;
  s.attack.kind = AttackKind::PullToTarget;
  s.attack.target = kAmbush;
  s.attack.gradient_magnitude = 10.0;
  for (std::size_t i = 0; i < n; ++i) {
    s.functions.push_back(
        std::make_shared<SmoothAbs>(positions[i], /*eps=*/0.5, /*scale=*/1.0));
    s.initial_states.push_back(positions[i]);  // each starts at its position
  }

  const RunMetrics m = run_sbg(s);

  std::cout << "Robots at:";
  for (std::size_t i = 0; i < n; ++i)
    std::cout << ' ' << positions[i] << (s.is_faulty(i) ? "(hijacked)" : "");
  std::cout << "\nAmbush target: " << kAmbush << "\n\n";

  Table table({"metric", "value"});
  table.row().add("agreed rendezvous").add(m.final_states.front(), 4);
  table.row().add("disagreement").add(m.final_disagreement(), 5);
  table.row().add("valid meeting interval Y").add(
      "[" + format_double(m.optima.lo(), 4) + ", " +
      format_double(m.optima.hi(), 4) + "]");
  table.row().add("dist to Y").add(m.final_max_dist(), 5);
  table.print(std::cout);

  const double x = m.final_states.front();
  std::cout << "\nTravel for each genuine robot:\n";
  Table travel({"robot position", "travel distance"});
  for (std::size_t i = 0; i < n; ++i) {
    if (s.is_faulty(i)) continue;
    travel.row().add(positions[i], 2).add(std::abs(x - positions[i]), 3);
  }
  travel.print(std::cout);

  std::cout << "\nThe hijacked robots could not move the rendezvous outside\n"
               "the honest robots' valid interval; the meeting point is an\n"
               "optimum of a cost in which >= " << (n - f - f)
            << " genuine robots have weight >= 1/(2*" << (n - f - f) << ").\n";
  return 0;
}
