// Quickstart: the smallest complete SBG deployment.
//
// Seven agents, two of which are Byzantine, jointly minimize a weighted
// combination of their local costs despite the faulty agents sending
// inconsistent messages. Shows the three layers of the public API:
//   1. define admissible local costs         (func/)
//   2. describe the run as a Scenario        (sim/scenario.hpp)
//   3. execute and inspect metrics           (sim/runner.hpp)
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "sim/runner.hpp"

int main() {
  using namespace ftmao;

  // n = 7 agents, up to f = 2 Byzantine (n > 3f). Mixed Huber/log-cosh/
  // smooth-abs costs with optima spread over [-4, 4]; the last two agents
  // are faulty and mount a split-brain attack (different lies to different
  // recipients — the hardest case for a non-broadcast algorithm).
  Scenario scenario =
      make_standard_scenario(/*n=*/7, /*f=*/2, /*spread=*/8.0,
                             AttackKind::SplitBrain, /*rounds=*/5000);

  const RunMetrics metrics = run_sbg(scenario);

  std::cout << "valid optima set Y = [" << metrics.optima.lo() << ", "
            << metrics.optima.hi() << "]\n";
  std::cout << "final honest states:";
  for (double x : metrics.final_states) std::cout << ' ' << x;
  std::cout << "\nfinal disagreement  = " << metrics.final_disagreement()
            << "   (consensus: -> 0)\n";
  std::cout << "final dist to Y     = " << metrics.final_max_dist()
            << "   (optimality: -> 0)\n";

  // Theorem 2 in two lines:
  const bool consensus = metrics.final_disagreement() < 0.05;
  const bool optimality = metrics.final_max_dist() < 0.1;
  std::cout << (consensus && optimality ? "SBG converged as guaranteed.\n"
                                        : "unexpected: check configuration\n");
  return consensus && optimality ? 0 : 1;
}
