// Attack playbook: what can an adversary actually do to SBG?
//
// Walks the full attack API: run every built-in strategy against the same
// deployment, search the parameter grid for the strongest configuration,
// and verify that even that one is capped by Theorem 2 (the output never
// leaves the valid optima interval Y). The takeaway for operators: an
// adversary chooses WHERE in Y you land, never whether you land in Y.
//
// Build & run:  ./build/examples/attack_playbook

#include <iostream>

#include "common/table.hpp"
#include "sim/attack_search.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;

  Scenario deployment =
      make_standard_scenario(/*n=*/10, /*f=*/3, /*spread=*/10.0,
                             AttackKind::None, /*rounds=*/5000);

  std::cout << "Deployment: 10 agents, up to 3 Byzantine, optima spread over"
               " [-5, 5]\n\n";

  const AttackSearchResult search =
      find_strongest_attack(deployment, standard_attack_grid());

  std::cout << "Attack-free consensus: "
            << format_double(search.reference_state, 4) << "\n"
            << "Valid optima interval Y = ["
            << format_double(search.optima.lo(), 4) << ", "
            << format_double(search.optima.hi(), 4) << "]\n\n";

  std::cout << "Top 8 attacks by realized bias:\n";
  Table table({"attack", "lands at", "bias", "left Y?"});
  for (std::size_t i = 0; i < 8 && i < search.outcomes.size(); ++i) {
    const AttackOutcome& o = search.outcomes[i];
    table.row()
        .add(o.name)
        .add(o.final_state, 4)
        .add(o.bias, 4)
        .add(o.dist_to_y > 1e-6 ? "YES (bug!)" : "no");
  }
  table.print(std::cout);

  const double cap =
      std::max(search.reference_state - search.optima.lo(),
               search.optima.hi() - search.reference_state);
  std::cout << "\nStrongest attack realized "
            << format_double(search.strongest().bias, 4) << " of the "
            << format_double(cap, 4)
            << " geometrically available inside Y.\n"
               "Every attack row shows 'left Y? no' — Theorem 2's cap in\n"
               "action: the relaxation hands the adversary a bounded choice\n"
               "within Y, nothing more.\n";
  return 0;
}
