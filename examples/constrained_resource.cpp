// Constrained resource allocation (Section 6's projected variant):
// microgrid controllers must agree on one power setpoint x inside the
// feasible band X = [x_min, x_max] dictated by line capacity, while each
// controller prefers a setpoint near its own cost optimum and some
// controllers are compromised.
//
// Uses projected SBG: the update is projected onto X each iteration; the
// projection error vanishes and the agreed setpoint is an optimum over X
// of an admissibly-weighted cost (eq. 15).
//
// Build & run:  ./build/examples/constrained_resource

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "func/functions.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ftmao;

  // Feasible band and controller preferences (preferred setpoints in MW).
  const Interval feasible(30.0, 45.0);
  const std::vector<double> preferred{20.0, 33.0, 38.0, 41.0, 52.0, 60.0, 25.0};
  const std::size_t n = preferred.size();
  const std::size_t f = 2;

  Scenario s;
  s.n = n;
  s.f = f;
  s.faulty = {5, 6};
  s.rounds = 8000;
  s.constraint = feasible;
  s.attack.kind = AttackKind::FixedValue;
  s.attack.state_magnitude = 500.0;    // absurd setpoint reports
  s.attack.gradient_magnitude = -20.0; // push toward overload
  // Asymmetric softplus basins: cost rises smoothly away from the
  // preferred setpoint, with bounded marginal cost (admissible).
  for (std::size_t i = 0; i < n; ++i) {
    s.functions.push_back(std::make_shared<SoftplusBasin>(
        preferred[i] - 1.0, preferred[i] + 1.0, /*width=*/1.0, /*scale=*/1.0));
    s.initial_states.push_back(preferred[i]);
  }
  // Step scale matched to the setpoint magnitudes so the travel budget
  // covers the band.
  s.step = {StepKind::Power, 2.0, 0.6};

  const RunMetrics m = run_sbg(s);

  std::cout << "Feasible band X = [" << feasible.lo() << ", " << feasible.hi()
            << "] MW\n";
  std::cout << "Honest preferred setpoints:";
  for (std::size_t i = 0; i < n; ++i)
    if (!s.is_faulty(i)) std::cout << ' ' << preferred[i];
  std::cout << "\n\n";

  Table table({"metric", "value"});
  const double setpoint = m.final_states.front();
  table.row().add("agreed setpoint (MW)").add(setpoint, 4);
  table.row().add("inside feasible band").add(feasible.contains(setpoint) ? "yes" : "NO");
  table.row().add("disagreement").add(m.final_disagreement(), 5);
  table.row().add("projection error (tail max)").add(
      m.max_projection_error.tail_max(100), 6);
  table.print(std::cout);

  std::cout << "\nDespite compromised controllers demanding a 500 MW\n"
               "setpoint, the agreed value stays in the feasible band and\n"
               "reflects the honest controllers' costs (Section 6).\n";
  return 0;
}
