#include "func/nonsmooth.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace ftmao {

AbsValue::AbsValue(double center, double scale)
    : center_(center), scale_(scale) {
  FTMAO_EXPECTS(scale > 0.0);
}

double AbsValue::value(double x) const { return scale_ * std::abs(x - center_); }

double AbsValue::derivative(double x) const {
  if (x > center_) return scale_;
  if (x < center_) return -scale_;
  return 0.0;  // minimal-norm subgradient at the kink
}

MaxAffine::MaxAffine(std::vector<Piece> pieces)
    : pieces_(std::move(pieces)), slope_bound_(0.0), argmin_(0.0) {
  FTMAO_EXPECTS(pieces_.size() >= 2);
  bool has_negative = false, has_positive = false;
  for (const auto& p : pieces_) {
    slope_bound_ = std::max(slope_bound_, std::abs(p.slope));
    has_negative |= p.slope < 0.0;
    has_positive |= p.slope > 0.0;
  }
  // Compactness of argmin requires the envelope to rise on both sides.
  FTMAO_EXPECTS(has_negative && has_positive);

  // The minimum of a max-of-affine lies at a breakpoint: enumerate all
  // pairwise intersections, keep those achieving the minimal envelope
  // value, and take their hull (flat bottoms produce two such points).
  double best_value = std::numeric_limits<double>::infinity();
  double lo = 0.0, hi = 0.0;
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces_.size(); ++j) {
      const double da = pieces_[i].slope - pieces_[j].slope;
      if (da == 0.0) continue;
      const double x = (pieces_[j].intercept - pieces_[i].intercept) / da;
      const double v = value(x);
      if (v < best_value - 1e-12) {
        best_value = v;
        lo = hi = x;
      } else if (v <= best_value + 1e-12) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }
  }
  FTMAO_EXPECTS(std::isfinite(best_value));
  // Only breakpoints where the subdifferential straddles 0 are minima;
  // the minimal-value filter above already guarantees that.
  argmin_ = Interval(lo, hi);
}

double MaxAffine::value(double x) const {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& p : pieces_) best = std::max(best, p.slope * x + p.intercept);
  return best;
}

double MaxAffine::derivative(double x) const {
  // Among pieces active at x (within a tight tolerance), return the slope
  // of smallest magnitude — the minimal-norm subgradient selection.
  const double v = value(x);
  double chosen = 0.0;
  double chosen_abs = std::numeric_limits<double>::infinity();
  for (const auto& p : pieces_) {
    if (p.slope * x + p.intercept >= v - 1e-9 * (1.0 + std::abs(v))) {
      if (std::abs(p.slope) < chosen_abs) {
        chosen = p.slope;
        chosen_abs = std::abs(p.slope);
      }
    }
  }
  return chosen;
}

}  // namespace ftmao
