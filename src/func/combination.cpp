#include "func/combination.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"
#include "opt/argmin.hpp"

namespace ftmao {

namespace {

Interval seed_hull(const std::vector<WeightedTerm>& terms) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& t : terms) {
    if (t.weight <= 0.0) continue;
    const Interval a = t.function->argmin();
    lo = std::min(lo, a.lo());
    hi = std::max(hi, a.hi());
  }
  return Interval(lo, hi);
}

Interval compute_argmin(const std::vector<WeightedTerm>& terms) {
  // The argmin of the sum lies inside the hull of the terms' argmins
  // (outside it all active derivatives share a sign), which gives a tight
  // bisection seed.
  const Interval hull = seed_hull(terms);
  auto deriv = [&terms](double x) {
    double g = 0.0;
    for (const auto& t : terms)
      if (t.weight > 0.0) g += t.weight * t.function->derivative(x);
    return g;
  };
  return argmin_from_derivative(deriv, hull.lo() - 1.0, hull.hi() + 1.0);
}

}  // namespace

WeightedSum::WeightedSum(std::vector<WeightedTerm> terms)
    : terms_(std::move(terms)),
      gradient_bound_(0.0),
      lipschitz_bound_(0.0),
      argmin_(0.0) {
  FTMAO_EXPECTS(!terms_.empty());
  double total = 0.0;
  for (const auto& t : terms_) {
    FTMAO_EXPECTS(t.weight >= 0.0);
    FTMAO_EXPECTS(t.function != nullptr);
    total += t.weight;
    gradient_bound_ += t.weight * t.function->gradient_bound();
    lipschitz_bound_ += t.weight * t.function->lipschitz_bound();
  }
  FTMAO_EXPECTS(total > 0.0);
  argmin_ = compute_argmin(terms_);
}

double WeightedSum::value(double x) const {
  double v = 0.0;
  for (const auto& t : terms_) v += t.weight * t.function->value(x);
  return v;
}

double WeightedSum::derivative(double x) const {
  double g = 0.0;
  for (const auto& t : terms_) g += t.weight * t.function->derivative(x);
  return g;
}

WeightedSum uniform_average(const std::vector<ScalarFunctionPtr>& functions) {
  FTMAO_EXPECTS(!functions.empty());
  std::vector<WeightedTerm> terms;
  terms.reserve(functions.size());
  const double w = 1.0 / static_cast<double>(functions.size());
  for (const auto& f : functions) terms.push_back({w, f});
  return WeightedSum(std::move(terms));
}

}  // namespace ftmao
