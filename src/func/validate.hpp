#pragma once

// Numeric validation that a ScalarFunction actually satisfies the paper's
// admissibility assumptions (Section 2). Used by tests (every concrete
// family is validated on a grid) and available to users adding their own
// cost functions.

#include <string>
#include <vector>

#include "common/interval.hpp"
#include "func/scalar_function.hpp"

namespace ftmao {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string why) {
    ok = false;
    violations.push_back(std::move(why));
  }
};

struct ValidationOptions {
  Interval domain{-50.0, 50.0};  ///< grid over which properties are sampled
  int grid_points = 2001;
  double fd_step = 1e-6;         ///< finite-difference step for h' check
  double tolerance = 1e-4;       ///< slack for numeric comparisons
};

/// Samples the function on a grid and checks:
///  * h' non-decreasing (convexity),
///  * |h'| <= gradient_bound(),
///  * h' is lipschitz_bound()-Lipschitz between adjacent grid points,
///  * h' matches the finite difference of h,
///  * h' <= 0 at argmin().lo() side and >= 0 at argmin().hi() side, and
///    |h'| small inside argmin().
ValidationReport validate_admissible(const ScalarFunction& f,
                                     const ValidationOptions& opts = {});

}  // namespace ftmao
