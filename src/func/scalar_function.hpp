#pragma once

// The paper's "admissible" local cost function h : R -> R (Section 2):
//   (i)   convex and continuously differentiable,
//   (ii)  argmin h is non-empty and compact,
//   (iii) |h'(x)| <= L everywhere, and h' is L-Lipschitz.
//
// ScalarFunction is the abstract interface; concrete admissible families
// live in functions.hpp. gradient_bound() and lipschitz_bound() report
// per-instance constants (the algorithm analysis uses the max over the
// system). argmin() must return the exact minimizing interval; numeric
// cross-checks live in opt/argmin.hpp and func/validate.hpp.

#include <memory>

#include "common/interval.hpp"

namespace ftmao {

/// A convex, continuously differentiable cost h with bounded, Lipschitz
/// derivative and compact argmin. Immutable and thread-compatible.
class ScalarFunction {
 public:
  virtual ~ScalarFunction() = default;

  /// h(x).
  virtual double value(double x) const = 0;

  /// h'(x); must be non-decreasing (convexity) and bounded by
  /// gradient_bound() in magnitude.
  virtual double derivative(double x) const = 0;

  /// L such that |h'(x)| <= L for all x.
  virtual double gradient_bound() const = 0;

  /// L' such that |h'(x) - h'(y)| <= L' |x - y| for all x, y.
  virtual double lipschitz_bound() const = 0;

  /// The closed interval argmin_x h(x) (non-empty, compact by
  /// admissibility).
  virtual Interval argmin() const = 0;
};

using ScalarFunctionPtr = std::shared_ptr<const ScalarFunction>;

}  // namespace ftmao
