#pragma once

// The paper's "admissible" local cost function h : R -> R (Section 2):
//   (i)   convex and continuously differentiable,
//   (ii)  argmin h is non-empty and compact,
//   (iii) |h'(x)| <= L everywhere, and h' is L-Lipschitz.
//
// ScalarFunction is the abstract interface; concrete admissible families
// live in functions.hpp. gradient_bound() and lipschitz_bound() report
// per-instance constants (the algorithm analysis uses the max over the
// system). argmin() must return the exact minimizing interval; numeric
// cross-checks live in opt/argmin.hpp and func/validate.hpp.

#include <algorithm>
#include <memory>

#include "common/interval.hpp"

namespace ftmao {

/// Closed-form descriptor of a derivative composed only of +, −, ×, ÷
/// and compares — the shape shared by the quadratic-core families with
/// piecewise-linear saturation (Huber, AsymmetricHuber, FlatHuber):
///
///   h'(x) = scale * clamp(min(x − a, 0) + max(x − b, 0), lo, hi)
///
/// with a <= b the flat interval of the residual (a == b == center for a
/// point minimum) and [lo, hi] the saturation band. min/max/clamp use
/// std:: tie semantics, under which min(x−c, 0) + max(x−c, 0) == x − c
/// bit-for-bit for every double x (including ±0 and ±inf), so the
/// descriptor reproduces the virtual derivative() exactly.
///
/// The batched engine (sim/batch_runner) evaluates these descriptors
/// across replica lanes through the SIMD gradient kernel instead of
/// making one virtual derivative() call per agent per replica. Families
/// whose derivative needs transcendentals (LogCosh, SoftplusBasin) or
/// libm selection logic (SmoothAbs's hypot) return an invalid descriptor
/// and keep the virtual path.
struct BatchGradientKernel {
  bool valid = false;
  double a = 0.0;      ///< lower edge of the zero-derivative interval
  double b = 0.0;      ///< upper edge of the zero-derivative interval
  double lo = 0.0;     ///< saturation floor (<= 0)
  double hi = 0.0;     ///< saturation ceiling (>= 0)
  double scale = 0.0;  ///< output multiplier

  /// Scalar reference evaluation — the exact operation sequence the SIMD
  /// lanes replicate. Tests pin this bitwise against derivative().
  double evaluate(double x) const {
    const double below = std::min(x - a, 0.0);
    const double above = std::max(x - b, 0.0);
    return scale * std::clamp(below + above, lo, hi);
  }
};

/// A convex, continuously differentiable cost h with bounded, Lipschitz
/// derivative and compact argmin. Immutable and thread-compatible.
class ScalarFunction {
 public:
  virtual ~ScalarFunction() = default;

  /// h(x).
  virtual double value(double x) const = 0;

  /// h'(x); must be non-decreasing (convexity) and bounded by
  /// gradient_bound() in magnitude.
  virtual double derivative(double x) const = 0;

  /// L such that |h'(x)| <= L for all x.
  virtual double gradient_bound() const = 0;

  /// L' such that |h'(x) - h'(y)| <= L' |x - y| for all x, y.
  virtual double lipschitz_bound() const = 0;

  /// The closed interval argmin_x h(x) (non-empty, compact by
  /// admissibility).
  virtual Interval argmin() const = 0;

  /// Closed-form batch descriptor of h', if h' fits the clamp form above
  /// (then kernel.evaluate(x) == derivative(x) bit-for-bit for every x).
  /// Default: invalid — callers fall back to per-value derivative().
  virtual BatchGradientKernel batch_gradient_kernel() const { return {}; }
};

using ScalarFunctionPtr = std::shared_ptr<const ScalarFunction>;

}  // namespace ftmao
