#pragma once

// The paper's "admissible" local cost function h : R -> R (Section 2):
//   (i)   convex and continuously differentiable,
//   (ii)  argmin h is non-empty and compact,
//   (iii) |h'(x)| <= L everywhere, and h' is L-Lipschitz.
//
// ScalarFunction is the abstract interface; concrete admissible families
// live in functions.hpp. gradient_bound() and lipschitz_bound() report
// per-instance constants (the algorithm analysis uses the max over the
// system). argmin() must return the exact minimizing interval; numeric
// cross-checks live in opt/argmin.hpp and func/validate.hpp.

#include <cstdint>
#include <memory>

#include "common/interval.hpp"

namespace ftmao {

/// Closed-form descriptor of a derivative the SIMD backends can evaluate
/// without a virtual call — one of four shapes, tagged by `kind`:
///
///   kClamp        h'(x) = scale * clamp(min(x−p0, 0) + max(x−p1, 0),
///                                       p2, p3)
///                 (Huber / AsymmetricHuber / FlatHuber: p0 <= p1 is the
///                 flat interval, [p2, p3] the saturation band. min/max/
///                 clamp use std:: tie semantics, under which
///                 min(x−c,0) + max(x−c,0) == x − c bit-for-bit.)
///   kTanh         h'(x) = scale * tanh((x − p0) / p1)          (LogCosh)
///   kSmoothAbs    h'(x) = scale * r / sqrt(r² + p1²), r = x−p0 (SmoothAbs)
///   kSoftplusDiff h'(x) = scale * (σ((x−p1)/p2) − σ((p0−x)/p2))
///                 (SoftplusBasin with basin [p0, p1], width p2)
///
/// The transcendental shapes evaluate tanh/σ through the deterministic
/// polynomial suite (simd/det_math.hpp) — the SAME code the families'
/// own derivative() calls — so every shape reproduces the virtual path
/// bit-for-bit on every backend (simd/simd.hpp determinism contract).
///
/// The batched engines (sim/batch_runner, batch_async_runner,
/// batch_vector_runner) evaluate these descriptors across replica lanes
/// through the SIMD gradient kernels instead of making one virtual
/// derivative() call per agent per replica; rows whose function returns
/// kNone keep the virtual path.
struct BatchGradientKernel {
  enum class Kind : std::uint8_t {
    kNone = 0,      ///< no closed form — use virtual derivative()
    kClamp,         ///< SimdKernels::gradient_clamp
    kTanh,          ///< SimdKernels::gradient_tanh
    kSmoothAbs,     ///< SimdKernels::gradient_smooth_abs
    kSoftplusDiff,  ///< SimdKernels::gradient_softplus_diff
  };

  Kind kind = Kind::kNone;
  double p0 = 0.0;     ///< clamp: flat lo | tanh/smoothabs: center | softplus: a
  double p1 = 0.0;     ///< clamp: flat hi | tanh: width | smoothabs: eps | softplus: b
  double p2 = 0.0;     ///< clamp: saturation floor | softplus: width
  double p3 = 0.0;     ///< clamp: saturation ceiling
  double scale = 0.0;  ///< output multiplier

  bool valid() const { return kind != Kind::kNone; }

  static BatchGradientKernel clamp(double a, double b, double lo, double hi,
                                   double scale) {
    return {Kind::kClamp, a, b, lo, hi, scale};
  }
  static BatchGradientKernel tanh_grad(double center, double width,
                                       double scale) {
    return {Kind::kTanh, center, width, 0.0, 0.0, scale};
  }
  static BatchGradientKernel smooth_abs(double center, double eps,
                                        double scale) {
    return {Kind::kSmoothAbs, center, eps, 0.0, 0.0, scale};
  }
  static BatchGradientKernel softplus_diff(double a, double b, double width,
                                           double scale) {
    return {Kind::kSoftplusDiff, a, b, width, 0.0, scale};
  }

  /// Scalar reference evaluation — the exact operation sequence the SIMD
  /// lanes replicate (out-of-line in functions.cpp; the transcendental
  /// shapes route through simd/det_math). Tests pin this bitwise against
  /// derivative(). Returns 0.0 for kNone.
  double evaluate(double x) const;
};

/// A convex, continuously differentiable cost h with bounded, Lipschitz
/// derivative and compact argmin. Immutable and thread-compatible.
class ScalarFunction {
 public:
  virtual ~ScalarFunction() = default;

  /// h(x).
  virtual double value(double x) const = 0;

  /// h'(x); must be non-decreasing (convexity) and bounded by
  /// gradient_bound() in magnitude.
  virtual double derivative(double x) const = 0;

  /// L such that |h'(x)| <= L for all x.
  virtual double gradient_bound() const = 0;

  /// L' such that |h'(x) - h'(y)| <= L' |x - y| for all x, y.
  virtual double lipschitz_bound() const = 0;

  /// The closed interval argmin_x h(x) (non-empty, compact by
  /// admissibility).
  virtual Interval argmin() const = 0;

  /// Closed-form batch descriptor of h', if h' fits the clamp form above
  /// (then kernel.evaluate(x) == derivative(x) bit-for-bit for every x).
  /// Default: invalid — callers fall back to per-value derivative().
  virtual BatchGradientKernel batch_gradient_kernel() const { return {}; }
};

using ScalarFunctionPtr = std::shared_ptr<const ScalarFunction>;

}  // namespace ftmao
