#pragma once

// Non-negative weighted sums of admissible functions. The paper's "valid"
// global objectives p(x) = sum_i alpha_i h_i(x) (family C, eq. (4)) are
// exactly WeightedSum instances with an admissible weight vector, so this
// type is the representation of C used by core/valid_set.

#include <vector>

#include "func/scalar_function.hpp"

namespace ftmao {

/// One term of a weighted sum.
struct WeightedTerm {
  double weight;             ///< >= 0
  ScalarFunctionPtr function;
};

/// sum_i w_i * h_i with w_i >= 0 and at least one w_i > 0. Admissible
/// whenever all terms are (convexity, bounded/Lipschitz derivative and
/// compact argmin are preserved by conic combinations with positive total
/// mass).
class WeightedSum final : public ScalarFunction {
 public:
  explicit WeightedSum(std::vector<WeightedTerm> terms);

  double value(double x) const override;
  double derivative(double x) const override;
  double gradient_bound() const override { return gradient_bound_; }
  double lipschitz_bound() const override { return lipschitz_bound_; }

  /// Computed numerically from the derivative (leftmost/rightmost zero),
  /// seeded by the hull of the terms' argmins; cached at construction.
  Interval argmin() const override { return argmin_; }

  const std::vector<WeightedTerm>& terms() const { return terms_; }

 private:
  std::vector<WeightedTerm> terms_;
  double gradient_bound_;
  double lipschitz_bound_;
  Interval argmin_;
};

/// Convenience: uniform average (1/k) * sum of k functions — the
/// failure-free global objective (eq. (1)).
WeightedSum uniform_average(const std::vector<ScalarFunctionPtr>& functions);

}  // namespace ftmao
