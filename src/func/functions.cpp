#include "func/functions.hpp"

#include <algorithm>
#include <atomic>

#include "common/contracts.hpp"
#include "simd/det_math.hpp"

namespace ftmao {

namespace {

// Default on: the descriptors and the virtual path compute identical
// bits, so there is no correctness reason to ever disable this — only
// the benches flip it to time the virtual path.
std::atomic<bool> g_transcendental_kernels{true};

}  // namespace

void set_transcendental_batch_kernels_enabled(bool enabled) {
  g_transcendental_kernels.store(enabled, std::memory_order_relaxed);
}

bool transcendental_batch_kernels_enabled() {
  return g_transcendental_kernels.load(std::memory_order_relaxed);
}

// ---------------------------------------------- BatchGradientKernel

double BatchGradientKernel::evaluate(double x) const {
  switch (kind) {
    case Kind::kClamp: {
      const double below = std::min(x - p0, 0.0);
      const double above = std::max(x - p1, 0.0);
      return scale * std::clamp(below + above, p2, p3);
    }
    case Kind::kTanh:
      return detmath::grad_tanh(x, p0, p1, scale);
    case Kind::kSmoothAbs:
      return detmath::grad_smooth_abs(x, p0, p1, scale);
    case Kind::kSoftplusDiff:
      return detmath::grad_softplus_diff(x, p0, p1, p2, scale);
    case Kind::kNone:
      break;
  }
  return 0.0;
}

// ---------------------------------------------------------------- Huber

Huber::Huber(double center, double delta, double scale)
    : center_(center), delta_(delta), scale_(scale) {
  FTMAO_EXPECTS(delta > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double Huber::value(double x) const {
  const double r = x - center_;
  const double ar = std::abs(r);
  if (ar <= delta_) return scale_ * 0.5 * r * r;
  return scale_ * delta_ * (ar - 0.5 * delta_);
}

double Huber::derivative(double x) const {
  const double r = x - center_;
  return scale_ * std::clamp(r, -delta_, delta_);
}

// -------------------------------------------------------------- LogCosh

LogCosh::LogCosh(double center, double width, double scale)
    : center_(center), width_(width), scale_(scale) {
  FTMAO_EXPECTS(width > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double LogCosh::value(double x) const {
  return detmath::val_log_cosh(x, center_, width_, scale_);
}

double LogCosh::derivative(double x) const {
  return detmath::grad_tanh(x, center_, width_, scale_);
}

BatchGradientKernel LogCosh::batch_gradient_kernel() const {
  if (!transcendental_batch_kernels_enabled()) return {};
  return BatchGradientKernel::tanh_grad(center_, width_, scale_);
}

// ------------------------------------------------------------ SmoothAbs

SmoothAbs::SmoothAbs(double center, double eps, double scale)
    : center_(center), eps_(eps), scale_(scale) {
  FTMAO_EXPECTS(eps > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double SmoothAbs::value(double x) const {
  return detmath::val_smooth_abs(x, center_, eps_, scale_);
}

double SmoothAbs::derivative(double x) const {
  return detmath::grad_smooth_abs(x, center_, eps_, scale_);
}

BatchGradientKernel SmoothAbs::batch_gradient_kernel() const {
  if (!transcendental_batch_kernels_enabled()) return {};
  return BatchGradientKernel::smooth_abs(center_, eps_, scale_);
}

// ------------------------------------------------------------ FlatHuber

FlatHuber::FlatHuber(Interval flat, double delta, double scale)
    : flat_(flat), delta_(delta), scale_(scale) {
  FTMAO_EXPECTS(delta > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double FlatHuber::value(double x) const {
  const double d = flat_.distance_to(x);
  if (d <= delta_) return scale_ * 0.5 * d * d;
  return scale_ * delta_ * (d - 0.5 * delta_);
}

double FlatHuber::derivative(double x) const {
  double signed_dist = 0.0;
  if (x < flat_.lo()) signed_dist = x - flat_.lo();
  if (x > flat_.hi()) signed_dist = x - flat_.hi();
  return scale_ * std::clamp(signed_dist, -delta_, delta_);
}

// ------------------------------------------------------ AsymmetricHuber

AsymmetricHuber::AsymmetricHuber(double center, double delta_neg,
                                 double delta_pos, double scale)
    : center_(center),
      delta_neg_(delta_neg),
      delta_pos_(delta_pos),
      scale_(scale) {
  FTMAO_EXPECTS(delta_neg > 0.0);
  FTMAO_EXPECTS(delta_pos > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double AsymmetricHuber::value(double x) const {
  const double r = x - center_;
  if (r >= delta_pos_)
    return scale_ * delta_pos_ * (r - 0.5 * delta_pos_);
  if (r <= -delta_neg_)
    return scale_ * delta_neg_ * (-r - 0.5 * delta_neg_);
  return scale_ * 0.5 * r * r;
}

double AsymmetricHuber::derivative(double x) const {
  return scale_ * std::clamp(x - center_, -delta_neg_, delta_pos_);
}

// -------------------------------------------------------- SoftplusBasin

SoftplusBasin::SoftplusBasin(double a, double b, double width, double scale)
    : a_(a), b_(b), width_(width), scale_(scale) {
  FTMAO_EXPECTS(a <= b);
  FTMAO_EXPECTS(width > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double SoftplusBasin::value(double x) const {
  return detmath::val_softplus_basin(x, a_, b_, width_, scale_);
}

double SoftplusBasin::derivative(double x) const {
  return detmath::grad_softplus_diff(x, a_, b_, width_, scale_);
}

double SoftplusBasin::lipschitz_bound() const {
  // scale/width * (1/4 + sigma'(g/2)), g = (b-a)/width — see the header
  // for the proof. det_sigmoid_prime keeps the bound's bits
  // platform-independent like every other certificate input.
  const double g = (b_ - a_) / width_;
  const double sp = detmath::det_sigmoid_prime(g / 2.0);
  return scale_ / width_ * (0.25 + sp);
}

BatchGradientKernel SoftplusBasin::batch_gradient_kernel() const {
  if (!transcendental_batch_kernels_enabled()) return {};
  return BatchGradientKernel::softplus_diff(a_, b_, width_, scale_);
}

}  // namespace ftmao
