#include "func/functions.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

// log(cosh(z)) without overflow: for large |z|, cosh(z) ~ e^{|z|}/2.
double log_cosh(double z) {
  const double az = std::abs(z);
  return az + std::log1p(std::exp(-2.0 * az)) - std::log(2.0);
}

// softplus(z) = log(1 + e^z), computed stably on both tails.
double softplus(double z) {
  if (z > 0.0) return z + std::log1p(std::exp(-z));
  return std::log1p(std::exp(z));
}

// Logistic sigmoid, stable on both tails.
double sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

// ---------------------------------------------------------------- Huber

Huber::Huber(double center, double delta, double scale)
    : center_(center), delta_(delta), scale_(scale) {
  FTMAO_EXPECTS(delta > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double Huber::value(double x) const {
  const double r = x - center_;
  const double ar = std::abs(r);
  if (ar <= delta_) return scale_ * 0.5 * r * r;
  return scale_ * delta_ * (ar - 0.5 * delta_);
}

double Huber::derivative(double x) const {
  const double r = x - center_;
  return scale_ * std::clamp(r, -delta_, delta_);
}

// -------------------------------------------------------------- LogCosh

LogCosh::LogCosh(double center, double width, double scale)
    : center_(center), width_(width), scale_(scale) {
  FTMAO_EXPECTS(width > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double LogCosh::value(double x) const {
  return scale_ * width_ * log_cosh((x - center_) / width_);
}

double LogCosh::derivative(double x) const {
  return scale_ * std::tanh((x - center_) / width_);
}

// ------------------------------------------------------------ SmoothAbs

SmoothAbs::SmoothAbs(double center, double eps, double scale)
    : center_(center), eps_(eps), scale_(scale) {
  FTMAO_EXPECTS(eps > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double SmoothAbs::value(double x) const {
  const double r = x - center_;
  return scale_ * (std::hypot(r, eps_) - eps_);
}

double SmoothAbs::derivative(double x) const {
  const double r = x - center_;
  return scale_ * r / std::hypot(r, eps_);
}

// ------------------------------------------------------------ FlatHuber

FlatHuber::FlatHuber(Interval flat, double delta, double scale)
    : flat_(flat), delta_(delta), scale_(scale) {
  FTMAO_EXPECTS(delta > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double FlatHuber::value(double x) const {
  const double d = flat_.distance_to(x);
  if (d <= delta_) return scale_ * 0.5 * d * d;
  return scale_ * delta_ * (d - 0.5 * delta_);
}

double FlatHuber::derivative(double x) const {
  double signed_dist = 0.0;
  if (x < flat_.lo()) signed_dist = x - flat_.lo();
  if (x > flat_.hi()) signed_dist = x - flat_.hi();
  return scale_ * std::clamp(signed_dist, -delta_, delta_);
}

// ------------------------------------------------------ AsymmetricHuber

AsymmetricHuber::AsymmetricHuber(double center, double delta_neg,
                                 double delta_pos, double scale)
    : center_(center),
      delta_neg_(delta_neg),
      delta_pos_(delta_pos),
      scale_(scale) {
  FTMAO_EXPECTS(delta_neg > 0.0);
  FTMAO_EXPECTS(delta_pos > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double AsymmetricHuber::value(double x) const {
  const double r = x - center_;
  if (r >= delta_pos_)
    return scale_ * delta_pos_ * (r - 0.5 * delta_pos_);
  if (r <= -delta_neg_)
    return scale_ * delta_neg_ * (-r - 0.5 * delta_neg_);
  return scale_ * 0.5 * r * r;
}

double AsymmetricHuber::derivative(double x) const {
  return scale_ * std::clamp(x - center_, -delta_neg_, delta_pos_);
}

// -------------------------------------------------------- SoftplusBasin

SoftplusBasin::SoftplusBasin(double a, double b, double width, double scale)
    : a_(a), b_(b), width_(width), scale_(scale) {
  FTMAO_EXPECTS(a <= b);
  FTMAO_EXPECTS(width > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double SoftplusBasin::value(double x) const {
  return scale_ * width_ *
         (softplus((x - b_) / width_) + softplus((a_ - x) / width_));
}

double SoftplusBasin::derivative(double x) const {
  return scale_ * (sigmoid((x - b_) / width_) - sigmoid((a_ - x) / width_));
}

}  // namespace ftmao
