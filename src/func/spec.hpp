#pragma once

// Textual specs for cost functions, so scenarios can be written to and
// read from plain files (reproducible experiment configs, CLI input).
//
// Grammar (whitespace-insensitive, case-sensitive names):
//   huber(center, delta, scale)
//   logcosh(center, width, scale)
//   smoothabs(center, eps, scale)
//   flathuber(lo, hi, delta, scale)
//   softplus(a, b, width, scale)
//   asymhuber(center, delta_neg, delta_pos, scale)
//   abs(center, scale)                      # non-smooth
//
// parse_function throws ContractViolation with a pointed message on any
// malformed spec; to_spec is the exact inverse for all supported types.

#include <string>

#include "func/scalar_function.hpp"

namespace ftmao {

/// Parses one function spec. Throws ContractViolation on syntax errors,
/// unknown names, wrong arity, or invalid parameters.
ScalarFunctionPtr parse_function(const std::string& spec);

/// Renders a supported function back to its spec string. Throws
/// ContractViolation for function types without a spec form.
std::string to_spec(const ScalarFunction& function);

}  // namespace ftmao
