#pragma once

// Non-smooth convex costs — the paper's third open problem (Section 7,
// "Non-smooth cost functions"). These implement ScalarFunction with
// derivative() returning a CHOSEN SUBGRADIENT, so SBG runs unchanged as a
// subgradient method. They intentionally violate the paper's
// admissibility assumption (iii): the derivative is bounded but NOT
// continuous/Lipschitz, so the formal guarantees do not apply — tests and
// bench E14 probe how the algorithm behaves anyway.

#include <vector>

#include "func/scalar_function.hpp"

namespace ftmao {

/// h(x) = scale * |x - center|. Subgradient at the kink: 0 (the standard
/// minimal-norm selection).
class AbsValue final : public ScalarFunction {
 public:
  AbsValue(double center, double scale);

  double value(double x) const override;
  double derivative(double x) const override;  ///< a subgradient
  double gradient_bound() const override { return scale_; }
  /// Formal Lipschitz constant does not exist; reported as the bound on
  /// the subgradient jump over any interval (callers treat it as inf-like).
  double lipschitz_bound() const override { return 2.0 * scale_; }
  Interval argmin() const override { return Interval(center_); }

  double center() const { return center_; }
  double scale() const { return scale_; }

 private:
  double center_;
  double scale_;
};

/// h(x) = max_j (a_j * x + b_j), convex piecewise-linear, with slopes
/// clamped into [-bound, bound] by construction so the subgradients stay
/// bounded. Requires at least one negative and one positive slope so the
/// argmin is compact.
class MaxAffine final : public ScalarFunction {
 public:
  struct Piece {
    double slope;
    double intercept;
  };
  explicit MaxAffine(std::vector<Piece> pieces);

  double value(double x) const override;
  double derivative(double x) const override;  ///< subgradient: active slope
  double gradient_bound() const override { return slope_bound_; }
  double lipschitz_bound() const override { return 2.0 * slope_bound_; }
  Interval argmin() const override { return argmin_; }

 private:
  std::vector<Piece> pieces_;
  double slope_bound_;
  Interval argmin_;
};

}  // namespace ftmao
