#pragma once

// Concrete admissible cost functions (Section 2 of the paper). All have
// globally bounded, Lipschitz derivatives and compact argmin — note that a
// plain quadratic is NOT admissible (unbounded gradient); Huber is its
// admissible counterpart.
//
// The transcendental families (LogCosh, SmoothAbs, SoftplusBasin)
// evaluate through the deterministic polynomial math in simd/det_math —
// NOT libm — so their derivative() is bit-identical to the SIMD batch
// gradient kernels on every backend and platform, and their
// gradient_bound()/lipschitz_bound() are tight for the implementation
// actually running (det_tanh saturates to exactly ±1, so LogCosh's
// bound scale is attained; likewise SmoothAbs's).

#include <algorithm>

#include "func/scalar_function.hpp"

namespace ftmao {

/// Process-wide switch for the transcendental families' devirtualized
/// batch descriptors (default on). When off, LogCosh / SmoothAbs /
/// SoftplusBasin return kNone descriptors and the batch engines take the
/// virtual derivative() path for those rows — numerically identical
/// either way (both paths run the same det-math code), which is exactly
/// what makes it a fair benchmark toggle (bench/e24_transcendental,
/// bench_sweep_json's `transcendental` block). Not thread-safe against
/// concurrent engine construction: flip before building engines.
void set_transcendental_batch_kernels_enabled(bool enabled);
bool transcendental_batch_kernels_enabled();

/// Huber loss around `center`:
///   h(x) = scale * phi(x - center),
///   phi(r) = r^2/2 for |r| <= delta, delta*(|r| - delta/2) otherwise.
/// Quadratic near the optimum, linear in the tails. |h'| <= scale*delta,
/// Lipschitz constant scale, argmin {center}.
class Huber final : public ScalarFunction {
 public:
  Huber(double center, double delta, double scale);

  double value(double x) const override;
  double derivative(double x) const override;
  double gradient_bound() const override { return scale_ * delta_; }
  double lipschitz_bound() const override { return scale_; }
  Interval argmin() const override { return Interval(center_); }
  BatchGradientKernel batch_gradient_kernel() const override {
    return BatchGradientKernel::clamp(center_, center_, -delta_, delta_,
                                      scale_);
  }

  double center() const { return center_; }
  double delta() const { return delta_; }
  double scale() const { return scale_; }

 private:
  double center_;
  double delta_;
  double scale_;
};

/// Log-cosh loss:
///   h(x) = scale * width * log(cosh((x - center)/width)).
/// Smooth everywhere; h'(x) = scale * tanh((x-center)/width). The
/// deterministic tanh saturates to exactly ±1 for |z| >= 20, so
/// gradient_bound() = scale is attained (not just approached); the
/// Lipschitz constant scale/width is attained at the center. Argmin
/// {center}.
class LogCosh final : public ScalarFunction {
 public:
  LogCosh(double center, double width, double scale);

  double value(double x) const override;
  double derivative(double x) const override;
  double gradient_bound() const override { return scale_; }
  double lipschitz_bound() const override { return scale_ / width_; }
  Interval argmin() const override { return Interval(center_); }
  BatchGradientKernel batch_gradient_kernel() const override;

  double center() const { return center_; }
  double width() const { return width_; }
  double scale() const { return scale_; }

 private:
  double center_;
  double width_;
  double scale_;
};

/// Pseudo-Huber / smoothed absolute value:
///   h(x) = scale * (sqrt((x-center)^2 + eps^2) - eps).
/// gradient_bound() = scale is attained in double precision (once
/// eps²/r² drops below one ulp, r/sqrt(r²+eps²) rounds to exactly ±1);
/// the Lipschitz constant scale/eps is h''(center) exactly. Argmin
/// {center}.
class SmoothAbs final : public ScalarFunction {
 public:
  SmoothAbs(double center, double eps, double scale);

  double value(double x) const override;
  double derivative(double x) const override;
  double gradient_bound() const override { return scale_; }
  double lipschitz_bound() const override { return scale_ / eps_; }
  Interval argmin() const override { return Interval(center_); }
  BatchGradientKernel batch_gradient_kernel() const override;

  double center() const { return center_; }
  double eps() const { return eps_; }
  double scale() const { return scale_; }

 private:
  double center_;
  double eps_;
  double scale_;
};

/// Huber loss of the distance to an interval [lo, hi]: identically zero on
/// the interval, Huber growth outside. Its argmin is the full interval —
/// used to exercise non-singleton compact argmin sets, which Lemma 1's
/// geometry depends on.
class FlatHuber final : public ScalarFunction {
 public:
  FlatHuber(Interval flat, double delta, double scale);

  double value(double x) const override;
  double derivative(double x) const override;
  double gradient_bound() const override { return scale_ * delta_; }
  double lipschitz_bound() const override { return scale_; }
  Interval argmin() const override { return flat_; }
  BatchGradientKernel batch_gradient_kernel() const override {
    return BatchGradientKernel::clamp(flat_.lo(), flat_.hi(), -delta_, delta_,
                                      scale_);
  }

  Interval flat() const { return flat_; }
  double delta() const { return delta_; }
  double scale() const { return scale_; }

 private:
  Interval flat_;
  double delta_;
  double scale_;
};

/// Asymmetric Huber: quadratic near `center`, linear tails with DIFFERENT
/// saturation slopes on each side —
///   h'(x) = scale * clamp(x - center, -delta_neg, +delta_pos).
/// Models asymmetric penalties (undershooting cheaper than overshooting),
/// still admissible: convex, C^1, |h'| <= scale * max(deltas), Lipschitz
/// constant scale, argmin {center}.
class AsymmetricHuber final : public ScalarFunction {
 public:
  AsymmetricHuber(double center, double delta_neg, double delta_pos,
                  double scale);

  double value(double x) const override;
  double derivative(double x) const override;
  double gradient_bound() const override {
    return scale_ * std::max(delta_neg_, delta_pos_);
  }
  double lipschitz_bound() const override { return scale_; }
  Interval argmin() const override { return Interval(center_); }
  BatchGradientKernel batch_gradient_kernel() const override {
    return BatchGradientKernel::clamp(center_, center_, -delta_neg_,
                                      delta_pos_, scale_);
  }

  double center() const { return center_; }
  double delta_neg() const { return delta_neg_; }
  double delta_pos() const { return delta_pos_; }
  double scale() const { return scale_; }

 private:
  double center_;
  double delta_neg_;
  double delta_pos_;
  double scale_;
};

/// Two opposing softplus walls:
///   h(x) = scale * width * [softplus((x-b)/width) + softplus((a-x)/width)]
/// with a <= b. Strictly convex with a unique minimizer at (a+b)/2;
/// |h'| < scale. Lipschitz bound (tight up to the sum-splitting):
///   L' = scale/width * (1/4 + sigma'(g/2)),  g = (b-a)/width.
/// Proof: h''(x)*width/scale = sigma'(u) + sigma'(g+u) with u = (x-b)/w.
/// For u >= -g/2, sigma'(u) <= 1/4 and g+u >= g/2 so (sigma' even,
/// decreasing on positives) sigma'(g+u) <= sigma'(g/2); u <= -g/2 is the
/// mirror image with the roles swapped. Equals the old scale/(2*width)
/// at a == b and is strictly tighter for a < b (sigma' evaluated through
/// the deterministic det_sigmoid so the bound pins exactly everywhere).
class SoftplusBasin final : public ScalarFunction {
 public:
  SoftplusBasin(double a, double b, double width, double scale);

  double value(double x) const override;
  double derivative(double x) const override;
  double gradient_bound() const override { return scale_; }
  double lipschitz_bound() const override;
  Interval argmin() const override { return Interval((a_ + b_) / 2.0); }
  BatchGradientKernel batch_gradient_kernel() const override;

  double a() const { return a_; }
  double b() const { return b_; }
  double width() const { return width_; }
  double scale() const { return scale_; }

 private:
  double a_;
  double b_;
  double width_;
  double scale_;
};

}  // namespace ftmao
