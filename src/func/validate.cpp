#include "func/validate.hpp"

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

std::string at(double x) {
  std::ostringstream os;
  os << " at x=" << x;
  return os.str();
}

}  // namespace

ValidationReport validate_admissible(const ScalarFunction& f,
                                     const ValidationOptions& opts) {
  FTMAO_EXPECTS(opts.grid_points >= 2);
  ValidationReport report;

  const double L = f.gradient_bound();
  const double lip = f.lipschitz_bound();
  if (!(L > 0.0)) report.fail("gradient_bound() must be positive");
  if (!(lip > 0.0)) report.fail("lipschitz_bound() must be positive");

  const double lo = opts.domain.lo();
  const double step = opts.domain.length() / (opts.grid_points - 1);

  double prev_g = -std::numeric_limits<double>::infinity();
  double prev_x = lo;
  for (int i = 0; i < opts.grid_points; ++i) {
    const double x = lo + step * i;
    const double g = f.derivative(x);

    if (g < prev_g - opts.tolerance)
      report.fail("derivative decreases (non-convex)" + at(x));
    if (std::abs(g) > L + opts.tolerance)
      report.fail("|h'| exceeds gradient_bound()" + at(x));
    if (i > 0 && std::abs(g - prev_g) > lip * (x - prev_x) + opts.tolerance)
      report.fail("derivative violates Lipschitz bound" + at(x));

    const double fd =
        (f.value(x + opts.fd_step) - f.value(x - opts.fd_step)) /
        (2.0 * opts.fd_step);
    if (std::abs(fd - g) > opts.tolerance * (1.0 + std::abs(g)))
      report.fail("derivative() disagrees with finite difference of value()" +
                  at(x));

    prev_g = g;
    prev_x = x;
  }

  const Interval am = f.argmin();
  if (f.derivative(am.lo() - opts.tolerance) > opts.tolerance)
    report.fail("derivative positive just left of argmin().lo()");
  if (f.derivative(am.hi() + opts.tolerance) < -opts.tolerance)
    report.fail("derivative negative just right of argmin().hi()");
  if (std::abs(f.derivative(am.midpoint())) > opts.tolerance)
    report.fail("derivative not ~0 inside argmin()");

  return report;
}

}  // namespace ftmao
