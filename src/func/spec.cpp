#include "func/spec.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/contracts.hpp"
#include "func/functions.hpp"
#include "func/nonsmooth.hpp"

namespace ftmao {

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw ContractViolation("bad function spec '" + spec + "': " + why);
}

// Splits "name(a, b, c)" into name and numeric args.
struct ParsedSpec {
  std::string name;
  std::vector<double> args;
};

ParsedSpec split_spec(const std::string& spec) {
  std::string compact;
  for (char c : spec) {
    if (!std::isspace(static_cast<unsigned char>(c))) compact.push_back(c);
  }
  const auto open = compact.find('(');
  if (open == std::string::npos || compact.back() != ')')
    bad_spec(spec, "expected name(arg, ...)");
  ParsedSpec out;
  out.name = compact.substr(0, open);
  if (out.name.empty()) bad_spec(spec, "missing function name");

  const std::string body = compact.substr(open + 1, compact.size() - open - 2);
  if (!body.empty()) {
    std::istringstream is(body);
    std::string token;
    while (std::getline(is, token, ',')) {
      try {
        std::size_t consumed = 0;
        out.args.push_back(std::stod(token, &consumed));
        if (consumed != token.size()) throw std::invalid_argument(token);
      } catch (const std::exception&) {
        bad_spec(spec, "'" + token + "' is not a number");
      }
    }
  }
  return out;
}

void expect_arity(const std::string& spec, const ParsedSpec& parsed,
                  std::size_t arity) {
  if (parsed.args.size() != arity)
    bad_spec(spec, parsed.name + " takes " + std::to_string(arity) +
                       " arguments, got " + std::to_string(parsed.args.size()));
}

std::string render(const std::string& name, std::initializer_list<double> args) {
  std::ostringstream os;
  os.precision(17);
  os << name << '(';
  bool first = true;
  for (double a : args) {
    if (!first) os << ", ";
    os << a;
    first = false;
  }
  os << ')';
  return os.str();
}

}  // namespace

ScalarFunctionPtr parse_function(const std::string& spec) {
  const ParsedSpec p = split_spec(spec);
  try {
    if (p.name == "huber") {
      expect_arity(spec, p, 3);
      return std::make_shared<Huber>(p.args[0], p.args[1], p.args[2]);
    }
    if (p.name == "logcosh") {
      expect_arity(spec, p, 3);
      return std::make_shared<LogCosh>(p.args[0], p.args[1], p.args[2]);
    }
    if (p.name == "smoothabs") {
      expect_arity(spec, p, 3);
      return std::make_shared<SmoothAbs>(p.args[0], p.args[1], p.args[2]);
    }
    if (p.name == "flathuber") {
      expect_arity(spec, p, 4);
      return std::make_shared<FlatHuber>(Interval(p.args[0], p.args[1]),
                                         p.args[2], p.args[3]);
    }
    if (p.name == "softplus") {
      expect_arity(spec, p, 4);
      return std::make_shared<SoftplusBasin>(p.args[0], p.args[1], p.args[2],
                                             p.args[3]);
    }
    if (p.name == "asymhuber") {
      expect_arity(spec, p, 4);
      return std::make_shared<AsymmetricHuber>(p.args[0], p.args[1], p.args[2],
                                               p.args[3]);
    }
    if (p.name == "abs") {
      expect_arity(spec, p, 2);
      return std::make_shared<AbsValue>(p.args[0], p.args[1]);
    }
  } catch (const ContractViolation& e) {
    // Parameter-validation failures get the spec context attached.
    bad_spec(spec, e.what());
  }
  bad_spec(spec, "unknown function name '" + p.name + "'");
}

std::string to_spec(const ScalarFunction& function) {
  if (const auto* h = dynamic_cast<const Huber*>(&function))
    return render("huber", {h->center(), h->delta(), h->scale()});
  if (const auto* h = dynamic_cast<const LogCosh*>(&function))
    return render("logcosh", {h->center(), h->width(), h->scale()});
  if (const auto* h = dynamic_cast<const SmoothAbs*>(&function))
    return render("smoothabs", {h->center(), h->eps(), h->scale()});
  if (const auto* h = dynamic_cast<const FlatHuber*>(&function))
    return render("flathuber",
                  {h->flat().lo(), h->flat().hi(), h->delta(), h->scale()});
  if (const auto* h = dynamic_cast<const SoftplusBasin*>(&function))
    return render("softplus", {h->a(), h->b(), h->width(), h->scale()});
  if (const auto* h = dynamic_cast<const AsymmetricHuber*>(&function))
    return render("asymhuber",
                  {h->center(), h->delta_neg(), h->delta_pos(), h->scale()});
  if (const auto* h = dynamic_cast<const AbsValue*>(&function))
    return render("abs", {h->center(), h->scale()});
  throw ContractViolation("function type has no spec form");
}

}  // namespace ftmao
