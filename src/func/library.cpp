#include "func/library.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "func/functions.hpp"

namespace ftmao {

namespace {

double spaced_center(std::size_t i, std::size_t count, double spread) {
  if (count == 1) return 0.0;
  return -spread / 2.0 +
         spread * static_cast<double>(i) / static_cast<double>(count - 1);
}

}  // namespace

std::vector<ScalarFunctionPtr> make_spread_hubers(std::size_t count,
                                                  double spread, double delta,
                                                  double scale) {
  FTMAO_EXPECTS(count >= 1);
  FTMAO_EXPECTS(spread >= 0.0);
  std::vector<ScalarFunctionPtr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(std::make_shared<Huber>(spaced_center(i, count, spread),
                                          delta, scale));
  return out;
}

std::vector<ScalarFunctionPtr> make_mixed_family(std::size_t count,
                                                 double spread) {
  FTMAO_EXPECTS(count >= 1);
  std::vector<ScalarFunctionPtr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double c = spaced_center(i, count, spread);
    switch (i % 4) {
      case 0:
        out.push_back(std::make_shared<Huber>(c, 2.0, 1.0));
        break;
      case 1:
        out.push_back(std::make_shared<LogCosh>(c, 1.0, 1.5));
        break;
      case 2:
        out.push_back(std::make_shared<SmoothAbs>(c, 0.5, 1.0));
        break;
      default:
        out.push_back(
            std::make_shared<FlatHuber>(Interval(c - 0.5, c + 0.5), 2.0, 1.0));
        break;
    }
  }
  return out;
}

std::vector<ScalarFunctionPtr> make_transcendental_family(std::size_t count,
                                                          double spread) {
  FTMAO_EXPECTS(count >= 1);
  std::vector<ScalarFunctionPtr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double c = spaced_center(i, count, spread);
    switch (i % 3) {
      case 0:
        out.push_back(std::make_shared<LogCosh>(c, 1.0, 1.5));
        break;
      case 1:
        out.push_back(std::make_shared<SmoothAbs>(c, 0.5, 1.0));
        break;
      default:
        out.push_back(
            std::make_shared<SoftplusBasin>(c - 0.5, c + 0.5, 0.75, 1.0));
        break;
    }
  }
  return out;
}

std::vector<ScalarFunctionPtr> make_random_family(
    std::size_t count, Rng& rng, const RandomFamilyOptions& opts) {
  FTMAO_EXPECTS(count >= 1);
  FTMAO_EXPECTS(opts.center_lo <= opts.center_hi);
  FTMAO_EXPECTS(0.0 < opts.scale_lo && opts.scale_lo <= opts.scale_hi);
  std::vector<ScalarFunctionPtr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double c = rng.uniform(opts.center_lo, opts.center_hi);
    const double s = rng.uniform(opts.scale_lo, opts.scale_hi);
    const int kinds = opts.include_flat ? 5 : 4;
    switch (rng.uniform_int(0, kinds - 1)) {
      case 0:
        out.push_back(std::make_shared<Huber>(c, rng.uniform(0.5, 3.0), s));
        break;
      case 1:
        out.push_back(std::make_shared<LogCosh>(c, rng.uniform(0.5, 2.0), s));
        break;
      case 2:
        out.push_back(std::make_shared<SmoothAbs>(c, rng.uniform(0.2, 1.0), s));
        break;
      case 3: {
        const double half = rng.uniform(0.1, 1.5);
        out.push_back(std::make_shared<SoftplusBasin>(c - half, c + half,
                                                      rng.uniform(0.3, 1.0), s));
        break;
      }
      default: {
        const double half = rng.uniform(0.1, 1.5);
        out.push_back(std::make_shared<FlatHuber>(Interval(c - half, c + half),
                                                  rng.uniform(0.5, 3.0), s));
        break;
      }
    }
  }
  return out;
}

double family_gradient_bound(const std::vector<ScalarFunctionPtr>& functions) {
  FTMAO_EXPECTS(!functions.empty());
  double L = 0.0;
  for (const auto& f : functions) L = std::max(L, f->gradient_bound());
  return L;
}

}  // namespace ftmao
