#pragma once

// Ready-made families of admissible cost functions for experiments and
// tests: deterministic spreads (centers laid out on a line, so ground
// truth is easy to reason about) and seeded random mixed families (Huber /
// log-cosh / smooth-abs / softplus basins with varied scales).

#include <vector>

#include "common/rng.hpp"
#include "func/scalar_function.hpp"

namespace ftmao {

/// count Huber functions with centers evenly spaced over
/// [-spread/2, +spread/2], identical delta and scale. The uniform average
/// is minimized at 0.
std::vector<ScalarFunctionPtr> make_spread_hubers(std::size_t count,
                                                  double spread,
                                                  double delta = 2.0,
                                                  double scale = 1.0);

/// Deterministic mixed family cycling through the four concrete types with
/// centers evenly spaced over [-spread/2, +spread/2]. Exercises
/// heterogeneous gradient bounds and a flat-bottom argmin.
std::vector<ScalarFunctionPtr> make_mixed_family(std::size_t count,
                                                 double spread);

/// All-transcendental family cycling LogCosh / SmoothAbs / SoftplusBasin
/// with centers evenly spaced over [-spread/2, +spread/2] — every row
/// takes a transcendental gradient, so this is the worst case for the
/// old virtual per-lane path and the workload the batch gradient
/// kernels exist for (bench/e24_transcendental, bench_sweep_json's
/// `transcendental` block).
std::vector<ScalarFunctionPtr> make_transcendental_family(std::size_t count,
                                                          double spread);

struct RandomFamilyOptions {
  double center_lo = -10.0;
  double center_hi = 10.0;
  double scale_lo = 0.5;
  double scale_hi = 2.0;
  bool include_flat = true;  ///< allow interval-argmin functions
};

/// Seeded random family; same (rng seed, options, count) -> same family.
std::vector<ScalarFunctionPtr> make_random_family(
    std::size_t count, Rng& rng, const RandomFamilyOptions& opts = {});

/// max over the family of gradient_bound() — the system-wide L used by the
/// analysis (Lemma 3's 2L disagreement term and the step bounds).
double family_gradient_bound(const std::vector<ScalarFunctionPtr>& functions);

}  // namespace ftmao
