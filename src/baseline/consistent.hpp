#pragma once

// Reliable-broadcast simulation (the centralized-equivalent approach of
// Su-Vaidya ACC'16 [26], discussed after Theorem 2): if every message is
// sent via Byzantine reliable broadcast, a faulty agent can no longer send
// different values to different honest agents. ConsistentWrapper enforces
// exactly that guarantee on any adversary: the wrapped strategy is
// consulted once per round and its answer is replayed verbatim to every
// recipient. Under this restriction the honest states acquire a limit
// (instead of merely consensus-in-the-limit) — exercised by tests/E-series.

#include <optional>

#include "adversary/strategies.hpp"

namespace ftmao {

class ConsistentWrapper final : public SbgAdversary {
 public:
  /// Does not own `inner`; caller keeps it alive.
  explicit ConsistentWrapper(SbgAdversary& inner);

  std::optional<SbgPayload> send_to(AgentId self, AgentId recipient,
                                    const RoundView<SbgPayload>& view) override;

 private:
  SbgAdversary* inner_;
  bool round_valid_ = false;
  Round round_{0};
  std::optional<SbgPayload> round_payload_;
};

}  // namespace ftmao
