#include "baseline/local_gd.hpp"

#include "common/contracts.hpp"

namespace ftmao {

LocalGdAgent::LocalGdAgent(AgentId id, ScalarFunctionPtr cost,
                           double initial_state, const StepSchedule& schedule)
    : id_(id), cost_(std::move(cost)), state_(initial_state), schedule_(&schedule) {
  FTMAO_EXPECTS(cost_ != nullptr);
}

SbgPayload LocalGdAgent::broadcast(Round t) {
  FTMAO_EXPECTS(t.value >= 1);
  return SbgPayload{state_, cost_->derivative(state_)};
}

void LocalGdAgent::step(Round t, std::span<const Received<SbgPayload>>) {
  FTMAO_EXPECTS(t.value >= 1);
  const double lambda = schedule_->at(t.value - 1);
  state_ -= lambda * cost_->derivative(state_);
}

}  // namespace ftmao
