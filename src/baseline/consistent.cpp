#include "baseline/consistent.hpp"

#include "common/contracts.hpp"

namespace ftmao {

ConsistentWrapper::ConsistentWrapper(SbgAdversary& inner) : inner_(&inner) {}

std::optional<SbgPayload> ConsistentWrapper::send_to(
    AgentId self, AgentId recipient, const RoundView<SbgPayload>& view) {
  if (!round_valid_ || round_ != view.round) {
    round_payload_ = inner_->send_to(self, recipient, view);
    round_ = view.round;
    round_valid_ = true;
  }
  return round_payload_;
}

}  // namespace ftmao
