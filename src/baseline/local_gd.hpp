#pragma once

// Local-only gradient descent: each agent minimizes its own cost and never
// communicates. Trivially immune to Byzantine agents but achieves no
// collaboration (its "consensus" error equals the spread of the local
// optima). Lower baseline for E5.

#include <span>

#include "common/types.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"
#include "net/sync.hpp"

namespace ftmao {

class LocalGdAgent final : public SyncNode<SbgPayload> {
 public:
  LocalGdAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
               const StepSchedule& schedule);

  SbgPayload broadcast(Round t) override;
  void step(Round t, std::span<const Received<SbgPayload>> inbox) override;

  AgentId id() const { return id_; }
  double state() const { return state_; }

 private:
  AgentId id_;
  ScalarFunctionPtr cost_;
  double state_;
  const StepSchedule* schedule_;
};

}  // namespace ftmao
