#include "baseline/dgd.hpp"

#include <vector>

#include "common/contracts.hpp"
#include "trim/trim.hpp"

namespace ftmao {

DgdAgent::DgdAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
                   const StepSchedule& schedule, std::size_t n,
                   SbgPayload default_payload)
    : id_(id),
      cost_(std::move(cost)),
      state_(initial_state),
      schedule_(&schedule),
      n_(n),
      default_payload_(default_payload) {
  FTMAO_EXPECTS(cost_ != nullptr);
  FTMAO_EXPECTS(n >= 1);
}

SbgPayload DgdAgent::broadcast(Round t) {
  FTMAO_EXPECTS(t.value >= 1);
  return SbgPayload{state_, cost_->derivative(state_)};
}

void DgdAgent::step(Round t, std::span<const Received<SbgPayload>> inbox) {
  FTMAO_EXPECTS(t.value >= 1);
  FTMAO_EXPECTS(inbox.size() <= n_ - 1);
  std::vector<double> states;
  std::vector<double> gradients;
  states.reserve(n_);
  gradients.reserve(n_);
  states.push_back(state_);
  gradients.push_back(cost_->derivative(state_));
  for (const auto& msg : inbox) {
    states.push_back(msg.payload.state);
    gradients.push_back(msg.payload.gradient);
  }
  const std::size_t missing = (n_ - 1) - inbox.size();
  for (std::size_t i = 0; i < missing; ++i) {
    states.push_back(default_payload_.state);
    gradients.push_back(default_payload_.gradient);
  }
  const double lambda = schedule_->at(t.value - 1);
  state_ = mean(states) - lambda * mean(gradients);
}

}  // namespace ftmao
