#pragma once

// Fault-oblivious distributed gradient descent — the standard failure-free
// algorithm (Nedic-Ozdaglar style consensus + gradient [19], specialised
// to a complete graph): average all states and gradients (no trimming) and
// step. Correct without faults; the E5 benchmark shows a single Byzantine
// agent drives it arbitrarily far, which is the paper's motivation.

#include <span>

#include "common/types.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"
#include "net/sync.hpp"

namespace ftmao {

class DgdAgent final : public SyncNode<SbgPayload> {
 public:
  /// `n` is the total number of agents; missing tuples get the default
  /// payload (same convention as SBG, to keep comparisons apples-to-apples).
  DgdAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
           const StepSchedule& schedule, std::size_t n,
           SbgPayload default_payload = {});

  SbgPayload broadcast(Round t) override;
  void step(Round t, std::span<const Received<SbgPayload>> inbox) override;

  AgentId id() const { return id_; }
  double state() const { return state_; }

 private:
  AgentId id_;
  ScalarFunctionPtr cost_;
  double state_;
  const StepSchedule* schedule_;
  std::size_t n_;
  SbgPayload default_payload_;
};

}  // namespace ftmao
