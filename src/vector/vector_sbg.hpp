#pragma once

// Coordinate-wise SBG for vector arguments — a HEURISTIC for the paper's
// open problem (Section 7, "Vector arguments"): apply the scalar Trim to
// each coordinate of the state and gradient multisets independently.
//
// Inherited guarantee: consensus per coordinate (each coordinate runs the
// scalar recursion, so Lemma 3 applies coordinate-wise). NOT inherited:
// optimality — the coordinate-wise valid set is a box that can contain
// points that are no valid optimum at all, and the true union-of-optima
// set Y_k is non-convex for coupled costs (demonstrated in
// vector_valid.hpp and bench E13).

#include <memory>
#include <span>
#include <vector>

#include "common/interval.hpp"
#include "common/series.hpp"
#include "common/types.hpp"
#include "core/step_size.hpp"
#include "net/sync.hpp"
#include "vector/vec.hpp"
#include "vector/vector_function.hpp"

namespace ftmao {

struct VecPayload {
  Vec state;
  Vec gradient;
};

struct VectorSbgConfig {
  std::size_t n = 0;
  std::size_t f = 0;
  std::size_t dim = 0;
  VecPayload default_payload;  ///< zero vectors of the right dim if empty

  /// Optional per-coordinate box constraint (the Section 6 projection,
  /// coordinate-wise). Either empty (unconstrained) or one interval per
  /// coordinate.
  std::vector<Interval> constraint;

  void validate() const;
};

class VectorSbgAgent final : public SyncNode<VecPayload> {
 public:
  VectorSbgAgent(AgentId id, VectorFunctionPtr cost, Vec initial_state,
                 const StepSchedule& schedule, const VectorSbgConfig& config);

  VecPayload broadcast(Round t) override;
  void step(Round t, std::span<const Received<VecPayload>> inbox) override;

  AgentId id() const { return id_; }
  const Vec& state() const { return state_; }

 private:
  AgentId id_;
  VectorFunctionPtr cost_;
  Vec state_;
  const StepSchedule* schedule_;
  VectorSbgConfig config_;
};

/// Byzantine behaviour for the vector algorithm, mirroring the scalar
/// strategy interface.
class VectorAdversary {
 public:
  virtual ~VectorAdversary() = default;
  virtual std::optional<VecPayload> send_to(AgentId self, AgentId recipient,
                                            const RoundView<VecPayload>& view) = 0;
};

/// Adapter so VectorAdversary implementations plug into the engine.
class VectorByzantineNode final : public ByzantineNode<VecPayload> {
 public:
  explicit VectorByzantineNode(VectorAdversary& adversary);
  std::optional<VecPayload> send_to(AgentId self, AgentId recipient,
                                    const RoundView<VecPayload>& view) override;

 private:
  VectorAdversary* adversary_;
};

/// Split-brain in every coordinate: +/-magnitude depending on recipient
/// parity, alternating sign per coordinate.
class VectorSplitBrain final : public VectorAdversary {
 public:
  VectorSplitBrain(std::size_t dim, double state_magnitude,
                   double gradient_magnitude);
  std::optional<VecPayload> send_to(AgentId, AgentId recipient,
                                    const RoundView<VecPayload>&) override;

 private:
  std::size_t dim_;
  double state_magnitude_;
  double gradient_magnitude_;
};

struct VectorRunResult {
  Series disagreement;  ///< L-inf diameter of honest states per round
  std::vector<Vec> final_states;
  Vec failure_free_optimum;  ///< argmin of the honest uniform average
  Series dist_to_average_optimum;  ///< max_j ||x_j - that optimum||
};

/// Runs coordinate-wise SBG with `byzantine_count` faulty agents driven by
/// `adversary` (may be null -> silent).
VectorRunResult run_vector_sbg(const VectorSbgConfig& config,
                               const std::vector<VectorFunctionPtr>& honest_costs,
                               const std::vector<Vec>& honest_initial,
                               std::size_t byzantine_count,
                               VectorAdversary* adversary,
                               const StepSchedule& schedule,
                               std::size_t rounds);

}  // namespace ftmao
