#include "vector/vec.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace ftmao {

Vec::Vec(std::size_t dim, double fill) : data_(dim, fill) {}

Vec::Vec(std::initializer_list<double> values) : data_(values) {}

double Vec::operator[](std::size_t i) const {
  FTMAO_EXPECTS(i < data_.size());
  return data_[i];
}

double& Vec::operator[](std::size_t i) {
  FTMAO_EXPECTS(i < data_.size());
  return data_[i];
}

Vec& Vec::operator+=(const Vec& other) {
  FTMAO_EXPECTS(dim() == other.dim());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& other) {
  FTMAO_EXPECTS(dim() == other.dim());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vec& Vec::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Vec::dot(const Vec& other) const {
  FTMAO_EXPECTS(dim() == other.dim());
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * other.data_[i];
  return acc;
}

double Vec::norm2() const { return std::sqrt(dot(*this)); }

double Vec::norm_inf() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

double Vec::distance_to(const Vec& other) const {
  Vec diff = *this;
  diff -= other;
  return diff.norm2();
}

}  // namespace ftmao
