#pragma once

// Coordinate-wise liftings of the scalar Byzantine strategies
// (adversary/strategies.hpp) to the vector algorithm: each strategy
// applies the scalar payload derivation to every coordinate of the
// honest broadcasts independently, so at dim == 1 every lifting is
// bit-identical to its scalar counterpart (the d=1 collapse the batched
// vector engine's tests pin).
//
// View-derived strategies (hull-edge, sign-flip, pull-to-target,
// flip-flop, the dormant phase of delayed activation) are recipient-
// independent and memoize the whole d-dimensional payload per round via
// BasicRoundPayloadCache<VecPayload> — one derivation per round, replayed
// for the other n-1 recipients, exactly like the scalar
// RoundPayloadCache. Recipient-dependent (split-brain) and stateful
// (random-noise) strategies are never cached.

#include <memory>
#include <optional>

#include "adversary/strategies.hpp"
#include "common/rng.hpp"
#include "vector/vector_sbg.hpp"

namespace ftmao {

using VecPayloadCache = BasicRoundPayloadCache<VecPayload>;

/// Omission in every coordinate: recipients substitute the default tuple.
class VectorSilent final : public VectorAdversary {
 public:
  std::optional<VecPayload> send_to(AgentId, AgentId,
                                    const RoundView<VecPayload>&) override;
};

/// The same fixed tuple to everyone, every round; the per-coordinate sign
/// alternates like VectorSplitBrain's so the payload is not a scaled
/// all-ones vector (dim == 1 matches the scalar FixedValueAdversary).
class VectorFixedValue final : public VectorAdversary {
 public:
  VectorFixedValue(std::size_t dim, double state_magnitude,
                   double gradient_magnitude);
  std::optional<VecPayload> send_to(AgentId, AgentId,
                                    const RoundView<VecPayload>&) override;

 private:
  VecPayload payload_;
};

/// Per-coordinate hull edge: the extreme honest state paired with the
/// opposite-extreme honest gradient, coordinate by coordinate. Cached.
class VectorHullEdge final : public VectorAdversary {
 public:
  explicit VectorHullEdge(bool push_up);
  std::optional<VecPayload> send_to(AgentId, AgentId,
                                    const RoundView<VecPayload>&) override;

 private:
  bool push_up_;
  VecPayloadCache cache_;
};

/// Independent uniform noise per (recipient, round, coordinate);
/// deterministic per seed. Draws all state coordinates, then all
/// gradient coordinates (dim == 1 reproduces the scalar draw order).
class VectorRandomNoise final : public VectorAdversary {
 public:
  VectorRandomNoise(Rng rng, std::size_t dim, double state_range,
                    double gradient_range);
  std::optional<VecPayload> send_to(AgentId, AgentId,
                                    const RoundView<VecPayload>&) override;

 private:
  Rng rng_;
  std::size_t dim_;
  double state_range_;
  double gradient_range_;
};

/// Median honest state, negated+amplified mean honest gradient, per
/// coordinate. Cached.
class VectorSignFlip final : public VectorAdversary {
 public:
  explicit VectorSignFlip(double amplification);
  std::optional<VecPayload> send_to(AgentId, AgentId,
                                    const RoundView<VecPayload>&) override;

 private:
  double amplification_;
  VecPayloadCache cache_;
};

/// Drags every coordinate toward the scalar `target` value: states at the
/// target, gradients pointing from the per-coordinate honest median
/// toward it. Cached.
class VectorPullToTarget final : public VectorAdversary {
 public:
  VectorPullToTarget(double target, double gradient_magnitude);
  std::optional<VecPayload> send_to(AgentId, AgentId,
                                    const RoundView<VecPayload>&) override;

 private:
  double target_;
  double gradient_magnitude_;
  VecPayloadCache cache_;
};

/// Sleeper: per-coordinate honest medians (a perfectly plausible agent)
/// until `activation_round`, then the owned late strategy.
class VectorDelayedActivation final : public VectorAdversary {
 public:
  VectorDelayedActivation(Round activation_round,
                          std::unique_ptr<VectorAdversary> late_strategy);
  std::optional<VecPayload> send_to(AgentId self, AgentId recipient,
                                    const RoundView<VecPayload>& view) override;

 private:
  Round activation_;
  std::unique_ptr<VectorAdversary> late_;
  VecPayloadCache dormant_cache_;  ///< active phase delegates uncached
};

/// Oscillator: alternates the per-coordinate extreme-high and extreme-low
/// honest tuple each `period` rounds. Cached.
class VectorFlipFlop final : public VectorAdversary {
 public:
  explicit VectorFlipFlop(std::size_t period = 1);
  std::optional<VecPayload> send_to(AgentId, AgentId,
                                    const RoundView<VecPayload>&) override;

 private:
  std::size_t period_;
  VecPayloadCache cache_;
};

}  // namespace ftmao
