#pragma once

// Admissible cost functions on R^k for the vector extension (the paper's
// open problem). Admissibility mirrors the scalar definition: convex, C^1,
// compact argmin, gradient bounded and Lipschitz.

#include <memory>
#include <vector>

#include "func/scalar_function.hpp"
#include "vector/vec.hpp"

namespace ftmao {

class VectorFunction {
 public:
  virtual ~VectorFunction() = default;

  virtual std::size_t dim() const = 0;
  virtual double value(const Vec& x) const = 0;
  virtual Vec gradient(const Vec& x) const = 0;

  /// Writes gradient(x) into `out` (dim() coordinates) without
  /// allocating. Bit-identical to gradient() — the batched vector engine
  /// calls this once per agent per round in its hot loop. The default
  /// delegates to gradient(); allocation-free overrides must perform the
  /// exact same arithmetic per coordinate.
  virtual void gradient_into(const Vec& x, Vec& out) const { out = gradient(x); }

  /// L with ||grad||_2 <= L everywhere.
  virtual double gradient_bound() const = 0;

  /// Some point in argmin (the argmin need not be a box in general).
  virtual Vec a_minimizer() const = 0;

  /// Per-coordinate closed-form gradient descriptors, if the gradient is
  /// SEPARABLE and every coordinate fits a BatchGradientKernel shape:
  /// appends dim() descriptors to `out` (coordinate order) and returns
  /// true, in which case out[k].evaluate(x[k]) == gradient_into(x)[k]
  /// bit-for-bit for every x. Coupled gradients (RadialHuber,
  /// DirectionalHuber, sums) return false and keep the virtual path in
  /// the batched vector engine. Default: false, `out` untouched.
  virtual bool batch_gradient_kernels(
      std::vector<BatchGradientKernel>& out) const {
    (void)out;
    return false;
  }
};

using VectorFunctionPtr = std::shared_ptr<const VectorFunction>;

/// Separable sum of per-coordinate Hubers centered at c: the benign case
/// where coordinate-wise SBG inherits the scalar guarantees coordinate by
/// coordinate.
class SeparableHuber final : public VectorFunction {
 public:
  SeparableHuber(Vec center, double delta, double scale);

  std::size_t dim() const override { return center_.dim(); }
  double value(const Vec& x) const override;
  Vec gradient(const Vec& x) const override;
  void gradient_into(const Vec& x, Vec& out) const override;
  double gradient_bound() const override;
  Vec a_minimizer() const override { return center_; }
  /// dim() clamp descriptors — gradient_into's per-coordinate
  /// scale * clamp(x[k] - c[k], -delta, delta) in closed form.
  bool batch_gradient_kernels(
      std::vector<BatchGradientKernel>& out) const override;

 private:
  Vec center_;
  double delta_;
  double scale_;
};

/// Huber of the Euclidean distance to a center: h(x) = phi(||x - c||_2).
/// Rotation-invariant — couples the coordinates, which is exactly what
/// makes the vector case hard (the set-Y analogue stops being convex).
class RadialHuber final : public VectorFunction {
 public:
  RadialHuber(Vec center, double delta, double scale);

  std::size_t dim() const override { return center_.dim(); }
  double value(const Vec& x) const override;
  Vec gradient(const Vec& x) const override;
  double gradient_bound() const override { return scale_ * delta_; }
  Vec a_minimizer() const override { return center_; }

 private:
  Vec center_;
  double delta_;
  double scale_;
};

/// Huber of a linear functional: h(x) = phi(u . x - b) with ||u||_2 = 1.
/// Its argmin is the whole hyperplane slab {u.x = b} — unbounded, so this
/// type is NOT admissible alone; it is used in sums with others (the sum's
/// argmin is compact) and to build coupled objectives.
class DirectionalHuber final : public VectorFunction {
 public:
  DirectionalHuber(Vec direction, double offset, double delta, double scale);

  std::size_t dim() const override { return direction_.dim(); }
  double value(const Vec& x) const override;
  Vec gradient(const Vec& x) const override;
  double gradient_bound() const override { return scale_ * delta_; }
  /// A point on the minimizing hyperplane.
  Vec a_minimizer() const override;

 private:
  Vec direction_;  // unit norm
  double offset_;
  double delta_;
  double scale_;
};

/// A scalar admissible cost viewed as a 1-dimensional vector cost — the
/// bridge for the d=1 collapse: a vector-SBG run over ScalarAsVector
/// wrappers performs coordinate arithmetic identical to the scalar
/// engine over the wrapped functions.
class ScalarAsVector final : public VectorFunction {
 public:
  explicit ScalarAsVector(ScalarFunctionPtr f);

  std::size_t dim() const override { return 1; }
  double value(const Vec& x) const override;
  Vec gradient(const Vec& x) const override;
  void gradient_into(const Vec& x, Vec& out) const override;
  double gradient_bound() const override { return scalar_->gradient_bound(); }
  /// Midpoint of the scalar argmin interval.
  Vec a_minimizer() const override;
  /// The wrapped scalar's descriptor (one coordinate), if it has one —
  /// keeps the d=1 collapse on the devirtualized path for every family
  /// the scalar engines devirtualize.
  bool batch_gradient_kernels(
      std::vector<BatchGradientKernel>& out) const override;

  const ScalarFunctionPtr& scalar() const { return scalar_; }

 private:
  ScalarFunctionPtr scalar_;
};

/// Non-negative weighted sum.
class VectorWeightedSum final : public VectorFunction {
 public:
  struct Term {
    double weight;
    VectorFunctionPtr function;
  };
  explicit VectorWeightedSum(std::vector<Term> terms);

  std::size_t dim() const override;
  double value(const Vec& x) const override;
  Vec gradient(const Vec& x) const override;
  double gradient_bound() const override;

  /// Numeric: gradient descent with diminishing steps from the centroid of
  /// the terms' minimizers (adequate for the smooth convex sums used in
  /// tests/benches).
  Vec a_minimizer() const override;

 private:
  std::vector<Term> terms_;
};

}  // namespace ftmao
