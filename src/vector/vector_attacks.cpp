#include "vector/vector_attacks.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

// Per-coordinate helpers mirroring the scalar strategy arithmetic
// operation for operation (strategies.cpp), so dim == 1 payloads are
// bit-identical to the scalar adversaries'.

std::size_t view_dim(const RoundView<VecPayload>& view) {
  return view.honest_broadcasts.front().payload.state.dim();
}

double median_of(std::vector<double> v) {
  FTMAO_EXPECTS(!v.empty());
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

double median_state(const RoundView<VecPayload>& view, std::size_t k) {
  std::vector<double> v;
  v.reserve(view.honest_broadcasts.size());
  for (const auto& msg : view.honest_broadcasts)
    v.push_back(msg.payload.state[k]);
  return median_of(std::move(v));
}

double median_gradient(const RoundView<VecPayload>& view, std::size_t k) {
  std::vector<double> v;
  v.reserve(view.honest_broadcasts.size());
  for (const auto& msg : view.honest_broadcasts)
    v.push_back(msg.payload.gradient[k]);
  return median_of(std::move(v));
}

}  // namespace

// --------------------------------------------------------------- Silent

std::optional<VecPayload> VectorSilent::send_to(AgentId, AgentId,
                                                const RoundView<VecPayload>&) {
  return std::nullopt;
}

// ----------------------------------------------------------- FixedValue

VectorFixedValue::VectorFixedValue(std::size_t dim, double state_magnitude,
                                   double gradient_magnitude) {
  FTMAO_EXPECTS(dim >= 1);
  FTMAO_EXPECTS(state_magnitude >= 0.0);
  FTMAO_EXPECTS(gradient_magnitude >= 0.0);
  payload_.state = Vec(dim);
  payload_.gradient = Vec(dim);
  for (std::size_t k = 0; k < dim; ++k) {
    const double coord_sign = k % 2 == 0 ? 1.0 : -1.0;
    payload_.state[k] = coord_sign * state_magnitude;
    payload_.gradient[k] = coord_sign * gradient_magnitude;
  }
}

std::optional<VecPayload> VectorFixedValue::send_to(
    AgentId, AgentId, const RoundView<VecPayload>&) {
  return payload_;
}

// ------------------------------------------------------------- HullEdge

VectorHullEdge::VectorHullEdge(bool push_up) : push_up_(push_up) {}

std::optional<VecPayload> VectorHullEdge::send_to(
    AgentId, AgentId, const RoundView<VecPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty())
    return cache_.store(view.round, std::nullopt);
  const std::size_t d = view_dim(view);
  VecPayload p{Vec(d), Vec(d)};
  for (std::size_t k = 0; k < d; ++k) {
    double state = view.honest_broadcasts.front().payload.state[k];
    double gradient = view.honest_broadcasts.front().payload.gradient[k];
    for (const auto& msg : view.honest_broadcasts) {
      if (push_up_) {
        state = std::max(state, msg.payload.state[k]);
        gradient = std::min(gradient, msg.payload.gradient[k]);
      } else {
        state = std::min(state, msg.payload.state[k]);
        gradient = std::max(gradient, msg.payload.gradient[k]);
      }
    }
    p.state[k] = state;
    p.gradient[k] = gradient;
  }
  return cache_.store(view.round, std::move(p));
}

// ---------------------------------------------------------- RandomNoise

VectorRandomNoise::VectorRandomNoise(Rng rng, std::size_t dim,
                                     double state_range, double gradient_range)
    : rng_(rng),
      dim_(dim),
      state_range_(state_range),
      gradient_range_(gradient_range) {
  FTMAO_EXPECTS(dim >= 1);
  FTMAO_EXPECTS(state_range >= 0.0);
  FTMAO_EXPECTS(gradient_range >= 0.0);
}

std::optional<VecPayload> VectorRandomNoise::send_to(
    AgentId, AgentId, const RoundView<VecPayload>&) {
  VecPayload p{Vec(dim_), Vec(dim_)};
  for (std::size_t k = 0; k < dim_; ++k)
    p.state[k] = rng_.uniform(-state_range_, state_range_);
  for (std::size_t k = 0; k < dim_; ++k)
    p.gradient[k] = rng_.uniform(-gradient_range_, gradient_range_);
  return p;
}

// ------------------------------------------------------------- SignFlip

VectorSignFlip::VectorSignFlip(double amplification)
    : amplification_(amplification) {
  FTMAO_EXPECTS(amplification > 0.0);
}

std::optional<VecPayload> VectorSignFlip::send_to(
    AgentId, AgentId, const RoundView<VecPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty())
    return cache_.store(view.round, std::nullopt);
  const std::size_t d = view_dim(view);
  VecPayload p{Vec(d), Vec(d)};
  for (std::size_t k = 0; k < d; ++k) {
    double mean_gradient = 0.0;
    for (const auto& msg : view.honest_broadcasts)
      mean_gradient += msg.payload.gradient[k];
    mean_gradient /= static_cast<double>(view.honest_broadcasts.size());
    p.state[k] = median_state(view, k);
    p.gradient[k] = -amplification_ * mean_gradient;
  }
  return cache_.store(view.round, std::move(p));
}

// --------------------------------------------------------- PullToTarget

VectorPullToTarget::VectorPullToTarget(double target, double gradient_magnitude)
    : target_(target), gradient_magnitude_(gradient_magnitude) {
  FTMAO_EXPECTS(gradient_magnitude >= 0.0);
}

std::optional<VecPayload> VectorPullToTarget::send_to(
    AgentId, AgentId, const RoundView<VecPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty()) {
    // No observations: announce the target with a flat gradient. The dim
    // is unknown without broadcasts, so this arm only arises in direct
    // unit-test calls; engines always pass a non-empty honest view.
    return cache_.store(view.round, std::nullopt);
  }
  const std::size_t d = view_dim(view);
  VecPayload p{Vec(d), Vec(d)};
  for (std::size_t k = 0; k < d; ++k) {
    const double median = median_state(view, k);
    const double direction = median > target_ ? 1.0 : -1.0;
    p.state[k] = target_;
    p.gradient[k] = direction * gradient_magnitude_;
  }
  return cache_.store(view.round, std::move(p));
}

// ---------------------------------------------------- DelayedActivation

VectorDelayedActivation::VectorDelayedActivation(
    Round activation_round, std::unique_ptr<VectorAdversary> late_strategy)
    : activation_(activation_round), late_(std::move(late_strategy)) {
  FTMAO_EXPECTS(late_ != nullptr);
}

std::optional<VecPayload> VectorDelayedActivation::send_to(
    AgentId self, AgentId recipient, const RoundView<VecPayload>& view) {
  if (view.round >= activation_) return late_->send_to(self, recipient, view);
  if (!dormant_cache_.fresh(view.round)) return dormant_cache_.get();
  if (view.honest_broadcasts.empty())
    return dormant_cache_.store(view.round, std::nullopt);
  const std::size_t d = view_dim(view);
  VecPayload p{Vec(d), Vec(d)};
  for (std::size_t k = 0; k < d; ++k) {
    p.state[k] = median_state(view, k);
    p.gradient[k] = median_gradient(view, k);
  }
  return dormant_cache_.store(view.round, std::move(p));
}

// ------------------------------------------------------------- FlipFlop

VectorFlipFlop::VectorFlipFlop(std::size_t period) : period_(period) {
  FTMAO_EXPECTS(period >= 1);
}

std::optional<VecPayload> VectorFlipFlop::send_to(
    AgentId, AgentId, const RoundView<VecPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty())
    return cache_.store(view.round, std::nullopt);
  const bool high = (view.round.value / period_) % 2 == 0;
  const std::size_t d = view_dim(view);
  VecPayload p{Vec(d), Vec(d)};
  for (std::size_t k = 0; k < d; ++k) {
    double state = view.honest_broadcasts.front().payload.state[k];
    double gradient = view.honest_broadcasts.front().payload.gradient[k];
    for (const auto& msg : view.honest_broadcasts) {
      if (high) {
        state = std::max(state, msg.payload.state[k]);
        gradient = std::min(gradient, msg.payload.gradient[k]);
      } else {
        state = std::min(state, msg.payload.state[k]);
        gradient = std::max(gradient, msg.payload.gradient[k]);
      }
    }
    p.state[k] = state;
    p.gradient[k] = gradient;
  }
  return cache_.store(view.round, std::move(p));
}

}  // namespace ftmao
