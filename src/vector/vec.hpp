#pragma once

// Minimal dense vector for the R^k extension (k is small — 2 or 3 in the
// experiments — so a thin wrapper over std::vector<double> is all the
// linear algebra this needs).

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace ftmao {

class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t dim, double fill = 0.0);
  Vec(std::initializer_list<double> values);

  std::size_t dim() const { return data_.size(); }
  double operator[](std::size_t i) const;
  double& operator[](std::size_t i);

  Vec& operator+=(const Vec& other);
  Vec& operator-=(const Vec& other);
  Vec& operator*=(double s);

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(double s, Vec a) { return a *= s; }

  friend bool operator==(const Vec&, const Vec&) = default;

  double dot(const Vec& other) const;
  double norm2() const;                    ///< Euclidean norm
  double norm_inf() const;                 ///< max |coordinate|
  double distance_to(const Vec& other) const;  ///< Euclidean

  const std::vector<double>& data() const { return data_; }

 private:
  std::vector<double> data_;
};

}  // namespace ftmao
