#include "vector/vector_function.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

// Scalar Huber pieces shared by the vector types.
double huber_value(double r, double delta) {
  const double ar = std::abs(r);
  if (ar <= delta) return 0.5 * r * r;
  return delta * (ar - 0.5 * delta);
}

double huber_slope(double r, double delta) {
  return std::clamp(r, -delta, delta);
}

}  // namespace

// --------------------------------------------------------- SeparableHuber

SeparableHuber::SeparableHuber(Vec center, double delta, double scale)
    : center_(std::move(center)), delta_(delta), scale_(scale) {
  FTMAO_EXPECTS(center_.dim() >= 1);
  FTMAO_EXPECTS(delta > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double SeparableHuber::value(const Vec& x) const {
  FTMAO_EXPECTS(x.dim() == dim());
  double v = 0.0;
  for (std::size_t k = 0; k < dim(); ++k)
    v += huber_value(x[k] - center_[k], delta_);
  return scale_ * v;
}

Vec SeparableHuber::gradient(const Vec& x) const {
  Vec g(dim());
  gradient_into(x, g);
  return g;
}

void SeparableHuber::gradient_into(const Vec& x, Vec& out) const {
  FTMAO_EXPECTS(x.dim() == dim());
  FTMAO_EXPECTS(out.dim() == dim());
  for (std::size_t k = 0; k < dim(); ++k)
    out[k] = scale_ * huber_slope(x[k] - center_[k], delta_);
}

double SeparableHuber::gradient_bound() const {
  return scale_ * delta_ * std::sqrt(static_cast<double>(dim()));
}

bool SeparableHuber::batch_gradient_kernels(
    std::vector<BatchGradientKernel>& out) const {
  // huber_slope(r, delta) == clamp(min(r,0) + max(r,0), -delta, delta)
  // bit-for-bit (std tie semantics make min+max the identity on r), so
  // the clamp descriptor reproduces gradient_into exactly.
  for (std::size_t k = 0; k < dim(); ++k)
    out.push_back(BatchGradientKernel::clamp(center_[k], center_[k], -delta_,
                                             delta_, scale_));
  return true;
}

// ------------------------------------------------------------ RadialHuber

RadialHuber::RadialHuber(Vec center, double delta, double scale)
    : center_(std::move(center)), delta_(delta), scale_(scale) {
  FTMAO_EXPECTS(center_.dim() >= 1);
  FTMAO_EXPECTS(delta > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
}

double RadialHuber::value(const Vec& x) const {
  FTMAO_EXPECTS(x.dim() == dim());
  return scale_ * huber_value(x.distance_to(center_), delta_);
}

Vec RadialHuber::gradient(const Vec& x) const {
  FTMAO_EXPECTS(x.dim() == dim());
  Vec diff = x;
  diff -= center_;
  const double r = diff.norm2();
  if (r == 0.0) return Vec(dim(), 0.0);
  return (scale_ * huber_slope(r, delta_) / r) * diff;
}

// ------------------------------------------------------- DirectionalHuber

DirectionalHuber::DirectionalHuber(Vec direction, double offset, double delta,
                                   double scale)
    : direction_(std::move(direction)),
      offset_(offset),
      delta_(delta),
      scale_(scale) {
  FTMAO_EXPECTS(direction_.dim() >= 1);
  FTMAO_EXPECTS(delta > 0.0);
  FTMAO_EXPECTS(scale > 0.0);
  const double norm = direction_.norm2();
  FTMAO_EXPECTS(norm > 0.0);
  direction_ *= 1.0 / norm;
}

double DirectionalHuber::value(const Vec& x) const {
  FTMAO_EXPECTS(x.dim() == dim());
  return scale_ * huber_value(direction_.dot(x) - offset_, delta_);
}

Vec DirectionalHuber::gradient(const Vec& x) const {
  FTMAO_EXPECTS(x.dim() == dim());
  return (scale_ * huber_slope(direction_.dot(x) - offset_, delta_)) *
         direction_;
}

Vec DirectionalHuber::a_minimizer() const { return offset_ * direction_; }

// --------------------------------------------------------- ScalarAsVector

ScalarAsVector::ScalarAsVector(ScalarFunctionPtr f) : scalar_(std::move(f)) {
  FTMAO_EXPECTS(scalar_ != nullptr);
}

double ScalarAsVector::value(const Vec& x) const {
  FTMAO_EXPECTS(x.dim() == 1);
  return scalar_->value(x[0]);
}

Vec ScalarAsVector::gradient(const Vec& x) const {
  Vec g(1);
  gradient_into(x, g);
  return g;
}

void ScalarAsVector::gradient_into(const Vec& x, Vec& out) const {
  FTMAO_EXPECTS(x.dim() == 1);
  FTMAO_EXPECTS(out.dim() == 1);
  out[0] = scalar_->derivative(x[0]);
}

Vec ScalarAsVector::a_minimizer() const {
  return Vec(1, scalar_->argmin().midpoint());
}

bool ScalarAsVector::batch_gradient_kernels(
    std::vector<BatchGradientKernel>& out) const {
  const BatchGradientKernel k = scalar_->batch_gradient_kernel();
  if (!k.valid()) return false;
  out.push_back(k);
  return true;
}

// ------------------------------------------------------ VectorWeightedSum

VectorWeightedSum::VectorWeightedSum(std::vector<Term> terms)
    : terms_(std::move(terms)) {
  FTMAO_EXPECTS(!terms_.empty());
  double total = 0.0;
  for (const auto& t : terms_) {
    FTMAO_EXPECTS(t.weight >= 0.0);
    FTMAO_EXPECTS(t.function != nullptr);
    FTMAO_EXPECTS(t.function->dim() == terms_.front().function->dim());
    total += t.weight;
  }
  FTMAO_EXPECTS(total > 0.0);
}

std::size_t VectorWeightedSum::dim() const {
  return terms_.front().function->dim();
}

double VectorWeightedSum::value(const Vec& x) const {
  double v = 0.0;
  for (const auto& t : terms_) v += t.weight * t.function->value(x);
  return v;
}

Vec VectorWeightedSum::gradient(const Vec& x) const {
  Vec g(dim());
  for (const auto& t : terms_) {
    Vec gi = t.function->gradient(x);
    gi *= t.weight;
    g += gi;
  }
  return g;
}

double VectorWeightedSum::gradient_bound() const {
  double b = 0.0;
  for (const auto& t : terms_) b += t.weight * t.function->gradient_bound();
  return b;
}

Vec VectorWeightedSum::a_minimizer() const {
  // Diminishing-step gradient descent from the weighted centroid of the
  // terms' minimizers; smooth convex objectives make this reliable.
  Vec x(dim(), 0.0);
  double total = 0.0;
  for (const auto& t : terms_) {
    if (t.weight <= 0.0) continue;
    Vec mi = t.function->a_minimizer();
    mi *= t.weight;
    x += mi;
    total += t.weight;
  }
  x *= 1.0 / total;

  // Polyak-free fallback: scale steps to the inverse gradient bound.
  const double step0 = 1.0 / std::max(gradient_bound(), 1e-9);
  for (int t = 1; t <= 20000; ++t) {
    Vec g = gradient(x);
    if (g.norm2() < 1e-10) break;
    g *= step0 * 10.0 / static_cast<double>(t);
    x -= g;
  }
  return x;
}

}  // namespace ftmao
