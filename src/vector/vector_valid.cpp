#include "vector/vector_valid.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"
#include "lp/simplex.hpp"

namespace ftmao {

namespace {

// Lexicographic subset iterator over gamma-subsets of {0..m-1}.
bool next_combination(std::vector<std::size_t>& idx, std::size_t m) {
  const std::size_t gamma = idx.size();
  std::size_t k = gamma;
  while (k > 0) {
    --k;
    if (idx[k] != k + m - gamma) {
      ++idx[k];
      for (std::size_t j = k + 1; j < gamma; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

// Feasibility: alpha >= 0, sum = 1, |sum alpha_i g_i[d]| <= tol for all d,
// alpha_i >= beta on the subset.
bool subset_feasible(const std::vector<Vec>& grads,
                     const std::vector<std::size_t>& subset, double beta,
                     double tolerance) {
  const std::size_t m = grads.size();
  const std::size_t dim = grads.front().dim();
  lp::Problem p;
  p.num_vars = m;
  p.add(std::vector<double>(m, 1.0), lp::Relation::Eq, 1.0);
  for (std::size_t d = 0; d < dim; ++d) {
    std::vector<double> row(m);
    for (std::size_t i = 0; i < m; ++i) row[i] = grads[i][d];
    p.add(row, lp::Relation::LessEq, tolerance);
    p.add(std::move(row), lp::Relation::GreaterEq, -tolerance);
  }
  for (std::size_t i : subset) {
    std::vector<double> row(m, 0.0);
    row[i] = 1.0;
    p.add(std::move(row), lp::Relation::GreaterEq, beta);
  }
  return lp::solve(p).feasible();
}

}  // namespace

bool is_valid_vector_optimum(const Vec& x,
                             const std::vector<VectorFunctionPtr>& functions,
                             std::size_t f, double tolerance) {
  const std::size_t m = functions.size();
  FTMAO_EXPECTS(m > 2 * f);
  const std::size_t gamma = m - f;
  const double beta = 1.0 / (2.0 * static_cast<double>(gamma));

  std::vector<Vec> grads;
  grads.reserve(m);
  for (const auto& fn : functions) grads.push_back(fn->gradient(x));

  std::vector<std::size_t> subset(gamma);
  std::iota(subset.begin(), subset.end(), 0);
  do {
    if (subset_feasible(grads, subset, beta, tolerance)) return true;
  } while (next_combination(subset, m));
  return false;
}

Vec random_valid_optimum(const std::vector<VectorFunctionPtr>& functions,
                         std::size_t f, Rng& rng) {
  const std::size_t m = functions.size();
  FTMAO_EXPECTS(m > 2 * f);
  const std::size_t gamma = m - f;
  const double beta = 1.0 / (2.0 * static_cast<double>(gamma));

  // Random gamma-support, beta each, remaining mass spread randomly.
  std::vector<std::size_t> perm(m);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = 0; i < gamma; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(m - 1)));
    std::swap(perm[i], perm[j]);
  }
  std::vector<double> weights(m, 0.0);
  for (std::size_t i = 0; i < gamma; ++i) weights[perm[i]] = beta;
  double remaining = 1.0 - static_cast<double>(gamma) * beta;
  std::vector<double> cuts(gamma);
  double total = 0.0;
  for (auto& c : cuts) {
    c = rng.uniform(0.0, 1.0);
    total += c;
  }
  for (std::size_t i = 0; i < gamma && total > 0.0; ++i)
    weights[perm[i]] += remaining * cuts[i] / total;

  std::vector<VectorWeightedSum::Term> terms;
  for (std::size_t i = 0; i < m; ++i)
    if (weights[i] > 0.0) terms.push_back({weights[i], functions[i]});
  return VectorWeightedSum(std::move(terms)).a_minimizer();
}

std::optional<ConvexityCounterexample> find_nonconvexity(
    const std::vector<VectorFunctionPtr>& functions, std::size_t f, Rng& rng,
    std::size_t samples, double tolerance) {
  std::vector<Vec> optima;
  optima.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s)
    optima.push_back(random_valid_optimum(functions, f, rng));

  for (std::size_t a = 0; a < optima.size(); ++a) {
    for (std::size_t b = a + 1; b < optima.size(); ++b) {
      Vec mid = optima[a] + optima[b];
      mid *= 0.5;
      if (optima[a].distance_to(optima[b]) < 0.1) continue;  // too close
      if (!is_valid_vector_optimum(mid, functions, f, tolerance)) {
        // Confirm the endpoints really are valid (their construction is
        // numeric) before certifying the counterexample.
        if (is_valid_vector_optimum(optima[a], functions, f, 1e-3) &&
            is_valid_vector_optimum(optima[b], functions, f, 1e-3)) {
          return ConvexityCounterexample{optima[a], optima[b], mid};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace ftmao
