#pragma once

// The vector analogue of the valid-optima set Y and the machinery to
// demonstrate the paper's key geometric obstruction: in R^k (k >= 2), Y is
// NOT convex in general, which is why the scalar convergence proof does
// not extend (Section 7, "Vector arguments" / Lemma 1 discussion).
//
// Membership test: x is a valid optimum iff there exists a
// (1/(2(m-f)), m-f)-admissible alpha with sum_i alpha_i grad h_i(x) = 0 —
// an LP feasibility problem over support subsets, solved with src/lp.

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "vector/vector_function.hpp"

namespace ftmao {

/// Is `x` an optimum of some valid (admissibly weighted) combination of
/// the non-faulty costs? Exact subset enumeration (small m only).
/// `tolerance` bounds ||sum alpha_i grad_i||_inf.
bool is_valid_vector_optimum(const Vec& x,
                             const std::vector<VectorFunctionPtr>& functions,
                             std::size_t f, double tolerance = 1e-6);

/// Minimizer of a random admissible combination (gamma-support weights as
/// in ValidFamily::random_admissible_weights).
Vec random_valid_optimum(const std::vector<VectorFunctionPtr>& functions,
                         std::size_t f, Rng& rng);

struct ConvexityCounterexample {
  Vec a;         ///< valid optimum
  Vec b;         ///< valid optimum
  Vec midpoint;  ///< (a+b)/2, NOT a valid optimum
};

/// Searches for two valid optima whose midpoint fails the membership test
/// — a certificate that the vector Y is non-convex. Returns nullopt if
/// `samples` random pairs all have valid midpoints (e.g. for separable
/// costs, where Y is a box).
std::optional<ConvexityCounterexample> find_nonconvexity(
    const std::vector<VectorFunctionPtr>& functions, std::size_t f, Rng& rng,
    std::size_t samples = 200, double tolerance = 1e-5);

}  // namespace ftmao
