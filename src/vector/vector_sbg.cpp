#include "vector/vector_sbg.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "trim/trim.hpp"

namespace ftmao {

void VectorSbgConfig::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(dim >= 1);
  FTMAO_EXPECTS(constraint.empty() || constraint.size() == dim);
}

VectorSbgAgent::VectorSbgAgent(AgentId id, VectorFunctionPtr cost,
                               Vec initial_state, const StepSchedule& schedule,
                               const VectorSbgConfig& config)
    : id_(id),
      cost_(std::move(cost)),
      state_(std::move(initial_state)),
      schedule_(&schedule),
      config_(config) {
  FTMAO_EXPECTS(cost_ != nullptr);
  config_.validate();
  FTMAO_EXPECTS(state_.dim() == config_.dim);
  FTMAO_EXPECTS(cost_->dim() == config_.dim);
  if (!config_.constraint.empty()) {
    for (std::size_t k = 0; k < config_.dim; ++k)
      state_[k] = config_.constraint[k].project(state_[k]);
  }
  if (config_.default_payload.state.dim() == 0)
    config_.default_payload.state = Vec(config_.dim, 0.0);
  if (config_.default_payload.gradient.dim() == 0)
    config_.default_payload.gradient = Vec(config_.dim, 0.0);
}

VecPayload VectorSbgAgent::broadcast(Round t) {
  FTMAO_EXPECTS(t.value >= 1);
  return VecPayload{state_, cost_->gradient(state_)};
}

void VectorSbgAgent::step(Round t, std::span<const Received<VecPayload>> inbox) {
  FTMAO_EXPECTS(t.value >= 1);
  FTMAO_EXPECTS(inbox.size() <= config_.n - 1);

  const Vec own_gradient = cost_->gradient(state_);
  const std::size_t missing = (config_.n - 1) - inbox.size();
  const double lambda = schedule_->at(t.value - 1);

  Vec next(config_.dim);
  std::vector<double> states;
  std::vector<double> gradients;
  states.reserve(config_.n);
  gradients.reserve(config_.n);
  for (std::size_t k = 0; k < config_.dim; ++k) {
    states.clear();
    gradients.clear();
    states.push_back(state_[k]);
    gradients.push_back(own_gradient[k]);
    for (const auto& msg : inbox) {
      FTMAO_EXPECTS(msg.payload.state.dim() == config_.dim);
      states.push_back(msg.payload.state[k]);
      gradients.push_back(msg.payload.gradient[k]);
    }
    for (std::size_t i = 0; i < missing; ++i) {
      states.push_back(config_.default_payload.state[k]);
      gradients.push_back(config_.default_payload.gradient[k]);
    }
    next[k] = trim_value(states, config_.f) -
              lambda * trim_value(gradients, config_.f);
    if (!config_.constraint.empty())
      next[k] = config_.constraint[k].project(next[k]);
  }
  state_ = next;
}

VectorByzantineNode::VectorByzantineNode(VectorAdversary& adversary)
    : adversary_(&adversary) {}

std::optional<VecPayload> VectorByzantineNode::send_to(
    AgentId self, AgentId recipient, const RoundView<VecPayload>& view) {
  return adversary_->send_to(self, recipient, view);
}

VectorSplitBrain::VectorSplitBrain(std::size_t dim, double state_magnitude,
                                   double gradient_magnitude)
    : dim_(dim),
      state_magnitude_(state_magnitude),
      gradient_magnitude_(gradient_magnitude) {
  FTMAO_EXPECTS(dim >= 1);
}

std::optional<VecPayload> VectorSplitBrain::send_to(
    AgentId, AgentId recipient, const RoundView<VecPayload>&) {
  const double parity = recipient.value % 2 == 0 ? 1.0 : -1.0;
  VecPayload p{Vec(dim_), Vec(dim_)};
  for (std::size_t k = 0; k < dim_; ++k) {
    const double coord_sign = k % 2 == 0 ? 1.0 : -1.0;
    p.state[k] = parity * coord_sign * state_magnitude_;
    p.gradient[k] = parity * coord_sign * gradient_magnitude_;
  }
  return p;
}

VectorRunResult run_vector_sbg(const VectorSbgConfig& config,
                               const std::vector<VectorFunctionPtr>& honest_costs,
                               const std::vector<Vec>& honest_initial,
                               std::size_t byzantine_count,
                               VectorAdversary* adversary,
                               const StepSchedule& schedule,
                               std::size_t rounds) {
  config.validate();
  FTMAO_EXPECTS(honest_costs.size() + byzantine_count == config.n);
  FTMAO_EXPECTS(honest_initial.size() == honest_costs.size());
  FTMAO_EXPECTS(byzantine_count <= config.f);

  std::vector<std::unique_ptr<VectorSbgAgent>> agents;
  std::vector<std::unique_ptr<VectorByzantineNode>> byz_nodes;
  SyncEngine<VecPayload> engine;
  for (std::size_t i = 0; i < honest_costs.size(); ++i) {
    agents.push_back(std::make_unique<VectorSbgAgent>(
        AgentId{static_cast<std::uint32_t>(i)}, honest_costs[i],
        honest_initial[i], schedule, config));
    engine.add_honest(AgentId{static_cast<std::uint32_t>(i)},
                      agents.back().get());
  }
  for (std::size_t b = 0; b < byzantine_count; ++b) {
    FTMAO_EXPECTS(adversary != nullptr);
    byz_nodes.push_back(std::make_unique<VectorByzantineNode>(*adversary));
    engine.add_byzantine(
        AgentId{static_cast<std::uint32_t>(honest_costs.size() + b)},
        byz_nodes.back().get());
  }

  VectorRunResult result;
  // Reference point: the failure-free uniform-average optimum.
  {
    std::vector<VectorWeightedSum::Term> terms;
    const double w = 1.0 / static_cast<double>(honest_costs.size());
    for (const auto& fn : honest_costs) terms.push_back({w, fn});
    result.failure_free_optimum = VectorWeightedSum(std::move(terms)).a_minimizer();
  }

  auto record = [&] {
    double diam = 0.0;
    double dist = 0.0;
    for (std::size_t a = 0; a < agents.size(); ++a) {
      dist = std::max(dist, agents[a]->state().distance_to(
                                result.failure_free_optimum));
      for (std::size_t b = a + 1; b < agents.size(); ++b) {
        Vec diff = agents[a]->state();
        diff -= agents[b]->state();
        diam = std::max(diam, diff.norm_inf());
      }
    }
    result.disagreement.push(diam);
    result.dist_to_average_optimum.push(dist);
  };
  record();
  for (std::size_t t = 1; t <= rounds; ++t) {
    engine.run_round(Round{static_cast<std::uint32_t>(t)});
    record();
  }
  for (const auto& a : agents) result.final_states.push_back(a->state());
  return result;
}

}  // namespace ftmao
