#include "lp/simplex.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/contracts.hpp"

namespace ftmao::lp {

namespace {

constexpr double kEps = 1e-9;

// Tableau layout: rows 0..m-1 are constraints (rhs in the last column),
// row m is the objective row storing reduced costs (rhs cell = -objective
// value). Column order: original vars, slack/surplus vars, artificials.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double p = at(pr, pc);
    FTMAO_EXPECTS(std::abs(p) > kEps);
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= factor * at(pr, c);
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

// Runs simplex iterations on a tableau whose objective row already holds
// reduced costs w.r.t. the current basis. Bland's rule: entering = lowest
// eligible column index, leaving = lowest-index row among min-ratio ties.
// `allowed_cols` bounds the columns eligible to enter (used to freeze
// artificials out in phase 2).
Status run_simplex(Tableau& t, std::vector<std::size_t>& basis,
                   std::size_t allowed_cols) {
  const std::size_t m = t.rows() - 1;
  const std::size_t rhs = t.cols() - 1;
  const int max_iters = 10000;
  for (int iter = 0; iter < max_iters; ++iter) {
    // Entering column: first with negative reduced cost (minimization).
    std::size_t pc = allowed_cols;
    for (std::size_t c = 0; c < allowed_cols; ++c) {
      if (t.at(m, c) < -kEps) {
        pc = c;
        break;
      }
    }
    if (pc == allowed_cols) return Status::Optimal;

    // Leaving row: min ratio rhs / a with a > 0; Bland ties by row basis
    // variable index.
    std::size_t pr = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = t.at(r, pc);
      if (a > kEps) {
        const double ratio = t.at(r, rhs) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && (pr == m || basis[r] < basis[pr]))) {
          best_ratio = ratio;
          pr = r;
        }
      }
    }
    if (pr == m) return Status::Unbounded;

    t.pivot(pr, pc);
    basis[pr] = pc;
  }
  throw std::runtime_error("simplex: iteration limit exceeded");
}

}  // namespace

Problem& Problem::add(std::vector<double> coeffs, Relation rel, double rhs) {
  constraints.push_back({std::move(coeffs), rel, rhs});
  return *this;
}

Solution solve(const Problem& problem) {
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.constraints.size();
  FTMAO_EXPECTS(problem.objective.empty() || problem.objective.size() == n);
  for (const auto& c : problem.constraints) FTMAO_EXPECTS(c.coeffs.size() == n);

  // Normalize rows to rhs >= 0 (flipping the relation when negating).
  std::vector<Constraint> rows = problem.constraints;
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      for (auto& a : row.coeffs) a = -a;
      row.rhs = -row.rhs;
      if (row.rel == Relation::LessEq)
        row.rel = Relation::GreaterEq;
      else if (row.rel == Relation::GreaterEq)
        row.rel = Relation::LessEq;
    }
  }

  // Count slack/surplus and artificial columns.
  std::size_t num_slack = 0;
  std::size_t num_art = 0;
  for (const auto& row : rows) {
    if (row.rel != Relation::Eq) ++num_slack;
    if (row.rel != Relation::LessEq) ++num_art;
  }

  const std::size_t art_begin = n + num_slack;
  const std::size_t total = n + num_slack + num_art;
  const std::size_t rhs_col = total;

  Tableau t(m + 1, total + 1);
  std::vector<std::size_t> basis(m);

  std::size_t slack_idx = n;
  std::size_t art_idx = art_begin;
  for (std::size_t r = 0; r < m; ++r) {
    const auto& row = rows[r];
    for (std::size_t c = 0; c < n; ++c) t.at(r, c) = row.coeffs[c];
    t.at(r, rhs_col) = row.rhs;
    if (row.rel == Relation::LessEq) {
      t.at(r, slack_idx) = 1.0;
      basis[r] = slack_idx++;
    } else if (row.rel == Relation::GreaterEq) {
      t.at(r, slack_idx) = -1.0;
      ++slack_idx;
      t.at(r, art_idx) = 1.0;
      basis[r] = art_idx++;
    } else {
      t.at(r, art_idx) = 1.0;
      basis[r] = art_idx++;
    }
  }

  // ---- Phase 1: minimize sum of artificials.
  if (num_art > 0) {
    for (std::size_t c = art_begin; c < total; ++c) t.at(m, c) = 1.0;
    // Make reduced costs consistent with the artificial basis rows.
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] >= art_begin) {
        for (std::size_t c = 0; c <= total; ++c) t.at(m, c) -= t.at(r, c);
      }
    }
    const Status s1 = run_simplex(t, basis, total);
    if (s1 == Status::Unbounded)
      throw std::runtime_error("simplex: phase 1 unbounded (impossible)");
    const double phase1 = -t.at(m, rhs_col);
    if (phase1 > 1e-7) return Solution{Status::Infeasible, 0.0, {}};

    // Drive residual artificials out of the basis where possible; rows
    // with no pivot are redundant and harmless to leave (rhs ~ 0).
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] < art_begin) continue;
      for (std::size_t c = 0; c < art_begin; ++c) {
        if (std::abs(t.at(r, c)) > kEps) {
          t.pivot(r, c);
          basis[r] = c;
          break;
        }
      }
    }
  }

  // ---- Phase 2: real objective (minimization internally).
  for (std::size_t c = 0; c <= total; ++c) t.at(m, c) = 0.0;
  const double sign = problem.sense == Sense::Minimize ? 1.0 : -1.0;
  if (!problem.objective.empty()) {
    for (std::size_t c = 0; c < n; ++c)
      t.at(m, c) = sign * problem.objective[c];
  }
  for (std::size_t r = 0; r < m; ++r) {
    const double cost = t.at(m, basis[r]);
    if (cost != 0.0) {
      for (std::size_t c = 0; c <= total; ++c)
        t.at(m, c) -= cost * t.at(r, c);
    }
  }
  // Artificials may not re-enter: restrict entering columns to art_begin.
  const Status s2 = run_simplex(t, basis, art_begin);
  if (s2 == Status::Unbounded) return Solution{Status::Unbounded, 0.0, {}};

  Solution sol;
  sol.status = Status::Optimal;
  sol.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) sol.x[basis[r]] = t.at(r, rhs_col);
  }
  sol.objective_value = sign * -t.at(m, rhs_col);
  return sol;
}

}  // namespace ftmao::lp
