#include "lp/witness.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"

namespace ftmao::lp {

namespace {

// Base problem: alpha >= 0, sum alpha = 1, |sum alpha v - y| <= tol.
// Equality-with-tolerance is encoded as two inequality rows so that tiny
// floating-point error in y does not produce spurious infeasibility.
Problem base_problem(const WitnessQuery& q) {
  const std::size_t m = q.values.size();
  Problem p;
  p.num_vars = m;
  p.add(std::vector<double>(m, 1.0), Relation::Eq, 1.0);
  p.add(q.values, Relation::LessEq, q.target + q.tolerance);
  p.add(q.values, Relation::GreaterEq, q.target - q.tolerance);
  return p;
}

std::vector<double> unit_row(std::size_t m, std::size_t i) {
  std::vector<double> row(m, 0.0);
  row[i] = 1.0;
  return row;
}

// Feasibility of the base problem with alpha_i >= beta for i in subset.
Solution try_subset(const WitnessQuery& q,
                    const std::vector<std::size_t>& subset) {
  Problem p = base_problem(q);
  for (std::size_t i : subset)
    p.add(unit_row(q.values.size(), i), Relation::GreaterEq, q.beta);
  return solve(p);
}

std::vector<std::size_t> support_of(const std::vector<double>& weights,
                                    double beta, double tol) {
  std::vector<std::size_t> support;
  for (std::size_t i = 0; i < weights.size(); ++i)
    if (weights[i] >= beta - tol) support.push_back(i);
  return support;
}

// Visits all gamma-subsets of {0..m-1} until visitor returns true
// (found) or the cap is hit. Returns {found, exhausted_all}.
template <typename Visitor>
std::pair<bool, bool> for_each_subset(std::size_t m, std::size_t gamma,
                                      std::size_t cap, Visitor&& visit) {
  std::vector<std::size_t> idx(gamma);
  std::iota(idx.begin(), idx.end(), 0);
  std::size_t tried = 0;
  while (true) {
    if (tried++ >= cap) return {false, false};
    if (visit(idx)) return {true, true};
    // next combination in lexicographic order
    std::size_t k = gamma;
    while (k > 0) {
      --k;
      if (idx[k] != k + m - gamma) {
        ++idx[k];
        for (std::size_t j = k + 1; j < gamma; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (k == 0) return {false, true};
    }
    if (gamma == 0) return {false, true};
  }
}

}  // namespace

WitnessResult find_admissible_witness(const WitnessQuery& query,
                                      std::size_t subset_cap) {
  const std::size_t m = query.values.size();
  FTMAO_EXPECTS(m >= 1);
  FTMAO_EXPECTS(query.gamma <= m);
  FTMAO_EXPECTS(query.beta >= 0.0);

  WitnessResult result;

  auto accept = [&](const Solution& sol) {
    result.found = true;
    result.weights = sol.x;
    result.support = support_of(sol.x, query.beta, query.tolerance);
    return true;
  };

  auto [found, exhausted] = for_each_subset(
      m, query.gamma, subset_cap, [&](const std::vector<std::size_t>& subset) {
        const Solution sol = try_subset(query, subset);
        return sol.feasible() && accept(sol);
      });

  result.exact = exhausted || found;
  if (found || exhausted) return result;

  // Heuristic pass: solve the relaxation maximizing total "capped" mass,
  // then probe the top-gamma support it suggests.
  //
  // Variables: alpha (m), z (m) with z_i <= alpha_i, z_i <= beta;
  // maximize sum z. If a witness exists the optimum is gamma*beta, and the
  // top coordinates of alpha usually identify a working support.
  {
    Problem p;
    p.num_vars = 2 * m;
    p.objective.assign(2 * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) p.objective[m + i] = 1.0;
    p.sense = Sense::Maximize;

    std::vector<double> row(2 * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) row[i] = 1.0;
    p.add(row, Relation::Eq, 1.0);
    std::fill(row.begin(), row.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) row[i] = query.values[i];
    p.add(row, Relation::LessEq, query.target + query.tolerance);
    p.add(row, Relation::GreaterEq, query.target - query.tolerance);
    for (std::size_t i = 0; i < m; ++i) {
      std::fill(row.begin(), row.end(), 0.0);
      row[m + i] = 1.0;
      row[i] = -1.0;
      p.add(row, Relation::LessEq, 0.0);  // z_i <= alpha_i
      std::fill(row.begin(), row.end(), 0.0);
      row[m + i] = 1.0;
      p.add(row, Relation::LessEq, query.beta);  // z_i <= beta
    }
    const Solution relax = solve(p);
    if (relax.feasible()) {
      std::vector<std::size_t> order(m);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return relax.x[a] > relax.x[b];
      });
      order.resize(query.gamma);
      const Solution sol = try_subset(query, order);
      if (sol.feasible()) {
        accept(sol);
        result.exact = false;
        return result;
      }
    }
  }
  result.exact = false;
  return result;
}

double max_guaranteed_beta(const WitnessQuery& query) {
  const std::size_t m = query.values.size();
  FTMAO_EXPECTS(query.gamma >= 1 && query.gamma <= m);

  double best = -1.0;
  for_each_subset(
      m, query.gamma, static_cast<std::size_t>(-1),
      [&](const std::vector<std::size_t>& subset) {
        // Vars: alpha (m), t (1). Maximize t with alpha_i - t >= 0 on S.
        Problem p;
        p.num_vars = m + 1;
        p.objective.assign(m + 1, 0.0);
        p.objective[m] = 1.0;
        p.sense = Sense::Maximize;

        std::vector<double> row(m + 1, 0.0);
        for (std::size_t i = 0; i < m; ++i) row[i] = 1.0;
        p.add(row, Relation::Eq, 1.0);
        std::fill(row.begin(), row.end(), 0.0);
        for (std::size_t i = 0; i < m; ++i) row[i] = query.values[i];
        p.add(row, Relation::LessEq, query.target + query.tolerance);
        p.add(row, Relation::GreaterEq, query.target - query.tolerance);
        for (std::size_t i : subset) {
          std::fill(row.begin(), row.end(), 0.0);
          row[i] = 1.0;
          row[m] = -1.0;
          p.add(row, Relation::GreaterEq, 0.0);
        }
        const Solution sol = solve(p);
        if (sol.feasible()) best = std::max(best, sol.objective_value);
        return false;  // keep scanning all subsets
      });
  return best;
}

}  // namespace ftmao::lp
