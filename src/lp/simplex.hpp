#pragma once

// Dense two-phase simplex for small linear programs.
//
// Built for the admissibility-witness queries of Lemma 2 / Corollary 1
// (a few dozen variables and constraints), where an exact feasibility
// answer matters more than scale. Uses Bland's rule, so it cannot cycle.
// All variables are constrained to x >= 0; general bounds are encoded by
// the caller via extra constraints.

#include <cstddef>
#include <vector>

namespace ftmao::lp {

enum class Relation { LessEq, Eq, GreaterEq };

/// One row: coeffs . x  (rel)  rhs.
struct Constraint {
  std::vector<double> coeffs;
  Relation rel = Relation::Eq;
  double rhs = 0.0;
};

enum class Sense { Minimize, Maximize };

/// minimize/maximize objective . x  subject to constraints, x >= 0.
struct Problem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  ///< size num_vars (empty = all zeros)
  Sense sense = Sense::Minimize;
  std::vector<Constraint> constraints;

  Problem& add(std::vector<double> coeffs, Relation rel, double rhs);
};

enum class Status { Optimal, Infeasible, Unbounded };

struct Solution {
  Status status = Status::Infeasible;
  double objective_value = 0.0;  ///< in the problem's own sense
  std::vector<double> x;         ///< size num_vars when Optimal

  bool feasible() const { return status == Status::Optimal; }
};

/// Solves with two-phase tableau simplex. Deterministic.
Solution solve(const Problem& problem);

}  // namespace ftmao::lp
