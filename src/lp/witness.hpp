#pragma once

// Admissibility witnesses (Definition 1, Lemma 2, Corollary 1).
//
// Lemma 2 / Corollary 1 assert that each trimmed value y equals
// sum_i alpha_i v_i for some (beta, gamma)-admissible alpha over the
// non-faulty agents. These queries verify that claim constructively: find
// alpha >= 0 with sum alpha = 1, sum alpha_i v_i ~= y, and at least gamma
// coordinates >= beta. Exact via subset enumeration for small systems
// (C(|N|, gamma) LP feasibility probes), falling back to an LP-guided
// heuristic beyond a configurable cap.

#include <cstddef>
#include <vector>

#include "lp/simplex.hpp"

namespace ftmao::lp {

struct WitnessQuery {
  std::vector<double> values;  ///< v_i for each non-faulty agent
  double target = 0.0;         ///< y to express as a convex combination
  double beta = 0.0;           ///< required lower bound on gamma weights
  std::size_t gamma = 0;       ///< required number of weights >= beta
  double tolerance = 1e-7;     ///< |sum alpha_i v_i - y| allowed
};

struct WitnessResult {
  bool found = false;
  bool exact = true;  ///< exhaustive subset search (false = heuristic pass)
  std::vector<double> weights;       ///< alpha, same indexing as values
  std::vector<std::size_t> support;  ///< indices with alpha_i >= beta - tol
};

/// Searches for a (beta, gamma)-admissible witness. subset_cap bounds the
/// number of subsets tried exhaustively; beyond it a single LP-relaxation
/// guided attempt is made and `exact` is false if it fails.
WitnessResult find_admissible_witness(const WitnessQuery& query,
                                      std::size_t subset_cap = 20000);

/// The best achievable beta for the query's gamma: max over subsets S of
/// size gamma of (max t s.t. exists alpha with alpha_i >= t on S and the
/// convex-combination constraints). Returns < 0 if no convex combination
/// hits the target at all. Exhaustive (use for small |N| only).
double max_guaranteed_beta(const WitnessQuery& query);

}  // namespace ftmao::lp
