#include "sim/attack_search.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/batch_async_runner.hpp"
#include "sim/batch_runner.hpp"
#include "sim/runner.hpp"

namespace ftmao {

std::vector<AttackCandidate> standard_attack_grid() {
  std::vector<AttackCandidate> grid;
  auto add = [&grid](std::string name, AttackKind kind,
                     auto&&... setter) {
    AttackCandidate c;
    c.name = std::move(name);
    c.config.kind = kind;
    (setter(c.config), ...);
    grid.push_back(std::move(c));
  };

  add("silent", AttackKind::Silent);
  for (double mag : {10.0, 100.0, 1000.0}) {
    add("fixed@" + format_double(mag, 3), AttackKind::FixedValue,
        [mag](AttackConfig& c) {
          c.state_magnitude = mag;
          c.gradient_magnitude = mag / 10.0;
        });
    add("split-brain@" + format_double(mag, 3), AttackKind::SplitBrain,
        [mag](AttackConfig& c) {
          c.state_magnitude = mag;
          c.gradient_magnitude = mag / 10.0;
        });
  }
  add("hull-edge-up", AttackKind::HullEdgeUp);
  add("hull-edge-down", AttackKind::HullEdgeDown);
  for (double amp : {2.0, 5.0, 20.0}) {
    add("sign-flip x" + format_double(amp, 3), AttackKind::SignFlip,
        [amp](AttackConfig& c) { c.amplification = amp; });
  }
  for (double target : {-100.0, -10.0, 10.0, 100.0}) {
    add("pull->" + format_double(target, 3), AttackKind::PullToTarget,
        [target](AttackConfig& c) {
          c.target = target;
          c.gradient_magnitude = 10.0;
        });
  }
  for (std::size_t period : {1ul, 10ul, 100ul}) {
    add("flip-flop/" + std::to_string(period), AttackKind::FlipFlop,
        [period](AttackConfig& c) { c.flip_period = period; });
  }
  add("noise", AttackKind::RandomNoise);
  return grid;
}

AttackSearchResult find_strongest_attack(
    const Scenario& base, const std::vector<AttackCandidate>& candidates,
    std::size_t num_threads, std::size_t batch_size, bool scalar_engine) {
  FTMAO_EXPECTS(!candidates.empty());

  Scenario clean = base;
  clean.attack = AttackConfig{};
  clean.attack.kind = AttackKind::None;
  const RunMetrics reference = run_sbg(clean);

  AttackSearchResult result;
  result.reference_state = reference.final_states.front();
  result.optima = reference.optima;

  // Index-addressed evaluation: outcome i always describes candidate i,
  // so the sort below sees the same array whatever the thread count or
  // batch size. All candidates share the base scenario's shape, so a
  // chunk of them advances in lockstep through the batched engine.
  const std::size_t count = candidates.size();
  result.outcomes.resize(count);
  const double reference_state = result.reference_state;
  const std::size_t chunk =
      scalar_engine ? 1
                    : std::min(batch_size == 0 ? count : batch_size, count);
  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  parallel_for_each(num_threads, num_chunks, [&](std::size_t task) {
    const std::size_t first = task * chunk;
    const std::size_t batch = std::min(chunk, count - first);
    std::vector<Scenario> replicas;
    replicas.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      Scenario attacked = base;
      attacked.attack = candidates[first + i].config;
      replicas.push_back(std::move(attacked));
    }
    std::vector<RunMetrics> metrics;
    if (scalar_engine) {
      for (const Scenario& s : replicas) metrics.push_back(run_sbg(s));
    } else {
      metrics = run_sbg_batch(replicas);
    }
    for (std::size_t i = 0; i < batch; ++i) {
      const RunMetrics& m = metrics[i];
      AttackOutcome& outcome = result.outcomes[first + i];
      outcome.name = candidates[first + i].name;
      outcome.final_state = m.final_states.front();
      outcome.bias = std::abs(outcome.final_state - reference_state);
      outcome.dist_to_y = m.final_max_dist();
      outcome.disagreement = m.final_disagreement();
    }
  });
  std::sort(result.outcomes.begin(), result.outcomes.end(),
            [](const AttackOutcome& a, const AttackOutcome& b) {
              return a.bias > b.bias;
            });
  return result;
}

AttackSearchResult find_strongest_attack_async(
    const AsyncScenario& base, const std::vector<AttackCandidate>& candidates,
    std::size_t num_threads, std::size_t batch_size, bool scalar_engine) {
  FTMAO_EXPECTS(!candidates.empty());

  AsyncScenario clean = base;
  clean.attack = AttackConfig{};
  clean.attack.kind = AttackKind::None;
  const AsyncRunMetrics reference = run_async_sbg(clean);

  AttackSearchResult result;
  result.reference_state = reference.final_states.front();
  result.optima = reference.optima;

  // Same index-addressed contract as the synchronous search: outcome i
  // always describes candidate i, whatever the thread count, chunking, or
  // engine.
  const std::size_t count = candidates.size();
  result.outcomes.resize(count);
  const double reference_state = result.reference_state;
  const std::size_t chunk =
      scalar_engine ? 1
                    : std::min(batch_size == 0 ? count : batch_size, count);
  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  parallel_for_each(num_threads, num_chunks, [&](std::size_t task) {
    const std::size_t first = task * chunk;
    const std::size_t batch = std::min(chunk, count - first);
    std::vector<AsyncScenario> replicas;
    replicas.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      AsyncScenario attacked = base;
      attacked.attack = candidates[first + i].config;
      replicas.push_back(std::move(attacked));
    }
    std::vector<AsyncRunMetrics> metrics;
    if (scalar_engine) {
      for (const AsyncScenario& s : replicas)
        metrics.push_back(run_async_sbg(s));
    } else {
      metrics = run_async_sbg_batch(replicas);
    }
    for (std::size_t i = 0; i < batch; ++i) {
      const AsyncRunMetrics& m = metrics[i];
      AttackOutcome& outcome = result.outcomes[first + i];
      outcome.name = candidates[first + i].name;
      outcome.final_state = m.final_states.front();
      outcome.bias = std::abs(outcome.final_state - reference_state);
      outcome.dist_to_y = m.max_dist_to_y.back();
      outcome.disagreement = m.disagreement.back();
    }
  });
  std::sort(result.outcomes.begin(), result.outcomes.end(),
            [](const AttackOutcome& a, const AttackOutcome& b) {
              return a.bias > b.bias;
            });
  return result;
}

}  // namespace ftmao
