#include "sim/attack_search.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <sstream>

#include "cache/cell_key.hpp"
#include "cache/result_cache.hpp"
#include "common/contracts.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "func/spec.hpp"
#include "sim/batch_async_runner.hpp"
#include "sim/batch_runner.hpp"
#include "sim/megabatch.hpp"
#include "sim/runner.hpp"
#include "sim/scenario_io.hpp"

namespace ftmao {

namespace {

// Canonical rendering of a candidate attack config: every AttackConfig
// field, so two candidates key identically iff the runs they induce are
// identical. The candidate's display name is deliberately absent (it is
// cosmetic and re-attached from the candidate list on a hit).
std::string attack_config_spec(const AttackConfig& c) {
  std::ostringstream os;
  os << "kind=" << attack_kind_name(c.kind)
     << ",smag=" << cache_canon_double(c.state_magnitude)
     << ",gmag=" << cache_canon_double(c.gradient_magnitude)
     << ",target=" << cache_canon_double(c.target)
     << ",amp=" << cache_canon_double(c.amplification)
     << ",flip=" << c.flip_period << ",act=" << c.activation_round
     << ",consistent=" << (c.consistent ? 1 : 0);
  return os.str();
}

// Canonical base identity for the synchronous search: the full scenario
// file of the attack-free variant (save_scenario writes every field at
// round-trip precision, functions in spec syntax).
std::string sync_base_spec(const Scenario& clean) {
  std::ostringstream os;
  save_scenario(clean, os);
  return os.str();
}

// Canonical base identity for the asynchronous search: every AsyncScenario
// field except the attack (candidates supply it).
std::string async_base_spec(const AsyncScenario& base) {
  std::ostringstream os;
  os << "n=" << base.n << ";f=" << base.f << ";faulty=";
  for (std::size_t a : base.faulty) os << a << ',';
  os << ";functions=";
  for (const auto& fn : base.functions) os << to_spec(*fn) << '|';
  os << ";initial=";
  for (double x : base.initial_states) os << cache_canon_double(x) << ',';
  os << ";step=" << step_kind_name(base.step.kind) << ':'
     << cache_canon_double(base.step.scale) << ':'
     << cache_canon_double(base.step.exponent) << ";rounds=" << base.rounds
     << ";seed=" << base.seed << ";crashes=";
  for (const auto& [agent, time] : base.crashes)
    os << agent << '@' << cache_canon_double(time) << ',';
  os << ";delay=" << delay_kind_name(base.delay_kind) << ':'
     << cache_canon_double(base.delay_lo) << ':'
     << cache_canon_double(base.delay_hi)
     << ";slow=" << cache_canon_double(base.slow_delay) << 'x'
     << base.slow_count;
  return os.str();
}

// Task slicing for a search section: the megabatch planner's lane-aligned
// slices (full-register chunks plus one narrow tail) when enabled, the
// legacy fixed-size chunks otherwise. Bit-identical outcomes either way —
// only the chunk boundaries move.
std::vector<MegabatchTask> search_slices(std::size_t pending_count,
                                         std::size_t count,
                                         std::size_t batch_size,
                                         bool scalar_engine, bool megabatch,
                                         const MegabatchKey& key,
                                         std::size_t rounds) {
  if (!scalar_engine && megabatch)
    return plan_uniform_slices(pending_count, batch_size, rounds, key);
  const std::size_t chunk =
      scalar_engine ? 1
                    : std::min(batch_size == 0 ? count : batch_size, count);
  std::vector<MegabatchTask> tasks;
  for (std::size_t first = 0; first < pending_count; first += chunk) {
    MegabatchTask task;
    task.first = first;
    task.count = std::min(chunk, pending_count - first);
    task.key = key;
    tasks.push_back(task);
  }
  return tasks;
}

}  // namespace

std::vector<AttackCandidate> standard_attack_grid() {
  std::vector<AttackCandidate> grid;
  auto add = [&grid](std::string name, AttackKind kind,
                     auto&&... setter) {
    AttackCandidate c;
    c.name = std::move(name);
    c.config.kind = kind;
    (setter(c.config), ...);
    grid.push_back(std::move(c));
  };

  add("silent", AttackKind::Silent);
  for (double mag : {10.0, 100.0, 1000.0}) {
    add("fixed@" + format_double(mag, 3), AttackKind::FixedValue,
        [mag](AttackConfig& c) {
          c.state_magnitude = mag;
          c.gradient_magnitude = mag / 10.0;
        });
    add("split-brain@" + format_double(mag, 3), AttackKind::SplitBrain,
        [mag](AttackConfig& c) {
          c.state_magnitude = mag;
          c.gradient_magnitude = mag / 10.0;
        });
  }
  add("hull-edge-up", AttackKind::HullEdgeUp);
  add("hull-edge-down", AttackKind::HullEdgeDown);
  for (double amp : {2.0, 5.0, 20.0}) {
    add("sign-flip x" + format_double(amp, 3), AttackKind::SignFlip,
        [amp](AttackConfig& c) { c.amplification = amp; });
  }
  for (double target : {-100.0, -10.0, 10.0, 100.0}) {
    add("pull->" + format_double(target, 3), AttackKind::PullToTarget,
        [target](AttackConfig& c) {
          c.target = target;
          c.gradient_magnitude = 10.0;
        });
  }
  for (std::size_t period : {1ul, 10ul, 100ul}) {
    add("flip-flop/" + std::to_string(period), AttackKind::FlipFlop,
        [period](AttackConfig& c) { c.flip_period = period; });
  }
  add("noise", AttackKind::RandomNoise);
  return grid;
}

AttackSearchResult find_strongest_attack(
    const Scenario& base, const std::vector<AttackCandidate>& candidates,
    std::size_t num_threads, std::size_t batch_size, bool scalar_engine,
    ResultCache* cache, bool megabatch) {
  FTMAO_EXPECTS(!candidates.empty());

  Scenario clean = base;
  clean.attack = AttackConfig{};
  clean.attack.kind = AttackKind::None;
  const std::string base_spec =
      cache != nullptr ? sync_base_spec(clean) : std::string{};

  AttackSearchResult result;

  // Reference run (attack-free). Cached payload carries the consensus
  // state and the Y interval bit-exactly, so bias computed against a
  // restored reference equals bias against a recomputed one.
  bool have_reference = false;
  CellKey reference_key;
  if (cache != nullptr) {
    reference_key =
        make_cell_key("attack-search-ref;engine=sync;base=" + base_spec);
    if (const std::optional<std::string> payload = cache->lookup(reference_key)) {
      try {
        PayloadReader reader(*payload);
        const double state = reader.get_double();
        const double lo = reader.get_double();
        const double hi = reader.get_double();
        if (reader.exhausted()) {
          result.reference_state = state;
          result.optima = Interval(lo, hi);
          have_reference = true;
        }
      } catch (const ContractViolation&) {
        have_reference = false;
      }
    }
  }
  if (!have_reference) {
    const RunMetrics reference = run_sbg(clean);
    result.reference_state = reference.final_states.front();
    result.optima = reference.optima;
    if (cache != nullptr) {
      PayloadWriter writer;
      writer.put_double(result.reference_state);
      writer.put_double(result.optima.lo());
      writer.put_double(result.optima.hi());
      cache->insert(reference_key, writer.bytes());
    }
  }

  // Index-addressed evaluation: outcome i always describes candidate i,
  // so the sort below sees the same array whatever the thread count or
  // batch size. All candidates share the base scenario's shape, so a
  // chunk of them advances in lockstep through the batched engine.
  const std::size_t count = candidates.size();
  result.outcomes.resize(count);
  const double reference_state = result.reference_state;

  // Cache pre-pass over the candidates; misses land on `pending` and run
  // through the unchanged chunked loop below.
  std::vector<std::size_t> pending(count);
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  std::vector<CellKey> keys;
  if (cache != nullptr) {
    pending.clear();
    keys.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back(
          make_cell_key("attack-search;engine=sync;base=" + base_spec +
                        ";cand=" + attack_config_spec(candidates[i].config)));
      bool filled = false;
      if (const std::optional<std::string> payload = cache->lookup(keys[i])) {
        try {
          PayloadReader reader(*payload);
          AttackOutcome outcome;
          outcome.name = candidates[i].name;
          outcome.final_state = reader.get_double();
          outcome.dist_to_y = reader.get_double();
          outcome.disagreement = reader.get_double();
          if (reader.exhausted()) {
            outcome.bias = std::abs(outcome.final_state - reference_state);
            result.outcomes[i] = std::move(outcome);
            filled = true;
          }
        } catch (const ContractViolation&) {
          filled = false;
        }
      }
      if (!filled) pending.push_back(i);
    }
  }

  const std::vector<MegabatchTask> tasks = search_slices(
      pending.size(), count, batch_size, scalar_engine, megabatch,
      MegabatchKey{MegabatchEngine::kSync, base.n, base.f, 1}, base.rounds);
  parallel_for_each(num_threads, tasks.size(), [&](std::size_t task) {
    const std::size_t first = tasks[task].first;
    const std::size_t batch = tasks[task].count;
    std::vector<Scenario> replicas;
    replicas.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      Scenario attacked = base;
      attacked.attack = candidates[pending[first + i]].config;
      replicas.push_back(std::move(attacked));
    }
    std::vector<RunMetrics> metrics;
    if (scalar_engine) {
      for (const Scenario& s : replicas) metrics.push_back(run_sbg(s));
    } else {
      metrics = run_sbg_batch(replicas);
    }
    for (std::size_t i = 0; i < batch; ++i) {
      const RunMetrics& m = metrics[i];
      AttackOutcome& outcome = result.outcomes[pending[first + i]];
      outcome.name = candidates[pending[first + i]].name;
      outcome.final_state = m.final_states.front();
      outcome.bias = std::abs(outcome.final_state - reference_state);
      outcome.dist_to_y = m.final_max_dist();
      outcome.disagreement = m.final_disagreement();
    }
  });

  if (cache != nullptr) {
    for (std::size_t i : pending) {
      const AttackOutcome& outcome = result.outcomes[i];
      PayloadWriter writer;
      writer.put_double(outcome.final_state);
      writer.put_double(outcome.dist_to_y);
      writer.put_double(outcome.disagreement);
      cache->insert(keys[i], writer.bytes());
    }
  }

  std::sort(result.outcomes.begin(), result.outcomes.end(),
            [](const AttackOutcome& a, const AttackOutcome& b) {
              return a.bias > b.bias;
            });
  return result;
}

AttackSearchResult find_strongest_attack_async(
    const AsyncScenario& base, const std::vector<AttackCandidate>& candidates,
    std::size_t num_threads, std::size_t batch_size, bool scalar_engine,
    ResultCache* cache, bool megabatch) {
  FTMAO_EXPECTS(!candidates.empty());

  AsyncScenario clean = base;
  clean.attack = AttackConfig{};
  clean.attack.kind = AttackKind::None;
  const std::string base_spec =
      cache != nullptr ? async_base_spec(base) : std::string{};

  AttackSearchResult result;

  bool have_reference = false;
  CellKey reference_key;
  if (cache != nullptr) {
    reference_key =
        make_cell_key("attack-search-ref;engine=async;base=" + base_spec);
    if (const std::optional<std::string> payload = cache->lookup(reference_key)) {
      try {
        PayloadReader reader(*payload);
        const double state = reader.get_double();
        const double lo = reader.get_double();
        const double hi = reader.get_double();
        if (reader.exhausted()) {
          result.reference_state = state;
          result.optima = Interval(lo, hi);
          have_reference = true;
        }
      } catch (const ContractViolation&) {
        have_reference = false;
      }
    }
  }
  if (!have_reference) {
    const AsyncRunMetrics reference = run_async_sbg(clean);
    result.reference_state = reference.final_states.front();
    result.optima = reference.optima;
    if (cache != nullptr) {
      PayloadWriter writer;
      writer.put_double(result.reference_state);
      writer.put_double(result.optima.lo());
      writer.put_double(result.optima.hi());
      cache->insert(reference_key, writer.bytes());
    }
  }

  // Same index-addressed contract as the synchronous search: outcome i
  // always describes candidate i, whatever the thread count, chunking, or
  // engine.
  const std::size_t count = candidates.size();
  result.outcomes.resize(count);
  const double reference_state = result.reference_state;

  std::vector<std::size_t> pending(count);
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  std::vector<CellKey> keys;
  if (cache != nullptr) {
    pending.clear();
    keys.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back(
          make_cell_key("attack-search;engine=async;base=" + base_spec +
                        ";cand=" + attack_config_spec(candidates[i].config)));
      bool filled = false;
      if (const std::optional<std::string> payload = cache->lookup(keys[i])) {
        try {
          PayloadReader reader(*payload);
          AttackOutcome outcome;
          outcome.name = candidates[i].name;
          outcome.final_state = reader.get_double();
          outcome.dist_to_y = reader.get_double();
          outcome.disagreement = reader.get_double();
          if (reader.exhausted()) {
            outcome.bias = std::abs(outcome.final_state - reference_state);
            result.outcomes[i] = std::move(outcome);
            filled = true;
          }
        } catch (const ContractViolation&) {
          filled = false;
        }
      }
      if (!filled) pending.push_back(i);
    }
  }

  const std::vector<MegabatchTask> tasks = search_slices(
      pending.size(), count, batch_size, scalar_engine, megabatch,
      MegabatchKey{MegabatchEngine::kAsync, base.n, base.f, 1}, base.rounds);
  parallel_for_each(num_threads, tasks.size(), [&](std::size_t task) {
    const std::size_t first = tasks[task].first;
    const std::size_t batch = tasks[task].count;
    std::vector<AsyncScenario> replicas;
    replicas.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      AsyncScenario attacked = base;
      attacked.attack = candidates[pending[first + i]].config;
      replicas.push_back(std::move(attacked));
    }
    std::vector<AsyncRunMetrics> metrics;
    if (scalar_engine) {
      for (const AsyncScenario& s : replicas)
        metrics.push_back(run_async_sbg(s));
    } else {
      metrics = run_async_sbg_batch(replicas);
    }
    for (std::size_t i = 0; i < batch; ++i) {
      const AsyncRunMetrics& m = metrics[i];
      AttackOutcome& outcome = result.outcomes[pending[first + i]];
      outcome.name = candidates[pending[first + i]].name;
      outcome.final_state = m.final_states.front();
      outcome.bias = std::abs(outcome.final_state - reference_state);
      outcome.dist_to_y = m.max_dist_to_y.back();
      outcome.disagreement = m.disagreement.back();
    }
  });

  if (cache != nullptr) {
    for (std::size_t i : pending) {
      const AttackOutcome& outcome = result.outcomes[i];
      PayloadWriter writer;
      writer.put_double(outcome.final_state);
      writer.put_double(outcome.dist_to_y);
      writer.put_double(outcome.disagreement);
      cache->insert(keys[i], writer.bytes());
    }
  }

  std::sort(result.outcomes.begin(), result.outcomes.end(),
            [](const AttackOutcome& a, const AttackOutcome& b) {
              return a.bias > b.bias;
            });
  return result;
}

}  // namespace ftmao
