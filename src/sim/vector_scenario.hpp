#pragma once

// Declarative description of one coordinate-wise vector-SBG run — the
// d-dimensional analogue of sim/scenario.hpp, reusing the scalar
// AttackConfig / StepConfig vocabulary so vector cells ride the same
// sweep/certify grids (the --dim axis). The attack kinds map onto the
// coordinate-wise strategy liftings in vector/vector_attacks.hpp, which
// are bit-identical to the scalar strategies at dim == 1.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "sim/scenario.hpp"
#include "vector/vector_attacks.hpp"
#include "vector/vector_sbg.hpp"

namespace ftmao {

struct VectorScenario {
  std::size_t n = 0;
  std::size_t f = 0;
  std::size_t dim = 1;

  /// One admissible cost per honest agent (agents 0 .. n-byzantine-1).
  std::vector<VectorFunctionPtr> honest_costs;
  std::vector<Vec> honest_initial;

  /// Byzantine agents occupy ids n-byzantine_count .. n-1 and share one
  /// adversary instance per run (the run_vector_sbg contract).
  std::size_t byzantine_count = 0;
  AttackConfig attack;
  StepConfig step;

  std::size_t rounds = 1;
  std::uint64_t seed = 1;

  /// Optional per-coordinate box constraint (empty = unconstrained).
  std::vector<Interval> constraint;
  VecPayload default_payload;  ///< zero vectors of dim if left empty

  void validate() const;
};

/// Coordinate-wise lifting of the scalar attack catalogue. `rng` seeds
/// the stateful strategies (random-noise); pure strategies ignore it.
std::unique_ptr<VectorAdversary> make_vector_adversary(
    const AttackConfig& config, std::size_t dim, Rng rng);

/// The standard vector cell: n agents (f Byzantine), separable-Huber
/// costs with centers spread over [-spread/2, spread/2] and alternating
/// per-coordinate sign, every third honest agent replaced by a radial
/// (coordinate-coupling) Huber when dim >= 2. Deterministic per
/// arguments; the seed only drives the adversary.
VectorScenario make_standard_vector_scenario(std::size_t n, std::size_t f,
                                             double spread, AttackKind attack,
                                             std::size_t rounds,
                                             std::uint64_t seed,
                                             std::size_t dim);

/// Scalar reference execution: one run_vector_sbg over the scenario's
/// agents/adversary. The batched engine (sim/batch_vector_runner.hpp) is
/// bit-identical to this per-field.
VectorRunResult run_vector_scenario(const VectorScenario& scenario);

}  // namespace ftmao
