#pragma once

// Batched asynchronous executor: advances B same-shape async replicas in
// lockstep over SoA state, bit-identical per-field to run_async_sbg run
// per replica (asserted in tests/batch_async_runner_test.cpp for every
// DelayKind, crash schedules, and attack in the menu).
//
// The asynchronous engine's event loop is inherently sequential — event
// times and adversary RNG draws differ per replica — but the *numeric*
// work it gates (two f-trims over the quorum multiset, a gradient
// evaluation, the lambda step) is the same shape every round in every
// replica. The batched runner therefore splits the execution:
//
//   Pass 1 (scheduling replay, per replica, value-free): run the real
//   AsyncEngine over lightweight recorder nodes that reproduce
//   AsyncSbgAgent's exact quorum/advance decisions while carrying
//   placeholder payload values, and record per (agent, completed round)
//   the bitmask of senders whose tuples were in the buffer at advance
//   time, plus each round's first honest publisher (the Byzantine
//   trigger view) and the engine counters. This is sound because every
//   scheduling decision — delay draws, event order, quorum timing,
//   Byzantine *presence* and RNG consumption — is independent of the
//   payload values in flight (every strategy in the menu sends/omits and
//   consumes randomness based only on round, recipient, and view
//   emptiness; async trigger views are never empty).
//
//   Pass 2 (numeric replay, lockstep across replicas): walk rounds
//   t = 1..T over SoA lane rows, rebuild each agent's trim multisets by
//   gathering the recorded sender masks (values in ascending AgentId
//   order — the same order AsyncSbgAgent's std::map iteration feeds
//   trim_value), re-run each lane's adversaries against the true trigger
//   views for the payload values, and advance every lane that completed
//   round t through the batched sorting-network trim and the fused step
//   kernel (simd/simd.hpp) — the sync batch engine's machinery, pointed
//   at the async quorum multisets. Because buffered tuples can exceed
//   the quorum (messages for round t keep accumulating until the agent's
//   delivery-driven advance), multiset sizes vary per (agent, round,
//   replica) in [n-f, n]; lanes are bucketed by multiset size and each
//   bucket trims as one batch.
//
// Shape fields (n, f, faulty, crashes, rounds) must match across the
// batch; seed, functions, initial states, attack, step, and delay model
// parameters are free per replica. Scenarios with n > 64 (no room in the
// sender bitmask) fall back to the scalar runner per replica — identical
// results, no speedup.

#include <span>
#include <vector>

#include "sim/async_runner.hpp"

namespace ftmao {

/// Runs every replica and returns its metrics, in order. Bit-identical
/// per-field to `run_async_sbg` applied to each replica. Empty input
/// returns empty output.
std::vector<AsyncRunMetrics> run_async_sbg_batch(
    std::span<const AsyncScenario> replicas);

}  // namespace ftmao
