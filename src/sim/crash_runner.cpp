#include "sim/crash_runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/contracts.hpp"
#include "core/crash_sbg.hpp"
#include "net/sync.hpp"
#include "opt/bisection.hpp"

namespace ftmao {

void CrashScenario::validate() const {
  FTMAO_EXPECTS(n >= 2);
  FTMAO_EXPECTS(functions.size() == n);
  FTMAO_EXPECTS(initial_states.size() == n);
  FTMAO_EXPECTS(rounds >= 1);
  for (const auto& fn : functions) FTMAO_EXPECTS(fn != nullptr);
  std::vector<bool> seen(n, false);
  for (const auto& c : crashes) {
    FTMAO_EXPECTS(c.agent < n);
    FTMAO_EXPECTS(!seen[c.agent]);  // one crash per agent
    seen[c.agent] = true;
    FTMAO_EXPECTS(c.round >= 1);
    FTMAO_EXPECTS(c.recipients_served <= n - 1);
  }
  FTMAO_EXPECTS(crashes.size() < n);  // at least one survivor
}

Interval crash_optima_set(const std::vector<ScalarFunctionPtr>& survivors,
                          const std::vector<ScalarFunctionPtr>& crashed) {
  FTMAO_EXPECTS(!survivors.empty());
  auto upper = [&](double x) {
    double g = 0.0;
    for (const auto& fn : survivors) g += fn->derivative(x);
    for (const auto& fn : crashed) g += std::max(fn->derivative(x), 0.0);
    return g;
  };
  auto lower = [&](double x) {
    double g = 0.0;
    for (const auto& fn : survivors) g += fn->derivative(x);
    for (const auto& fn : crashed) g += std::min(fn->derivative(x), 0.0);
    return g;
  };
  double seed_lo = std::numeric_limits<double>::infinity();
  double seed_hi = -std::numeric_limits<double>::infinity();
  for (const auto& fn : survivors) {
    seed_lo = std::min(seed_lo, fn->argmin().lo());
    seed_hi = std::max(seed_hi, fn->argmin().hi());
  }
  for (const auto& fn : crashed) {
    seed_lo = std::min(seed_lo, fn->argmin().lo());
    seed_hi = std::max(seed_hi, fn->argmin().hi());
  }
  const MonotonePredicate up_nonneg = [&](double x) { return upper(x) >= 0.0; };
  const MonotonePredicate low_positive = [&](double x) { return lower(x) > 0.0; };
  const Bracket ub = expand_bracket(up_nonneg, seed_lo - 1.0, seed_hi + 1.0);
  const double y_lo = bisect_threshold(up_nonneg, ub.lo, ub.hi);
  const Bracket lb = expand_bracket(low_positive, seed_lo - 1.0, seed_hi + 1.0);
  const double y_hi = bisect_threshold(low_positive, lb.lo, lb.hi);
  return y_hi >= y_lo ? Interval(y_lo, y_hi) : Interval((y_lo + y_hi) / 2.0);
}

std::optional<double> recover_single_crash_weight(
    const std::vector<ScalarFunctionPtr>& survivors,
    const ScalarFunction& crashed, double consensus) {
  FTMAO_EXPECTS(!survivors.empty());
  double survivor_grad = 0.0;
  for (const auto& fn : survivors) survivor_grad += fn->derivative(consensus);
  const double g_crashed = crashed.derivative(consensus);
  if (std::abs(g_crashed) < 1e-9) return std::nullopt;
  return -survivor_grad / g_crashed;
}

CrashRunMetrics run_crash(const CrashScenario& scenario) {
  scenario.validate();
  const std::size_t n = scenario.n;
  const std::unique_ptr<StepSchedule> schedule = make_schedule(scenario.step);

  // crash_round[i] = round during which agent i crashes; "infinity" if never.
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> crash_round(n, kNever);
  std::vector<std::size_t> served(n, 0);
  for (const auto& c : scenario.crashes) {
    crash_round[c.agent] = c.round;
    served[c.agent] = c.recipients_served;
  }

  std::vector<ScalarFunctionPtr> survivors;
  std::vector<ScalarFunctionPtr> crashed;
  for (std::size_t i = 0; i < n; ++i) {
    (crash_round[i] == kNever ? survivors : crashed)
        .push_back(scenario.functions[i]);
  }

  std::vector<std::unique_ptr<CrashSbgAgent>> agents;
  agents.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents.push_back(std::make_unique<CrashSbgAgent>(
        AgentId{static_cast<std::uint32_t>(i)}, scenario.functions[i],
        scenario.initial_states[i], *schedule));
  }

  CrashRunMetrics metrics;
  metrics.optima = crash_optima_set(survivors, crashed);

  auto record = [&] {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    double dist = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (crash_round[i] != kNever) continue;
      const double x = agents[i]->state();
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      dist = std::max(dist, metrics.optima.distance_to(x));
    }
    metrics.disagreement.push(hi - lo);
    metrics.max_dist_to_y.push(dist);
  };
  record();

  for (std::size_t t = 1; t <= scenario.rounds; ++t) {
    // Collect broadcasts of agents still sending this round.
    std::vector<std::optional<SbgPayload>> sent(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (crash_round[i] >= t)
        sent[i] = agents[i]->broadcast(Round{static_cast<std::uint32_t>(t)});
    }
    // Deliver and step agents that have not yet crashed (an agent crashing
    // in round t halts without completing its own update).
    for (std::size_t r = 0; r < n; ++r) {
      if (crash_round[r] <= t) continue;
      std::vector<Received<SbgPayload>> inbox;
      inbox.reserve(n - 1);
      for (std::size_t s = 0; s < n; ++s) {
        if (s == r || !sent[s]) continue;
        if (crash_round[s] == t) {
          // Partial delivery: first served[s] recipients in ascending
          // order, skipping the sender itself.
          std::size_t rank = r < s ? r : r - 1;
          if (rank >= served[s]) continue;
        }
        inbox.push_back({AgentId{static_cast<std::uint32_t>(s)}, *sent[s]});
      }
      agents[r]->step(Round{static_cast<std::uint32_t>(t)}, inbox);
    }
    record();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (crash_round[i] == kNever)
      metrics.final_states.push_back(agents[i]->state());
  }
  return metrics;
}

}  // namespace ftmao
