#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace ftmao {

void ExecutionTrace::write_csv(std::ostream& os) const {
  os << "t";
  for (std::size_t id : honest_ids) os << ",agent_" << id;
  os << '\n';
  for (std::size_t t = 0; t < rounds.size(); ++t) {
    os << t;
    for (double x : rounds[t]) os << ',' << x;
    os << '\n';
  }
}

InvariantReport check_sbg_invariants(const ExecutionTrace& trace,
                                     std::size_t f, double gradient_bound,
                                     const StepSchedule& schedule,
                                     double tolerance) {
  InvariantReport report;
  FTMAO_EXPECTS(!trace.rounds.empty());
  const std::size_t m = trace.rounds.front().size();
  FTMAO_EXPECTS(m > f);
  const double rho = 1.0 - 1.0 / (2.0 * static_cast<double>(m - f));

  auto fail_at = [&report](std::size_t t, const std::string& what) {
    std::ostringstream os;
    os << "round " << t << ": " << what;
    report.fail(os.str());
  };

  for (std::size_t t = 1; t < trace.rounds.size(); ++t) {
    const auto& prev = trace.rounds[t - 1];
    const auto& cur = trace.rounds[t];
    FTMAO_EXPECTS(cur.size() == m);

    const auto [p_lo, p_hi] = std::minmax_element(prev.begin(), prev.end());
    const auto [c_lo, c_hi] = std::minmax_element(cur.begin(), cur.end());
    const double lambda = schedule.at(t - 1);
    const double budget = lambda * gradient_bound;

    // I1: hull drift bound.
    if (*c_lo < *p_lo - budget - tolerance)
      fail_at(t, "hull escaped low (I1)");
    if (*c_hi > *p_hi + budget + tolerance)
      fail_at(t, "hull escaped high (I1)");

    // I2: per-agent step bound beyond the previous hull.
    for (std::size_t j = 0; j < m; ++j) {
      const double below = *p_lo - cur[j];
      const double above = cur[j] - *p_hi;
      if (std::max(below, above) > budget + tolerance)
        fail_at(t, "agent moved beyond lambda*L of previous hull (I2)");
    }

    // I3: contraction inequality (10).
    const double spread_prev = *p_hi - *p_lo;
    const double spread_cur = *c_hi - *c_lo;
    if (spread_cur >
        rho * spread_prev + 2.0 * gradient_bound * lambda * rho + tolerance)
      fail_at(t, "disagreement contraction violated (I3)");
  }
  return report;
}

}  // namespace ftmao
