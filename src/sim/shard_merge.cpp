#include "sim/shard_merge.hpp"

#include <map>
#include <set>
#include <sstream>

namespace ftmao {

namespace {

std::vector<std::string> csv_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// "7,2,1,split-brain,..." -> "7:2:1:split-brain" (empty on malformed
/// rows) — the first four CSV fields, matching cell_key().
std::string row_key(const std::string& line) {
  std::size_t pos = 0;
  for (int field = 0; field < 4; ++field) {
    pos = line.find(',', pos);
    if (pos == std::string::npos) return {};
    ++pos;
  }
  std::string key = line.substr(0, pos - 1);
  for (char& c : key)
    if (c == ',') c = ':';
  return key;
}

std::string shard_tag(const ShardManifest& m) {
  return "shard " + std::to_string(m.shard_index) + "/" +
         std::to_string(m.shard_count);
}

bool same_grid(const ShardManifest& a, const ShardManifest& b) {
  return a.schema == b.schema && a.shard_count == b.shard_count &&
         a.sizes == b.sizes && a.dims == b.dims && a.attacks == b.attacks &&
         a.seeds == b.seeds && a.rounds == b.rounds && a.spread == b.spread &&
         a.step == b.step;
}

}  // namespace

MergeReport merge_shards(const std::vector<ShardArtifact>& shards) {
  MergeReport report;
  if (shards.empty()) {
    report.errors.push_back("no shard artifacts to merge");
    return report;
  }

  const ShardManifest& ref = shards.front().manifest;
  SweepConfig config;
  try {
    config = config_from_manifest(ref);
    config.validate();
  } catch (const std::exception& e) {
    report.errors.push_back("reference manifest does not describe a valid "
                            "grid: " +
                            std::string(e.what()));
    return report;
  }

  const std::vector<CellSpec> expected = sweep_cell_specs(config);
  report.expected_cells = expected.size();

  std::map<std::string, std::string> rows;        // cell key -> CSV line
  std::map<std::string, std::string> row_source;  // cell key -> shard tag

  for (const ShardArtifact& artifact : shards) {
    const ShardManifest& m = artifact.manifest;
    const std::string tag = shard_tag(m);

    if (!same_grid(m, ref)) {
      report.errors.push_back(tag + ": manifest disagrees with the reference "
                                    "grid (mixing artifacts from different "
                                    "sweeps?)");
      continue;
    }
    if (m.git_rev != ref.git_rev) {
      report.errors.push_back(tag + ": built from git rev '" + m.git_rev +
                              "' but reference is '" + ref.git_rev +
                              "' (mixing binaries)");
      continue;
    }
    if (m.exit_status != 0) {
      report.errors.push_back(tag + ": artifact reports exit status " +
                              std::to_string(m.exit_status));
      continue;
    }

    // The manifest's claimed coverage must be exactly what the partition
    // assigns — a worker that ran the wrong cells is not mergeable.
    std::vector<std::string> assigned;
    for (const CellSpec& cell :
         shard_cell_specs(config, m.shard_index, m.shard_count))
      assigned.push_back(cell_key(cell));
    if (m.cells != assigned) {
      report.errors.push_back(tag + ": manifest cell list does not match the "
                                    "partition's assignment");
      continue;
    }
    const std::set<std::string> assigned_set(assigned.begin(), assigned.end());

    const std::vector<std::string> lines = csv_lines(artifact.csv);
    if (lines.empty() || lines.front() != sweep_csv_header()) {
      report.errors.push_back(tag + ": CSV missing or wrong header");
      continue;
    }
    std::set<std::string> seen;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::string key = row_key(lines[i]);
      if (key.empty()) {
        report.errors.push_back(tag + ": malformed CSV row '" + lines[i] +
                                "'");
        continue;
      }
      if (!assigned_set.count(key)) {
        report.errors.push_back(tag + ": row for cell " + key +
                                " which the partition does not assign to it");
        continue;
      }
      if (!seen.insert(key).second) {
        report.errors.push_back(tag + ": duplicate row for cell " + key);
        continue;
      }
      const auto [it, inserted] = rows.emplace(key, lines[i]);
      if (inserted) {
        row_source[key] = tag;
      } else if (it->second != lines[i]) {
        // Two workers covered the same cell and disagree: the determinism
        // contract (same cell + same seed => same bits on every machine,
        // backend, and thread count) is broken somewhere.
        report.errors.push_back("cell " + key + ": " + row_source[key] +
                                " and " + tag +
                                " produced different bits for the same cell");
      }
    }
    for (const std::string& key : assigned)
      if (!seen.count(key))
        report.errors.push_back(tag + ": CSV lacks a row for assigned cell " +
                                key);
  }

  std::ostringstream os;
  os << sweep_csv_header() << '\n';
  for (const CellSpec& cell : expected) {
    const std::string key = cell_key(cell);
    const auto it = rows.find(key);
    if (it == rows.end()) {
      report.missing_cells.push_back(key);
    } else {
      os << it->second << '\n';
      ++report.merged_cells;
    }
  }
  report.csv = os.str();
  return report;
}

}  // namespace ftmao
