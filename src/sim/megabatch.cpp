#include "sim/megabatch.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/contracts.hpp"
#include "simd/simd.hpp"

namespace ftmao {

namespace {

std::atomic<std::uint64_t> g_batches{0};
std::atomic<std::uint64_t> g_replicas{0};
std::atomic<std::uint64_t> g_lanes{0};
std::atomic<std::uint64_t> g_padded{0};

std::uint64_t task_cost(std::size_t count, std::size_t rounds,
                        const MegabatchKey& key) {
  return static_cast<std::uint64_t>(count) * rounds * key.n *
         std::max<std::size_t>(key.dim, 1);
}

void account_task(EngineStats& stats, const MegabatchTask& task,
                  const LaneWidthFn& width_for_lanes) {
  const std::size_t lanes = task.count * std::max<std::size_t>(task.key.dim, 1);
  const std::size_t w = std::max<std::size_t>(width_for_lanes(lanes), 1);
  stats.batches += 1;
  stats.replicas += task.count;
  stats.lanes += lanes;
  stats.padded_lanes += (lanes + w - 1) / w * w;
}

}  // namespace

std::size_t active_lane_width(std::size_t lanes) {
  return simd_kernels_for_lanes(std::max<std::size_t>(lanes, 1)).width;
}

MegabatchPlan plan_megabatches(std::vector<MegabatchItem> items,
                               std::size_t batch_size, std::size_t rounds,
                               const LaneWidthFn& width_for_lanes) {
  const LaneWidthFn& width =
      width_for_lanes ? width_for_lanes : LaneWidthFn(active_lane_width);

  MegabatchPlan plan;
  if (items.empty()) return plan;

  // Stable-group by shape key, preserving caller order within each group;
  // first appearance decides group order, so the plan is a pure function of
  // the item sequence. Grids have few distinct shapes, so a linear scan per
  // item beats hashing.
  std::vector<MegabatchKey> group_keys;
  std::vector<std::uint32_t> group_of(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::size_t g = 0;
    while (g < group_keys.size() && !(group_keys[g] == items[i].key)) ++g;
    if (g == group_keys.size()) group_keys.push_back(items[i].key);
    group_of[i] = static_cast<std::uint32_t>(g);
  }
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return group_of[a] < group_of[b];
                   });
  plan.items.reserve(items.size());
  for (std::size_t idx : order) plan.items.push_back(items[idx]);

  // Slice each group into engine calls.
  std::size_t group_first = 0;
  while (group_first < plan.items.size()) {
    const MegabatchKey key = plan.items[group_first].key;
    std::size_t group_last = group_first;
    while (group_last < plan.items.size() &&
           plan.items[group_last].key == key) {
      ++group_last;
    }
    const std::size_t group_count = group_last - group_first;
    const std::size_t dim = std::max<std::size_t>(key.dim, 1);
    std::size_t chunk;
    std::size_t full_chunk;
    if (batch_size != 0) {
      // Caller-pinned replica count per engine call (the --batch contract).
      chunk = full_chunk = batch_size;
    } else {
      // q replicas fill whole registers: q * dim = lcm(dim, width) lanes.
      // The width probe uses an aligned lane count (dim * 32 is a multiple
      // of every register width) so it reports the widest backend the
      // machine offers — probing the group's own lane total would let an
      // awkward count like 9 answer "scalar" and defeat the chunking.
      const std::size_t w = std::max<std::size_t>(
          width(dim * kMegabatchAutoLaneTarget), 1);
      const std::size_t q = w / std::gcd(dim, w);
      const std::size_t block_lanes = q * dim;
      const std::size_t blocks =
          std::max<std::size_t>(1, kMegabatchAutoLaneTarget / block_lanes);
      full_chunk = blocks * q;
      chunk = q;
    }

    std::size_t first = group_first;
    while (first < group_last) {
      const std::size_t remaining = group_last - first;
      // Largest aligned chunk that still fits; the final task carries the
      // unaligned tail (< chunk replicas) and dispatches to a narrower
      // backend on its own instead of padding a wide register row.
      std::size_t count;
      if (remaining >= full_chunk) {
        count = full_chunk;
      } else if (remaining >= chunk) {
        count = (remaining / chunk) * chunk;
      } else {
        count = remaining;
      }
      MegabatchTask task;
      task.first = first;
      task.count = count;
      task.key = key;
      task.cost = task_cost(count, rounds, key);
      account_task(plan.stats, task, width);
      plan.tasks.push_back(task);
      first += count;
    }
    FTMAO_ENSURES(group_count > 0 && first == group_last);
    group_first = group_last;
  }

  // Deterministic cost-ordered submission: longest first so heterogeneous
  // grids don't serialize behind a tail of large cells; ties keep input
  // order.
  std::stable_sort(plan.tasks.begin(), plan.tasks.end(),
                   [](const MegabatchTask& a, const MegabatchTask& b) {
                     if (a.cost != b.cost) return a.cost > b.cost;
                     return a.first < b.first;
                   });
  return plan;
}

std::vector<MegabatchTask> plan_uniform_slices(
    std::size_t count, std::size_t batch_size, std::size_t rounds,
    const MegabatchKey& key, const LaneWidthFn& width_for_lanes) {
  std::vector<MegabatchItem> items(count);
  for (std::size_t i = 0; i < count; ++i) {
    items[i].key = key;
    items[i].cell = i;
  }
  MegabatchPlan plan =
      plan_megabatches(std::move(items), batch_size, rounds, width_for_lanes);
  // Single shape: grouping is the identity, so task ranges index [0, count)
  // directly.
  return std::move(plan.tasks);
}

void engine_stats_reset() {
  g_batches.store(0, std::memory_order_relaxed);
  g_replicas.store(0, std::memory_order_relaxed);
  g_lanes.store(0, std::memory_order_relaxed);
  g_padded.store(0, std::memory_order_relaxed);
}

void engine_stats_record(std::size_t replicas, std::size_t lanes,
                         std::size_t padded_lanes) {
  g_batches.fetch_add(1, std::memory_order_relaxed);
  g_replicas.fetch_add(replicas, std::memory_order_relaxed);
  g_lanes.fetch_add(lanes, std::memory_order_relaxed);
  g_padded.fetch_add(padded_lanes, std::memory_order_relaxed);
}

EngineStats engine_stats_snapshot() {
  EngineStats stats;
  stats.batches = g_batches.load(std::memory_order_relaxed);
  stats.replicas = g_replicas.load(std::memory_order_relaxed);
  stats.lanes = g_lanes.load(std::memory_order_relaxed);
  stats.padded_lanes = g_padded.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ftmao
