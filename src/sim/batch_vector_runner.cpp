#include "sim/batch_vector_runner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "common/contracts.hpp"
#include "sim/batch_grad.hpp"
#include "sim/megabatch.hpp"
#include "simd/simd.hpp"
#include "trim/trim_batch.hpp"

namespace ftmao {

namespace {

// All-ones mask double for masked_blend (a lane is "taken" iff any bit
// is set; stored masks are all-ones / all-zeros).
const double kAllBits = std::bit_cast<double>(~std::uint64_t{0});

class BatchedVectorSbgRunner {
 public:
  explicit BatchedVectorSbgRunner(std::span<const VectorScenario> replicas)
      : replicas_(replicas) {
    FTMAO_EXPECTS(!replicas.empty());
    const VectorScenario& first = replicas.front();
    for (const VectorScenario& s : replicas) {
      s.validate();
      FTMAO_EXPECTS(s.n == first.n);
      FTMAO_EXPECTS(s.f == first.f);
      FTMAO_EXPECTS(s.dim == first.dim);
      FTMAO_EXPECTS(s.rounds == first.rounds);
      FTMAO_EXPECTS(s.byzantine_count == first.byzantine_count);
    }
    n_ = first.n;
    f_ = first.f;
    d_ = first.dim;
    F_ = first.byzantine_count;
    H_ = n_ - F_;
    rounds_ = first.rounds;
    B_ = replicas.size();
    L_ = d_ * B_;
    kernels_ = &simd_kernels_for_lanes(L_);
    const std::size_t w = kernels_->width;
    Lpad_ = (L_ + w - 1) / w * w;

    x_.assign(H_ * Lpad_, 0.0);
    bx_.assign(H_ * Lpad_, 0.0);
    bg_.assign(H_ * Lpad_, 0.0);
    dx_.assign(n_ * Lpad_, 0.0);
    dg_.assign(n_ * Lpad_, 0.0);
    ctx_.assign(H_ * Lpad_, 0.0);
    ctg_.assign(H_ * Lpad_, 0.0);
    view_class_.assign(H_, 0);
    class_hash_.assign(H_, 0);
    class_rep_.assign(H_, 0);
    class_done_.assign(H_, 0);
    num_classes_ = 1;  // F_ == 0: every recipient trims the same multiset
    lam_.assign(Lpad_, 0.0);
    pe_.assign(Lpad_, 0.0);
    pemask_.assign(Lpad_, 0.0);
    clo_.assign(Lpad_, 0.0);
    chi_.assign(Lpad_, 0.0);
    defx_.assign(Lpad_, 0.0);
    defg_.assign(Lpad_, 0.0);
    xv_ = Vec(d_);
    gv_ = Vec(d_);

    const double inf = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < B_; ++r) {
      const VectorScenario& s = replicas_[r];
      for (std::size_t k = 0; k < d_; ++k) {
        const std::size_t l = k * B_ + r;
        if (s.constraint.empty()) {
          clo_[l] = -inf;
          chi_[l] = inf;
        } else {
          clo_[l] = s.constraint[k].lo();
          chi_[l] = s.constraint[k].hi();
        }
        // Unset default payloads mean zero vectors (the agent-ctor rule).
        defx_[l] = s.default_payload.state.dim() == 0
                       ? 0.0
                       : s.default_payload.state[k];
        defg_[l] = s.default_payload.gradient.dim() == 0
                       ? 0.0
                       : s.default_payload.gradient[k];
      }
      // Initial states, projected per coordinate exactly like the agent
      // constructor.
      for (std::size_t j = 0; j < H_; ++j) {
        for (std::size_t k = 0; k < d_; ++k) {
          double v = s.honest_initial[j][k];
          if (!s.constraint.empty()) v = s.constraint[k].project(v);
          x_[j * Lpad_ + k * B_ + r] = v;
        }
      }
      schedules_.push_back(make_schedule(s.step));
      if (F_ > 0) {
        Rng rng(s.seed);
        adversaries_.push_back(make_vector_adversary(
            s.attack, d_, rng.substream("vector-adversary", 0)));
      }
    }

    // Devirtualized gradient planes: agent row j takes the SIMD kernel
    // path iff every replica's cost j publishes per-coordinate
    // descriptors of one uniform kind (sim/batch_grad.hpp). Lanes follow
    // the engine layout l = k * B_ + r; the padding tail [L_, Lpad_)
    // gets neutral widths so transcendental rows stay finite there.
    grad_.init(H_, Lpad_);
    {
      std::vector<BatchGradientKernel> ks;
      for (std::size_t j = 0; j < H_; ++j) {
        for (std::size_t r = 0; r < B_; ++r) {
          ks.clear();
          if (!replicas_[r].honest_costs[j]->batch_gradient_kernels(ks) ||
              ks.size() != d_) {
            grad_.devirtualize(j);
            continue;
          }
          for (std::size_t k = 0; k < d_; ++k)
            grad_.set(j, j * Lpad_ + k * B_ + r, r == 0 && k == 0, ks[k]);
        }
        grad_.finish_row(j, L_);
      }
    }

    if (F_ > 0) {
      views_.resize(B_);
      for (std::size_t r = 0; r < B_; ++r) {
        views_[r].reserve(H_);
        for (std::size_t j = 0; j < H_; ++j)
          views_[r].push_back({AgentId{static_cast<std::uint32_t>(j)},
                               VecPayload{Vec(d_), Vec(d_)}});
      }
      bpx_.assign(H_ * F_ * Lpad_, 0.0);
      bpg_.assign(H_ * F_ * Lpad_, 0.0);
      bpresent_.assign(H_ * F_ * Lpad_, 0.0);
    }

    // Failure-free optima: identical cost sets (by object identity, the
    // common case for a seed batch sharing one family) compute the
    // reference minimizer once and reuse the result bits.
    results_.resize(B_);
    for (std::size_t r = 0; r < B_; ++r) {
      if (r > 0 && replicas_[r].honest_costs == replicas_[r - 1].honest_costs) {
        results_[r].failure_free_optimum =
            results_[r - 1].failure_free_optimum;
        continue;
      }
      std::vector<VectorWeightedSum::Term> terms;
      const double weight = 1.0 / static_cast<double>(H_);
      for (const auto& fn : replicas_[r].honest_costs)
        terms.push_back({weight, fn});
      results_[r].failure_free_optimum =
          VectorWeightedSum(std::move(terms)).a_minimizer();
    }
  }

  std::vector<VectorRunResult> run() {
    engine_stats_record(B_, L_, Lpad_);
    for (std::size_t r = 0; r < B_; ++r) record(r);
    for (std::size_t t = 1; t <= rounds_; ++t) {
      broadcast_phase();
      if (F_ > 0) collect_byzantine(t);
      fill_lambda(t);
      step_phase();
      for (std::size_t r = 0; r < B_; ++r) record(r);
    }
    for (std::size_t r = 0; r < B_; ++r) {
      for (std::size_t j = 0; j < H_; ++j) {
        Vec state(d_);
        for (std::size_t k = 0; k < d_; ++k)
          state[k] = x_[j * Lpad_ + k * B_ + r];
        results_[r].final_states.push_back(std::move(state));
      }
    }
    return std::move(results_);
  }

 private:
  double& x(std::size_t j, std::size_t k, std::size_t r) {
    return x_[j * Lpad_ + k * B_ + r];
  }

  // Step 1: snapshot states and compute every honest gradient once (the
  // scalar path evaluates the same pure gradient in both broadcast() and
  // step(); one evaluation produces the same bits).
  void broadcast_phase() {
    std::memcpy(bx_.data(), x_.data(), H_ * Lpad_ * sizeof(double));
    for (std::size_t j = 0; j < H_; ++j) {
      if (grad_.fast(j)) {
        // Closed-form row: one SIMD sweep over all coordinates and
        // replicas at once. Padding lanes compute +0.0 (scale 0), the
        // same bits the zero-initialized plane held before.
        grad_.run(*kernels_, j, x_.data() + j * Lpad_,
                  bg_.data() + j * Lpad_);
        continue;
      }
      for (std::size_t r = 0; r < B_; ++r) {
        for (std::size_t k = 0; k < d_; ++k) xv_[k] = x(j, k, r);
        replicas_[r].honest_costs[j]->gradient_into(xv_, gv_);
        for (std::size_t k = 0; k < d_; ++k)
          bg_[j * Lpad_ + k * B_ + r] = gv_[k];
      }
    }
  }

  // Step 2a: per-recipient Byzantine payloads, in the engine's exact
  // call order (recipient-major, sender-minor; one adversary object per
  // replica); recipients are then partitioned into view classes for the
  // trim sharing in step_phase.
  void collect_byzantine(std::size_t t) {
    const Round round{static_cast<std::uint32_t>(t)};
    for (std::size_t r = 0; r < B_; ++r) {
      for (std::size_t j = 0; j < H_; ++j) {
        VecPayload& p = views_[r][j].payload;
        for (std::size_t k = 0; k < d_; ++k) {
          p.state[k] = bx_[j * Lpad_ + k * B_ + r];
          p.gradient[k] = bg_[j * Lpad_ + k * B_ + r];
        }
      }
    }
    for (std::size_t j = 0; j < H_; ++j) {
      for (std::size_t b = 0; b < F_; ++b) {
        const std::size_t o = (j * F_ + b) * Lpad_;
        for (std::size_t r = 0; r < B_; ++r) {
          const RoundView<VecPayload> view{round, views_[r]};
          const auto payload = adversaries_[r]->send_to(
              AgentId{static_cast<std::uint32_t>(H_ + b)},
              AgentId{static_cast<std::uint32_t>(j)}, view);
          if (payload.has_value()) {
            FTMAO_EXPECTS(payload->state.dim() == d_);
            FTMAO_EXPECTS(payload->gradient.dim() == d_);
          }
          for (std::size_t k = 0; k < d_; ++k) {
            const std::size_t l = k * B_ + r;
            if (payload.has_value()) {
              bpx_[o + l] = payload->state[k];
              bpg_[o + l] = payload->gradient[k];
              bpresent_[o + l] = kAllBits;
            } else {
              bpx_[o + l] = 0.0;
              bpg_[o + l] = 0.0;
              bpresent_[o + l] = 0.0;
            }
          }
        }
      }
    }
    classify_recipients();
  }

  // FNV-1a over recipient j's Byzantine block; collisions resolved by the
  // memcmp verify in classify_recipients.
  std::uint64_t block_hash(std::size_t j) const {
    const std::size_t stride = F_ * Lpad_;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](const double* p, std::size_t m) {
      for (std::size_t i = 0; i < m; ++i) {
        h ^= std::bit_cast<std::uint64_t>(p[i]);
        h *= 0x100000001b3ULL;
      }
    };
    mix(bpx_.data() + j * stride, stride);
    mix(bpg_.data() + j * stride, stride);
    mix(bpresent_.data() + j * stride, stride);
    return h;
  }

  bool blocks_equal(std::size_t a, std::size_t b) const {
    const std::size_t stride = F_ * Lpad_;
    const std::size_t bytes = stride * sizeof(double);
    return std::memcmp(bpx_.data() + a * stride, bpx_.data() + b * stride,
                       bytes) == 0 &&
           std::memcmp(bpg_.data() + a * stride, bpg_.data() + b * stride,
                       bytes) == 0 &&
           std::memcmp(bpresent_.data() + a * stride,
                       bpresent_.data() + b * stride, bytes) == 0;
  }

  // Two recipients share a view class iff their Byzantine payload blocks
  // are bitwise identical this round: the honest part of every multiset is
  // the same broadcast snapshot (this engine has no delivery filter), so
  // same-class recipients trim the same rows and share the trim pair.
  // Recipient-independent strategies give one class, split-brain two,
  // per-recipient noise H.
  void classify_recipients() {
    num_classes_ = 0;
    for (std::size_t j = 0; j < H_; ++j) {
      const std::uint64_t h = block_hash(j);
      std::size_t c = 0;
      for (; c < num_classes_; ++c) {
        if (class_hash_[c] == h && blocks_equal(class_rep_[c], j)) break;
      }
      if (c == num_classes_) {
        class_hash_[c] = h;
        class_rep_[c] = j;
        ++num_classes_;
      }
      view_class_[j] = static_cast<std::uint32_t>(c);
    }
  }

  void fill_lambda(std::size_t t) {
    for (std::size_t r = 0; r < B_; ++r) {
      const double lambda = schedules_[r]->at(t - 1);
      for (std::size_t k = 0; k < d_; ++k) lam_[k * B_ + r] = lambda;
    }
  }

  // Builds recipient j's n x Lpad multiset matrices. The honest part is
  // the broadcast snapshot verbatim (every recipient's multiset contains
  // all honest broadcasts — own value plus the other n-1 senders — and
  // Trim is order-insensitive); only the Byzantine rows vary per
  // recipient, absent payloads blending to the per-replica default.
  void assemble(std::size_t j) {
    std::memcpy(dx_.data(), bx_.data(), H_ * Lpad_ * sizeof(double));
    std::memcpy(dg_.data(), bg_.data(), H_ * Lpad_ * sizeof(double));
    for (std::size_t b = 0; b < F_; ++b) {
      const std::size_t o = (j * F_ + b) * Lpad_;
      kernels_->masked_blend(bpresent_.data() + o, bpx_.data() + o,
                             bpg_.data() + o, defx_.data(), defg_.data(),
                             dx_.data() + (H_ + b) * Lpad_,
                             dg_.data() + (H_ + b) * Lpad_, Lpad_);
    }
  }

  // Steps 2b-3: trim per (coordinate, replica) lane and apply the fused
  // projected step to each recipient row. The first recipient of each view
  // class computes the trim pair into the class row; later same-class
  // recipients replay it — the batched analogue of the scalar
  // RoundPayloadCache memoization, per class instead of all-or-nothing.
  void step_phase() {
    std::fill(class_done_.begin(), class_done_.end(), std::uint8_t{0});
    for (std::size_t j = 0; j < H_; ++j) {
      const std::uint32_t cls = view_class_[j];
      double* tx = ctx_.data() + cls * Lpad_;
      double* tg = ctg_.data() + cls * Lpad_;
      if (!class_done_[cls]) {
        class_done_[cls] = 1;
        assemble(j);
        trim_batch(dx_.data(), n_, Lpad_, f_, *kernels_, tx);
        trim_batch(dg_.data(), n_, Lpad_, f_, *kernels_, tg);
      }
      kernels_->fused_step(tx, tg, lam_.data(), clo_.data(),
                           chi_.data(), pemask_.data(), x_.data() + j * Lpad_,
                           pe_.data(), Lpad_);
    }
  }

  // The reference recorder's exact fold order: per agent, the distance
  // to the failure-free optimum, then the pairwise L-inf diameters.
  void record(std::size_t r) {
    double diam = 0.0;
    double dist = 0.0;
    const Vec& opt = results_[r].failure_free_optimum;
    for (std::size_t a = 0; a < H_; ++a) {
      double acc = 0.0;
      for (std::size_t k = 0; k < d_; ++k) {
        const double dk = x(a, k, r) - opt[k];
        acc += dk * dk;
      }
      dist = std::max(dist, std::sqrt(acc));
      for (std::size_t b = a + 1; b < H_; ++b) {
        double best = 0.0;
        for (std::size_t k = 0; k < d_; ++k)
          best = std::max(best, std::abs(x(a, k, r) - x(b, k, r)));
        diam = std::max(diam, best);
      }
    }
    results_[r].disagreement.push(diam);
    results_[r].dist_to_average_optimum.push(dist);
  }

  std::span<const VectorScenario> replicas_;
  const SimdKernels* kernels_ = nullptr;
  std::size_t n_ = 0, f_ = 0, d_ = 0, H_ = 0, F_ = 0;
  std::size_t rounds_ = 0, B_ = 0, L_ = 0, Lpad_ = 0;

  std::vector<double> x_, bx_, bg_, dx_, dg_;
  std::vector<double> ctx_, ctg_;  ///< per-class trim outputs, H x Lpad
  std::vector<double> lam_, pe_, pemask_, clo_, chi_, defx_, defg_;
  std::vector<double> bpx_, bpg_, bpresent_;

  // This round's recipient view classes (classify_recipients).
  std::vector<std::uint32_t> view_class_;
  std::vector<std::uint64_t> class_hash_;
  std::vector<std::uint32_t> class_rep_;
  std::vector<std::uint8_t> class_done_;
  std::size_t num_classes_ = 0;
  std::vector<std::unique_ptr<StepSchedule>> schedules_;
  std::vector<std::unique_ptr<VectorAdversary>> adversaries_;
  std::vector<std::vector<Received<VecPayload>>> views_;
  std::vector<VectorRunResult> results_;
  BatchGradientPlanes grad_;
  Vec xv_, gv_;
};

}  // namespace

std::vector<VectorRunResult> run_vector_sbg_batch(
    std::span<const VectorScenario> replicas) {
  if (replicas.empty()) return {};
  BatchedVectorSbgRunner runner(replicas);
  return runner.run();
}

}  // namespace ftmao
