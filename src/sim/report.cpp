#include "sim/report.hpp"

#include <cmath>
#include <ostream>

#include "common/contracts.hpp"
#include "common/table.hpp"

namespace ftmao {

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& claim) {
  os << "==============================================================\n"
     << id << "\n"
     << claim << "\n"
     << "==============================================================\n";
}

std::vector<std::size_t> log_spaced(std::size_t t_max, std::size_t per_decade) {
  FTMAO_EXPECTS(t_max >= 1);
  FTMAO_EXPECTS(per_decade >= 1);
  std::vector<std::size_t> out;
  double t = 1.0;
  const double factor = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  while (static_cast<std::size_t>(t) < t_max) {
    const auto idx = static_cast<std::size_t>(t);
    if (out.empty() || idx > out.back()) out.push_back(idx);
    t *= factor;
  }
  if (out.empty() || out.back() != t_max) out.push_back(t_max);
  return out;
}

void print_series_table(std::ostream& os,
                        const std::vector<std::string>& series_names,
                        const std::vector<const Series*>& series,
                        std::size_t t_max) {
  FTMAO_EXPECTS(series_names.size() == series.size());
  for (const Series* s : series) FTMAO_EXPECTS(s != nullptr && !s->empty());
  std::vector<std::string> headers{"t"};
  headers.insert(headers.end(), series_names.begin(), series_names.end());
  Table table(headers);
  for (std::size_t t : log_spaced(t_max)) {
    table.row();
    table.add(t);
    for (const Series* s : series) {
      table.add(t < s->size() ? (*s)[t] : s->back(), 4);
    }
  }
  table.print(os);
}

}  // namespace ftmao
