#pragma once

// Batched (structure-of-arrays) coordinate-wise vector-SBG engine.
//
// run_vector_sbg advances one d-dimensional replica through virtual
// per-coordinate trims; this engine advances B replicas of one scenario
// shape in lockstep by packing replicas x coordinates into contiguous
// lanes. Each honest agent owns one row of L = dim * B doubles laid out
// coordinate-major, replica-minor —
//
//   lane(k, r) = k * B + r        (k < dim, r < B)
//
// — padded at the row tail (only) to Lpad, a multiple of the SIMD
// backend width. Every kernel of the round loop (sorting-network trim,
// fused projected step, masked payload blend) then runs over Lpad-lane
// rows of the width-aware backend (simd_kernels_for_lanes(L)): the d=8,
// B=3 cell that starves an 8-wide register at scalar batching (3 of 8
// lanes useful) fills three full AVX-512 registers here.
//
// Bit-identity contract: every per-field output (disagreement series,
// dist-to-optimum series, final states, failure-free optimum) equals
// run_vector_scenario's for each replica, for every backend. The same
// three rules as the scalar batch engine apply (docs/performance.md):
// identical per-lane operation sequences, conditional-swap comparators,
// std tie semantics — plus: gradients are computed once per agent per
// round (the scalar path computes the same pure gradient twice, in
// broadcast() and step(); both calls see the same state, so collapsing
// them is unobservable), and recipient-independent adversary payloads
// are detected bitwise per round and their trims computed once and
// replayed for all recipients (the batch analogue of the scalar
// strategies' RoundPayloadCache).

#include <span>
#include <vector>

#include "sim/vector_scenario.hpp"

namespace ftmao {

/// Runs every replica in lockstep. All replicas must share one shape
/// (n, f, dim, rounds, byzantine_count); costs, initial states, attack,
/// step schedule, seed, constraint, and default payload may vary per
/// replica. Returns one VectorRunResult per replica, bit-identical
/// per-field to run_vector_scenario(replicas[i]).
std::vector<VectorRunResult> run_vector_sbg_batch(
    std::span<const VectorScenario> replicas);

}  // namespace ftmao
