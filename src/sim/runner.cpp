#include "sim/runner.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "baseline/consistent.hpp"
#include "baseline/dgd.hpp"
#include "baseline/local_gd.hpp"
#include "common/contracts.hpp"
#include "core/admissibility.hpp"
#include "core/sbg.hpp"
#include "core/valid_set.hpp"
#include "net/sync.hpp"

namespace ftmao {

namespace {

// Shared harness: builds the honest population via `make_agent`, attaches
// adversaries, runs the rounds, and collects the metric series. The
// `state_of` accessor reads an honest agent's state; `audit` (optional)
// runs post-step witness checks with access to the pre-round honest
// values.
template <typename Agent>
RunMetrics run_with_agents(
    const Scenario& scenario,
    const std::function<std::unique_ptr<Agent>(std::size_t idx, AgentId id)>&
        make_agent,
    const RunOptions& options) {
  scenario.validate();

  const std::vector<std::size_t> honest_idx = scenario.honest_indices();
  const ValidFamily family(scenario.honest_functions(), scenario.f);

  // Surviving honest agents first (metrics are taken over exactly these),
  // then crashing-but-honest agents (they follow the protocol until their
  // crash round; the delivery filter silences them afterwards).
  std::vector<std::unique_ptr<Agent>> agents;
  agents.reserve(honest_idx.size());
  std::vector<std::unique_ptr<Agent>> crashing_agents;
  SyncEngine<SbgPayload> engine;
  for (std::size_t idx : honest_idx) {
    agents.push_back(make_agent(idx, AgentId{static_cast<std::uint32_t>(idx)}));
    engine.add_honest(AgentId{static_cast<std::uint32_t>(idx)},
                      agents.back().get());
  }
  for (const auto& [who, when] : scenario.crashes) {
    crashing_agents.push_back(
        make_agent(who, AgentId{static_cast<std::uint32_t>(who)}));
    engine.add_honest(AgentId{static_cast<std::uint32_t>(who)},
                      crashing_agents.back().get());
  }

  Rng rng(scenario.seed);

  // Random link failures ([9],[15]-style): each honest->honest message is
  // lost independently with drop_probability. The decision is a pure hash
  // of (seed, from, to, round) so it is deterministic and independent of
  // delivery evaluation order. Byzantine senders are exempt (worst case:
  // the adversary's links never fail).
  if (scenario.drop_probability > 0.0 || !scenario.crashes.empty()) {
    const std::uint64_t drop_seed = mix64(scenario.seed ^ 0xD509F00DULL);
    const double p = scenario.drop_probability;
    // Precompute O(1)-lookup tables once per run instead of copying the
    // faulty/crash vectors into the lambda and scanning them per message:
    // faulty_bitmap[i] marks Byzantine senders (exempt from drops),
    // crash_round[i] is the round from which sender i falls silent.
    constexpr std::uint32_t kNeverCrashes = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint8_t> faulty_bitmap(scenario.n, 0);
    for (std::size_t idx : scenario.faulty) faulty_bitmap[idx] = 1;
    std::vector<std::uint32_t> crash_round(scenario.n, kNeverCrashes);
    for (const auto& [who, when] : scenario.crashes)
      crash_round[who] = static_cast<std::uint32_t>(when);
    engine.set_delivery_filter(
        [drop_seed, p, faulty_bitmap = std::move(faulty_bitmap),
         crash_round = std::move(crash_round)](AgentId from, AgentId to,
                                               Round t) {
          if (t.value >= crash_round[from.value]) return false;
          if (p <= 0.0) return true;
          if (faulty_bitmap[from.value]) return true;
          std::uint64_t h = mix64(drop_seed ^ from.value);
          h = mix64(h ^ to.value);
          h = mix64(h ^ t.value);
          return static_cast<double>(h >> 11) * 0x1.0p-53 >= p;
        });
  }

  std::vector<std::unique_ptr<SbgAdversary>> adversaries;
  std::vector<std::unique_ptr<ConsistentWrapper>> wrappers;
  for (std::size_t idx : scenario.faulty) {
    adversaries.push_back(
        make_adversary(scenario.attack, rng.substream("adversary", idx)));
    ByzantineNode<SbgPayload>* node = adversaries.back().get();
    if (scenario.attack.consistent) {
      wrappers.push_back(
          std::make_unique<ConsistentWrapper>(*adversaries.back()));
      node = wrappers.back().get();
    }
    engine.add_byzantine(AgentId{static_cast<std::uint32_t>(idx)}, node);
  }

  RunMetrics metrics;
  metrics.optima = family.optima_set();
  if (options.record_trace) {
    metrics.trace.emplace();
    metrics.trace->honest_ids = honest_idx;
  }

  auto record = [&] {
    double lo = agents.front()->state();
    double hi = lo;
    double dist = family.distance_to_optima(lo);
    std::vector<double> snapshot;
    if (metrics.trace) snapshot.reserve(agents.size());
    for (const auto& agent : agents) {
      const double x = agent->state();
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      dist = std::max(dist, family.distance_to_optima(x));
      if (metrics.trace) snapshot.push_back(x);
    }
    metrics.disagreement.push(hi - lo);
    metrics.max_dist_to_y.push(dist);
    if (metrics.trace) metrics.trace->rounds.push_back(std::move(snapshot));
  };
  record();
  metrics.max_projection_error.push(0.0);

  const std::vector<ScalarFunctionPtr> honest_fns = scenario.honest_functions();

  for (std::size_t t = 1; t <= scenario.rounds; ++t) {
    const bool audit = options.audit_witnesses &&
                       t <= options.audit_max_rounds &&
                       (t - 1) % options.audit_every == 0;
    std::vector<double> pre_states;
    std::vector<double> pre_gradients;
    if (audit) {
      pre_states.reserve(agents.size());
      pre_gradients.reserve(agents.size());
      for (std::size_t a = 0; a < agents.size(); ++a) {
        pre_states.push_back(agents[a]->state());
        pre_gradients.push_back(
            honest_fns[a]->derivative(agents[a]->state()));
      }
    }

    engine.run_round(Round{static_cast<std::uint32_t>(t)});
    record();

    double max_proj = 0.0;
    if constexpr (std::is_same_v<Agent, SbgAgent>) {
      for (const auto& agent : agents) {
        max_proj = std::max(max_proj, std::abs(agent->last_step().projection_error));
      }
      if (audit) {
        auto absorb = [](WitnessStats& stats, const TrimAuditResult& r) {
          ++stats.checks;
          if (!r.witness_found) ++stats.failures;
          if (!r.exact) ++stats.inexact;
          if (r.witness_found) {
            stats.min_weight_seen =
                std::min(stats.min_weight_seen, r.min_support_weight);
            stats.min_support_seen =
                std::min(stats.min_support_seen, r.support_size);
          }
        };
        for (const auto& agent : agents) {
          absorb(metrics.state_witness,
                 audit_trim(pre_states, agent->last_step().trimmed_state,
                            scenario.f));
          absorb(metrics.gradient_witness,
                 audit_trim(pre_gradients, agent->last_step().trimmed_gradient,
                            scenario.f));
        }
      }
    }
    metrics.max_projection_error.push(max_proj);
  }

  metrics.final_states.reserve(agents.size());
  for (const auto& agent : agents) metrics.final_states.push_back(agent->state());
  return metrics;
}

}  // namespace

RunMetrics run_sbg(const Scenario& scenario, const RunOptions& options) {
  const std::unique_ptr<StepSchedule> schedule = make_schedule(scenario.step);
  SbgConfig config;
  config.n = scenario.n;
  config.f = scenario.f;
  config.default_payload = scenario.default_payload;
  config.constraint = scenario.constraint;

  return run_with_agents<SbgAgent>(
      scenario,
      [&](std::size_t idx, AgentId id) {
        return std::make_unique<SbgAgent>(id, scenario.functions[idx],
                                          scenario.initial_states[idx],
                                          *schedule, config);
      },
      options);
}

RunMetrics run_dgd(const Scenario& scenario) {
  const std::unique_ptr<StepSchedule> schedule = make_schedule(scenario.step);
  return run_with_agents<DgdAgent>(
      scenario,
      [&](std::size_t idx, AgentId id) {
        return std::make_unique<DgdAgent>(id, scenario.functions[idx],
                                          scenario.initial_states[idx],
                                          *schedule, scenario.n,
                                          scenario.default_payload);
      },
      RunOptions{});
}

RunMetrics run_local_gd(const Scenario& scenario) {
  const std::unique_ptr<StepSchedule> schedule = make_schedule(scenario.step);
  return run_with_agents<LocalGdAgent>(
      scenario,
      [&](std::size_t idx, AgentId id) {
        return std::make_unique<LocalGdAgent>(id, scenario.functions[idx],
                                              scenario.initial_states[idx],
                                              *schedule);
      },
      RunOptions{});
}

}  // namespace ftmao
