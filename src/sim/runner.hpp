#pragma once

// Executors: wire a Scenario into agents + adversaries + engine, run it,
// and collect metrics. One entry point per algorithm so benches and tests
// can compare like for like.

#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace ftmao {

struct RunOptions {
  bool audit_witnesses = false;  ///< per-iteration Lemma 2/Cor 1 LP audits
  std::size_t audit_every = 1;   ///< audit every k-th iteration
  std::size_t audit_max_rounds = 200;  ///< stop auditing after this many (LPs are costly)
  bool record_trace = false;  ///< keep the full per-round state trace
};

/// Algorithm SBG (Section 4), or projected SBG when the scenario carries a
/// constraint (Section 6).
RunMetrics run_sbg(const Scenario& scenario, const RunOptions& options = {});

/// Fault-oblivious distributed gradient descent under the same scenario.
RunMetrics run_dgd(const Scenario& scenario);

/// Communication-free local gradient descent under the same scenario.
RunMetrics run_local_gd(const Scenario& scenario);

}  // namespace ftmao
