#include "sim/certify.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <sstream>

#include "cache/cell_key.hpp"
#include "cache/result_cache.hpp"
#include "common/contracts.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/theory.hpp"
#include "func/library.hpp"
#include "sim/batch_async_runner.hpp"
#include "sim/batch_runner.hpp"
#include "sim/batch_vector_runner.hpp"
#include "sim/megabatch.hpp"
#include "sim/runner.hpp"
#include "sim/vector_scenario.hpp"
#include "sim/scenario_io.hpp"
#include "sim/trace.hpp"

namespace ftmao {

namespace {

const std::vector<AttackKind>& attack_grid() {
  static const std::vector<AttackKind> grid{
      AttackKind::None,         AttackKind::Silent,
      AttackKind::FixedValue,   AttackKind::SplitBrain,
      AttackKind::HullEdgeUp,   AttackKind::HullEdgeDown,
      AttackKind::RandomNoise,  AttackKind::SignFlip,
      AttackKind::PullToTarget, AttackKind::FlipFlop};
  return grid;
}

Scenario scenario_for(const CertifyOptions& o, AttackKind kind) {
  Scenario s =
      make_standard_scenario(o.n, o.f, o.spread, kind, o.rounds, o.seed);
  s.attack.target = -6.0 * o.spread;
  s.attack.gradient_magnitude = 10.0;
  return s;
}

// Canonical cache spec for one per-attack run of a certification section.
// `section` names the engine family ("certify-sync" also covers the audit
// knobs, which are compile-time constants folded into the schema rev);
// (n, f, dim, rounds) are the section's own values, which differ from the
// sync section's for async/vector. Attack target/gradient overrides are
// derived from spread, so spread covers them.
std::string certify_cache_spec(const CertifyOptions& o, const char* section,
                               AttackKind kind, std::size_t n, std::size_t f,
                               std::size_t dim, std::size_t rounds) {
  std::ostringstream os;
  os << section << ";family=std-mixed;n=" << n << ";f=" << f << ";dim=" << dim
     << ";attack=" << attack_kind_name(kind)
     << ";spread=" << cache_canon_double(o.spread) << ";rounds=" << rounds
     << ";seed=" << o.seed << ";constraint=none";
  return os.str();
}

// Slices a section's pending list into engine batches. Every attack in a
// section runs the same scenario shape, so with megabatching on the
// planner contributes its lane-aligned chunking (full-register batches
// plus one narrow tail instead of a padded one), cost-ordered submission,
// and occupancy accounting; off reproduces the fixed batch_size chunks.
// The scalar engine runs one replica per task either way. Task ranges
// index the pending list: [task.first, task.first + task.count).
std::vector<MegabatchTask> section_slices(const CertifyOptions& options,
                                          std::size_t pending_count,
                                          std::size_t grid_count,
                                          const MegabatchKey& key,
                                          std::size_t rounds) {
  if (!options.scalar_engine && options.megabatch)
    return plan_uniform_slices(pending_count, options.batch_size, rounds, key);
  const std::size_t chunk =
      options.scalar_engine
          ? 1
          : std::min(
                options.batch_size == 0 ? grid_count : options.batch_size,
                grid_count);
  std::vector<MegabatchTask> tasks;
  for (std::size_t first = 0; first < pending_count; first += chunk) {
    MegabatchTask task;
    task.first = first;
    task.count = std::min(chunk, pending_count - first);
    task.key = key;
    tasks.push_back(task);
  }
  return tasks;
}

}  // namespace

CertificationReport certify_sbg(const CertifyOptions& options) {
  FTMAO_EXPECTS(options.n > 3 * options.f);
  CertificationReport report;

  double worst_disagreement = 0.0;
  std::string worst_disagreement_attack = "none";
  double worst_dist = 0.0;
  std::string worst_dist_attack = "none";
  bool witnesses_ok = true;
  std::string witness_detail = "all audits passed";
  bool invariants_ok = true;
  std::string invariant_detail = "I1-I3 held every round";
  bool bounds_ok = true;
  std::string bound_detail = "measured <= Lemma 3 bound every round";

  // Each attack's run is independent; evaluate them on the pool, writing
  // per-attack verdicts into fixed slots, then fold in grid order below so
  // the report (including which attack is named "worst") is byte-identical
  // to the serial path regardless of thread count.
  struct AttackVerdict {
    std::string attack;
    double disagreement = 0.0;
    double dist = 0.0;
    bool witnesses_ok = true;
    bool invariants_ok = true;
    std::string invariant_violation;
    bool bounds_ok = true;
    std::string bound_violation;
  };
  const std::vector<AttackKind>& grid = attack_grid();
  std::vector<AttackVerdict> verdicts(grid.size());

  // Cache pre-pass: per-attack verdicts whose canonical key resolves are
  // restored field-for-field from the payload; the rest land on `pending`
  // and are simulated exactly as without a cache. A payload that fails to
  // decode is discarded and the attack recomputed.
  std::vector<std::size_t> pending(grid.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  std::vector<CellKey> sync_keys;
  if (options.cache != nullptr) {
    pending.clear();
    sync_keys.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      sync_keys.push_back(make_cell_key(
          certify_cache_spec(options, "certify-sync", grid[i], options.n,
                             options.f, 1, options.rounds)));
      bool filled = false;
      if (const std::optional<std::string> payload =
              options.cache->lookup(sync_keys[i])) {
        try {
          PayloadReader reader(*payload);
          AttackVerdict v;
          v.attack = attack_kind_name(grid[i]);
          v.disagreement = reader.get_double();
          v.dist = reader.get_double();
          v.witnesses_ok = reader.get_bool();
          v.invariants_ok = reader.get_bool();
          v.invariant_violation = reader.get_string();
          v.bounds_ok = reader.get_bool();
          v.bound_violation = reader.get_string();
          if (reader.exhausted()) {
            verdicts[i] = std::move(v);
            filled = true;
          }
        } catch (const ContractViolation&) {
          filled = false;
        }
      }
      if (!filled) pending.push_back(i);
    }
  }

  const HarmonicStep harmonic;
  // A batch of attacks advances in lockstep through the batched engine;
  // the per-attack verdicts (audits, invariants, bound domination) are
  // then computed from each replica's metrics exactly as the scalar path
  // would. Chunking over the pending subset is sound for the same reason
  // chunking at all is: each replica's numbers are independent of its
  // batch-mates.
  const std::vector<MegabatchTask> sync_tasks = section_slices(
      options, pending.size(), grid.size(),
      MegabatchKey{MegabatchEngine::kSync, options.n, options.f, 1},
      options.rounds);
  const std::size_t num_chunks = sync_tasks.size();
  parallel_for_each(options.num_threads, num_chunks, [&](std::size_t task) {
    const std::size_t first = sync_tasks[task].first;
    const std::size_t batch = sync_tasks[task].count;
    RunOptions run_options;
    run_options.record_trace = true;
    run_options.audit_witnesses = true;
    run_options.audit_every = 5;
    run_options.audit_max_rounds = 100;

    std::vector<Scenario> replicas;
    replicas.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i)
      replicas.push_back(scenario_for(options, grid[pending[first + i]]));
    std::vector<RunMetrics> metrics;
    if (options.scalar_engine) {
      for (const Scenario& s : replicas) metrics.push_back(run_sbg(s, run_options));
    } else {
      metrics = run_sbg_batch(replicas, run_options);
    }

    for (std::size_t i = 0; i < batch; ++i) {
      const Scenario& s = replicas[i];
      const RunMetrics& m = metrics[i];
      AttackVerdict& v = verdicts[pending[first + i]];
      v.attack = attack_kind_name(grid[pending[first + i]]);
      v.disagreement = m.final_disagreement();
      v.dist = m.final_max_dist();
      v.witnesses_ok =
          m.state_witness.all_passed() && m.gradient_witness.all_passed();

      const double L = family_gradient_bound(s.honest_functions());
      if (s.step.kind == StepKind::Harmonic) {
        const InvariantReport inv =
            check_sbg_invariants(*m.trace, s.f, L, harmonic);
        if (!inv.ok) {
          v.invariants_ok = false;
          v.invariant_violation = inv.violations.front();
        }
        const Series bound = disagreement_upper_bound(
            m.disagreement[0], L, harmonic, s.n - s.f, s.f, s.rounds);
        for (std::size_t t = 0; t < bound.size(); ++t) {
          if (m.disagreement[t] > bound[t] + 1e-9) {
            v.bounds_ok = false;
            std::ostringstream os;
            os << "bound violated under " << v.attack << " at round " << t;
            v.bound_violation = os.str();
            break;
          }
        }
      }
    }
  });

  if (options.cache != nullptr) {
    for (std::size_t i : pending) {
      const AttackVerdict& v = verdicts[i];
      PayloadWriter writer;
      writer.put_double(v.disagreement);
      writer.put_double(v.dist);
      writer.put_bool(v.witnesses_ok);
      writer.put_bool(v.invariants_ok);
      writer.put_string(v.invariant_violation);
      writer.put_bool(v.bounds_ok);
      writer.put_string(v.bound_violation);
      options.cache->insert(sync_keys[i], writer.bytes());
    }
  }

  for (const AttackVerdict& v : verdicts) {
    if (v.disagreement > worst_disagreement) {
      worst_disagreement = v.disagreement;
      worst_disagreement_attack = v.attack;
    }
    if (v.dist > worst_dist) {
      worst_dist = v.dist;
      worst_dist_attack = v.attack;
    }
    if (!v.witnesses_ok) {
      witnesses_ok = false;
      witness_detail = "witness audit failed under " + v.attack;
    }
    if (!v.invariants_ok) {
      invariants_ok = false;
      invariant_detail = "under " + v.attack + ": " + v.invariant_violation;
    }
    if (!v.bounds_ok) {
      bounds_ok = false;
      bound_detail = v.bound_violation;
    }
  }

  auto add = [&report](std::string name, bool ok, std::string detail) {
    report.checks.push_back({std::move(name), ok, std::move(detail)});
  };
  add("theorem2-consensus", worst_disagreement <= options.consensus_eps,
      "worst " + format_double(worst_disagreement, 4) + " (" +
          worst_disagreement_attack + ")");
  add("theorem2-optimality", worst_dist <= options.optimality_eps,
      "worst " + format_double(worst_dist, 4) + " (" + worst_dist_attack + ")");
  add("lemma2-witnesses", witnesses_ok, witness_detail);
  add("trace-invariants", invariants_ok, invariant_detail);
  add("lemma3-bound-domination", bounds_ok, bound_detail);

  // Asynchronous section: the same attack grid through the event-driven
  // n > 5f engine (batched across attacks), checking that Theorem 2's
  // guarantees survive message delays. Per-attack results land in fixed
  // slots and fold in grid order, like the synchronous section.
  if (options.async_rounds > 0) {
    FTMAO_EXPECTS(options.async_n > 5 * options.async_f);
    std::vector<std::pair<double, double>> async_results(grid.size());

    std::vector<std::size_t> async_pending(grid.size());
    std::iota(async_pending.begin(), async_pending.end(), std::size_t{0});
    std::vector<CellKey> async_keys;
    if (options.cache != nullptr) {
      async_pending.clear();
      async_keys.reserve(grid.size());
      for (std::size_t i = 0; i < grid.size(); ++i) {
        async_keys.push_back(make_cell_key(certify_cache_spec(
            options, "certify-async", grid[i], options.async_n,
            options.async_f, 1, options.async_rounds)));
        bool filled = false;
        if (const std::optional<std::string> payload =
                options.cache->lookup(async_keys[i])) {
          try {
            PayloadReader reader(*payload);
            const double disagreement = reader.get_double();
            const double dist = reader.get_double();
            if (reader.exhausted()) {
              async_results[i] = {disagreement, dist};
              filled = true;
            }
          } catch (const ContractViolation&) {
            filled = false;
          }
        }
        if (!filled) async_pending.push_back(i);
      }
    }

    const std::vector<MegabatchTask> async_tasks = section_slices(
        options, async_pending.size(), grid.size(),
        MegabatchKey{MegabatchEngine::kAsync, options.async_n, options.async_f,
                     1},
        options.async_rounds);
    parallel_for_each(
        options.num_threads, async_tasks.size(), [&](std::size_t task) {
          const std::size_t first = async_tasks[task].first;
          const std::size_t batch = async_tasks[task].count;
          std::vector<AsyncScenario> replicas;
          replicas.reserve(batch);
          for (std::size_t i = 0; i < batch; ++i) {
            AsyncScenario s = make_standard_async_scenario(
                options.async_n, options.async_f, options.spread,
                grid[async_pending[first + i]], options.async_rounds,
                options.seed);
            s.attack.target = -6.0 * options.spread;
            s.attack.gradient_magnitude = 10.0;
            replicas.push_back(std::move(s));
          }
          std::vector<AsyncRunMetrics> metrics;
          if (options.scalar_engine) {
            for (const AsyncScenario& s : replicas)
              metrics.push_back(run_async_sbg(s));
          } else {
            metrics = run_async_sbg_batch(replicas);
          }
          for (std::size_t i = 0; i < batch; ++i)
            async_results[async_pending[first + i]] = {
                metrics[i].disagreement.back(),
                metrics[i].max_dist_to_y.back()};
        });

    if (options.cache != nullptr) {
      for (std::size_t i : async_pending) {
        PayloadWriter writer;
        writer.put_double(async_results[i].first);
        writer.put_double(async_results[i].second);
        options.cache->insert(async_keys[i], writer.bytes());
      }
    }

    double async_worst_disagreement = 0.0;
    std::string async_worst_disagreement_attack = "none";
    double async_worst_dist = 0.0;
    std::string async_worst_dist_attack = "none";
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (async_results[i].first > async_worst_disagreement) {
        async_worst_disagreement = async_results[i].first;
        async_worst_disagreement_attack = attack_kind_name(grid[i]);
      }
      if (async_results[i].second > async_worst_dist) {
        async_worst_dist = async_results[i].second;
        async_worst_dist_attack = attack_kind_name(grid[i]);
      }
    }
    add("async-consensus",
        async_worst_disagreement <= options.async_consensus_eps,
        "worst " + format_double(async_worst_disagreement, 4) + " (" +
            async_worst_disagreement_attack + ")");
    add("async-optimality", async_worst_dist <= options.async_optimality_eps,
        "worst " + format_double(async_worst_dist, 4) + " (" +
            async_worst_dist_attack + ")");
  }

  // Vector section: the attack grid once more, through the coordinate-wise
  // d-dimensional engine (lane-packed batch across attacks). Consensus must
  // clear its threshold; dist to the failure-free optimum is only held to
  // the loose vector_optimality_eps (the valid set may be non-convex, see
  // certify.hpp). Fixed slots + grid-order fold, like the other sections.
  if (options.vector_rounds > 0) {
    std::vector<std::pair<double, double>> vector_results(grid.size());

    std::vector<std::size_t> vector_pending(grid.size());
    std::iota(vector_pending.begin(), vector_pending.end(), std::size_t{0});
    std::vector<CellKey> vector_keys;
    if (options.cache != nullptr) {
      vector_pending.clear();
      vector_keys.reserve(grid.size());
      for (std::size_t i = 0; i < grid.size(); ++i) {
        vector_keys.push_back(make_cell_key(certify_cache_spec(
            options, "certify-vector", grid[i], options.n, options.f,
            options.vector_dim, options.vector_rounds)));
        bool filled = false;
        if (const std::optional<std::string> payload =
                options.cache->lookup(vector_keys[i])) {
          try {
            PayloadReader reader(*payload);
            const double disagreement = reader.get_double();
            const double dist = reader.get_double();
            if (reader.exhausted()) {
              vector_results[i] = {disagreement, dist};
              filled = true;
            }
          } catch (const ContractViolation&) {
            filled = false;
          }
        }
        if (!filled) vector_pending.push_back(i);
      }
    }

    const std::vector<MegabatchTask> vector_tasks = section_slices(
        options, vector_pending.size(), grid.size(),
        MegabatchKey{MegabatchEngine::kVector, options.n, options.f,
                     options.vector_dim},
        options.vector_rounds);
    parallel_for_each(
        options.num_threads, vector_tasks.size(), [&](std::size_t task) {
          const std::size_t first = vector_tasks[task].first;
          const std::size_t batch = vector_tasks[task].count;
          std::vector<VectorScenario> replicas;
          replicas.reserve(batch);
          for (std::size_t i = 0; i < batch; ++i) {
            VectorScenario s = make_standard_vector_scenario(
                options.n, options.f, options.spread,
                grid[vector_pending[first + i]], options.vector_rounds,
                options.seed, options.vector_dim);
            s.attack.target = -6.0 * options.spread;
            s.attack.gradient_magnitude = 10.0;
            replicas.push_back(std::move(s));
          }
          std::vector<VectorRunResult> metrics;
          if (options.scalar_engine) {
            for (const VectorScenario& s : replicas)
              metrics.push_back(run_vector_scenario(s));
          } else {
            metrics = run_vector_sbg_batch(replicas);
          }
          for (std::size_t i = 0; i < batch; ++i)
            vector_results[vector_pending[first + i]] = {
                metrics[i].disagreement.back(),
                metrics[i].dist_to_average_optimum.back()};
        });

    if (options.cache != nullptr) {
      for (std::size_t i : vector_pending) {
        PayloadWriter writer;
        writer.put_double(vector_results[i].first);
        writer.put_double(vector_results[i].second);
        options.cache->insert(vector_keys[i], writer.bytes());
      }
    }

    double vector_worst_disagreement = 0.0;
    std::string vector_worst_disagreement_attack = "none";
    double vector_worst_dist = 0.0;
    std::string vector_worst_dist_attack = "none";
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (vector_results[i].first > vector_worst_disagreement) {
        vector_worst_disagreement = vector_results[i].first;
        vector_worst_disagreement_attack = attack_kind_name(grid[i]);
      }
      if (vector_results[i].second > vector_worst_dist) {
        vector_worst_dist = vector_results[i].second;
        vector_worst_dist_attack = attack_kind_name(grid[i]);
      }
    }
    add("vector-consensus",
        vector_worst_disagreement <= options.vector_consensus_eps,
        "worst " + format_double(vector_worst_disagreement, 4) + " (" +
            vector_worst_disagreement_attack + ")");
    add("vector-optimality", vector_worst_dist <= options.vector_optimality_eps,
        "worst " + format_double(vector_worst_dist, 4) + " (" +
            vector_worst_dist_attack + ")");
  }

  // Liveness contrast: the attack grid must actually bite — the untrimmed
  // baseline has to fail under the coordinated attack, otherwise the whole
  // certification would be vacuous.
  {
    double dgd_dist = 0.0;
    bool dgd_cached = false;
    CellKey dgd_key;
    if (options.cache != nullptr) {
      dgd_key = make_cell_key(
          certify_cache_spec(options, "certify-dgd", AttackKind::PullToTarget,
                             options.n, options.f, 1, options.rounds));
      if (const std::optional<std::string> payload =
              options.cache->lookup(dgd_key)) {
        try {
          PayloadReader reader(*payload);
          const double dist = reader.get_double();
          if (reader.exhausted()) {
            dgd_dist = dist;
            dgd_cached = true;
          }
        } catch (const ContractViolation&) {
          dgd_cached = false;
        }
      }
    }
    if (!dgd_cached) {
      Scenario s = scenario_for(options, AttackKind::PullToTarget);
      const RunMetrics dgd = run_dgd(s);
      dgd_dist = dgd.final_max_dist();
      if (options.cache != nullptr) {
        PayloadWriter writer;
        writer.put_double(dgd_dist);
        options.cache->insert(dgd_key, writer.bytes());
      }
    }
    add("attack-liveness (DGD must fail)",
        dgd_dist > 10.0 * options.optimality_eps,
        "DGD dist " + format_double(dgd_dist, 4));
  }

  report.passed = std::all_of(report.checks.begin(), report.checks.end(),
                              [](const CertifyCheck& c) { return c.passed; });
  return report;
}

}  // namespace ftmao
