#pragma once

// Declarative description of one experiment run: population, fault set,
// cost functions, attack, step schedule, and horizon. Runners in
// runner.hpp execute a Scenario with SBG or a baseline and collect the
// metric series the benches print.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"

namespace ftmao {

enum class AttackKind {
  None,        ///< faulty set empty or silent-equivalent
  Silent,
  FixedValue,
  SplitBrain,
  HullEdgeUp,
  HullEdgeDown,
  RandomNoise,
  SignFlip,
  PullToTarget,
  FlipFlop,       ///< alternates hull-edge direction every `period` rounds
  DelayedStrike,  ///< honest-looking until activation_round, then pulls
};

/// All attack knobs in one bag; each kind reads the fields it needs.
struct AttackConfig {
  AttackKind kind = AttackKind::None;
  double state_magnitude = 100.0;     ///< FixedValue/SplitBrain/RandomNoise
  double gradient_magnitude = 10.0;   ///< FixedValue/SplitBrain/PullToTarget/RandomNoise
  double target = 0.0;                ///< PullToTarget
  double amplification = 3.0;         ///< SignFlip
  std::size_t flip_period = 1;        ///< FlipFlop
  std::size_t activation_round = 1;   ///< DelayedStrike
  bool consistent = false;  ///< wrap in ConsistentWrapper (reliable broadcast)
};

enum class StepKind { Harmonic, Power, Constant };

struct StepConfig {
  StepKind kind = StepKind::Harmonic;
  double scale = 1.0;
  double exponent = 0.75;  ///< Power only
};

struct Scenario {
  std::size_t n = 0;  ///< total agents
  std::size_t f = 0;  ///< fault bound given to the algorithm
  std::vector<std::size_t> faulty;  ///< actual faulty agent indices (<= f of them)
  std::vector<ScalarFunctionPtr> functions;  ///< size n; faulty entries unused
  std::vector<double> initial_states;        ///< size n
  AttackConfig attack;
  StepConfig step;
  std::size_t rounds = 1000;
  std::uint64_t seed = 1;
  std::optional<Interval> constraint;  ///< Section 6 projection set
  SbgPayload default_payload{};        ///< substituted for missing tuples

  /// Probability that any honest-to-honest message is lost in a given
  /// round (random link failures, cf. [9],[15]). Byzantine messages are
  /// never dropped (worst case). Deterministic per seed.
  double drop_probability = 0.0;

  /// Hybrid fault model: honest agents that crash (stop sending, full
  /// silence) from the given round on. Crash is a special case of
  /// Byzantine behaviour, so crashed agents count against the same f
  /// budget: |faulty| + |crashes| <= f. Metrics and the valid family are
  /// computed over the surviving honest agents.
  std::vector<std::pair<std::size_t, std::size_t>> crashes;  ///< (agent, round)

  bool is_crashed(std::size_t agent) const;

  /// Cost functions of the non-faulty agents, in agent order.
  /// Cost functions of the non-faulty, never-crashing agents, in order.
  std::vector<ScalarFunctionPtr> honest_functions() const;

  /// Indices of the non-faulty, never-crashing agents, in order.
  std::vector<std::size_t> honest_indices() const;

  bool is_faulty(std::size_t agent) const;

  void validate() const;
};

/// Builds the step schedule described by the config.
std::unique_ptr<StepSchedule> make_schedule(const StepConfig& config);

/// Builds one adversary instance for a faulty agent. `rng` seeds the
/// randomized attacks (a distinct substream per faulty agent).
std::unique_ptr<SbgAdversary> make_adversary(const AttackConfig& config,
                                             Rng rng);

/// Convenience scenario: n agents with evenly spread mixed cost functions
/// over [-spread/2, spread/2], the last `f` agents faulty, initial states
/// spread over the same range.
Scenario make_standard_scenario(std::size_t n, std::size_t f, double spread,
                                AttackKind attack, std::size_t rounds,
                                std::uint64_t seed = 1);

}  // namespace ftmao
