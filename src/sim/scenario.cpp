#include "sim/scenario.hpp"

#include <algorithm>

#include "baseline/consistent.hpp"
#include "common/contracts.hpp"
#include "func/library.hpp"

namespace ftmao {

std::vector<ScalarFunctionPtr> Scenario::honest_functions() const {
  std::vector<ScalarFunctionPtr> out;
  out.reserve(n - faulty.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_faulty(i) && !is_crashed(i)) out.push_back(functions[i]);
  }
  return out;
}

std::vector<std::size_t> Scenario::honest_indices() const {
  std::vector<std::size_t> out;
  out.reserve(n - faulty.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_faulty(i) && !is_crashed(i)) out.push_back(i);
  }
  return out;
}

bool Scenario::is_crashed(std::size_t agent) const {
  for (const auto& [who, when] : crashes) {
    if (who == agent) return true;
  }
  return false;
}

bool Scenario::is_faulty(std::size_t agent) const {
  return std::find(faulty.begin(), faulty.end(), agent) != faulty.end();
}

void Scenario::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(faulty.size() <= f);
  FTMAO_EXPECTS(functions.size() == n);
  FTMAO_EXPECTS(initial_states.size() == n);
  FTMAO_EXPECTS(rounds >= 1);
  FTMAO_EXPECTS(drop_probability >= 0.0 && drop_probability < 1.0);
  FTMAO_EXPECTS(faulty.size() + crashes.size() <= f);
  for (const auto& [who, when] : crashes) {
    FTMAO_EXPECTS(who < n);
    FTMAO_EXPECTS(when >= 1);
    FTMAO_EXPECTS(!is_faulty(who));  // crash and Byzantine are exclusive
  }
  for (std::size_t i : faulty) FTMAO_EXPECTS(i < n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_faulty(i)) FTMAO_EXPECTS(functions[i] != nullptr);
  }
}

std::unique_ptr<StepSchedule> make_schedule(const StepConfig& config) {
  switch (config.kind) {
    case StepKind::Harmonic:
      return std::make_unique<HarmonicStep>(config.scale);
    case StepKind::Power:
      return std::make_unique<PowerStep>(config.scale, config.exponent);
    case StepKind::Constant:
      return std::make_unique<ConstantStep>(config.scale);
  }
  FTMAO_EXPECTS(false);
  return nullptr;
}

std::unique_ptr<SbgAdversary> make_adversary(const AttackConfig& config,
                                             Rng rng) {
  switch (config.kind) {
    case AttackKind::None:
    case AttackKind::Silent:
      return std::make_unique<SilentAdversary>();
    case AttackKind::FixedValue:
      return std::make_unique<FixedValueAdversary>(
          SbgPayload{config.state_magnitude, config.gradient_magnitude});
    case AttackKind::SplitBrain:
      return std::make_unique<SplitBrainAdversary>(config.state_magnitude,
                                                   config.gradient_magnitude);
    case AttackKind::HullEdgeUp:
      return std::make_unique<HullEdgeAdversary>(/*push_up=*/true);
    case AttackKind::HullEdgeDown:
      return std::make_unique<HullEdgeAdversary>(/*push_up=*/false);
    case AttackKind::RandomNoise:
      return std::make_unique<RandomNoiseAdversary>(
          rng, config.state_magnitude, config.gradient_magnitude);
    case AttackKind::SignFlip:
      return std::make_unique<SignFlipAdversary>(config.amplification);
    case AttackKind::PullToTarget:
      return std::make_unique<PullToTargetAdversary>(config.target,
                                                     config.gradient_magnitude);
    case AttackKind::FlipFlop:
      return std::make_unique<FlipFlopAdversary>(config.flip_period);
    case AttackKind::DelayedStrike:
      return std::make_unique<DelayedActivationAdversary>(
          Round{static_cast<std::uint32_t>(config.activation_round)},
          std::make_unique<PullToTargetAdversary>(config.target,
                                                  config.gradient_magnitude));
  }
  FTMAO_EXPECTS(false);
  return nullptr;
}

Scenario make_standard_scenario(std::size_t n, std::size_t f, double spread,
                                AttackKind attack, std::size_t rounds,
                                std::uint64_t seed) {
  FTMAO_EXPECTS(n > 3 * f);
  Scenario s;
  s.n = n;
  s.f = f;
  for (std::size_t i = n - f; i < n; ++i) s.faulty.push_back(i);
  s.functions = make_mixed_family(n, spread);
  s.initial_states.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.initial_states[i] =
        n == 1 ? 0.0
               : -spread / 2.0 + spread * static_cast<double>(i) /
                                     static_cast<double>(n - 1);
  }
  s.attack.kind = attack;
  s.rounds = rounds;
  s.seed = seed;
  return s;
}

}  // namespace ftmao
