#pragma once

// Shared SoA plumbing for devirtualized batch gradients.
//
// Each batch engine (sim/batch_runner, batch_async_runner,
// batch_vector_runner) keeps one BatchGradientPlanes: per-row kernel
// kinds plus lane-major parameter planes (p0..p3, scale) with the
// engine's row stride. A row devirtualizes iff every useful lane in it
// carries the SAME BatchGradientKernel::Kind (the SIMD kernels are
// per-shape; a mixed row would need per-lane dispatch and is rarer than
// it is worth) — otherwise the engine keeps its virtual derivative()
// loop for that row. The descriptors and the virtual path compute
// identical bits (func/scalar_function.hpp), so this is purely a
// throughput decision.

#include <cstddef>
#include <vector>

#include "func/scalar_function.hpp"
#include "simd/simd.hpp"

namespace ftmao {

class BatchGradientPlanes {
 public:
  using Kind = BatchGradientKernel::Kind;

  /// rows × stride planes, all rows initially kNone with zeroed params.
  void init(std::size_t rows, std::size_t stride) {
    rows_ = rows;
    stride_ = stride;
    kind_.assign(rows, Kind::kNone);
    p0_.assign(rows * stride, 0.0);
    p1_.assign(rows * stride, 0.0);
    p2_.assign(rows * stride, 0.0);
    p3_.assign(rows * stride, 0.0);
    scale_.assign(rows * stride, 0.0);
  }

  /// Records lane `lane` (absolute index: row*stride + offset) of `row`.
  /// The first lane of a row decides its kind; any later lane whose kind
  /// differs — including kNone — devirtualizes the whole row, and a row
  /// once devirtualized stays so regardless of later lanes.
  void set(std::size_t row, std::size_t lane, bool first,
           const BatchGradientKernel& k) {
    if (first) {
      kind_[row] = k.kind;
    } else if (k.kind != kind_[row]) {
      kind_[row] = Kind::kNone;
    }
    p0_[lane] = k.p0;
    p1_[lane] = k.p1;
    p2_[lane] = k.p2;
    p3_[lane] = k.p3;
    scale_[lane] = k.scale;
  }

  /// Marks `row` virtual unconditionally (e.g. a vector function that
  /// offers no per-coordinate descriptors).
  void devirtualize(std::size_t row) { kind_[row] = Kind::kNone; }

  /// Fills the padding lanes [used, stride) of `row`. The transcendental
  /// shapes divide by p1/p2 widths, so zero-initialized padding would
  /// compute 0/0 = NaN in dead lanes; neutral widths of 1.0 with scale 0
  /// keep them finite (±0 gradients). Clamp rows keep the all-zero
  /// descriptor, whose padding-lane output is exactly 0.0 as before.
  /// Call once per row after the used lanes are set.
  void finish_row(std::size_t row, std::size_t used) {
    if (kind_[row] != Kind::kTanh && kind_[row] != Kind::kSmoothAbs &&
        kind_[row] != Kind::kSoftplusDiff) {
      return;
    }
    const std::size_t base = row * stride_;
    for (std::size_t l = used; l < stride_; ++l) {
      p1_[base + l] = 1.0;
      p2_[base + l] = 1.0;
    }
  }

  /// True iff the row runs through a SIMD kernel (uniform non-kNone kind).
  bool fast(std::size_t row) const { return kind_[row] != Kind::kNone; }

  /// Evaluates the whole row: g[l] = h'_l(x[l]) for l in [0, stride).
  /// Requires fast(row). x and g point at the row's lane 0.
  void run(const SimdKernels& kernels, std::size_t row, const double* x,
           double* g) const {
    const std::size_t base = row * stride_;
    const double* p0 = p0_.data() + base;
    const double* p1 = p1_.data() + base;
    const double* p2 = p2_.data() + base;
    const double* p3 = p3_.data() + base;
    const double* sc = scale_.data() + base;
    switch (kind_[row]) {
      case Kind::kClamp:
        kernels.gradient_clamp(x, p0, p1, p2, p3, sc, g, stride_);
        break;
      case Kind::kTanh:
        kernels.gradient_tanh(x, p0, p1, sc, g, stride_);
        break;
      case Kind::kSmoothAbs:
        kernels.gradient_smooth_abs(x, p0, p1, sc, g, stride_);
        break;
      case Kind::kSoftplusDiff:
        kernels.gradient_softplus_diff(x, p0, p1, p2, sc, g, stride_);
        break;
      case Kind::kNone:
        break;  // unreachable under the fast(row) precondition
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t stride_ = 0;
  std::vector<Kind> kind_;
  std::vector<double> p0_, p1_, p2_, p3_, scale_;
};

}  // namespace ftmao
