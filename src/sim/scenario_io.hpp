#pragma once

// Plain-text scenario files: every knob of a Scenario serialized to a
// human-editable key = value format, with cost functions in func/spec.hpp
// syntax. Round-trips exactly; the CLI accepts --scenario <file>.
//
//   # seven agents, two split-brain Byzantine
//   n = 7
//   f = 2
//   faulty = 5, 6
//   rounds = 5000
//   attack = split-brain
//   attack.state_magnitude = 100
//   function = huber(-4, 2, 1)      # one line per agent, in order
//   ...
//   initial = -4, -2.67, -1.33, 0, 1.33, 2.67, 4

#include <iosfwd>
#include <string>

#include "sim/scenario.hpp"

namespace ftmao {

/// Name <-> enum mappings (shared by CLI and scenario files).
std::string attack_kind_name(AttackKind kind);
AttackKind parse_attack_kind(const std::string& name);
std::string step_kind_name(StepKind kind);
StepKind parse_step_kind(const std::string& name);

/// Writes every field; output is accepted by load_scenario verbatim.
void save_scenario(const Scenario& scenario, std::ostream& os);

/// Parses a scenario file. Throws ContractViolation with the offending
/// line on any error. The result is validate()d before returning.
Scenario load_scenario(std::istream& is);

}  // namespace ftmao
