#pragma once

// Order-free recombination of sharded sweep outputs, with the determinism
// contract promoted to a runtime-checked property:
//
//   - all manifests must describe the same grid, shard count, schema, and
//     build revision (mixing artifacts from different sweeps or binaries
//     is refused);
//   - every shard's CSV must cover exactly its assigned cells — a row for
//     a cell the partition does not assign to that shard is an error, as
//     is an assigned cell with no row;
//   - cells covered by more than one artifact (a shard retried by two
//     workers, say) must be byte-identical everywhere they appear — any
//     divergence means a worker broke the bit-identity contract;
//   - cells covered by no surviving artifact are reported as missing (the
//     degraded-but-not-aborted case), and the merged CSV still carries
//     every row that did arrive.
//
// The merged CSV lists rows in canonical grid order, so a complete merge
// is byte-identical to the single-process `run_sweep` CSV (asserted in
// tests/shard_test.cpp and the shard_e2e ctest).

#include <string>
#include <vector>

#include "sim/shard.hpp"

namespace ftmao {

/// One shard's artifacts as read back from disk.
struct ShardArtifact {
  ShardManifest manifest;
  std::string csv;  ///< the worker's full CSV text (header + rows)
};

struct MergeReport {
  std::string csv;  ///< header + every recovered row, canonical grid order

  std::vector<std::string> missing_cells;  ///< expected, covered by no shard
  std::vector<std::string> errors;         ///< contract violations, see above

  std::size_t expected_cells = 0;
  std::size_t merged_cells = 0;

  /// Full coverage and no contract violations.
  bool ok() const { return errors.empty() && missing_cells.empty(); }
};

/// Verifies and merges. Never throws on inconsistent *input data* — every
/// problem is recorded in the report so a driver can degrade gracefully
/// (merge what arrived, list what did not).
MergeReport merge_shards(const std::vector<ShardArtifact>& shards);

}  // namespace ftmao
