#include "sim/scenario_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"
#include "func/spec.hpp"

namespace ftmao {

namespace {

const std::map<AttackKind, std::string>& attack_names() {
  static const std::map<AttackKind, std::string> names{
      {AttackKind::None, "none"},
      {AttackKind::Silent, "silent"},
      {AttackKind::FixedValue, "fixed"},
      {AttackKind::SplitBrain, "split-brain"},
      {AttackKind::HullEdgeUp, "hull-edge-up"},
      {AttackKind::HullEdgeDown, "hull-edge-down"},
      {AttackKind::RandomNoise, "noise"},
      {AttackKind::SignFlip, "sign-flip"},
      {AttackKind::PullToTarget, "pull"},
      {AttackKind::FlipFlop, "flip-flop"},
      {AttackKind::DelayedStrike, "delayed-strike"},
  };
  return names;
}

std::string trim_ws(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::vector<double> parse_number_list(const std::string& value,
                                      const std::string& line) {
  std::vector<double> out;
  std::istringstream is(value);
  std::string token;
  while (std::getline(is, token, ',')) {
    token = trim_ws(token);
    try {
      std::size_t consumed = 0;
      out.push_back(std::stod(token, &consumed));
      if (consumed != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      throw ContractViolation("scenario file: bad number '" + token +
                              "' in line: " + line);
    }
  }
  return out;
}

double parse_number(const std::string& value, const std::string& line) {
  const auto nums = parse_number_list(value, line);
  if (nums.size() != 1)
    throw ContractViolation("scenario file: expected one number in: " + line);
  return nums.front();
}

}  // namespace

std::string attack_kind_name(AttackKind kind) {
  return attack_names().at(kind);
}

AttackKind parse_attack_kind(const std::string& name) {
  for (const auto& [kind, n] : attack_names()) {
    if (n == name) return kind;
  }
  throw ContractViolation("unknown attack '" + name + "'");
}

std::string step_kind_name(StepKind kind) {
  switch (kind) {
    case StepKind::Harmonic:
      return "harmonic";
    case StepKind::Power:
      return "power";
    case StepKind::Constant:
      return "constant";
  }
  FTMAO_EXPECTS(false);
  return {};
}

StepKind parse_step_kind(const std::string& name) {
  if (name == "harmonic") return StepKind::Harmonic;
  if (name == "power") return StepKind::Power;
  if (name == "constant") return StepKind::Constant;
  throw ContractViolation("unknown step schedule '" + name + "'");
}

void save_scenario(const Scenario& scenario, std::ostream& os) {
  os.precision(17);
  os << "# ftmao scenario\n";
  os << "n = " << scenario.n << "\n";
  os << "f = " << scenario.f << "\n";
  if (!scenario.faulty.empty()) {
    os << "faulty = ";
    for (std::size_t i = 0; i < scenario.faulty.size(); ++i)
      os << (i ? ", " : "") << scenario.faulty[i];
    os << "\n";
  }
  os << "rounds = " << scenario.rounds << "\n";
  os << "seed = " << scenario.seed << "\n";
  os << "attack = " << attack_kind_name(scenario.attack.kind) << "\n";
  os << "attack.state_magnitude = " << scenario.attack.state_magnitude << "\n";
  os << "attack.gradient_magnitude = " << scenario.attack.gradient_magnitude
     << "\n";
  os << "attack.target = " << scenario.attack.target << "\n";
  os << "attack.amplification = " << scenario.attack.amplification << "\n";
  os << "attack.flip_period = " << scenario.attack.flip_period << "\n";
  os << "attack.activation_round = " << scenario.attack.activation_round << "\n";
  os << "attack.consistent = " << (scenario.attack.consistent ? "true" : "false")
     << "\n";
  os << "step = " << step_kind_name(scenario.step.kind) << "\n";
  os << "step.scale = " << scenario.step.scale << "\n";
  os << "step.exponent = " << scenario.step.exponent << "\n";
  if (scenario.constraint) {
    os << "constraint = " << scenario.constraint->lo() << ", "
       << scenario.constraint->hi() << "\n";
  }
  os << "default.state = " << scenario.default_payload.state << "\n";
  os << "default.gradient = " << scenario.default_payload.gradient << "\n";
  os << "drop_probability = " << scenario.drop_probability << "\n";
  for (const auto& [who, when] : scenario.crashes)
    os << "crash = " << who << " @ " << when << "\n";
  for (std::size_t i = 0; i < scenario.functions.size(); ++i) {
    // Faulty agents' functions are unused; serialize a placeholder so the
    // agent order stays intact.
    if (scenario.functions[i] != nullptr) {
      os << "function = " << to_spec(*scenario.functions[i]) << "\n";
    } else {
      os << "function = huber(0, 1, 1)\n";
    }
  }
  os << "initial = ";
  for (std::size_t i = 0; i < scenario.initial_states.size(); ++i)
    os << (i ? ", " : "") << scenario.initial_states[i];
  os << "\n";
}

Scenario load_scenario(std::istream& is) {
  Scenario s;
  s.functions.clear();
  std::string raw;
  while (std::getline(is, raw)) {
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line = line.substr(0, hash);
    line = trim_ws(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw ContractViolation("scenario file: expected key = value in: " + raw);
    const std::string key = trim_ws(line.substr(0, eq));
    const std::string value = trim_ws(line.substr(eq + 1));

    if (key == "n") {
      s.n = static_cast<std::size_t>(parse_number(value, raw));
    } else if (key == "f") {
      s.f = static_cast<std::size_t>(parse_number(value, raw));
    } else if (key == "faulty") {
      for (double v : parse_number_list(value, raw))
        s.faulty.push_back(static_cast<std::size_t>(v));
    } else if (key == "rounds") {
      s.rounds = static_cast<std::size_t>(parse_number(value, raw));
    } else if (key == "seed") {
      s.seed = static_cast<std::uint64_t>(parse_number(value, raw));
    } else if (key == "attack") {
      s.attack.kind = parse_attack_kind(value);
    } else if (key == "attack.state_magnitude") {
      s.attack.state_magnitude = parse_number(value, raw);
    } else if (key == "attack.gradient_magnitude") {
      s.attack.gradient_magnitude = parse_number(value, raw);
    } else if (key == "attack.target") {
      s.attack.target = parse_number(value, raw);
    } else if (key == "attack.amplification") {
      s.attack.amplification = parse_number(value, raw);
    } else if (key == "attack.flip_period") {
      s.attack.flip_period = static_cast<std::size_t>(parse_number(value, raw));
    } else if (key == "attack.activation_round") {
      s.attack.activation_round =
          static_cast<std::size_t>(parse_number(value, raw));
    } else if (key == "attack.consistent") {
      s.attack.consistent = value == "true";
    } else if (key == "step") {
      s.step.kind = parse_step_kind(value);
    } else if (key == "step.scale") {
      s.step.scale = parse_number(value, raw);
    } else if (key == "step.exponent") {
      s.step.exponent = parse_number(value, raw);
    } else if (key == "constraint") {
      const auto nums = parse_number_list(value, raw);
      if (nums.size() != 2)
        throw ContractViolation("scenario file: constraint needs lo, hi: " + raw);
      s.constraint = Interval(nums[0], nums[1]);
    } else if (key == "default.state") {
      s.default_payload.state = parse_number(value, raw);
    } else if (key == "default.gradient") {
      s.default_payload.gradient = parse_number(value, raw);
    } else if (key == "drop_probability") {
      s.drop_probability = parse_number(value, raw);
    } else if (key == "crash") {
      const auto at = value.find('@');
      if (at == std::string::npos)
        throw ContractViolation("scenario file: crash needs 'agent @ round': " +
                                raw);
      s.crashes.emplace_back(
          static_cast<std::size_t>(parse_number(trim_ws(value.substr(0, at)), raw)),
          static_cast<std::size_t>(
              parse_number(trim_ws(value.substr(at + 1)), raw)));
    } else if (key == "function") {
      s.functions.push_back(parse_function(value));
    } else if (key == "initial") {
      s.initial_states = parse_number_list(value, raw);
    } else {
      throw ContractViolation("scenario file: unknown key '" + key + "'");
    }
  }
  s.validate();
  return s;
}

}  // namespace ftmao
