#pragma once

// Crash-fault executor (Section 7). All agents are correct but some halt:
// a CrashEvent says agent `agent` crashes during round `round`, delivering
// that round's broadcast only to the first `recipients_served` recipients
// (in ascending agent order, skipping itself) and doing nothing ever
// after. The no-trim averaging variant (CrashSbgAgent) is run, and the
// optimum set predicted by cost form (17) is computed from the gradient
// envelopes with crashed-agent weights free in [0, 1].

#include <cstddef>
#include <optional>
#include <vector>

#include "common/interval.hpp"
#include "common/series.hpp"
#include "func/scalar_function.hpp"
#include "sim/scenario.hpp"

namespace ftmao {

struct CrashEvent {
  std::size_t agent = 0;
  std::size_t round = 1;              ///< the round during which it crashes
  std::size_t recipients_served = 0;  ///< partial sends in the crash round
};

struct CrashScenario {
  std::size_t n = 0;
  std::vector<ScalarFunctionPtr> functions;  ///< size n (everyone is honest)
  std::vector<double> initial_states;        ///< size n
  std::vector<CrashEvent> crashes;
  StepConfig step;
  std::size_t rounds = 1000;

  void validate() const;
};

struct CrashRunMetrics {
  Series disagreement;   ///< over never-crashed agents
  Series max_dist_to_y;  ///< Y = crash_optima_set(...)
  std::vector<double> final_states;  ///< never-crashed agents, agent order
  Interval optima{0.0};
};

/// The optimum set of eq. (17) over all alpha_i in [0, 1] for crashed
/// agents: an interval bounded by the leftmost zero of
/// sum_N h' + sum_F max(h', 0) and the rightmost zero of
/// sum_N h' + sum_F min(h', 0).
Interval crash_optima_set(const std::vector<ScalarFunctionPtr>& survivors,
                          const std::vector<ScalarFunctionPtr>& crashed);

/// Recovers the crashed agent's effective weight alpha from cost form
/// (17)'s stationarity at the converged consensus x:
///   sum_{i in N} h_i'(x) + alpha * h_c'(x) = 0.
/// Returns nullopt when h_c'(x) ~ 0 (the equation is uninformative).
/// Values outside [0, 1] indicate x is not a (17)-optimum.
std::optional<double> recover_single_crash_weight(
    const std::vector<ScalarFunctionPtr>& survivors,
    const ScalarFunction& crashed, double consensus);

CrashRunMetrics run_crash(const CrashScenario& scenario);

}  // namespace ftmao
