#include "sim/async_runner.hpp"

#include <algorithm>
#include <memory>

#include "common/contracts.hpp"
#include "core/async_sbg.hpp"
#include "func/library.hpp"
#include "core/valid_set.hpp"
#include "net/async.hpp"
#include "net/delay.hpp"

namespace ftmao {

void AsyncScenario::validate() const {
  FTMAO_EXPECTS(n > 5 * f);
  FTMAO_EXPECTS(faulty.size() + crashes.size() <= f);
  for (const auto& [who, when] : crashes) {
    FTMAO_EXPECTS(who < n);
    FTMAO_EXPECTS(when >= 0.0);
    FTMAO_EXPECTS(std::find(faulty.begin(), faulty.end(), who) == faulty.end());
  }
  FTMAO_EXPECTS(functions.size() == n);
  FTMAO_EXPECTS(initial_states.size() == n);
  FTMAO_EXPECTS(rounds >= 1);
  for (std::size_t i : faulty) FTMAO_EXPECTS(i < n);
}

namespace {

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

std::unique_ptr<DelayModel> make_async_delay_model(const AsyncScenario& s,
                                                   const Rng& base) {
  switch (s.delay_kind) {
    case DelayKind::Fixed:
      return std::make_unique<FixedDelay>(s.delay_lo);
    case DelayKind::Uniform:
      return std::make_unique<UniformDelay>(s.delay_lo, s.delay_hi,
                                            base.substream("delay"));
    case DelayKind::TargetedSlow: {
      std::vector<AgentId> slow;
      for (std::size_t i = 0; i < s.n && slow.size() < s.slow_count; ++i) {
        if (!contains(s.faulty, i))
          slow.push_back(AgentId{static_cast<std::uint32_t>(i)});
      }
      return std::make_unique<TargetedSlowdown>(std::move(slow), s.delay_lo,
                                                s.slow_delay);
    }
  }
  FTMAO_EXPECTS(false);
  return nullptr;
}

AsyncRunMetrics run_async_sbg(const AsyncScenario& scenario) {
  scenario.validate();
  const std::unique_ptr<StepSchedule> schedule = make_schedule(scenario.step);

  AsyncSbgConfig config;
  config.n = scenario.n;
  config.f = scenario.f;

  auto is_crashed = [&scenario](std::size_t i) {
    for (const auto& [who, when] : scenario.crashes) {
      if (who == i) return true;
    }
    return false;
  };

  // The valid family (and metrics) cover the surviving honest agents.
  std::vector<ScalarFunctionPtr> honest_fns;
  for (std::size_t i = 0; i < scenario.n; ++i) {
    if (!contains(scenario.faulty, i) && !is_crashed(i))
      honest_fns.push_back(scenario.functions[i]);
  }
  const ValidFamily family(honest_fns, scenario.f);

  Rng rng(scenario.seed);
  const std::unique_ptr<DelayModel> delays =
      make_async_delay_model(scenario, rng);
  AsyncEngine<SbgPayload> engine(*delays);

  std::vector<std::unique_ptr<AsyncSbgAgent>> agents;      // survivors
  std::vector<std::unique_ptr<AsyncSbgAgent>> crashing;    // honest-until-crash
  std::vector<std::unique_ptr<SbgAdversary>> adversaries;
  for (std::size_t i = 0; i < scenario.n; ++i) {
    const AgentId id{static_cast<std::uint32_t>(i)};
    if (contains(scenario.faulty, i)) {
      adversaries.push_back(
          make_adversary(scenario.attack, rng.substream("adversary", i)));
      engine.add_byzantine(id, adversaries.back().get());
    } else if (is_crashed(i)) {
      crashing.push_back(std::make_unique<AsyncSbgAgent>(
          id, scenario.functions[i], scenario.initial_states[i], *schedule,
          config));
      engine.add_honest(id, crashing.back().get());
    } else {
      agents.push_back(std::make_unique<AsyncSbgAgent>(
          id, scenario.functions[i], scenario.initial_states[i], *schedule,
          config));
      engine.add_honest(id, agents.back().get());
    }
  }
  for (const auto& [who, when] : scenario.crashes)
    engine.set_sender_crash(AgentId{static_cast<std::uint32_t>(who)}, when);

  AsyncRunMetrics metrics;
  metrics.optima = family.optima_set();
  metrics.virtual_time =
      engine.run_until_round(Round{static_cast<std::uint32_t>(scenario.rounds)});

  // Rebuild per-round series from agent histories; every honest agent has
  // completed at least `rounds` rounds when run_until_round returns with a
  // non-empty queue guarantee (quorum n-f is satisfiable by honest agents
  // alone), but guard via the min length anyway.
  std::size_t common_rounds = scenario.rounds + 1;
  for (const auto& agent : agents)
    common_rounds = std::min(common_rounds, agent->history().size());
  for (std::size_t t = 0; t < common_rounds; ++t) {
    double lo = agents.front()->history()[t];
    double hi = lo;
    double dist = 0.0;
    for (const auto& agent : agents) {
      const double x = agent->history()[t];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      dist = std::max(dist, metrics.optima.distance_to(x));
    }
    metrics.disagreement.push(hi - lo);
    metrics.max_dist_to_y.push(dist);
  }
  for (const auto& agent : agents)
    metrics.final_states.push_back(agent->state());
  metrics.messages_delivered = engine.messages_delivered();
  return metrics;
}

std::string delay_kind_name(DelayKind kind) {
  switch (kind) {
    case DelayKind::Fixed:
      return "fixed";
    case DelayKind::Uniform:
      return "uniform";
    case DelayKind::TargetedSlow:
      return "targeted-slow";
  }
  FTMAO_EXPECTS(false);
  return {};
}

DelayKind parse_delay_kind(const std::string& name) {
  if (name == "fixed") return DelayKind::Fixed;
  if (name == "uniform") return DelayKind::Uniform;
  if (name == "targeted-slow") return DelayKind::TargetedSlow;
  throw ContractViolation("unknown delay kind '" + name +
                          "' (expected fixed|uniform|targeted-slow)");
}

AsyncScenario make_standard_async_scenario(std::size_t n, std::size_t f,
                                           double spread, AttackKind attack,
                                           std::size_t rounds,
                                           std::uint64_t seed) {
  FTMAO_EXPECTS(n > 5 * f);
  AsyncScenario s;
  s.n = n;
  s.f = f;
  for (std::size_t i = n - f; i < n; ++i) s.faulty.push_back(i);
  s.functions = make_mixed_family(n, spread);
  s.initial_states.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.initial_states[i] =
        n == 1 ? 0.0
               : -spread / 2.0 + spread * static_cast<double>(i) /
                                     static_cast<double>(n - 1);
  }
  s.attack.kind = attack;
  s.rounds = rounds;
  s.seed = seed;
  return s;
}

}  // namespace ftmao
