#pragma once

// Structured parameter sweeps: run a scenario family over a cartesian
// grid of (n, f) x attack x seed and aggregate the headline metrics. The
// backbone of the `ftmao_sweep` tool and of multi-configuration tables in
// benches.

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/async_runner.hpp"
#include "sim/scenario.hpp"

namespace ftmao {

class ResultCache;  // cache/result_cache.hpp

struct SweepConfig {
  std::vector<std::pair<std::size_t, std::size_t>> sizes;  ///< (n, f) pairs
  std::vector<AttackKind> attacks;
  std::vector<std::uint64_t> seeds;
  double spread = 8.0;
  std::size_t rounds = 4000;
  StepConfig step;

  /// State dimensions to sweep. 1 = the paper's scalar algorithm (the
  /// default grid, run through the scalar engines); d >= 2 runs the
  /// coordinate-wise vector-SBG heuristic cell (standard vector scenario)
  /// through run_vector_sbg_batch (run_vector_scenario when
  /// scalar_engine). Incompatible with async_engine.
  std::vector<std::size_t> dims = {1};

  /// Worker threads for the grid. 1 = serial (the reference path); 0 =
  /// hardware concurrency. Results are bit-identical for every value:
  /// each (cell, seed) run is independently seeded and written to its own
  /// pre-assigned output slot, so scheduling order cannot leak in.
  std::size_t num_threads = 1;

  /// Replicas per batched-engine call (sim/batch_runner): the seed axis of
  /// each cell is cut into chunks of this size and every chunk advances in
  /// lockstep. 0 = the whole seed axis of a cell (the default). Results
  /// are bit-identical for every value, and to scalar_engine.
  std::size_t batch_size = 0;

  /// Force the scalar reference engine (one run_sbg per seed). For
  /// benchmarking the batched path against its baseline.
  bool scalar_engine = false;

  /// Cross-cell megabatching (sim/megabatch.hpp): pack pending (cell,
  /// seed) replicas that share an engine shape — same (n, f, dim, engine),
  /// any attack/seed — into lane-filling batches instead of one batch per
  /// cell, with cost-ordered task submission. Like every engine knob,
  /// results are bit-identical on or off; off runs the per-cell batches
  /// (the A/B baseline). Ignored under scalar_engine.
  bool megabatch = true;

  /// Run the asynchronous engine (Section 7, n > 5f variant) over the
  /// grid instead of the synchronous one: each (cell, seed) run is the
  /// standard async scenario under the delay model below, advanced by
  /// run_async_sbg_batch per seed chunk (run_async_sbg when
  /// scalar_engine). Sizes must then satisfy n > 5f. batch_size /
  /// num_threads / scalar_engine keep their meanings, and results stay
  /// bit-identical across all of them.
  bool async_engine = false;
  DelayKind delay_kind = DelayKind::Uniform;  ///< async mode only
  double delay_lo = 0.5;
  double delay_hi = 1.5;

  /// Content-addressed result cache (cache/result_cache.hpp). When set,
  /// each cell's per-seed results are looked up by their canonical key
  /// before simulating and inserted after, so repeated grids are served
  /// from memory/disk. Output is byte-identical cold vs warm vs mixed:
  /// payloads carry the raw per-seed doubles bit-exactly. Like the engine
  /// knobs above, the cache is not part of the grid's identity.
  ResultCache* cache = nullptr;

  void validate() const;
};

/// Identity of one grid cell: a (n, f) size crossed with a dimension and
/// an attack. The canonical enumeration (sweep_cell_specs) is sizes-major,
/// dims-middle, attacks-minor — the row order of the sweep CSV.
struct CellSpec {
  std::size_t n = 0;
  std::size_t f = 0;
  std::size_t dim = 1;
  AttackKind attack = AttackKind::None;

  friend bool operator==(const CellSpec&, const CellSpec&) = default;
};

/// One grid cell's aggregate over the seeds.
struct SweepCell {
  std::size_t n = 0;
  std::size_t f = 0;
  std::size_t dim = 1;
  AttackKind attack = AttackKind::None;
  Summary disagreement;  ///< final disagreement across seeds
  Summary dist_to_y;     ///< final max Dist-to-Y across seeds
};

/// The grid's cells in canonical (sizes-major, dims-middle, attacks-minor)
/// order.
std::vector<CellSpec> sweep_cell_specs(const SweepConfig& config);

/// Canonical cache-spec string for one cell of this grid: every knob that
/// can influence the cell's numbers (cell identity, cost-family tag,
/// spread, rounds, step schedule, seed axis, engine family, delay model),
/// none that provably cannot (threads, batch size, scalar engine, ISA).
/// Feed to make_cell_key (cache/cell_key.hpp); pinned by the golden-key
/// test, so accidental drift fails CI.
std::string sweep_cell_cache_spec(const SweepConfig& config,
                                  const CellSpec& spec);

/// Runs exactly the given cells (each across all seeds), in the given
/// order. Every (cell, seed) run derives its randomness solely from its
/// own seed, so a cell's aggregate does not depend on which other cells
/// run alongside it — the contract that makes sharded sweeps mergeable.
std::vector<SweepCell> run_sweep_cells(const SweepConfig& config,
                                       const std::vector<CellSpec>& specs);

/// Runs every (size, attack) cell across all seeds. Deterministic.
std::vector<SweepCell> run_sweep(const SweepConfig& config);

/// The sweep CSV header row (no trailing newline).
std::string sweep_csv_header();

/// CSV with one row per cell (medians + worst case), suitable for
/// spreadsheets/plotting.
std::string sweep_to_csv(const std::vector<SweepCell>& cells);

}  // namespace ftmao
