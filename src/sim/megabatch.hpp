#pragma once

// Grid-level megabatch planning: packs pending (cell, seed) replicas from
// *different* grid cells — different attacks and seeds, same engine shape —
// into lane-filling batches for the SoA engines, instead of one batch per
// cell. The batched engines are bit-identical to the scalar reference per
// replica regardless of batch composition (see batch_runner.hpp), so the
// plan changes wall-clock and lane occupancy, never output: results scatter
// back into the same per-(cell, seed) slots the per-cell path fills.
//
// The planner is pure arithmetic over shape keys — no engine calls — so its
// slicing and occupancy accounting are unit-testable with an injected lane
// width function, independent of the machine the tests run on.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ftmao {

/// Engine family of a replica. Families never share a batch: each has its
/// own runner with its own lane layout.
enum class MegabatchEngine : std::uint8_t { kSync = 0, kAsync = 1, kVector = 2 };

/// Shape key: replicas are batch-compatible iff their keys are equal. The
/// grid axes that vary per cell beyond this key (attack, seed, step) are
/// exactly the fields the batch engines already accept per replica.
struct MegabatchKey {
  MegabatchEngine engine = MegabatchEngine::kSync;
  std::size_t n = 0;
  std::size_t f = 0;
  std::size_t dim = 1;

  friend bool operator==(const MegabatchKey&, const MegabatchKey&) = default;
};

/// One (cell, seed) replica awaiting execution. `cell` and `seed` are
/// caller-side indices; the planner only groups and counts them.
struct MegabatchItem {
  MegabatchKey key;
  std::size_t cell = 0;
  std::size_t seed = 0;
};

/// One engine call: the half-open item range [first, first + count) of the
/// plan's (shape-grouped) item array, all sharing `key`.
struct MegabatchTask {
  std::size_t first = 0;
  std::size_t count = 0;
  MegabatchKey key;
  std::uint64_t cost = 0;  ///< count * rounds * n * dim (pure shape function)
};

/// Lane-occupancy accounting: useful lanes vs the padded lane slots the
/// dispatched backend actually advances.
struct EngineStats {
  std::uint64_t batches = 0;       ///< engine calls planned / executed
  std::uint64_t replicas = 0;      ///< replicas across those calls
  std::uint64_t lanes = 0;         ///< useful lanes (replicas x dim)
  std::uint64_t padded_lanes = 0;  ///< lane slots incl. padding to the width

  double occupancy() const {
    return padded_lanes > 0
               ? static_cast<double>(lanes) / static_cast<double>(padded_lanes)
               : 1.0;
  }
  EngineStats& operator+=(const EngineStats& other) {
    batches += other.batches;
    replicas += other.replicas;
    lanes += other.lanes;
    padded_lanes += other.padded_lanes;
    return *this;
  }
};

/// Resolves the SIMD lane width a batch of `lanes` lanes dispatches to.
/// Injectable so planner tests pin the slicing/occupancy arithmetic
/// machine-independently; the default consults simd_kernels_for_lanes.
using LaneWidthFn = std::function<std::size_t(std::size_t)>;

/// The width the active dispatch would pick for `lanes` lanes (honours the
/// FTMAO_ISA / simd_select overrides like the engines themselves).
std::size_t active_lane_width(std::size_t lanes);

struct MegabatchPlan {
  /// Input items stable-grouped by shape key: within a group, caller order
  /// (cell-major, seed-minor) is preserved, so same-cell replicas stay
  /// adjacent — the vector engine's optimum memoization relies on that.
  std::vector<MegabatchItem> items;
  /// Tasks in submission order: cost-descending, ties by first index, so
  /// heterogeneous grids start their largest shapes first and the thread
  /// pool's tail is a small task, not a big one.
  std::vector<MegabatchTask> tasks;
  EngineStats stats;  ///< accounting for the planned tasks
};

/// Plans lane-filling batches over `items`.
///
/// batch_size == 0 (auto): each shape group is sliced into full-register
/// chunks — multiples of q = width / gcd(dim, width) replicas, the smallest
/// replica count whose lane total divides the width — capped near
/// kMegabatchAutoLaneTarget lanes, plus at most one narrower tail. A
/// non-zero batch_size pins the replica count per engine call exactly,
/// preserving the --batch contract.
constexpr std::size_t kMegabatchAutoLaneTarget = 32;
MegabatchPlan plan_megabatches(std::vector<MegabatchItem> items,
                               std::size_t batch_size, std::size_t rounds,
                               const LaneWidthFn& width_for_lanes = {});

/// Convenience for the single-shape grids (certify sections, attack
/// search): slices [0, count) into lane-aligned tasks of the given key.
std::vector<MegabatchTask> plan_uniform_slices(
    std::size_t count, std::size_t batch_size, std::size_t rounds,
    const MegabatchKey& key, const LaneWidthFn& width_for_lanes = {});

/// Process-global occupancy accumulator. The three batch engines record one
/// EngineStats per engine call (thread-safe, negligible cost) so any driver
/// — megabatched or per-cell — can be measured: reset, run, snapshot.
void engine_stats_reset();
void engine_stats_record(std::size_t replicas, std::size_t lanes,
                         std::size_t padded_lanes);
EngineStats engine_stats_snapshot();

}  // namespace ftmao
