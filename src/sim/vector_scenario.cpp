#include "sim/vector_scenario.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace ftmao {

void VectorScenario::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(dim >= 1);
  FTMAO_EXPECTS(byzantine_count <= f);
  FTMAO_EXPECTS(honest_costs.size() + byzantine_count == n);
  FTMAO_EXPECTS(honest_initial.size() == honest_costs.size());
  FTMAO_EXPECTS(rounds >= 1);
  FTMAO_EXPECTS(constraint.empty() || constraint.size() == dim);
  // The consistency-restriction wrapper (baseline/consistent.hpp) has no
  // vector counterpart yet.
  FTMAO_EXPECTS(!attack.consistent);
  for (const auto& fn : honest_costs) {
    FTMAO_EXPECTS(fn != nullptr);
    FTMAO_EXPECTS(fn->dim() == dim);
  }
  for (const auto& x0 : honest_initial) FTMAO_EXPECTS(x0.dim() == dim);
}

std::unique_ptr<VectorAdversary> make_vector_adversary(
    const AttackConfig& config, std::size_t dim, Rng rng) {
  FTMAO_EXPECTS(dim >= 1);
  switch (config.kind) {
    case AttackKind::None:
    case AttackKind::Silent:
      return std::make_unique<VectorSilent>();
    case AttackKind::FixedValue:
      return std::make_unique<VectorFixedValue>(dim, config.state_magnitude,
                                                config.gradient_magnitude);
    case AttackKind::SplitBrain:
      return std::make_unique<VectorSplitBrain>(dim, config.state_magnitude,
                                                config.gradient_magnitude);
    case AttackKind::HullEdgeUp:
      return std::make_unique<VectorHullEdge>(/*push_up=*/true);
    case AttackKind::HullEdgeDown:
      return std::make_unique<VectorHullEdge>(/*push_up=*/false);
    case AttackKind::RandomNoise:
      return std::make_unique<VectorRandomNoise>(rng, dim,
                                                 config.state_magnitude,
                                                 config.gradient_magnitude);
    case AttackKind::SignFlip:
      return std::make_unique<VectorSignFlip>(config.amplification);
    case AttackKind::PullToTarget:
      return std::make_unique<VectorPullToTarget>(config.target,
                                                  config.gradient_magnitude);
    case AttackKind::FlipFlop:
      return std::make_unique<VectorFlipFlop>(config.flip_period);
    case AttackKind::DelayedStrike:
      return std::make_unique<VectorDelayedActivation>(
          Round{static_cast<std::uint32_t>(config.activation_round)},
          std::make_unique<VectorPullToTarget>(config.target,
                                               config.gradient_magnitude));
  }
  FTMAO_EXPECTS(false);
  return nullptr;
}

VectorScenario make_standard_vector_scenario(std::size_t n, std::size_t f,
                                             double spread, AttackKind attack,
                                             std::size_t rounds,
                                             std::uint64_t seed,
                                             std::size_t dim) {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(dim >= 1);
  FTMAO_EXPECTS(spread > 0.0);
  VectorScenario s;
  s.n = n;
  s.f = f;
  s.dim = dim;
  s.byzantine_count = f;
  const std::size_t m = n - f;
  const double delta = std::max(spread / 4.0, 0.5);
  for (std::size_t i = 0; i < m; ++i) {
    const double base =
        m == 1 ? 0.0
               : -spread / 2.0 + spread * static_cast<double>(i) /
                                     static_cast<double>(m - 1);
    Vec center(dim);
    for (std::size_t k = 0; k < dim; ++k)
      center[k] = (k % 2 == 0 ? 1.0 : -1.0) * base;
    if (dim >= 2 && i % 3 == 2) {
      // Coordinate-coupled member: keeps the standard cell exercising the
      // non-separable case the open problem is actually about.
      s.honest_costs.push_back(
          std::make_shared<RadialHuber>(center, delta, 1.0));
    } else {
      s.honest_costs.push_back(
          std::make_shared<SeparableHuber>(center, delta, 1.0));
    }
    s.honest_initial.push_back(center);
  }
  s.attack.kind = attack;
  s.rounds = rounds;
  s.seed = seed;
  return s;
}

VectorRunResult run_vector_scenario(const VectorScenario& scenario) {
  scenario.validate();
  const auto schedule = make_schedule(scenario.step);
  std::unique_ptr<VectorAdversary> adversary;
  if (scenario.byzantine_count > 0) {
    Rng rng(scenario.seed);
    adversary = make_vector_adversary(scenario.attack, scenario.dim,
                                      rng.substream("vector-adversary", 0));
  }
  VectorSbgConfig config;
  config.n = scenario.n;
  config.f = scenario.f;
  config.dim = scenario.dim;
  config.default_payload = scenario.default_payload;
  config.constraint = scenario.constraint;
  return run_vector_sbg(config, scenario.honest_costs, scenario.honest_initial,
                        scenario.byzantine_count, adversary.get(), *schedule,
                        scenario.rounds);
}

}  // namespace ftmao
