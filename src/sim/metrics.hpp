#pragma once

// Metric output of one run. Index t of each series is the state after t
// iterations (index 0 = initial condition), matching the paper's x[t].

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "common/interval.hpp"
#include "common/series.hpp"
#include "sim/trace.hpp"

namespace ftmao {

/// Aggregated results of per-iteration Lemma 2 / Corollary 1 audits.
struct WitnessStats {
  std::size_t checks = 0;
  std::size_t failures = 0;     ///< no admissible witness found
  std::size_t inexact = 0;      ///< heuristic (non-exhaustive) searches
  double min_weight_seen = std::numeric_limits<double>::infinity();
  std::size_t min_support_seen = std::numeric_limits<std::size_t>::max();

  bool all_passed() const { return checks > 0 && failures == 0; }
};

struct RunMetrics {
  Series disagreement;    ///< M[t] - m[t] over honest agents
  Series max_dist_to_y;   ///< max_j Dist(x_j[t], Y)
  Series max_projection_error;  ///< constrained runs; 0 series otherwise

  std::vector<double> final_states;  ///< honest agents' states, agent order
  Interval optima{0.0};              ///< the Y used for max_dist_to_y

  WitnessStats state_witness;     ///< audits of Trim(D^x) (Corollary 1)
  WitnessStats gradient_witness;  ///< audits of Trim(D^g) (Lemma 2)

  /// Full per-round honest states; populated when
  /// RunOptions::record_trace is set. Feed to check_sbg_invariants.
  std::optional<ExecutionTrace> trace;

  double final_disagreement() const { return disagreement.back(); }
  double final_max_dist() const { return max_dist_to_y.back(); }
};

}  // namespace ftmao
