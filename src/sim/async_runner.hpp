#pragma once

// Asynchronous executor (Section 7, n > 5f variant): AsyncSbgAgents over
// the event-driven engine with a configurable delay model and the same
// attack menu as the synchronous runner.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "common/series.hpp"
#include "func/scalar_function.hpp"
#include "net/delay.hpp"
#include "sim/scenario.hpp"

namespace ftmao {

enum class DelayKind {
  Fixed,         ///< constant delay (lock-step)
  Uniform,       ///< iid uniform in [delay_lo, delay_hi]
  TargetedSlow,  ///< first `slow_count` honest senders delayed to slow_delay
};

struct AsyncScenario {
  std::size_t n = 0;  ///< must satisfy n > 5f
  std::size_t f = 0;
  std::vector<std::size_t> faulty;
  std::vector<ScalarFunctionPtr> functions;
  std::vector<double> initial_states;
  AttackConfig attack;
  StepConfig step;
  std::size_t rounds = 500;
  std::uint64_t seed = 1;

  /// Hybrid fault model: honest agents whose SENDS die at the given
  /// virtual time (they keep receiving/running). Counts against the same
  /// f budget as Byzantine agents: |faulty| + |crashes| <= f.
  std::vector<std::pair<std::size_t, double>> crashes;

  DelayKind delay_kind = DelayKind::Uniform;
  double delay_lo = 0.5;
  double delay_hi = 1.5;
  double slow_delay = 10.0;
  std::size_t slow_count = 1;

  void validate() const;
};

struct AsyncRunMetrics {
  Series disagreement;   ///< per completed asynchronous round
  Series max_dist_to_y;  ///< Y from the same ValidFamily as the sync case
  std::vector<double> final_states;
  Interval optima{0.0};
  double virtual_time = 0.0;  ///< simulated time to finish all rounds
  std::uint64_t messages_delivered = 0;
};

AsyncRunMetrics run_async_sbg(const AsyncScenario& scenario);

/// "fixed" | "uniform" | "targeted-slow" (CLI names).
std::string delay_kind_name(DelayKind kind);

/// Inverse of delay_kind_name. Throws ContractViolation on unknown names.
DelayKind parse_delay_kind(const std::string& name);

/// The delay model run_async_sbg installs for `s` (exposed so the batched
/// runner's scheduling replay constructs the identical model and consumes
/// the identical RNG substream).
std::unique_ptr<DelayModel> make_async_delay_model(const AsyncScenario& s,
                                                   const Rng& base);

/// Standard asynchronous scenario factory mirroring make_standard_scenario:
/// the last f agents are Byzantine, the mixed admissible cost family with
/// optima spread over [-spread/2, spread/2], initial states evenly spaced
/// across the same interval. Requires n > 5f (the async quorum bound).
AsyncScenario make_standard_async_scenario(std::size_t n, std::size_t f,
                                           double spread, AttackKind attack,
                                           std::size_t rounds = 500,
                                           std::uint64_t seed = 1);

}  // namespace ftmao
