#pragma once

// Empirical strongest-adversary search: evaluate a grid of attack
// configurations on a scenario template and report which one displaces
// the final consensus furthest from the attack-free outcome. Theorem 2
// upper-bounds what ANY attack can achieve (the output stays in Y); this
// measures how much of that freedom concrete attacks actually realize.

#include <string>
#include <vector>

#include "sim/async_runner.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace ftmao {

class ResultCache;  // cache/result_cache.hpp

struct AttackCandidate {
  std::string name;
  AttackConfig config;
};

struct AttackOutcome {
  std::string name;
  double final_state = 0.0;   ///< consensus value reached
  double bias = 0.0;          ///< |final_state - attack-free final state|
  double dist_to_y = 0.0;     ///< must stay ~0 (Theorem 2)
  double disagreement = 0.0;  ///< final honest disagreement
};

struct AttackSearchResult {
  double reference_state = 0.0;  ///< attack-free consensus
  Interval optima{0.0};          ///< Y of the honest family
  std::vector<AttackOutcome> outcomes;  ///< sorted by bias, descending

  const AttackOutcome& strongest() const { return outcomes.front(); }
};

/// The default candidate grid: every attack kind at several magnitudes/
/// targets/amplifications.
std::vector<AttackCandidate> standard_attack_grid();

/// Runs `base` once without attack (reference) and once per candidate.
/// `base`'s own attack field is ignored. Candidates are evaluated on
/// `num_threads` workers (1 = serial, 0 = hardware concurrency), in
/// lockstep batches of `batch_size` candidates through the batched engine
/// (0 = all candidates in one batch; they share the base scenario's
/// shape). `scalar_engine` forces one run_sbg per candidate instead.
/// Each run writes to its own slot, so the ranking is bit-identical for
/// every thread count, batch size, and engine.
///
/// When `cache` is set, the reference run and every candidate run are
/// looked up by their canonical key (full serialized base scenario +
/// rendered candidate attack config) before simulating and inserted
/// after; the result is bit-identical cold vs warm vs mixed.
///
/// `megabatch` routes the chunking through the lane-aligned megabatch
/// planner (sim/megabatch.hpp): full-SIMD-register chunks plus one narrow
/// tail instead of naive fixed-size chunks. The ranking is bit-identical
/// on or off; off is the legacy A/B baseline. Ignored under scalar_engine.
AttackSearchResult find_strongest_attack(
    const Scenario& base, const std::vector<AttackCandidate>& candidates,
    std::size_t num_threads = 1, std::size_t batch_size = 0,
    bool scalar_engine = false, ResultCache* cache = nullptr,
    bool megabatch = true);

/// The asynchronous-engine counterpart: same contract, candidates
/// evaluated through run_async_sbg_batch (run_async_sbg when
/// scalar_engine). `base`'s n must satisfy n > 5f.
AttackSearchResult find_strongest_attack_async(
    const AsyncScenario& base, const std::vector<AttackCandidate>& candidates,
    std::size_t num_threads = 1, std::size_t batch_size = 0,
    bool scalar_engine = false, ResultCache* cache = nullptr,
    bool megabatch = true);

}  // namespace ftmao
