#pragma once

// One-call certification: runs the full verification barrage for a given
// system size — Theorem 2 across the attack grid, Lemma 2 witness audits,
// execution-trace invariants, theory-bound domination, and a baseline
// liveness contrast (to prove the attacks actually bite). The `ftmao_certify`
// tool prints the report; CI-style users get a single pass/fail.

#include <cstdint>
#include <string>
#include <vector>

namespace ftmao {

class ResultCache;  // cache/result_cache.hpp

struct CertifyOptions {
  std::size_t n = 7;
  std::size_t f = 2;
  double spread = 8.0;
  std::size_t rounds = 4000;
  std::uint64_t seed = 1;
  double consensus_eps = 0.05;  ///< final-disagreement acceptance
  double optimality_eps = 0.1;  ///< final Dist-to-Y acceptance

  /// Worker threads for the attack grid (1 = serial, 0 = hardware
  /// concurrency). The report is identical for every value: per-attack
  /// results are computed into fixed slots and folded in grid order.
  std::size_t num_threads = 1;

  /// Attacks per batched-engine call (the whole grid shares one scenario
  /// shape). 0 = all attacks in one lockstep batch (the default). The
  /// report is bit-identical for every value, and to scalar_engine.
  std::size_t batch_size = 0;

  /// Force the scalar reference engine (one run_sbg per attack).
  bool scalar_engine = false;

  /// Lane-aligned megabatch slicing (sim/megabatch.hpp) for the batched
  /// sections: pending attacks are packed into full-SIMD-register chunks
  /// with one narrow tail instead of naive fixed-size chunks. The report
  /// is bit-identical on or off; off runs the legacy per-chunk slicing
  /// (the A/B baseline). Ignored under scalar_engine.
  bool megabatch = true;

  /// Asynchronous-engine section (Section 7, n > 5f variant): the attack
  /// grid is re-run through the batched asynchronous engine at this size
  /// under uniform delays, and the worst final disagreement / Dist-to-Y
  /// must clear the acceptance thresholds below. async_rounds = 0 skips
  /// the section (the report then has no async checks). The same
  /// num_threads / batch_size / scalar_engine knobs apply, with the same
  /// bit-identical-report guarantee.
  std::size_t async_n = 11;
  std::size_t async_f = 2;
  std::size_t async_rounds = 800;
  double async_consensus_eps = 0.1;   ///< final-disagreement acceptance
  double async_optimality_eps = 0.3;  ///< final Dist-to-Y acceptance

  /// Vector-engine section (Section 7's open problem, coordinate-wise
  /// trimming in d dimensions): the attack grid is re-run through the
  /// lane-packed batched vector engine at (n, f) and dimension vector_dim,
  /// and the worst final disagreement must clear vector_consensus_eps.
  /// Optimality is deliberately only a *bounded-drift* check: coordinate-
  /// wise trimming provably keeps consensus but not optimality — its valid
  /// set can be non-convex (tests/vector_valid_test.cpp certifies this for
  /// the standard cell's radial members), and hull-edge attacks legally
  /// park the consensus at the honest hull's boundary (~spread/2 per
  /// coordinate, so ~ spread/2 * sqrt(dim) in norm). The check asserts the
  /// adversary cannot drag the system *beyond* that hull scale toward its
  /// target (which sits 6 * spread per coordinate away). vector_rounds = 0
  /// skips the section. The same num_threads / batch_size / scalar_engine
  /// knobs apply, with the same bit-identical-report guarantee.
  std::size_t vector_dim = 8;
  std::size_t vector_rounds = 800;
  double vector_consensus_eps = 0.1;    ///< final-disagreement acceptance
  double vector_optimality_eps = 10.0;  ///< bounded-drift acceptance (norm)

  /// Content-addressed result cache (cache/result_cache.hpp). When set,
  /// each per-attack run of every section (sync, async, vector, the DGD
  /// liveness contrast) is looked up by its canonical key before
  /// simulating and inserted after. The report is bit-identical cold vs
  /// warm vs mixed; the cache is not part of the certification identity.
  ResultCache* cache = nullptr;
};

struct CertifyCheck {
  std::string name;
  bool passed = false;
  std::string detail;  ///< worst offender / measured headline value
};

struct CertificationReport {
  bool passed = false;
  std::vector<CertifyCheck> checks;
};

/// Runs the barrage. Deterministic per options.
CertificationReport certify_sbg(const CertifyOptions& options);

}  // namespace ftmao
