#pragma once

// Execution traces and theory-derived invariant checking.
//
// A trace records every honest agent's state after every round. The
// invariant checker then verifies, for the WHOLE execution, the three
// structural facts the convergence proof rests on:
//
//   I1 (hull drift, Cor. 1 + Lemma 2): the honest hull at round t is
//      contained in the round t-1 hull inflated by lambda[t-1] * L;
//   I2 (per-agent step bound): no agent moves further than
//      lambda[t-1] * L beyond the previous honest hull;
//   I3 (contraction, eq. (8)-(10)): M[t] - m[t] <=
//      rho * (M[t-1] - m[t-1]) + 2 L lambda[t-1] rho, rho = 1 - 1/(2(m-f)).
//
// A violation in any round is a bug in the algorithm implementation or an
// adversary escaping its model — the failure-injection tests assert these
// hold across every attack.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/series.hpp"
#include "core/step_size.hpp"

namespace ftmao {

/// Honest states after each round; rounds[0] is the initial condition.
struct ExecutionTrace {
  std::vector<std::size_t> honest_ids;        ///< agent indices, in order
  std::vector<std::vector<double>> rounds;    ///< [t][agent] state

  std::size_t num_rounds() const { return rounds.empty() ? 0 : rounds.size() - 1; }

  /// One row per round, one column per honest agent.
  void write_csv(std::ostream& os) const;
};

struct InvariantReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string why) {
    ok = false;
    violations.push_back(std::move(why));
  }
};

/// Checks I1-I3 over a full trace. `gradient_bound` is the system-wide L
/// (max over honest agents); `f` the fault bound; `honest` = m = |N|.
InvariantReport check_sbg_invariants(const ExecutionTrace& trace,
                                     std::size_t f,
                                     double gradient_bound,
                                     const StepSchedule& schedule,
                                     double tolerance = 1e-9);

}  // namespace ftmao
