#include "sim/batch_runner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "baseline/consistent.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/admissibility.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "core/valid_set.hpp"
#include "net/batch.hpp"
#include "sim/batch_grad.hpp"
#include "sim/megabatch.hpp"
#include "simd/simd.hpp"
#include "trim/trim_batch.hpp"

namespace ftmao {

namespace {

// Advances B replicas of one scenario shape in lockstep. SoA lane layout:
// every per-agent array is indexed lane(j, r) = j * Bpad + r, where Bpad
// rounds B up to the active SIMD backend's lane width, so one agent's
// values across the batch are contiguous, vector-aligned rows for the
// explicit lane kernels (simd/simd.hpp). Lanes r >= B are padding: they
// hold benign finite values, are advanced by the same strictly lanewise
// kernels (so they can never contaminate a real lane), and are never read
// back. See batch_runner.hpp for the determinism contract.
class BatchedSbgRunner {
 public:
  BatchedSbgRunner(std::span<const Scenario> replicas,
                   const RunOptions& options)
      : scenarios_(replicas),
        options_(options),
        kernels_(&simd_kernels_for_lanes(replicas.size())) {
    FTMAO_EXPECTS(!replicas.empty());
    const Scenario& first = replicas.front();
    for (const Scenario& s : replicas) {
      s.validate();
      // Shape fields must match across the batch; everything else (seed,
      // functions, states, attack, step, constraint, drops) is per-replica.
      FTMAO_EXPECTS(s.n == first.n);
      FTMAO_EXPECTS(s.f == first.f);
      FTMAO_EXPECTS(s.rounds == first.rounds);
      FTMAO_EXPECTS(s.faulty == first.faulty);
      FTMAO_EXPECTS(s.crashes == first.crashes);
    }
    B_ = replicas.size();
    Bpad_ = ((B_ + kernels_->width - 1) / kernels_->width) * kernels_->width;
    n_ = first.n;
    f_ = first.f;
    rounds_ = first.rounds;

    // Engine-honest population in the scalar runner's add order: surviving
    // honest agents first (metrics are taken over exactly these), then
    // crashing-but-honest agents.
    const std::vector<std::size_t> honest_idx = first.honest_indices();
    S_ = honest_idx.size();
    honest_ids_.reserve(honest_idx.size() + first.crashes.size());
    for (std::size_t idx : honest_idx)
      honest_ids_.push_back(AgentId{static_cast<std::uint32_t>(idx)});
    for (const auto& [who, when] : first.crashes)
      honest_ids_.push_back(AgentId{static_cast<std::uint32_t>(who)});
    H_ = honest_ids_.size();
    for (std::size_t idx : first.faulty)
      faulty_ids_.push_back(AgentId{static_cast<std::uint32_t>(idx)});
    F_ = faulty_ids_.size();
    FTMAO_EXPECTS(H_ + F_ == n_);

    fns_.resize(H_ * Bpad_);
    x_.resize(H_ * Bpad_);
    bx_.resize(H_ * Bpad_);
    bg_.resize(H_ * Bpad_);
    // Devirtualized gradient descriptors, SoA. A row (= one agent across
    // all replicas) takes the SIMD fast path only if every replica's cost
    // exposes the SAME kernel shape (clamp / tanh / smooth-abs /
    // softplus-diff); mixed rows keep the virtual per-replica
    // derivative() calls. finish_row gives transcendental padding lanes
    // neutral widths (their shapes divide by the width parameter).
    grad_.init(H_, Bpad_);
    for (std::size_t j = 0; j < H_; ++j) {
      const std::size_t idx = honest_ids_[j].value;
      for (std::size_t r = 0; r < B_; ++r) {
        const Scenario& s = replicas[r];
        const std::size_t l = lane(j, r);
        fns_[l] = s.functions[idx].get();
        grad_.set(j, l, r == 0, fns_[l]->batch_gradient_kernel());
        double x0 = s.initial_states[idx];
        if (s.constraint) x0 = s.constraint->project(x0);
        x_[l] = x0;
      }
      grad_.finish_row(j, B_);
    }

    schedules_.reserve(B_);
    families_.reserve(B_);
    constraint_.reserve(B_);
    defaults_.reserve(B_);
    drop_p_.reserve(B_);
    drop_seed_.reserve(B_);
    filter_on_.reserve(B_);
    adversaries_.resize(B_);
    wrappers_.resize(B_);
    byz_nodes_.resize(B_);
    has_crashes_ = !first.crashes.empty();
    constexpr std::uint32_t kNeverCrashes =
        std::numeric_limits<std::uint32_t>::max();
    crash_round_.assign(n_, kNeverCrashes);
    for (const auto& [who, when] : first.crashes)
      crash_round_[who] = static_cast<std::uint32_t>(when);
    faulty_bitmap_.assign(n_, 0);
    for (std::size_t idx : first.faulty) faulty_bitmap_[idx] = 1;

    for (std::size_t r = 0; r < B_; ++r) {
      const Scenario& s = replicas[r];
      schedules_.push_back(make_schedule(s.step));
      families_.emplace_back(s.honest_functions(), s.f);
      constraint_.push_back(s.constraint);
      defaults_.push_back(s.default_payload);
      drop_p_.push_back(s.drop_probability);
      drop_seed_.push_back(mix64(s.seed ^ 0xD509F00DULL));
      filter_on_.push_back(s.drop_probability > 0.0 || has_crashes_ ? 1 : 0);
      any_filter_ = any_filter_ || filter_on_.back() != 0;

      // Per-replica adversary objects, seeded exactly as the scalar runner
      // seeds them, so randomized strategies consume identical streams.
      Rng rng(s.seed);
      for (std::size_t idx : s.faulty) {
        adversaries_[r].push_back(
            make_adversary(s.attack, rng.substream("adversary", idx)));
        ByzantineNode<SbgPayload>* node = adversaries_[r].back().get();
        if (s.attack.consistent) {
          wrappers_[r].push_back(
              std::make_unique<ConsistentWrapper>(*adversaries_[r].back()));
          node = wrappers_[r].back().get();
        }
        byz_nodes_[r].push_back(node);
      }
    }

    metrics_.resize(B_);
    for (std::size_t r = 0; r < B_; ++r) {
      metrics_[r].optima = families_[r].optima_set();
      if (options_.record_trace) {
        metrics_[r].trace.emplace();
        metrics_[r].trace->honest_ids = honest_idx;
      }
    }

    // Per-replica projection parameters, SoA for the fused step kernel.
    // Unconstrained lanes clamp against (-inf, +inf) — a bitwise identity
    // on the unprojected value — with an all-zero mask selecting the
    // literal 0.0 projection error the scalar path records. Padding lanes
    // clamp to [0, 0] with mask 0, pinning them at a benign finite value.
    clo_.assign(Bpad_, 0.0);
    chi_.assign(Bpad_, 0.0);
    pemask_.assign(Bpad_, 0.0);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const double kAllBits =
        std::bit_cast<double>(~std::uint64_t{0});
    for (std::size_t r = 0; r < B_; ++r) {
      if (constraint_[r]) {
        clo_[r] = constraint_[r]->lo();
        chi_[r] = constraint_[r]->hi();
        pemask_[r] = kAllBits;
      } else {
        clo_[r] = -kInf;
        chi_[r] = kInf;
      }
    }

    dx_.resize(n_ * Bpad_);
    dg_.resize(n_ * Bpad_);
    ctx_.resize(H_ * Bpad_);
    ctg_.resize(H_ * Bpad_);
    view_class_.assign(H_, 0);
    class_hash_.assign(H_, 0);
    class_rep_.assign(H_, 0);
    class_done_.assign(H_, 0);
    lambda_.assign(Bpad_, 0.0);
    pe_.assign(H_ * Bpad_, 0.0);
    trimmed_state_.resize(S_ * Bpad_);
    trimmed_gradient_.resize(S_ * Bpad_);
    // Byzantine payload matrices, lane-padded to stride Bpad so each
    // (recipient, sender) row is a whole vector row for the masked
    // blend; presence is a stored all-ones/all-zeros double mask.
    // Padding lanes keep mask 0 and blend to the (benign) default row.
    bpx_.assign(H_ * F_ * Bpad_, 0.0);
    bpg_.assign(H_ * F_ * Bpad_, 0.0);
    bpresent_.assign(H_ * F_ * Bpad_, 0.0);
    // Per-replica default payloads as SoA rows for the blend kernels.
    defx_.assign(Bpad_, 0.0);
    defg_.assign(Bpad_, 0.0);
    for (std::size_t r = 0; r < B_; ++r) {
      defx_[r] = defaults_[r].state;
      defg_[r] = defaults_[r].gradient;
    }
    dmask_.assign(Bpad_, 0.0);
  }

  std::vector<RunMetrics> run() {
    engine_stats_record(B_, B_, Bpad_);
    for (std::size_t r = 0; r < B_; ++r) {
      record(r);
      metrics_[r].max_projection_error.push(0.0);
    }

    for (std::size_t t = 1; t <= rounds_; ++t) {
      const bool audit = options_.audit_witnesses &&
                         t <= options_.audit_max_rounds &&
                         (t - 1) % options_.audit_every == 0;
      const Round round{static_cast<std::uint32_t>(t)};

      broadcast_phase(round);
      collect_byzantine(round);
      for (std::size_t r = 0; r < B_; ++r)
        lambda_[r] = schedules_[r]->at(t - 1);
      for (std::size_t j = 0; j < H_; ++j) step_recipient(j, round, audit);
      finish_round(audit);
    }

    for (std::size_t r = 0; r < B_; ++r) {
      metrics_[r].final_states.reserve(S_);
      for (std::size_t j = 0; j < S_; ++j)
        metrics_[r].final_states.push_back(x_[lane(j, r)]);
    }
    return std::move(metrics_);
  }

 private:
  std::size_t lane(std::size_t j, std::size_t r) const {
    return j * Bpad_ + r;
  }

  // Mirrors the delivery filter the scalar runner installs (crash
  // silencing + seeded link drops; Byzantine senders exempt from drops).
  bool deliverable(std::uint32_t from, std::uint32_t to, std::uint32_t t,
                   std::size_t r) const {
    if (!filter_on_[r]) return true;
    if (t >= crash_round_[from]) return false;
    const double p = drop_p_[r];
    if (p <= 0.0) return true;
    if (faulty_bitmap_[from]) return true;
    std::uint64_t h = mix64(drop_seed_[r] ^ from);
    h = mix64(h ^ to);
    h = mix64(h ^ t);
    return static_cast<double>(h >> 11) * 0x1.0p-53 >= p;
  }

  // Step 1: every engine-honest agent's broadcast, SoA. Rows whose costs
  // all expose the same closed-form descriptor shape (clamp or one of
  // the transcendental kinds) evaluate h'(x) through the SIMD gradient
  // kernel — one indirect call per row instead of one virtual call per
  // lane; derivative() is pure, so the reordering is unobservable and
  // every kernel is pinned bitwise to derivative() by the
  // BatchGradientKernel contract. The per-replica AoS views are
  // materialized only when adversaries exist to observe them.
  void broadcast_phase(Round t) {
    const bool need_views = F_ > 0;
    if (need_views) views_.begin_round(t, B_, honest_ids_);
    for (std::size_t j = 0; j < H_; ++j) {
      const std::size_t base = lane(j, 0);
      const double* x = x_.data() + base;
      double* bx = bx_.data() + base;
      double* bg = bg_.data() + base;
      std::memcpy(bx, x, Bpad_ * sizeof(double));
      if (grad_.fast(j)) {
        grad_.run(*kernels_, j, x, bg);
      } else {
        for (std::size_t r = 0; r < B_; ++r)
          bg[r] = fns_[base + r]->derivative(x[r]);
      }
      if (need_views)
        for (std::size_t r = 0; r < B_; ++r)
          views_.set(j, r, SbgPayload{bx[r], bg[r]});
    }
  }

  // Step 2a for the whole round: every Byzantine payload, in the scalar
  // engine's exact call order (recipient outer, sender inner), each
  // adversary observing its own replica's view. Afterwards recipients are
  // partitioned into view classes for this round's trim sharing.
  void collect_byzantine(Round t) {
    const double kAllBits = std::bit_cast<double>(~std::uint64_t{0});
    const std::size_t stride = F_ * Bpad_;
    for (std::size_t j = 0; j < H_; ++j) {
      const AgentId rid = honest_ids_[j];
      for (std::size_t b = 0; b < F_; ++b) {
        const AgentId bid = faulty_ids_[b];
        for (std::size_t r = 0; r < B_; ++r) {
          bool present = false;
          double px = 0.0;
          double pg = 0.0;
          if (deliverable(bid.value, rid.value, t.value, r)) {
            if (auto payload =
                    byz_nodes_[r][b]->send_to(bid, rid, views_.view(r))) {
              px = payload->state;
              pg = payload->gradient;
              present = true;
            }
          }
          const std::size_t o = j * stride + b * Bpad_ + r;
          bpx_[o] = px;
          bpg_[o] = pg;
          bpresent_[o] = present ? kAllBits : 0.0;
        }
      }
    }
    classify_recipients();
  }

  // FNV-1a over recipient j's Byzantine block (payload states, gradients,
  // presence masks), word-at-a-time. Bitwise-equal blocks hash equal;
  // collisions are resolved by the memcmp verify in classify_recipients.
  std::uint64_t block_hash(std::size_t j) const {
    const std::size_t stride = F_ * Bpad_;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](const double* p, std::size_t m) {
      for (std::size_t i = 0; i < m; ++i) {
        h ^= std::bit_cast<std::uint64_t>(p[i]);
        h *= 0x100000001b3ULL;
      }
    };
    mix(bpx_.data() + j * stride, stride);
    mix(bpg_.data() + j * stride, stride);
    mix(bpresent_.data() + j * stride, stride);
    return h;
  }

  bool blocks_equal(std::size_t a, std::size_t b) const {
    const std::size_t stride = F_ * Bpad_;
    const std::size_t bytes = stride * sizeof(double);
    return std::memcmp(bpx_.data() + a * stride, bpx_.data() + b * stride,
                       bytes) == 0 &&
           std::memcmp(bpg_.data() + a * stride, bpg_.data() + b * stride,
                       bytes) == 0 &&
           std::memcmp(bpresent_.data() + a * stride,
                       bpresent_.data() + b * stride, bytes) == 0;
  }

  // Partitions recipients into view classes: two recipients share a class
  // iff their Byzantine payload blocks are bitwise identical this round
  // (no delivery filter), because then they assemble the same n-row
  // multiset — all broadcasts reach everyone, own tuple included — and
  // Trim is a pure function of it. Recipient-independent strategies give
  // one class, a split-brain adversary two, per-recipient noise H; the
  // trim pair is computed once per class either way.
  void classify_recipients() {
    std::fill(class_done_.begin(), class_done_.end(), std::uint8_t{0});
    num_classes_ = 0;
    if (any_filter_) {
      // Honest-row delivery masks differ per recipient, so trims cannot be
      // shared even when the Byzantine blocks agree.
      for (std::size_t j = 0; j < H_; ++j)
        view_class_[j] = static_cast<std::uint32_t>(j);
      num_classes_ = H_;
      return;
    }
    for (std::size_t j = 0; j < H_; ++j) {
      const std::uint64_t h = F_ > 0 ? block_hash(j) : 0;
      std::size_t c = 0;
      for (; c < num_classes_; ++c) {
        if (class_hash_[c] == h && (F_ == 0 || blocks_equal(class_rep_[c], j)))
          break;
      }
      if (c == num_classes_) {
        class_hash_[c] = h;
        class_rep_[c] = j;
        ++num_classes_;
      }
      view_class_[j] = static_cast<std::uint32_t>(c);
    }
  }

  // Steps 2b-3 for one recipient across all replicas: assemble the
  // D^x/D^g multiset matrices, trim both with the batched kernels, apply
  // the gradient step.
  void step_recipient(std::size_t j, Round t, bool audit) {
    const AgentId rid = honest_ids_[j];
    const std::size_t byz_base = j * F_ * Bpad_;

    // View-class trim sharing: the first recipient of each class computes
    // the trim pair into the class row; later same-class recipients reuse
    // its bits — identical to computing their own, since their multisets
    // are bitwise the same rows in a different (trim-irrelevant) order.
    const std::uint32_t cls = view_class_[j];
    double* tx = ctx_.data() + cls * Bpad_;
    double* tg = ctg_.data() + cls * Bpad_;
    if (!class_done_[cls]) {
      class_done_[cls] = 1;
      // Multiset rows: own tuple, then every other engine-honest sender,
      // then the Byzantine senders; undelivered slots hold the default
      // payload — the same multiset the scalar agent assembles (inbox plus
      // substituted defaults), in which order is irrelevant to Trim.
      double* dx = dx_.data();
      double* dg = dg_.data();
      std::size_t slot = 0;
      std::memcpy(dx, bx_.data() + lane(j, 0), Bpad_ * sizeof(double));
      std::memcpy(dg, bg_.data() + lane(j, 0), Bpad_ * sizeof(double));
      ++slot;
      for (std::size_t s = 0; s < H_; ++s) {
        if (s == j) continue;
        double* dxr = dx + slot * Bpad_;
        double* dgr = dg + slot * Bpad_;
        const double* sx = bx_.data() + lane(s, 0);
        const double* sg = bg_.data() + lane(s, 0);
        if (!any_filter_) {
          std::memcpy(dxr, sx, Bpad_ * sizeof(double));
          std::memcpy(dgr, sg, Bpad_ * sizeof(double));
        } else {
          // The per-lane drop decision is an integer hash (inherently
          // scalar); the payload-vs-default substitution it gates is a
          // full-row masked lane blend. Padding lanes of dmask_ stay 0
          // and blend to the benign default row.
          const std::uint32_t sid = honest_ids_[s].value;
          const double kAllBits = std::bit_cast<double>(~std::uint64_t{0});
          for (std::size_t r = 0; r < B_; ++r)
            dmask_[r] =
                deliverable(sid, rid.value, t.value, r) ? kAllBits : 0.0;
          kernels_->masked_blend(dmask_.data(), sx, sg, defx_.data(),
                                 defg_.data(), dxr, dgr, Bpad_);
        }
        ++slot;
      }
      // Byzantine rows: absent payloads (silent adversary, dropped or
      // crash-silenced delivery) blend to the default payload through the
      // same lane kernel — the stride-Bpad mask row was filled by
      // collect_byzantine.
      for (std::size_t b = 0; b < F_; ++b) {
        double* dxr = dx + slot * Bpad_;
        double* dgr = dg + slot * Bpad_;
        const std::size_t o = byz_base + b * Bpad_;
        kernels_->masked_blend(bpresent_.data() + o, bpx_.data() + o,
                               bpg_.data() + o, defx_.data(), defg_.data(),
                               dxr, dgr, Bpad_);
        ++slot;
      }
      FTMAO_ENSURES(slot == n_);

      trim_batch(dx, n_, Bpad_, f_, *kernels_, tx);
      trim_batch(dg, n_, Bpad_, f_, *kernels_, tg);
    }

    // Fused projected step across the whole lane row:
    //   u = tx - lambda * tg;  x = clamp(u, clo, chi);  pe = masked(x - u)
    // — the scalar update's exact operation sequence (Interval::project is
    // std::clamp, matched tie-for-tie by the lane clamp; unconstrained
    // lanes clamp against +/-inf, a bitwise identity).
    const std::size_t base = lane(j, 0);
    kernels_->fused_step(tx, tg, lambda_.data(), clo_.data(),
                         chi_.data(), pemask_.data(), x_.data() + base,
                         pe_.data() + base, Bpad_);
    if (audit && j < S_) {
      std::memcpy(trimmed_state_.data() + base, tx, Bpad_ * sizeof(double));
      std::memcpy(trimmed_gradient_.data() + base, tg,
                  Bpad_ * sizeof(double));
    }
  }

  // Post-round bookkeeping per replica: metric series, projection-error
  // fold, witness audits — each in the scalar runner's operation order.
  void finish_round(bool audit) {
    std::vector<double> pre_states;
    std::vector<double> pre_gradients;
    for (std::size_t r = 0; r < B_; ++r) {
      record(r);

      double max_proj = 0.0;
      for (std::size_t j = 0; j < S_; ++j)
        max_proj = std::max(max_proj, std::abs(pe_[lane(j, r)]));

      if (audit) {
        pre_states.clear();
        pre_gradients.clear();
        for (std::size_t j = 0; j < S_; ++j) {
          pre_states.push_back(bx_[lane(j, r)]);
          pre_gradients.push_back(bg_[lane(j, r)]);
        }
        auto absorb = [](WitnessStats& stats, const TrimAuditResult& res) {
          ++stats.checks;
          if (!res.witness_found) ++stats.failures;
          if (!res.exact) ++stats.inexact;
          if (res.witness_found) {
            stats.min_weight_seen =
                std::min(stats.min_weight_seen, res.min_support_weight);
            stats.min_support_seen =
                std::min(stats.min_support_seen, res.support_size);
          }
        };
        RunMetrics& m = metrics_[r];
        for (std::size_t j = 0; j < S_; ++j) {
          absorb(m.state_witness,
                 audit_trim(pre_states, trimmed_state_[lane(j, r)], f_));
          absorb(m.gradient_witness,
                 audit_trim(pre_gradients, trimmed_gradient_[lane(j, r)], f_));
        }
      }
      metrics_[r].max_projection_error.push(max_proj);
    }
  }

  void record(std::size_t r) {
    RunMetrics& m = metrics_[r];
    double lo = x_[lane(0, r)];
    double hi = lo;
    double dist = families_[r].distance_to_optima(lo);
    std::vector<double> snapshot;
    if (m.trace) snapshot.reserve(S_);
    for (std::size_t j = 0; j < S_; ++j) {
      const double xv = x_[lane(j, r)];
      lo = std::min(lo, xv);
      hi = std::max(hi, xv);
      dist = std::max(dist, families_[r].distance_to_optima(xv));
      if (m.trace) snapshot.push_back(xv);
    }
    m.disagreement.push(hi - lo);
    m.max_dist_to_y.push(dist);
    if (m.trace) m.trace->rounds.push_back(std::move(snapshot));
  }

  std::span<const Scenario> scenarios_;
  RunOptions options_;
  const SimdKernels* kernels_;  ///< active lane backend, captured once
  std::size_t B_ = 0;       ///< replicas in the batch
  std::size_t Bpad_ = 0;    ///< B rounded up to the backend lane width
  std::size_t n_ = 0;       ///< total agents
  std::size_t f_ = 0;       ///< fault bound
  std::size_t rounds_ = 0;
  std::size_t S_ = 0;       ///< surviving honest agents (metric population)
  std::size_t H_ = 0;       ///< engine-honest agents (surviving + crashing)
  std::size_t F_ = 0;       ///< Byzantine agents
  std::vector<AgentId> honest_ids_;
  std::vector<AgentId> faulty_ids_;

  // SoA state, lane(j, r) = j * Bpad + r.
  std::vector<const ScalarFunction*> fns_;
  std::vector<double> x_;   ///< current states
  std::vector<double> bx_;  ///< this round's broadcast states
  std::vector<double> bg_;  ///< this round's broadcast gradients

  // Devirtualized gradient descriptors (H x Bpad, SoA) with per-row
  // kernel kinds; see BatchGradientKernel / BatchGradientPlanes.
  BatchGradientPlanes grad_;

  // Per-replica projection parameters for the fused step (length Bpad).
  std::vector<double> clo_, chi_, pemask_;

  std::vector<std::unique_ptr<StepSchedule>> schedules_;
  std::vector<ValidFamily> families_;
  std::vector<std::optional<Interval>> constraint_;
  std::vector<SbgPayload> defaults_;
  std::vector<std::vector<std::unique_ptr<SbgAdversary>>> adversaries_;
  std::vector<std::vector<std::unique_ptr<ConsistentWrapper>>> wrappers_;
  std::vector<std::vector<ByzantineNode<SbgPayload>*>> byz_nodes_;

  // Delivery-filter tables (crash schedule shared; drops seeded per
  // replica).
  bool has_crashes_ = false;
  bool any_filter_ = false;
  std::vector<std::uint32_t> crash_round_;
  std::vector<std::uint8_t> faulty_bitmap_;
  std::vector<double> drop_p_;
  std::vector<std::uint64_t> drop_seed_;
  std::vector<std::uint8_t> filter_on_;

  BatchedHonestBroadcasts<SbgPayload> views_;
  std::vector<RunMetrics> metrics_;

  // Round-scoped scratch, sized once in the constructor.
  std::vector<double> dx_, dg_;        ///< n x Bpad multiset matrices
  std::vector<double> ctx_, ctg_;      ///< per-class trim outputs, H x Bpad
  std::vector<double> lambda_;         ///< per-replica step size this round
  std::vector<double> pe_;             ///< projection errors, H x Bpad
  std::vector<double> trimmed_state_;  ///< audit diagnostics, S x Bpad
  std::vector<double> trimmed_gradient_;
  std::vector<double> bpx_, bpg_;    ///< Byzantine payloads, H x F x Bpad
  std::vector<double> bpresent_;     ///< all-ones/all-zeros lane masks
  std::vector<double> defx_, defg_;  ///< default payload rows, length Bpad
  std::vector<double> dmask_;        ///< per-row delivery mask scratch

  // This round's recipient view classes (classify_recipients).
  std::vector<std::uint32_t> view_class_;  ///< recipient -> class id
  std::vector<std::uint64_t> class_hash_;  ///< class id -> block hash
  std::vector<std::uint32_t> class_rep_;   ///< class id -> first recipient
  std::vector<std::uint8_t> class_done_;   ///< class trims computed yet?
  std::size_t num_classes_ = 0;
};

}  // namespace

std::vector<RunMetrics> run_sbg_batch(std::span<const Scenario> replicas,
                                      const RunOptions& options) {
  if (replicas.empty()) return {};
  return BatchedSbgRunner(replicas, options).run();
}

}  // namespace ftmao
