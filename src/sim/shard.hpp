#pragma once

// Sharded sweeps: deterministic partition of a sweep grid into K disjoint
// shards, each runnable in its own process, plus the per-shard manifest
// that makes the recombination auditable.
//
// The assignment is a pure function of the *cell identity* (n, f, attack
// name) and the shard count — not of the cell's position in the grid — so
// every worker computes the same partition regardless of how its config
// enumerates sizes and attacks, and a cell keeps its shard when unrelated
// cells are added to the grid. Together with the per-cell seeding
// contract (docs/performance.md: every (cell, seed) run derives all
// randomness from its own seed), this makes shard outputs order-free
// mergeable: the union of the K shard CSVs is byte-for-byte the
// single-process sweep CSV, which sim/shard_merge.hpp verifies at merge
// time.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace ftmao {

/// Stable shard assignment: FNV-1a over (n, f, dim, attack name) mod
/// shard_count. Depends only on the cell identity and shard_count — not
/// on enumeration order, grid composition, or the AttackKind enum's
/// numeric values (names are the stable surface). Scalar cells (dim 1)
/// hash exactly as they did before the dim axis existed, so historical
/// assignments are preserved.
std::size_t shard_of_cell(const CellSpec& cell, std::size_t shard_count);

/// The cells of shard `shard_index` (< shard_count), in canonical grid
/// order. The K shards partition sweep_cell_specs(config): disjoint,
/// complete, possibly empty for small grids.
std::vector<CellSpec> shard_cell_specs(const SweepConfig& config,
                                       std::size_t shard_index,
                                       std::size_t shard_count);

/// Runs exactly this shard's cells. Equivalent to filtering the rows of
/// run_sweep(config) down to the shard's cells (asserted bitwise in
/// tests/shard_test.cpp).
std::vector<SweepCell> run_sweep_shard(const SweepConfig& config,
                                       std::size_t shard_index,
                                       std::size_t shard_count);

/// "n:f:dim:attack-name" — the cell's stable textual identity (manifest
/// entries, merge diagnostics).
std::string cell_key(const CellSpec& cell);

// Grid-spec codec: the canonical flag-syntax strings ("7:2,10:3",
// "split-brain,sign-flip", "1,2,3", "harmonic:1:0.75") used by the CLI
// and embedded in manifests so the merge stage can reconstruct the grid
// without re-passing flags. Doubles round-trip exactly (max_digits10).
std::string format_sizes(
    const std::vector<std::pair<std::size_t, std::size_t>>& sizes);
std::vector<std::pair<std::size_t, std::size_t>> parse_sizes(
    const std::string& text);
std::string format_dims(const std::vector<std::size_t>& dims);
std::vector<std::size_t> parse_dims(const std::string& text);
std::string format_attacks(const std::vector<AttackKind>& attacks);
std::vector<AttackKind> parse_attacks(const std::string& text);
std::string format_seeds(const std::vector<std::uint64_t>& seeds);
std::vector<std::uint64_t> parse_seeds(const std::string& text);
std::string format_step(const StepConfig& step);
StepConfig parse_step(const std::string& text);

/// Everything a merge needs to audit one shard's output: which grid it
/// believes it is part of, which cells it covered, and under what
/// conditions it ran. Written next to the shard CSV by
/// `ftmao_sweep --manifest`.
struct ShardManifest {
  int schema = 1;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  // The full grid (not just this shard's slice) in canonical spec syntax;
  // all manifests of one sweep must agree on these.
  std::string sizes;
  std::string dims = "1";
  std::string attacks;
  std::string seeds;
  std::size_t rounds = 0;
  double spread = 8.0;
  std::string step;

  std::vector<std::string> cells;  ///< cell_key()s covered, grid order

  std::string git_rev = "unknown";  ///< build's git revision (configure time)
  std::string isa = "scalar";       ///< active SIMD backend during the run
  double wall_ms = 0.0;             ///< wall time of the shard run
  int exit_status = 0;              ///< 0 = completed

  friend bool operator==(const ShardManifest&, const ShardManifest&) = default;
};

/// Manifest for one shard of this config's grid (cells filled from
/// shard_cell_specs; run metadata left at defaults for the caller).
ShardManifest make_shard_manifest(const SweepConfig& config,
                                  std::size_t shard_index,
                                  std::size_t shard_count);

/// Reconstructs the grid a manifest describes (engine knobs — threads,
/// batch, scalar — stay at their defaults; they do not affect output).
SweepConfig config_from_manifest(const ShardManifest& manifest);

/// JSON round-trip. manifest_from_json throws ContractViolation on
/// missing/malformed fields.
std::string manifest_to_json(const ShardManifest& manifest);
ShardManifest manifest_from_json(const std::string& json);

/// The git revision baked in at configure time ("unknown" outside a git
/// checkout). Recorded in manifests so a merge can refuse to combine
/// artifacts from different builds.
std::string build_git_revision();

}  // namespace ftmao
