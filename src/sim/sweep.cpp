#include "sim/sweep.hpp"

#include <sstream>

#include "common/contracts.hpp"
#include "sim/runner.hpp"
#include "sim/scenario_io.hpp"

namespace ftmao {

void SweepConfig::validate() const {
  FTMAO_EXPECTS(!sizes.empty());
  FTMAO_EXPECTS(!attacks.empty());
  FTMAO_EXPECTS(!seeds.empty());
  FTMAO_EXPECTS(rounds >= 1);
  for (const auto& [n, f] : sizes) FTMAO_EXPECTS(n > 3 * f);
}

std::vector<SweepCell> run_sweep(const SweepConfig& config) {
  config.validate();
  std::vector<SweepCell> cells;
  for (const auto& [n, f] : config.sizes) {
    for (AttackKind attack : config.attacks) {
      SweepCell cell;
      cell.n = n;
      cell.f = f;
      cell.attack = attack;
      std::vector<double> disagreements, dists;
      for (std::uint64_t seed : config.seeds) {
        Scenario s = make_standard_scenario(n, f, config.spread, attack,
                                            config.rounds, seed);
        s.step = config.step;
        const RunMetrics m = run_sbg(s);
        disagreements.push_back(m.final_disagreement());
        dists.push_back(m.final_max_dist());
      }
      cell.disagreement = summarize(disagreements);
      cell.dist_to_y = summarize(dists);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

std::string sweep_to_csv(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  os << "n,f,attack,seeds,disagr_median,disagr_max,dist_median,dist_max\n";
  os.precision(10);
  for (const SweepCell& c : cells) {
    os << c.n << ',' << c.f << ',' << attack_kind_name(c.attack) << ','
       << c.disagreement.count << ',' << c.disagreement.median << ','
       << c.disagreement.max << ',' << c.dist_to_y.median << ','
       << c.dist_to_y.max << '\n';
  }
  return os.str();
}

}  // namespace ftmao
