#include "sim/sweep.hpp"

#include <span>
#include <sstream>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "sim/runner.hpp"
#include "sim/scenario_io.hpp"

namespace ftmao {

void SweepConfig::validate() const {
  FTMAO_EXPECTS(!sizes.empty());
  FTMAO_EXPECTS(!attacks.empty());
  FTMAO_EXPECTS(!seeds.empty());
  FTMAO_EXPECTS(rounds >= 1);
  for (const auto& [n, f] : sizes) FTMAO_EXPECTS(n > 3 * f);
}

std::vector<SweepCell> run_sweep(const SweepConfig& config) {
  config.validate();

  struct CellSpec {
    std::size_t n, f;
    AttackKind attack;
  };
  std::vector<CellSpec> specs;
  specs.reserve(config.sizes.size() * config.attacks.size());
  for (const auto& [n, f] : config.sizes)
    for (AttackKind attack : config.attacks) specs.push_back({n, f, attack});

  // One task per (cell, seed) run for load balancing (cells differ in n).
  // Every run derives its randomness solely from its own seed and writes
  // to its own index, so the aggregate below sees exactly the sequence the
  // serial path would have produced, whatever the thread count.
  const std::size_t num_seeds = config.seeds.size();
  std::vector<double> disagreements(specs.size() * num_seeds, 0.0);
  std::vector<double> dists(specs.size() * num_seeds, 0.0);
  parallel_for_each(
      config.num_threads, specs.size() * num_seeds, [&](std::size_t task) {
        const CellSpec& spec = specs[task / num_seeds];
        Scenario s =
            make_standard_scenario(spec.n, spec.f, config.spread, spec.attack,
                                   config.rounds, config.seeds[task % num_seeds]);
        s.step = config.step;
        const RunMetrics m = run_sbg(s);
        disagreements[task] = m.final_disagreement();
        dists[task] = m.final_max_dist();
      });

  std::vector<SweepCell> cells(specs.size());
  for (std::size_t c = 0; c < specs.size(); ++c) {
    cells[c].n = specs[c].n;
    cells[c].f = specs[c].f;
    cells[c].attack = specs[c].attack;
    cells[c].disagreement =
        summarize(std::span(disagreements).subspan(c * num_seeds, num_seeds));
    cells[c].dist_to_y =
        summarize(std::span(dists).subspan(c * num_seeds, num_seeds));
  }
  return cells;
}

std::string sweep_to_csv(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  os << "n,f,attack,seeds,dist_count,disagr_median,disagr_max,dist_median,"
        "dist_max\n";
  os.precision(10);
  for (const SweepCell& c : cells) {
    // Hand-built cells may carry empty summaries; emit zeros rather than
    // whatever summarize-of-nothing would have divided into.
    const Summary disagr = c.disagreement.count > 0 ? c.disagreement : Summary{};
    const Summary dist = c.dist_to_y.count > 0 ? c.dist_to_y : Summary{};
    os << c.n << ',' << c.f << ',' << attack_kind_name(c.attack) << ','
       << disagr.count << ',' << dist.count << ',' << disagr.median << ','
       << disagr.max << ',' << dist.median << ',' << dist.max << '\n';
  }
  return os.str();
}

}  // namespace ftmao
