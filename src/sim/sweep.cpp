#include "sim/sweep.hpp"

#include <algorithm>
#include <numeric>
#include <span>
#include <sstream>
#include <utility>

#include "cache/cell_key.hpp"
#include "cache/result_cache.hpp"
#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "sim/batch_async_runner.hpp"
#include "sim/batch_runner.hpp"
#include "sim/batch_vector_runner.hpp"
#include "sim/megabatch.hpp"
#include "sim/runner.hpp"
#include "sim/scenario_io.hpp"
#include "sim/shard.hpp"
#include "sim/vector_scenario.hpp"

namespace ftmao {

void SweepConfig::validate() const {
  FTMAO_EXPECTS(!sizes.empty());
  FTMAO_EXPECTS(!attacks.empty());
  FTMAO_EXPECTS(!seeds.empty());
  FTMAO_EXPECTS(!dims.empty());
  FTMAO_EXPECTS(rounds >= 1);
  for (std::size_t d : dims) FTMAO_EXPECTS(d >= 1);
  // The async engine is scalar-only; a vector async heuristic would need
  // its own per-coordinate delay semantics first.
  if (async_engine)
    for (std::size_t d : dims) FTMAO_EXPECTS(d == 1);
  for (const auto& [n, f] : sizes)
    FTMAO_EXPECTS(async_engine ? n > 5 * f : n > 3 * f);
}

std::vector<CellSpec> sweep_cell_specs(const SweepConfig& config) {
  std::vector<CellSpec> specs;
  specs.reserve(config.sizes.size() * config.dims.size() *
                config.attacks.size());
  for (const auto& [n, f] : config.sizes)
    for (std::size_t dim : config.dims)
      for (AttackKind attack : config.attacks)
        specs.push_back({n, f, dim, attack});
  return specs;
}

std::string sweep_cell_cache_spec(const SweepConfig& config,
                                  const CellSpec& spec) {
  std::ostringstream os;
  os << "sweep;family=std-mixed;n=" << spec.n << ";f=" << spec.f
     << ";dim=" << spec.dim << ";attack=" << attack_kind_name(spec.attack)
     << ";spread=" << cache_canon_double(config.spread)
     << ";rounds=" << config.rounds << ";step=" << format_step(config.step)
     << ";seeds=" << format_seeds(config.seeds) << ";constraint=none";
  if (config.async_engine) {
    os << ";engine=async;delay=" << delay_kind_name(config.delay_kind) << ':'
       << cache_canon_double(config.delay_lo) << ':'
       << cache_canon_double(config.delay_hi);
  } else {
    os << ";engine=sync";
  }
  return os.str();
}

namespace {

// Per-cell task path (--megabatch off, and the scalar reference engine):
// one task per (pending cell, seed-chunk). Each chunk's replicas share a
// shape (only the seed differs) and advance in lockstep through the
// batched engine. Every run derives its randomness solely from its own
// seed and writes to its own index, so the aggregate sees exactly the
// sequence the serial scalar path would have produced, whatever the
// thread count, batch size, engine, or cache hit pattern.
void run_pending_per_cell(const SweepConfig& config,
                          const std::vector<CellSpec>& specs,
                          const std::vector<std::size_t>& pending,
                          std::vector<double>& disagreements,
                          std::vector<double>& dists) {
  const std::size_t num_seeds = config.seeds.size();
  const std::size_t chunk =
      config.scalar_engine
          ? 1
          : std::min(config.batch_size == 0 ? num_seeds : config.batch_size,
                     num_seeds);
  const std::size_t chunks_per_cell = (num_seeds + chunk - 1) / chunk;
  parallel_for_each(
      config.num_threads, pending.size() * chunks_per_cell,
      [&](std::size_t task) {
        const std::size_t cell = pending[task / chunks_per_cell];
        const CellSpec& spec = specs[cell];
        const std::size_t first = (task % chunks_per_cell) * chunk;
        const std::size_t count = std::min(chunk, num_seeds - first);
        const std::size_t base = cell * num_seeds + first;
        if (config.async_engine) {
          std::vector<AsyncScenario> replicas;
          replicas.reserve(count);
          for (std::size_t i = 0; i < count; ++i) {
            AsyncScenario s = make_standard_async_scenario(
                spec.n, spec.f, config.spread, spec.attack, config.rounds,
                config.seeds[first + i]);
            s.step = config.step;
            s.delay_kind = config.delay_kind;
            s.delay_lo = config.delay_lo;
            s.delay_hi = config.delay_hi;
            replicas.push_back(std::move(s));
          }
          if (config.scalar_engine) {
            for (std::size_t i = 0; i < count; ++i) {
              const AsyncRunMetrics m = run_async_sbg(replicas[i]);
              disagreements[base + i] = m.disagreement.back();
              dists[base + i] = m.max_dist_to_y.back();
            }
          } else {
            const std::vector<AsyncRunMetrics> ms =
                run_async_sbg_batch(replicas);
            for (std::size_t i = 0; i < count; ++i) {
              disagreements[base + i] = ms[i].disagreement.back();
              dists[base + i] = ms[i].max_dist_to_y.back();
            }
          }
          return;
        }
        if (spec.dim >= 2) {
          // Vector cell: one standard vector scenario per seed. The costs
          // depend only on (n, f, spread, dim), so the seed replicas share
          // the base scenario's cost vector — the batched engine's optimum
          // memoization then computes the reference minimizer once.
          const VectorScenario proto = make_standard_vector_scenario(
              spec.n, spec.f, config.spread, spec.attack, config.rounds,
              config.seeds[first], spec.dim);
          std::vector<VectorScenario> replicas(count, proto);
          for (std::size_t i = 0; i < count; ++i) {
            replicas[i].seed = config.seeds[first + i];
            replicas[i].step = config.step;
          }
          if (config.scalar_engine) {
            for (std::size_t i = 0; i < count; ++i) {
              const VectorRunResult m = run_vector_scenario(replicas[i]);
              disagreements[base + i] = m.disagreement.back();
              dists[base + i] = m.dist_to_average_optimum.back();
            }
          } else {
            const std::vector<VectorRunResult> ms =
                run_vector_sbg_batch(replicas);
            for (std::size_t i = 0; i < count; ++i) {
              disagreements[base + i] = ms[i].disagreement.back();
              dists[base + i] = ms[i].dist_to_average_optimum.back();
            }
          }
          return;
        }
        std::vector<Scenario> replicas;
        replicas.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          Scenario s = make_standard_scenario(spec.n, spec.f, config.spread,
                                              spec.attack, config.rounds,
                                              config.seeds[first + i]);
          s.step = config.step;
          replicas.push_back(std::move(s));
        }
        if (config.scalar_engine) {
          for (std::size_t i = 0; i < count; ++i) {
            const RunMetrics m = run_sbg(replicas[i]);
            disagreements[base + i] = m.final_disagreement();
            dists[base + i] = m.final_max_dist();
          }
        } else {
          const std::vector<RunMetrics> ms = run_sbg_batch(replicas);
          for (std::size_t i = 0; i < count; ++i) {
            disagreements[base + i] = ms[i].final_disagreement();
            dists[base + i] = ms[i].final_max_dist();
          }
        }
      });
}

// Megabatch path: pack pending (cell, seed) replicas that share an engine
// shape — any attack, any seed — into lane-filling batches
// (sim/megabatch.hpp) and submit them cost-ordered, longest first. Every
// replica still derives its randomness solely from its own seed and
// scatters into its own pre-assigned slot, and the batch engines are
// bit-identical to the scalar reference per replica regardless of batch
// composition, so the aggregate cannot tell the paths apart.
void run_pending_megabatched(const SweepConfig& config,
                             const std::vector<CellSpec>& specs,
                             const std::vector<std::size_t>& pending,
                             std::vector<double>& disagreements,
                             std::vector<double>& dists) {
  const std::size_t num_seeds = config.seeds.size();
  std::vector<MegabatchItem> items;
  items.reserve(pending.size() * num_seeds);
  for (std::size_t c : pending) {
    const CellSpec& spec = specs[c];
    MegabatchKey key;
    key.engine = config.async_engine ? MegabatchEngine::kAsync
                 : spec.dim >= 2     ? MegabatchEngine::kVector
                                     : MegabatchEngine::kSync;
    key.n = spec.n;
    key.f = spec.f;
    key.dim = spec.dim;
    for (std::size_t i = 0; i < num_seeds; ++i) items.push_back({key, c, i});
  }
  const MegabatchPlan plan =
      plan_megabatches(std::move(items), config.batch_size, config.rounds);
  parallel_for_each(
      config.num_threads, plan.tasks.size(), [&](std::size_t ti) {
        const MegabatchTask& task = plan.tasks[ti];
        const std::span<const MegabatchItem> batch(
            plan.items.data() + task.first, task.count);
        switch (task.key.engine) {
          case MegabatchEngine::kAsync: {
            std::vector<AsyncScenario> replicas;
            replicas.reserve(batch.size());
            for (const MegabatchItem& it : batch) {
              const CellSpec& spec = specs[it.cell];
              AsyncScenario s = make_standard_async_scenario(
                  spec.n, spec.f, config.spread, spec.attack, config.rounds,
                  config.seeds[it.seed]);
              s.step = config.step;
              s.delay_kind = config.delay_kind;
              s.delay_lo = config.delay_lo;
              s.delay_hi = config.delay_hi;
              replicas.push_back(std::move(s));
            }
            const std::vector<AsyncRunMetrics> ms =
                run_async_sbg_batch(replicas);
            for (std::size_t i = 0; i < batch.size(); ++i) {
              const std::size_t slot =
                  batch[i].cell * num_seeds + batch[i].seed;
              disagreements[slot] = ms[i].disagreement.back();
              dists[slot] = ms[i].max_dist_to_y.back();
            }
            break;
          }
          case MegabatchEngine::kVector: {
            // One proto per cell run: the plan keeps same-cell replicas
            // adjacent, so seed copies share the proto's cost vector and
            // the engine's optimum memoization fires exactly as on the
            // per-cell path.
            std::vector<VectorScenario> replicas;
            replicas.reserve(batch.size());
            std::size_t i = 0;
            while (i < batch.size()) {
              const std::size_t cell = batch[i].cell;
              const CellSpec& spec = specs[cell];
              VectorScenario proto = make_standard_vector_scenario(
                  spec.n, spec.f, config.spread, spec.attack, config.rounds,
                  config.seeds[batch[i].seed], spec.dim);
              proto.step = config.step;
              for (; i < batch.size() && batch[i].cell == cell; ++i) {
                VectorScenario s = proto;
                s.seed = config.seeds[batch[i].seed];
                replicas.push_back(std::move(s));
              }
            }
            const std::vector<VectorRunResult> ms =
                run_vector_sbg_batch(replicas);
            for (std::size_t r = 0; r < batch.size(); ++r) {
              const std::size_t slot =
                  batch[r].cell * num_seeds + batch[r].seed;
              disagreements[slot] = ms[r].disagreement.back();
              dists[slot] = ms[r].dist_to_average_optimum.back();
            }
            break;
          }
          case MegabatchEngine::kSync: {
            std::vector<Scenario> replicas;
            replicas.reserve(batch.size());
            for (const MegabatchItem& it : batch) {
              const CellSpec& spec = specs[it.cell];
              Scenario s = make_standard_scenario(
                  spec.n, spec.f, config.spread, spec.attack, config.rounds,
                  config.seeds[it.seed]);
              s.step = config.step;
              replicas.push_back(std::move(s));
            }
            const std::vector<RunMetrics> ms = run_sbg_batch(replicas);
            for (std::size_t i = 0; i < batch.size(); ++i) {
              const std::size_t slot =
                  batch[i].cell * num_seeds + batch[i].seed;
              disagreements[slot] = ms[i].final_disagreement();
              dists[slot] = ms[i].final_max_dist();
            }
            break;
          }
        }
      });
}

}  // namespace

std::vector<SweepCell> run_sweep_cells(const SweepConfig& config,
                                       const std::vector<CellSpec>& specs) {
  config.validate();

  const std::size_t num_seeds = config.seeds.size();
  std::vector<double> disagreements(specs.size() * num_seeds, 0.0);
  std::vector<double> dists(specs.size() * num_seeds, 0.0);

  // Cache pre-pass: cells whose canonical key resolves fill their result
  // slots from the payload's bit-exact per-seed doubles; the rest land on
  // the pending list and are simulated exactly as without a cache. A
  // payload that fails to decode (truncated, wrong seed count, trailing
  // bytes) is discarded and the cell recomputed.
  std::vector<std::size_t> pending;
  pending.reserve(specs.size());
  std::vector<CellKey> keys;
  if (config.cache != nullptr) {
    keys.reserve(specs.size());
    for (std::size_t c = 0; c < specs.size(); ++c) {
      keys.push_back(make_cell_key(sweep_cell_cache_spec(config, specs[c])));
      bool filled = false;
      if (const std::optional<std::string> payload =
              config.cache->lookup(keys[c])) {
        try {
          PayloadReader reader(*payload);
          if (reader.get_u64() == num_seeds) {
            for (std::size_t i = 0; i < num_seeds; ++i)
              disagreements[c * num_seeds + i] = reader.get_double();
            for (std::size_t i = 0; i < num_seeds; ++i)
              dists[c * num_seeds + i] = reader.get_double();
            filled = reader.exhausted();
          }
        } catch (const ContractViolation&) {
          filled = false;
        }
      }
      if (!filled) pending.push_back(c);
    }
  } else {
    pending.resize(specs.size());
    std::iota(pending.begin(), pending.end(), std::size_t{0});
  }

  if (config.megabatch && !config.scalar_engine) {
    run_pending_megabatched(config, specs, pending, disagreements, dists);
  } else {
    run_pending_per_cell(config, specs, pending, disagreements, dists);
  }

  if (config.cache != nullptr) {
    for (std::size_t c : pending) {
      PayloadWriter writer;
      writer.put_u64(num_seeds);
      for (std::size_t i = 0; i < num_seeds; ++i)
        writer.put_double(disagreements[c * num_seeds + i]);
      for (std::size_t i = 0; i < num_seeds; ++i)
        writer.put_double(dists[c * num_seeds + i]);
      config.cache->insert(keys[c], writer.bytes());
    }
  }

  std::vector<SweepCell> cells(specs.size());
  for (std::size_t c = 0; c < specs.size(); ++c) {
    cells[c].n = specs[c].n;
    cells[c].f = specs[c].f;
    cells[c].dim = specs[c].dim;
    cells[c].attack = specs[c].attack;
    cells[c].disagreement =
        summarize(std::span(disagreements).subspan(c * num_seeds, num_seeds));
    cells[c].dist_to_y =
        summarize(std::span(dists).subspan(c * num_seeds, num_seeds));
  }
  return cells;
}

std::vector<SweepCell> run_sweep(const SweepConfig& config) {
  return run_sweep_cells(config, sweep_cell_specs(config));
}

std::string sweep_csv_header() {
  return "n,f,dim,attack,seeds,dist_count,disagr_median,disagr_max,"
         "dist_median,dist_max";
}

std::string sweep_to_csv(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  os << sweep_csv_header() << '\n';
  os.precision(10);
  for (const SweepCell& c : cells) {
    // Hand-built cells may carry empty summaries; emit zeros rather than
    // whatever summarize-of-nothing would have divided into.
    const Summary disagr = c.disagreement.count > 0 ? c.disagreement : Summary{};
    const Summary dist = c.dist_to_y.count > 0 ? c.dist_to_y : Summary{};
    os << c.n << ',' << c.f << ',' << c.dim << ','
       << attack_kind_name(c.attack) << ','
       << disagr.count << ',' << dist.count << ',' << disagr.median << ','
       << disagr.max << ',' << dist.median << ',' << dist.max << '\n';
  }
  return os.str();
}

}  // namespace ftmao
