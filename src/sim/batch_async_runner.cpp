#include "sim/batch_async_runner.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/async_sbg.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "core/valid_set.hpp"
#include "net/delay.hpp"
#include "net/sync.hpp"
#include "sim/batch_grad.hpp"
#include "sim/megabatch.hpp"
#include "simd/simd.hpp"
#include "trim/trim_batch.hpp"

namespace ftmao {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// ---------------------------------------------------------------------------
// Pass 1: value-free scheduling replay.
// ---------------------------------------------------------------------------

/// One replica's recorded schedule: everything Pass 2 needs to replay the
/// numeric work without the event loop.
struct LaneSchedule {
  std::vector<std::vector<std::uint64_t>> masks;  ///< per honest agent
  std::vector<std::size_t> completed;             ///< per honest agent
  std::vector<std::uint32_t> first_publisher;     ///< per triggered round
  double virtual_time = 0.0;
  std::uint64_t delivered = 0;
};

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Flat replay of AsyncEngine<SbgPayload> driving AsyncSbgAgents
// (net/async.hpp, core/async_sbg.cpp) with the values stripped and the
// value-independent slow parts replaced:
//   - events carry (time, seq, to, from, round) — no payload copies, no
//     virtual on_message dispatch;
//   - a round's buffer is the bitmask of distinct senders: stale rounds are
//     dropped, first-per-sender-wins degenerates to an idempotent bit OR,
//     the popcount quorum test compares the same distinct-sender count, and
//     at most one round advances per delivery — so the advance fires on
//     exactly the delivery the real agent's does;
//   - the Byzantine trigger dedup is an O(1) contiguity check against the
//     recorded first-publisher list instead of the engine's O(rounds)
//     membership scan, and the trigger view is the publishing agent alone
//     instead of an O(rounds * n) rescan of every honest broadcast so far.
//     Both rest on the same invariant: a round is triggered at its first
//     successful honest publish (a round-(t+1) publish needs some agent to
//     have completed round t, which needs an earlier honest round-t
//     publish), so at trigger time the view holds exactly that one
//     broadcast. The FTMAO_EXPECTS below rechecks the premise every round.
// Everything order-sensitive is preserved call-for-call: agents are walked
// in the same add (= agent index) order, the delay model is consulted in
// the same (from, to, now) sequence, events tie-break on the same monotone
// seq, and the adversaries' send_to calls happen in the same nesting — so
// the delay RNG stream, the adversary RNG streams, and the event order are
// identical to run_async_sbg's engine (asserted per field at the bit level
// by tests/batch_async_runner_test.cpp).
LaneSchedule replay_schedule(const AsyncScenario& s) {
  AsyncSbgConfig config;
  config.n = s.n;
  config.f = s.f;
  config.validate();
  const std::size_t quorum = config.quorum();

  Rng rng(s.seed);
  const std::unique_ptr<DelayModel> delays = make_async_delay_model(s, rng);

  std::vector<std::uint32_t> honest;    // agent ids, index order
  std::vector<std::uint32_t> byz_ids;   // agent ids, index order
  std::vector<std::unique_ptr<SbgAdversary>> adversaries;
  std::vector<std::size_t> honest_slot(s.n, kNone);
  for (std::size_t i = 0; i < s.n; ++i) {
    if (contains(s.faulty, i)) {
      adversaries.push_back(
          make_adversary(s.attack, rng.substream("adversary", i)));
      byz_ids.push_back(static_cast<std::uint32_t>(i));
    } else {
      honest_slot[i] = honest.size();
      honest.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const std::size_t H = honest.size();

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> crash_time(s.n, kInf);
  for (const auto& [who, when] : s.crashes)
    crash_time[who] = std::min(crash_time[who], when);

  struct Ev {
    double time;
    std::uint64_t seq;  // FIFO tie-break, same ordering as AsyncEngine
    std::uint32_t to, from, round;
    bool operator>(const Ev& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> queue;
  std::uint64_t next_seq = 0;

  LaneSchedule out;
  out.masks.assign(H, {});
  out.completed.assign(H, 0);
  out.first_publisher.reserve(s.rounds + 2);
  std::vector<std::uint32_t> round(H, 1);
  for (auto& m : out.masks) m.reserve(s.rounds + 8);
  std::vector<Received<SbgPayload>> view_payload(1);

  auto mask_slot = [&](std::size_t u, std::uint32_t r) -> std::uint64_t& {
    auto& v = out.masks[u];
    if (v.size() < r) v.resize(r, 0);
    return v[r - 1];
  };

  auto publish = [&](std::uint32_t from, std::uint32_t r, double now) {
    if (now >= crash_time[from]) return;  // crashed sender: nothing delivered
    for (const std::uint32_t rid : honest) {
      // Self-delivery is immediate (an agent always has its own value).
      const double at = rid == from
                            ? now
                            : now + delays->delay(AgentId{from}, AgentId{rid},
                                                  now);
      queue.push({at, next_seq++, rid, from, r});
    }
    if (!adversaries.empty() && r > out.first_publisher.size()) {
      FTMAO_EXPECTS(r == out.first_publisher.size() + 1);
      out.first_publisher.push_back(from);
      view_payload[0] = Received<SbgPayload>{AgentId{from},
                                             SbgPayload{0.0, 0.0}};
      const RoundView<SbgPayload> view{Round{r}, view_payload};
      for (std::size_t b = 0; b < adversaries.size(); ++b) {
        for (const std::uint32_t rid : honest) {
          if (adversaries[b]->send_to(AgentId{byz_ids[b]}, AgentId{rid}, view))
            queue.push({now + delays->delay(AgentId{byz_ids[b]}, AgentId{rid},
                                            now),
                        next_seq++, rid, byz_ids[b], r});
        }
      }
    }
  };

  // Time 0: everyone broadcasts round 1.
  for (const std::uint32_t id : honest) publish(id, 1, 0.0);

  const auto target = static_cast<std::uint32_t>(s.rounds);
  std::size_t done = 0;  // honest agents with round > target
  double now = 0.0;
  while (!queue.empty() && done < H) {
    const Ev ev = queue.top();
    queue.pop();
    now = ev.time;
    const std::size_t u = honest_slot[ev.to];
    ++out.delivered;
    if (ev.round < round[u]) continue;  // stale round, ignore
    mask_slot(u, ev.round) |= std::uint64_t{1} << ev.from;
    if (std::popcount(mask_slot(u, round[u])) < static_cast<int>(quorum))
      continue;
    out.completed[u] = round[u]++;
    if (round[u] == target + 1) ++done;
    publish(ev.to, round[u], now);
  }
  out.virtual_time = now;
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2 + 3: lockstep numeric replay over SoA lanes.
// ---------------------------------------------------------------------------

class BatchedAsyncRunner {
 public:
  explicit BatchedAsyncRunner(std::span<const AsyncScenario> replicas)
      : replicas_(replicas), kernels_(&simd_kernels_for_lanes(replicas.size())) {
    const AsyncScenario& first = replicas.front();
    B_ = replicas.size();
    const std::size_t w = kernels_->width;
    Bpad_ = (B_ + w - 1) / w * w;
    n_ = first.n;
    f_ = first.f;
    rounds_ = first.rounds;
    quorum_ = n_ - f_;

    // Honest engine agents in *index* order — run_async_sbg adds agents in
    // index order with surviving and crashing interleaved, and folds
    // metrics over survivors in that order. (The sync batch runner's
    // survivors-first order does not apply here.)
    honest_pos_.assign(n_, kNone);
    byz_pos_.assign(n_, kNone);
    auto is_crashed = [&first](std::size_t i) {
      for (const auto& [who, when] : first.crashes)
        if (who == i) return true;
      return false;
    };
    for (std::size_t i = 0; i < n_; ++i) {
      if (contains(first.faulty, i)) {
        byz_pos_[i] = faulty_ids_.size();
        faulty_ids_.push_back(AgentId{static_cast<std::uint32_t>(i)});
      } else {
        honest_pos_[i] = honest_ids_.size();
        honest_ids_.push_back(AgentId{static_cast<std::uint32_t>(i)});
        surviving_.push_back(is_crashed(i) ? 0 : 1);
      }
    }
    H_ = honest_ids_.size();
    F_ = faulty_ids_.size();

    // Devirtualized gradient descriptors, SoA, as in the sync runner: a
    // row takes the SIMD kernel only if every replica's cost exposes the
    // same closed-form descriptor shape. finish_row gives transcendental
    // padding lanes neutral widths (scale 0 -> gradient +/-0, benign).
    fns_.assign(H_ * Bpad_, nullptr);
    grad_.init(H_, Bpad_);
    for (std::size_t u = 0; u < H_; ++u) {
      const std::size_t idx = honest_ids_[u].value;
      for (std::size_t r = 0; r < B_; ++r) {
        const std::size_t l = u * Bpad_ + r;
        fns_[l] = replicas[r].functions[idx].get();
        grad_.set(u, l, r == 0, fns_[l]->batch_gradient_kernel());
      }
      grad_.finish_row(u, B_);
    }

    schedules_.reserve(B_);
    adversaries_.resize(B_);
    for (std::size_t r = 0; r < B_; ++r) {
      const AsyncScenario& s = replicas[r];
      schedules_.push_back(make_schedule(s.step));
      // Fresh adversary instances seeded exactly as Pass 1 seeded the ones
      // behind the recorders (Rng substreams are value-independent of draw
      // order). Pass 2 re-issues the same trigger-call sequence, so their
      // RNG streams and presence decisions replay identically — this time
      // against the true payload views.
      Rng rng(s.seed);
      for (const AgentId b : faulty_ids_)
        adversaries_[r].push_back(
            make_adversary(s.attack, rng.substream("adversary", b.value)));
    }

    // Async steps are unconstrained: clamp rows are (-inf, +inf) — the
    // bitwise identity on the stepped value — with an all-zero projection
    // mask, matching the scalar agent's bare trimmed step.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    clo_.assign(Bpad_, -kInf);
    chi_.assign(Bpad_, kInf);
    pemask_.assign(Bpad_, 0.0);

    lambda_.assign(Bpad_, 0.0);
    mx_.resize(n_ * Bpad_);
    mg_.resize(n_ * Bpad_);
    txc_.resize(Bpad_);
    tgc_.resize(Bpad_);
    lamc_.resize(Bpad_);
    nxc_.resize(Bpad_);
    pec_.resize(Bpad_);
    bpx_.assign(H_ * F_ * Bpad_, 0.0);
    bpg_.assign(H_ * F_ * Bpad_, 0.0);
    bucket_lanes_.resize(f_ + 1);
    bucket_masks_.resize(f_ + 1);
    view_payload_.resize(1);
  }

  std::vector<AsyncRunMetrics> run() {
    engine_stats_record(B_, B_, Bpad_);
    lanes_.reserve(B_);
    std::size_t t_max = 0;
    for (std::size_t r = 0; r < B_; ++r) {
      lanes_.push_back(replay_schedule(replicas_[r]));
      for (std::size_t c : lanes_.back().completed) t_max = std::max(t_max, c);
    }

    // Full state history, hist(t, u, r): needed for the per-round metric
    // folds and because lanes advance through round t at different event
    // times — a sender's round-t tuple may sit buffered while the batch
    // walks ahead. Gradients only ever reach one round back (a sender in a
    // round-t multiset completed round t-1 and wrote its slot then), so
    // they ping-pong between two planes instead.
    hist_.assign((t_max + 1) * H_ * Bpad_, 0.0);
    g_[0].assign(H_ * Bpad_, 0.0);
    g_[1].assign(H_ * Bpad_, 0.0);
    for (std::size_t u = 0; u < H_; ++u) {
      const std::size_t idx = honest_ids_[u].value;
      for (std::size_t r = 0; r < B_; ++r)
        hist(0, u)[r] = replicas_[r].initial_states[idx];
      write_gradient_row(u, 0, 0);
    }

    for (std::size_t t = 1; t <= t_max; ++t) {
      const std::size_t gprev = (t - 1) & 1;
      const std::size_t gcur = t & 1;
      for (std::size_t r = 0; r < B_; ++r)
        lambda_[r] = schedules_[r]->at(t - 1);
      if (F_ > 0) fill_byzantine(t, gprev);
      for (std::size_t u = 0; u < H_; ++u) {
        step_agent(u, t, gprev);
        write_gradient_row(u, t, gcur);
      }
    }

    return fold_metrics();
  }

 private:
  double* hist(std::size_t t, std::size_t u) {
    return hist_.data() + (t * H_ + u) * Bpad_;
  }

  // Replays every lane's round-t Byzantine trigger: the recorded first
  // publisher's true round-t tuple is the view, and each (recipient,
  // sender) payload lands in its lane-padded row. Presence needs no
  // tracking here: a Byzantine bit in an advance mask implies that round's
  // message was sent (and so freshly written this round); absent payloads
  // leave stale lanes no mask ever selects.
  void fill_byzantine(std::size_t t, std::size_t gprev) {
    const Round round{static_cast<std::uint32_t>(t)};
    for (std::size_t r = 0; r < B_; ++r) {
      const LaneSchedule& lane = lanes_[r];
      if (t > lane.first_publisher.size()) continue;
      const std::uint32_t pub = lane.first_publisher[t - 1];
      const std::size_t up = honest_pos_[pub];
      view_payload_[0] = Received<SbgPayload>{
          AgentId{pub},
          SbgPayload{hist(t - 1, up)[r], g_[gprev][up * Bpad_ + r]}};
      const RoundView<SbgPayload> view{round, view_payload_};
      for (std::size_t b = 0; b < F_; ++b) {
        for (std::size_t u = 0; u < H_; ++u) {
          if (auto p = adversaries_[r][b]->send_to(faulty_ids_[b],
                                                   honest_ids_[u], view)) {
            const std::size_t o = (u * F_ + b) * Bpad_ + r;
            bpx_[o] = p->state;
            bpg_[o] = p->gradient;
          }
        }
      }
    }
  }

  // Advances agent u through round t in every lane whose schedule says it
  // completed round t. Multiset sizes vary in [n-f, n] (buffers keep
  // accumulating past the quorum until the delivery-driven advance), so
  // lanes are bucketed by size and each bucket runs the batched trim once.
  void step_agent(std::size_t u, std::size_t t, std::size_t gprev) {
    for (auto& b : bucket_lanes_) b.clear();
    for (auto& b : bucket_masks_) b.clear();
    for (std::size_t r = 0; r < B_; ++r) {
      if (lanes_[r].completed[u] < t) continue;
      const std::uint64_t mask = lanes_[r].masks[u][t - 1];
      const std::size_t m = static_cast<std::size_t>(std::popcount(mask));
      bucket_lanes_[m - quorum_].push_back(static_cast<std::uint32_t>(r));
      bucket_masks_[m - quorum_].push_back(mask);
    }

    const double* gp = g_[gprev].data();
    const double* hprev = hist(t - 1, 0);
    double* hcur = hist(t, 0);
    for (std::size_t bi = 0; bi <= f_; ++bi) {
      const std::size_t count = bucket_lanes_[bi].size();
      if (count == 0) continue;
      const std::size_t m = quorum_ + bi;
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t r = bucket_lanes_[bi][i];
        std::uint64_t mask = bucket_masks_[bi][i];
        // Gather in ascending AgentId order — the order AsyncSbgAgent's
        // std::map iteration feeds trim_value.
        std::size_t row = 0;
        while (mask != 0) {
          const std::size_t s =
              static_cast<std::size_t>(std::countr_zero(mask));
          mask &= mask - 1;
          const std::size_t slot = row * count + i;
          if (honest_pos_[s] != kNone) {
            const std::size_t hl = honest_pos_[s] * Bpad_ + r;
            mx_[slot] = hprev[hl];
            mg_[slot] = gp[hl];
          } else {
            const std::size_t o = (u * F_ + byz_pos_[s]) * Bpad_ + r;
            mx_[slot] = bpx_[o];
            mg_[slot] = bpg_[o];
          }
          ++row;
        }
      }
      trim_batch(mx_.data(), m, count, f_, *kernels_, txc_.data());
      trim_batch(mg_.data(), m, count, f_, *kernels_, tgc_.data());
      for (std::size_t i = 0; i < count; ++i)
        lamc_[i] = lambda_[bucket_lanes_[bi][i]];
      kernels_->fused_step(txc_.data(), tgc_.data(), lamc_.data(), clo_.data(),
                           chi_.data(), pemask_.data(), nxc_.data(),
                           pec_.data(), count);
      const std::size_t ubase = u * Bpad_;
      for (std::size_t i = 0; i < count; ++i)
        hcur[ubase + bucket_lanes_[bi][i]] = nxc_[i];
    }
  }

  // Gradient of agent u's round-t state into g plane `gcur`. Kernel rows
  // evaluate the whole row (lanes that did not complete round t hold a
  // benign 0.0 state and produce garbage gradients no mask ever reads —
  // a sender appears in a round-(t+1) multiset only if it completed round
  // t); virtual rows evaluate only the lanes that completed.
  void write_gradient_row(std::size_t u, std::size_t t, std::size_t gcur) {
    const std::size_t base = u * Bpad_;
    const double* x = hist(t, u);
    double* g = g_[gcur].data() + base;
    if (grad_.fast(u)) {
      grad_.run(*kernels_, u, x, g);
    } else {
      for (std::size_t r = 0; r < B_; ++r) {
        if (lanes_[r].completed[u] >= t)
          g[r] = fns_[base + r]->derivative(x[r]);
      }
    }
  }

  // Pass 3: per-replica metrics, mirroring run_async_sbg's fold exactly —
  // survivors in index order, lo/hi seeded from the first survivor, the
  // distance fold seeded from 0.0.
  std::vector<AsyncRunMetrics> fold_metrics() {
    std::vector<AsyncRunMetrics> out(B_);
    for (std::size_t r = 0; r < B_; ++r) {
      AsyncRunMetrics& m = out[r];
      const LaneSchedule& lane = lanes_[r];
      std::vector<ScalarFunctionPtr> honest_fns;
      for (std::size_t u = 0; u < H_; ++u) {
        if (surviving_[u])
          honest_fns.push_back(replicas_[r].functions[honest_ids_[u].value]);
      }
      const ValidFamily family(honest_fns, f_);
      m.optima = family.optima_set();
      m.virtual_time = lane.virtual_time;
      m.messages_delivered = lane.delivered;

      std::size_t common_rounds = rounds_ + 1;
      std::size_t first_survivor = kNone;
      for (std::size_t u = 0; u < H_; ++u) {
        if (!surviving_[u]) continue;
        if (first_survivor == kNone) first_survivor = u;
        common_rounds = std::min(common_rounds, lane.completed[u] + 1);
      }
      for (std::size_t t = 0; t < common_rounds; ++t) {
        double lo = hist(t, first_survivor)[r];
        double hi = lo;
        double dist = 0.0;
        for (std::size_t u = 0; u < H_; ++u) {
          if (!surviving_[u]) continue;
          const double x = hist(t, u)[r];
          lo = std::min(lo, x);
          hi = std::max(hi, x);
          dist = std::max(dist, m.optima.distance_to(x));
        }
        m.disagreement.push(hi - lo);
        m.max_dist_to_y.push(dist);
      }
      for (std::size_t u = 0; u < H_; ++u) {
        if (surviving_[u])
          m.final_states.push_back(hist(lane.completed[u], u)[r]);
      }
    }
    return out;
  }

  std::span<const AsyncScenario> replicas_;
  const SimdKernels* kernels_;
  std::size_t B_ = 0, Bpad_ = 0, n_ = 0, f_ = 0, rounds_ = 0, quorum_ = 0;
  std::size_t H_ = 0, F_ = 0;
  std::vector<AgentId> honest_ids_;  ///< index order (crashing interleaved)
  std::vector<AgentId> faulty_ids_;
  std::vector<std::uint8_t> surviving_;    ///< per honest agent
  std::vector<std::size_t> honest_pos_;    ///< agent index -> honest slot
  std::vector<std::size_t> byz_pos_;       ///< agent index -> faulty slot

  std::vector<const ScalarFunction*> fns_;  ///< (honest, lane), Bpad stride
  BatchGradientPlanes grad_;
  std::vector<std::unique_ptr<StepSchedule>> schedules_;
  std::vector<std::vector<std::unique_ptr<SbgAdversary>>> adversaries_;

  std::vector<LaneSchedule> lanes_;
  std::vector<double> hist_;  ///< (t, honest, lane)
  std::vector<double> g_[2];  ///< gradient ping-pong planes
  std::vector<double> bpx_, bpg_;  ///< (recipient, byz, lane) round payloads
  std::vector<double> clo_, chi_, pemask_, lambda_;
  std::vector<double> mx_, mg_;  ///< gather matrices, compact column stride
  std::vector<double> txc_, tgc_, lamc_, nxc_, pec_;
  std::vector<std::vector<std::uint32_t>> bucket_lanes_;
  std::vector<std::vector<std::uint64_t>> bucket_masks_;
  std::vector<Received<SbgPayload>> view_payload_;
};

}  // namespace

std::vector<AsyncRunMetrics> run_async_sbg_batch(
    std::span<const AsyncScenario> replicas) {
  if (replicas.empty()) return {};
  const AsyncScenario& first = replicas.front();
  for (const AsyncScenario& s : replicas) {
    s.validate();
    FTMAO_EXPECTS(s.n == first.n);
    FTMAO_EXPECTS(s.f == first.f);
    FTMAO_EXPECTS(s.faulty == first.faulty);
    FTMAO_EXPECTS(s.crashes == first.crashes);
    FTMAO_EXPECTS(s.rounds == first.rounds);
  }

  // The sender bitmask needs one bit per agent; larger systems (none in
  // the paper's experiments) run the scalar path per replica.
  if (first.n > 64) {
    std::vector<AsyncRunMetrics> out;
    out.reserve(replicas.size());
    for (const AsyncScenario& s : replicas) out.push_back(run_async_sbg(s));
    return out;
  }

  return BatchedAsyncRunner(replicas).run();
}

}  // namespace ftmao
