#pragma once

// Batched replica execution of Algorithm SBG (Section 4).
//
// The grid drivers (sweep, certify, attack search) reduce to running many
// independent replicas of one scenario *shape* — same population size,
// fault set, crash schedule, and horizon, differing only in seed, cost
// functions, initial states, attack configuration, step schedule, or
// constraint. BatchedSbgRunner advances B such replicas per round in
// lockstep over structure-of-arrays state (x[agent][replica],
// broadcast[sender][replica], inbox matrices [slot][replica]) so the
// dominant inner kernel — Trim over each recipient's fan-in — runs as a
// branchless batched sorting network across the replica lanes
// (trim/trim_batch.hpp).
//
// Determinism contract: the output is bit-identical to running run_sbg on
// each scenario separately. Replicas never interact; per-replica adversary
// objects observe per-replica RoundViews in the scalar engine's exact call
// order (so RNG streams advance identically); the batched trim selects the
// same order statistics as the scalar nth_element path; and every
// floating-point reduction (metrics folds, trimmed-mean style sums) runs
// in the scalar path's operation order. tests/batch_runner_test.cpp pins
// this contract across attacks, crashes, link drops, constraints, and
// audit options.

#include <span>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

namespace ftmao {

/// Runs every scenario in `replicas` to completion in lockstep and returns
/// one RunMetrics per scenario, in order — bit-identical to calling
/// run_sbg(replicas[i], options) for each i.
///
/// All scenarios must share the same shape: n, f, faulty set, crash
/// schedule, and rounds. Everything else (seed, functions, initial states,
/// attack, step, constraint, default payload, drop probability) may differ
/// per replica.
std::vector<RunMetrics> run_sbg_batch(std::span<const Scenario> replicas,
                                      const RunOptions& options = {});

}  // namespace ftmao
